package experiment

import (
	"strings"
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/cache"
)

func TestOccupancyReport(t *testing.T) {
	rc := quickRC("esp-nuca", "apache")
	sys, err := arch.Build(rc.Arch, rc.System)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOn(rc, sys); err != nil {
		t.Fatal(err)
	}
	rep := Occupancy(sys)
	if len(rep.PerTile) != 8 {
		t.Fatalf("tiles = %d", len(rep.PerTile))
	}
	if rep.Valid() == 0 {
		t.Fatal("empty L2 after a run")
	}
	if rep.Valid() > rep.Capacity {
		t.Fatalf("occupancy %d exceeds capacity %d", rep.Valid(), rep.Capacity)
	}
	// apache is sharing-heavy: the L2 must contain shared blocks, and
	// ESP-NUCA should have created at least some helping blocks.
	if rep.Class[cache.Shared] == 0 {
		t.Fatal("no shared blocks on a transactional workload")
	}
	if hf := rep.HelpingFraction(); hf < 0 || hf > 1 {
		t.Fatalf("helping fraction %g out of range", hf)
	}
	s := rep.String()
	if !strings.Contains(s, "tile 0") || !strings.Contains(s, "class mix") {
		t.Fatalf("render incomplete:\n%s", s)
	}
}

func TestOccupancyClassMixDiffersByArchitecture(t *testing.T) {
	occ := func(name string) OccupancyReport {
		rc := quickRC(name, "apache")
		sys, err := arch.Build(rc.Arch, rc.System)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunOn(rc, sys); err != nil {
			t.Fatal(err)
		}
		return Occupancy(sys)
	}
	sh := occ("shared")
	esp := occ("esp-nuca")
	// S-NUCA holds only Shared-class blocks; ESP-NUCA holds a mix with
	// private blocks present.
	if sh.Class[cache.Private] != 0 {
		t.Fatalf("shared S-NUCA holds %d private-class blocks", sh.Class[cache.Private])
	}
	if esp.Class[cache.Private] == 0 {
		t.Fatal("ESP-NUCA holds no private blocks on apache")
	}
}
