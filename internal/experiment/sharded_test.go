package experiment

import (
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"testing"

	"espnuca/internal/obs"
	"espnuca/internal/sim"
)

// shardedGateMaxRelErr is the committed fidelity bound CI holds sharded
// execution to: the Throughput relative error versus a serial full run,
// for every architecture of the paper's evaluated set (see BENCH_7.json
// for the full-config measurements backing it).
const shardedGateMaxRelErr = 0.02

// shardedQuickRC is a fast sharded configuration for unit tests.
func shardedQuickRC(archName, wl string, k int) RunConfig {
	rc := DefaultRunConfig(archName, wl)
	rc.Warmup = 12_000
	rc.Instructions = 8_000
	rc.EngineShards = k
	rc.ShardParallelism = 1
	return rc
}

func TestPlanShards(t *testing.T) {
	// 4x2 mesh, 8 cores: k=2 must split by column halves — contiguous
	// vertical stripes, each shard owning both rows of its columns.
	got := PlanShards(4, 2, 8, 2)
	want := []int{0, 0, 1, 1, 0, 0, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("k=2: shardOf = %v, want %v", got, want)
	}
	// k=1 degenerates to one shard; k=cores gives one core per shard;
	// k beyond the core count clamps.
	if got := PlanShards(4, 2, 8, 1); !reflect.DeepEqual(got, []int{0, 0, 0, 0, 0, 0, 0, 0}) {
		t.Errorf("k=1: shardOf = %v", got)
	}
	got = PlanShards(4, 2, 8, 8)
	seen := map[int]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("k=8: shard %d assigned twice in %v", s, got)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Errorf("k=8: %d distinct shards, want 8 (%v)", len(seen), got)
	}
	if got := PlanShards(4, 2, 8, 16); !reflect.DeepEqual(got, PlanShards(4, 2, 8, 8)) {
		t.Errorf("k>cores did not clamp: %v", got)
	}
	// Fewer cores than nodes: assignments stay in range and use all k.
	got = PlanShards(4, 2, 4, 2)
	for c, s := range got {
		if s < 0 || s >= 2 {
			t.Errorf("4-core k=2: core %d -> shard %d out of range", c, s)
		}
	}
}

// TestShardedRunMatchesFull pins the sharded engine's contract with the
// serial one: the retired-instruction count is exactly equal (both modes
// run every measured core to the same target), the headline metrics agree
// within the committed gate, and RunResult.Shard carries the window
// accounting.
func TestShardedRunMatchesFull(t *testing.T) {
	for _, wl := range []string{"apache", "gcc-4"} { // all-core and half-rate (idle cores)
		rc := shardedQuickRC("esp-nuca", wl, 2)
		shd, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		if shd.Shard == nil {
			t.Fatal("sharded run returned nil RunResult.Shard")
		}
		if shd.Shard.Shards != 2 || shd.Shard.Windows == 0 || shd.Shard.Requests == 0 {
			t.Errorf("%s: implausible shard stats %+v", wl, shd.Shard)
		}

		frc := rc
		frc.EngineShards = 0
		full, err := Run(frc)
		if err != nil {
			t.Fatal(err)
		}
		if full.Shard != nil {
			t.Error("serial run carries shard stats")
		}
		if shd.Retired != full.Retired {
			t.Errorf("%s: sharded Retired = %d, serial = %d (must be exact)",
				wl, shd.Retired, full.Retired)
		}
		if e := relErr(shd.Throughput, full.Throughput); e > shardedGateMaxRelErr {
			t.Errorf("%s: Throughput relative error %.4f exceeds the gate %.2f (sharded %g, serial %g)",
				wl, e, shardedGateMaxRelErr, shd.Throughput, full.Throughput)
		}
	}
}

// TestShardedParallelDeterminism is the concurrency contract of sharded
// execution: one simulation is bit-identical whether its shards run on
// one goroutine or fan out over workers. It is the -race smoke test for
// the space-parallel engine.
func TestShardedParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded runs")
	}
	for _, wl := range []string{"apache", "gcc-4"} { // all-core and half-rate (idle cores)
		rc := shardedQuickRC("esp-nuca", wl, 4)
		base, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 3, 4} {
			rc.ShardParallelism = p
			got, err := Run(rc)
			if err != nil {
				t.Fatalf("%s p=%d: %v", wl, p, err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("%s: results at ShardParallelism=%d differ from serial:\n got  %+v\n want %+v",
					wl, p, got, base)
			}
		}
	}
}

// TestShardedMetricsDontPerturb: attaching a telemetry registry must not
// change a sharded run's results (all registry writes happen in the
// serial barrier phase), and the shard counters must be populated.
func TestShardedMetricsDontPerturb(t *testing.T) {
	rc := shardedQuickRC("esp-nuca", "apache", 2)
	base, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rc.Metrics = reg
	got, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Metrics = nil // registries are pointers; compare the rest
	got2 := got
	if !reflect.DeepEqual(got2, base) {
		t.Errorf("instrumented sharded run differs from bare run:\n got  %+v\n want %+v", got2, base)
	}
	counters, _, series := reg.Snapshot()
	if got := counters["shard.windows"]; got != base.Shard.Windows {
		t.Errorf("shard.windows counter = %d, want %d", got, base.Shard.Windows)
	}
	if got := counters["shard.requests"]; got != base.Shard.Requests {
		t.Errorf("shard.requests counter = %d, want %d", got, base.Shard.Requests)
	}
	if _, ok := series["shard.window_width"]; !ok {
		t.Error("shard.window_width series missing")
	}
}

// TestBarrierParallelDeterminism is the correctness contract of
// conflict-group barrier servicing: for every architecture in the
// registry's evaluated set, a sharded run is bit-identical whether the
// barrier services its merged requests serially or spread over 2 or 8
// workers. Architectures without a useful footprint oracle (asr, cc
// declare Global) exercise the fallback-to-serial path under the same
// assertion. CI runs this under -race to catch unsynchronized sharing
// inside a conflict group.
func TestBarrierParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded runs")
	}
	// The run setup clamps the worker pool to GOMAXPROCS; keep at
	// least two scheduling slots so a 1-core host still exercises
	// serviceParallel (concurrently, if not in parallel) rather than
	// silently testing the serial path three times.
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	archs := []string{"shared", "private", "sp-nuca", "esp-nuca", "d-nuca", "asr", "cc"}
	for _, archName := range archs {
		wls := []string{"apache"}
		if archName == "esp-nuca" {
			wls = append(wls, "gcc-4") // half-rate workload: idle cores, sparser barriers
		}
		for _, wl := range wls {
			rc := shardedQuickRC(archName, wl, 4)
			base, err := Run(rc)
			if err != nil {
				t.Fatalf("%s/%s: %v", archName, wl, err)
			}
			for _, p := range []int{2, 8} {
				rc.BarrierParallelism = p
				got, err := Run(rc)
				if err != nil {
					t.Fatalf("%s/%s bpar=%d: %v", archName, wl, p, err)
				}
				if !reflect.DeepEqual(got, base) {
					t.Errorf("%s/%s: results at BarrierParallelism=%d differ from serial barrier:\n got  %+v\n want %+v",
						archName, wl, p, got, base)
				}
			}
		}
	}
}

// TestBarrierParallelGroupsObserved checks the parallel path actually
// engages on a footprint-capable architecture: an instrumented run with
// BarrierParallelism=2 must record barriers that split into more than
// one conflict group, and instrumentation must not perturb the result.
func TestBarrierParallelGroupsObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded runs")
	}
	// Pin the grouping governor to probe every barrier: this workload's
	// multi-group barriers are sparse (~4%), and the point here is that
	// grouping finds them and the telemetry shows them — bit-identity
	// must hold at any cap regardless, which the DeepEqual below checks.
	defer func(cap int) { barrierProbeBackoff = cap }(barrierProbeBackoff)
	barrierProbeBackoff = 1
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	rc := shardedQuickRC("esp-nuca", "apache", 4)
	base, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.BarrierParallelism = 2
	reg := obs.NewRegistry()
	rc.Metrics = reg
	got, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Metrics = nil
	if !reflect.DeepEqual(got, base) {
		t.Errorf("instrumented parallel-barrier run differs from serial barrier:\n got  %+v\n want %+v", got, base)
	}
	h := reg.Histogram("shard.barrier_groups", nil)
	count, sum, _ := h.Snapshot()
	if count == 0 {
		t.Fatal("shard.barrier_groups recorded no barriers")
	}
	if sum <= float64(count) {
		t.Errorf("no barrier split into multiple conflict groups (mean groups %.2f over %d barriers)",
			sum/float64(count), count)
	}
	hs := reg.Histogram("shard.barrier_service_ms", nil)
	if c, _, _ := hs.Snapshot(); c == 0 {
		t.Error("shard.barrier_service_ms recorded no barriers")
	}
}

// TestMergeRefsMatchesSort pins the k-way merge against the sort it
// replaced: for random per-shard queues (each non-decreasing in cycle,
// as shard-local event order guarantees), mergeRefs must produce exactly
// the order sort.Slice by (at, shard, idx) would.
func TestMergeRefsMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for pass := 0; pass < 200; pass++ {
		k := 1 + rng.Intn(6)
		r := &shardedRun{reqs: make([][]shardReq, k)}
		for s := 0; s < k; s++ {
			n := rng.Intn(12)
			at := sim.Cycle(rng.Intn(4))
			for i := 0; i < n; i++ {
				at += sim.Cycle(rng.Intn(3)) // non-decreasing, heavy ties
				r.reqs[s] = append(r.reqs[s], shardReq{at: at, core: s})
			}
		}
		want := []mergedRef{}
		for s := range r.reqs {
			for i := range r.reqs[s] {
				want = append(want, mergedRef{shard: s, idx: i})
			}
		}
		sort.Slice(want, func(a, b int) bool {
			ra, rb := want[a], want[b]
			aa, ab := r.reqs[ra.shard][ra.idx].at, r.reqs[rb.shard][rb.idx].at
			if aa != ab {
				return aa < ab
			}
			if ra.shard != rb.shard {
				return ra.shard < rb.shard
			}
			return ra.idx < rb.idx
		})
		got := r.mergeRefs()
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pass %d: merge order differs from sorted order:\n got  %v\n want %v", pass, got, want)
		}
		// Buffer reuse across barriers must not leak previous contents.
		for s := range r.reqs {
			r.reqs[s] = r.reqs[s][:0]
		}
		if again := r.mergeRefs(); len(again) != 0 {
			t.Fatalf("pass %d: mergeRefs on empty queues returned %v", pass, again)
		}
	}
}

func TestShardedRejectsBadConfigs(t *testing.T) {
	rc := shardedQuickRC("esp-nuca", "apache", 2)
	rc.SampleWindows = 2
	if _, err := Run(rc); err == nil || !strings.Contains(err.Error(), "EngineShards") {
		t.Errorf("SampleWindows+EngineShards: err = %v, want rejection", err)
	}
	rc = shardedQuickRC("esp-nuca", "no-such-workload", 2)
	if _, err := Run(rc); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestShardedErrorGate is the CI fidelity gate: at the committed
// BENCH_7.json configuration of the largest catalog workload, the sharded
// run's headline metrics must stay within shardedGateMaxRelErr of the
// serial full run — and the retired count exactly equal — for every
// architecture of the paper's evaluated set (scripts/bench.sh shard
// re-checks the same bounds plus the wall-clock budget).
func TestShardedErrorGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-sharded validation runs")
	}
	rc := DefaultRunConfig("esp-nuca", "FT")
	rc.Warmup = 80_000
	rc.Instructions = 640_000
	rows, err := ShardedError(rc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ShardValidationArchs()) {
		t.Fatalf("%d rows, want one per validation architecture", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-9s thr-err %.2f%%  aat-err %.2f%%  off-err %.2f%%  windows %d  serial %.2fs  sharded %.2fs",
			r.Arch, r.Throughput*100, r.AvgAccessTime*100, r.OffChipAccesses*100,
			r.Windows, r.FullSeconds, r.ShardedSeconds)
		if !r.RetiredExact {
			t.Errorf("%s: sharded retired count differs from serial", r.Arch)
		}
		if r.Throughput > shardedGateMaxRelErr {
			t.Errorf("%s: Throughput relative error %.4f exceeds the committed gate %.2f",
				r.Arch, r.Throughput, shardedGateMaxRelErr)
		}
	}
}
