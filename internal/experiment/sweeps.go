package experiment

import (
	"fmt"

	"espnuca/internal/arch"
	"espnuca/internal/coherence"
	"espnuca/internal/sim"
)

// This file holds extension studies beyond the paper's figures: scaling
// sweeps over the two quantities NUCA architectures fundamentally trade —
// wire delay (hop latency) and cache capacity. The paper motivates
// ESP-NUCA with wire-delay-dominated caches; these sweeps show how its
// advantage over the shared baseline moves as that premise strengthens
// or weakens.

// HopLatencySweep runs the given workload on shared and ESP-NUCA across
// a range of mesh hop latencies and reports ESP-NUCA's normalized
// performance per point. Rising gain with hop latency is the expected
// signature: locality mechanisms matter more as wires get slower.
func HopLatencySweep(workload string, hops []sim.Cycle, o Options) (Table, error) {
	t := Table{
		ID:      "Sweep: hop latency",
		Title:   fmt.Sprintf("ESP-NUCA vs shared on %s across mesh hop latencies", workload),
		Columns: []string{"shared", "esp-nuca", "esp/shared"},
	}
	for _, h := range hops {
		sys := o.System
		sys.NoC.HopLatency = h
		perf := map[string]float64{}
		for _, a := range []string{"shared", "esp-nuca"} {
			rc := DefaultRunConfig(a, workload)
			rc.System = sys
			if o.Warmup > 0 {
				rc.Warmup = o.Warmup
			}
			if o.Instructions > 0 {
				rc.Instructions = o.Instructions
			}
			res, err := Run(rc)
			if err != nil {
				return Table{}, err
			}
			perf[a] = res.Throughput
		}
		t.Rows = append(t.Rows, TableRow{
			Label:  fmt.Sprintf("hop=%d", h),
			Values: []float64{perf["shared"], perf["esp-nuca"], perf["esp-nuca"] / perf["shared"]},
		})
	}
	return t, nil
}

// CapacitySweep runs the given workload on shared and ESP-NUCA across L2
// capacities (sets per bank doubled per step) and reports the normalized
// gain per point. ESP-NUCA's victim mechanism matters most when capacity
// is scarce relative to the workload.
func CapacitySweep(workload string, setsPerBank []int, o Options) (Table, error) {
	t := Table{
		ID:      "Sweep: L2 capacity",
		Title:   fmt.Sprintf("ESP-NUCA vs shared on %s across L2 capacities", workload),
		Columns: []string{"shared", "esp-nuca", "esp/shared"},
	}
	for _, spb := range setsPerBank {
		sys := o.System
		sys.SetsPerBank = spb
		perf := map[string]float64{}
		for _, a := range []string{"shared", "esp-nuca"} {
			rc := DefaultRunConfig(a, workload)
			rc.System = sys
			// Pin workload footprints to the reference capacity so the
			// sweep varies the cache, not the application.
			rc.WorkloadL2Lines = o.System.L2Lines()
			if o.Warmup > 0 {
				rc.Warmup = o.Warmup
			}
			if o.Instructions > 0 {
				rc.Instructions = o.Instructions
			}
			res, err := Run(rc)
			if err != nil {
				return Table{}, err
			}
			perf[a] = res.Throughput
		}
		kb := spb * sys.Banks * sys.Ways * sys.BlockBytes / 1024
		t.Rows = append(t.Rows, TableRow{
			Label:  fmt.Sprintf("%dKB", kb),
			Values: []float64{perf["shared"], perf["esp-nuca"], perf["esp-nuca"] / perf["shared"]},
		})
	}
	return t, nil
}

// L1Sweep varies the L1 size (the filter in front of the NUCA) and
// reports the same comparison: bigger L1s absorb the locality ESP-NUCA
// would otherwise win on.
func L1Sweep(workload string, l1Bytes []int, o Options) (Table, error) {
	t := Table{
		ID:      "Sweep: L1 capacity",
		Title:   fmt.Sprintf("ESP-NUCA vs shared on %s across L1 sizes", workload),
		Columns: []string{"shared", "esp-nuca", "esp/shared"},
	}
	for _, b := range l1Bytes {
		sys := o.System
		sys.L1 = coherence.L1Config{Bytes: b, Ways: 4, BlockBytes: 64, Latency: 3, TagLatency: 1}
		perf := map[string]float64{}
		for _, a := range []string{"shared", "esp-nuca"} {
			rc := DefaultRunConfig(a, workload)
			rc.System = sys
			if o.Warmup > 0 {
				rc.Warmup = o.Warmup
			}
			if o.Instructions > 0 {
				rc.Instructions = o.Instructions
			}
			res, err := Run(rc)
			if err != nil {
				return Table{}, err
			}
			perf[a] = res.Throughput
		}
		t.Rows = append(t.Rows, TableRow{
			Label:  fmt.Sprintf("%dKB", b/1024),
			Values: []float64{perf["shared"], perf["esp-nuca"], perf["esp-nuca"] / perf["shared"]},
		})
	}
	return t, nil
}

var _ = arch.ScaledConfig // keep the import explicit for sweep defaults
