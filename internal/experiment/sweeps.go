package experiment

import (
	"fmt"

	"espnuca/internal/arch"
	"espnuca/internal/coherence"
	"espnuca/internal/sim"
)

// This file holds extension studies beyond the paper's figures: scaling
// sweeps over the two quantities NUCA architectures fundamentally trade —
// wire delay (hop latency) and cache capacity. The paper motivates
// ESP-NUCA with wire-delay-dominated caches; these sweeps show how its
// advantage over the shared baseline moves as that premise strengthens
// or weakens.

// sweepArchs is the comparison pair every scaling sweep runs per point.
var sweepArchs = [2]string{"shared", "esp-nuca"}

// runSweepGrid executes the points x {shared, esp-nuca} grid on the
// Options worker pool and returns perf[point][arch] in input order. mk
// builds the run config for one grid cell; every cell is independent, so
// the grid parallelizes like a matrix and assembles deterministically.
func runSweepGrid(o Options, points int, mk func(point int, archName string) RunConfig) ([][2]float64, error) {
	perf := make([][2]float64, points)
	run := o.RunFunc
	if run == nil {
		run = Run
	}
	err := forEach(o.Parallelism, points*len(sweepArchs), func(i int) error {
		pt, ai := i/len(sweepArchs), i%len(sweepArchs)
		rc := mk(pt, sweepArchs[ai])
		if o.Warmup > 0 {
			rc.Warmup = o.Warmup
		}
		if o.Instructions > 0 {
			rc.Instructions = o.Instructions
		}
		res, err := run(rc)
		if err != nil {
			return err
		}
		perf[pt][ai] = res.Throughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	return perf, nil
}

// sweepRow renders one grid point as a table row.
func sweepRow(label string, p [2]float64) TableRow {
	return TableRow{Label: label, Values: []float64{p[0], p[1], p[1] / p[0]}}
}

// HopLatencySweep runs the given workload on shared and ESP-NUCA across
// a range of mesh hop latencies and reports ESP-NUCA's normalized
// performance per point. Rising gain with hop latency is the expected
// signature: locality mechanisms matter more as wires get slower.
func HopLatencySweep(workload string, hops []sim.Cycle, o Options) (Table, error) {
	t := Table{
		ID:      "Sweep: hop latency",
		Title:   fmt.Sprintf("ESP-NUCA vs shared on %s across mesh hop latencies", workload),
		Columns: []string{"shared", "esp-nuca", "esp/shared"},
	}
	perf, err := runSweepGrid(o, len(hops), func(pt int, a string) RunConfig {
		rc := DefaultRunConfig(a, workload)
		rc.System = o.System
		rc.System.NoC.HopLatency = hops[pt]
		return rc
	})
	if err != nil {
		return Table{}, err
	}
	for i, h := range hops {
		t.Rows = append(t.Rows, sweepRow(fmt.Sprintf("hop=%d", h), perf[i]))
	}
	return t, nil
}

// CapacitySweep runs the given workload on shared and ESP-NUCA across L2
// capacities (sets per bank doubled per step) and reports the normalized
// gain per point. ESP-NUCA's victim mechanism matters most when capacity
// is scarce relative to the workload.
func CapacitySweep(workload string, setsPerBank []int, o Options) (Table, error) {
	t := Table{
		ID:      "Sweep: L2 capacity",
		Title:   fmt.Sprintf("ESP-NUCA vs shared on %s across L2 capacities", workload),
		Columns: []string{"shared", "esp-nuca", "esp/shared"},
	}
	perf, err := runSweepGrid(o, len(setsPerBank), func(pt int, a string) RunConfig {
		rc := DefaultRunConfig(a, workload)
		rc.System = o.System
		rc.System.SetsPerBank = setsPerBank[pt]
		// Pin workload footprints to the reference capacity so the
		// sweep varies the cache, not the application.
		rc.WorkloadL2Lines = o.System.L2Lines()
		return rc
	})
	if err != nil {
		return Table{}, err
	}
	for i, spb := range setsPerBank {
		kb := spb * o.System.Banks * o.System.Ways * o.System.BlockBytes / 1024
		t.Rows = append(t.Rows, sweepRow(fmt.Sprintf("%dKB", kb), perf[i]))
	}
	return t, nil
}

// L1Sweep varies the L1 size (the filter in front of the NUCA) and
// reports the same comparison: bigger L1s absorb the locality ESP-NUCA
// would otherwise win on.
func L1Sweep(workload string, l1Bytes []int, o Options) (Table, error) {
	t := Table{
		ID:      "Sweep: L1 capacity",
		Title:   fmt.Sprintf("ESP-NUCA vs shared on %s across L1 sizes", workload),
		Columns: []string{"shared", "esp-nuca", "esp/shared"},
	}
	perf, err := runSweepGrid(o, len(l1Bytes), func(pt int, a string) RunConfig {
		rc := DefaultRunConfig(a, workload)
		rc.System = o.System
		rc.System.L1 = coherence.L1Config{Bytes: l1Bytes[pt], Ways: 4, BlockBytes: 64, Latency: 3, TagLatency: 1}
		return rc
	})
	if err != nil {
		return Table{}, err
	}
	for i, b := range l1Bytes {
		t.Rows = append(t.Rows, sweepRow(fmt.Sprintf("%dKB", b/1024), perf[i]))
	}
	return t, nil
}

var _ = arch.ScaledConfig // keep the import explicit for sweep defaults
