package experiment

// Sampled execution (SMARTS-style): instead of simulating the whole
// instruction budget in detail, the budget is partitioned into K strata
// and one short measurement window per stratum is simulated in full
// detail. Everything between windows is covered by a cheap functional
// pass — streams are skipped (generator state only) across the bulk of
// each stratum, then the memory system is warmed functionally (tag
// arrays, directory and adaptive state advance; no events, no timing)
// just before the window, then a short detailed warmup refills the
// timed state (miss overlap, port/link queues) before measurement.
//
// Each window runs on its own freshly built arch.System and a pooled
// sim.Engine, so windows are independent and can execute concurrently.
// A window's inputs are exactly (RunConfig, its plan, the stream
// positions), all of which are deterministic, so results are
// bit-identical at any SampleParallelism.
//
// The known risk of sampled simulation is warmup bias: short warmups
// understate miss rates (sharing-induced compulsory misses; see
// arXiv:1602.01329). That is why the estimator ships with a validation
// harness (SampledError) and why every sampled RunResult carries its
// confidence bounds in RunResult.Sampled — an estimate is never
// silently substituted for a full run (SampleWindows participates in
// the canonical key).

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/sim"
	"espnuca/internal/stats"
	"espnuca/internal/workload"
)

const (
	// sampleMeasureShare is the detailed fraction of each stratum: a
	// window measures stratum/sampleMeasureShare instructions per core.
	// 1/8 keeps the detailed work near an eighth of the full run while
	// leaving each window long enough to average over the workload's
	// short-range burstiness.
	sampleMeasureShare = 8
	// sampleMaxDetailWarm caps the detailed (timed) warmup before each
	// window. It only has to refill core-local timed state — miss
	// overlap, bank ports, link queues — which settles within a few
	// thousand instructions.
	sampleMaxDetailWarm = 4096
	// sampleMaxFuncWarm caps the functional fast-forward per window and
	// per core. The window inherits all cache state from this pass, so
	// the cap trades estimate bias against warm cost; the validation
	// harness measures the residual error.
	sampleMaxFuncWarm = 16384
	// sampleIdleWindowFactor scales the retirement target of
	// idle/service cores inside a window. Idle cores mostly hit in
	// their L1s and retire far faster than measured cores, so a bounded
	// target keeps their background traffic flowing through most of the
	// window while staying deterministic (an unbounded idle core would
	// make stream positions depend on engine stop timing).
	sampleIdleWindowFactor = 4
)

// samplePlan positions one measurement window. All counts are per-core
// instructions; start is absolute within the run's instruction stream.
type samplePlan struct {
	start   uint64 // first measured instruction of the window
	stratum uint64 // instructions the window represents
	fwarm   uint64 // functional fast-forward before the window
	dwarm   uint64 // detailed (timed) warmup before measurement
	measure uint64 // measured instructions
}

// samplePlans partitions [warmup, warmup+instructions) into k strata and
// places one window at the head of each. A window's warmup never reaches
// back past the previous window's end — where "end" is the farthest any
// stream travels, which for idle cores is their bounded in-window target
// (sampleIdleWindowFactor beyond the measured cores') — so every stream
// enters every window at exactly the plan-derived position regardless of
// which worker ran the preceding windows, and a worker's streams only
// ever move forward. The factor bound keeps that idle end inside the
// stratum: (2*factor-1)*measure < measureShare*measure <= stratum.
func samplePlans(warmup, instructions uint64, k int) []samplePlan {
	plans := make([]samplePlan, k)
	stratum := instructions / uint64(k)
	rem := instructions % uint64(k)
	pos := warmup
	prevEnd := uint64(0)
	for i := range plans {
		s := stratum
		if uint64(i) < rem {
			s++
		}
		w := s / sampleMeasureShare
		if w < 1 {
			w = 1
		}
		d := uint64(sampleMaxDetailWarm)
		if d > w {
			d = w
		}
		gap := pos - prevEnd
		if d > gap {
			d = gap
		}
		f := uint64(sampleMaxFuncWarm)
		if f > gap-d {
			f = gap - d
		}
		plans[i] = samplePlan{start: pos, stratum: s, fwarm: f, dwarm: d, measure: w}
		// Idle cores end the window at pre + fwarm + idleFactor*(d+w).
		prevEnd = pos - d + uint64(sampleIdleWindowFactor)*(d+w)
		pos += s
	}
	return plans
}

// SampleEstimate carries the error bounds of a sampled run: per headline
// metric, the mean over the measurement windows and its 95% confidence
// half-width. It is attached to RunResult.Sampled so an estimate always
// travels with its bound.
type SampleEstimate struct {
	// Windows is the number of measurement windows (RunConfig.SampleWindows).
	Windows int

	Throughput    stats.Estimate
	MeanIPC       stats.Estimate
	AvgAccessTime stats.Estimate
	OnChipLatency stats.Estimate
	L1MissRate    stats.Estimate
	// OffChipAccesses estimates the run-total DRAM access count
	// (per-window counts extrapolated by each window's stratum share).
	OffChipAccesses stats.Estimate
}

// RunSampled executes rc in sampled mode; Run dispatches here when
// rc.SampleWindows is positive. The returned result's headline metrics
// are window means (Cycles, Retired and OffChipAccesses are
// extrapolated totals) and RunResult.Sampled holds the estimates with
// their confidence bounds.
func RunSampled(rc RunConfig) (RunResult, error) {
	k := rc.SampleWindows
	if k < 1 {
		return RunResult{}, fmt.Errorf("experiment: sampled run needs SampleWindows >= 1, got %d", k)
	}
	if rc.Metrics != nil {
		return RunResult{}, fmt.Errorf("experiment: telemetry is not supported in sampled mode (windows share no timeline)")
	}
	if rc.Instructions < uint64(k)*sampleMeasureShare {
		return RunResult{}, fmt.Errorf("experiment: %d windows need at least %d instructions, got %d",
			k, uint64(k)*sampleMeasureShare, rc.Instructions)
	}
	spec, ok := workload.ByName(rc.Workload)
	if !ok {
		return RunResult{}, fmt.Errorf("experiment: unknown workload %q", rc.Workload)
	}
	rc.System.Seed = rc.Seed
	wlLines := rc.WorkloadL2Lines
	if wlLines == 0 {
		wlLines = rc.System.L2Lines()
	}
	plans := samplePlans(rc.Warmup, rc.Instructions, k)

	p := rc.SampleParallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > k {
		p = k
	}

	// Workers own contiguous chunks of windows so each worker's streams
	// walk strictly forward from one Bind. Every window's inputs depend
	// only on its plan (stream positions are resynchronized to
	// plan-derived values after each window), so chunking — and
	// therefore SampleParallelism — cannot change results.
	wins := make([]RunResult, k)
	err := forEach(p, p, func(worker int) error {
		lo, hi := worker*k/p, (worker+1)*k/p
		if lo == hi {
			return nil
		}
		bound := spec.Bind(wlLines, rc.System.L1ILines(), rc.Seed)
		var pos [8]uint64
		for i := lo; i < hi; i++ {
			res, err := runWindow(rc, bound, plans[i], &pos)
			if err != nil {
				return fmt.Errorf("window %d: %w", i, err)
			}
			wins[i] = res
		}
		return nil
	})
	if err != nil {
		return RunResult{}, err
	}
	return reduceSampled(rc, plans, wins), nil
}

// runWindow simulates one measurement window on a fresh system. pos
// tracks how many instructions each stream has generated so far; on
// return every stream sits at its canonical (plan-derived) position.
func runWindow(rc RunConfig, bound *workload.Bound, pl samplePlan, pos *[8]uint64) (RunResult, error) {
	sys, err := arch.Build(rc.Arch, rc.System)
	if err != nil {
		return RunResult{}, err
	}
	cores := rc.System.Cores

	// Position the streams at the start of the functional warmup.
	pre := pl.start - pl.fwarm - pl.dwarm
	for c := 0; c < cores; c++ {
		if pos[c] < pre {
			bound.Streams[c].Skip(pre - pos[c])
			pos[c] = pre
		}
	}

	// Functional fast-forward: cache, directory and adaptive state
	// advance with timing disabled.
	if pl.fwarm > 0 {
		sub := sys.Sub()
		sub.SetFunctional(true)
		cpu.FunctionalWarm(sys, bound.Streams[:cores], pl.fwarm)
		sub.SetFunctional(false)
		for c := 0; c < cores; c++ {
			pos[c] += pl.fwarm
		}
	}

	// Detailed window: a short timed warmup, then measurement.
	wrc := rc
	wrc.SampleWindows = 0
	wrc.Warmup = pl.dwarm
	wrc.Instructions = pl.measure
	measuredTarget := pl.dwarm + pl.measure
	idleTarget := uint64(sampleIdleWindowFactor) * measuredTarget
	var consumed [8]uint64
	res, err := runBound(wrc, sys, bound, idleTarget, &consumed)
	if err != nil {
		return RunResult{}, err
	}

	// Resynchronize every stream to its canonical post-window position:
	// the engine stops when the measured cores finish, so idle cores may
	// stop anywhere short of their own target.
	for c := 0; c < cores; c++ {
		target := measuredTarget
		if bound.Active&(1<<uint(c)) == 0 {
			target = idleTarget
		}
		if consumed[c] < target {
			bound.Streams[c].Skip(target - consumed[c])
		}
		pos[c] += target
	}
	return res, nil
}

// reduceSampled aggregates per-window results into the point estimate.
// Rate-like metrics are window means; Cycles, Retired and
// OffChipAccesses are extrapolated to the full budget by each window's
// stratum share.
func reduceSampled(rc RunConfig, plans []samplePlan, wins []RunResult) RunResult {
	k := len(wins)
	res := RunResult{Arch: rc.Arch, Workload: rc.Workload, Seed: rc.Seed}
	thr := make([]float64, k)
	ipc := make([]float64, k)
	aat := make([]float64, k)
	ocl := make([]float64, k)
	l1m := make([]float64, k)
	off := make([]float64, k)
	var cycles, retired, offTotal float64
	var perCore [8]float64
	var decomp [arch.NumLevels]float64
	for i, w := range wins {
		scale := float64(plans[i].stratum) / float64(plans[i].measure)
		thr[i] = w.Throughput
		ipc[i] = w.MeanIPC
		aat[i] = w.AvgAccessTime
		ocl[i] = w.OnChipLatency
		l1m[i] = w.L1MissRate
		off[i] = float64(w.OffChipAccesses) * scale
		offTotal += off[i]
		cycles += float64(w.Cycles) * scale
		retired += float64(w.Retired) * scale
		for c := range perCore {
			perCore[c] += w.PerCoreIPC[c]
		}
		for l := range decomp {
			decomp[l] += w.Decomposition[l]
		}
	}
	res.Throughput = stats.Mean(thr)
	res.MeanIPC = stats.Mean(ipc)
	res.AvgAccessTime = stats.Mean(aat)
	res.OnChipLatency = stats.Mean(ocl)
	res.L1MissRate = stats.Mean(l1m)
	for c := range perCore {
		res.PerCoreIPC[c] = perCore[c] / float64(k)
	}
	for l := range decomp {
		res.Decomposition[l] = decomp[l] / float64(k)
	}
	res.Cycles = sim.Cycle(cycles + 0.5)
	res.Retired = uint64(retired + 0.5)
	res.OffChipAccesses = uint64(offTotal + 0.5)

	// The off-chip estimate is for the run total: the per-window
	// extrapolations average to a per-stratum value, so both the mean
	// and its half-width scale by the window count.
	offEst := stats.EstimateOf(off)
	offEst.Mean *= float64(k)
	offEst.CI95 *= float64(k)
	res.Sampled = &SampleEstimate{
		Windows:         k,
		Throughput:      stats.EstimateOf(thr),
		MeanIPC:         stats.EstimateOf(ipc),
		AvgAccessTime:   stats.EstimateOf(aat),
		OnChipLatency:   stats.EstimateOf(ocl),
		L1MissRate:      stats.EstimateOf(l1m),
		OffChipAccesses: offEst,
	}
	return res
}

// SampleValidationArchs is the paper's evaluated set — the seven L2
// organizations the sampled-mode validation harness compares against
// full runs.
func SampleValidationArchs() []string {
	return []string{"shared", "private", "sp-nuca", "esp-nuca", "d-nuca", "asr", "cc"}
}

// SampledErrorRow reports sampled-vs-full agreement for one architecture:
// relative errors on the headline metrics and the wall-clock cost of
// both runs.
type SampledErrorRow struct {
	Arch string
	// Relative errors |sampled-full|/full.
	Throughput      float64
	AvgAccessTime   float64
	OffChipAccesses float64
	// RelCI95 is the sampled run's own reported Throughput confidence
	// half-width relative to its mean, for comparing the a-priori bound
	// with the measured error.
	RelCI95 float64

	FullSeconds    float64
	SampledSeconds float64
}

// SampledError is the validation harness: for every architecture in
// SampleValidationArchs it runs rc once in full and once sampled with k
// windows, and reports relative errors and wall clocks. rc.Arch and
// rc.SampleWindows are overridden per row.
func SampledError(rc RunConfig, k int) ([]SampledErrorRow, error) {
	rows := make([]SampledErrorRow, 0, len(SampleValidationArchs()))
	for _, a := range SampleValidationArchs() {
		frc := rc
		frc.Arch = a
		frc.SampleWindows = 0
		t0 := time.Now()
		full, err := Run(frc)
		if err != nil {
			return nil, fmt.Errorf("full %s: %w", a, err)
		}
		fullDur := time.Since(t0)

		src := rc
		src.Arch = a
		src.SampleWindows = k
		t0 = time.Now()
		samp, err := Run(src)
		if err != nil {
			return nil, fmt.Errorf("sampled %s: %w", a, err)
		}
		sampDur := time.Since(t0)

		rows = append(rows, SampledErrorRow{
			Arch:            a,
			Throughput:      relErr(samp.Throughput, full.Throughput),
			AvgAccessTime:   relErr(samp.AvgAccessTime, full.AvgAccessTime),
			OffChipAccesses: relErr(float64(samp.OffChipAccesses), float64(full.OffChipAccesses)),
			RelCI95:         samp.Sampled.Throughput.RelCI95(),
			FullSeconds:     fullDur.Seconds(),
			SampledSeconds:  sampDur.Seconds(),
		})
	}
	return rows, nil
}

// relErr returns |est-ref|/|ref| (0 when both are 0, +Inf when only the
// reference is).
func relErr(est, ref float64) float64 {
	if ref == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-ref) / math.Abs(ref)
}
