package experiment

import (
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

// TestPhasedWorkloadDrivesAdaptation runs ESP-NUCA end to end on a
// workload that alternates between a tiny-footprint phase and a
// high-utility phase, and checks the per-bank nmax budgets actually move
// in both directions (paper S3.2 / Figure 3: the controller must follow
// the application's phases).
func TestPhasedWorkloadDrivesAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("long adaptation run")
	}
	small := workload.AppProfile{
		Name: "tiny", MemFraction: 0.35, WriteFraction: 0.2,
		PrivateFootprint: 0.01, PrivateZipf: 1.0,
		SharedFraction: 0.4, SharedFootprint: 0.02, SharedZipf: 1.0,
		SharedWriteFraction: 0.1, CodeFootprint: 0.3, BranchFraction: 0.1,
		Recency: 0.5, CodeRecency: 0.95,
	}
	big := workload.AppProfile{
		Name: "hog", MemFraction: 0.4, WriteFraction: 0.2,
		PrivateFootprint: 2.0, PrivateZipf: 0.9, StreamFraction: 0.2,
		CodeFootprint: 0.3, BranchFraction: 0.08,
		Recency: 0.4, CodeRecency: 0.95,
	}
	spec, err := workload.PhasedSpec("phases", small, big, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.ScaledConfig()
	sys, err := arch.NewESPNUCA(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	bound := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), 1)
	eng := sim.NewEngine()
	cores := make([]*cpu.Core, 8)
	for c := 0; c < 8; c++ {
		cores[c] = cpu.New(c, cpu.DefaultConfig(), eng, sys, bound.Streams[c], 250_000)
		cores[c].Start()
	}
	var raised, lowered bool
	// Sample the controllers periodically while the run progresses.
	probe := func() {
		for _, smp := range sys.Samplers() {
			if smp.Raises > 0 {
				raised = true
			}
			if smp.Lowers > 0 {
				lowered = true
			}
		}
	}
	for !allDone(cores) {
		eng.RunUntil(0, func() bool {
			return allDone(cores) || cores[0].Retired()%50_000 < 256
		})
		probe()
		if raised && lowered {
			break
		}
		// Nudge past the sampling point.
		eng.Run(eng.Now() + 1000)
	}
	probe()
	if !raised {
		t.Error("no bank ever raised nmax during the small-footprint phases")
	}
	if !lowered {
		t.Error("no bank ever lowered nmax during the high-utility phases")
	}
}

func allDone(cores []*cpu.Core) bool {
	for _, c := range cores {
		if !c.Done {
			return false
		}
	}
	return true
}
