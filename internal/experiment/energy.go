package experiment

import (
	"fmt"

	"espnuca/internal/arch"
	"espnuca/internal/cacti"
)

// EnergyReport estimates the energy a run consumed, broken into L2
// array accesses, network traffic, DRAM traffic and L2 leakage. The
// paper reports no energy numbers; this report exists because the
// counterpart architectures trade exactly these terms (D-NUCA moves
// blocks, private replicates, shared ships data across the mesh), and a
// downstream user evaluating ESP-NUCA would want the comparison.
type EnergyReport struct {
	// All terms in millijoules over the simulated interval.
	L2DynamicMJ float64
	NetworkMJ   float64
	DRAMMJ      float64
	L2LeakMJ    float64
}

// TotalMJ sums the report's terms.
func (e EnergyReport) TotalMJ() float64 {
	return e.L2DynamicMJ + e.NetworkMJ + e.DRAMMJ + e.L2LeakMJ
}

// String renders the report.
func (e EnergyReport) String() string {
	return fmt.Sprintf("L2 %.3f mJ + network %.3f mJ + DRAM %.3f mJ + leakage %.3f mJ = %.3f mJ",
		e.L2DynamicMJ, e.NetworkMJ, e.DRAMMJ, e.L2LeakMJ, e.TotalMJ())
}

// EstimateEnergy derives an energy report from a finished system's
// counters using the analytic cacti models.
func EstimateEnergy(sys arch.System, cycles uint64) (EnergyReport, error) {
	sub := sys.Sub()
	cfg := sub.Cfg
	bankBytes := cfg.SetsPerBank * cfg.Ways * cfg.BlockBytes
	spec, err := cacti.Energy(cacti.Default45nm(), cacti.BankSpec{
		Bytes: bankBytes, Ways: cfg.Ways, BlockBytes: cfg.BlockBytes, Sequential: true,
	})
	if err != nil {
		return EnergyReport{}, err
	}
	net := cacti.DefaultNetworkEnergy()

	var rep EnergyReport
	for _, b := range sub.Bank {
		hits := float64(b.Stats.Hits)
		probes := float64(b.Stats.Misses) // tag-only probes
		writes := float64(b.Stats.Inserts)
		rep.L2DynamicMJ += (hits*spec.ReadNJ + probes*spec.TagNJ + writes*spec.WriteNJ) / 1e6
	}
	rep.NetworkMJ = float64(sub.Mesh.FlitHops) * net.FlitHopNJ / 1e6
	rep.DRAMMJ = float64(sub.DRAM.Accesses()) * net.DRAMAccessNJ / 1e6
	// Leakage: per-bank mW x simulated seconds at 3 GHz.
	seconds := float64(cycles) / 3e9
	rep.L2LeakMJ = spec.LeakMW * float64(cfg.Banks) * seconds
	return rep, nil
}
