package experiment

import (
	"reflect"
	"strings"
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/workload"
)

// quickRC returns a fast run config for unit tests.
func quickRC(archName, wl string) RunConfig {
	rc := DefaultRunConfig(archName, wl)
	rc.Warmup = 20_000
	rc.Instructions = 10_000
	return rc
}

func TestRunProducesMetrics(t *testing.T) {
	res, err := Run(quickRC("esp-nuca", "apache"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Retired == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Throughput <= 0 || res.MeanIPC <= 0 {
		t.Fatalf("non-positive performance: %+v", res)
	}
	if res.AvgAccessTime <= 0 {
		t.Fatal("no access time recorded")
	}
	sum := 0.0
	for l := arch.Level(0); l < arch.NumLevels; l++ {
		sum += res.Decomposition[l]
	}
	if diff := sum - res.AvgAccessTime; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("decomposition sum %g != total %g", sum, res.AvgAccessTime)
	}
	if res.L1MissRate <= 0 || res.L1MissRate >= 1 {
		t.Fatalf("implausible L1 miss rate %g", res.L1MissRate)
	}
}

func TestRunUnknownInputs(t *testing.T) {
	rc := quickRC("esp-nuca", "nonexistent")
	if _, err := Run(rc); err == nil {
		t.Error("unknown workload accepted")
	}
	rc = quickRC("nonexistent", "apache")
	if _, err := Run(rc); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(quickRC("sp-nuca", "jbb"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickRC("sp-nuca", "jbb"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.OffChipAccesses != b.OffChipAccesses {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	rc := quickRC("sp-nuca", "jbb")
	rc.Seed = 2
	c, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cycles == a.Cycles && c.OffChipAccesses == a.OffChipAccesses {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestRunOnSeedAlignment pins the Run/RunOn symmetry: a caller-built
// system must run the stochastic mechanisms (ASR's probabilistic
// allocation, CC's cooperation probability) on the run seed, not on
// whatever seed the config carried at build time. Regression test for
// RunOn results depending on build-time config state.
func TestRunOnSeedAlignment(t *testing.T) {
	for _, a := range []string{"asr", "cc"} {
		rc := quickRC(a, "apache")
		rc.Warmup, rc.Instructions = 6_000, 3_000
		rc.Seed = 5
		want, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		cfg := rc.System
		cfg.Seed = 99 // stale seed a caller-built system might carry
		sys, err := arch.Build(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunOn(rc, sys)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: RunOn with a stale build seed diverged from Run:\n got  %+v\n want %+v", a, got, want)
		}
	}
}

func TestRunNoProgressError(t *testing.T) {
	rc := quickRC("shared", "apache")
	rc.Warmup, rc.Instructions = 0, 0
	if _, err := Run(rc); err == nil || !strings.Contains(err.Error(), "made no progress") {
		t.Fatalf("err = %v, want a 'made no progress' failure for an empty budget", err)
	}
}

// TestRunMaxCyclesTruncates pins the documented MaxCycles contract:
// expiry is not an error — the run reports whatever the cores retired by
// the bound.
func TestRunMaxCyclesTruncates(t *testing.T) {
	rc := quickRC("shared", "apache")
	rc.Warmup = 0
	rc.Instructions = 1 << 30 // far beyond what the cycle bound allows
	rc.MaxCycles = 20_000
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("truncated run retired nothing")
	}
	if res.Retired >= 8*rc.Instructions {
		t.Fatalf("retired %d: the cycle bound did not truncate", res.Retired)
	}
	// Cores may overshoot the engine bound slightly (an in-flight slice
	// drains its outstanding misses), but not by a meaningful fraction.
	if res.Cycles > rc.MaxCycles+5_000 {
		t.Fatalf("measured %d cycles, far beyond the %d bound", res.Cycles, rc.MaxCycles)
	}
}

func TestRunHalfRateMeasuresActiveCoresOnly(t *testing.T) {
	res, err := Run(quickRC("shared", "gcc-4"))
	if err != nil {
		t.Fatal(err)
	}
	// 4 measured cores x 10k instructions.
	if res.Retired != 4*10_000 {
		t.Fatalf("retired = %d, want 40000", res.Retired)
	}
}

func TestPerformanceMetricByKind(t *testing.T) {
	r := RunResult{Throughput: 8, MeanIPC: 1}
	if r.Performance(workload.Transactional) != 8 {
		t.Error("transactional must use throughput")
	}
	if r.Performance(workload.HalfRate) != 1 || r.Performance(workload.Hybrid) != 1 {
		t.Error("multiprogrammed must use mean IPC")
	}
	if r.Performance(workload.NAS) != 8 {
		t.Error("NAS must use throughput")
	}
}

func TestMatrixRunAndNormalize(t *testing.T) {
	m := NewMatrix([]string{"gzip-4"}, []Variant{V("shared", "shared"), V("esp-nuca", "esp-nuca")})
	m.Seeds = []uint64{1, 2}
	m.Instructions = 8_000
	calls := 0
	res, err := m.Run(func(done, total int) {
		calls++
		if total != 4 {
			t.Fatalf("total = %d, want 4", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("progress calls = %d", calls)
	}
	n, ci, err := res.Normalized("esp-nuca", "shared", "gzip-4")
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("normalized = %g", n)
	}
	if ci < 0 {
		t.Fatalf("negative CI %g", ci)
	}
	if _, _, err := res.Normalized("esp-nuca", "shared", "bogus"); err == nil {
		t.Error("missing cell not reported")
	}
	g, err := res.GeoMeanNormalized("esp-nuca", "shared", []string{"gzip-4"})
	if err != nil || g != n {
		t.Fatalf("geomean over one workload = %g, want %g (%v)", g, n, err)
	}
	v, err := res.VarianceNormalized("esp-nuca", "shared", []string{"gzip-4"})
	if err != nil || v != 0 {
		t.Fatalf("variance over one workload = %g (%v)", v, err)
	}
}

func TestCCVariantLabels(t *testing.T) {
	fam := CCFamily()
	if len(fam) != 4 {
		t.Fatalf("CC family size %d", len(fam))
	}
	want := []string{"CC00", "CC30", "CC70", "CC100"}
	for i, v := range fam {
		if v.Label != want[i] {
			t.Fatalf("label %q, want %q", v.Label, want[i])
		}
		if v.Arch != "cc" {
			t.Fatalf("arch %q", v.Arch)
		}
	}
}

func TestCounterpartVariants(t *testing.T) {
	vs := CounterpartVariants()
	if len(vs) != 5 {
		t.Fatalf("counterparts = %d", len(vs))
	}
	for _, v := range vs {
		if _, err := arch.Build(v.Arch, arch.ScaledConfig()); err != nil {
			t.Errorf("variant %s unbuildable: %v", v.Label, err)
		}
	}
}

func TestTable1Catalog(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 22 {
		t.Fatalf("Table 1 has %d rows, want 22", len(tab.Rows))
	}
	if tab.String() == "" {
		t.Fatal("empty render")
	}
}

// TestPaperShapes verifies the qualitative results the reproduction must
// preserve (see DESIGN.md §4). It is the repository's headline regression
// test; run without -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shape test")
	}
	perf := func(archName, wl string) float64 {
		rc := DefaultRunConfig(archName, wl)
		res, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		spec, _ := workload.ByName(wl)
		return res.Performance(spec.Kind)
	}

	// Transactional (Fig. 8): ESP-NUCA beats shared; private trails.
	sharedA := perf("shared", "apache")
	if esp := perf("esp-nuca", "apache"); esp < sharedA*1.02 {
		t.Errorf("apache: esp-nuca %.3f not above shared %.3f", esp, sharedA)
	}
	if priv := perf("private", "apache"); priv > sharedA {
		t.Errorf("apache: private %.3f above shared %.3f", priv, sharedA)
	}

	// Half-rate low-utility (Fig. 9): private far below shared on art.
	sharedArt := perf("shared", "art-4")
	if priv := perf("private", "art-4"); priv > sharedArt*0.8 {
		t.Errorf("art-4: private %.3f not well below shared %.3f", priv, sharedArt)
	}

	// Cache-friendly half-rate (Fig. 9): private above shared on gzip.
	sharedGz := perf("shared", "gzip-4")
	if priv := perf("private", "gzip-4"); priv < sharedGz {
		t.Errorf("gzip-4: private %.3f below shared %.3f", priv, sharedGz)
	}

	// NAS (Fig. 10): ESP-NUCA at least matches shared; private ahead of
	// shared.
	sharedLU := perf("shared", "LU")
	if esp := perf("esp-nuca", "LU"); esp < sharedLU {
		t.Errorf("LU: esp-nuca %.3f below shared %.3f", esp, sharedLU)
	}
	if priv := perf("private", "LU"); priv < sharedLU {
		t.Errorf("LU: private %.3f below shared %.3f", priv, sharedLU)
	}

	// Hybrid isolation (Fig. 9): shared is the worst alternative on
	// mcf-gzip.
	sharedMG := perf("shared", "mcf-gzip")
	for _, a := range []string{"private", "esp-nuca", "cc"} {
		if p := perf(a, "mcf-gzip"); p < sharedMG {
			t.Errorf("mcf-gzip: %s %.3f below shared %.3f", a, p, sharedMG)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Columns: []string{"a", "b,c"},
		Rows:    []TableRow{{Label: "x,y", Values: []float64{1, 2.5}}},
	}
	csv := tab.CSV()
	want := "label,a,b;c\nx;y,1,2.5\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
