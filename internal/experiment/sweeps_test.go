package experiment

import (
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/sim"
)

func sweepOpts() Options {
	return Options{Warmup: 15_000, Instructions: 6_000, System: arch.ScaledConfig()}
}

func TestHopLatencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := HopLatencySweep("oltp", []sim.Cycle{2, 10}, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Values[0] <= 0 || r.Values[1] <= 0 {
			t.Fatalf("row %s has non-positive performance", r.Label)
		}
	}
	// ESP-NUCA's relative gain should not shrink as wires get slower.
	if tab.Rows[1].Values[2] < tab.Rows[0].Values[2]*0.97 {
		t.Fatalf("gain fell with hop latency: %.3f -> %.3f",
			tab.Rows[0].Values[2], tab.Rows[1].Values[2])
	}
}

func TestCapacitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := CapacitySweep("oltp", []int{16, 64}, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// More capacity must not make either architecture slower.
	if tab.Rows[1].Values[0] < tab.Rows[0].Values[0]*0.95 {
		t.Fatalf("shared got slower with more L2: %.3f -> %.3f",
			tab.Rows[0].Values[0], tab.Rows[1].Values[0])
	}
}

func TestL1Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab, err := L1Sweep("oltp", []int{4 * 1024, 16 * 1024}, sweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// A bigger L1 filter must not hurt absolute performance.
	if tab.Rows[1].Values[1] < tab.Rows[0].Values[1]*0.95 {
		t.Fatalf("esp-nuca got slower with a bigger L1: %.3f -> %.3f",
			tab.Rows[0].Values[1], tab.Rows[1].Values[1])
	}
}
