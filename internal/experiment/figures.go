package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"espnuca/internal/arch"
	"espnuca/internal/workload"
)

// Table is a rendered experiment result: one row per workload (or
// summary), one column per series, matching a figure in the paper.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []TableRow
	Notes   []string
}

// TableRow is one labelled row of values.
type TableRow struct {
	Label  string
	Values []float64
}

// String renders the table as fixed-width text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-12s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%12.3f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tune figure regeneration cost.
type Options struct {
	Seeds        []uint64
	Warmup       uint64
	Instructions uint64
	System       arch.Config
	Progress     func(done, total int)
	// Parallelism bounds the worker pool the underlying matrices and
	// sweeps fan their independent simulations out over (0: all cores,
	// 1: serial). Results are deterministic at any setting.
	Parallelism int
	// SampleWindows, when positive, runs every simulation in sampled
	// mode with that many measurement windows (see
	// RunConfig.SampleWindows). Figures regenerate much faster; each
	// underlying RunResult carries its error bound in Sampled.
	SampleWindows int
	// EngineShards, when positive, runs every simulation on the sharded
	// engine with that many mesh-region shards (see
	// RunConfig.EngineShards). Full-detail results on a different
	// canonical key; mutually exclusive with SampleWindows.
	EngineShards int
	// BarrierParallelism bounds the workers each sharded simulation's
	// window barriers spread their conflict groups over (see
	// RunConfig.BarrierParallelism). Bit-identical at any setting; only
	// meaningful with EngineShards.
	BarrierParallelism int
	// Obs, when non-nil, captures per-run telemetry files (see ObsSpec).
	Obs *ObsSpec
	// RunFunc, when non-nil, substitutes Run for every independent
	// simulation (see Matrix.RunFunc); the result cache plugs in here.
	RunFunc func(RunConfig) (RunResult, error)
}

// DefaultOptions is the full-quality setting used by cmd/espsweep.
func DefaultOptions() Options {
	return Options{Seeds: []uint64{1, 2, 3}, Warmup: 80_000, Instructions: 40_000, System: arch.ScaledConfig()}
}

// QuickOptions is a reduced-cost setting for benchmarks and smoke tests.
func QuickOptions() Options {
	return Options{Seeds: []uint64{1}, Warmup: 25_000, Instructions: 10_000, System: arch.ScaledConfig()}
}

func (o Options) matrix(workloads []string, variants []Variant) Matrix {
	m := NewMatrix(workloads, variants)
	if len(o.Seeds) > 0 {
		m.Seeds = o.Seeds
	}
	if o.Warmup > 0 {
		m.Warmup = o.Warmup
	}
	if o.Instructions > 0 {
		m.Instructions = o.Instructions
	}
	m.System = o.System
	m.Parallelism = o.Parallelism
	m.SampleWindows = o.SampleWindows
	m.EngineShards = o.EngineShards
	m.BarrierParallelism = o.BarrierParallelism
	m.Obs = o.Obs
	m.RunFunc = o.RunFunc
	return m
}

// fig45Workloads is the 12-workload set of Figures 4 and 5 (NAS suite +
// transactional suite).
func fig45Workloads() []string {
	return []string{"BT", "CG", "FT", "IS", "LU", "MG", "SP", "UA", "apache", "jbb", "oltp", "zeus"}
}

func transactionalWorkloads() []string { return []string{"apache", "jbb", "oltp", "zeus"} }

func multiprogrammedWorkloads() []string {
	return []string{"art-4", "gcc-4", "gzip-4", "mcf-4", "twolf-4",
		"art-gzip", "gcc-gzip", "gcc-twolf", "mcf-gzip", "mcf-twolf"}
}

func nasWorkloads() []string { return []string{"BT", "CG", "FT", "IS", "LU", "MG", "SP", "UA"} }

// Figure4 regenerates "Dynamic partitioning in SP-NUCA": SP-NUCA
// (flat LRU) and the static partition, normalized to shadow tags.
func Figure4(o Options) (Table, error) {
	m := o.matrix(fig45Workloads(), []Variant{
		V("sp-nuca", "sp-nuca"),
		V("static", "sp-nuca-static"),
		V("shadow", "sp-nuca-shadow"),
	})
	res, err := m.Run(o.Progress)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 4",
		Title:   "SP-NUCA flat-LRU and static partition, normalized to shadow tags",
		Columns: []string{"SP-NUCA", "Static"},
	}
	for _, wl := range m.Workloads {
		flat, _, err := res.Normalized("sp-nuca", "shadow", wl)
		if err != nil {
			return Table{}, err
		}
		static, _, err := res.Normalized("static", "shadow", wl)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, TableRow{Label: wl, Values: []float64{flat, static}})
	}
	return t, nil
}

// Figure5 regenerates "ESP-NUCA replacement policies normalized with
// SP-NUCA": flat LRU vs protected LRU.
func Figure5(o Options) (Table, error) {
	m := o.matrix(fig45Workloads(), []Variant{
		V("sp-nuca", "sp-nuca"),
		V("flat", "esp-nuca-flat"),
		V("protected", "esp-nuca"),
	})
	res, err := m.Run(o.Progress)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 5",
		Title:   "ESP-NUCA flat vs protected LRU, normalized to SP-NUCA",
		Columns: []string{"Flat-LRU", "Protected-LRU"},
	}
	for _, wl := range m.Workloads {
		flat, _, err := res.Normalized("flat", "sp-nuca", wl)
		if err != nil {
			return Table{}, err
		}
		prot, _, err := res.Normalized("protected", "sp-nuca", wl)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, TableRow{Label: wl, Values: []float64{flat, prot}})
	}
	return t, nil
}

// fig6Variants is the architecture set of Figures 6 and 7.
func fig6Variants() []Variant {
	vs := []Variant{V("shared", "shared"), V("private", "private"),
		V("d-nuca", "d-nuca"), V("asr", "asr")}
	vs = append(vs, CCFamily()...)
	return append(vs, V("esp-nuca", "esp-nuca"))
}

// Figure6 regenerates the average access time decomposition for the
// transactional workloads: one row per (workload, architecture), columns
// = the six latency components in cycles.
func Figure6(o Options) (Table, error) {
	m := o.matrix(transactionalWorkloads(), fig6Variants())
	res, err := m.Run(o.Progress)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "Figure 6",
		Title: "Average access time decomposition (cycles per access)",
		Columns: []string{"LocalL1", "RemoteL1", "Loc/PrivL2",
			"RemoteL2", "SharedL2", "OffChip", "Total"},
	}
	for _, wl := range m.Workloads {
		for _, v := range fig6Variants() {
			cell := res[v.Label][wl]
			var dec [arch.NumLevels]float64
			var tot float64
			for _, r := range cell.Runs {
				for l := 0; l < int(arch.NumLevels); l++ {
					dec[l] += r.Decomposition[l]
				}
				tot += r.AvgAccessTime
			}
			n := float64(len(cell.Runs))
			vals := make([]float64, 0, 7)
			for l := 0; l < int(arch.NumLevels); l++ {
				vals = append(vals, dec[l]/n)
			}
			vals = append(vals, tot/n)
			t.Rows = append(t.Rows, TableRow{Label: wl + "/" + v.Label, Values: vals})
		}
	}
	return t, nil
}

// Figure7 regenerates the normalized off-chip access count and on-chip
// latency for transactional workloads (averaged over the suite, per
// architecture, normalized to shared).
func Figure7(o Options) (Table, error) {
	m := o.matrix(transactionalWorkloads(), fig6Variants())
	res, err := m.Run(o.Progress)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Figure 7",
		Title:   "Off-chip accesses and on-chip latency, normalized to shared",
		Columns: []string{"OffChipAcc", "OnChipLat"},
	}
	mean := func(label, wl string, f func(RunResult) float64) float64 {
		cell := res[label][wl]
		s := 0.0
		for _, r := range cell.Runs {
			s += f(r)
		}
		return s / float64(len(cell.Runs))
	}
	for _, v := range fig6Variants() {
		var off, lat float64
		for _, wl := range m.Workloads {
			offBase := mean("shared", wl, func(r RunResult) float64 { return float64(r.OffChipAccesses) })
			latBase := mean("shared", wl, func(r RunResult) float64 { return r.OnChipLatency })
			off += mean(v.Label, wl, func(r RunResult) float64 { return float64(r.OffChipAccesses) }) / offBase
			lat += mean(v.Label, wl, func(r RunResult) float64 { return r.OnChipLatency }) / latBase
		}
		n := float64(len(m.Workloads))
		t.Rows = append(t.Rows, TableRow{Label: v.Label, Values: []float64{off / n, lat / n}})
	}
	return t, nil
}

// perfFigure regenerates a normalized-performance figure (8, 9 or 10).
func perfFigure(o Options, id, title string, workloads []string, summaryLabel string) (Table, error) {
	variants := append(CounterpartVariants(), CCFamily()...)
	m := o.matrix(workloads, variants)
	res, err := m.Run(o.Progress)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    id,
		Title: title,
		Columns: []string{"shared", "private", "d-nuca", "asr",
			"cc-avg", "cc-best", "cc-worst", "esp-nuca"},
	}
	series := []string{"shared", "private", "d-nuca", "asr"}
	perWl := map[string][]float64{}
	for _, wl := range workloads {
		row := TableRow{Label: wl}
		for _, sName := range series {
			n, _, err := res.Normalized(sName, "shared", wl)
			if err != nil {
				return Table{}, err
			}
			row.Values = append(row.Values, n)
			perWl[sName] = append(perWl[sName], n)
		}
		avg, best, worst, err := res.CCAggregate("shared", wl)
		if err != nil {
			return Table{}, err
		}
		row.Values = append(row.Values, avg, best, worst)
		perWl["cc-avg"] = append(perWl["cc-avg"], avg)
		esp, _, err := res.Normalized("esp-nuca", "shared", wl)
		if err != nil {
			return Table{}, err
		}
		row.Values = append(row.Values, esp)
		perWl["esp-nuca"] = append(perWl["esp-nuca"], esp)
		t.Rows = append(t.Rows, row)
	}

	// Summary row: geomean of normalized performance.
	sum := TableRow{Label: summaryLabel}
	for _, sName := range []string{"shared", "private", "d-nuca", "asr"} {
		g, err := res.GeoMeanNormalized(sName, "shared", workloads)
		if err != nil {
			return Table{}, err
		}
		sum.Values = append(sum.Values, g)
	}
	// CC summary over the per-workload aggregates.
	gm := func(vals []float64) float64 {
		p := 1.0
		for _, v := range vals {
			p *= v
		}
		n := float64(len(vals))
		return pow(p, 1/n)
	}
	sum.Values = append(sum.Values, gm(perWl["cc-avg"]), 0, 0)
	ge, err := res.GeoMeanNormalized("esp-nuca", "shared", workloads)
	if err != nil {
		return Table{}, err
	}
	sum.Values = append(sum.Values, ge)
	t.Rows = append(t.Rows, sum)

	// Stability: variance of normalized performance across workloads.
	names := []string{"d-nuca", "asr", "cc-avg", "esp-nuca"}
	sort.Strings(names)
	for _, n := range names {
		v := variance(perWl[n])
		t.Notes = append(t.Notes, fmt.Sprintf("variance(%s) = %.5f", n, v))
	}
	return t, nil
}

// Figure8 regenerates shared-normalized performance for transactional
// workloads.
func Figure8(o Options) (Table, error) {
	return perfFigure(o, "Figure 8",
		"Shared-cache-normalized performance, transactional workloads",
		transactionalWorkloads(), "GEOMEAN")
}

// Figure9 regenerates shared-normalized performance for multiprogrammed
// workloads.
func Figure9(o Options) (Table, error) {
	return perfFigure(o, "Figure 9",
		"Shared-cache-normalized performance, multiprogrammed workloads",
		multiprogrammedWorkloads(), "GEOMEAN")
}

// Figure10 regenerates shared-normalized performance for the NAS suite.
func Figure10(o Options) (Table, error) {
	return perfFigure(o, "Figure 10",
		"Shared-cache-normalized performance, NAS Parallel Benchmarks",
		nasWorkloads(), "GMEAN")
}

// Table1 renders the workload catalog.
func Table1() Table {
	t := Table{ID: "Table 1", Title: "Workloads under study", Columns: []string{"kind", "cores"}}
	for _, s := range workload.Catalog() {
		t.Rows = append(t.Rows, TableRow{Label: s.Name, Values: []float64{float64(s.Kind), float64(popcount(s.ActiveCores()))}})
	}
	return t
}

func popcount(m uint8) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

func variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s / float64(len(xs)-1)
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// CSV renders the table as comma-separated values (header row first),
// for plotting outside the repository.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString("label")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(strings.ReplaceAll(c, ",", ";"))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.ReplaceAll(r.Label, ",", ";"))
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
