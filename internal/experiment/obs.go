package experiment

import (
	"os"
	"path/filepath"

	"espnuca/internal/arch"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
)

// DefaultMetricsInterval is the sampling interval used when a registry is
// attached without an explicit one: fine enough to resolve the nmax
// adaptation transient within a quick run, coarse enough that snapshot
// cost stays negligible.
const DefaultMetricsInterval sim.Cycle = 5_000

// dispatchBounds buckets host-side event execution latency in
// nanoseconds for the engine dispatch histogram.
var dispatchBounds = []float64{100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000}

// engineProbe adapts obs instruments to the sim.Probe interface: each
// dispatched event records its host-side execution time and the queue
// depth after the pop.
type engineProbe struct {
	dispatchNS *obs.Histogram
	queueDepth *obs.Gauge
}

func (p *engineProbe) OnDispatch(now sim.Cycle, depth int, wallNS int64) {
	p.dispatchNS.Observe(float64(wallNS))
	p.queueDepth.Set(float64(depth))
}

// Instrument wires a registry into a live engine + system pair: the
// substrate probes (per-bank hit rates, NoC, DRAM), the architecture's
// own probes when it implements arch.Observable (ESP-NUCA's nmax/EMA
// series), the engine dispatch probe, and a self-rescheduling tick event
// that closes one sampling interval every interval cycles. Interval 0
// uses DefaultMetricsInterval. The experiment harness and the trace
// replayer share this path so their telemetry cannot drift apart.
func Instrument(eng *sim.Engine, sys arch.System, reg *obs.Registry, interval sim.Cycle) {
	if reg == nil {
		return
	}
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	sys.Sub().AttachObs(reg)
	if o, ok := sys.(arch.Observable); ok {
		o.AttachObs(reg)
	}
	eng.SetProbe(&engineProbe{
		dispatchNS: reg.Histogram("engine.dispatch_ns", dispatchBounds),
		queueDepth: reg.Gauge("engine.queue_depth"),
	})
	var tick sim.Event
	tick = func() {
		reg.Tick(uint64(eng.Now()))
		eng.Schedule(interval, tick)
	}
	eng.Schedule(interval, tick)
}

// ObsSpec configures per-run telemetry capture for matrix and figure
// runs: each cell gets its own registry whose interval snapshots land in
// Dir as <variant>_<workload>_s<seed>.metrics.jsonl (and, with Trace,
// a Perfetto-loadable <...>.trace.json alongside).
type ObsSpec struct {
	// Dir is the output directory; it is created if missing.
	Dir string
	// Interval is the sampling interval in cycles (0 uses
	// DefaultMetricsInterval).
	Interval sim.Cycle
	// Trace additionally records Chrome trace_event JSON per run.
	Trace bool
}

// open prepares the registry and sinks for one run named name. The
// returned finish must be called after the run completes; it flushes and
// closes the files and reports the first sink error.
func (sp *ObsSpec) open(name string) (*obs.Registry, func() error, error) {
	if err := os.MkdirAll(sp.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	reg := obs.NewRegistry()
	f, err := os.Create(filepath.Join(sp.Dir, name+".metrics.jsonl"))
	if err != nil {
		return nil, nil, err
	}
	reg.AttachJSONL(f)
	if sp.Trace {
		reg.EnableTrace()
	}
	finish := func() error {
		err := reg.Err()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if sp.Trace && err == nil {
			tf, terr := os.Create(filepath.Join(sp.Dir, name+".trace.json"))
			if terr != nil {
				return terr
			}
			err = reg.Trace().WriteJSON(tf)
			if cerr := tf.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}
	return reg, finish, nil
}
