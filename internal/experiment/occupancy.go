package experiment

import (
	"fmt"
	"strings"

	"espnuca/internal/arch"
	"espnuca/internal/cache"
)

// OccupancyReport is a post-run snapshot of what the L2 actually holds:
// per-tile occupancy and the block-class mix. For SP/ESP-NUCA it shows
// the dynamic private/shared partition and the helping-block population —
// the physical outcome of the mechanisms the paper proposes.
type OccupancyReport struct {
	// PerTile[t] is the tile's occupancy snapshot (banks 4t..4t+3).
	PerTile []TileOccupancy
	// Class counts blocks by class over the whole L2.
	Class map[cache.Class]int
	// Capacity is the total L2 line capacity.
	Capacity int
}

// TileOccupancy is one tile's population.
type TileOccupancy struct {
	Tile     int
	Valid    int
	Capacity int
	Class    map[cache.Class]int
}

// Occupancy inspects a finished system's banks.
func Occupancy(sys arch.System) OccupancyReport {
	sub := sys.Sub()
	cfg := sub.Cfg
	perNode := cfg.Banks / cfg.Cores
	rep := OccupancyReport{
		Class:    map[cache.Class]int{},
		Capacity: cfg.L2Lines(),
	}
	for tile := 0; tile < cfg.Cores; tile++ {
		to := TileOccupancy{
			Tile:     tile,
			Capacity: perNode * cfg.SetsPerBank * cfg.Ways,
			Class:    map[cache.Class]int{},
		}
		for b := tile * perNode; b < (tile+1)*perNode; b++ {
			bank := sub.Bank[b]
			for si := 0; si < bank.Sets(); si++ {
				for _, blk := range bank.Set(si).Blocks {
					if !blk.Valid {
						continue
					}
					to.Valid++
					to.Class[blk.Class]++
					rep.Class[blk.Class]++
				}
			}
		}
		rep.PerTile = append(rep.PerTile, to)
	}
	return rep
}

// Valid returns the total occupied lines.
func (r OccupancyReport) Valid() int {
	n := 0
	for _, t := range r.PerTile {
		n += t.Valid
	}
	return n
}

// HelpingFraction returns the fraction of occupied lines that are
// helping blocks (replicas + victims).
func (r OccupancyReport) HelpingFraction() float64 {
	v := r.Valid()
	if v == 0 {
		return 0
	}
	return float64(r.Class[cache.Replica]+r.Class[cache.Victim]) / float64(v)
}

// String renders the report.
func (r OccupancyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L2 occupancy %d/%d lines (%.1f%%); class mix:",
		r.Valid(), r.Capacity, 100*float64(r.Valid())/float64(r.Capacity))
	for _, c := range []cache.Class{cache.Private, cache.Shared, cache.Replica, cache.Victim} {
		if n := r.Class[c]; n > 0 {
			fmt.Fprintf(&b, " %s=%d", c, n)
		}
	}
	b.WriteByte('\n')
	for _, t := range r.PerTile {
		fmt.Fprintf(&b, "  tile %d: %4d/%4d", t.Tile, t.Valid, t.Capacity)
		for _, c := range []cache.Class{cache.Private, cache.Shared, cache.Replica, cache.Victim} {
			if n := t.Class[c]; n > 0 {
				fmt.Fprintf(&b, "  %s %d", c, n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
