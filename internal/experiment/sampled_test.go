package experiment

import (
	"reflect"
	"strings"
	"testing"

	"espnuca/internal/obs"
)

// sampledGateMaxRelErr is the committed accuracy bound CI holds sampled
// execution to: the Throughput relative error versus a full run, for
// every architecture of the paper's evaluated set (see BENCH_6.json for
// the full-config measurements backing it).
const sampledGateMaxRelErr = 0.05

// sampledQuickRC is a fast sampled configuration for unit tests.
func sampledQuickRC(archName, wl string, k int) RunConfig {
	rc := DefaultRunConfig(archName, wl)
	rc.Warmup = 12_000
	rc.Instructions = 8_000
	rc.SampleWindows = k
	rc.SampleParallelism = 1
	return rc
}

func TestSamplePlans(t *testing.T) {
	cases := []struct {
		warmup, instructions uint64
		k                    int
	}{
		{80_000, 640_000, 8},
		{80_000, 40_000, 1},
		{12_000, 8_000, 4},
		{0, 1_000, 3},
		{5_000, 40_000, 7}, // uneven strata
	}
	for _, c := range cases {
		plans := samplePlans(c.warmup, c.instructions, c.k)
		if len(plans) != c.k {
			t.Fatalf("(%d,%d,%d): %d plans", c.warmup, c.instructions, c.k, len(plans))
		}
		var total uint64
		prevEnd := uint64(0)
		pos := c.warmup
		for i, pl := range plans {
			total += pl.stratum
			if pl.start != pos {
				t.Errorf("(%d,%d,%d) window %d: start %d, want stratum head %d",
					c.warmup, c.instructions, c.k, i, pl.start, pos)
			}
			if pl.measure < 1 || pl.measure > pl.stratum {
				t.Errorf("window %d: measure %d outside [1, stratum=%d]", i, pl.measure, pl.stratum)
			}
			if pl.dwarm > sampleMaxDetailWarm || pl.fwarm > sampleMaxFuncWarm {
				t.Errorf("window %d: warm (%d,%d) exceeds caps", i, pl.fwarm, pl.dwarm)
			}
			pre := pl.start - pl.fwarm - pl.dwarm
			if pre < prevEnd {
				t.Errorf("window %d: warmup reaches back to %d, past the previous window's "+
					"farthest stream position %d (a worker's streams must only move forward)",
					i, pre, prevEnd)
			}
			// The farthest any stream travels in the window: idle cores run
			// to their bounded target past the measured cores'.
			prevEnd = pre + pl.fwarm + sampleIdleWindowFactor*(pl.dwarm+pl.measure)
			if end := pl.start + pl.stratum; prevEnd > end {
				t.Errorf("window %d: idle end %d spills past the stratum end %d", i, prevEnd, end)
			}
			pos += pl.stratum
		}
		if total != c.instructions {
			t.Errorf("(%d,%d,%d): strata sum to %d, want the full budget",
				c.warmup, c.instructions, c.k, total)
		}
	}
}

func TestSampledRunCarriesEstimate(t *testing.T) {
	rc := sampledQuickRC("esp-nuca", "apache", 4)
	res, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == nil {
		t.Fatal("sampled run returned a nil error bound (RunResult.Sampled)")
	}
	if res.Sampled.Windows != 4 {
		t.Errorf("Windows = %d, want 4", res.Sampled.Windows)
	}
	for name, e := range map[string]float64{
		"Throughput":    res.Sampled.Throughput.Mean,
		"AvgAccessTime": res.Sampled.AvgAccessTime.Mean,
		"L1MissRate":    res.Sampled.L1MissRate.Mean,
	} {
		if e <= 0 {
			t.Errorf("estimate %s mean = %g, want > 0", name, e)
		}
	}
	if n := res.Sampled.Throughput.N; n != 4 {
		t.Errorf("Throughput.N = %d, want one sample per window", n)
	}
	if res.Sampled.Throughput.Mean != res.Throughput {
		t.Errorf("headline Throughput %g != estimate mean %g", res.Throughput, res.Sampled.Throughput.Mean)
	}
	if res.Sampled.Throughput.CI95 <= 0 {
		t.Errorf("CI95 = %g, want > 0 across 4 windows", res.Sampled.Throughput.CI95)
	}

	// The extrapolated retirement total must equal the full run's exactly:
	// each window retires measure instructions per measured core and is
	// scaled by stratum/measure, and the strata tile the budget.
	frc := rc
	frc.SampleWindows = 0
	full, err := Run(frc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired != full.Retired {
		t.Errorf("extrapolated Retired = %d, full run = %d", res.Retired, full.Retired)
	}
	if full.Sampled != nil {
		t.Error("full run carries a sampled estimate")
	}
}

// TestSampledParallelDeterminism is the concurrency contract of sampled
// execution: window results are bit-identical whether the windows run
// serially or fan out over workers (uneven chunking included). It is the
// -race smoke test for the concurrent measurement windows.
func TestSampledParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled runs")
	}
	for _, wl := range []string{"apache", "gcc-4"} { // all-core and half-rate (idle cores)
		rc := sampledQuickRC("esp-nuca", wl, 4)
		base, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 3, 4} {
			rc.SampleParallelism = p
			got, err := Run(rc)
			if err != nil {
				t.Fatalf("%s p=%d: %v", wl, p, err)
			}
			if !reflect.DeepEqual(got, base) {
				t.Errorf("%s: results at SampleParallelism=%d differ from serial:\n got  %+v\n want %+v",
					wl, p, got, base)
			}
		}
	}
}

func TestSampledRejectsBadConfigs(t *testing.T) {
	rc := sampledQuickRC("esp-nuca", "apache", 2)
	rc.Metrics = obs.NewRegistry()
	if _, err := Run(rc); err == nil || !strings.Contains(err.Error(), "telemetry") {
		t.Errorf("telemetry in sampled mode: err = %v, want rejection", err)
	}

	rc = sampledQuickRC("esp-nuca", "apache", 2)
	rc.Instructions = 8 // < k * sampleMeasureShare
	if _, err := Run(rc); err == nil {
		t.Error("undersized budget accepted")
	}

	rc = sampledQuickRC("esp-nuca", "no-such-workload", 2)
	if _, err := Run(rc); err == nil {
		t.Error("unknown workload accepted")
	}

	rc = sampledQuickRC("esp-nuca", "apache", 0)
	if _, err := RunSampled(rc); err == nil {
		t.Error("SampleWindows=0 accepted by RunSampled")
	}
}

func TestSampledMatrixRejectsTelemetry(t *testing.T) {
	m := NewMatrix([]string{"apache"}, []Variant{V("shared", "shared")})
	m.SampleWindows = 2
	m.Obs = &ObsSpec{Dir: t.TempDir()}
	if _, err := m.Run(nil); err == nil {
		t.Fatal("matrix accepted telemetry capture in sampled mode")
	}
}

// TestSampledErrorGate is the CI accuracy gate: at the committed
// BENCH_6.json configuration of the largest catalog workload, the sampled
// estimate's Throughput must stay within sampledGateMaxRelErr of the full
// run for every architecture of the paper's evaluated set (scripts/bench.sh
// sample re-checks the same bound plus the wall-clock speedup).
func TestSampledErrorGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-sampled validation runs")
	}
	rc := DefaultRunConfig("esp-nuca", "FT")
	rc.Warmup = 80_000
	rc.Instructions = 640_000
	rows, err := SampledError(rc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SampleValidationArchs()) {
		t.Fatalf("%d rows, want one per validation architecture", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-9s thr-err %.2f%%  aat-err %.2f%%  off-err %.2f%%  ci95 %.2f%%  speedup %.2fx",
			r.Arch, r.Throughput*100, r.AvgAccessTime*100, r.OffChipAccesses*100,
			r.RelCI95*100, r.FullSeconds/r.SampledSeconds)
		if r.Throughput > sampledGateMaxRelErr {
			t.Errorf("%s: Throughput relative error %.4f exceeds the committed gate %.2f",
				r.Arch, r.Throughput, sampledGateMaxRelErr)
		}
		if r.SampledSeconds >= r.FullSeconds {
			t.Errorf("%s: sampled run (%.2fs) not faster than full (%.2fs)",
				r.Arch, r.SampledSeconds, r.FullSeconds)
		}
	}
}
