package experiment

import (
	"strings"
	"testing"

	"espnuca/internal/arch"
)

// tinyOptions keep figure-structure tests fast; the shapes themselves
// are validated by TestPaperShapes and the benchmark harness.
func tinyOptions() Options {
	return Options{
		Seeds:        []uint64{1},
		Warmup:       8_000,
		Instructions: 4_000,
		System:       arch.ScaledConfig(),
	}
}

func TestFigure4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run")
	}
	tab, err := Figure4(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (8 NAS + 4 transactional)", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 2 {
			t.Fatalf("row %s has %d series", r.Label, len(r.Values))
		}
		for _, v := range r.Values {
			if v < 0.3 || v > 3 {
				t.Fatalf("row %s: normalized value %g implausible", r.Label, v)
			}
		}
	}
	if !strings.Contains(tab.String(), "Figure 4") {
		t.Fatal("render missing figure id")
	}
}

func TestFigure6Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run")
	}
	tab, err := Figure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads x 9 architectures.
	if len(tab.Rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 7 {
			t.Fatalf("row %s has %d columns, want 7", r.Label, len(r.Values))
		}
		sum := 0.0
		for _, v := range r.Values[:6] {
			sum += v
		}
		total := r.Values[6]
		if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("row %s: components sum %g != total %g", r.Label, sum, total)
		}
	}
}

func TestFigure7Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run")
	}
	tab, err := Figure7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 architectures", len(tab.Rows))
	}
	// The shared row is the normalization base: both values 1.0.
	found := false
	for _, r := range tab.Rows {
		if r.Label == "shared" {
			found = true
			for _, v := range r.Values {
				if v < 0.999 || v > 1.001 {
					t.Fatalf("shared normalized to %g, want 1.0", v)
				}
			}
		}
	}
	if !found {
		t.Fatal("no shared row")
	}
}

func TestFigure8Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run")
	}
	tab, err := Figure8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 { // 4 workloads + GEOMEAN
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last.Label != "GEOMEAN" {
		t.Fatalf("summary row label %q", last.Label)
	}
	if len(tab.Notes) == 0 {
		t.Fatal("no variance notes emitted")
	}
	// Shared column must be exactly 1 on every workload row.
	for _, r := range tab.Rows[:4] {
		if r.Values[0] < 0.999 || r.Values[0] > 1.001 {
			t.Fatalf("row %s shared = %g", r.Label, r.Values[0])
		}
	}
	// CC best >= avg >= worst on every workload row.
	for _, r := range tab.Rows[:4] {
		avg, best, worst := r.Values[4], r.Values[5], r.Values[6]
		if best < avg || avg < worst {
			t.Fatalf("row %s: CC avg/best/worst = %g/%g/%g out of order", r.Label, avg, best, worst)
		}
	}
}
