package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"espnuca/internal/arch"
)

// deterministicMatrix is the fixed small matrix the determinism and
// parallel-scaling tests share: 2 variants x 2 workloads x 2 seeds.
func deterministicMatrix() Matrix {
	m := NewMatrix([]string{"apache", "gcc-4"},
		[]Variant{V("shared", "shared"), V("esp-nuca", "esp-nuca")})
	m.Seeds = []uint64{1, 2}
	m.Warmup = 6_000
	m.Instructions = 3_000
	m.System = arch.ScaledConfig()
	return m
}

// TestMatrixParallelDeterminism is the concurrency contract of the
// harness: a matrix run on 8 workers must produce bit-for-bit the same
// Results — every Cell.PerfVec value and ordering, every RunResult — as
// the serial path. It is also the -race smoke test for the worker pool
// (see ROADMAP.md's verify line).
func TestMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix runs")
	}
	m := deterministicMatrix()

	m.Parallelism = 1
	serial, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Parallelism = 8
	var prevDone int32
	parallel, err := m.Run(func(done, total int) {
		if int32(done) != atomic.AddInt32(&prevDone, 1) {
			t.Errorf("progress not monotonic: done=%d", done)
		}
		if total != 8 {
			t.Errorf("progress total = %d, want 8", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&prevDone); got != 8 {
		t.Errorf("progress reported %d completions, want 8", got)
	}

	if !reflect.DeepEqual(serial, parallel) {
		for label, wls := range serial {
			for wl, cell := range wls {
				pcell := parallel[label][wl]
				if !reflect.DeepEqual(cell.PerfVec, pcell.PerfVec) {
					t.Errorf("%s/%s PerfVec: serial %v, parallel %v", label, wl, cell.PerfVec, pcell.PerfVec)
				}
			}
		}
		t.Fatal("parallel Results differ from serial Results")
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	boom := errors.New("boom")
	// Every job past index 2 fails; the returned error must be index 3's
	// regardless of which worker failed first on the wall clock.
	err := forEach(4, 16, func(i int) error {
		if i >= 3 {
			return fmt.Errorf("job %d: %w", i, boom)
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := err.Error(); got != "job 3: boom" {
		t.Fatalf("err = %q, want the lowest failing index (job 3)", got)
	}
}

func TestForEachCancelsAfterError(t *testing.T) {
	var ran atomic.Int32
	err := forEach(2, 1000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error surfaced")
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("ran all %d jobs despite cancellation", n)
	}
}

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, p := range []int{0, 1, 3, 8, 64} {
		seen := make([]atomic.Int32, 37)
		if err := forEach(p, len(seen), func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("p=%d: job %d ran %d times", p, i, got)
			}
		}
	}
}

func TestProgressMeterMonotonic(t *testing.T) {
	last := 0
	meter := newProgressMeter(50, func(done, total int) {
		if done != last+1 || total != 50 {
			t.Errorf("progress (%d,%d) after done=%d", done, total, last)
		}
		last = done
	})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); meter.tick() }()
	}
	wg.Wait()
	if last != 50 {
		t.Fatalf("final done = %d, want 50", last)
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs")
	}
	rcs := make([]RunConfig, 4)
	for i := range rcs {
		rcs[i] = DefaultRunConfig("shared", "apache")
		rcs[i].Warmup, rcs[i].Instructions = 5_000, 2_000
		rcs[i].Seed = uint64(i + 1)
	}
	par, err := RunAll(8, rcs)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := RunAll(1, rcs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, ser) {
		t.Fatal("RunAll results differ between 8 workers and serial")
	}
	for i, r := range par {
		if r.Seed != uint64(i+1) {
			t.Fatalf("result %d has seed %d: input order not preserved", i, r.Seed)
		}
	}
}

func TestMatrixUnknownWorkloadFailsFast(t *testing.T) {
	m := NewMatrix([]string{"no-such-workload"}, []Variant{V("shared", "shared")})
	m.Parallelism = 4
	if _, err := m.Run(nil); err == nil {
		t.Fatal("unknown workload not rejected")
	}
}

// BenchmarkMatrixParallel runs the fixed quick matrix at 1/2/4/8 workers;
// on a multi-core machine the wall clock per op should fall near-linearly
// until the worker count passes the core count.
func BenchmarkMatrixParallel(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			m := deterministicMatrix()
			m.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
