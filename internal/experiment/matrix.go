package experiment

import (
	"fmt"

	"espnuca/internal/arch"
	"espnuca/internal/stats"
	"espnuca/internal/workload"
)

// Variant is one architecture configuration under evaluation. Label is
// the display name (e.g. "CC30"); Arch the factory name; CCProb overrides
// the cooperation probability when >= 0.
type Variant struct {
	Label  string
	Arch   string
	CCProb float64
}

// V returns a plain variant.
func V(label, archName string) Variant { return Variant{Label: label, Arch: archName, CCProb: -1} }

// CCVariant returns a Cooperative Caching variant with probability p.
func CCVariant(p float64) Variant {
	return Variant{Label: fmt.Sprintf("CC%02.0f", p*100), Arch: "cc", CCProb: p}
}

// CounterpartVariants are the paper's §6 comparison set, without the CC
// family (added separately because CC is reported as avg/best/worst over
// its four probabilities).
func CounterpartVariants() []Variant {
	return []Variant{
		V("shared", "shared"),
		V("private", "private"),
		V("d-nuca", "d-nuca"),
		V("asr", "asr"),
		V("esp-nuca", "esp-nuca"),
	}
}

// CCFamily returns the four statically-configured CC variants.
func CCFamily() []Variant {
	return []Variant{CCVariant(0), CCVariant(0.3), CCVariant(0.7), CCVariant(1.0)}
}

// Matrix is a run plan: the cross product of workloads, variants and
// seeds.
type Matrix struct {
	Workloads    []string
	Variants     []Variant
	Seeds        []uint64
	Warmup       uint64
	Instructions uint64
	System       arch.Config
	// Parallelism bounds the worker pool Run fans the cells out over:
	// 0 uses every core (runtime.GOMAXPROCS(0)), 1 forces serial
	// execution. Every cell is an independent deterministic simulation,
	// so the assembled Results are identical at any setting.
	Parallelism int
	// SampleWindows, when positive, executes every cell in sampled mode
	// (see RunConfig.SampleWindows): each cell's RunResult is a windowed
	// estimate carrying its confidence bounds in RunResult.Sampled.
	// Within a cell the windows run serially — the matrix already fans
	// cells out over the worker pool.
	SampleWindows int
	// EngineShards, when positive, executes every cell on the sharded
	// engine (see RunConfig.EngineShards): each cell is one full-detail
	// simulation partitioned into that many mesh-region shards. Within a
	// cell the shards run serially — the matrix already fans cells out
	// over the worker pool — so shard-mode matrices stay bit-identical
	// to their single-cell sharded runs. Mutually exclusive with
	// SampleWindows.
	EngineShards int
	// BarrierParallelism bounds the workers each sharded cell's window
	// barriers spread their conflict groups over (see
	// RunConfig.BarrierParallelism); <= 1 services barriers serially.
	// Results are bit-identical at any setting. Only meaningful with
	// EngineShards.
	BarrierParallelism int
	// Obs, when non-nil, captures per-run telemetry: each cell gets its
	// own registry writing to Obs.Dir (simulation results are unaffected).
	Obs *ObsSpec
	// RunFunc, when non-nil, executes each cell in place of Run. It must
	// be equivalent to Run for results to stay meaningful; the result
	// cache and the serving daemon use it to substitute memoized or
	// cancellation-aware execution while keeping the matrix's
	// deterministic index-keyed assembly.
	RunFunc func(RunConfig) (RunResult, error)
}

// NewMatrix returns a matrix with harness defaults (scaled system, three
// seeds).
func NewMatrix(workloads []string, variants []Variant) Matrix {
	return Matrix{
		Workloads:    workloads,
		Variants:     variants,
		Seeds:        []uint64{1, 2, 3},
		Warmup:       80_000,
		Instructions: 40_000,
		System:       arch.ScaledConfig(),
	}
}

// Cell aggregates the runs of one (variant, workload) pair.
type Cell struct {
	Perf    stats.Summary // performance metric across seeds
	Runs    []RunResult
	Kind    workload.Kind
	PerfVec []float64
}

// Results maps variant label -> workload -> cell.
type Results map[string]map[string]Cell

// cell returns the (variant, workload, seed) coordinates of flat index i.
// The flattening order matches the serial triple loop (variants outermost,
// seeds innermost), so progress and error precedence read the same.
func (m Matrix) cell(i int) (vi, wi, si int) {
	perVariant := len(m.Workloads) * len(m.Seeds)
	return i / perVariant, (i % perVariant) / len(m.Seeds), i % len(m.Seeds)
}

// Run executes the whole matrix, fanning the (variant, workload, seed)
// cells out over a bounded worker pool (see Matrix.Parallelism). Results
// are assembled from an index-keyed buffer in the serial order, so the
// output — including every Cell.Runs / Cell.PerfVec ordering — is
// bit-for-bit identical at any parallelism. Progress, when non-nil, is
// called after every completed run with a monotonically increasing done
// count (calls are serialized; the callback needs no locking of its own).
func (m Matrix) Run(progress func(done, total int)) (Results, error) {
	if m.Obs != nil && m.SampleWindows > 0 {
		return nil, fmt.Errorf("experiment: telemetry capture is not supported in sampled mode")
	}
	// Validate the workload set up front, as the serial loop did before
	// starting any simulation.
	specs := make([]workload.Spec, len(m.Workloads))
	for i, wl := range m.Workloads {
		spec, ok := workload.ByName(wl)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown workload %q", wl)
		}
		specs[i] = spec
	}

	total := len(m.Variants) * len(m.Workloads) * len(m.Seeds)
	results := make([]RunResult, total)
	meter := newProgressMeter(total, progress)
	runCell := m.RunFunc
	if runCell == nil {
		runCell = Run
	}
	err := forEach(m.Parallelism, total, func(i int) error {
		vi, wi, si := m.cell(i)
		v := m.Variants[vi]
		rc := RunConfig{
			Arch:         v.Arch,
			Workload:     m.Workloads[wi],
			Warmup:       m.Warmup,
			Instructions: m.Instructions,
			Seed:         m.Seeds[si],
			System:       m.System,
			Core:         DefaultRunConfig(v.Arch, m.Workloads[wi]).Core,

			SampleWindows:     m.SampleWindows,
			SampleParallelism: 1,

			EngineShards:       m.EngineShards,
			ShardParallelism:   1,
			BarrierParallelism: m.BarrierParallelism,
		}
		if v.CCProb >= 0 {
			rc.System.CCProbability = v.CCProb
		}
		var finish func() error
		if m.Obs != nil {
			name := fmt.Sprintf("%s_%s_s%d", v.Label, m.Workloads[wi], m.Seeds[si])
			reg, fin, oerr := m.Obs.open(name)
			if oerr != nil {
				return fmt.Errorf("%s/%s seed %d: %w", v.Label, m.Workloads[wi], m.Seeds[si], oerr)
			}
			rc.Metrics = reg
			rc.MetricsInterval = m.Obs.Interval
			finish = fin
		}
		res, err := runCell(rc)
		if finish != nil {
			if ferr := finish(); ferr != nil && err == nil {
				err = ferr
			}
		}
		if err != nil {
			return fmt.Errorf("%s/%s seed %d: %w", v.Label, m.Workloads[wi], m.Seeds[si], err)
		}
		results[i] = res
		meter.tick()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic assembly in serial iteration order.
	out := make(Results, len(m.Variants))
	for vi, v := range m.Variants {
		out[v.Label] = make(map[string]Cell, len(m.Workloads))
		for wi, wl := range m.Workloads {
			cell := Cell{Kind: specs[wi].Kind}
			base := (vi*len(m.Workloads) + wi) * len(m.Seeds)
			for si := range m.Seeds {
				res := results[base+si]
				cell.Runs = append(cell.Runs, res)
				cell.PerfVec = append(cell.PerfVec, res.Performance(specs[wi].Kind))
			}
			cell.Perf = stats.Summarize(cell.PerfVec)
			out[v.Label][wl] = cell
		}
	}
	return out, nil
}

// Normalized returns variant v's mean performance on workload wl divided
// by baseline's, and the propagated relative CI half-width.
func (r Results) Normalized(v, baseline, wl string) (float64, float64, error) {
	num, ok := r[v][wl]
	if !ok {
		return 0, 0, fmt.Errorf("experiment: no cell %s/%s", v, wl)
	}
	den, ok := r[baseline][wl]
	if !ok {
		return 0, 0, fmt.Errorf("experiment: no baseline cell %s/%s", baseline, wl)
	}
	if den.Perf.Mean == 0 {
		return 0, 0, fmt.Errorf("experiment: zero baseline performance for %s", wl)
	}
	norm := num.Perf.Mean / den.Perf.Mean
	// First-order CI propagation for a ratio.
	rel := 0.0
	if num.Perf.Mean > 0 {
		rel = num.Perf.CI95 / num.Perf.Mean
	}
	relDen := den.Perf.CI95 / den.Perf.Mean
	return norm, norm * (rel + relDen), nil
}

// GeoMeanNormalized returns the geometric mean of v's normalized
// performance over the workloads.
func (r Results) GeoMeanNormalized(v, baseline string, workloads []string) (float64, error) {
	vals := make([]float64, 0, len(workloads))
	for _, wl := range workloads {
		n, _, err := r.Normalized(v, baseline, wl)
		if err != nil {
			return 0, err
		}
		vals = append(vals, n)
	}
	return stats.GeoMean(vals)
}

// VarianceNormalized returns the variance of v's normalized performance
// across the workloads — the paper's cross-benchmark stability metric.
func (r Results) VarianceNormalized(v, baseline string, workloads []string) (float64, error) {
	if len(workloads) == 0 {
		return 0, fmt.Errorf("experiment: variance of %s over zero workloads", v)
	}
	vals := make([]float64, 0, len(workloads))
	for _, wl := range workloads {
		n, _, err := r.Normalized(v, baseline, wl)
		if err != nil {
			return 0, err
		}
		vals = append(vals, n)
	}
	return stats.Variance(vals), nil
}

// CCAggregate folds the CC family cells for one workload into the
// avg/best/worst summary the paper plots.
func (r Results) CCAggregate(baseline, wl string) (avg, best, worst float64, err error) {
	var vals []float64
	for _, v := range CCFamily() {
		n, _, e := r.Normalized(v.Label, baseline, wl)
		if e != nil {
			return 0, 0, 0, e
		}
		vals = append(vals, n)
	}
	best, worst = vals[0], vals[0]
	sum := 0.0
	for _, x := range vals {
		sum += x
		if x > best {
			best = x
		}
		if x < worst {
			worst = x
		}
	}
	return sum / float64(len(vals)), best, worst, nil
}
