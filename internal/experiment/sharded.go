package experiment

// Sharded execution: one full-detail simulation spread over all host
// cores. The machine is partitioned by mesh region into K shards; each
// shard owns a contiguous group of mesh columns and the cores attached to
// them, with its own sim.Engine-local event heap (sim.ShardedEngine).
// Execution alternates between two phases:
//
//   - Parallel phase (one goroutine per shard, bounded-lag windows of
//     shardWindowCycles): cores execute their core-private work — stream
//     generation, L1 lookups and fills, retirement bookkeeping. Every
//     operation that touches shared machine state (an L2/mesh/DRAM/
//     directory transaction) is enqueued on the core's MemPort instead of
//     being resolved synchronously; a core that cannot proceed without
//     the completion cycle suspends.
//
//   - Barrier phase: the outstanding requests of all shards are merged
//     in (cycle, srcShard, srcSeq) order (a k-way merge over the
//     per-shard queues, each already non-decreasing in cycle) and
//     serviced by the unmodified synchronous architecture code
//     (sys.Access/WriteBack); completion cycles flow back through
//     Core.Resolve and suspended cores are resumed. Because the merge
//     order is a pure function of the requests — never of goroutine
//     scheduling — the whole run is bit-identical at any
//     ShardParallelism (asserted under -race by
//     TestShardedParallelDeterminism).
//
// Parallel barrier servicing (BarrierParallelism > 1). Servicing itself
// is the sharded engine's serial bottleneck. When the architecture
// implements arch.Footprinter, each barrier partitions the merged request
// list into conflict groups — transactions whose static footprints
// (banks, line partitions, mesh links, cores, DRAM channels) transitively
// overlap — and services independent groups concurrently on a bounded
// worker pool, each group internally in exactly the merged order.
// Footprints are conservative supersets of the state a transaction can
// touch, grouping is a pure function of the request list, and all
// cross-group counters are order-free sums behind flag-gated atomics, so
// results stay bit-identical at any BarrierParallelism (asserted under
// -race by TestBarrierParallelDeterminism; footprint conservatism is
// asserted by the oracle test in internal/arch). Core.Resolve,
// ScheduleResume, and telemetry writes stay on the single barrier
// goroutine.
//
// Fidelity. The window width equals the serial engine's maxSliceSkew, so
// a sharded run grants cores exactly the cross-core timestamp skew the
// serial engine already tolerates. What does change is tie-breaking: the
// barrier service orders transactions by timestamp, while the serial
// engine orders them by slice interleaving, so shared-resource occupancy
// and replacement state can diverge slightly. That is why EngineShards
// participates in the canonical key and why ShardedError exists: it
// quantifies the full-vs-sharded skew across all seven architectures
// (retired instruction counts must match exactly; timing metrics agree
// within the committed BENCH_7.json bounds).
//
// Deadlock freedom. A suspended core always holds at least one
// unresolved request (backpressureP suspends only when pending work
// exists); the barrier phase resolves every queued request and resumes
// every suspended core, so each window either executes events, services
// requests, or proves the run is complete.

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/mem"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

// barrierParallelMinReqs is the smallest merged request list worth
// grouping: below it the footprint/grouping overhead exceeds any spread.
const barrierParallelMinReqs = 4

// barrierProbeBackoffMax caps the grouping governor's probe period.
// Footprint computation costs real time per request; on a workload phase
// whose barriers keep collapsing into one conflict group that cost buys
// nothing, so the governor doubles the probe period after every
// single-group probe (and resets to 1 the moment a probe finds
// parallelism). The cap bounds both sides: worst-case grouping overhead
// on a no-parallelism phase is ~1/128th of the always-probe cost, and a
// new parallel phase is noticed within 128 eligible barriers. Grouping
// is purely a scheduling decision — serviced results are bit-identical
// grouped or not — and probe outcomes are a deterministic function of
// the request stream, so the governor never perturbs results at any
// worker count.
const barrierProbeBackoffMax = 128

// barrierProbeBackoff is the live governor cap — a variable so tests
// asserting grouping telemetry can pin it to 1 (probe every barrier)
// and surface conflict groups that are too sparse for a backed-off
// probe to land on. Results are bit-identical at any cap.
var barrierProbeBackoff = barrierProbeBackoffMax

// shardWindowCycles is the bounded-lag window width: the same 64-cycle
// skew budget cpu.maxSliceSkew grants a core within one scheduler slice.
// The mesh's minimum cross-region latency (HopLatency, 5 cycles) would be
// the classic PDES lookahead floor for direct shard-to-shard messages;
// the machine runner routes all cross-shard interaction through the
// barrier service instead, which is timestamp-ordered regardless of
// window width, so the width is a fidelity/overhead knob rather than a
// correctness bound — and matching maxSliceSkew keeps the sharded run's
// cross-core skew identical to the serial engine's.
const shardWindowCycles = 64

// PlanShards is the partition planner: it assigns each core to one of k
// shards by mesh geometry. Core c sits on node c of the cols x rows
// router grid (node index row-major); nodes are ordered column-major so
// each shard owns a contiguous vertical stripe of the mesh — k=2 splits
// a 4x2 mesh into column halves, k=4 gives one column per shard, k=8 one
// node per shard. k is clamped to [1, cores]. The returned slice maps
// core -> shard.
func PlanShards(cols, rows, cores, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > cores {
		k = cores
	}
	order := make([]int, 0, cores)
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			if n := y*cols + x; n < cores {
				order = append(order, n)
			}
		}
	}
	// Cores beyond the router grid (configs with more cores than nodes
	// wrap onto it) keep the contiguous-range property.
	for n := cols * rows; n < cores; n++ {
		order = append(order, n)
	}
	shardOf := make([]int, cores)
	for i, c := range order {
		shardOf[c] = i * k / len(order)
	}
	return shardOf
}

// ShardStats summarizes a sharded run for RunResult.Shard. Every field
// is deterministic for a fixed (RunConfig, EngineShards): worker counts
// and wall clocks never leak in, so cached results stay byte-identical.
type ShardStats struct {
	// Shards is the effective shard count (EngineShards clamped to the
	// core count).
	Shards int
	// Windows counts executed bounded-lag windows.
	Windows uint64
	// MeanWindowCycles is the mean window width in cycles.
	MeanWindowCycles float64
	// Requests counts memory-system transactions serviced at barriers
	// (the machine's cross-shard message count).
	Requests uint64
	// MeanRequestsPerWindow is Requests/Windows.
	MeanRequestsPerWindow float64
}

// shardReq is one memory-system transaction queued during the parallel
// phase, serviced at the next barrier.
type shardReq struct {
	at      sim.Cycle
	core    int
	line    mem.Line
	write   bool
	present bool // requester's L1 presence at issue (pre-fill truth)
	demand  bool // demand miss (needs Resolve) vs fire-and-forget prefetch
	wbValid bool
	wbDirty bool
	wbLine  mem.Line
}

// mergedRef addresses one request in the per-shard queues during the
// barrier merge.
type mergedRef struct {
	shard, idx int
}

// shardedRun carries the runner state shared by the ports and the
// barrier hook.
type shardedRun struct {
	se    *sim.ShardedEngine
	sys   arch.System
	cores []*cpu.Core
	reqs  [][]shardReq
	refs  []mergedRef
	heads []int // per-shard merge cursor, reused across barriers

	// requests counts barrier-serviced transactions over the run.
	requests uint64

	// Parallel barrier servicing (nil/1 when disabled): bpar is the
	// worker bound, fpr the architecture's footprint oracle, fpctx the
	// per-barrier scratch. The remaining slices are reusable buffers for
	// the footprint/group/bucket pipeline.
	bpar     int
	fpr      arch.Footprinter
	fpctx    *arch.FootprintCtx
	fpreqs   []arch.FootprintReq
	fps      []arch.Footprint
	fpgroups []int
	gorder   []int
	goffs    []int
	gcur     []int
	dones    []sim.Cycle
	// Grouping governor (see barrierProbeBackoffMax): fpEvery is the
	// current probe period in eligible barriers, fpSkip the countdown to
	// the next probe.
	fpEvery int
	fpSkip  int

	// Telemetry (nil when the run is not instrumented).
	reg           *obs.Registry
	interval      sim.Cycle
	nextTick      sim.Cycle
	cWindows      *obs.Counter
	cRequests     *obs.Counter
	sWidth        *obs.Series
	sReqPerWindow *obs.Series
	gWaitNS       []*obs.Gauge
	hServiceMS    *obs.Histogram
	hGroups       *obs.Histogram
	lastWindows   uint64
	lastWidthSum  sim.Cycle
}

// corePort adapts one core's memory traffic onto its shard's request
// queue; it is the cpu.MemPort the parallel phase talks to.
type corePort struct {
	run   *shardedRun
	shard int
	core  int
}

func (p *corePort) Access(at sim.Cycle, line mem.Line, write, present, demand bool) uint64 {
	q := &p.run.reqs[p.shard]
	*q = append(*q, shardReq{
		at: at, core: p.core, line: line,
		write: write, present: present, demand: demand,
	})
	return uint64(len(*q) - 1)
}

func (p *corePort) WriteBackAfter(ticket uint64, line mem.Line, dirty bool) {
	rq := &p.run.reqs[p.shard][ticket]
	rq.wbValid, rq.wbLine, rq.wbDirty = true, line, dirty
}

// barrier is the service phase, invoked by the sharded engine at every
// window barrier with all shards quiescent.
func (r *shardedRun) barrier() {
	// 1. Flush the parallel phase's buffered L1-hit counts into the
	// decomposition before anything (stop conditions, snapshots,
	// telemetry) reads the substrate counters. The flush is a bulk add
	// of order-independent sums, so totals match the serial engine's.
	for _, c := range r.cores {
		c.FlushL1Hits()
	}
	var start time.Time
	if r.reg != nil {
		start = time.Now()
	}

	// 2. Merge all queued requests in (cycle, srcShard, srcSeq) order —
	// the deterministic global service order — then service them, in
	// conflict groups on a worker pool when footprints allow, serially
	// otherwise. Either way every request observes exactly the state the
	// serial order would give it.
	refs := r.mergeRefs()
	nreq := len(refs)
	groups := 1
	if r.bpar > 1 && r.fpr != nil && nreq >= barrierParallelMinReqs {
		if r.fpSkip > 0 {
			r.fpSkip--
		} else {
			groups = r.groupRequests(refs)
			if groups > 1 {
				r.fpEvery = 1
			} else if r.fpEvery < barrierProbeBackoff {
				r.fpEvery *= 2
			}
			r.fpSkip = r.fpEvery - 1
		}
	}
	if groups > 1 {
		r.serviceParallel(refs, groups)
	} else {
		r.serviceSerial(refs)
	}
	r.requests += uint64(nreq)
	for s := range r.reqs {
		r.reqs[s] = r.reqs[s][:0]
	}
	r.refs = refs[:0]

	// 3. Resume suspended cores in core order (deterministic; each now
	// has its full miss set resolved).
	for _, c := range r.cores {
		c.ScheduleResume()
	}

	// 4. Telemetry.
	if r.reg != nil {
		r.tickObs(uint64(nreq), groups, time.Since(start))
	}
}

// mergeRefs builds the deterministic (cycle, srcShard, srcSeq) service
// order. Each shard queue is appended in shard-local event order, so it
// is non-decreasing in cycle; a k-way merge over the queue heads —
// strict minimum, ties to the lowest shard — therefore reproduces
// exactly what sorting the concatenation by (at, shard, idx) would,
// without the comparator closure and O(n log n) of sort.Slice
// (TestMergeRefsMatchesSort).
func (r *shardedRun) mergeRefs() []mergedRef {
	refs := r.refs[:0]
	total := 0
	r.heads = r.heads[:0]
	for s := range r.reqs {
		total += len(r.reqs[s])
		r.heads = append(r.heads, 0)
	}
	for len(refs) < total {
		best := -1
		var bestAt sim.Cycle
		for s := range r.reqs {
			i := r.heads[s]
			if i >= len(r.reqs[s]) {
				continue
			}
			if at := r.reqs[s][i].at; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		refs = append(refs, mergedRef{shard: best, idx: r.heads[best]})
		r.heads[best]++
	}
	return refs
}

// serviceSerial runs every request through the synchronous architecture
// in merged order — the exact code path BarrierParallelism <= 1 always
// took.
func (r *shardedRun) serviceSerial(refs []mergedRef) {
	sub := r.sys.Sub()
	for _, ref := range refs {
		rq := &r.reqs[ref.shard][ref.idx]
		// The request's L1 fill already happened at issue; the hint
		// restores the at-issue presence for upgrade classification.
		sub.SetPresenceHint(rq.core, rq.present)
		res := r.sys.Access(rq.at, rq.core, rq.line, rq.write)
		sub.ClearPresenceHint(rq.core)
		if rq.wbValid {
			// The displaced line's write-back follows its access
			// immediately, at the access's completion cycle — the same
			// call order and timestamp the serial engine produces.
			r.sys.WriteBack(res.Done, rq.core, rq.wbLine, rq.wbDirty)
		}
		if rq.demand {
			r.cores[rq.core].Resolve(uint64(ref.idx), res.Done)
		}
	}
}

// groupRequests computes footprints for the merged requests and
// partitions them into conflict groups; returns the group count. Both
// passes are read-only on simulator state, so computing them perturbs
// nothing even when the result is a single group.
func (r *shardedRun) groupRequests(refs []mergedRef) int {
	n := len(refs)
	if cap(r.fpreqs) < n {
		r.fpreqs = make([]arch.FootprintReq, n)
		r.fps = make([]arch.Footprint, n)
		r.fpgroups = make([]int, n)
		r.gorder = make([]int, n)
		r.dones = make([]sim.Cycle, n)
		r.goffs = make([]int, n+1)
		r.gcur = make([]int, n+1)
	}
	r.fpreqs = r.fpreqs[:n]
	r.fps = r.fps[:n]
	r.fpgroups = r.fpgroups[:n]
	for i, ref := range refs {
		rq := &r.reqs[ref.shard][ref.idx]
		r.fpreqs[i] = arch.FootprintReq{
			Core: rq.core, Line: rq.line, Write: rq.write,
			WB: rq.wbValid, WBLine: rq.wbLine,
		}
	}
	arch.ComputeFootprints(r.fpr, r.fpctx, r.fpreqs, r.fps)
	return arch.GroupFootprints(r.fps, r.fpgroups)
}

// serviceParallel services the merged requests with conflict groups
// spread over up to bpar workers. Requests are bucketed by group with a
// counting sort that preserves merged order inside each bucket; workers
// claim whole groups off an atomic cursor. Shared counters switch to
// atomic adds for the duration (order-free sums); Resolve stays on the
// barrier goroutine, in merged order, after the join.
func (r *shardedRun) serviceParallel(refs []mergedRef, ngroups int) {
	n := len(refs)
	goffs := r.goffs[:ngroups+1]
	gcur := r.gcur[:ngroups+1]
	for i := range goffs {
		goffs[i] = 0
	}
	for i := 0; i < n; i++ {
		goffs[r.fpgroups[i]+1]++
	}
	for g := 1; g <= ngroups; g++ {
		goffs[g] += goffs[g-1]
	}
	copy(gcur, goffs)
	order := r.gorder[:n]
	for i := 0; i < n; i++ {
		g := r.fpgroups[i]
		order[gcur[g]] = i
		gcur[g]++
	}
	dones := r.dones[:n]

	sub := r.sys.Sub()
	sub.SetConcurrent(true)
	workers := r.bpar
	if workers > ngroups {
		workers = ngroups
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				g := int(next.Add(1)) - 1
				if g >= ngroups {
					return
				}
				for pos := goffs[g]; pos < goffs[g+1]; pos++ {
					i := order[pos]
					ref := refs[i]
					rq := &r.reqs[ref.shard][ref.idx]
					sub.SetPresenceHint(rq.core, rq.present)
					res := r.sys.Access(rq.at, rq.core, rq.line, rq.write)
					sub.ClearPresenceHint(rq.core)
					if rq.wbValid {
						r.sys.WriteBack(res.Done, rq.core, rq.wbLine, rq.wbDirty)
					}
					dones[i] = res.Done
				}
			}
		}()
	}
	wg.Wait()
	sub.SetConcurrent(false)
	for i, ref := range refs {
		rq := &r.reqs[ref.shard][ref.idx]
		if rq.demand {
			r.cores[rq.core].Resolve(uint64(ref.idx), dones[i])
		}
	}
}

// tickObs updates the sharded-engine telemetry at a barrier and closes
// any sampling intervals the run has crossed.
func (r *shardedRun) tickObs(nreq uint64, groups int, service time.Duration) {
	now := uint64(r.se.Now())
	r.cWindows.Add(r.se.Windows - r.lastWindows)
	r.cRequests.Add(nreq)
	if dw := r.se.Windows - r.lastWindows; dw > 0 {
		r.sWidth.Append(now, float64(r.se.WindowCycles-r.lastWidthSum)/float64(dw))
		r.sReqPerWindow.Append(now, float64(nreq)/float64(dw))
	}
	if nreq > 0 {
		r.hServiceMS.Observe(float64(service) / float64(time.Millisecond))
		r.hGroups.Observe(float64(groups))
	}
	r.lastWindows = r.se.Windows
	r.lastWidthSum = r.se.WindowCycles
	for i, g := range r.gWaitNS {
		g.Set(float64(r.se.Shard(i).BarrierWaitNS()))
	}
	for sim.Cycle(now) >= r.nextTick {
		r.reg.Tick(uint64(r.nextTick))
		r.nextTick += r.interval
	}
}

// instrumentSharded wires a registry into a sharded run: the substrate
// and architecture probes exactly as Instrument does, plus the sharded
// engine's own counters — windows executed, mean window width, barrier
// requests (cross-shard messages), per-shard barrier wait. The engine
// dispatch probe is not attached: shard windows execute concurrently and
// the per-event probe is the serial engine's instrument. All registry
// writes happen in the (serial) barrier phase, so instrumented sharded
// runs stay bit-identical and race-free.
func instrumentSharded(r *shardedRun, reg *obs.Registry, interval sim.Cycle) {
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	r.sys.Sub().AttachObs(reg)
	if o, ok := r.sys.(arch.Observable); ok {
		o.AttachObs(reg)
	}
	r.reg = reg
	r.interval = interval
	r.nextTick = interval
	r.cWindows = reg.Counter("shard.windows")
	r.cRequests = reg.Counter("shard.requests")
	r.sWidth = reg.Series("shard.window_width")
	r.sReqPerWindow = reg.Series("shard.requests_per_window")
	// Barrier-service cost and conflict-group spread per barrier; with
	// serial servicing the group histogram records 1 per barrier.
	r.hServiceMS = reg.Histogram("shard.barrier_service_ms",
		[]float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25})
	r.hGroups = reg.Histogram("shard.barrier_groups",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	// One labeled gauge per shard: prom.go renders the {shard="N"} suffix
	// as a Prometheus label on a single metric family.
	for i := 0; i < r.se.Shards(); i++ {
		r.gWaitNS = append(r.gWaitNS, reg.Gauge(fmt.Sprintf(`shard.barrier_wait_ns{shard="%d"}`, i)))
	}
}

// runShardedBound is the sharded analogue of runBound: same phases, same
// stop conditions, same result assembly, but cores run on shard-local
// engines with ported memory access.
func runShardedBound(rc RunConfig, sys arch.System, bound *workload.Bound, idleTarget uint64) (RunResult, error) {
	k := rc.EngineShards
	if k < 1 {
		return RunResult{}, fmt.Errorf("experiment: sharded run needs EngineShards >= 1, got %d", k)
	}
	if k > rc.System.Cores {
		k = rc.System.Cores
	}
	par := rc.ShardParallelism
	if par <= 0 {
		par = k // one goroutine per shard; GOMAXPROCS schedules them
	}
	shardOf := PlanShards(rc.System.NoC.Cols, rc.System.NoC.Rows, rc.System.Cores, k)
	se := sim.NewSharded(k, shardWindowCycles)
	bpar := rc.BarrierParallelism
	if bpar < 1 {
		bpar = 1
	}
	// A worker pool wider than the scheduler's parallelism cannot
	// overlap anything; in particular a 1-slot host (GOMAXPROCS=1)
	// would pay the footprint/grouping cost with no possible win, so it
	// keeps the serial barrier outright. Results are bit-identical at
	// any effective width, so the clamp never changes a RunResult.
	if n := runtime.GOMAXPROCS(0); bpar > n {
		bpar = n
	}
	r := &shardedRun{se: se, sys: sys, reqs: make([][]shardReq, k), bpar: bpar}
	if bpar > 1 {
		// Architectures that cannot declare footprints simply keep the
		// serial barrier (fpr stays nil).
		if fpr, ok := sys.(arch.Footprinter); ok {
			r.fpr = fpr
			r.fpctx = arch.NewFootprintCtx()
			r.fpEvery = 1
		}
	}

	cores := make([]*cpu.Core, rc.System.Cores)
	measured := bound.Active
	for c := 0; c < rc.System.Cores; c++ {
		target := rc.Warmup + rc.Instructions
		if measured&(1<<uint(c)) == 0 {
			target = idleTarget
		}
		sh := se.Shard(shardOf[c])
		cores[c] = cpu.New(c, rc.Core, sh.Engine(), sys, bound.Streams[c], target)
		cores[c].SetWarmup(rc.Warmup)
		cores[c].SetPort(&corePort{run: r, shard: shardOf[c], core: c})
		cores[c].Start()
	}
	r.cores = cores
	se.SetBarrier(r.barrier)
	if rc.Metrics != nil {
		instrumentSharded(r, rc.Metrics, rc.MetricsInterval)
	}

	// Phase 1: warmup, stop condition evaluated at barriers.
	sub := sys.Sub()
	if rc.Warmup > 0 {
		warmDone := func() bool {
			for c := 0; c < rc.System.Cores; c++ {
				if measured&(1<<uint(c)) != 0 && !cores[c].Warmed() {
					return false
				}
			}
			return true
		}
		se.Run(rc.MaxCycles, warmDone, par)
	}
	warmEnd := se.Now()
	base := snapshot(sub)

	// Phase 2: measured execution.
	allDone := func() bool {
		for c := 0; c < rc.System.Cores; c++ {
			if measured&(1<<uint(c)) != 0 && !cores[c].Done {
				return false
			}
		}
		return true
	}
	se.Run(rc.MaxCycles, allDone, par)

	if rc.Metrics != nil {
		rc.Metrics.Tick(uint64(se.Now()))
		tr := rc.Metrics.Trace()
		tr.Complete("warmup", "phase", 0, uint64(warmEnd), 0)
		tr.Complete("measured", "phase", uint64(warmEnd), uint64(se.Now()-warmEnd), 0)
	}

	res, err := assembleResult(rc, sub, cores, measured, base, nil)
	if err != nil {
		return res, err
	}
	st := &ShardStats{Shards: k, Windows: se.Windows, Requests: r.requests}
	if se.Windows > 0 {
		st.MeanWindowCycles = float64(se.WindowCycles) / float64(se.Windows)
		st.MeanRequestsPerWindow = float64(r.requests) / float64(se.Windows)
	}
	res.Shard = st
	return res, nil
}

// ShardValidationArchs is the architecture set the sharded-mode
// validation harness compares against serial full runs — the paper's
// seven evaluated L2 organizations.
func ShardValidationArchs() []string { return SampleValidationArchs() }

// ShardedErrorRow reports serial-vs-sharded agreement for one
// architecture: relative errors on the headline metrics, the exactness
// of the retired-instruction count (which must always hold — both modes
// run every measured core to the same target), and the wall clocks.
type ShardedErrorRow struct {
	Arch string
	// Relative errors |sharded-serial|/serial.
	Throughput      float64
	AvgAccessTime   float64
	OffChipAccesses float64
	// RetiredExact reports whether the sharded run retired exactly the
	// serial run's instruction count.
	RetiredExact bool
	// Windows is the sharded run's bounded-lag window count.
	Windows uint64

	FullSeconds    float64
	ShardedSeconds float64

	// BarrierSeconds is the wall clock of a third run — sharded with
	// rc.BarrierParallelism conflict-group workers per barrier — and
	// BarrierIdentical whether that run's RunResult matched the
	// serial-barrier sharded run byte for byte (it must). Both are zero
	// when the harness ran without BarrierParallelism.
	BarrierSeconds   float64
	BarrierIdentical bool
}

// ShardedError is the validation harness: for every architecture in
// ShardValidationArchs it runs rc once on the serial engine and once
// sharded k ways, and reports relative errors and wall clocks. rc.Arch
// and rc.EngineShards are overridden per row; rc.ShardParallelism is
// honored for the sharded runs (0 = one goroutine per shard). When
// rc.BarrierParallelism > 1 a third leg per architecture — sharded with
// parallel barrier servicing — times the conflict-group win and checks
// byte-identity against the serial-barrier sharded run. Both sharded
// legs report min-of-2 wall clocks (see timedMinOf2).
func ShardedError(rc RunConfig, k int) ([]ShardedErrorRow, error) {
	rows := make([]ShardedErrorRow, 0, len(ShardValidationArchs()))
	for _, a := range ShardValidationArchs() {
		src := rc
		src.Arch = a
		src.EngineShards = 0
		src.BarrierParallelism = 0
		t0 := time.Now()
		full, err := Run(src)
		if err != nil {
			return nil, fmt.Errorf("serial %s: %w", a, err)
		}
		fullDur := time.Since(t0)

		// The two sharded legs are min-of-2: their wall-clock ratio is
		// gated tightly (BENCH_8 allows only 5% single-core overhead),
		// and a single sample on a busy host carries more noise than
		// that. The min estimator discards the run that caught a GC or
		// a neighbor; both runs are asserted byte-identical, so only
		// the clock differs.
		src.EngineShards = k
		shd, shdDur, err := timedMinOf2(src, "sharded", a)
		if err != nil {
			return nil, err
		}

		row := ShardedErrorRow{
			Arch:            a,
			Throughput:      relErr(shd.Throughput, full.Throughput),
			AvgAccessTime:   relErr(shd.AvgAccessTime, full.AvgAccessTime),
			OffChipAccesses: relErr(float64(shd.OffChipAccesses), float64(full.OffChipAccesses)),
			RetiredExact:    shd.Retired == full.Retired,
			Windows:         shd.Shard.Windows,
			FullSeconds:     fullDur.Seconds(),
			ShardedSeconds:  shdDur.Seconds(),
		}
		if rc.BarrierParallelism > 1 {
			src.BarrierParallelism = rc.BarrierParallelism
			par, parDur, err := timedMinOf2(src, "parallel-barrier", a)
			if err != nil {
				return nil, err
			}
			row.BarrierSeconds = parDur.Seconds()
			row.BarrierIdentical = reflect.DeepEqual(par, shd)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// timedMinOf2 runs the configuration twice and returns the result with
// the smaller of the two wall clocks. The runs must be byte-identical
// (the engine is deterministic at any worker count); a mismatch is a
// determinism bug worth failing the harness over.
func timedMinOf2(rc RunConfig, leg, a string) (RunResult, time.Duration, error) {
	t0 := time.Now()
	r1, err := Run(rc)
	if err != nil {
		return RunResult{}, 0, fmt.Errorf("%s %s: %w", leg, a, err)
	}
	d1 := time.Since(t0)
	t0 = time.Now()
	r2, err := Run(rc)
	if err != nil {
		return RunResult{}, 0, fmt.Errorf("%s %s (rerun): %w", leg, a, err)
	}
	d2 := time.Since(t0)
	if !reflect.DeepEqual(r1, r2) {
		return RunResult{}, 0, fmt.Errorf("%s %s: rerun not byte-identical", leg, a)
	}
	if d2 < d1 {
		d1 = d2
	}
	return r1, d1, nil
}
