package experiment

// Sharded execution: one full-detail simulation spread over all host
// cores. The machine is partitioned by mesh region into K shards; each
// shard owns a contiguous group of mesh columns and the cores attached to
// them, with its own sim.Engine-local event heap (sim.ShardedEngine).
// Execution alternates between two phases:
//
//   - Parallel phase (one goroutine per shard, bounded-lag windows of
//     shardWindowCycles): cores execute their core-private work — stream
//     generation, L1 lookups and fills, retirement bookkeeping. Every
//     operation that touches shared machine state (an L2/mesh/DRAM/
//     directory transaction) is enqueued on the core's MemPort instead of
//     being resolved synchronously; a core that cannot proceed without
//     the completion cycle suspends.
//
//   - Barrier phase (serial): the outstanding requests of all shards are
//     merged in (cycle, srcShard, srcSeq) order and serviced by the
//     unmodified synchronous architecture code (sys.Access/WriteBack);
//     completion cycles flow back through Core.Resolve and suspended
//     cores are resumed. Because the merge order is a pure function of
//     the requests — never of goroutine scheduling — the whole run is
//     bit-identical at any ShardParallelism (asserted under -race by
//     TestShardedParallelDeterminism).
//
// Fidelity. The window width equals the serial engine's maxSliceSkew, so
// a sharded run grants cores exactly the cross-core timestamp skew the
// serial engine already tolerates. What does change is tie-breaking: the
// barrier service orders transactions by timestamp, while the serial
// engine orders them by slice interleaving, so shared-resource occupancy
// and replacement state can diverge slightly. That is why EngineShards
// participates in the canonical key and why ShardedError exists: it
// quantifies the full-vs-sharded skew across all seven architectures
// (retired instruction counts must match exactly; timing metrics agree
// within the committed BENCH_7.json bounds).
//
// Deadlock freedom. A suspended core always holds at least one
// unresolved request (backpressureP suspends only when pending work
// exists); the barrier phase resolves every queued request and resumes
// every suspended core, so each window either executes events, services
// requests, or proves the run is complete.

import (
	"fmt"
	"sort"
	"time"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/mem"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

// shardWindowCycles is the bounded-lag window width: the same 64-cycle
// skew budget cpu.maxSliceSkew grants a core within one scheduler slice.
// The mesh's minimum cross-region latency (HopLatency, 5 cycles) would be
// the classic PDES lookahead floor for direct shard-to-shard messages;
// the machine runner routes all cross-shard interaction through the
// barrier service instead, which is timestamp-ordered regardless of
// window width, so the width is a fidelity/overhead knob rather than a
// correctness bound — and matching maxSliceSkew keeps the sharded run's
// cross-core skew identical to the serial engine's.
const shardWindowCycles = 64

// PlanShards is the partition planner: it assigns each core to one of k
// shards by mesh geometry. Core c sits on node c of the cols x rows
// router grid (node index row-major); nodes are ordered column-major so
// each shard owns a contiguous vertical stripe of the mesh — k=2 splits
// a 4x2 mesh into column halves, k=4 gives one column per shard, k=8 one
// node per shard. k is clamped to [1, cores]. The returned slice maps
// core -> shard.
func PlanShards(cols, rows, cores, k int) []int {
	if k < 1 {
		k = 1
	}
	if k > cores {
		k = cores
	}
	order := make([]int, 0, cores)
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			if n := y*cols + x; n < cores {
				order = append(order, n)
			}
		}
	}
	// Cores beyond the router grid (configs with more cores than nodes
	// wrap onto it) keep the contiguous-range property.
	for n := cols * rows; n < cores; n++ {
		order = append(order, n)
	}
	shardOf := make([]int, cores)
	for i, c := range order {
		shardOf[c] = i * k / len(order)
	}
	return shardOf
}

// ShardStats summarizes a sharded run for RunResult.Shard. Every field
// is deterministic for a fixed (RunConfig, EngineShards): worker counts
// and wall clocks never leak in, so cached results stay byte-identical.
type ShardStats struct {
	// Shards is the effective shard count (EngineShards clamped to the
	// core count).
	Shards int
	// Windows counts executed bounded-lag windows.
	Windows uint64
	// MeanWindowCycles is the mean window width in cycles.
	MeanWindowCycles float64
	// Requests counts memory-system transactions serviced at barriers
	// (the machine's cross-shard message count).
	Requests uint64
	// MeanRequestsPerWindow is Requests/Windows.
	MeanRequestsPerWindow float64
}

// shardReq is one memory-system transaction queued during the parallel
// phase, serviced at the next barrier.
type shardReq struct {
	at      sim.Cycle
	core    int
	line    mem.Line
	write   bool
	present bool // requester's L1 presence at issue (pre-fill truth)
	demand  bool // demand miss (needs Resolve) vs fire-and-forget prefetch
	wbValid bool
	wbDirty bool
	wbLine  mem.Line
}

// mergedRef addresses one request in the per-shard queues during the
// barrier merge.
type mergedRef struct {
	shard, idx int
}

// shardedRun carries the runner state shared by the ports and the
// barrier hook.
type shardedRun struct {
	se    *sim.ShardedEngine
	sys   arch.System
	cores []*cpu.Core
	reqs  [][]shardReq
	refs  []mergedRef

	// requests counts barrier-serviced transactions over the run.
	requests uint64

	// Telemetry (nil when the run is not instrumented).
	reg           *obs.Registry
	interval      sim.Cycle
	nextTick      sim.Cycle
	cWindows      *obs.Counter
	cRequests     *obs.Counter
	sWidth        *obs.Series
	sReqPerWindow *obs.Series
	gWaitNS       []*obs.Gauge
	lastWindows   uint64
	lastWidthSum  sim.Cycle
}

// corePort adapts one core's memory traffic onto its shard's request
// queue; it is the cpu.MemPort the parallel phase talks to.
type corePort struct {
	run   *shardedRun
	shard int
	core  int
}

func (p *corePort) Access(at sim.Cycle, line mem.Line, write, present, demand bool) uint64 {
	q := &p.run.reqs[p.shard]
	*q = append(*q, shardReq{
		at: at, core: p.core, line: line,
		write: write, present: present, demand: demand,
	})
	return uint64(len(*q) - 1)
}

func (p *corePort) WriteBackAfter(ticket uint64, line mem.Line, dirty bool) {
	rq := &p.run.reqs[p.shard][ticket]
	rq.wbValid, rq.wbLine, rq.wbDirty = true, line, dirty
}

// barrier is the serial service phase, invoked by the sharded engine at
// every window barrier with all shards quiescent.
func (r *shardedRun) barrier() {
	// 1. Flush the parallel phase's buffered L1-hit counts into the
	// decomposition before anything (stop conditions, snapshots,
	// telemetry) reads the substrate counters. The flush is a bulk add
	// of order-independent sums, so totals match the serial engine's.
	for _, c := range r.cores {
		c.FlushL1Hits()
	}

	// 2. Merge all queued requests in (cycle, srcShard, srcSeq) order —
	// the deterministic global service order — and run each through the
	// unmodified synchronous architecture.
	refs := r.refs[:0]
	for s := range r.reqs {
		for i := range r.reqs[s] {
			refs = append(refs, mergedRef{shard: s, idx: i})
		}
	}
	sort.Slice(refs, func(a, b int) bool {
		ra, rb := &r.reqs[refs[a].shard][refs[a].idx], &r.reqs[refs[b].shard][refs[b].idx]
		if ra.at != rb.at {
			return ra.at < rb.at
		}
		if refs[a].shard != refs[b].shard {
			return refs[a].shard < refs[b].shard
		}
		return refs[a].idx < refs[b].idx
	})
	sub := r.sys.Sub()
	for _, ref := range refs {
		rq := &r.reqs[ref.shard][ref.idx]
		// The request's L1 fill already happened at issue; the hint
		// restores the at-issue presence for upgrade classification.
		sub.SetPresenceHint(rq.present)
		res := r.sys.Access(rq.at, rq.core, rq.line, rq.write)
		sub.ClearPresenceHint()
		if rq.wbValid {
			// The displaced line's write-back follows its access
			// immediately, at the access's completion cycle — the same
			// call order and timestamp the serial engine produces.
			r.sys.WriteBack(res.Done, rq.core, rq.wbLine, rq.wbDirty)
		}
		if rq.demand {
			r.cores[rq.core].Resolve(uint64(ref.idx), res.Done)
		}
	}
	r.requests += uint64(len(refs))
	for s := range r.reqs {
		r.reqs[s] = r.reqs[s][:0]
	}
	r.refs = refs[:0]

	// 3. Resume suspended cores in core order (deterministic; each now
	// has its full miss set resolved).
	for _, c := range r.cores {
		c.ScheduleResume()
	}

	// 4. Telemetry.
	if r.reg != nil {
		r.tickObs(uint64(len(refs)))
	}
}

// tickObs updates the sharded-engine telemetry at a barrier and closes
// any sampling intervals the run has crossed.
func (r *shardedRun) tickObs(nreq uint64) {
	now := uint64(r.se.Now())
	r.cWindows.Add(r.se.Windows - r.lastWindows)
	r.cRequests.Add(nreq)
	if dw := r.se.Windows - r.lastWindows; dw > 0 {
		r.sWidth.Append(now, float64(r.se.WindowCycles-r.lastWidthSum)/float64(dw))
		r.sReqPerWindow.Append(now, float64(nreq)/float64(dw))
	}
	r.lastWindows = r.se.Windows
	r.lastWidthSum = r.se.WindowCycles
	for i, g := range r.gWaitNS {
		g.Set(float64(r.se.Shard(i).BarrierWaitNS()))
	}
	for sim.Cycle(now) >= r.nextTick {
		r.reg.Tick(uint64(r.nextTick))
		r.nextTick += r.interval
	}
}

// instrumentSharded wires a registry into a sharded run: the substrate
// and architecture probes exactly as Instrument does, plus the sharded
// engine's own counters — windows executed, mean window width, barrier
// requests (cross-shard messages), per-shard barrier wait. The engine
// dispatch probe is not attached: shard windows execute concurrently and
// the per-event probe is the serial engine's instrument. All registry
// writes happen in the (serial) barrier phase, so instrumented sharded
// runs stay bit-identical and race-free.
func instrumentSharded(r *shardedRun, reg *obs.Registry, interval sim.Cycle) {
	if interval == 0 {
		interval = DefaultMetricsInterval
	}
	r.sys.Sub().AttachObs(reg)
	if o, ok := r.sys.(arch.Observable); ok {
		o.AttachObs(reg)
	}
	r.reg = reg
	r.interval = interval
	r.nextTick = interval
	r.cWindows = reg.Counter("shard.windows")
	r.cRequests = reg.Counter("shard.requests")
	r.sWidth = reg.Series("shard.window_width")
	r.sReqPerWindow = reg.Series("shard.requests_per_window")
	for i := 0; i < r.se.Shards(); i++ {
		r.gWaitNS = append(r.gWaitNS, reg.Gauge(fmt.Sprintf("shard%d.barrier_wait_ns", i)))
	}
}

// runShardedBound is the sharded analogue of runBound: same phases, same
// stop conditions, same result assembly, but cores run on shard-local
// engines with ported memory access.
func runShardedBound(rc RunConfig, sys arch.System, bound *workload.Bound, idleTarget uint64) (RunResult, error) {
	k := rc.EngineShards
	if k < 1 {
		return RunResult{}, fmt.Errorf("experiment: sharded run needs EngineShards >= 1, got %d", k)
	}
	if k > rc.System.Cores {
		k = rc.System.Cores
	}
	par := rc.ShardParallelism
	if par <= 0 {
		par = k // one goroutine per shard; GOMAXPROCS schedules them
	}
	shardOf := PlanShards(rc.System.NoC.Cols, rc.System.NoC.Rows, rc.System.Cores, k)
	se := sim.NewSharded(k, shardWindowCycles)
	r := &shardedRun{se: se, sys: sys, reqs: make([][]shardReq, k)}

	cores := make([]*cpu.Core, rc.System.Cores)
	measured := bound.Active
	for c := 0; c < rc.System.Cores; c++ {
		target := rc.Warmup + rc.Instructions
		if measured&(1<<uint(c)) == 0 {
			target = idleTarget
		}
		sh := se.Shard(shardOf[c])
		cores[c] = cpu.New(c, rc.Core, sh.Engine(), sys, bound.Streams[c], target)
		cores[c].SetWarmup(rc.Warmup)
		cores[c].SetPort(&corePort{run: r, shard: shardOf[c], core: c})
		cores[c].Start()
	}
	r.cores = cores
	se.SetBarrier(r.barrier)
	if rc.Metrics != nil {
		instrumentSharded(r, rc.Metrics, rc.MetricsInterval)
	}

	// Phase 1: warmup, stop condition evaluated at barriers.
	sub := sys.Sub()
	if rc.Warmup > 0 {
		warmDone := func() bool {
			for c := 0; c < rc.System.Cores; c++ {
				if measured&(1<<uint(c)) != 0 && !cores[c].Warmed() {
					return false
				}
			}
			return true
		}
		se.Run(rc.MaxCycles, warmDone, par)
	}
	warmEnd := se.Now()
	base := snapshot(sub)

	// Phase 2: measured execution.
	allDone := func() bool {
		for c := 0; c < rc.System.Cores; c++ {
			if measured&(1<<uint(c)) != 0 && !cores[c].Done {
				return false
			}
		}
		return true
	}
	se.Run(rc.MaxCycles, allDone, par)

	if rc.Metrics != nil {
		rc.Metrics.Tick(uint64(se.Now()))
		tr := rc.Metrics.Trace()
		tr.Complete("warmup", "phase", 0, uint64(warmEnd), 0)
		tr.Complete("measured", "phase", uint64(warmEnd), uint64(se.Now()-warmEnd), 0)
	}

	res, err := assembleResult(rc, sub, cores, measured, base, nil)
	if err != nil {
		return res, err
	}
	st := &ShardStats{Shards: k, Windows: se.Windows, Requests: r.requests}
	if se.Windows > 0 {
		st.MeanWindowCycles = float64(se.WindowCycles) / float64(se.Windows)
		st.MeanRequestsPerWindow = float64(r.requests) / float64(se.Windows)
	}
	res.Shard = st
	return res, nil
}

// ShardValidationArchs is the architecture set the sharded-mode
// validation harness compares against serial full runs — the paper's
// seven evaluated L2 organizations.
func ShardValidationArchs() []string { return SampleValidationArchs() }

// ShardedErrorRow reports serial-vs-sharded agreement for one
// architecture: relative errors on the headline metrics, the exactness
// of the retired-instruction count (which must always hold — both modes
// run every measured core to the same target), and the wall clocks.
type ShardedErrorRow struct {
	Arch string
	// Relative errors |sharded-serial|/serial.
	Throughput      float64
	AvgAccessTime   float64
	OffChipAccesses float64
	// RetiredExact reports whether the sharded run retired exactly the
	// serial run's instruction count.
	RetiredExact bool
	// Windows is the sharded run's bounded-lag window count.
	Windows uint64

	FullSeconds    float64
	ShardedSeconds float64
}

// ShardedError is the validation harness: for every architecture in
// ShardValidationArchs it runs rc once on the serial engine and once
// sharded k ways, and reports relative errors and wall clocks. rc.Arch
// and rc.EngineShards are overridden per row; rc.ShardParallelism is
// honored for the sharded runs (0 = one goroutine per shard).
func ShardedError(rc RunConfig, k int) ([]ShardedErrorRow, error) {
	rows := make([]ShardedErrorRow, 0, len(ShardValidationArchs()))
	for _, a := range ShardValidationArchs() {
		src := rc
		src.Arch = a
		src.EngineShards = 0
		t0 := time.Now()
		full, err := Run(src)
		if err != nil {
			return nil, fmt.Errorf("serial %s: %w", a, err)
		}
		fullDur := time.Since(t0)

		src.EngineShards = k
		t0 = time.Now()
		shd, err := Run(src)
		if err != nil {
			return nil, fmt.Errorf("sharded %s: %w", a, err)
		}
		shdDur := time.Since(t0)

		rows = append(rows, ShardedErrorRow{
			Arch:            a,
			Throughput:      relErr(shd.Throughput, full.Throughput),
			AvgAccessTime:   relErr(shd.AvgAccessTime, full.AvgAccessTime),
			OffChipAccesses: relErr(float64(shd.OffChipAccesses), float64(full.OffChipAccesses)),
			RetiredExact:    shd.Retired == full.Retired,
			Windows:         shd.Shard.Windows,
			FullSeconds:     fullDur.Seconds(),
			ShardedSeconds:  shdDur.Seconds(),
		})
	}
	return rows, nil
}
