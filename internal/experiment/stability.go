package experiment

import (
	"fmt"
	"sort"
	"strings"

	"espnuca/internal/stats"
)

// StabilityReport quantifies the paper's headline stability claims (§6):
// the variance of shared-normalized performance across a workload suite,
// per architecture, and the relative variance reductions ESP-NUCA
// achieves over its counterparts.
type StabilityReport struct {
	// Variance maps an architecture label to its cross-workload variance
	// of shared-normalized performance.
	Variance map[string]float64
	// Reduction maps a counterpart label to ESP-NUCA's variance
	// reduction versus it, as a fraction (0.37 = "37% lower variance").
	Reduction map[string]float64
	Workloads []string
}

// Stability computes the report from a finished Results matrix; esp is
// ESP-NUCA's variant label, baseline the normalization base ("shared").
func Stability(res Results, esp, baseline string, workloads []string, counterparts []string) (StabilityReport, error) {
	rep := StabilityReport{
		Variance:  map[string]float64{},
		Reduction: map[string]float64{},
		Workloads: workloads,
	}
	for _, label := range append([]string{esp}, counterparts...) {
		var vals []float64
		for _, wl := range workloads {
			n, _, err := res.Normalized(label, baseline, wl)
			if err != nil {
				return rep, err
			}
			vals = append(vals, n)
		}
		rep.Variance[label] = stats.Variance(vals)
	}
	espVar := rep.Variance[esp]
	for _, label := range counterparts {
		v := rep.Variance[label]
		if v <= 0 {
			continue
		}
		rep.Reduction[label] = 1 - espVar/v
	}
	return rep, nil
}

// Family is one workload suite of the §6 stability study.
type Family struct {
	Name      string
	Workloads []string
}

// StabilityFamilies returns the paper's three suites in reporting order.
func StabilityFamilies() []Family {
	return []Family{
		{"transactional", []string{"apache", "jbb", "oltp", "zeus"}},
		{"multiprogrammed", []string{"art-4", "gcc-4", "gzip-4", "mcf-4", "twolf-4",
			"art-gzip", "gcc-gzip", "gcc-twolf", "mcf-gzip", "mcf-twolf"}},
		{"NAS", []string{"BT", "CG", "FT", "IS", "LU", "MG", "SP", "UA"}},
	}
}

// FamilyStability pairs a family with its computed report.
type FamilyStability struct {
	Family string
	Report StabilityReport
}

// StabilityStudy runs the full §6 comparison — every family's matrix over
// the counterpart + CC variant set — and reduces each to its variance
// report. The per-family matrices share one run budget: o.Progress sees a
// single monotonic done count across the whole study, and o.Parallelism
// bounds the workers each matrix fans out over.
func StabilityStudy(families []Family, o Options) ([]FamilyStability, error) {
	variants := append(CounterpartVariants(), CCFamily()...)
	matrices := make([]Matrix, len(families))
	grand := 0
	for i, fam := range families {
		matrices[i] = o.matrix(fam.Workloads, variants)
		grand += len(fam.Workloads) * len(variants) * len(matrices[i].Seeds)
	}
	meter := newProgressMeter(grand, o.Progress)
	out := make([]FamilyStability, 0, len(families))
	for i, fam := range families {
		res, err := matrices[i].Run(func(done, total int) { meter.tick() })
		if err != nil {
			return nil, fmt.Errorf("stability %s: %w", fam.Name, err)
		}
		rep, err := Stability(res, "esp-nuca", "shared", fam.Workloads,
			[]string{"private", "d-nuca", "asr", "CC70"})
		if err != nil {
			return nil, fmt.Errorf("stability %s: %w", fam.Name, err)
		}
		out = append(out, FamilyStability{Family: fam.Name, Report: rep})
	}
	return out, nil
}

// String renders the report.
func (r StabilityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cross-workload performance variance (%d workloads):\n", len(r.Workloads))
	labels := make([]string, 0, len(r.Variance))
	for l := range r.Variance {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "  %-12s %.5f", l, r.Variance[l])
		if red, ok := r.Reduction[l]; ok {
			fmt.Fprintf(&b, "   (esp-nuca variance %+.0f%% vs this)", -red*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
