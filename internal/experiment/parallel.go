package experiment

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file holds the concurrency substrate of the experiment harness.
// Every simulation in a matrix, sweep or stability study is a pure
// function of (configuration, seed), so the cross product they iterate is
// embarrassingly parallel: forEach fans index-addressed jobs out over a
// bounded worker pool while the callers keep results in index-keyed
// slices, which makes the assembled output bit-for-bit identical to a
// serial run regardless of completion order.

// forEach runs job(0..n-1) on up to parallelism workers (<= 0 means
// runtime.GOMAXPROCS(0)). The first error — by job index, not by wall
// clock — cancels the remaining jobs and is returned after all in-flight
// jobs finish. With one worker (or one job) it degenerates to the plain
// serial loop, with identical early-exit semantics.
func forEach(parallelism, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	p := parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx = n
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := job(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// progressMeter serializes completion callbacks from concurrent workers
// into a monotonic (done, total) stream: done increments under the lock
// that also spans the callback, so observers never see it move backwards
// or skip.
type progressMeter struct {
	mu    sync.Mutex
	done  int
	total int
	fn    func(done, total int)
}

func newProgressMeter(total int, fn func(done, total int)) *progressMeter {
	return &progressMeter{total: total, fn: fn}
}

// tick records one completed unit and reports it.
func (p *progressMeter) tick() {
	if p == nil || p.fn == nil {
		return
	}
	p.mu.Lock()
	p.done++
	p.fn(p.done, p.total)
	p.mu.Unlock()
}

// RunAll executes a batch of independent run configurations on up to
// parallelism workers (<= 0: all cores) and returns the results in input
// order. It is the building block callers outside the matrix/sweep
// harness (cmd/espsweep's sensitivity sweep, custom studies) use to get
// the same deterministic fan-out.
func RunAll(parallelism int, rcs []RunConfig) ([]RunResult, error) {
	return RunAllFunc(parallelism, nil, rcs)
}

// RunAllFunc is RunAll with a substitutable run function (nil: Run).
// Callers use it to route the same deterministic fan-out through a
// memoizing runner such as resultcache.Store.Runner.
func RunAllFunc(parallelism int, run func(RunConfig) (RunResult, error), rcs []RunConfig) ([]RunResult, error) {
	if run == nil {
		run = Run
	}
	out := make([]RunResult, len(rcs))
	err := forEach(parallelism, len(rcs), func(i int) error {
		res, err := run(rcs[i])
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
