package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// CodeVersion names the simulator's behavioural revision. It is folded
// into every CanonicalKey, so cached results are invalidated wholesale
// whenever a change makes simulations produce different numbers for the
// same configuration. Bump it on any such change; refactors that keep
// outputs bit-identical must leave it alone.
const CodeVersion = "espnuca-sim-v1"

// CanonicalString renders the run configuration as a deterministic,
// schema-sensitive text form: struct fields are emitted sorted by name
// (so a pure declaration reorder cannot change the key), map keys are
// sorted, and every leaf is formatted by an exact, locale-free rule.
// Fields tagged `canon:"-"` — the telemetry attachments, which are
// proven not to perturb results — are excluded. The form embeds
// CodeVersion, so a behavioural revision of the simulator changes every
// key. Adding, removing, renaming or retyping a config field changes
// the output, which the golden test pins.
func (rc RunConfig) CanonicalString() (string, error) {
	var b strings.Builder
	b.WriteString("v=")
	b.WriteString(CodeVersion)
	b.WriteByte(';')
	if err := canonValue(&b, reflect.ValueOf(rc)); err != nil {
		return "", err
	}
	return b.String(), nil
}

// CanonicalKey returns the hex SHA-256 of CanonicalString: a stable
// content address for "the result of simulating this configuration
// under this code version". Two RunConfigs share a key exactly when a
// conforming simulator must produce bit-identical RunResults for them.
func (rc RunConfig) CanonicalKey() (string, error) {
	s, err := rc.CanonicalString()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// canonValue writes one value in the canonical form. Only the kinds
// that can appear in a configuration tree are supported; anything
// else (func, chan, unsafe pointers, untyped interfaces) is an error
// rather than a silently unstable encoding.
func canonValue(b *strings.Builder, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		// 'x' (hex float) is exact: every distinct bit pattern other than
		// NaNs gets a distinct, platform-independent spelling.
		b.WriteString(strconv.FormatFloat(v.Float(), 'x', -1, 64))
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
	case reflect.Struct:
		return canonStruct(b, v)
	case reflect.Slice, reflect.Array:
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := canonValue(b, v.Index(i)); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case reflect.Map:
		return canonMap(b, v)
	case reflect.Pointer:
		if v.IsNil() {
			b.WriteString("nil")
			return nil
		}
		return canonValue(b, v.Elem())
	default:
		return fmt.Errorf("experiment: cannot canonicalize %s (kind %s)", v.Type(), v.Kind())
	}
	return nil
}

func canonStruct(b *strings.Builder, v reflect.Value) error {
	t := v.Type()
	type fld struct {
		name string
		i    int
	}
	fields := make([]fld, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Tag.Get("canon") == "-" {
			continue
		}
		fields = append(fields, fld{f.Name, i})
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
	// The struct type name participates so renaming a config type is
	// schema drift too.
	b.WriteString(t.Name())
	b.WriteByte('{')
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(f.name)
		b.WriteByte(':')
		if err := canonValue(b, v.Field(f.i)); err != nil {
			return err
		}
	}
	b.WriteByte('}')
	return nil
}

func canonMap(b *strings.Builder, v reflect.Value) error {
	if v.IsNil() {
		b.WriteString("nil")
		return nil
	}
	keys := v.MapKeys()
	enc := make([]struct{ k, kv string }, len(keys))
	for i, k := range keys {
		var kb, vb strings.Builder
		if err := canonValue(&kb, k); err != nil {
			return err
		}
		if err := canonValue(&vb, v.MapIndex(k)); err != nil {
			return err
		}
		enc[i] = struct{ k, kv string }{kb.String(), vb.String()}
	}
	sort.Slice(enc, func(i, j int) bool { return enc[i].k < enc[j].k })
	b.WriteString("map{")
	for i, e := range enc {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(e.k)
		b.WriteByte(':')
		b.WriteString(e.kv)
	}
	b.WriteByte('}')
	return nil
}
