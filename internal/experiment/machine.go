// Package experiment runs complete simulations and regenerates the
// paper's tables and figures: it binds a workload to an architecture,
// executes all eight cores to an instruction target, and reduces the
// substrate counters into the metrics the paper reports (normalized
// performance, access-time decompositions, on-/off-chip behaviour,
// multi-seed confidence intervals, cross-benchmark variance).
package experiment

import (
	"fmt"
	"sync"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

// enginePool recycles event engines across runs: a simulation pushes
// hundreds of thousands of events through its engine, and reusing the
// grown heap backing array means matrix/sweep workers stop paying the
// queue's growth reallocation per cell. Engines are returned reset, with
// their event closures released, so a pooled engine is indistinguishable
// from a fresh one.
var enginePool = sync.Pool{New: func() any { return sim.NewEngine() }}

// RunConfig describes one simulation run.
type RunConfig struct {
	Arch     string
	Workload string
	// Warmup is the per-core instruction count executed before
	// measurement begins: caches fill, victim paths populate the L2, and
	// the adaptive mechanisms settle. Statistics are reset at the warmup
	// boundary.
	Warmup uint64
	// Instructions is the per-core measured retirement target.
	Instructions uint64
	Seed         uint64
	System       arch.Config
	Core         cpu.Config
	// WorkloadL2Lines pins the capacity the workload footprints are
	// scaled against (0: the simulated system's own L2). Capacity sweeps
	// set it so changing the cache does not also change the workload.
	WorkloadL2Lines int
	// MaxCycles bounds runaway simulations (0 = no bound). Expiry is not
	// an error: the run returns whatever the cores retired by the bound
	// (possibly failing with "made no progress" when that is nothing).
	MaxCycles sim.Cycle

	// SampleWindows, when positive, switches Run to SMARTS-style sampled
	// execution: the measured budget is partitioned into that many
	// strata and one detailed measurement window per stratum is
	// simulated after a functional fast-forward (see sampled.go). The
	// estimate's confidence bounds travel in RunResult.Sampled. The
	// field participates in the canonical key, so a sampled result is
	// never substituted for a full run by the result cache.
	SampleWindows int
	// SampleParallelism bounds the worker pool the measurement windows
	// fan out over (0: all cores, 1: serial). Window results are
	// bit-identical at any setting (TestSampledParallelDeterminism), so
	// — like Matrix.Parallelism — it is excluded from the canonical key.
	SampleParallelism int `canon:"-"`

	// EngineShards, when positive, switches Run to the sharded parallel
	// engine (see sharded.go): the machine is partitioned by mesh region
	// into that many shards whose cores execute concurrently between
	// bounded-lag window barriers, while all shared-memory-system
	// transactions are serviced at the barriers in deterministic
	// timestamp order. Results are bit-identical at any ShardParallelism
	// but NOT to the serial engine (the service's (cycle, shard, seq)
	// order tie-breaks differently than the serial engine's slice
	// interleaving), so — exactly like SampleWindows — the field
	// participates in the canonical key: a sharded run never impersonates
	// a legacy run in the result cache. The validation harness
	// ShardedError bounds the residual full-vs-sharded skew.
	EngineShards int
	// ShardParallelism bounds the goroutines a sharded run's windows fan
	// out over (0: all cores, 1: serial). Results are bit-identical at
	// any setting (TestShardedParallelDeterminism), so it is excluded
	// from the canonical key.
	ShardParallelism int `canon:"-"`
	// BarrierParallelism, when > 1, lets a sharded run service each
	// barrier's merged request list in parallel: requests are partitioned
	// into conflict groups by static footprint analysis (see
	// arch.Footprinter) and independent groups run on up to this many
	// workers, each group internally in the deterministic merged order.
	// Grouping is a pure function of the requests and the groups are
	// pairwise disjoint in the state they touch, so results are
	// bit-identical at any setting (TestBarrierParallelDeterminism) and
	// the field is excluded from the canonical key. 0 or 1 keeps the
	// serial barrier; architectures that cannot declare footprints
	// (victim-replication, r-nuca) always service serially.
	BarrierParallelism int `canon:"-"`

	// Metrics, when non-nil, receives this run's telemetry (see
	// internal/obs): interval snapshots of per-bank hit rates and helping
	// blocks, ESP-NUCA's nmax/EMA series, NoC and DRAM utilization, and
	// the engine dispatch profile, plus warmup/measured phase events when
	// tracing is enabled. Each run needs its own registry; the matrix
	// runner creates one per cell.
	// Telemetry attachments carry `canon:"-"`: TestRunMetricsDoNotPerturbResults
	// proves instrumentation leaves results bit-identical, so they are
	// excluded from CanonicalKey.
	Metrics *obs.Registry `canon:"-"`
	// MetricsInterval is the sampling interval in cycles (0 uses
	// DefaultMetricsInterval). Ignored without Metrics.
	MetricsInterval sim.Cycle `canon:"-"`
}

// DefaultRunConfig returns the harness defaults: the scaled system (all
// organization ratios of Table 2, 1/8 capacity), a cache-filling warmup
// and a 40k-instruction measurement quantum per core.
func DefaultRunConfig(archName, workloadName string) RunConfig {
	return RunConfig{
		Arch:         archName,
		Workload:     workloadName,
		Warmup:       80_000,
		Instructions: 40_000,
		Seed:         1,
		System:       arch.ScaledConfig(),
		Core:         cpu.DefaultConfig(),
		MaxCycles:    0,
	}
}

// RunResult is the outcome of one simulation run.
type RunResult struct {
	Arch     string
	Workload string
	Seed     uint64

	// Cycles is the simulated time until every measured core finished.
	Cycles sim.Cycle
	// Retired is the total instructions retired on measured cores.
	Retired uint64
	// Throughput is Retired/Cycles: the multithreaded performance metric.
	Throughput float64
	// MeanIPC is the average per-measured-core IPC: the multiprogrammed
	// metric (paper footnote 3).
	MeanIPC float64
	// PerCoreIPC is each core's measured-window IPC (zero for idle
	// cores); per-class QoS studies read it directly.
	PerCoreIPC [8]float64

	// AvgAccessTime and Decomposition reproduce Figure 6's metric.
	AvgAccessTime float64
	Decomposition [arch.NumLevels]float64

	// OffChipAccesses is the DRAM access count (Figure 7's first metric).
	OffChipAccesses uint64
	// OnChipLatency is the average latency of accesses satisfied on chip
	// (Figure 7's second metric).
	OnChipLatency float64

	// L2Hits/L2Misses summarize L2 behaviour over L1 misses.
	L1MissRate float64

	// Sampled carries the per-window estimates and their 95% confidence
	// half-widths when the result came from sampled execution
	// (RunConfig.SampleWindows > 0); nil for full runs. Consumers that
	// must not act on an estimate can (and should) gate on it.
	Sampled *SampleEstimate `json:"Sampled,omitempty"`

	// Shard summarizes the sharded engine's execution when the result
	// came from a sharded run (RunConfig.EngineShards > 0); nil
	// otherwise. All fields are deterministic (no wall-clock times), so
	// cached sharded results carry them unchanged.
	Shard *ShardStats `json:"Shard,omitempty"`
}

// Run executes one simulation — full, sampled when rc.SampleWindows is
// positive, or space-parallel sharded when rc.EngineShards is positive.
func Run(rc RunConfig) (RunResult, error) {
	if rc.SampleWindows > 0 && rc.EngineShards > 0 {
		return RunResult{}, fmt.Errorf("experiment: SampleWindows and EngineShards are mutually exclusive (sampled windows already parallelize across windows)")
	}
	if rc.SampleWindows > 0 {
		return RunSampled(rc)
	}
	rc.System.Seed = rc.Seed
	sys, err := arch.Build(rc.Arch, rc.System)
	if err != nil {
		return RunResult{}, err
	}
	return RunOn(rc, sys)
}

// RunOn executes a simulation against a caller-built system; ablation
// studies use it to flip architecture-internal knobs before running.
func RunOn(rc RunConfig, sys arch.System) (RunResult, error) {
	// Align the system with the run seed exactly as Run does when it
	// builds the system itself: without this, a caller-built system runs
	// its stochastic mechanisms (ASR, CC) on whatever seed the config
	// happened to carry at build time.
	rc.System.Seed = rc.Seed
	sys.Sub().Reseed(rc.Seed)
	spec, ok := workload.ByName(rc.Workload)
	if !ok {
		return RunResult{}, fmt.Errorf("experiment: unknown workload %q", rc.Workload)
	}
	wlLines := rc.WorkloadL2Lines
	if wlLines == 0 {
		wlLines = rc.System.L2Lines()
	}
	bound := spec.Bind(wlLines, rc.System.L1ILines(), rc.Seed)
	// Idle/service cores run until the measured cores finish; give them
	// an effectively unbounded target.
	if rc.EngineShards > 0 {
		return runShardedBound(rc, sys, bound, ^uint64(0)>>1)
	}
	return runBound(rc, sys, bound, ^uint64(0)>>1, nil)
}

// runBound executes rc's warmup and measurement phases against a
// prepared system and pre-positioned streams. idleTarget is the
// retirement target of unmeasured cores; consumed, when non-nil,
// receives every core's retired count (the sampled runner uses it to
// resynchronize stream positions between windows).
func runBound(rc RunConfig, sys arch.System, bound *workload.Bound, idleTarget uint64, consumed *[8]uint64) (RunResult, error) {
	eng := enginePool.Get().(*sim.Engine)
	defer func() {
		eng.Reset()
		enginePool.Put(eng)
	}()
	cores := make([]*cpu.Core, rc.System.Cores)
	measured := bound.Active
	for c := 0; c < rc.System.Cores; c++ {
		target := rc.Warmup + rc.Instructions
		if measured&(1<<uint(c)) == 0 {
			target = idleTarget
		}
		cores[c] = cpu.New(c, rc.Core, eng, sys, bound.Streams[c], target)
		cores[c].SetWarmup(rc.Warmup)
		cores[c].Start()
	}
	if rc.Metrics != nil {
		Instrument(eng, sys, rc.Metrics, rc.MetricsInterval)
	}

	// Phase 1: run until every measured core has crossed its own warmup
	// boundary (each core's measured window is delimited per-core, so
	// heterogeneous speeds cannot skew the metrics); snapshot the global
	// counters here for the decomposition deltas.
	sub := sys.Sub()
	if rc.Warmup > 0 {
		warmDone := func() bool {
			for c := 0; c < rc.System.Cores; c++ {
				if measured&(1<<uint(c)) != 0 && !cores[c].Warmed() {
					return false
				}
			}
			return true
		}
		eng.RunUntil(rc.MaxCycles, warmDone)
	}
	warmEnd := eng.Now()
	base := snapshot(sub)

	// Phase 2: measured execution.
	allDone := func() bool {
		for c := 0; c < rc.System.Cores; c++ {
			if measured&(1<<uint(c)) != 0 && !cores[c].Done {
				return false
			}
		}
		return true
	}
	eng.RunUntil(rc.MaxCycles, allDone)

	if rc.Metrics != nil {
		// Close the final (possibly partial) sampling interval, then mark
		// the phase boundaries on the trace timeline (nil-safe when
		// tracing is off).
		rc.Metrics.Tick(uint64(eng.Now()))
		tr := rc.Metrics.Trace()
		tr.Complete("warmup", "phase", 0, uint64(warmEnd), 0)
		tr.Complete("measured", "phase", uint64(warmEnd), uint64(eng.Now()-warmEnd), 0)
	}

	return assembleResult(rc, sub, cores, measured, base, consumed)
}

// assembleResult reduces the post-run core and substrate state into a
// RunResult; the serial and sharded runners share it so the metric
// definitions cannot drift apart.
func assembleResult(rc RunConfig, sub *arch.Substrate, cores []*cpu.Core, measured uint8, base statSnapshot, consumed *[8]uint64) (RunResult, error) {
	res := RunResult{Arch: rc.Arch, Workload: rc.Workload, Seed: rc.Seed}
	var retired uint64
	var ipcSum float64
	var nMeasured int
	for c := 0; c < rc.System.Cores; c++ {
		if consumed != nil && c < len(consumed) {
			consumed[c] = cores[c].Retired()
		}
		if measured&(1<<uint(c)) == 0 {
			continue
		}
		dt, dr := cores[c].MeasuredWindow()
		retired += dr
		ipc := cores[c].MeasuredIPC()
		if c < len(res.PerCoreIPC) {
			res.PerCoreIPC[c] = ipc
		}
		ipcSum += ipc
		nMeasured++
		if dt > res.Cycles {
			res.Cycles = dt
		}
	}
	if res.Cycles == 0 || nMeasured == 0 {
		return res, fmt.Errorf("experiment: %s/%s made no progress", rc.Arch, rc.Workload)
	}
	res.Retired = retired
	// Aggregate throughput: per-core rates summed (each core's measured
	// window is its own; this is the transactions-per-unit-time proxy).
	res.Throughput = ipcSum
	res.MeanIPC = ipcSum / float64(nMeasured)

	d := delta(sub, base)
	res.AvgAccessTime, res.Decomposition = d.avgAccessTime()
	res.OffChipAccesses = d.dramReads + d.dramWrites

	// On-chip latency counts L1-miss traffic only (LocalL1 hits would
	// dilute the architecture-dependent term Figure 7 plots).
	var onChipLat, onChipN uint64
	for l := arch.RemoteL1; l < arch.OffChip; l++ {
		onChipLat += d.latency[l]
		onChipN += d.counts[l]
	}
	if onChipN > 0 {
		res.OnChipLatency = float64(onChipLat) / float64(onChipN)
	}

	if d.l1Total > 0 {
		res.L1MissRate = float64(d.l1Misses) / float64(d.l1Total)
	}
	return res, nil
}

// statSnapshot freezes the substrate counters at the warmup boundary so
// measurement reports deltas only.
type statSnapshot struct {
	counts, latency       [arch.NumLevels]uint64
	dramReads, dramWrites uint64
	l1Hits, l1Misses      uint64
}

func snapshot(s *arch.Substrate) statSnapshot {
	hits, misses := s.L1.HitMissTotals()
	return statSnapshot{
		counts:    s.Counts,
		latency:   s.Latency,
		dramReads: s.DRAM.Reads, dramWrites: s.DRAM.Writes,
		l1Hits:   hits,
		l1Misses: misses,
	}
}

type statDelta struct {
	counts, latency       [arch.NumLevels]uint64
	dramReads, dramWrites uint64
	l1Total, l1Misses     uint64
}

func delta(s *arch.Substrate, b statSnapshot) statDelta {
	var d statDelta
	for l := 0; l < int(arch.NumLevels); l++ {
		d.counts[l] = s.Counts[l] - b.counts[l]
		d.latency[l] = s.Latency[l] - b.latency[l]
	}
	d.dramReads = s.DRAM.Reads - b.dramReads
	d.dramWrites = s.DRAM.Writes - b.dramWrites
	curHits, curMisses := s.L1.HitMissTotals()
	misses := curMisses - b.l1Misses
	hits := curHits - b.l1Hits
	d.l1Misses = misses
	d.l1Total = misses + hits
	return d
}

func (d statDelta) avgAccessTime() (float64, [arch.NumLevels]float64) {
	var contrib [arch.NumLevels]float64
	var n, lat uint64
	for l := 0; l < int(arch.NumLevels); l++ {
		n += d.counts[l]
		lat += d.latency[l]
	}
	if n == 0 {
		return 0, contrib
	}
	for l := 0; l < int(arch.NumLevels); l++ {
		contrib[l] = float64(d.latency[l]) / float64(n)
	}
	return float64(lat) / float64(n), contrib
}

// Performance returns the metric the paper normalizes: throughput for
// multithreaded families, mean IPC for multiprogrammed ones.
func (r RunResult) Performance(kind workload.Kind) float64 {
	if kind == workload.HalfRate || kind == workload.Hybrid {
		return r.MeanIPC
	}
	return r.Throughput
}
