package experiment

import (
	"strings"
	"testing"

	"espnuca/internal/arch"
)

func TestEstimateEnergy(t *testing.T) {
	rc := quickRC("esp-nuca", "apache")
	sys, err := arch.Build(rc.Arch, rc.System)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOn(rc, sys)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateEnergy(sys, uint64(res.Cycles))
	if err != nil {
		t.Fatal(err)
	}
	if rep.L2DynamicMJ <= 0 || rep.NetworkMJ <= 0 || rep.DRAMMJ <= 0 || rep.L2LeakMJ <= 0 {
		t.Fatalf("zero energy term: %+v", rep)
	}
	if rep.TotalMJ() <= rep.L2DynamicMJ {
		t.Fatal("total not a sum")
	}
	if rep.String() == "" {
		t.Fatal("empty render")
	}
}

func TestEnergyOrdersArchitectures(t *testing.T) {
	// The architectures trade energy terms against each other (shared
	// ships data over the mesh, private broadcasts probes and misses
	// more): their profiles must be materially different, and private's
	// broadcast coherence must show up as network energy.
	energy := func(name string) EnergyReport {
		rc := quickRC(name, "oltp")
		sys, err := arch.Build(rc.Arch, rc.System)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunOn(rc, sys)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := EstimateEnergy(sys, uint64(res.Cycles))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	sh := energy("shared")
	pr := energy("private")
	rel := (sh.TotalMJ() - pr.TotalMJ()) / sh.TotalMJ()
	if rel < 0 {
		rel = -rel
	}
	if rel < 0.01 {
		t.Fatalf("energy profiles indistinguishable: shared %.4f vs private %.4f mJ",
			sh.TotalMJ(), pr.TotalMJ())
	}
	if pr.NetworkMJ == 0 {
		t.Fatal("private broadcast coherence consumed no network energy")
	}
}

func TestStabilityReport(t *testing.T) {
	m := NewMatrix([]string{"gzip-4", "art-4"}, []Variant{
		V("shared", "shared"), V("esp-nuca", "esp-nuca"), V("private", "private"),
	})
	m.Seeds = []uint64{1}
	m.Warmup, m.Instructions = 20_000, 8_000
	res, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stability(res, "esp-nuca", "shared", []string{"gzip-4", "art-4"}, []string{"private"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Variance["esp-nuca"]; !ok {
		t.Fatal("missing esp-nuca variance")
	}
	if _, ok := rep.Reduction["private"]; !ok {
		t.Fatal("missing reduction vs private")
	}
	for label, v := range rep.Variance {
		if v < 0 {
			t.Fatalf("negative variance for %s", label)
		}
	}
	if !strings.Contains(rep.String(), "esp-nuca") {
		t.Fatal("render missing architecture")
	}
}
