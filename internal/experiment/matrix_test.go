package experiment

import (
	"math"
	"strings"
	"testing"

	"espnuca/internal/stats"
)

// fakeResults builds a Results table from variant -> workload -> mean
// performance, with a small CI so normalization math stays simple.
func fakeResults(perf map[string]map[string]float64) Results {
	out := Results{}
	for v, wls := range perf {
		out[v] = map[string]Cell{}
		for wl, mean := range wls {
			out[v][wl] = Cell{Perf: stats.Summary{Mean: mean}}
		}
	}
	return out
}

// ccResults covers the full CC family plus a shared baseline for one
// workload, with the CC00 cell best and CC100 worst.
func ccResults(wl string) Results {
	perf := map[string]map[string]float64{
		"shared": {wl: 2.0},
	}
	for i, v := range CCFamily() {
		perf[v.Label] = map[string]float64{wl: 2.0 + 0.5*float64(3-i) - 0.5*float64(i)}
	}
	return fakeResults(perf)
}

func TestCCAggregate(t *testing.T) {
	r := ccResults("apache")
	avg, best, worst, err := r.CCAggregate("shared", "apache")
	if err != nil {
		t.Fatal(err)
	}
	// Cells are 3.5, 2.5, 1.5, 0.5 against baseline 2.0.
	if want := 1.0; math.Abs(avg-want) > 1e-12 {
		t.Errorf("avg = %g, want %g", avg, want)
	}
	if want := 1.75; math.Abs(best-want) > 1e-12 {
		t.Errorf("best = %g, want %g", best, want)
	}
	if want := 0.25; math.Abs(worst-want) > 1e-12 {
		t.Errorf("worst = %g, want %g", worst, want)
	}
}

func TestCCAggregateErrorPaths(t *testing.T) {
	r := ccResults("apache")

	// A workload none of the CC cells have.
	if _, _, _, err := r.CCAggregate("shared", "nosuch"); err == nil {
		t.Error("missing workload accepted, want error")
	} else if !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("error %q does not name the missing workload", err)
	}

	// A baseline variant that was never run.
	if _, _, _, err := r.CCAggregate("ghost", "apache"); err == nil {
		t.Error("missing baseline variant accepted, want error")
	}

	// Drop one CC family member: the aggregate must refuse rather than
	// silently average the remaining three.
	delete(r, CCFamily()[2].Label)
	if _, _, _, err := r.CCAggregate("shared", "apache"); err == nil {
		t.Error("incomplete CC family accepted, want error")
	}
}

func TestVarianceNormalized(t *testing.T) {
	r := fakeResults(map[string]map[string]float64{
		"shared":   {"apache": 2.0, "oltp": 4.0},
		"esp-nuca": {"apache": 3.0, "oltp": 4.0},
	})
	got, err := r.VarianceNormalized("esp-nuca", "shared", []string{"apache", "oltp"})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized values 1.5 and 1.0 -> sample variance 0.125.
	if want := 0.125; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %g, want %g", got, want)
	}
}

func TestVarianceNormalizedErrorPaths(t *testing.T) {
	r := fakeResults(map[string]map[string]float64{
		"shared":   {"apache": 2.0},
		"esp-nuca": {"apache": 3.0},
		"zeroed":   {"apache": 0.0},
	})

	// Empty workload slice: a variance over nothing is meaningless and
	// must not read as "perfectly stable".
	if _, err := r.VarianceNormalized("esp-nuca", "shared", nil); err == nil {
		t.Error("empty workload slice accepted, want error")
	}
	if _, err := r.VarianceNormalized("esp-nuca", "shared", []string{}); err == nil {
		t.Error("zero-length workload slice accepted, want error")
	}

	// Unknown variant and unknown workload.
	if _, err := r.VarianceNormalized("ghost", "shared", []string{"apache"}); err == nil {
		t.Error("missing variant accepted, want error")
	}
	if _, err := r.VarianceNormalized("esp-nuca", "shared", []string{"apache", "nosuch"}); err == nil {
		t.Error("missing workload accepted, want error")
	}
	if _, err := r.VarianceNormalized("esp-nuca", "ghost", []string{"apache"}); err == nil {
		t.Error("missing baseline accepted, want error")
	}

	// Zero baseline performance must surface, not divide to +Inf.
	if _, err := r.VarianceNormalized("esp-nuca", "zeroed", []string{"apache"}); err == nil {
		t.Error("zero baseline accepted, want error")
	}
}
