package experiment

import (
	"strings"
	"testing"

	"espnuca/internal/obs"
)

// goldenCanonicalKey pins the canonical hash of the default esp-nuca /
// apache configuration. It changes exactly when the configuration
// schema drifts: a field added, removed, renamed or retyped anywhere in
// RunConfig's tree, a default constant changed, or CodeVersion bumped.
// All of those invalidate every cached result, so the change must be
// deliberate — update the constant only after confirming the drift is
// intended (and bump CodeVersion when simulator behaviour changed).
const goldenCanonicalKey = "aef103c7c7ee4425e0bbaf8fbdb5ba1b2a91c67854478a8a474ab188eca5f4ae"

func TestCanonicalKeyGolden(t *testing.T) {
	rc := DefaultRunConfig("esp-nuca", "apache")
	key, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != goldenCanonicalKey {
		s, _ := rc.CanonicalString()
		t.Errorf("canonical key drifted:\n got  %s\n want %s\ncanonical form: %s\n"+
			"If the config schema change is intentional, update goldenCanonicalKey "+
			"(and bump CodeVersion if simulation behaviour changed).", key, goldenCanonicalKey, s)
	}
}

func TestCanonicalKeyStableAndSensitive(t *testing.T) {
	rc := DefaultRunConfig("esp-nuca", "apache")
	k1, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}

	// Every field that can change simulation output must change the key.
	perturb := map[string]func(*RunConfig){
		"seed":     func(rc *RunConfig) { rc.Seed++ },
		"arch":     func(rc *RunConfig) { rc.Arch = "shared" },
		"workload": func(rc *RunConfig) { rc.Workload = "oltp" },
		"warmup":   func(rc *RunConfig) { rc.Warmup += 1 },
		"instrs":   func(rc *RunConfig) { rc.Instructions += 1 },
		"system":   func(rc *RunConfig) { rc.System.SetsPerBank *= 2 },
		"sampler":  func(rc *RunConfig) { rc.System.Sampler.D++ },
		"ccprob":   func(rc *RunConfig) { rc.System.CCProbability = 0.31 },
		"core":     func(rc *RunConfig) { rc.Core.MSHRs++ },
		"wlLines":  func(rc *RunConfig) { rc.WorkloadL2Lines = 4096 },
		"qos":      func(rc *RunConfig) { rc.System.QoS.ClassOf[3] = 1 },
		"sampleW":  func(rc *RunConfig) { rc.SampleWindows = 8 },
	}
	for name, mod := range perturb {
		alt := DefaultRunConfig("esp-nuca", "apache")
		mod(&alt)
		k, err := alt.CanonicalKey()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("perturbing %s did not change the canonical key", name)
		}
	}
}

func TestCanonicalKeyIgnoresTelemetry(t *testing.T) {
	rc := DefaultRunConfig("esp-nuca", "apache")
	base, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	rc.Metrics = obs.NewRegistry()
	rc.MetricsInterval = 1234
	instrumented, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if base != instrumented {
		t.Errorf("telemetry attachment changed the key: %s vs %s", base, instrumented)
	}
}

func TestCanonicalStringSortedFields(t *testing.T) {
	rc := DefaultRunConfig("esp-nuca", "apache")
	s, err := rc.CanonicalString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "v="+CodeVersion+";RunConfig{") {
		t.Fatalf("unexpected canonical prefix: %.60s", s)
	}
	// Arch sorts before Core, Core before Seed, Seed before System —
	// declaration order must not leak into the encoding.
	order := []string{"Arch:", "Core:", "Instructions:", "Seed:", "System:", "Warmup:", "Workload:"}
	last := -1
	for _, f := range order {
		i := strings.Index(s, f)
		if i < 0 {
			t.Fatalf("canonical form missing field %q: %s", f, s)
		}
		if i < last {
			t.Errorf("field %q out of sorted order", f)
		}
		last = i
	}
	if strings.Contains(s, "Metrics") || strings.Contains(s, "SampleParallelism") {
		t.Errorf("canonical form leaked a canon:\"-\" field: %s", s)
	}
	if !strings.Contains(s, "SampleWindows:") {
		t.Errorf("canonical form must cover SampleWindows (sampled results need distinct cache keys): %s", s)
	}
}
