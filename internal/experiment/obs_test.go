package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"espnuca/internal/obs"
)

// obsRunConfig is a short instrumented esp-nuca run.
func obsRunConfig() RunConfig {
	rc := DefaultRunConfig("esp-nuca", "oltp")
	rc.Warmup = 20_000
	rc.Instructions = 8_000
	rc.MetricsInterval = 2_000
	return rc
}

// TestRunWithMetrics exercises the full telemetry path of one run: the
// interval ticker, the substrate and ESP-NUCA probes, the JSONL sink and
// the phase trace events.
func TestRunWithMetrics(t *testing.T) {
	rc := obsRunConfig()
	reg := obs.NewRegistry()
	var jsonl bytes.Buffer
	reg.AttachJSONL(&jsonl)
	reg.EnableTrace()
	rc.Metrics = reg

	if _, err := Run(rc); err != nil {
		t.Fatal(err)
	}
	if err := reg.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if reg.Ticks() < 3 {
		t.Fatalf("only %d ticks for a run sampled every %d cycles", reg.Ticks(), rc.MetricsInterval)
	}

	// ESP-NUCA per-bank adaptation series must exist with monotone
	// timestamps, one point per tick.
	nmax := reg.Series("bank00.nmax")
	pts := nmax.Points()
	if uint64(len(pts)) != reg.Ticks() {
		t.Fatalf("bank00.nmax has %d points, want one per tick (%d)", len(pts), reg.Ticks())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatalf("bank00.nmax timestamps regressed: %d after %d", pts[i].T, pts[i-1].T)
		}
	}
	for _, name := range []string{"bank00.hrc", "bank00.hrr", "bank00.hre", "bank00.helping", "noc.queue_delay"} {
		if reg.Series(name).Len() == 0 {
			t.Fatalf("series %q recorded no points", name)
		}
	}
	if reg.Counter("l2.lookups").Value() == 0 {
		t.Fatal("l2.lookups counter stayed zero")
	}

	// Every JSONL line is a parseable snapshot with a cycle and the nmax
	// series value.
	sc := bufio.NewScanner(&jsonl)
	var lines int
	var lastCycle uint64
	for sc.Scan() {
		lines++
		var snap struct {
			Cycle  uint64             `json:"cycle"`
			Series map[string]float64 `json:"series"`
		}
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("JSONL line %d: %v", lines, err)
		}
		if snap.Cycle < lastCycle {
			t.Fatalf("JSONL cycles regressed: %d after %d", snap.Cycle, lastCycle)
		}
		lastCycle = snap.Cycle
		if _, ok := snap.Series["bank00.nmax"]; !ok {
			t.Fatalf("JSONL line %d missing bank00.nmax", lines)
		}
	}
	if uint64(lines) != reg.Ticks() {
		t.Fatalf("JSONL has %d lines, want %d (one per tick)", lines, reg.Ticks())
	}

	// The trace holds both phase events and counter tracks.
	var phases []string
	for _, ev := range reg.Trace().Events() {
		if ev.Ph == "X" && ev.Cat == "phase" {
			phases = append(phases, ev.Name)
		}
	}
	if len(phases) != 2 || phases[0] != "warmup" || phases[1] != "measured" {
		t.Fatalf("phase events = %v, want [warmup measured]", phases)
	}
}

// TestRunMetricsDoNotPerturbResults locks the zero-interference contract:
// an instrumented run must produce bit-identical simulation results.
func TestRunMetricsDoNotPerturbResults(t *testing.T) {
	rc := obsRunConfig()
	plain, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Metrics = obs.NewRegistry()
	instrumented, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if plain != instrumented {
		t.Fatalf("metrics perturbed the run:\nplain        %+v\ninstrumented %+v", plain, instrumented)
	}
}

// TestMatrixObsWritesFiles runs a tiny matrix with an ObsSpec and checks
// the per-cell metrics and trace files land in the directory.
func TestMatrixObsWritesFiles(t *testing.T) {
	dir := t.TempDir()
	m := NewMatrix([]string{"oltp"}, []Variant{V("esp-nuca", "esp-nuca")})
	m.Seeds = []uint64{1, 2}
	m.Warmup = 10_000
	m.Instructions = 4_000
	m.Obs = &ObsSpec{Dir: dir, Interval: 2_000, Trace: true}
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, seed := range []string{"s1", "s2"} {
		base := "esp-nuca_oltp_" + seed
		jb, err := os.ReadFile(filepath.Join(dir, base+".metrics.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(jb), "bank00.nmax") {
			t.Fatalf("%s.metrics.jsonl carries no nmax series", base)
		}
		tb, err := os.ReadFile(filepath.Join(dir, base+".trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		var tf struct {
			TraceEvents []obs.TraceEvent `json:"traceEvents"`
		}
		if err := json.Unmarshal(tb, &tf); err != nil {
			t.Fatalf("%s.trace.json: %v", base, err)
		}
		if len(tf.TraceEvents) == 0 {
			t.Fatalf("%s.trace.json is empty", base)
		}
	}
}
