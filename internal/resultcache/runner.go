package resultcache

import "espnuca/internal/experiment"

// Run executes rc through the cache: a hit returns the memoized result
// with zero simulation work, a miss simulates once and stores, and
// concurrent identical requests share one in-flight simulation. The
// returned result is bit-identical to a direct experiment.Run(rc).
//
// Instrumented configurations (rc.Metrics != nil) bypass the cache: a
// memoized result could not replay the run's telemetry side effects.
// Safe on a nil receiver (plain experiment.Run).
func (s *Store) Run(rc experiment.RunConfig) (experiment.RunResult, error) {
	if s == nil {
		return experiment.Run(rc)
	}
	if rc.Metrics != nil {
		s.mu.Lock()
		s.stats.Bypassed++
		s.mu.Unlock()
		return experiment.Run(rc)
	}
	key, err := rc.CanonicalKey()
	if err != nil {
		return experiment.RunResult{}, err
	}
	res, shared, err := s.flight.do(key, func() (experiment.RunResult, error) {
		if res, ok, err := s.Get(key); err != nil || ok {
			return res, err
		}
		res, err := experiment.Run(rc)
		if err != nil {
			return res, err
		}
		s.mu.Lock()
		s.stats.Runs++
		s.mu.Unlock()
		return res, s.Put(key, rc, res)
	})
	if shared {
		s.mu.Lock()
		s.stats.Shared++
		s.mu.Unlock()
	}
	return res, err
}

// Runner returns Run as a free function with the experiment harness's
// cell-runner shape, pluggable into Matrix.RunFunc / Options.RunFunc.
func (s *Store) Runner() func(experiment.RunConfig) (experiment.RunResult, error) {
	return s.Run
}
