package resultcache

import (
	"context"
	"strconv"
	"time"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
)

// Run executes rc through the cache: a hit returns the memoized result
// with zero simulation work, a miss simulates once and stores, and
// concurrent identical requests share one in-flight simulation. The
// returned result is bit-identical to a direct experiment.Run(rc).
//
// Instrumented configurations (rc.Metrics != nil) bypass the cache: a
// memoized result could not replay the run's telemetry side effects.
// Safe on a nil receiver (plain experiment.Run).
func (s *Store) Run(rc experiment.RunConfig) (experiment.RunResult, error) {
	return s.RunCtx(context.Background(), rc)
}

// RunCtx is Run with job-trace propagation: when ctx carries an
// obs.JobTrace (the serving daemon's per-job span collector), the cache
// records the job's `cache-lookup`, `run` and `cache-store` spans, so a
// trace shows exactly where a submission's time went — and a hit
// visibly short-circuits the tree after `cache-lookup`. Tracing wraps
// the existing flow without touching the simulation inputs, so traced
// results stay bit-identical; with no trace in ctx every span call is a
// nil-receiver no-op.
func (s *Store) RunCtx(ctx context.Context, rc experiment.RunConfig) (experiment.RunResult, error) {
	return s.RunVia(ctx, rc, nil)
}

// Simulate executes rc directly — no cache, no leases — under the
// trace carried by ctx (the usual run/simulate span pair). It is the
// compute step RunVia applies on a miss; the cluster dispatcher calls
// it for its run-on-the-coordinator fallback so a fallback's trace is
// indistinguishable from a standalone daemon's.
func Simulate(ctx context.Context, rc experiment.RunConfig) (experiment.RunResult, error) {
	return runTraced(obs.JobTraceFrom(ctx), rc, "")
}

// RunVia generalizes RunCtx over the compute step: on a miss, compute
// produces the result (nil means simulate here — Simulate). The
// cluster coordinator passes its remote-dispatch function, so
// dispatched and local execution share one memoization, singleflight
// and span flow.
//
// When the store carries a Remote tier (SetRemote), a local miss first
// asks the fleet: peer fetch before compute, then the coordinator-
// granted run lease so the whole cluster simulates a key at most once
// concurrently. Remote failures degrade to node-local behavior — the
// tier removes duplicated work, it is never needed for correctness.
func (s *Store) RunVia(ctx context.Context, rc experiment.RunConfig, compute func(context.Context) (experiment.RunResult, error)) (experiment.RunResult, error) {
	tr := obs.JobTraceFrom(ctx)
	if compute == nil {
		compute = func(context.Context) (experiment.RunResult, error) {
			return runTraced(tr, rc, "")
		}
	}
	if s == nil {
		return compute(ctx)
	}
	if rc.Metrics != nil {
		s.mu.Lock()
		s.stats.Bypassed++
		s.mu.Unlock()
		return runTraced(tr, rc, "instrumented")
	}
	key, err := rc.CanonicalKey()
	if err != nil {
		return experiment.RunResult{}, err
	}
	flightStart := time.Now()
	res, shared, err := s.flight.do(key, func() (experiment.RunResult, error) {
		lookup := startCellSpan(tr, "cache-lookup", rc)
		lookup.SetAttr("key", shortKey(key))
		if res, ok, err := s.Get(key); err != nil || ok {
			if ok {
				lookup.SetAttr("hit", "true")
			}
			lookup.End()
			return res, err
		}
		lookup.SetAttr("hit", "false")
		lookup.End()

		var release func(stored bool)
		if s.remote != nil {
			res, ok, err := s.remoteBeforeCompute(ctx, tr, rc, key, &release)
			if ok || err != nil {
				return res, err
			}
		}
		stored := false
		if release != nil {
			defer func() { release(stored) }()
		}

		res, err := compute(ctx)
		if err != nil {
			return res, err
		}
		s.mu.Lock()
		s.stats.Runs++
		s.mu.Unlock()
		store := startCellSpan(tr, "cache-store", rc)
		err = s.Put(key, rc, res)
		store.End()
		stored = err == nil
		return res, err
	})
	if shared {
		s.mu.Lock()
		s.stats.Shared++
		s.mu.Unlock()
		// The singleflight leader's closure recorded its spans into the
		// leader's own trace; this caller's trace gets a post-hoc lookup
		// span covering its wait on the shared simulation.
		lookup := tr.StartSpanAt("cache-lookup", obs.SpanHandle{}, flightStart)
		setCellAttrs(lookup, rc)
		lookup.SetAttr("key", shortKey(key))
		lookup.SetAttr("hit", "true")
		lookup.SetAttr("shared", "true")
		lookup.End()
	}
	return res, err
}

// remoteBeforeCompute runs the cluster-tier steps of a local miss:
// peer fetch, then the cluster-wide run lease. ok=true returns a
// remotely satisfied result (no compute needed); otherwise *release is
// set when this node won the lease and must announce the outcome. A
// non-nil error is only ever the caller's own cancellation — remote
// failures degrade to computing locally.
func (s *Store) remoteBeforeCompute(ctx context.Context, tr *obs.JobTrace, rc experiment.RunConfig, key string, release *func(stored bool)) (experiment.RunResult, bool, error) {
	fetch := startCellSpan(tr, "remote-fetch", rc)
	fetch.SetAttr("key", shortKey(key))
	res, ok, err := s.remote.Fetch(ctx, key)
	if err == nil && ok {
		fetch.SetAttr("hit", "true")
		fetch.End()
		s.mu.Lock()
		s.stats.RemoteHits++
		s.mu.Unlock()
		// Adopt the peer's result locally so the next request here is a
		// plain memory/disk hit and peers can fetch it from us too.
		return res, true, s.Put(key, rc, res)
	}
	fetch.SetAttr("hit", "false")
	fetch.End()
	if ctx.Err() != nil {
		return experiment.RunResult{}, false, context.Cause(ctx)
	}

	wait := startCellSpan(tr, "lease-wait", rc)
	wait.SetAttr("key", shortKey(key))
	res, ok, rel, err := s.remote.Acquire(ctx, key)
	wait.End()
	if err != nil {
		if ctx.Err() != nil {
			return experiment.RunResult{}, false, err
		}
		// Lease service unreachable: compute locally. The local
		// singleflight still collapses this node's duplicates.
		return experiment.RunResult{}, false, nil
	}
	if ok {
		s.mu.Lock()
		s.stats.RemoteHits++
		s.mu.Unlock()
		return res, true, s.Put(key, rc, res)
	}
	*release = rel
	return experiment.RunResult{}, false, nil
}

// runTraced executes the simulation under a `run` span with a
// `simulate` sub-span, plus mode sub-spans describing sampled or
// sharded execution. bypass marks runs that skipped the cache.
func runTraced(tr *obs.JobTrace, rc experiment.RunConfig, bypass string) (experiment.RunResult, error) {
	run := startCellSpan(tr, "run", rc)
	if bypass != "" {
		run.SetAttr("cache_bypass", bypass)
	}
	simStart := time.Now()
	sim := run.ChildAt("simulate", simStart)
	res, err := experiment.Run(rc)
	sim.End()
	if err != nil {
		run.SetAttr("error", err.Error())
		run.End()
		return res, err
	}
	sim.SetAttr("cycles", strconv.FormatUint(uint64(res.Cycles), 10))
	sim.SetAttr("retired", strconv.FormatUint(res.Retired, 10))
	if res.Sampled != nil {
		sub := run.ChildAt("sampled-windows", simStart)
		sub.SetAttr("windows", strconv.Itoa(rc.SampleWindows))
		sub.End()
	}
	if res.Shard != nil {
		sub := run.ChildAt("sharded-windows", simStart)
		sub.SetAttr("shards", strconv.Itoa(rc.EngineShards))
		sub.SetAttr("windows", strconv.FormatUint(res.Shard.Windows, 10))
		sub.SetAttr("requests", strconv.FormatUint(res.Shard.Requests, 10))
		sub.End()
	}
	run.End()
	return res, nil
}

// startCellSpan opens a root-level span tagged with the cell identity,
// so matrix traces stay readable (every cache-lookup/run names its
// arch/workload/seed).
func startCellSpan(tr *obs.JobTrace, name string, rc experiment.RunConfig) obs.SpanHandle {
	h := tr.StartSpan(name, obs.SpanHandle{})
	setCellAttrs(h, rc)
	return h
}

func setCellAttrs(h obs.SpanHandle, rc experiment.RunConfig) {
	h.SetAttr("arch", rc.Arch)
	h.SetAttr("workload", rc.Workload)
	h.SetAttr("seed", strconv.FormatUint(rc.Seed, 10))
}

// shortKey abbreviates a canonical key for span attributes.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Runner returns Run as a free function with the experiment harness's
// cell-runner shape, pluggable into Matrix.RunFunc / Options.RunFunc.
func (s *Store) Runner() func(experiment.RunConfig) (experiment.RunResult, error) {
	return s.Run
}
