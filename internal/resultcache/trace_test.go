package resultcache

import (
	"context"
	"testing"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
)

func quickTraceRC(seed uint64) experiment.RunConfig {
	rc := experiment.DefaultRunConfig("esp-nuca", "apache")
	rc.Seed = seed
	rc.Warmup = 2_000
	rc.Instructions = 1_000
	return rc
}

// spanNames indexes a snapshot by name for assertions.
func spansByName(spans []obs.Span) map[string][]obs.Span {
	m := map[string][]obs.Span{}
	for _, sp := range spans {
		m[sp.Name] = append(m[sp.Name], sp)
	}
	return m
}

// TestRunCtxSpansColdThenHit asserts the tentpole's span contract at the
// cache layer: a cold run records cache-lookup(miss) -> run[simulate] ->
// cache-store, and the identical rerun short-circuits after
// cache-lookup(hit) with no run span.
func TestRunCtxSpansColdThenHit(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc := quickTraceRC(3)

	cold := obs.NewJobTrace("")
	res1, err := s.RunCtx(obs.ContextWithJobTrace(context.Background(), cold), rc)
	if err != nil {
		t.Fatal(err)
	}
	m := spansByName(cold.Snapshot())
	lk := m["cache-lookup"]
	if len(lk) != 1 || lk[0].Attrs["hit"] != "false" {
		t.Fatalf("cold cache-lookup spans = %+v", lk)
	}
	runs := m["run"]
	if len(runs) != 1 {
		t.Fatalf("cold run spans = %+v", runs)
	}
	if runs[0].Attrs["arch"] != "esp-nuca" || runs[0].Attrs["workload"] != "apache" || runs[0].Attrs["seed"] != "3" {
		t.Errorf("run span cell attrs = %v", runs[0].Attrs)
	}
	sim := m["simulate"]
	if len(sim) != 1 || sim[0].Parent != runs[0].ID {
		t.Fatalf("simulate spans = %+v (want one child of run %d)", sim, runs[0].ID)
	}
	if len(m["cache-store"]) != 1 {
		t.Fatalf("cache-store spans = %+v", m["cache-store"])
	}
	for _, sp := range cold.Snapshot() {
		if sp.End.IsZero() {
			t.Errorf("span %s left open", sp.Name)
		}
	}

	warm := obs.NewJobTrace("")
	res2, err := s.RunCtx(obs.ContextWithJobTrace(context.Background(), warm), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("cache hit returned a different result")
	}
	m = spansByName(warm.Snapshot())
	if lk := m["cache-lookup"]; len(lk) != 1 || lk[0].Attrs["hit"] != "true" {
		t.Fatalf("warm cache-lookup spans = %+v", lk)
	}
	if len(m["run"]) != 0 || len(m["cache-store"]) != 0 {
		t.Errorf("warm trace did not short-circuit: %v", warm.Snapshot())
	}
	if st := s.Stats(); st.Runs != 1 {
		t.Errorf("Runs = %d, want 1", st.Runs)
	}
}

// TestRunCtxTracedBitIdentical is the non-perturbation guarantee at the
// cache layer: the traced path returns the exact result of an untraced
// direct run.
func TestRunCtxTracedBitIdentical(t *testing.T) {
	rc := quickTraceRC(7)
	direct, err := experiment.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewJobTrace("")
	traced, err := s.RunCtx(obs.ContextWithJobTrace(context.Background(), tr), rc)
	if err != nil {
		t.Fatal(err)
	}
	if traced != direct {
		t.Errorf("traced run differs from direct run:\n traced %+v\n direct %+v", traced, direct)
	}
	if tr.Len() == 0 {
		t.Error("trace recorded no spans (tracing was not exercised)")
	}
}

// TestRunCtxNilStoreAndNilTrace covers the inert corners: no cache
// still records a run span, and no trace records nothing.
func TestRunCtxNilStoreAndNilTrace(t *testing.T) {
	rc := quickTraceRC(9)
	var nilStore *Store
	tr := obs.NewJobTrace("")
	if _, err := nilStore.RunCtx(obs.ContextWithJobTrace(context.Background(), tr), rc); err != nil {
		t.Fatal(err)
	}
	m := spansByName(tr.Snapshot())
	if len(m["run"]) != 1 || len(m["cache-lookup"]) != 0 {
		t.Errorf("nil-store trace = %+v", tr.Snapshot())
	}

	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCtx(context.Background(), rc); err != nil {
		t.Fatal(err)
	}
}

// TestRunCtxSampledSubSpan asserts sampled execution surfaces as a
// sub-span of run carrying the window count.
func TestRunCtxSampledSubSpan(t *testing.T) {
	rc := quickTraceRC(5)
	rc.Warmup = 8_000
	rc.Instructions = 16_000
	rc.SampleWindows = 2
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewJobTrace("")
	res, err := s.RunCtx(obs.ContextWithJobTrace(context.Background(), tr), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == nil {
		t.Fatal("expected a sampled result")
	}
	m := spansByName(tr.Snapshot())
	sub := m["sampled-windows"]
	if len(sub) != 1 || sub[0].Attrs["windows"] != "2" {
		t.Fatalf("sampled-windows spans = %+v", sub)
	}
	if len(m["run"]) != 1 || sub[0].Parent != m["run"][0].ID {
		t.Errorf("sampled-windows not parented under run")
	}
}
