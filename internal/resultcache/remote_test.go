package resultcache

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"espnuca/internal/experiment"
)

// fakeRemote is an in-memory Remote: a shared result map plus a lease
// table, standing in for the coordinator so the store's cluster-tier
// flow is testable without HTTP.
type fakeRemote struct {
	mu      sync.Mutex
	results map[string]experiment.RunResult
	leases  map[string]bool

	fetches  atomic.Int64
	acquires atomic.Int64
	fail     bool // every call errors (coordinator down)
}

func newFakeRemote() *fakeRemote {
	return &fakeRemote{
		results: make(map[string]experiment.RunResult),
		leases:  make(map[string]bool),
	}
}

func (f *fakeRemote) Fetch(ctx context.Context, key string) (experiment.RunResult, bool, error) {
	f.fetches.Add(1)
	if f.fail {
		return experiment.RunResult{}, false, errors.New("fake remote down")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	res, ok := f.results[key]
	return res, ok, nil
}

func (f *fakeRemote) Acquire(ctx context.Context, key string) (experiment.RunResult, bool, func(bool), error) {
	f.acquires.Add(1)
	if f.fail {
		return experiment.RunResult{}, false, nil, errors.New("fake remote down")
	}
	for {
		f.mu.Lock()
		if res, ok := f.results[key]; ok {
			f.mu.Unlock()
			return res, true, nil, nil
		}
		if !f.leases[key] {
			f.leases[key] = true
			f.mu.Unlock()
			release := func(stored bool) {
				f.mu.Lock()
				delete(f.leases, key)
				f.mu.Unlock()
			}
			return experiment.RunResult{}, false, release, nil
		}
		f.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return experiment.RunResult{}, false, nil, err
		}
	}
}

// publish makes a result fetchable, as a completing peer node would.
func (f *fakeRemote) publish(key string, res experiment.RunResult) {
	f.mu.Lock()
	f.results[key] = res
	f.mu.Unlock()
}

func smallRC(seed uint64) experiment.RunConfig {
	rc := experiment.DefaultRunConfig("shared", "apache")
	rc.Warmup, rc.Instructions, rc.Seed = 4000, 1500, seed
	return rc
}

// TestRemoteFetchBeforeCompute: a result computed "elsewhere" is served
// from the remote tier byte-identically, with zero local simulation.
func TestRemoteFetchBeforeCompute(t *testing.T) {
	rc := smallRC(7)
	key, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	// Node A computes the truth.
	want, err := experiment.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	remote.publish(key, want)

	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)
	got, err := s.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("remote-fetched result differs:\n%s\n%s", wb, gb)
	}
	st := s.Stats()
	if st.Runs != 0 {
		t.Fatalf("remote hit still simulated locally: %+v", st)
	}
	if st.RemoteHits != 1 {
		t.Fatalf("expected 1 remote hit, got %+v", st)
	}
	// The fetched result was adopted locally: the next request is a
	// plain memory hit without touching the remote tier again.
	before := remote.fetches.Load()
	if _, err := s.Run(rc); err != nil {
		t.Fatal(err)
	}
	if remote.fetches.Load() != before {
		t.Fatalf("second request went remote despite local copy")
	}
}

// TestRemoteLeaseComputesOnceAndReleases: a granted lease computes and
// releases; the release announces the stored result.
func TestRemoteLeaseComputesOnceAndReleases(t *testing.T) {
	rc := smallRC(8)
	remote := newFakeRemote()
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)
	if _, err := s.Run(rc); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Runs != 1 || st.RemoteHits != 0 {
		t.Fatalf("cold run through lease: %+v", st)
	}
	remote.mu.Lock()
	held := len(remote.leases)
	remote.mu.Unlock()
	if held != 0 {
		t.Fatalf("lease not released after compute: %d held", held)
	}
}

// TestRemoteDegradesWhenDown: a dead coordinator must not stall local
// work — the store computes as if it had no cluster tier.
func TestRemoteDegradesWhenDown(t *testing.T) {
	rc := smallRC(9)
	remote := newFakeRemote()
	remote.fail = true
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)
	res, err := s.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Fatal("degraded run produced no result")
	}
	if st := s.Stats(); st.Runs != 1 {
		t.Fatalf("expected one local run, got %+v", st)
	}
}

// TestRemoteCancellationWins: a canceled caller gets its cancellation
// error back from the lease wait, not a degraded local run.
func TestRemoteCancellationWins(t *testing.T) {
	rc := smallRC(10)
	key, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	remote := newFakeRemote()
	remote.mu.Lock()
	remote.leases[key] = true // someone else holds it, forever
	remote.mu.Unlock()

	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetRemote(remote)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunCtx(ctx, rc); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if st := s.Stats(); st.Runs != 0 {
		t.Fatalf("canceled caller simulated anyway: %+v", st)
	}
}
