package resultcache

import "testing"

// TestSampledResultsCachedDistinctly proves a sampled estimate is never
// substituted for a full run by the cache: the two configurations hash to
// different keys, and a sampled result round-trips through the disk tier
// with its error bound (RunResult.Sampled) intact.
func TestSampledResultsCachedDistinctly(t *testing.T) {
	full := quickRC("esp-nuca", "apache", 1)
	sampled := full
	sampled.SampleWindows = 4
	sampled.SampleParallelism = 1
	if mustKey(t, full) == mustKey(t, sampled) {
		t.Fatal("full and sampled configurations share a canonical key")
	}
	// SampleParallelism is an execution knob, not a configuration: it must
	// not fragment the cache.
	alt := sampled
	alt.SampleParallelism = 8
	if mustKey(t, alt) != mustKey(t, sampled) {
		t.Fatal("SampleParallelism changed the canonical key")
	}

	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := s.Run(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Sampled == nil {
		t.Fatal("sampled run through the cache lost its error bound")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the hit must come from the JSON object on disk.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	reloaded, err := s2.Run(sampled)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.Runs != 0 || got.DiskHits != 1 {
		t.Fatalf("expected a pure disk hit, got %+v", got)
	}
	if reloaded.Sampled == nil {
		t.Fatal("reloaded sampled result lost its error bound")
	}
	if *reloaded.Sampled != *stored.Sampled {
		t.Fatalf("error bound drifted across the disk round trip:\n got  %+v\n want %+v",
			*reloaded.Sampled, *stored.Sampled)
	}

	// The full configuration must still simulate (its key saw no store).
	if _, err := s2.Run(full); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.Runs != 1 {
		t.Fatalf("full run after sampled store: Runs = %d, want a fresh simulation", got.Runs)
	}
}
