// Package resultcache memoizes simulation results behind the canonical
// content address of their configuration (experiment.RunConfig.CanonicalKey).
//
// Every run in this codebase is a pure function of (configuration, seed,
// code version), so a result computed once is valid forever under the
// same CodeVersion. The store keeps two tiers: a bounded in-memory LRU
// for the hot set, and an optional on-disk JSON object store that
// survives process restarts and is shared between espsweep, espserved
// and espctl. Concurrent requests for the same key are collapsed by a
// singleflight group so one simulation feeds every waiter.
//
// A cached result is bit-identical to a fresh experiment.Run of the same
// configuration: the in-memory tier returns the stored struct by value,
// and the disk tier round-trips through encoding/json, whose shortest
// float formatting parses back to the exact same float64 bits (asserted
// by TestDiskRoundTripBitIdentical).
package resultcache

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"espnuca/internal/experiment"
)

// DefaultMemEntries bounds the in-memory tier when Options.MemEntries
// is zero. A RunResult is ~200 bytes, so the default hot set costs a
// few hundred KB.
const DefaultMemEntries = 1024

// Options tune a Store.
type Options struct {
	// MemEntries bounds the in-memory LRU tier (0: DefaultMemEntries,
	// negative: disable the memory tier).
	MemEntries int
}

// Stats counts store traffic. Runs is the number of actual simulations
// executed through Run — the "zero work on a hit" assertion reads it.
type Stats struct {
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	Stores   uint64 `json:"stores"`
	// Runs counts simulations actually executed by Run (cache misses
	// that did the work).
	Runs uint64 `json:"runs"`
	// Shared counts callers that piggybacked on another caller's
	// in-flight simulation of the same key.
	Shared uint64 `json:"shared"`
	// Bypassed counts Run calls that skipped the cache (instrumented
	// runs, which carry side-effecting telemetry sinks).
	Bypassed uint64 `json:"bypassed"`
	// RemoteHits counts results satisfied by the cluster tier: fetched
	// from a peer node (directly or after waiting out another node's
	// run lease) instead of being simulated here.
	RemoteHits uint64 `json:"remote_hits"`
	// MemEntries and DiskEntries are point-in-time tier sizes, filled by
	// Store.Stats. DiskEntries counts the objects this store knows of —
	// seeded by one scan at Open, then maintained on Put and disk hits —
	// so objects written by another process after Open are counted only
	// once observed.
	MemEntries  int `json:"mem_entries"`
	DiskEntries int `json:"disk_entries"`
}

// Store is a two-tier content-addressed result cache. All methods are
// goroutine-safe. A nil *Store is inert: Get always misses, Put drops,
// Run executes directly.
type Store struct {
	dir string // "" = memory-only

	mu    sync.Mutex
	byKey map[string]*list.Element
	lru   *list.List // front = most recently used
	cap   int
	disk  map[string]struct{} // known on-disk keys; nil when memory-only
	stats Stats

	// remote is the optional cluster tier (peer fetch + run leases),
	// attached by SetRemote before the store is shared.
	remote Remote

	flight group
}

type memEntry struct {
	key string
	res experiment.RunResult
}

// Open returns a store backed by dir ("" for a memory-only store). The
// directory and its object layout are created on demand; an existing
// store directory is picked up as-is — the object files are
// self-describing, so no index load is needed for correctness.
func Open(dir string, o Options) (*Store, error) {
	capacity := o.MemEntries
	switch {
	case capacity == 0:
		capacity = DefaultMemEntries
	case capacity < 0:
		capacity = 0
	}
	s := &Store{
		dir:   dir,
		byKey: make(map[string]*list.Element),
		lru:   list.New(),
		cap:   capacity,
	}
	if dir != "" {
		if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
		// Seed the disk-entry set with one walk so Stats never has to
		// re-enumerate the object tree per call.
		s.disk = make(map[string]struct{})
		for _, key := range s.diskKeys() {
			s.disk[key] = struct{}{}
		}
	}
	return s, nil
}

// objectPath shards entries by the first key byte to keep directories
// small under large sweeps.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// entry is the on-disk object format. Version and Key make each file
// self-describing; a mismatch (stale CodeVersion, hash collision in a
// hand-edited store) reads as a miss, never as a wrong result.
type entry struct {
	Version  string               `json:"version"`
	Key      string               `json:"key"`
	Arch     string               `json:"arch"`
	Workload string               `json:"workload"`
	Seed     uint64               `json:"seed"`
	Result   experiment.RunResult `json:"result"`
}

// Get returns the cached result for key, promoting disk hits into the
// memory tier. The boolean reports whether the key was found.
func (s *Store) Get(key string) (experiment.RunResult, bool, error) {
	if s == nil {
		return experiment.RunResult{}, false, nil
	}
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.MemHits++
		res := el.Value.(*memEntry).res
		s.mu.Unlock()
		return res, true, nil
	}
	s.mu.Unlock()

	if s.dir != "" {
		e, ok, err := s.readObject(key)
		if err != nil {
			return experiment.RunResult{}, false, err
		}
		if ok {
			s.mu.Lock()
			s.stats.DiskHits++
			s.disk[key] = struct{}{} // may be another process's write
			s.addMemLocked(key, e.Result)
			s.mu.Unlock()
			return e.Result, true, nil
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return experiment.RunResult{}, false, nil
}

func (s *Store) readObject(key string) (entry, bool, error) {
	b, err := os.ReadFile(s.objectPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return entry{}, false, nil
	}
	if err != nil {
		return entry{}, false, fmt.Errorf("resultcache: read %s: %w", key, err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		// A torn or corrupt object is a miss; the next Put rewrites it.
		return entry{}, false, nil
	}
	if e.Version != experiment.CodeVersion || e.Key != key {
		return entry{}, false, nil
	}
	return e, true, nil
}

// Put stores res under key in both tiers. rc provides the
// human-readable identity fields of the disk object.
func (s *Store) Put(key string, rc experiment.RunConfig, res experiment.RunResult) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.stats.Stores++
	s.addMemLocked(key, res)
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	e := entry{
		Version:  experiment.CodeVersion,
		Key:      key,
		Arch:     rc.Arch,
		Workload: rc.Workload,
		Seed:     rc.Seed,
		Result:   res,
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultcache: marshal %s: %w", key, err)
	}
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	// Atomic publish: concurrent readers see the old file or the new
	// one, never a torn write; concurrent writers of the same key write
	// identical bytes anyway.
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:8]+".tmp*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultcache: publish %s: %w", key, err)
	}
	s.mu.Lock()
	s.disk[key] = struct{}{}
	s.mu.Unlock()
	return nil
}

// addMemLocked inserts (or refreshes) a memory-tier entry and evicts
// from the LRU tail past capacity. Caller holds s.mu.
func (s *Store) addMemLocked(key string, res experiment.RunResult) {
	if s.cap == 0 {
		return
	}
	if el, ok := s.byKey[key]; ok {
		el.Value.(*memEntry).res = res
		s.lru.MoveToFront(el)
		return
	}
	s.byKey[key] = s.lru.PushFront(&memEntry{key: key, res: res})
	for s.lru.Len() > s.cap {
		tail := s.lru.Back()
		s.lru.Remove(tail)
		delete(s.byKey, tail.Value.(*memEntry).key)
	}
}

// Stats returns a snapshot of the traffic counters and tier sizes. It
// is O(1) — /metricsz scrapes hit it, so it never walks the disk.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	st := s.stats
	st.MemEntries = s.lru.Len()
	st.DiskEntries = len(s.disk)
	s.mu.Unlock()
	return st
}

// diskKeys enumerates the object store on disk. Used at Open (to seed
// the disk-entry set) and Close (to index even objects written by other
// processes since) — never on the Stats hot path.
func (s *Store) diskKeys() []string {
	var keys []string
	root := filepath.Join(s.dir, "objects")
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		name := d.Name()
		if filepath.Ext(name) == ".json" {
			keys = append(keys, name[:len(name)-len(".json")])
		}
		return nil
	})
	return keys
}

// index is the persisted cache manifest: a human- and tool-readable
// summary of what the store holds, written by Close (espserved persists
// it on SIGTERM). Correctness never depends on it — objects are
// self-describing — so a missing or stale index only loses the carried
// lifetime counters.
type index struct {
	Version string       `json:"version"`
	Stats   Stats        `json:"stats"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Key      string `json:"key"`
	Arch     string `json:"arch"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
}

func indexPath(dir string) string { return filepath.Join(dir, "index.json") }

func readIndex(dir string) (index, error) {
	var idx index
	b, err := os.ReadFile(indexPath(dir))
	if err != nil {
		return idx, err
	}
	if err := json.Unmarshal(b, &idx); err != nil {
		return idx, err
	}
	return idx, nil
}

// Close persists the index for disk-backed stores. The store stays
// usable afterwards; Close may be called again to re-persist.
func (s *Store) Close() error {
	if s == nil || s.dir == "" {
		return nil
	}
	idx := index{Version: experiment.CodeVersion, Stats: s.Stats()}
	for _, key := range s.diskKeys() {
		e, ok, err := s.readObject(key)
		if err != nil || !ok {
			continue
		}
		idx.Entries = append(idx.Entries, indexEntry{Key: key, Arch: e.Arch, Workload: e.Workload, Seed: e.Seed})
	}
	b, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("resultcache: index: %w", err)
	}
	tmp := indexPath(s.dir) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("resultcache: index: %w", err)
	}
	if err := os.Rename(tmp, indexPath(s.dir)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("resultcache: index: %w", err)
	}
	return nil
}

// Index returns the persisted manifest of a store directory, if present.
func Index(dir string) (found bool, entries int, stats Stats, err error) {
	idx, err := readIndex(dir)
	if errors.Is(err, os.ErrNotExist) {
		return false, 0, Stats{}, nil
	}
	if err != nil {
		return false, 0, Stats{}, err
	}
	return true, len(idx.Entries), idx.Stats, nil
}
