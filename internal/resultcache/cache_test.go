package resultcache

import (
	"bytes"
	"encoding/json"
	"os"
	"sync"
	"testing"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
)

// quickRC is a fast-but-real simulation configuration (a few ms).
func quickRC(archName, wl string, seed uint64) experiment.RunConfig {
	rc := experiment.DefaultRunConfig(archName, wl)
	rc.Warmup = 5_000
	rc.Instructions = 2_000
	rc.Seed = seed
	return rc
}

func mustKey(t *testing.T, rc experiment.RunConfig) string {
	t.Helper()
	key, err := rc.CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestRunBitIdenticalAndZeroWorkOnHit is the subsystem's core contract:
// a cache-served result is bit-identical to a direct experiment.Run of
// the same configuration, and the second identical request performs
// zero simulation work.
func TestRunBitIdenticalAndZeroWorkOnHit(t *testing.T) {
	rc := quickRC("esp-nuca", "apache", 1)
	direct, err := experiment.Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got1, err := s.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s.Run(rc)
	if err != nil {
		t.Fatal(err)
	}

	// JSON encodes float64 in shortest-round-trip form, so byte equality
	// of the encodings is bit equality of every field.
	want, _ := json.Marshal(direct)
	for i, got := range []experiment.RunResult{got1, got2} {
		b, _ := json.Marshal(got)
		if !bytes.Equal(b, want) {
			t.Errorf("result %d not bit-identical to direct run:\n got  %s\n want %s", i+1, b, want)
		}
	}

	st := s.Stats()
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want 1 (second submission must do zero simulation work)", st.Runs)
	}
	if st.MemHits != 1 {
		t.Errorf("MemHits = %d, want 1", st.MemHits)
	}
}

// TestDiskRoundTripBitIdentical reopens the store so the hit must come
// from the JSON object on disk, not the memory tier.
func TestDiskRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	rc := quickRC("shared", "oltp", 2)

	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s1.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(mustKey(t, rc))
	if err != nil || !ok {
		t.Fatalf("disk get: ok=%v err=%v", ok, err)
	}
	want, _ := json.Marshal(direct)
	b, _ := json.Marshal(got)
	if !bytes.Equal(b, want) {
		t.Errorf("disk round trip not bit-identical:\n got  %s\n want %s", b, want)
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Runs != 0 {
		t.Errorf("stats after disk hit: %+v", st)
	}

	// The persisted index describes the store.
	found, entries, stats, err := Index(dir)
	if err != nil || !found {
		t.Fatalf("index: found=%v err=%v", found, err)
	}
	if entries != 1 || stats.Runs != 1 {
		t.Errorf("index entries=%d stats=%+v, want 1 entry / Runs=1", entries, stats)
	}
}

// TestSingleflightSharesOneRun fires concurrent identical requests and
// asserts exactly one simulation happened.
func TestSingleflightSharesOneRun(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc := quickRC("esp-nuca", "CG", 3)
	const callers = 8
	results := make([]experiment.RunResult, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Run(rc)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Runs != 1 {
		t.Fatalf("Runs = %d, want 1 (singleflight must collapse identical requests)", st.Runs)
	}
	if st.Shared+st.MemHits != callers-1 {
		t.Errorf("shared=%d memHits=%d, want them to cover the other %d callers", st.Shared, st.MemHits, callers-1)
	}
	want, _ := json.Marshal(results[0])
	for i := 1; i < callers; i++ {
		if b, _ := json.Marshal(results[i]); !bytes.Equal(b, want) {
			t.Errorf("caller %d saw a different result", i)
		}
	}
}

func TestMemLRUEviction(t *testing.T) {
	s, err := Open("", Options{MemEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var res experiment.RunResult
	var rcs []experiment.RunConfig
	for i := 0; i < 3; i++ {
		rc := quickRC("shared", "apache", uint64(i+1))
		rc.Instructions += uint64(i) // distinct keys without extra sim cost
		rcs = append(rcs, rc)
		res.Seed = uint64(i + 1)
		if err := s.Put(mustKey(t, rc), rc, res); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := s.Get(mustKey(t, rcs[0])); ok {
		t.Error("oldest entry survived past capacity 2")
	}
	for i := 1; i < 3; i++ {
		if _, ok, _ := s.Get(mustKey(t, rcs[i])); !ok {
			t.Errorf("entry %d evicted despite capacity 2", i)
		}
	}
}

func TestStaleVersionReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MemEntries: -1}) // disk tier only
	if err != nil {
		t.Fatal(err)
	}
	rc := quickRC("shared", "apache", 7)
	key := mustKey(t, rc)
	if err := s.Put(key, rc, experiment.RunResult{Arch: "shared"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key); !ok {
		t.Fatal("expected disk hit")
	}
	// Rewrite the object claiming a different code version: must miss.
	e, ok, err := s.readObject(key)
	if err != nil || !ok {
		t.Fatal("readObject failed")
	}
	e.Version = "espnuca-sim-v0-stale"
	b, _ := json.Marshal(e)
	if err := os.WriteFile(s.objectPath(key), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key); ok {
		t.Error("stale-version object served as a hit")
	}
}

// TestDiskEntriesCounterTracksStore pins the O(1) Stats contract: the
// disk-entry count is maintained incrementally on Put and seeded by one
// scan at Open, not recomputed by walking the object tree per call.
func TestDiskEntriesCounterTracksStore(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.DiskEntries != 0 {
		t.Fatalf("fresh store DiskEntries = %d, want 0", st.DiskEntries)
	}
	var rcs []experiment.RunConfig
	for i := 0; i < 3; i++ {
		rc := quickRC("shared", "apache", uint64(i+1))
		rcs = append(rcs, rc)
		if err := s1.Put(mustKey(t, rc), rc, experiment.RunResult{Seed: rc.Seed}); err != nil {
			t.Fatal(err)
		}
	}
	// Re-putting an existing key must not double count.
	if err := s1.Put(mustKey(t, rcs[0]), rcs[0], experiment.RunResult{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats(); st.DiskEntries != 3 {
		t.Errorf("DiskEntries after 3 distinct puts = %d, want 3", st.DiskEntries)
	}

	// A reopened store seeds the counter from the existing objects.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.DiskEntries != 3 {
		t.Errorf("reopened store DiskEntries = %d, want 3", st.DiskEntries)
	}
}

func TestNilStoreRunsDirectly(t *testing.T) {
	var s *Store
	rc := quickRC("shared", "apache", 1)
	res, err := s.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retired == 0 {
		t.Error("nil store run produced no work")
	}
	if _, ok, _ := s.Get("x"); ok {
		t.Error("nil store hit")
	}
}

func TestInstrumentedRunBypassesCache(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc := quickRC("esp-nuca", "apache", 1)
	for i := 0; i < 2; i++ {
		rc.Metrics = obs.NewRegistry() // registries are one-per-run
		if _, err := s.Run(rc); err != nil {
			t.Fatal(err)
		}
		if rc.Metrics.Ticks() == 0 {
			t.Errorf("bypassed run %d did not drive the registry", i)
		}
	}
	st := s.Stats()
	if st.Bypassed != 2 || st.Stores != 0 {
		t.Errorf("instrumented runs must bypass: %+v", st)
	}
}
