package resultcache

import (
	"sync"

	"espnuca/internal/experiment"
)

// group collapses concurrent calls for the same key into one execution
// whose result every caller shares (the usual singleflight shape,
// specialized to RunResult so the module stays dependency-free).
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done chan struct{}
	res  experiment.RunResult
	err  error
}

// do invokes fn once per key at a time: the first caller runs it, late
// arrivals block until it finishes and receive the same result with
// shared=true. Distinct keys run concurrently.
func (g *group) do(key string, fn func() (experiment.RunResult, error)) (res experiment.RunResult, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.res, true, c.err
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, false, c.err
}
