package resultcache

import "testing"

// TestShardedResultsCachedDistinctly proves a sharded run is never
// substituted for a serial full run by the cache: the two configurations
// hash to different keys, and a sharded result round-trips through the
// disk tier with its window accounting (RunResult.Shard) intact.
func TestShardedResultsCachedDistinctly(t *testing.T) {
	serial := quickRC("esp-nuca", "apache", 1)
	sharded := serial
	sharded.EngineShards = 2
	sharded.ShardParallelism = 1
	if mustKey(t, serial) == mustKey(t, sharded) {
		t.Fatal("serial and sharded configurations share a canonical key")
	}
	// ShardParallelism is an execution knob, not a configuration: it must
	// not fragment the cache.
	alt := sharded
	alt.ShardParallelism = 8
	if mustKey(t, alt) != mustKey(t, sharded) {
		t.Fatal("ShardParallelism changed the canonical key")
	}

	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := s.Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Shard == nil {
		t.Fatal("sharded run through the cache lost its window accounting")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the hit must come from the JSON object on disk.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	reloaded, err := s2.Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.Runs != 0 || got.DiskHits != 1 {
		t.Fatalf("expected a pure disk hit, got %+v", got)
	}
	if reloaded.Shard == nil {
		t.Fatal("reloaded sharded result lost its window accounting")
	}
	if *reloaded.Shard != *stored.Shard {
		t.Fatalf("window accounting drifted across the disk round trip:\n got  %+v\n want %+v",
			*reloaded.Shard, *stored.Shard)
	}

	// The serial configuration must still simulate (its key saw no store).
	if _, err := s2.Run(serial); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats(); got.Runs != 1 {
		t.Fatalf("serial run after sharded store: Runs = %d, want a fresh simulation", got.Runs)
	}
}
