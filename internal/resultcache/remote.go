package resultcache

import (
	"context"

	"espnuca/internal/experiment"
)

// Remote is the cluster tier of the cache: a peer-fetch path that asks
// the rest of the fleet for an already-computed result, and a run-lease
// protocol that extends singleflight across nodes so two machines never
// simulate the same canonical key concurrently. internal/cluster
// provides the HTTP-backed implementation (worker agents talk to the
// coordinator's lease and location tables); tests plug in in-memory
// fakes.
//
// Both methods are best-effort for availability: a Fetch or Acquire
// failure degrades the store to node-local behavior (compute anyway,
// local singleflight still holds) rather than stalling simulations on a
// coordinator outage. The results stay correct either way — every run
// is a pure function of its configuration — the cluster tier only
// removes duplicated work.
type Remote interface {
	// Fetch returns the result for key when some peer already holds it.
	// ok=false with a nil error is a clean remote miss.
	Fetch(ctx context.Context, key string) (res experiment.RunResult, ok bool, err error)

	// Acquire blocks until this node holds the cluster-wide run lease
	// for key (release != nil) or the result became available remotely
	// while waiting (ok=true, no lease held). The caller that got the
	// lease must call release exactly once when its compute attempt
	// ends; stored=true announces that the result is now fetchable from
	// this node. A non-nil error means the lease service is unreachable
	// (or ctx ended) and no lease is held.
	Acquire(ctx context.Context, key string) (res experiment.RunResult, ok bool, release func(stored bool), err error)
}

// SetRemote attaches the cluster tier. Safe only before the store is
// shared across goroutines (espserved wires it at startup); nil
// detaches. No-op on a nil store.
func (s *Store) SetRemote(r Remote) {
	if s == nil {
		return
	}
	s.remote = r
}
