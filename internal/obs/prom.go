package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), so any standard scraper can consume the same
// instruments the JSON /metricsz view serves. Instrument names are
// sanitized into the Prometheus alphabet (dots become underscores);
// counters and gauges map directly, a Series exports its most recent
// point as a gauge, and a Histogram exports both the cumulative
// `_bucket`/`_sum`/`_count` triplet and a derived `_summary` metric
// carrying the p50/p95/p99 quantiles, so percentiles are readable
// without PromQL.

// PromContentType is the Content-Type of WritePrometheus output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes an instrument name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], mapping every other byte to '_' and prefixing
// a leading digit.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	b := []byte(name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
		default:
			b[i] = '_'
		}
	}
	if b[0] >= '0' && b[0] <= '9' {
		return "_" + string(b)
	}
	return string(b)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSplit splits an instrument name into its sanitized Prometheus
// metric name and an optional label suffix: a registry name like
// `shard.barrier_wait_ns{shard="3"}` becomes metric
// `shard_barrier_wait_ns` with label set `{shard="3"}`, so per-entity
// instruments render as one labeled metric family instead of N mangled
// names.
func promSplit(name string) (pn, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return PromName(name[:i]), name[i:]
	}
	return PromName(name), ""
}

// promMergeLabels appends extra (a bare `k="v"` pair) to a possibly-empty
// label set.
func promMergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// promMetric writes one `# TYPE` header plus sample lines.
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) header(name, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString("# TYPE " + name + " " + typ + "\n")
}

func (p *promWriter) sample(name, labels, value string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(name + labels + " " + value + "\n")
}

// WritePrometheus writes every instrument in the registry to w in the
// Prometheus text exposition format. Output is deterministic (names are
// sorted) so tests can assert on it. Safe on a nil receiver (writes
// nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	counters, gauges, series := r.Snapshot()
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	p := &promWriter{w: bufio.NewWriter(w)}
	// Sorted names keep labeled variants of one family adjacent, so the
	// `# TYPE` header is emitted once per family.
	lastHeader := ""
	for _, name := range sortedKeys(counters) {
		pn, labels := promSplit(name)
		if pn != lastHeader {
			p.header(pn, "counter")
			lastHeader = pn
		}
		p.sample(pn, labels, strconv.FormatUint(counters[name], 10))
	}
	lastHeader = ""
	for _, name := range sortedKeys(gauges) {
		pn, labels := promSplit(name)
		if pn != lastHeader {
			p.header(pn, "gauge")
			lastHeader = pn
		}
		p.sample(pn, labels, promFloat(gauges[name]))
	}
	lastHeader = ""
	for _, name := range sortedKeys(series) {
		pn, labels := promSplit(name)
		if pn != lastHeader {
			p.header(pn, "gauge")
			lastHeader = pn
		}
		p.sample(pn, labels, promFloat(series[name].V))
	}
	for _, name := range sortedKeys(hists) {
		pn, labels := promSplit(name)
		writePromHistogram(p, pn, labels, hists[name])
	}
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

func writePromHistogram(p *promWriter, pn, labels string, h *Histogram) {
	count, sum, buckets := h.Snapshot()
	bounds := h.Bounds()
	p.header(pn, "histogram")
	var cum uint64
	for i, bound := range bounds {
		cum += buckets[i]
		p.sample(pn+"_bucket", promMergeLabels(labels, `le="`+promFloat(bound)+`"`), strconv.FormatUint(cum, 10))
	}
	p.sample(pn+"_bucket", promMergeLabels(labels, `le="+Inf"`), strconv.FormatUint(count, 10))
	p.sample(pn+"_sum", labels, promFloat(sum))
	p.sample(pn+"_count", labels, strconv.FormatUint(count, 10))

	// Companion summary: the derived percentiles, so dashboards get
	// p50/p95/p99 without a histogram_quantile query.
	q := h.Quantiles(0.5, 0.95, 0.99)
	sn := pn + "_summary"
	p.header(sn, "summary")
	for i, rank := range []string{"0.5", "0.95", "0.99"} {
		p.sample(sn, promMergeLabels(labels, `quantile="`+rank+`"`), promFloat(q[i]))
	}
	p.sample(sn+"_sum", labels, promFloat(sum))
	p.sample(sn+"_count", labels, strconv.FormatUint(count, 10))
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
