package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Trace collects events in the Chrome trace_event format (the JSON Array
// / JSON Object format understood by chrome://tracing and Perfetto).
// Simulated cycles map one-to-one onto the format's microsecond `ts`
// field, so the viewer's timeline reads directly in cycles.
//
// All methods are safe on a nil receiver, so components can hold a
// possibly-nil *Trace and emit unconditionally.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// TraceEvent is one trace_event record. Field names follow the format
// specification, not Go conventions.
type TraceEvent struct {
	Name string             `json:"name"`
	Cat  string             `json:"cat,omitempty"`
	Ph   string             `json:"ph"`
	Ts   uint64             `json:"ts"`
	Dur  uint64             `json:"dur,omitempty"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// NewTrace returns an empty trace sink.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) append(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Complete records a duration ("X") event spanning [ts, ts+dur) on the
// given track (tid).
func (t *Trace) Complete(name, cat string, ts, dur uint64, tid int) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Tid: tid})
}

// Instant records a point-in-time ("i") event on the given track.
func (t *Trace) Instant(name, cat string, ts uint64, tid int) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, Tid: tid})
}

// CounterValue records a counter ("C") sample; Perfetto renders each
// distinct name as its own counter track.
func (t *Trace) CounterValue(name string, ts uint64, v float64) {
	if t == nil {
		return
	}
	t.append(TraceEvent{Name: name, Ph: "C", Ts: ts, Args: map[string]float64{"value": v}})
}

// Counter records a multi-valued counter sample: args become stacked
// sub-series of one track.
func (t *Trace) Counter(name string, ts uint64, args map[string]float64) {
	if t == nil {
		return
	}
	cp := make(map[string]float64, len(args))
	for k, v := range args {
		cp[k] = v
	}
	t.append(TraceEvent{Name: name, Ph: "C", Ts: ts, Args: cp})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// traceFile is the JSON Object trace container.
type traceFile struct {
	TraceEvents []TraceEvent      `json:"traceEvents"`
	OtherData   map[string]string `json:"otherData,omitempty"`
}

// WriteJSON writes the trace in the JSON Object format. The output is
// deterministic for a given event sequence (encoding/json sorts the args
// maps by key), which the golden-file test relies on.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	if evs == nil {
		evs = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{
		TraceEvents: evs,
		OtherData:   map[string]string{"ts_unit": "1 ts = 1 simulated cycle"},
	})
}
