package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestJobTraceSpanTree(t *testing.T) {
	tr := NewJobTrace("cafe0123cafe0123")
	if got := tr.TraceID(); got != "cafe0123cafe0123" {
		t.Fatalf("TraceID = %q", got)
	}
	root := tr.StartSpan("received", SpanHandle{})
	child := root.Child("decode")
	child.SetAttr("bytes", "128")
	child.End()
	grand := child.Child("inner")
	grand.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "received" || spans[0].Parent != 0 {
		t.Errorf("root span = %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("decode parent = %d, want %d", spans[1].Parent, spans[0].ID)
	}
	if spans[2].Parent != spans[1].ID {
		t.Errorf("inner parent = %d, want %d", spans[2].Parent, spans[1].ID)
	}
	if spans[1].Attrs["bytes"] != "128" {
		t.Errorf("attrs = %v", spans[1].Attrs)
	}
	for i, sp := range spans {
		if sp.End.IsZero() || sp.End.Before(sp.Start) {
			t.Errorf("span %d has bad interval: %+v", i, sp)
		}
		if sp.Duration() < 0 {
			t.Errorf("span %d negative duration", i)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewJobTrace("")
	h := tr.StartSpan("op", SpanHandle{})
	h.End()
	first := tr.Snapshot()[0].End
	time.Sleep(2 * time.Millisecond)
	h.End()
	if got := tr.Snapshot()[0].End; !got.Equal(first) {
		t.Errorf("second End moved the span: %v -> %v", first, got)
	}
}

func TestSpanStartAt(t *testing.T) {
	tr := NewJobTrace("")
	start := time.Now().Add(-time.Second)
	h := tr.StartSpanAt("late", SpanHandle{}, start)
	h.End()
	sp := tr.Snapshot()[0]
	if !sp.Start.Equal(start) {
		t.Errorf("Start = %v, want %v", sp.Start, start)
	}
	if sp.Duration() < time.Second {
		t.Errorf("duration %v, want >= 1s", sp.Duration())
	}
}

// TestNilJobTraceInert is the disabled path: every operation on a nil
// trace (and on handles minted from it) must be a no-op.
func TestNilJobTraceInert(t *testing.T) {
	var tr *JobTrace
	if tr.TraceID() != "" || tr.Len() != 0 || tr.Snapshot() != nil {
		t.Error("nil trace not inert")
	}
	h := tr.StartSpan("x", SpanHandle{})
	h.SetAttr("k", "v")
	h.End()
	h.Child("y").End()
	h.ChildAt("z", time.Now()).End()
	if h.ID() != 0 {
		t.Errorf("nil-trace handle has ID %d", h.ID())
	}
	ctx := ContextWithJobTrace(context.Background(), nil)
	if JobTraceFrom(ctx) != nil {
		t.Error("nil trace round-tripped through context as non-nil")
	}
}

func TestContextCarriesJobTrace(t *testing.T) {
	tr := NewJobTrace("")
	ctx := ContextWithJobTrace(context.Background(), tr)
	if got := JobTraceFrom(ctx); got != tr {
		t.Fatalf("JobTraceFrom = %p, want %p", got, tr)
	}
	if JobTraceFrom(context.Background()) != nil {
		t.Error("empty context yields a trace")
	}
}

func TestJobTraceConcurrent(t *testing.T) {
	tr := NewJobTrace("")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h := tr.StartSpan("cell", SpanHandle{})
				h.SetAttr("i", "x")
				h.Child("sub").End()
				h.End()
			}
		}()
	}
	wg.Wait()
	spans := tr.Snapshot()
	if len(spans) != 8*100*2 {
		t.Fatalf("got %d spans, want %d", len(spans), 8*100*2)
	}
	for i, sp := range spans {
		if sp.ID != uint64(i)+1 {
			t.Fatalf("span %d has ID %d: IDs must be dense and ascending", i, sp.ID)
		}
	}
}

func TestNewTraceIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}
