package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Fatal("second Counter(x) returned a different instrument")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %g, want 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	count, sum, buckets := h.Snapshot()
	if count != 4 || sum != 104.5 {
		t.Fatalf("count=%d sum=%g, want 4, 104.5", count, sum)
	}
	want := []uint64{2, 1, 1} // <=1: {0.5, 1}; <=10: {3}; overflow: {100}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], w, buckets)
		}
	}
}

// TestSeriesMonotone drives interval samples through a series and asserts
// the recorded timestamps never move backwards, and that an out-of-order
// append panics rather than silently corrupting the series.
func TestSeriesMonotone(t *testing.T) {
	r := NewRegistry()
	s := r.Series("bank00.nmax")
	for i := 0; i < 100; i++ {
		s.Append(uint64(i*500), float64(i%7))
	}
	s.Append(100*500, 1) // equal timestamps are legal (final partial tick)
	pts := s.Points()
	if len(pts) != 101 {
		t.Fatalf("len = %d, want 101", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T < pts[i-1].T {
			t.Fatalf("timestamps regressed at %d: %d after %d", i, pts[i].T, pts[i-1].T)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Append into the past did not panic")
		}
	}()
	s.Append(3, 0)
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// concurrent get-or-create on shared and distinct names, increments,
// ticks and snapshots — and is meaningful under `go test -race`.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.AttachJSONL(&syncWriter{w: &buf})
	r.EnableTrace()
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			own := r.Counter("own" + string(rune('a'+id)))
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				own.Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", []float64{10, 100}).Observe(float64(i))
				r.Series("s" + string(rune('a'+id))).Append(uint64(i), float64(i))
			}
		}(g)
	}
	// Concurrent reader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = r.Counter("shared").Value()
			_ = r.SeriesNames()
		}
	}()
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*iters)
	}
	r.Tick(12345)
	if r.Err() != nil {
		t.Fatalf("sink error: %v", r.Err())
	}
}

// syncWriter serializes concurrent JSONL writes in tests.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestDisabledZeroAlloc verifies the disabled path — nil registry, nil
// instruments — performs zero heap allocations, the contract that lets
// hot paths instrument unconditionally.
func TestDisabledZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	s := r.Series("x")
	h := r.Histogram("x", nil)
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(1)
		s.Append(1, 1)
		h.Observe(1)
		r.Tick(1)
		tr.CounterValue("x", 1, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestTickSnapshotsJSONL(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	r.AttachJSONL(&buf)
	c := r.Counter("events")
	nmax := r.Series("bank00.nmax")
	r.OnTick(func(now uint64) { nmax.Append(now, float64(now/1000)) })
	for i := uint64(1); i <= 3; i++ {
		c.Add(10)
		r.Tick(i * 1000)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl lines = %d, want 3", len(lines))
	}
	var snap struct {
		Cycle    uint64             `json:"cycle"`
		Counters map[string]uint64  `json:"counters"`
		Series   map[string]float64 `json:"series"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &snap); err != nil {
		t.Fatalf("bad jsonl: %v", err)
	}
	if snap.Cycle != 3000 || snap.Counters["events"] != 30 || snap.Series["bank00.nmax"] != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if r.Ticks() != 3 {
		t.Fatalf("ticks = %d, want 3", r.Ticks())
	}
}

// BenchmarkDisabledCounter measures the cost of an instrument call with
// no registry attached: one nil check, ~sub-nanosecond, zero allocs.
func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	c := r.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkDisabledSeries measures the disabled series append path.
func BenchmarkDisabledSeries(b *testing.B) {
	var r *Registry
	s := r.Series("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Append(uint64(i), 1)
	}
}

// BenchmarkEnabledCounter is the reference point for the enabled path.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
