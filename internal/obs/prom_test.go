package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuantilesInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4, 8})
	// 10 observations in the (1, 2] bucket, 10 in (4, 8].
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(5)
	}
	q := h.Quantiles(0.25, 0.5, 0.75, 1)
	// Rank 0.25 -> target 5 of 20: middle of the (1, 2] bucket.
	if q[0] != 1.5 {
		t.Errorf("p25 = %v, want 1.5", q[0])
	}
	// Rank 0.5 -> target 10: exactly exhausts the (1, 2] bucket.
	if q[1] != 2 {
		t.Errorf("p50 = %v, want 2", q[1])
	}
	// Rank 0.75 -> target 15: middle of the (4, 8] bucket.
	if q[2] != 6 {
		t.Errorf("p75 = %v, want 6", q[2])
	}
	if q[3] != 8 {
		t.Errorf("p100 = %v, want 8", q[3])
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	if q := h.Quantiles(0.5); q[0] != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q[0])
	}
	// All mass in the overflow bucket clamps to the largest bound.
	h.Observe(100)
	h.Observe(200)
	if q := h.Quantiles(0.5, 0.99); q[0] != 10 || q[1] != 10 {
		t.Errorf("overflow quantiles = %v, want [10 10]", q)
	}
	// Out-of-range ranks clamp instead of exploding.
	if q := h.Quantiles(-1, 2); q[0] != 10 || q[1] != 10 {
		t.Errorf("clamped quantiles = %v", q)
	}

	var nilH *Histogram
	if q := nilH.Quantiles(0.5, 0.95); len(q) != 2 || q[0] != 0 || q[1] != 0 {
		t.Errorf("nil histogram quantiles = %v", q)
	}
}

func TestQuantilesFirstBucketInterpolatesFromZero(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10})
	for i := 0; i < 4; i++ {
		h.Observe(3)
	}
	// target = 2 of 4 inside [0, 10) -> 5.
	if q := h.Quantiles(0.5); q[0] != 5 {
		t.Errorf("p50 = %v, want 5", q[0])
	}
}

func TestHistogramSummaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage.run_ms", []float64{1, 2, 4})
	h.Observe(1.5)
	h.Observe(1.5)
	sums := r.HistogramSummaries()
	s, ok := sums["stage.run_ms"]
	if !ok {
		t.Fatalf("missing summary: %v", sums)
	}
	if s.Count != 2 || s.Sum != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 <= 1 || s.P50 > 2 {
		t.Errorf("p50 = %v, want in (1, 2]", s.P50)
	}
	var nilReg *Registry
	if nilReg.HistogramSummaries() != nil {
		t.Error("nil registry summaries non-nil")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"service.jobs_submitted":          "service_jobs_submitted",
		"bank00.nmax":                     "bank00_nmax",
		"service.http.latency_ms.GET /v1": "service_http_latency_ms_GET__v1",
		"9lives":                          "_9lives",
		"":                                "_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("service.jobs_submitted").Add(3)
	r.Gauge("service.queue_depth").Set(2.5)
	r.Series("bank00.nmax").Append(10, 7)
	h := r.Histogram("service.stage.run_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE service_jobs_submitted counter\nservice_jobs_submitted 3\n",
		"# TYPE service_queue_depth gauge\nservice_queue_depth 2.5\n",
		"# TYPE bank00_nmax gauge\nbank00_nmax 7\n",
		"# TYPE service_stage_run_ms histogram\n",
		`service_stage_run_ms_bucket{le="1"} 1`,
		`service_stage_run_ms_bucket{le="10"} 2`,
		`service_stage_run_ms_bucket{le="+Inf"} 3`,
		"service_stage_run_ms_sum 55.5\n",
		"service_stage_run_ms_count 3\n",
		"# TYPE service_stage_run_ms_summary summary\n",
		`service_stage_run_ms_summary{quantile="0.5"}`,
		`service_stage_run_ms_summary{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every non-comment line must be `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// Determinism: two renders are byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("WritePrometheus output not deterministic")
	}

	var nilReg *Registry
	var empty bytes.Buffer
	if err := nilReg.WritePrometheus(&empty); err != nil || empty.Len() != 0 {
		t.Errorf("nil registry: err=%v len=%d", err, empty.Len())
	}
}

func TestWritePrometheusLabeledFamily(t *testing.T) {
	r := NewRegistry()
	r.Gauge(`shard.barrier_wait_ns{shard="0"}`).Set(100)
	r.Gauge(`shard.barrier_wait_ns{shard="1"}`).Set(250)
	r.Gauge(`shard.barrier_wait_ns{shard="10"}`).Set(75)
	r.Gauge("shard.windows").Set(7)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// All labeled variants render as ONE metric family: exactly one
	// # TYPE header, immediately followed by the per-shard samples.
	if got := strings.Count(out, "# TYPE shard_barrier_wait_ns gauge\n"); got != 1 {
		t.Fatalf("want exactly one family header, got %d:\n%s", got, out)
	}
	for _, want := range []string{
		"shard_barrier_wait_ns{shard=\"0\"} 100\n",
		"shard_barrier_wait_ns{shard=\"1\"} 250\n",
		"shard_barrier_wait_ns{shard=\"10\"} 75\n",
		"# TYPE shard_windows gauge\nshard_windows 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// No sample line may repeat a family header between members.
	fam := out[strings.Index(out, "# TYPE shard_barrier_wait_ns"):]
	fam = fam[:strings.Index(fam, "# TYPE shard_windows")]
	if lines := strings.Count(fam, "\n"); lines != 4 {
		t.Errorf("family block should be header + 3 samples, got %d lines:\n%s", lines, fam)
	}
}
