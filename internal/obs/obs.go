// Package obs is the simulator's observability layer: a unified metrics
// registry of typed instruments (counters, gauges, histograms and
// fixed-interval time series) plus export sinks — JSONL interval
// snapshots and Chrome trace_event JSON loadable in chrome://tracing or
// Perfetto.
//
// The design goal is zero cost when disabled: every instrument method is
// safe on a nil receiver and returns immediately, so instrumented code
// holds possibly-nil *Counter/*Gauge/*Series fields and calls them
// unconditionally. With no registry attached the only cost on a hot path
// is one nil check (see BenchmarkDisabledCounter). Registries are
// goroutine-safe: the experiment harness runs many simulations
// concurrently, each with its own registry, and instruments may be
// created and read from any goroutine.
//
// Timestamps are plain uint64 simulated cycles so the package stays
// dependency-free (sim imports nothing and obs must not import sim).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" on a nil receiver).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an instantaneous value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Name returns the registered name ("" on a nil receiver).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram accumulates a value distribution over fixed bucket bounds:
// bucket i counts observations <= Bounds[i]; one extra bucket counts the
// overflow.
type Histogram struct {
	name   string
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one value. Safe on a nil receiver; the nil path is a
// single inlined check so disabled instrumentation stays free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	h.mu.Lock()
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.mu.Unlock()
}

// Snapshot returns (total count, sum, per-bucket counts). The last bucket
// is the overflow bucket. Safe on a nil receiver.
func (h *Histogram) Snapshot() (count uint64, sum float64, buckets []uint64) {
	if h == nil {
		return 0, 0, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, append([]uint64(nil), h.counts...)
}

// Quantiles estimates the value at each rank p in ps (each in [0, 1]),
// interpolating linearly inside the bucket that holds the rank — the
// same estimator as Prometheus's histogram_quantile, so the JSON and
// Prometheus views of a histogram agree. Ranks that land in the
// overflow bucket clamp to the largest finite bound (there is nothing
// to interpolate toward). An empty histogram reports 0 everywhere.
// Safe on a nil receiver.
func (h *Histogram) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if h == nil {
		return out
	}
	h.mu.Lock()
	count, bounds := h.count, h.bounds
	counts := append([]uint64(nil), h.counts...)
	h.mu.Unlock()
	if count == 0 || len(bounds) == 0 {
		return out
	}
	for i, p := range ps {
		out[i] = quantile(p, count, bounds, counts)
	}
	return out
}

// quantile resolves one rank against a bucket snapshot.
func quantile(p float64, count uint64, bounds []float64, counts []uint64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(count)
	var cum uint64
	for i, bound := range bounds {
		prev := cum
		cum += counts[i]
		if float64(cum) >= target && counts[i] > 0 {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (bound-lo)*(target-float64(prev))/float64(counts[i])
		}
	}
	// Rank fell in the overflow bucket: clamp to the largest bound.
	return bounds[len(bounds)-1]
}

// Bounds returns the bucket upper bounds. Safe on a nil receiver.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Name returns the registered name ("" on a nil receiver).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Point is one sample of a time series.
type Point struct {
	T uint64  `json:"t"`
	V float64 `json:"v"`
}

// Series is a fixed-interval time series: probes append one point per
// registry tick. Timestamps must be monotone (non-decreasing); appending
// into the past is always an instrumentation bug and panics.
type Series struct {
	name string
	mu   sync.Mutex
	pts  []Point
}

// Append records (t, v). Safe on a nil receiver; the nil path is a
// single inlined check so disabled instrumentation stays free.
func (s *Series) Append(t uint64, v float64) {
	if s == nil {
		return
	}
	s.append(t, v)
}

func (s *Series) append(t uint64, v float64) {
	s.mu.Lock()
	if n := len(s.pts); n > 0 && t < s.pts[n-1].T {
		last := s.pts[n-1].T
		s.mu.Unlock()
		panic(fmt.Sprintf("obs: series %q time went backwards (%d after %d)", s.name, t, last))
	}
	s.pts = append(s.pts, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns a copy of the recorded samples. Safe on a nil receiver.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.pts...)
}

// Last returns the most recent point and whether one exists. Safe on a
// nil receiver.
func (s *Series) Last() (Point, bool) {
	if s == nil {
		return Point{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pts) == 0 {
		return Point{}, false
	}
	return s.pts[len(s.pts)-1], true
}

// Len returns the number of recorded samples. Safe on a nil receiver.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Name returns the registered name ("" on a nil receiver).
func (s *Series) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Registry is the root of one simulation run's telemetry. All methods
// are safe on a nil receiver (instruments come back nil and stay inert),
// which is how the disabled path stays free: components keep a possibly-
// nil *Registry and instrument unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
	onTick   []func(now uint64)
	jsonl    io.Writer
	trace    *Trace
	ticks    uint64
	lastTick uint64
	err      error
}

// NewRegistry returns an empty registry with no sinks attached.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (an inert instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (which must be sorted ascending) on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		h = &Histogram{name: name, bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Series returns the named time series, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{name: name}
		r.series[name] = s
	}
	return s
}

// SeriesNames returns the registered series names, sorted. Safe on a nil
// receiver.
func (r *Registry) SeriesNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OnTick registers a probe run on every Tick, before the interval
// snapshot flushes to the sinks. Probes poll live component state into
// gauges and series. No-op on a nil registry.
func (r *Registry) OnTick(fn func(now uint64)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.onTick = append(r.onTick, fn)
	r.mu.Unlock()
}

// AttachJSONL directs interval snapshots to w: one JSON object per Tick
// holding the cycle and every instrument's current value. No-op on a nil
// registry.
func (r *Registry) AttachJSONL(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.jsonl = w
	r.mu.Unlock()
}

// EnableTrace attaches (and returns) the Chrome trace_event sink. Each
// Tick then also emits one counter event per gauge and series, which
// Perfetto renders as counter tracks. No-op (returns nil) on a nil
// registry.
func (r *Registry) EnableTrace() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		r.trace = NewTrace()
	}
	return r.trace
}

// Trace returns the trace sink, or nil when tracing is disabled.
func (r *Registry) Trace() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// Err returns the first sink write error, if any.
func (r *Registry) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Ticks returns the number of completed Tick calls.
func (r *Registry) Ticks() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ticks
}

// Snapshot returns the current value of every counter and gauge, plus
// the last point of every series. Safe on a nil receiver (all maps
// nil). The serving daemon's /metricsz endpoint renders it.
func (r *Registry) Snapshot() (counters map[string]uint64, gauges map[string]float64, series map[string]Point) {
	if r == nil {
		return nil, nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	counters = make(map[string]uint64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	gauges = make(map[string]float64, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g.Value()
	}
	series = make(map[string]Point, len(r.series))
	for n, s := range r.series {
		if p, ok := s.Last(); ok {
			series[n] = p
		}
	}
	return counters, gauges, series
}

// HistogramSummary is the point-in-time JSON view of one histogram:
// totals plus the standard latency percentiles. The /metricsz JSON
// format serves it; the Prometheus format derives the same quantiles.
type HistogramSummary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// HistogramSummaries returns a summary of every registered histogram.
// Safe on a nil receiver (nil map).
func (r *Registry) HistogramSummaries() map[string]HistogramSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	out := make(map[string]HistogramSummary, len(hists))
	for _, h := range hists {
		count, sum, _ := h.Snapshot()
		q := h.Quantiles(0.5, 0.95, 0.99)
		out[h.Name()] = HistogramSummary{Count: count, Sum: sum, P50: q[0], P95: q[1], P99: q[2]}
	}
	return out
}

// snapshot is the JSONL interval record.
type snapshot struct {
	Cycle    uint64             `json:"cycle"`
	Counters map[string]uint64  `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
	Series   map[string]float64 `json:"series,omitempty"`
}

// Tick closes one sampling interval at cycle now: it runs every OnTick
// probe (which update gauges and append series points), then flushes the
// interval snapshot to the attached sinks. Ticks must be issued with
// monotone cycles. No-op on a nil registry.
func (r *Registry) Tick(now uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	probes := r.onTick
	r.mu.Unlock()
	for _, fn := range probes {
		fn(now)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ticks++
	r.lastTick = now
	if r.jsonl != nil {
		snap := snapshot{Cycle: now}
		if len(r.counters) > 0 {
			snap.Counters = make(map[string]uint64, len(r.counters))
			for n, c := range r.counters {
				snap.Counters[n] = c.Value()
			}
		}
		if len(r.gauges) > 0 {
			snap.Gauges = make(map[string]float64, len(r.gauges))
			for n, g := range r.gauges {
				snap.Gauges[n] = g.Value()
			}
		}
		if len(r.series) > 0 {
			snap.Series = make(map[string]float64, len(r.series))
			for n, s := range r.series {
				if p, ok := s.Last(); ok {
					snap.Series[n] = p.V
				}
			}
		}
		b, err := json.Marshal(snap)
		if err == nil {
			b = append(b, '\n')
			_, err = r.jsonl.Write(b)
		}
		if err != nil && r.err == nil {
			r.err = err
		}
	}
	if r.trace != nil {
		for n, g := range r.gauges {
			r.trace.CounterValue(n, now, g.Value())
		}
		for n, s := range r.series {
			if p, ok := s.Last(); ok && p.T == now {
				r.trace.CounterValue(n, now, p.V)
			}
		}
		for n, c := range r.counters {
			r.trace.CounterValue(n, now, float64(c.Value()))
		}
	}
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
