package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// buildSampleTrace produces a small deterministic trace exercising every
// event kind the exporter emits.
func buildSampleTrace() *Trace {
	tr := NewTrace()
	tr.Complete("warmup", "phase", 0, 25_000, 0)
	tr.Complete("measured", "phase", 25_000, 40_000, 0)
	tr.Instant("adaptation", "espnuca", 31_000, 1)
	tr.CounterValue("bank00.nmax", 30_000, 3)
	tr.CounterValue("bank00.nmax", 35_000, 4)
	tr.Counter("bank00.ema", 35_000, map[string]float64{"hrc": 0.91, "hre": 0.88, "hrr": 0.93})
	return tr
}

// TestChromeTraceGolden locks the exact exporter output against
// testdata/trace_golden.json: the format is consumed by external tools
// (chrome://tracing, Perfetto), so byte-level drift is a compatibility
// bug, not a refactor detail.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output drifted from golden file\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestChromeTraceWellFormed checks the structural contract the viewers
// rely on: a traceEvents array of objects each holding name/ph/ts/pid/tid.
func TestChromeTraceWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSampleTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if len(f.TraceEvents) != 6 {
		t.Fatalf("events = %d, want 6", len(f.TraceEvents))
	}
	for i, ev := range f.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
	}
}

func TestEmptyTraceWritesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("invalid JSON for empty trace: %v", err)
	}
	if f.TraceEvents == nil || len(f.TraceEvents) != 0 {
		t.Fatalf("traceEvents = %v, want empty array", f.TraceEvents)
	}
}
