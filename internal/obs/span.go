package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service-side half of the observability layer: wall-
// clock spans recording where a submitted job's time went (queue wait,
// cache lookup, simulation, encode). It deliberately has no OpenTelemetry
// dependency — a span is a name, a [start, end) wall-time interval, a
// parent and a flat attribute bag, which is everything the espserved
// trace endpoint and the espctl timeline need.
//
// The same zero-cost-when-disabled discipline as the instruments above
// applies: every method is safe on a nil *JobTrace, and a SpanHandle
// minted from a nil trace is inert, so instrumented code starts and ends
// spans unconditionally.

// Span is one timed operation inside a job's lifecycle. A zero End marks
// a span still open when the trace was snapshotted.
type Span struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration returns End-Start for a closed span and 0 for an open one.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// JobTrace collects the span tree of one job. It is goroutine-safe:
// matrix jobs record cell spans from many worker goroutines at once.
// All methods are safe on a nil receiver (spans vanish, handles are
// inert), which is how a service with tracing disabled pays nothing.
type JobTrace struct {
	traceID string
	mu      sync.Mutex
	spans   []Span
}

// NewJobTrace returns an empty trace. An empty traceID generates a fresh
// random one (clients propagate their own via the X-Trace-Id header).
func NewJobTrace(traceID string) *JobTrace {
	if traceID == "" {
		traceID = NewTraceID()
	}
	// A run job's lifecycle records ~7 spans; pre-sizing keeps span
	// recording off the allocator after the trace is minted.
	return &JobTrace{traceID: traceID, spans: make([]Span, 0, 8)}
}

// TraceID returns the trace's correlation ID ("" on a nil receiver).
func (t *JobTrace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SpanHandle is a cheap value handle to one recorded span. The zero
// SpanHandle is inert and doubles as "no parent" for StartSpan.
type SpanHandle struct {
	t  *JobTrace
	id uint64
}

// ID returns the span's ID (0 for an inert handle).
func (h SpanHandle) ID() uint64 { return h.id }

// StartSpan opens a span under parent (the zero handle parents at the
// root) starting now. Safe on a nil receiver: returns an inert handle.
func (t *JobTrace) StartSpan(name string, parent SpanHandle) SpanHandle {
	return t.StartSpanAt(name, parent, time.Now())
}

// StartSpanAt opens a span with an explicit start time — used when the
// interval is only known after the fact (e.g. a caller that piggybacked
// on another caller's in-flight simulation).
func (t *JobTrace) StartSpanAt(name string, parent SpanHandle, start time.Time) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	t.mu.Lock()
	id := uint64(len(t.spans)) + 1
	t.spans = append(t.spans, Span{ID: id, Parent: parent.id, Name: name, Start: start})
	t.mu.Unlock()
	return SpanHandle{t: t, id: id}
}

// Child opens a sub-span of h starting now.
func (h SpanHandle) Child(name string) SpanHandle {
	return h.t.StartSpan(name, h)
}

// ChildAt opens a sub-span of h with an explicit start time.
func (h SpanHandle) ChildAt(name string, start time.Time) SpanHandle {
	return h.t.StartSpanAt(name, h, start)
}

// End closes the span now. Idempotent: the first End wins, so cleanup
// paths may End defensively without clobbering the recorded interval.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	sp := &h.t.spans[h.id-1]
	if sp.End.IsZero() {
		sp.End = time.Now()
	}
	h.t.mu.Unlock()
}

// SetAttr attaches (or overwrites) a string attribute on the span.
func (h SpanHandle) SetAttr(key, value string) {
	if h.t == nil {
		return
	}
	h.t.mu.Lock()
	sp := &h.t.spans[h.id-1]
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]string, 4)
	}
	sp.Attrs[key] = value
	h.t.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans in creation order (IDs
// are dense and ascending, so creation order is ID order). Attribute
// maps are copied; the caller may retain the result.
func (t *JobTrace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	for i, sp := range t.spans {
		if sp.Attrs != nil {
			attrs := make(map[string]string, len(sp.Attrs))
			for k, v := range sp.Attrs {
				attrs[k] = v
			}
			sp.Attrs = attrs
		}
		out[i] = sp
	}
	return out
}

// Len returns the number of recorded spans.
func (t *JobTrace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// traceIDState is a splitmix64 counter seeded once from the system
// randomness source. Correlation IDs need uniqueness, not crypto
// strength, and an atomic add plus a mix keeps NewTraceID off the
// submit path's profile (crypto/rand per ID costs ~1µs).
var traceIDState = func() *atomic.Uint64 {
	var s atomic.Uint64
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		var n uint64
		for i := range b {
			n |= uint64(b[i]) << (8 * i)
		}
		s.Store(n)
	}
	return &s
}()

// NewTraceID returns a 16-hex-character random correlation ID.
func NewTraceID() string {
	n := traceIDState.Add(0x9e3779b97f4a7c15)
	n ^= n >> 30
	n *= 0xbf58476d1ce4e5b9
	n ^= n >> 27
	n *= 0x94d049bb133111eb
	n ^= n >> 31
	var b [8]byte
	for i := range b {
		b[i] = byte(n >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// traceCtxKey keys the JobTrace carried through a job's context.
type traceCtxKey struct{}

// ContextWithJobTrace returns ctx carrying t, so layers below the
// scheduler (runner, result cache) can record spans into the job's
// trace. A nil t returns ctx unchanged.
func ContextWithJobTrace(ctx context.Context, t *JobTrace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// JobTraceFrom extracts the job trace from ctx (nil when absent, which
// every JobTrace method tolerates).
func JobTraceFrom(ctx context.Context) *JobTrace {
	t, _ := ctx.Value(traceCtxKey{}).(*JobTrace)
	return t
}
