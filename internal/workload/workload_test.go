package workload

import (
	"testing"
	"testing/quick"

	"espnuca/internal/mem"
)

const (
	testL2Lines  = 32768 // 2 MB of 64B lines
	testL1ILines = 512
)

func TestCatalogMatchesTable1(t *testing.T) {
	cat := Catalog()
	if len(cat) != 22 {
		t.Fatalf("catalog has %d workloads, want 22", len(cat))
	}
	counts := map[Kind]int{}
	for _, s := range cat {
		counts[s.Kind]++
	}
	if counts[Transactional] != 4 || counts[HalfRate] != 5 || counts[Hybrid] != 5 || counts[NAS] != 8 {
		t.Fatalf("family counts = %v, want 4/5/5/8", counts)
	}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Fatalf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, name := range []string{"apache", "jbb", "oltp", "zeus", "art-4", "mcf-gzip", "BT", "UA"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("workload %q missing", name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName found a nonexistent workload")
	}
	if len(Names()) != 22 {
		t.Error("Names() length mismatch")
	}
}

func TestActiveCores(t *testing.T) {
	apache, _ := ByName("apache")
	if apache.ActiveCores() != 0xFF {
		t.Fatalf("apache active = %b, want all cores", apache.ActiveCores())
	}
	hr, _ := ByName("gcc-4")
	if hr.ActiveCores() != 0x0F {
		t.Fatalf("gcc-4 active = %b, want cores 0-3", hr.ActiveCores())
	}
	hy, _ := ByName("mcf-twolf")
	if hy.ActiveCores() != 0xFF {
		t.Fatalf("mcf-twolf active = %b, want all", hy.ActiveCores())
	}
}

func TestBindGivesEveryCoreAStream(t *testing.T) {
	for _, s := range Catalog() {
		b := s.Bind(testL2Lines, testL1ILines, 1)
		for c := 0; c < 8; c++ {
			if b.Streams[c] == nil {
				t.Fatalf("%s: core %d has no stream", s.Name, c)
			}
			if b.Streams[c].Core() != c {
				t.Fatalf("%s: stream core mismatch", s.Name)
			}
		}
	}
}

func TestIdleCoresRunIdleProfile(t *testing.T) {
	s, _ := ByName("art-4")
	b := s.Bind(testL2Lines, testL1ILines, 1)
	for c := 4; c < 8; c++ {
		if got := b.Streams[c].Profile().Name; got != "idle" {
			t.Fatalf("core %d profile = %q, want idle", c, got)
		}
	}
	if b.Streams[0].Profile().Name != "art" {
		t.Fatalf("core 0 profile = %q", b.Streams[0].Profile().Name)
	}
}

func TestStreamDeterminism(t *testing.T) {
	s, _ := ByName("apache")
	a := s.Bind(testL2Lines, testL1ILines, 42)
	b := s.Bind(testL2Lines, testL1ILines, 42)
	for i := 0; i < 5000; i++ {
		x, y := a.Streams[3].Next(), b.Streams[3].Next()
		if x != y {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, x, y)
		}
	}
}

func TestStreamSeedPerturbation(t *testing.T) {
	s, _ := ByName("apache")
	a := s.Bind(testL2Lines, testL1ILines, 1)
	b := s.Bind(testL2Lines, testL1ILines, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Streams[0].Next() == b.Streams[0].Next() {
			same++
		}
	}
	if same > 950 {
		t.Fatalf("different seeds produced nearly identical streams (%d/1000)", same)
	}
}

func TestMemFractionRealized(t *testing.T) {
	s, _ := ByName("oltp")
	b := s.Bind(testL2Lines, testL1ILines, 7)
	memOps := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if b.Streams[0].Next().IsMem {
			memOps++
		}
	}
	got := float64(memOps) / n
	want := b.Streams[0].Profile().MemFraction
	if got < want-0.03 || got > want+0.03 {
		t.Fatalf("mem fraction = %g, want ~%g", got, want)
	}
}

func TestMultithreadedSharesRegions(t *testing.T) {
	s, _ := ByName("apache") // multithreaded
	b := s.Bind(testL2Lines, testL1ILines, 3)
	shared := map[mem.Line]uint8{}
	for c := 0; c < 8; c++ {
		for i := 0; i < 30000; i++ {
			in := b.Streams[c].Next()
			if in.IsMem {
				shared[in.Data] |= 1 << uint(c)
			}
		}
	}
	multi := 0
	for _, mask := range shared {
		if mask&(mask-1) != 0 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("multithreaded workload produced no cross-core shared lines")
	}
}

func TestInstancesAreDisjoint(t *testing.T) {
	s, _ := ByName("gcc-4") // 4 independent instances
	b := s.Bind(testL2Lines, testL1ILines, 3)
	perCore := [4]map[mem.Line]bool{}
	for c := 0; c < 4; c++ {
		perCore[c] = map[mem.Line]bool{}
		for i := 0; i < 20000; i++ {
			in := b.Streams[c].Next()
			if in.IsMem {
				perCore[c][in.Data] = true
			}
		}
	}
	for a := 0; a < 4; a++ {
		for bb := a + 1; bb < 4; bb++ {
			for l := range perCore[a] {
				if perCore[bb][l] {
					// gcc has no OS fraction, so any overlap is a bug.
					t.Fatalf("instances %d and %d share line %#x", a, bb, l)
				}
			}
		}
	}
}

func TestNASFootprintExceedsL2(t *testing.T) {
	s, _ := ByName("FT")
	b := s.Bind(testL2Lines, testL1ILines, 3)
	lines := map[mem.Line]bool{}
	for c := 0; c < 8; c++ {
		for i := 0; i < 200000; i++ {
			in := b.Streams[c].Next()
			if in.IsMem {
				lines[in.Data] = true
			}
		}
	}
	if len(lines) < testL2Lines {
		t.Fatalf("FT touched only %d lines, want > L2 capacity %d", len(lines), testL2Lines)
	}
}

func TestGzipFitsPrivatePortion(t *testing.T) {
	s, _ := ByName("gzip-4")
	b := s.Bind(testL2Lines, testL1ILines, 3)
	lines := map[mem.Line]bool{}
	for i := 0; i < 100000; i++ {
		in := b.Streams[0].Next()
		if in.IsMem {
			lines[in.Data] = true
		}
	}
	// One core's private share of the L2 is 1/8 of capacity.
	if len(lines) > testL2Lines/8 {
		t.Fatalf("gzip instance touched %d lines, want << private portion %d", len(lines), testL2Lines/8)
	}
}

func TestFetchLinesComeFromCodeOrOS(t *testing.T) {
	s, _ := ByName("oltp")
	b := s.Bind(testL2Lines, testL1ILines, 3)
	fetches := 0
	for i := 0; i < 20000; i++ {
		in := b.Streams[1].Next()
		if !in.HasFetch {
			continue
		}
		fetches++
		if in.Fetch < osBase {
			t.Fatalf("fetch line %#x below OS base", in.Fetch)
		}
	}
	if fetches == 0 {
		t.Fatal("no instruction fetches generated")
	}
	// Fetch events should be well below one per instruction.
	if fetches > 10000 {
		t.Fatalf("%d fetches in 20000 instructions: fetch coalescing broken", fetches)
	}
}

// Property: streams never emit lines outside their region bases, for any
// seed and any catalog workload.
func TestStreamRegionsProperty(t *testing.T) {
	cat := Catalog()
	prop := func(seed uint64, wsel uint8) bool {
		s := cat[int(wsel)%len(cat)]
		b := s.Bind(testL2Lines, testL1ILines, seed)
		for c := 0; c < 8; c++ {
			for i := 0; i < 500; i++ {
				in := b.Streams[c].Next()
				if in.IsMem && in.Data < osBase {
					return false
				}
				if in.HasFetch && in.Fetch < osBase {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{Transactional, HalfRate, Hybrid, NAS} {
		if k.String() == "unknown" {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("invalid kind not flagged")
	}
}

func TestPhasedSpecValidation(t *testing.T) {
	a := apacheProfile()
	b := mcfProfile()
	if _, err := PhasedSpec("p", a, b, 0); err == nil {
		t.Error("zero period accepted")
	}
	unnamed := a
	unnamed.Name = ""
	if _, err := PhasedSpec("p", unnamed, b, 100); err == nil {
		t.Error("unnamed profile accepted")
	}
	if _, err := PhasedSpec("p", a, b, 100); err != nil {
		t.Fatal(err)
	}
}

func TestPhasedStreamAlternates(t *testing.T) {
	spec, err := PhasedSpec("phase-test", apacheProfile(), mcfProfile(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	bound := spec.Bind(testL2Lines, testL1ILines, 1)
	st := bound.Streams[0]
	name, switches := st.Phase()
	if name != "apache" || switches != 0 {
		t.Fatalf("initial phase = %s/%d", name, switches)
	}
	for i := 0; i < 1500; i++ {
		st.Next()
	}
	name, switches = st.Phase()
	if name != "mcf" || switches != 1 {
		t.Fatalf("phase after 1500 instrs = %s/%d, want mcf/1", name, switches)
	}
	for i := 0; i < 1000; i++ {
		st.Next()
	}
	name, switches = st.Phase()
	if name != "apache" || switches != 2 {
		t.Fatalf("phase after 2500 instrs = %s/%d, want apache/2", name, switches)
	}
}

func TestPhasedStreamChangesFootprint(t *testing.T) {
	small := gzipProfile()
	big := mcfProfile()
	spec, err := PhasedSpec("phase-fp", small, big, 5000)
	if err != nil {
		t.Fatal(err)
	}
	bound := spec.Bind(testL2Lines, testL1ILines, 2)
	st := bound.Streams[0]
	countDistinct := func(n int) int {
		lines := map[mem.Line]bool{}
		for i := 0; i < n; i++ {
			in := st.Next()
			if in.IsMem {
				lines[in.Data] = true
			}
		}
		return len(lines)
	}
	gz := countDistinct(5000) // gzip phase
	mc := countDistinct(5000) // mcf phase
	if mc <= gz*2 {
		t.Fatalf("mcf phase touched %d lines vs gzip phase %d; phases not distinct", mc, gz)
	}
}

func TestUnphasedStreamPhase(t *testing.T) {
	s, _ := ByName("apache")
	b := s.Bind(testL2Lines, testL1ILines, 1)
	name, switches := b.Streams[0].Phase()
	if name != "apache" || switches != 0 {
		t.Fatalf("Phase() on plain stream = %s/%d", name, switches)
	}
}

// TestProfileSanity validates every catalog profile's parameters: all
// fractions in [0,1], footprints positive where the class requires them,
// and family-level properties (transactional share, NAS footprints,
// SPEC instance isolation).
func TestProfileSanity(t *testing.T) {
	frac := func(name string, v float64) {
		if v < 0 || v > 1 {
			t.Errorf("%s = %g outside [0,1]", name, v)
		}
	}
	for _, spec := range Catalog() {
		for _, a := range spec.Assignments {
			p := a.App
			frac(spec.Name+".MemFraction", p.MemFraction)
			frac(spec.Name+".WriteFraction", p.WriteFraction)
			frac(spec.Name+".SharedFraction", p.SharedFraction)
			frac(spec.Name+".SharedWriteFraction", p.SharedWriteFraction)
			frac(spec.Name+".StreamFraction", p.StreamFraction)
			frac(spec.Name+".OSFraction", p.OSFraction)
			frac(spec.Name+".BranchFraction", p.BranchFraction)
			frac(spec.Name+".Recency", p.Recency)
			frac(spec.Name+".CodeRecency", p.CodeRecency)
			if p.MemFraction <= 0 {
				t.Errorf("%s: zero memory fraction", spec.Name)
			}
			if p.PrivateFootprint <= 0 {
				t.Errorf("%s: zero private footprint", spec.Name)
			}
			if p.CodeFootprint <= 0 {
				t.Errorf("%s: zero code footprint", spec.Name)
			}
			if p.SharedFraction > 0 && p.SharedFootprint <= 0 {
				t.Errorf("%s: shared accesses with zero shared footprint", spec.Name)
			}
			switch spec.Kind {
			case Transactional:
				if p.SharedFraction < 0.2 {
					t.Errorf("%s: transactional sharing %g too low", spec.Name, p.SharedFraction)
				}
				if p.OSFraction <= 0 {
					t.Errorf("%s: transactional without OS activity", spec.Name)
				}
			case NAS:
				if p.PrivateFootprint < 1 {
					t.Errorf("%s: NAS footprint %g not > L2", spec.Name, p.PrivateFootprint)
				}
				if p.SharedFraction > 0.2 {
					t.Errorf("%s: NAS sharing %g too high", spec.Name, p.SharedFraction)
				}
			case HalfRate, Hybrid:
				if a.Multithreaded {
					t.Errorf("%s: SPEC instances marked multithreaded", spec.Name)
				}
				if p.SharedFraction != 0 {
					t.Errorf("%s: single-threaded app with shared fraction", spec.Name)
				}
			}
		}
	}
}

// TestHalfRateHybridPairings verifies the exact program-to-core layout
// of Table 1's multiprogrammed rows.
func TestHalfRateHybridPairings(t *testing.T) {
	hr, _ := ByName("mcf-4")
	if len(hr.Assignments) != 1 || len(hr.Assignments[0].Cores) != 4 {
		t.Fatalf("mcf-4 layout: %+v", hr.Assignments)
	}
	hy, _ := ByName("art-gzip")
	if len(hy.Assignments) != 2 {
		t.Fatalf("art-gzip has %d assignments", len(hy.Assignments))
	}
	if hy.Assignments[0].App.Name != "art" || hy.Assignments[1].App.Name != "gzip" {
		t.Fatalf("art-gzip apps: %s, %s",
			hy.Assignments[0].App.Name, hy.Assignments[1].App.Name)
	}
	for i, a := range hy.Assignments {
		if len(a.Cores) != 4 {
			t.Fatalf("assignment %d has %d cores", i, len(a.Cores))
		}
	}
}
