package workload

// This file defines the 22 workloads of Table 1. The quantitative knobs
// are calibrated to the qualitative descriptions in the paper:
//
//   - Transactional (§6.2): high sharing degree, substantial OS activity,
//     large code footprints, shared data is a small fraction of capacity
//     but a large fraction of accesses; D-NUCA-style locality helps and
//     replication is profitable.
//   - SPEC2000 half-rate (§6.3): half the cores idle; art/mcf have large
//     low-utility footprints (shared caches win by up to 40%); gcc/gzip
//     fit in the private portion (private caches win on latency).
//   - SPEC2000 hybrid (§6.3): two program groups interfering; isolation
//     matters (shared is worst).
//   - NAS (§6.4): >200 MB working sets, limited sharing, large private
//     reference counts; private-derived architectures win.

import "sync"

func app(name string, f func(*AppProfile)) AppProfile {
	p := AppProfile{
		Name:           name,
		MemFraction:    0.3,
		WriteFraction:  0.3,
		PrivateZipf:    0.9,
		SharedZipf:     0.9,
		CodeFootprint:  1.0,
		BranchFraction: 0.12,
		Recency:        0.85,
		CodeRecency:    0.95,
	}
	f(&p)
	return p
}

// --- Transactional applications (multithreaded over all 8 cores) ---

func apacheProfile() AppProfile {
	return app("apache", func(p *AppProfile) {
		p.MemFraction = 0.32
		p.PrivateFootprint = 0.06
		p.PrivateZipf = 0.9
		p.SharedFraction = 0.42
		p.SharedFootprint = 0.35
		p.SharedZipf = 1.0
		p.SharedWriteFraction = 0.18
		p.CodeFootprint = 6
		p.BranchFraction = 0.16
		p.OSFraction = 0.20
		p.Recency = 0.80
		p.CodeRecency = 0.85
	})
}

func jbbProfile() AppProfile {
	return app("jbb", func(p *AppProfile) {
		p.MemFraction = 0.30
		p.PrivateFootprint = 0.15
		p.PrivateZipf = 0.8
		p.SharedFraction = 0.30
		p.SharedFootprint = 0.45
		p.SharedZipf = 0.9
		p.SharedWriteFraction = 0.22
		p.CodeFootprint = 4
		p.BranchFraction = 0.14
		p.OSFraction = 0.08
		p.Recency = 0.78
		p.CodeRecency = 0.88
	})
}

func oltpProfile() AppProfile {
	return app("oltp", func(p *AppProfile) {
		p.MemFraction = 0.34
		p.PrivateFootprint = 0.08
		p.PrivateZipf = 0.85
		p.SharedFraction = 0.50
		p.SharedFootprint = 0.6
		p.SharedZipf = 0.95
		p.SharedWriteFraction = 0.25
		p.CodeFootprint = 8
		p.BranchFraction = 0.17
		p.OSFraction = 0.22
		p.Recency = 0.75
		p.CodeRecency = 0.82
	})
}

func zeusProfile() AppProfile {
	return app("zeus", func(p *AppProfile) {
		p.MemFraction = 0.31
		p.PrivateFootprint = 0.05
		p.PrivateZipf = 0.95
		p.SharedFraction = 0.45
		p.SharedFootprint = 0.3
		p.SharedZipf = 1.05
		p.SharedWriteFraction = 0.15
		p.CodeFootprint = 5
		p.BranchFraction = 0.15
		p.OSFraction = 0.18
		p.Recency = 0.82
		p.CodeRecency = 0.86
	})
}

// --- SPEC2000 applications (single-threaded instances) ---

func artProfile() AppProfile {
	return app("art", func(p *AppProfile) {
		// Large data set, low cache utility: mostly streaming over a
		// footprint comparable to the whole L2 per instance.
		p.MemFraction = 0.36
		p.WriteFraction = 0.15
		p.PrivateFootprint = 0.25
		p.PrivateZipf = 0.7
		p.StreamFraction = 0.30
		p.CodeFootprint = 0.4
		p.BranchFraction = 0.06
		p.Recency = 0.50
		p.CodeRecency = 0.97
	})
}

func gccProfile() AppProfile {
	return app("gcc", func(p *AppProfile) {
		// Working set small enough to fit the private portion.
		p.MemFraction = 0.28
		p.WriteFraction = 0.35
		p.PrivateFootprint = 0.10
		p.PrivateZipf = 1.0
		p.StreamFraction = 0.05
		p.CodeFootprint = 2.0
		p.BranchFraction = 0.15
		p.Recency = 0.80
		p.CodeRecency = 0.92
	})
}

func gzipProfile() AppProfile {
	return app("gzip", func(p *AppProfile) {
		p.MemFraction = 0.25
		p.WriteFraction = 0.25
		p.PrivateFootprint = 0.07
		p.PrivateZipf = 0.95
		p.StreamFraction = 0.10
		p.CodeFootprint = 0.3
		p.BranchFraction = 0.08
		p.Recency = 0.82
		p.CodeRecency = 0.97
	})
}

func mcfProfile() AppProfile {
	return app("mcf", func(p *AppProfile) {
		// Huge pointer-chasing footprint, very low utility.
		p.MemFraction = 0.40
		p.WriteFraction = 0.12
		p.PrivateFootprint = 0.6
		p.PrivateZipf = 0.55
		p.StreamFraction = 0.30
		p.CodeFootprint = 0.3
		p.BranchFraction = 0.10
		p.Recency = 0.40
		p.CodeRecency = 0.96
	})
}

func twolfProfile() AppProfile {
	return app("twolf", func(p *AppProfile) {
		p.MemFraction = 0.32
		p.WriteFraction = 0.20
		p.PrivateFootprint = 0.12
		p.PrivateZipf = 0.9
		p.StreamFraction = 0.25
		p.CodeFootprint = 0.5
		p.BranchFraction = 0.12
		p.Recency = 0.78
		p.CodeRecency = 0.94
	})
}

// --- NAS Parallel Benchmarks (multithreaded over 8 cores) ---

func nasApp(name string, f func(*AppProfile)) AppProfile {
	p := app(name, func(p *AppProfile) {
		// Family defaults: >200MB aggregate footprints, limited sharing,
		// streaming-heavy numeric loops, small code.
		p.MemFraction = 0.34
		p.WriteFraction = 0.25
		p.PrivateFootprint = 3.0
		p.PrivateZipf = 0.95
		p.StreamFraction = 0.5
		p.SharedFraction = 0.08
		p.SharedFootprint = 0.06
		p.SharedZipf = 1.1
		p.SharedWriteFraction = 0.10
		p.CodeFootprint = 0.4
		p.BranchFraction = 0.05
		p.Recency = 0.55
		p.CodeRecency = 0.98
	})
	f(&p)
	return p
}

func nasProfiles() map[string]AppProfile {
	return map[string]AppProfile{
		"BT": nasApp("BT", func(p *AppProfile) { p.PrivateFootprint = 4.0; p.StreamFraction = 0.55 }),
		"CG": nasApp("CG", func(p *AppProfile) {
			p.PrivateFootprint = 2.0
			p.PrivateZipf = 0.9
			p.SharedFraction = 0.15
			p.StreamFraction = 0.35
		}),
		"FT": nasApp("FT", func(p *AppProfile) { p.PrivateFootprint = 5.0; p.StreamFraction = 0.65 }),
		"IS": nasApp("IS", func(p *AppProfile) {
			p.PrivateFootprint = 3.0
			p.PrivateZipf = 0.6
			p.StreamFraction = 0.6
			p.SharedFraction = 0.12
		}),
		"LU": nasApp("LU", func(p *AppProfile) { p.PrivateFootprint = 1.5; p.PrivateZipf = 1.05; p.StreamFraction = 0.4 }),
		"MG": nasApp("MG", func(p *AppProfile) { p.PrivateFootprint = 4.5; p.StreamFraction = 0.6 }),
		"SP": nasApp("SP", func(p *AppProfile) { p.PrivateFootprint = 3.5; p.StreamFraction = 0.55 }),
		"UA": nasApp("UA", func(p *AppProfile) {
			p.PrivateFootprint = 2.5
			p.PrivateZipf = 0.95
			p.StreamFraction = 0.45
			p.SharedFraction = 0.10
		}),
	}
}

var specApps = map[string]func() AppProfile{
	"art": artProfile, "gcc": gccProfile, "gzip": gzipProfile,
	"mcf": mcfProfile, "twolf": twolfProfile,
}

func allCores() []int { return []int{0, 1, 2, 3, 4, 5, 6, 7} }

// catalogOnce memoizes the built suite plus a name index: the service
// validates workload names on every job submission (and again per run),
// and rebuilding 22 specs of profiles per lookup dominated that path.
var catalogOnce = sync.OnceValues(func() ([]Spec, map[string]int) {
	specs := buildCatalog()
	idx := make(map[string]int, len(specs))
	for i, s := range specs {
		idx[s.Name] = i
	}
	return specs, idx
})

// Catalog returns the full 22-workload suite of Table 1 in the paper's
// order: 4 transactional, 5 half-rate, 5 hybrid, 8 NAS. The slice is
// the caller's; the Spec values share memoized backing data (profile
// tables, core lists) and must be treated as read-only.
func Catalog() []Spec {
	specs, _ := catalogOnce()
	return append([]Spec(nil), specs...)
}

func buildCatalog() []Spec {
	var specs []Spec

	for _, tw := range []struct {
		name string
		prof AppProfile
	}{
		{"apache", apacheProfile()}, {"jbb", jbbProfile()},
		{"oltp", oltpProfile()}, {"zeus", zeusProfile()},
	} {
		specs = append(specs, Spec{
			Name: tw.name, Kind: Transactional,
			Assignments: []Assignment{{App: tw.prof, Cores: allCores(), Multithreaded: true}},
		})
	}

	// Half rate: four instances on cores 0-3; core 4 runs system
	// services (the idle profile), cores 5-7 idle.
	for _, name := range []string{"art", "gcc", "gzip", "mcf", "twolf"} {
		specs = append(specs, Spec{
			Name: name + "-4", Kind: HalfRate,
			Assignments: []Assignment{{App: specApps[name](), Cores: []int{0, 1, 2, 3}}},
		})
	}

	// Hybrid: 4 instances of the first program on cores 0-3, 4 of the
	// second on cores 4-7.
	for _, pair := range [][2]string{
		{"art", "gzip"}, {"gcc", "gzip"}, {"gcc", "twolf"},
		{"mcf", "gzip"}, {"mcf", "twolf"},
	} {
		specs = append(specs, Spec{
			Name: pair[0] + "-" + pair[1], Kind: Hybrid,
			Assignments: []Assignment{
				{App: specApps[pair[0]](), Cores: []int{0, 1, 2, 3}},
				{App: specApps[pair[1]](), Cores: []int{4, 5, 6, 7}},
			},
		})
	}

	nas := nasProfiles()
	for _, name := range []string{"BT", "CG", "FT", "IS", "LU", "MG", "SP", "UA"} {
		specs = append(specs, Spec{
			Name: name, Kind: NAS,
			Assignments: []Assignment{{App: nas[name], Cores: allCores(), Multithreaded: true}},
		})
	}
	return specs
}

// ByName returns the catalog workload with the given name.
func ByName(name string) (Spec, bool) {
	specs, idx := catalogOnce()
	i, ok := idx[name]
	if !ok {
		return Spec{}, false
	}
	return specs[i], true
}

// Names returns every catalog workload name in order.
func Names() []string {
	specs, _ := catalogOnce()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
