package workload

import "fmt"

// Phased workloads model applications whose cache behaviour changes over
// execution (paper §3.2: "the application characteristic could vary
// during the whole execution... the method adjusts itself as the
// application changes the way it is using the cache"). A phased spec
// alternates each core's stream between two application profiles every
// period instructions, keeping the address regions of both phases so the
// adaptive mechanisms face genuine re-learning, not just new addresses.

// PhasedSpec builds a workload that alternates between profiles a and b
// on all eight cores (multithreaded style: shared regions common to all
// cores within each phase). period is the phase length in instructions.
func PhasedSpec(name string, a, b AppProfile, period int) (Spec, error) {
	if period <= 0 {
		return Spec{}, fmt.Errorf("workload: phase period %d must be positive", period)
	}
	if a.Name == "" || b.Name == "" {
		return Spec{}, fmt.Errorf("workload: phased profiles must be named")
	}
	return Spec{
		Name: name,
		Kind: Transactional,
		Assignments: []Assignment{{
			App:           a,
			Cores:         allCores(),
			Multithreaded: true,
			phase:         &phaseSpec{other: b, period: period},
		}},
	}, nil
}

// phaseSpec is the phase-alternation attachment carried by an assignment.
type phaseSpec struct {
	other  AppProfile
	period int
}

// phaseState is the runtime attachment inside a Stream; see Stream.Next.
type phaseState struct {
	alt      *Stream
	period   int
	count    int
	inAlt    bool
	switches int
}
