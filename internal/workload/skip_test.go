package workload

import "testing"

// TestStreamSkipMatchesNext is the contract sampled execution rests on:
// skipping n instructions leaves a stream in exactly the state n Next
// calls would, on every core (including phased and idle streams).
func TestStreamSkipMatchesNext(t *testing.T) {
	for _, name := range []string{"apache", "gcc-4", "mcf-gzip"} {
		spec, ok := ByName(name)
		if !ok {
			t.Fatalf("unknown workload %s", name)
		}
		skipped := spec.Bind(4096, 128, 7)
		walked := spec.Bind(4096, 128, 7)
		const n = 10_000
		for c := 0; c < 8; c++ {
			skipped.Streams[c].Skip(n)
			for i := 0; i < n; i++ {
				walked.Streams[c].Next()
			}
		}
		for c := 0; c < 8; c++ {
			for i := 0; i < 1_000; i++ {
				a, b := skipped.Streams[c].Next(), walked.Streams[c].Next()
				if a != b {
					t.Fatalf("%s core %d: instruction %d after skip diverged: %+v vs %+v", name, c, i, a, b)
				}
			}
		}
	}
}
