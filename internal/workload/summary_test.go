package workload

import (
	"testing"

	"espnuca/internal/obs"
)

// TestSummarizeStreamMatchesDirectCount checks the obs-counter path
// against an independent count over the same deterministic stream.
func TestSummarizeStreamMatchesDirectCount(t *testing.T) {
	spec, ok := ByName("oltp")
	if !ok {
		t.Fatal("oltp workload missing")
	}
	const n = 20_000
	b1 := spec.Bind(1<<14, 128, 7)
	got := SummarizeStream(b1.Streams[0], n, nil)

	b2 := spec.Bind(1<<14, 128, 7)
	var want StreamSummary
	want.Instructions = n
	for i := 0; i < n; i++ {
		in := b2.Streams[0].Next()
		if in.HasFetch {
			want.Fetches++
		}
		if in.IsMem {
			want.MemOps++
			if in.Write {
				want.Writes++
			}
		}
	}
	if got.Instructions != want.Instructions || got.MemOps != want.MemOps ||
		got.Writes != want.Writes || got.Fetches != want.Fetches {
		t.Fatalf("summary %+v disagrees with direct count %+v", got, want)
	}
	if got.DataLines == 0 || got.CodeLines == 0 {
		t.Fatalf("footprints empty: %+v", got)
	}
}

// TestSummarizeStreamSharedRegistry checks the counters land in a
// caller-supplied registry and the summary still reports only this
// call's contribution.
func TestSummarizeStreamSharedRegistry(t *testing.T) {
	spec, _ := ByName("oltp")
	reg := obs.NewRegistry()
	reg.Counter("stream.instructions").Add(123) // pre-existing count

	b := spec.Bind(1<<14, 128, 1)
	got := SummarizeStream(b.Streams[0], 5_000, reg)
	if got.Instructions != 5_000 {
		t.Fatalf("summary counted %d instructions, want 5000 (prior counts must not leak)", got.Instructions)
	}
	if v := reg.Counter("stream.instructions").Value(); v != 5_123 {
		t.Fatalf("registry counter = %d, want 5123", v)
	}
	if reg.Counter("stream.mem_ops").Value() != got.MemOps {
		t.Fatal("registry mem_ops diverged from summary")
	}
}
