package workload

import (
	"espnuca/internal/mem"
	"espnuca/internal/sim"
	"espnuca/internal/stats"
)

// Instr is one retired instruction's memory behaviour.
type Instr struct {
	// Fetch is the instruction line to fetch; HasFetch is set only when
	// the PC crossed into a new cache line (sequentially or by branch),
	// so the L1I is probed once per line, not once per instruction.
	Fetch    mem.Line
	HasFetch bool
	// Data is the accessed data line when IsMem is set.
	Data  mem.Line
	IsMem bool
	Write bool
}

// Region bases keep the workload's address spaces disjoint. Lines are
// block indices (64 B granularity), so these bases are far apart.
const (
	osBase      mem.Line = 0x0100_0000
	codeBase    mem.Line = 0x0200_0000
	sharedBase  mem.Line = 0x0800_0000
	privateBase mem.Line = 0x4000_0000
	regionSpan  mem.Line = 0x0040_0000 // 4M lines = 256 MB per region
)

const instrsPerCodeLine = 16 // 4-byte instructions in a 64-byte line

// osLines is the shared OS region footprint in lines (kernel text/data,
// buffer caches); fixed, modest, and common to every core.
const osLines = 4096

// Stream generates the instruction sequence of one core. It is
// deterministic given its RNG seed.
type Stream struct {
	core int
	prof AppProfile
	rng  *sim.RNG

	privBase, shBase, cdBase mem.Line
	privLines, shLines       int
	codeLines                int

	privZipf, shZipf, codeZipf, osZipf *stats.Zipf

	// streaming scan cursor over the private footprint
	scan int
	// current code line and intra-line position
	codeLine mem.Line
	codePos  int

	// recency buffers model the short-stack-distance part of the
	// reference stream: most accesses re-touch something used moments
	// ago (which the L1 absorbs), while the tail spreads over the full
	// footprint (which exercises the L2 and memory).
	recentData []recEntry
	recentCode []mem.Line
	recDataPos int
	recCodePos int
	dataCap    int
	codeCap    int

	// phase, when non-nil, alternates this stream with an alternate
	// profile's stream every phase.period instructions (paper S3.2's
	// changing execution phases).
	phase *phaseState
}

// recEntry remembers a recently touched line and which region's write mix
// applies to it.
type recEntry struct {
	line   mem.Line
	shared bool
}

// Recency ring capacities scale with the L1 so that recency re-touches
// land in the L1 regardless of the simulated geometry (the ring models
// the short-stack-distance reuse the L1 exists to absorb).
func recentDataCap(l1Lines int) int { return clampInt(l1Lines/4, 16, 256) }
func recentCodeCap(l1Lines int) int { return clampInt(l1Lines/8, 8, 64) }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Generated streams cap their Zipf rank space to bound CDF memory; ranks
// map 1:1 to lines up to the cap, which covers every footprint used by
// the catalog on practical configurations.
const zipfCap = 1 << 18

// NewStream builds the stream for one core of a bound workload. l1Lines
// sizes the recency rings.
func newStream(core int, prof AppProfile, privBase, shBase, cdBase mem.Line,
	privLines, shLines, codeLines, l1Lines int, rng *sim.RNG) *Stream {

	clampCap := func(n int) int {
		if n < 1 {
			return 1
		}
		if n > zipfCap {
			return zipfCap
		}
		return n
	}
	s := &Stream{
		core: core, prof: prof, rng: rng,
		privBase: privBase, shBase: shBase, cdBase: cdBase,
		privLines: max(1, privLines), shLines: max(1, shLines), codeLines: max(1, codeLines),
		dataCap: recentDataCap(l1Lines),
		codeCap: recentCodeCap(l1Lines),
	}
	s.privZipf = stats.NewZipf(clampCap(privLines), prof.PrivateZipf)
	s.shZipf = stats.NewZipf(clampCap(shLines), prof.SharedZipf)
	s.codeZipf = stats.NewZipf(clampCap(codeLines), 1.0)
	s.osZipf = stats.NewZipf(osLines, 0.8)
	s.codeLine = cdBase
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Core returns the core index this stream drives.
func (s *Stream) Core() int { return s.core }

// Profile returns the application profile behind the stream.
func (s *Stream) Profile() AppProfile { return s.prof }

// Next produces the next instruction.
func (s *Stream) Next() Instr {
	if p := s.phase; p != nil {
		p.count++
		if p.count > p.period {
			p.count = 1
			p.inAlt = !p.inAlt
			p.switches++
		}
		if p.inAlt {
			return p.alt.Next()
		}
	}
	return s.next()
}

// Skip advances the stream by n instructions without handing them to a
// core: the generator state (RNG draws, recency rings, scan cursor,
// phase alternation) moves exactly as if Next had been called n times.
// Sampled runs use it to position a measurement window; because the CPU
// model calls Next exactly once per retired instruction, a skip count
// equals an instruction distance.
func (s *Stream) Skip(n uint64) {
	for ; n > 0; n-- {
		s.Next()
	}
}

// Phase reports the active profile name and completed phase switches.
func (s *Stream) Phase() (string, int) {
	if p := s.phase; p != nil {
		if p.inAlt {
			return p.alt.prof.Name, p.switches
		}
		return s.prof.Name, p.switches
	}
	return s.prof.Name, 0
}

// next generates from this stream's own profile.
func (s *Stream) next() Instr {
	var in Instr

	// Instruction fetch: cross into a new code line sequentially every
	// instrsPerCodeLine instructions, or on a taken branch.
	s.codePos++
	branch := s.rng.Bool(s.prof.BranchFraction)
	if branch || s.codePos >= instrsPerCodeLine {
		s.codePos = 0
		if branch {
			switch {
			case len(s.recentCode) > 0 && s.rng.Bool(s.prof.CodeRecency):
				// Loop back into recently executed code.
				s.codeLine = s.recentCode[s.rng.Intn(len(s.recentCode))]
			case s.prof.OSFraction > 0 && s.rng.Bool(s.prof.OSFraction):
				// OS code: common region, hot.
				s.codeLine = osBase + mem.Line(s.osZipf.Sample(s.rng))
				s.pushCode(s.codeLine)
			default:
				s.codeLine = s.cdBase + mem.Line(s.codeZipf.Sample(s.rng)%s.codeLines)
				s.pushCode(s.codeLine)
			}
		} else {
			s.codeLine++
			if s.codeLine >= s.cdBase+mem.Line(s.codeLines) {
				s.codeLine = s.cdBase
			}
			s.pushCode(s.codeLine)
		}
		in.Fetch = s.codeLine
		in.HasFetch = true
	}

	if !s.rng.Bool(s.prof.MemFraction) {
		return in
	}
	in.IsMem = true

	// Temporal-locality component: re-touch a recent line.
	if len(s.recentData) > 0 && s.rng.Bool(s.prof.Recency) {
		e := s.recentData[s.rng.Intn(len(s.recentData))]
		in.Data = e.line
		if e.shared {
			in.Write = s.rng.Bool(s.prof.SharedWriteFraction)
		} else {
			in.Write = s.rng.Bool(s.prof.WriteFraction)
		}
		return in
	}

	// OS data access: shared across every core.
	if s.prof.OSFraction > 0 && s.rng.Bool(s.prof.OSFraction) {
		in.Data = osBase + osLines + mem.Line(s.osZipf.Sample(s.rng))
		in.Write = s.rng.Bool(0.1)
		s.pushData(in.Data, true)
		return in
	}

	// Application shared region.
	if s.prof.SharedFraction > 0 && s.rng.Bool(s.prof.SharedFraction) {
		r := s.shZipf.Sample(s.rng)
		in.Data = s.shBase + mem.Line(r%s.shLines)
		in.Write = s.rng.Bool(s.prof.SharedWriteFraction)
		s.pushData(in.Data, true)
		return in
	}

	// Private region: streaming scan or Zipf reuse.
	if s.rng.Bool(s.prof.StreamFraction) {
		in.Data = s.privBase + mem.Line(s.scan)
		s.scan++
		if s.scan >= s.privLines {
			s.scan = 0
		}
	} else {
		r := s.privZipf.Sample(s.rng)
		in.Data = s.privBase + mem.Line(r%s.privLines)
	}
	in.Write = s.rng.Bool(s.prof.WriteFraction)
	s.pushData(in.Data, false)
	return in
}

// pushData records a freshly generated line in the recency ring.
func (s *Stream) pushData(l mem.Line, shared bool) {
	if len(s.recentData) < s.dataCap {
		s.recentData = append(s.recentData, recEntry{l, shared})
		return
	}
	s.recentData[s.recDataPos] = recEntry{l, shared}
	s.recDataPos = (s.recDataPos + 1) % s.dataCap
}

// pushCode records a fresh branch target.
func (s *Stream) pushCode(l mem.Line) {
	if len(s.recentCode) < s.codeCap {
		s.recentCode = append(s.recentCode, l)
		return
	}
	s.recentCode[s.recCodePos] = l
	s.recCodePos = (s.recCodePos + 1) % s.codeCap
}

// Bound is a workload instantiated against a concrete cache geometry:
// one stream per core plus the measured-core mask.
type Bound struct {
	Spec    Spec
	Streams [8]*Stream
	// Active marks cores whose instructions count toward performance.
	Active uint8
}

// Bind instantiates the workload for a system whose L2 holds l2Lines
// cache lines and whose L1I holds l1iLines, using seed for perturbation.
// Cores without an assignment run the idle/system-services profile.
func (s Spec) Bind(l2Lines, l1iLines int, seed uint64) *Bound {
	master := sim.NewRNG(seed)
	b := &Bound{Spec: s, Active: s.ActiveCores()}

	scale := func(frac float64, base int) int {
		n := int(frac * float64(base))
		if n < 1 {
			n = 1
		}
		return n
	}

	assigned := [8]bool{}
	appIdx := 0
	for _, a := range s.Assignments {
		appIdx++
		shLines := scale(a.App.SharedFootprint, l2Lines)
		cdLines := scale(a.App.CodeFootprint, l1iLines)
		privLines := scale(a.App.PrivateFootprint, l2Lines)
		// Multithreaded: one shared+code region for the whole app and a
		// per-thread slice of the private footprint. Instances: each core
		// gets wholly disjoint regions.
		for i, c := range a.Cores {
			assigned[c] = true
			var shB, cdB, pvB mem.Line
			pl := privLines
			if a.Multithreaded {
				shB = sharedBase + mem.Line(appIdx)*regionSpan
				cdB = codeBase + mem.Line(appIdx)*regionSpan
				pvB = privateBase + mem.Line(c)*regionSpan
				pl = max(1, privLines/len(a.Cores))
			} else {
				inst := appIdx*8 + i
				shB = sharedBase + mem.Line(inst)*regionSpan
				cdB = codeBase + mem.Line(inst)*regionSpan
				pvB = privateBase + mem.Line(c)*regionSpan
			}
			b.Streams[c] = newStream(c, a.App, pvB, shB, cdB, pl, shLines, cdLines, l1iLines, master.Split())
			if a.phase != nil {
				// The alternate phase gets its own shared/code regions
				// (a different working set) but reuses the core's private
				// region base offset by half a span, so phase switches
				// change the footprint, not just the addresses.
				alt := a.phase.other
				altSh := scale(alt.SharedFootprint, l2Lines)
				altCd := scale(alt.CodeFootprint, l1iLines)
				altPl := max(1, scale(alt.PrivateFootprint, l2Lines)/len(a.Cores))
				altStream := newStream(c, alt,
					pvB+regionSpan/2,
					shB+regionSpan/2,
					cdB+regionSpan/2,
					altPl, altSh, altCd, l1iLines, master.Split())
				b.Streams[c].phase = &phaseState{alt: altStream, period: a.phase.period}
			}
		}
	}
	idle := idleProfile()
	for c := 0; c < 8; c++ {
		if assigned[c] {
			continue
		}
		pvB := privateBase + mem.Line(c)*regionSpan
		cdB := codeBase // idle/system code is OS-adjacent and common
		b.Streams[c] = newStream(c, idle, pvB, osBase+osLines, cdB,
			scale(idle.PrivateFootprint, l2Lines), osLines,
			scale(idle.CodeFootprint, l1iLines), l1iLines, master.Split())
	}
	return b
}
