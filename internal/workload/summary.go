package workload

import (
	"espnuca/internal/mem"
	"espnuca/internal/obs"
)

// StreamSummary describes the memory behaviour of a stream prefix: the
// access mix and the touched footprints. The workload models were
// calibrated against the paper's descriptions using these numbers.
type StreamSummary struct {
	Instructions uint64
	MemOps       uint64
	Writes       uint64
	Fetches      uint64
	// DataLines and CodeLines are the distinct 64 B lines touched.
	DataLines int
	CodeLines int
}

// SummarizeStream drives n instructions of st and accumulates the access
// mix through reg's counters (stream.instructions, stream.mem_ops,
// stream.writes, stream.fetches), so any interval sink attached to reg
// sees exactly the counts the returned summary reports — one counting
// path, no drift. A nil reg gets a private registry.
func SummarizeStream(st *Stream, n int, reg *obs.Registry) StreamSummary {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var (
		instrs  = reg.Counter("stream.instructions")
		memOps  = reg.Counter("stream.mem_ops")
		writes  = reg.Counter("stream.writes")
		fetches = reg.Counter("stream.fetches")
	)
	// The summary reports this call's contribution even when the caller
	// reuses a registry with prior counts.
	base := StreamSummary{
		Instructions: instrs.Value(),
		MemOps:       memOps.Value(),
		Writes:       writes.Value(),
		Fetches:      fetches.Value(),
	}
	data := make(map[mem.Line]struct{})
	code := make(map[mem.Line]struct{})
	for i := 0; i < n; i++ {
		in := st.Next()
		instrs.Inc()
		if in.HasFetch {
			fetches.Inc()
			code[in.Fetch] = struct{}{}
		}
		if in.IsMem {
			memOps.Inc()
			if in.Write {
				writes.Inc()
			}
			data[in.Data] = struct{}{}
		}
	}
	return StreamSummary{
		Instructions: instrs.Value() - base.Instructions,
		MemOps:       memOps.Value() - base.MemOps,
		Writes:       writes.Value() - base.Writes,
		Fetches:      fetches.Value() - base.Fetches,
		DataLines:    len(data),
		CodeLines:    len(code),
	}
}
