// Package workload synthesizes the memory behaviour of the paper's 22
// workloads (Table 1). Real traces of Apache/SPECjbb/OLTP/Zeus, SPEC2000
// and NAS runs on Solaris are not reproducible here, so each application
// is modelled by a profile capturing the properties the paper's analysis
// attributes to it: footprint sizes, locality (Zipf exponents and
// streaming fractions), sharing degree, write mix, OS activity, and which
// cores run it. The profiles are expressed relative to the simulated L2
// capacity so the same workloads remain meaningful on scaled-down
// configurations.
package workload

// Kind labels the four workload families of Table 1.
type Kind int

const (
	// Transactional is the Wisconsin Commercial Workload family.
	Transactional Kind = iota
	// HalfRate is SPEC2000 running on four of eight cores.
	HalfRate
	// Hybrid is two SPEC2000 programs on four cores each.
	Hybrid
	// NAS is the NAS Parallel Benchmarks (OpenMP) family.
	NAS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transactional:
		return "transactional"
	case HalfRate:
		return "halfrate"
	case Hybrid:
		return "hybrid"
	case NAS:
		return "nas"
	}
	return "unknown"
}

// AppProfile describes one application's per-core memory behaviour.
// Footprints are fractions of the simulated L2 capacity (in lines), so a
// value of 4.0 means a working set four times the L2.
type AppProfile struct {
	Name string

	// MemFraction is the fraction of instructions that are data accesses.
	MemFraction float64
	// WriteFraction is the store fraction among private data accesses.
	WriteFraction float64

	// PrivateFootprint is the per-core private data footprint (xL2).
	PrivateFootprint float64
	// PrivateZipf is the locality exponent of non-streaming private
	// accesses (higher = hotter).
	PrivateZipf float64
	// StreamFraction is the fraction of private accesses that walk the
	// footprint sequentially (scans defeat caching for large footprints).
	StreamFraction float64

	// SharedFraction is the fraction of data accesses that touch the
	// application's shared region (0 for single-threaded programs).
	SharedFraction float64
	// SharedFootprint is the shared-region size (xL2).
	SharedFootprint float64
	// SharedZipf is the shared-region locality exponent.
	SharedZipf float64
	// SharedWriteFraction is the store fraction among shared accesses
	// (drives invalidation/migratory traffic).
	SharedWriteFraction float64

	// CodeFootprint is the instruction footprint (xL1I capacity);
	// transactional workloads have large OS/server code footprints.
	CodeFootprint float64
	// BranchFraction is the per-instruction probability of a taken
	// branch to a non-sequential code line.
	BranchFraction float64

	// OSFraction is the fraction of data accesses touching the shared OS
	// region (buffer caches, kernel structures), which all cores share.
	OSFraction float64

	// Recency is the fraction of data accesses that re-touch a recently
	// used line (temporal locality / short stack distances, the part of
	// the reference stream the L1 absorbs). Cache-friendly codes sit
	// around 0.85; low-utility streaming codes (art, mcf, NAS kernels)
	// much lower.
	Recency float64
	// CodeRecency is the corresponding probability that a taken branch
	// targets recently executed code (loops); near 1 for numeric kernels,
	// lower for sprawling server/OS code.
	CodeRecency float64
}

// Assignment places one application on a set of cores. Multithreaded
// applications share one shared region and one code region across their
// cores; multiprogrammed instances get disjoint regions per core.
type Assignment struct {
	App   AppProfile
	Cores []int
	// Multithreaded marks the cores as threads of one process (shared
	// heap and code); otherwise each core runs an independent instance.
	Multithreaded bool

	// phase, when non-nil, alternates the cores' streams with a second
	// profile (see PhasedSpec).
	phase *phaseSpec
}

// Spec is a complete workload: a name, its family, and the assignment of
// applications to the 8 cores. Cores not covered by any assignment run
// the light "system services / idle" profile.
type Spec struct {
	Name        string
	Kind        Kind
	Assignments []Assignment
}

// ActiveCores returns the bitmask of cores that run measured application
// work (idle/service cores excluded).
func (s Spec) ActiveCores() uint8 {
	var m uint8
	for _, a := range s.Assignments {
		for _, c := range a.Cores {
			m |= 1 << uint(c)
		}
	}
	return m
}

// idleProfile models a core running only OS housekeeping.
func idleProfile() AppProfile {
	return AppProfile{
		Name:             "idle",
		MemFraction:      0.03,
		WriteFraction:    0.2,
		PrivateFootprint: 0.002,
		PrivateZipf:      1.0,
		CodeFootprint:    0.5,
		BranchFraction:   0.05,
		OSFraction:       0.05,
		Recency:          0.95,
		CodeRecency:      0.98,
	}
}
