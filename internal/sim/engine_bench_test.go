package sim

import "testing"

// BenchmarkEngineSchedule measures the schedule+dispatch round trip — the
// simulator's hottest path. The hand-rolled heap must not allocate per
// event (container/heap's `any` boxing cost 2 allocs/op here).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Cycle(i), func() {})
		e.Step()
	}
}

// BenchmarkEngineScheduleDeep measures the same round trip against a
// standing queue, so the heap sift paths are exercised at realistic depth.
func BenchmarkEngineScheduleDeep(b *testing.B) {
	e := NewEngine()
	for i := 0; i < 1024; i++ {
		e.At(Cycle(1<<40)+Cycle(i), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Cycle(i), func() {})
		e.Step()
	}
}

// BenchmarkEngineReset measures run-to-run engine reuse.
func BenchmarkEngineReset(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.At(Cycle(j), func() {})
		}
		e.Run(0)
		e.Reset()
	}
}
