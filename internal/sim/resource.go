package sim

// Resource models a pipelined hardware unit (a bank port, a mesh link, a
// DRAM channel) with a bounded number of in-flight operations: one new
// operation may begin per "initiation interval" cycles.
//
// The simulator computes whole transactions synchronously, so claims for
// a resource do not necessarily arrive in global time order: a core can
// book the data-return link at t+300 before another core books the same
// link at t+50. A classic next-free-time scalar would charge the second
// claim a 250-cycle phantom wait. Resource therefore keeps a short
// window of booked busy intervals and places each claim into the earliest
// real gap at or after its arrival time, which is order-independent up to
// the pruning horizon.
type Resource struct {
	interval  Cycle
	intervals []ival // sorted by start, non-overlapping
	maxSeen   Cycle

	// Busy accumulates cycles of occupancy, for utilization statistics.
	Busy Cycle
	// Waits accumulates cycles requests spent queued.
	Waits Cycle
	// Claims counts operations serviced.
	Claims uint64
}

type ival struct{ start, end Cycle }

// pruneWindow is how far behind the latest seen arrival bookings are
// kept. Cross-core claim skew is bounded by one transaction (a few
// thousand cycles), so this window keeps booking exact in practice while
// bounding memory.
const pruneWindow = 1 << 14

// NewResource returns a resource that accepts a new operation every
// interval cycles (interval 0 is treated as 1).
func NewResource(interval Cycle) *Resource {
	if interval == 0 {
		interval = 1
	}
	return &Resource{interval: interval}
}

// Claim reserves the resource for a request arriving at cycle at and
// returns the cycle service starts.
func (r *Resource) Claim(at Cycle) Cycle {
	return r.ClaimFor(at, r.interval)
}

// ClaimFor reserves the resource for an operation occupying it for occ
// cycles (used for variable-length transfers) and returns its start.
func (r *Resource) ClaimFor(at, occ Cycle) Cycle {
	if occ == 0 {
		occ = 1
	}
	if at > r.maxSeen {
		r.maxSeen = at
	}
	r.prune()

	// Bookings are sorted by start and non-overlapping, hence sorted by
	// end as well: everything ending at or before the arrival cannot
	// interfere with this claim. Binary-search past that prefix instead
	// of scanning it — a busy resource keeps thousands of live bookings
	// inside the pruning window, and claims overwhelmingly land near the
	// end of it.
	n := len(r.intervals)
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.intervals[mid].end <= at {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := at
	insert := n
	for i := lo; i < n; i++ {
		iv := r.intervals[i]
		if start+occ <= iv.start {
			insert = i
			break
		}
		// iv.end > start holds for every booking past the search point,
		// and ends are non-decreasing, so the claim slides to each
		// successive end until a gap fits it.
		start = iv.end
		insert = i + 1
	}
	r.intervals = append(r.intervals, ival{})
	copy(r.intervals[insert+1:], r.intervals[insert:])
	r.intervals[insert] = ival{start: start, end: start + occ}

	r.Waits += start - at
	r.Busy += occ
	r.Claims++
	return start
}

// prune drops bookings that ended before the pruning horizon.
func (r *Resource) prune() {
	if r.maxSeen < pruneWindow {
		return
	}
	horizon := r.maxSeen - pruneWindow
	keep := 0
	for ; keep < len(r.intervals); keep++ {
		if r.intervals[keep].end >= horizon {
			break
		}
	}
	if keep > 0 {
		r.intervals = r.intervals[keep:]
	}
}

// NextFree reports the cycle at which the resource has no further
// bookings.
func (r *Resource) NextFree() Cycle {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// Utilization returns Busy / now, in [0,1], or 0 before cycle 1.
func (r *Resource) Utilization(now Cycle) float64 {
	if now == 0 {
		return 0
	}
	u := float64(r.Busy) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}
