package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestEngineStoppedAccessor covers the Stop/Stopped contract: Stop inside
// an event must halt RunUntil before cond is re-evaluated, and the
// stopped state must remain observable after return (distinguishing "an
// event stopped me" from "the queue drained" or "cond held").
func TestEngineStoppedAccessor(t *testing.T) {
	e := NewEngine()
	condCalls := 0
	fired := 0
	e.At(5, func() { fired++; e.Stop() })
	e.At(6, func() { fired++ }) // must not run: Stop wins first

	now := e.RunUntil(0, func() bool { condCalls++; return false })
	if now != 5 || fired != 1 {
		t.Fatalf("RunUntil stopped at cycle %d after %d events, want cycle 5 after 1", now, fired)
	}
	if !e.Stopped() {
		t.Fatalf("Stopped() = false after Stop halted RunUntil")
	}
	// RunUntil checks stopped before cond on every iteration: cond ran
	// once before the event at cycle 5 executed, and must not have run
	// again after Stop.
	if condCalls != 1 {
		t.Fatalf("cond evaluated %d times, want exactly 1 (before the stopping event only)", condCalls)
	}

	// A fresh Run resets the state and resumes with the remaining event.
	now = e.Run(0)
	if now != 6 || fired != 2 {
		t.Fatalf("resumed Run reached cycle %d after %d total events, want 6 after 2", now, fired)
	}
	if e.Stopped() {
		t.Fatalf("Stopped() = true after a Run that drained the queue")
	}
}

func TestEngineStoppedFalseOnDrainAndCond(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.Run(0)
	if e.Stopped() {
		t.Fatalf("Stopped() = true after queue drain")
	}
	e.At(2, func() {})
	e.RunUntil(0, func() bool { return true })
	if e.Stopped() {
		t.Fatalf("Stopped() = true after cond-terminated RunUntil")
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatalf("NextAt reported an event on an empty engine")
	}
	e.At(7, func() {})
	e.At(3, func() {})
	if at, ok := e.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt = (%d, %v), want (3, true)", at, ok)
	}
}

func TestShardedSendValidation(t *testing.T) {
	se := NewSharded(2, 10)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("lookahead violation", func() { se.Shard(0).Send(1, 5, func() {}) })
	mustPanic("unknown shard", func() { se.Shard(0).Send(7, 100, func() {}) })
	// Same-shard send is a local schedule and bypasses the lookahead.
	se.Shard(0).Send(0, 0, func() {})
	if se.Shard(0).Engine().Pending() != 1 {
		t.Fatalf("same-shard send did not schedule locally")
	}
}

// fuzzNode is one logical event in a random DAG: firing it may spawn
// local children and cross-shard children. Behaviour is a pure function
// of the node id, so dispatch effects are identical however the engine
// interleaves independent events.
type fuzzNode struct {
	id    int
	shard int
	at    Cycle
}

// buildFuzzDAG generates a deterministic random event DAG: roots are
// scheduled directly, every fired node may schedule children locally
// (any delay >= 0) or cross-shard (delay >= lookahead). It returns the
// root set plus a spawn function shared by the serial reference and the
// sharded runs.
type fuzzDAG struct {
	k         int
	lookahead Cycle
	roots     []fuzzNode
	children  map[int][]fuzzNode // parent id -> children (delays encoded in at as offsets)
}

func buildFuzzDAG(rng *rand.Rand, k int, lookahead Cycle, uniqueCycles bool) *fuzzDAG {
	d := &fuzzDAG{k: k, lookahead: lookahead, children: map[int][]fuzzNode{}}
	nextID := 0
	usedAt := map[[2]int]bool{} // (shard, cycle) -> taken, for uniqueCycles mode
	place := func(shard int, at Cycle) Cycle {
		if !uniqueCycles {
			return at
		}
		for usedAt[[2]int{shard, int(at)}] {
			at++
		}
		usedAt[[2]int{shard, int(at)}] = true
		return at
	}
	nRoots := 2 + rng.Intn(2*k)
	for i := 0; i < nRoots; i++ {
		shard := rng.Intn(k)
		at := place(shard, Cycle(rng.Intn(50)))
		d.roots = append(d.roots, fuzzNode{id: nextID, shard: shard, at: at})
		nextID++
	}
	// Breadth-first expansion to a bounded node count.
	frontier := append([]fuzzNode(nil), d.roots...)
	for len(frontier) > 0 && nextID < 400 {
		n := frontier[0]
		frontier = frontier[1:]
		kids := rng.Intn(4)
		for c := 0; c < kids && nextID < 400; c++ {
			child := fuzzNode{id: nextID}
			if rng.Intn(3) == 0 && k > 1 {
				// Cross-shard: delay >= lookahead.
				child.shard = rng.Intn(k)
				for child.shard == n.shard {
					child.shard = rng.Intn(k)
				}
				child.at = place(child.shard, n.at+lookahead+Cycle(rng.Intn(40)))
			} else {
				child.shard = n.shard
				child.at = place(child.shard, n.at+Cycle(rng.Intn(30)))
			}
			nextID++
			d.children[n.id] = append(d.children[n.id], child)
			frontier = append(frontier, child)
		}
	}
	return d
}

type dispatchRec struct {
	ID int
	At Cycle
}

// runSerialReference executes the DAG on a single sim.Engine and returns
// the per-shard dispatch logs.
func (d *fuzzDAG) runSerialReference() [][]dispatchRec {
	eng := NewEngine()
	logs := make([][]dispatchRec, d.k)
	var fire func(n fuzzNode) Event
	fire = func(n fuzzNode) Event {
		return func() {
			logs[n.shard] = append(logs[n.shard], dispatchRec{ID: n.id, At: eng.Now()})
			for _, c := range d.children[n.id] {
				eng.At(c.at, fire(c))
			}
		}
	}
	for _, r := range d.roots {
		eng.At(r.at, fire(r))
	}
	eng.Run(0)
	return logs
}

// runSharded executes the DAG on a ShardedEngine and returns the
// per-shard dispatch logs plus the engine for stat inspection.
func (d *fuzzDAG) runSharded(parallelism int) ([][]dispatchRec, *ShardedEngine) {
	se := NewSharded(d.k, d.lookahead)
	logs := make([][]dispatchRec, d.k)
	var fire func(n fuzzNode) Event
	fire = func(n fuzzNode) Event {
		return func() {
			sh := se.Shard(n.shard)
			logs[n.shard] = append(logs[n.shard], dispatchRec{ID: n.id, At: sh.Engine().Now()})
			for _, c := range d.children[n.id] {
				sh.Send(c.shard, c.at, fire(c))
			}
		}
	}
	for _, r := range d.roots {
		se.Shard(r.shard).Engine().At(r.at, fire(r))
	}
	se.Run(0, nil, parallelism)
	return logs, se
}

// TestShardedFuzzVsSerialEngine is the differential fuzz of the tentpole:
// random event DAGs with random shard assignments, cross-shard delays
// >= lookahead, unique (shard, cycle) pairs so the serial engine's global
// (cycle, seq) order projects onto a unique per-shard order — the sharded
// engine must reproduce that per-shard dispatch order exactly.
func TestShardedFuzzVsSerialEngine(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		lookahead := Cycle(1 + rng.Intn(16))
		d := buildFuzzDAG(rng, k, lookahead, true)

		want := d.runSerialReference()
		got, se := d.runSharded(1)
		for s := 0; s < k; s++ {
			if !reflect.DeepEqual(want[s], got[s]) {
				t.Fatalf("seed %d: shard %d dispatch order diverged\nserial:  %v\nsharded: %v",
					seed, s, want[s], got[s])
			}
		}
		if se.Windows == 0 {
			t.Fatalf("seed %d: sharded run executed no windows", seed)
		}
	}
}

// TestShardedWorkerCountDeterminism: with ties allowed (same shard, same
// cycle), the per-shard dispatch order must still be bit-identical across
// worker counts — the determinism contract the machine runner relies on.
func TestShardedWorkerCountDeterminism(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		lookahead := Cycle(1 + rng.Intn(16))
		d := buildFuzzDAG(rng, k, lookahead, false)

		base, baseEng := d.runSharded(1)
		for _, par := range []int{2, 4, 8} {
			got, gotEng := d.runSharded(par)
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("seed %d: dispatch order differs between parallelism 1 and %d", seed, par)
			}
			if baseEng.Windows != gotEng.Windows || baseEng.CrossMessages != gotEng.CrossMessages ||
				baseEng.WindowCycles != gotEng.WindowCycles {
				t.Fatalf("seed %d parallelism %d: window stats diverged: (%d,%d,%d) vs (%d,%d,%d)",
					seed, par, baseEng.Windows, baseEng.CrossMessages, baseEng.WindowCycles,
					gotEng.Windows, gotEng.CrossMessages, gotEng.WindowCycles)
			}
		}
	}
}

// TestShardedBarrierAndLimit exercises the barrier hook contract (runs
// once per window with all shards quiescent, may schedule new work) and
// the limit semantics (events at exactly limit run; later ones do not;
// Now reports the limit after truncation).
func TestShardedBarrierAndLimit(t *testing.T) {
	se := NewSharded(2, 8)
	var fired []string
	se.Shard(0).Engine().At(3, func() { fired = append(fired, "a@3") })
	se.Shard(1).Engine().At(10, func() { fired = append(fired, "b@10") })
	se.Shard(1).Engine().At(21, func() { fired = append(fired, "c@21") })

	barriers := 0
	refilled := false
	se.SetBarrier(func() {
		barriers++
		if !refilled {
			refilled = true
			// The hook may schedule new work on any shard.
			se.Shard(0).Engine().At(se.Shard(0).Engine().Now()+1, func() { fired = append(fired, "hook") })
		}
	})
	now := se.Run(20, nil, 1)
	if now != 20 {
		t.Fatalf("truncated Run returned %d, want limit 20", now)
	}
	// First window: H = 3+8 = 11 covers both a@3 and b@10; the hook's
	// event lands in the following window.
	want := []string{"a@3", "b@10", "hook"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if barriers == 0 {
		t.Fatalf("barrier hook never ran")
	}

	// Resuming without a limit drains the rest.
	se.Run(0, nil, 1)
	if fmt.Sprint(fired) != fmt.Sprint(append(want, "c@21")) {
		t.Fatalf("after resume fired %v", fired)
	}
}

// TestShardedCondStopsAtBarrier: cond is only consulted at barriers, and
// a true cond stops the run before the next window.
func TestShardedCondStopsAtBarrier(t *testing.T) {
	se := NewSharded(2, 4)
	count := 0
	var ev Event
	ev = func() {
		count++
		se.Shard(0).Engine().Schedule(1, ev)
	}
	se.Shard(0).Engine().At(0, ev)
	se.Run(0, func() bool { return count >= 10 }, 1)
	if count < 10 {
		t.Fatalf("cond stopped early: %d events", count)
	}
	// One window can overshoot cond by at most the window width.
	if count > 10+int(se.Lookahead()) {
		t.Fatalf("cond checked too rarely: %d events for threshold 10, lookahead %d", count, se.Lookahead())
	}
}
