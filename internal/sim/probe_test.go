package sim

import "testing"

// recordingProbe captures OnDispatch calls for assertions.
type recordingProbe struct {
	calls  int
	last   Cycle
	depths []int
}

func (p *recordingProbe) OnDispatch(now Cycle, depth int, wallNS int64) {
	p.calls++
	p.last = now
	p.depths = append(p.depths, depth)
	if wallNS < 0 {
		panic("negative wall time")
	}
}

func TestEngineProbeObservesDispatches(t *testing.T) {
	e := NewEngine()
	p := &recordingProbe{}
	e.SetProbe(p)
	for i := 0; i < 4; i++ {
		e.At(Cycle(i*10), func() {})
	}
	e.Run(0)
	if p.calls != 4 {
		t.Fatalf("probe saw %d dispatches, want 4", p.calls)
	}
	if p.last != 30 {
		t.Fatalf("last probed cycle = %d, want 30", p.last)
	}
	// Queue depth after each pop: 3, 2, 1, 0.
	for i, d := range p.depths {
		if want := 3 - i; d != want {
			t.Fatalf("depth[%d] = %d, want %d", i, d, want)
		}
	}
}

func TestEngineResetDetachesProbe(t *testing.T) {
	e := NewEngine()
	p := &recordingProbe{}
	e.SetProbe(p)
	e.At(0, func() {})
	e.Run(0)
	e.Reset()
	e.At(0, func() {})
	e.Run(0)
	if p.calls != 1 {
		t.Fatalf("probe saw %d dispatches after Reset, want 1", p.calls)
	}
}
