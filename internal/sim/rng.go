package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). The simulator cannot depend on math/rand global state:
// every component that needs randomness owns an RNG seeded from the run
// configuration, so results are reproducible bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator for the given seed. Seed zero is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Split derives an independent generator; useful for giving each core its
// own stream from one master seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xA5A5A5A55A5A5A5A)
}
