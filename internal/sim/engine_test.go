package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersByCycle(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 10) })
	e.At(5, func() { got = append(got, 5) })
	e.At(7, func() { got = append(got, 7) })
	e.Run(0)
	want := []int{5, 7, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
}

func TestEngineFIFOWithinCycle(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(3, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events reordered: got[%d] = %d", i, got[i])
		}
	}
}

func TestEngineScheduleRelative(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(100, func() {
		e.Schedule(25, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 125 {
		t.Fatalf("relative schedule fired at %d, want 125", at)
	}
}

func TestEngineZeroDelayRunsSameCycle(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(4, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "c") })
	})
	e.At(4, func() { order = append(order, "b") })
	e.Run(0)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	e.At(1, nil)
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.Run(15)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now() = %d, want 15 (clamped to limit)", e.Now())
	}
	e.Run(0)
	if fired != 2 {
		t.Fatalf("fired after resume = %d, want 2", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Stop", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Cycle(i), func() { count++ })
	}
	e.RunUntil(0, func() bool { return count >= 4 })
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestEngineDispatchedCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 17; i++ {
		e.At(Cycle(i), func() {})
	}
	e.Run(0)
	if e.Dispatched != 17 {
		t.Fatalf("Dispatched = %d, want 17", e.Dispatched)
	}
}

// Property: for any set of scheduling offsets, the engine dispatches events
// in non-decreasing cycle order and the clock never goes backwards.
func TestEngineMonotonicClockProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		last := Cycle(0)
		ok := true
		for _, d := range delays {
			d := Cycle(d)
			e.At(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return ok && e.Dispatched == uint64(len(delays))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 10; i++ {
		e.At(Cycle(i+1), func() { fired++ })
	}
	e.Run(0)
	e.At(100, func() { fired++ }) // left pending across Reset
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Dispatched != 0 {
		t.Fatalf("after Reset: now=%d pending=%d dispatched=%d", e.Now(), e.Pending(), e.Dispatched)
	}
	// A reset engine behaves exactly like a fresh one.
	var got []int
	e.At(10, func() { got = append(got, 10) })
	e.At(5, func() { got = append(got, 5) })
	e.Run(0)
	if len(got) != 2 || got[0] != 5 || got[1] != 10 {
		t.Fatalf("post-Reset order = %v, want [5 10]", got)
	}
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (pending event must be dropped)", fired)
	}
}

// Property: the hand-rolled heap dispatches any mix of deferred events in
// exactly (cycle, sequence) order, matching a stable sort of the schedule.
func TestEngineHeapOrderProperty(t *testing.T) {
	prop := func(delays []uint8) bool {
		e := NewEngine()
		type stamp struct {
			at  Cycle
			seq int
		}
		var got []stamp
		for i, d := range delays {
			at, i := Cycle(d), i
			e.At(at, func() { got = append(got, stamp{at, i}) })
		}
		e.Run(0)
		if len(got) != len(delays) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceQueueing(t *testing.T) {
	r := NewResource(4)
	if got := r.Claim(10); got != 10 {
		t.Fatalf("first claim starts at %d, want 10", got)
	}
	if got := r.Claim(10); got != 14 {
		t.Fatalf("second claim starts at %d, want 14", got)
	}
	if got := r.Claim(30); got != 30 {
		t.Fatalf("idle claim starts at %d, want 30", got)
	}
	if r.Waits != 4 {
		t.Fatalf("Waits = %d, want 4", r.Waits)
	}
	if r.Claims != 3 {
		t.Fatalf("Claims = %d, want 3", r.Claims)
	}
}

func TestResourceClaimFor(t *testing.T) {
	r := NewResource(1)
	if got := r.ClaimFor(0, 5); got != 0 {
		t.Fatalf("ClaimFor start = %d, want 0", got)
	}
	if got := r.Claim(2); got != 5 {
		t.Fatalf("claim after 5-cycle occupancy starts at %d, want 5", got)
	}
}

// Property: a resource never starts two operations within its initiation
// interval, regardless of arrival pattern.
func TestResourceSpacingProperty(t *testing.T) {
	prop := func(arrivals []uint16, interval uint8) bool {
		iv := Cycle(interval%7 + 1)
		r := NewResource(iv)
		at := Cycle(0)
		var prev Cycle
		first := true
		for _, a := range arrivals {
			at += Cycle(a % 5)
			start := r.Claim(at)
			if start < at {
				return false
			}
			if !first && start < prev+iv {
				return false
			}
			prev, first = start, false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %g out of range", f)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %g, want ~0.3", got)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide %d/100 times", same)
	}
}

func TestEnginePendingAndStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue reported work")
	}
	e.At(5, func() {})
	e.At(9, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	if !e.Step() || e.Now() != 5 || e.Pending() != 1 {
		t.Fatalf("after Step: now=%d pending=%d", e.Now(), e.Pending())
	}
}

func TestResourceNextFreeAndUtilization(t *testing.T) {
	r := NewResource(4)
	if r.NextFree() != 0 {
		t.Fatalf("idle NextFree = %d", r.NextFree())
	}
	r.Claim(10)
	if r.NextFree() != 14 {
		t.Fatalf("NextFree = %d, want 14", r.NextFree())
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %g", u)
	}
	if u := r.Utilization(8); u > 1 || u <= 0 {
		t.Fatalf("Utilization(8) = %g", u)
	}
}

func TestResourceBookingFillsGaps(t *testing.T) {
	r := NewResource(1)
	// Claim far in the future, then a claim in the past books the gap —
	// the order-tolerance the synchronous transaction model needs.
	far := r.ClaimFor(1000, 5)
	near := r.ClaimFor(10, 5)
	if far != 1000 {
		t.Fatalf("future claim at %d", far)
	}
	if near != 10 {
		t.Fatalf("past claim displaced to %d, want 10 (gap booking)", near)
	}
	// A claim overlapping the future booking queues behind it.
	after := r.ClaimFor(998, 5)
	if after < 1005 {
		t.Fatalf("overlapping claim at %d, want >= 1005", after)
	}
}
