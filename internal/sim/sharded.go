// Sharded execution: a conservative (bounded-lag) parallel discrete-event
// engine. The simulated machine is partitioned into K shards, each owning
// its own Engine-local event heap; shards advance in lock-step windows
// bounded by a shared horizon
//
//	H = min(earliest pending event across shards) + lookahead
//
// and may run their windows on separate goroutines. Within a window a
// shard only touches shard-local state, so windows are embarrassingly
// parallel; everything that crosses a shard boundary travels as a
// cross-shard message enqueued during the window and delivered at the
// barrier.
//
// Determinism. Cross-shard messages are merged in (cycle, srcShard,
// srcSeq) order before being pushed onto their destination heaps, so the
// destination's (at, seq) dispatch order — and therefore the entire
// simulation — is a pure function of the event graph and the shard count.
// The worker count only decides which OS thread runs a window; results are
// bit-identical whether windows execute serially or on K goroutines.
//
// Deadlock freedom. Every window makes progress: the horizon always
// covers the globally earliest pending event (lookahead >= 1), so at
// least one shard dispatches at least one event per window, and the
// barrier hook runs after every window. The loop exits only when no shard
// has pending events after a barrier, i.e. when the hook itself stopped
// producing work.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// xmsg is one cross-shard message: an event bound for another shard's
// heap, stamped with its source identity so barrier delivery is globally
// ordered.
type xmsg struct {
	at     Cycle
	src    int
	dst    int
	srcSeq uint64
	call   Event
}

// Shard is one partition of a sharded simulation: a private event heap
// plus outgoing cross-shard message queues. All Shard methods except the
// stats accessors must only be called from the goroutine currently
// executing the shard's window (or from the barrier hook, which runs with
// every shard quiescent).
type Shard struct {
	id    int
	se    *ShardedEngine
	eng   *Engine
	out   []xmsg
	sends uint64

	// lastExecNS is the host time this shard's most recent window took;
	// execNS and waitNS accumulate execution and barrier-wait time over
	// the run (waitNS is meaningful only under parallel execution, where
	// a fast shard idles until the window's slowest shard finishes).
	lastExecNS int64
	execNS     int64
	waitNS     int64
}

// ID returns the shard's index.
func (s *Shard) ID() int { return s.id }

// Engine returns the shard's local event engine. Components owned by the
// shard schedule their events here exactly as they would on a serial
// engine.
func (s *Shard) Engine() *Engine { return s.eng }

// Send schedules ev on shard dst at absolute cycle at. Cross-shard sends
// must respect the lookahead: at must be at least the sender's current
// cycle plus the engine's lookahead, otherwise the event could land
// inside the very window being executed, where the destination may
// already have advanced past it. A same-shard send degenerates to a local
// At.
func (s *Shard) Send(dst int, at Cycle, ev Event) {
	if dst < 0 || dst >= len(s.se.shards) {
		panic(fmt.Sprintf("sim: Send to unknown shard %d (have %d)", dst, len(s.se.shards)))
	}
	if dst == s.id {
		s.eng.At(at, ev)
		return
	}
	if at < s.eng.Now()+s.se.lookahead {
		panic(fmt.Sprintf("sim: cross-shard send at cycle %d violates lookahead %d (sender at %d)",
			at, s.se.lookahead, s.eng.Now()))
	}
	s.sends++
	s.out = append(s.out, xmsg{at: at, src: s.id, dst: dst, srcSeq: s.sends, call: ev})
}

// ExecNS returns the accumulated host nanoseconds this shard spent
// executing its windows.
func (s *Shard) ExecNS() int64 { return s.execNS }

// BarrierWaitNS returns the accumulated host nanoseconds this shard spent
// idle at window barriers waiting for slower shards (zero under serial
// execution).
func (s *Shard) BarrierWaitNS() int64 { return s.waitNS }

// ShardedEngine coordinates K shard-local engines through bounded-lag
// windows. The zero value is not ready; call NewSharded.
type ShardedEngine struct {
	shards    []*Shard
	lookahead Cycle
	barrier   func()
	now       Cycle
	batch     []xmsg

	// Windows counts executed bounded-lag windows; WindowCycles sums
	// their widths (mean width = WindowCycles/Windows); CrossMessages
	// counts barrier-delivered cross-shard messages. All three are
	// deterministic for a fixed event graph and shard count.
	Windows       uint64
	WindowCycles  Cycle
	CrossMessages uint64
}

// NewSharded builds a sharded engine with k shards and the given
// lookahead (the minimum cross-shard latency, and therefore the maximum
// window width). Lookahead must be at least 1 cycle or no window could
// make progress.
func NewSharded(k int, lookahead Cycle) *ShardedEngine {
	if k < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs at least 1 shard, got %d", k))
	}
	if lookahead < 1 {
		panic(fmt.Sprintf("sim: sharded engine needs lookahead >= 1, got %d", lookahead))
	}
	se := &ShardedEngine{lookahead: lookahead}
	for i := 0; i < k; i++ {
		se.shards = append(se.shards, &Shard{id: i, se: se, eng: NewEngine()})
	}
	return se
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard returns shard i.
func (se *ShardedEngine) Shard(i int) *Shard { return se.shards[i] }

// Lookahead returns the engine's lookahead (maximum window width).
func (se *ShardedEngine) Lookahead() Cycle { return se.lookahead }

// Now returns the latest cycle any shard has reached (or the limit, after
// a truncated Run). Between barriers the value is stale; read it from the
// barrier hook or after Run returns.
func (se *ShardedEngine) Now() Cycle { return se.now }

// SetBarrier installs fn to run at every window barrier, after the
// window's cross-shard messages have been delivered. Every shard is
// quiescent while fn runs, so it may touch any shard's state — this is
// where serialized global work (and stop-condition bookkeeping) belongs.
func (se *ShardedEngine) SetBarrier(fn func()) { se.barrier = fn }

// minNext scans the shard heaps for the globally earliest pending event.
func (se *ShardedEngine) minNext() (Cycle, bool) {
	var min Cycle
	any := false
	for _, s := range se.shards {
		if at, ok := s.eng.NextAt(); ok && (!any || at < min) {
			min, any = at, true
		}
	}
	return min, any
}

// Run executes bounded-lag windows until cond reports true at a barrier,
// no work remains, or the next event would pass limit (limit zero means
// no limit; as with Engine.Run, events at exactly limit still execute).
// parallelism <= 1 runs windows serially on the calling goroutine; any
// larger value runs each window's shards on their own goroutines. Results
// are identical either way. It returns the cycle at which it stopped.
func (se *ShardedEngine) Run(limit Cycle, cond func() bool, parallelism int) Cycle {
	for {
		if cond != nil && cond() {
			return se.now
		}
		minNext, any := se.minNext()
		if !any {
			return se.now
		}
		if limit != 0 && minNext > limit {
			se.now = limit
			return se.now
		}
		h := minNext + se.lookahead
		if limit != 0 && h > limit+1 {
			h = limit + 1
		}
		se.runWindow(h, parallelism)
		se.Windows++
		se.WindowCycles += h - minNext
		for _, s := range se.shards {
			if now := s.eng.Now(); now > se.now {
				se.now = now
			}
		}
		se.deliver()
		if se.barrier != nil {
			se.barrier()
		}
	}
}

// runWindow advances every shard to the horizon h.
func (se *ShardedEngine) runWindow(h Cycle, parallelism int) {
	if parallelism <= 1 || len(se.shards) == 1 {
		for _, s := range se.shards {
			t0 := time.Now()
			s.eng.RunBefore(h)
			d := time.Since(t0).Nanoseconds()
			s.lastExecNS = d
			s.execNS += d
		}
		return
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, s := range se.shards {
		s.lastExecNS = 0
		next, ok := s.eng.NextAt()
		if !ok || next >= h {
			continue
		}
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			t0 := time.Now()
			s.eng.RunBefore(h)
			s.lastExecNS = time.Since(t0).Nanoseconds()
		}(s)
	}
	wg.Wait()
	wall := time.Since(start).Nanoseconds()
	for _, s := range se.shards {
		s.execNS += s.lastExecNS
		if w := wall - s.lastExecNS; w > 0 {
			s.waitNS += w
		}
	}
}

// deliver merges every shard's outgoing messages in (cycle, srcShard,
// srcSeq) order and pushes them onto their destination heaps. The merge
// order fixes the destination-side (at, seq) tie-break, making dispatch
// order independent of which goroutine produced which message first.
func (se *ShardedEngine) deliver() {
	batch := se.batch[:0]
	for _, s := range se.shards {
		batch = append(batch, s.out...)
		for i := range s.out {
			s.out[i] = xmsg{}
		}
		s.out = s.out[:0]
	}
	if len(batch) == 0 {
		se.batch = batch
		return
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].at != batch[j].at {
			return batch[i].at < batch[j].at
		}
		if batch[i].src != batch[j].src {
			return batch[i].src < batch[j].src
		}
		return batch[i].srcSeq < batch[j].srcSeq
	})
	for _, m := range batch {
		se.shards[m.dst].eng.At(m.at, m.call)
	}
	se.CrossMessages += uint64(len(batch))
	for i := range batch {
		batch[i] = xmsg{}
	}
	se.batch = batch[:0]
}
