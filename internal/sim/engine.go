// Package sim provides a deterministic discrete-event simulation engine.
//
// All timing in the simulator is expressed in core clock cycles. Components
// schedule callbacks at absolute cycles; the engine dispatches them in
// (cycle, sequence) order so that runs are fully deterministic: two events
// scheduled for the same cycle fire in the order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is an absolute point in simulated time, measured in core clock
// cycles since the beginning of the run.
type Cycle uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func()

type entry struct {
	at   Cycle
	seq  uint64
	call Event
}

type eventHeap []entry

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(entry)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = entry{}
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is not ready for
// use; call NewEngine.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   eventHeap
	stopped bool

	// Dispatched counts events executed so far; useful for run budgets
	// and regression tests.
	Dispatched uint64
}

// NewEngine returns an empty engine positioned at cycle zero.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Now returns the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs ev after delay cycles. A zero delay runs ev later in the
// current cycle (after all previously scheduled work for this cycle).
func (e *Engine) Schedule(delay Cycle, ev Event) {
	e.At(e.now+delay, ev)
}

// At runs ev at the absolute cycle at. Scheduling in the past panics: it is
// always a modelling bug, and silently clamping would hide it.
func (e *Engine) At(at Cycle, ev Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	if ev == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	heap.Push(&e.queue, entry{at: at, seq: e.seq, call: ev})
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run call return after the in-flight event
// finishes. Further Run calls may resume the simulation.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its cycle. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(entry)
	e.now = ev.at
	e.Dispatched++
	ev.call()
	return true
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass limit (limit zero means no limit). It returns the cycle at
// which it stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if limit != 0 && e.queue[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// RunUntil executes events while cond returns false, subject to the same
// termination rules as Run.
func (e *Engine) RunUntil(limit Cycle, cond func() bool) Cycle {
	e.stopped = false
	for !e.stopped && !cond() {
		if len(e.queue) == 0 {
			break
		}
		if limit != 0 && e.queue[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}
