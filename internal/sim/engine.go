// Package sim provides a deterministic discrete-event simulation engine.
//
// All timing in the simulator is expressed in core clock cycles. Components
// schedule callbacks at absolute cycles; the engine dispatches them in
// (cycle, sequence) order so that runs are fully deterministic: two events
// scheduled for the same cycle fire in the order they were scheduled.
package sim

import (
	"fmt"
	"time"
)

// Cycle is an absolute point in simulated time, measured in core clock
// cycles since the beginning of the run.
type Cycle uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func()

type entry struct {
	at   Cycle
	seq  uint64
	call Event
}

// eventHeap is a binary min-heap ordered by (at, seq). The heap operations
// are hand-rolled rather than delegated to container/heap: the interface
// indirection there boxes every pushed and popped entry into an `any`,
// which costs two heap allocations per scheduled event on the simulator's
// hottest path. Pops never shrink the backing array, so its capacity is
// reused for the lifetime of the engine (and across runs via Reset).
type eventHeap []entry

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

func (h *eventHeap) push(e entry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// popMin removes and returns the minimum entry, keeping the backing
// array's capacity and zeroing the vacated slot so the closure it held
// becomes collectable.
func (h *eventHeap) popMin() entry {
	q := *h
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = entry{}
	q = q[:n]
	if n > 1 {
		q.down(0)
	}
	*h = q
	return min
}

// Probe observes engine internals when attached via SetProbe: the
// observability layer uses it to sample event-dispatch latency and queue
// depth. When no probe is attached the only per-event cost is one nil
// check in Step.
type Probe interface {
	// OnDispatch runs after each event executes: now is the event's
	// cycle, depth the queue depth after the pop, and wallNS the
	// host-side execution time of the callback in nanoseconds.
	OnDispatch(now Cycle, depth int, wallNS int64)
}

// Engine is a discrete-event scheduler. The zero value is not ready for
// use; call NewEngine.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   eventHeap
	stopped bool
	// probed mirrors probe != nil: a one-byte flag on the same cache
	// line as the other hot fields, so the disabled-path check in Step
	// never touches the interface words.
	probed bool
	probe  Probe

	// Dispatched counts events executed so far; useful for run budgets
	// and regression tests.
	Dispatched uint64
}

// NewEngine returns an empty engine positioned at cycle zero.
func NewEngine() *Engine {
	return &Engine{queue: make(eventHeap, 0, 1024)}
}

// Reset returns the engine to its initial state — cycle zero, empty
// queue, zeroed counters — while keeping the queue's backing array, so a
// caller can amortize the allocation across many runs. Pending events are
// dropped and their closures released.
func (e *Engine) Reset() {
	for i := range e.queue {
		e.queue[i] = entry{}
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.probe = nil
	e.probed = false
	e.Dispatched = 0
}

// SetProbe attaches (or, with nil, detaches) an engine probe. Reset also
// detaches it, so pooled engines never leak a probe across runs.
func (e *Engine) SetProbe(p Probe) {
	e.probe = p
	e.probed = p != nil
}

// Now returns the current simulation cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs ev after delay cycles. A zero delay runs ev later in the
// current cycle (after all previously scheduled work for this cycle).
func (e *Engine) Schedule(delay Cycle, ev Event) {
	e.At(e.now+delay, ev)
}

// At runs ev at the absolute cycle at. Scheduling in the past panics: it is
// always a modelling bug, and silently clamping would hide it.
func (e *Engine) At(at Cycle, ev Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now (%d)", at, e.now))
	}
	if ev == nil {
		panic("sim: scheduling nil event")
	}
	e.seq++
	e.queue.push(entry{at: at, seq: e.seq, call: ev})
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run call return after the in-flight event
// finishes. Further Run calls may resume the simulation.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the engine is in the stopped state: true from a
// Stop call until the next Run/RunUntil/RunBefore resets it. A Run that
// returned because of Stop leaves it observable here, so callers can tell
// "an event stopped me" apart from "the queue drained".
func (e *Engine) Stopped() bool { return e.stopped }

// NextAt reports the cycle of the earliest pending event, if any. The
// sharded engine's window planner uses it to compute each bounded-lag
// horizon without popping.
func (e *Engine) NextAt() (Cycle, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step executes the single earliest pending event, advancing the clock to
// its cycle. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.popMin()
	e.now = ev.at
	e.Dispatched++
	if e.probed {
		e.dispatchProbed(ev.call)
		return true
	}
	ev.call()
	return true
}

// dispatchProbed runs one event under wall-clock measurement for the
// attached probe. Kept out of Step so the probe-free dispatch path stays
// small enough to inline.
func (e *Engine) dispatchProbed(call Event) {
	start := time.Now()
	call()
	e.probe.OnDispatch(e.now, len(e.queue), time.Since(start).Nanoseconds())
}

// Run executes events until the queue drains, Stop is called, or the clock
// would pass limit (limit zero means no limit). It returns the cycle at
// which it stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 {
			break
		}
		if limit != 0 && e.queue[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}

// RunBefore executes pending events strictly before cycle h, honouring
// Stop. Unlike Run it never advances the clock past the last executed
// event: the engine's notion of "now" stays at that event's cycle, so a
// later At for any cycle >= h is always legal. This is the per-window
// dispatch primitive of the sharded engine.
func (e *Engine) RunBefore(h Cycle) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at < h {
		e.Step()
	}
}

// RunUntil executes events while cond returns false, subject to the same
// termination rules as Run.
func (e *Engine) RunUntil(limit Cycle, cond func() bool) Cycle {
	e.stopped = false
	for !e.stopped && !cond() {
		if len(e.queue) == 0 {
			break
		}
		if limit != 0 && e.queue[0].at > limit {
			e.now = limit
			break
		}
		e.Step()
	}
	return e.now
}
