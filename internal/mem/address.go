// Package mem defines physical addresses, cache-block geometry and the
// off-chip DRAM model shared by every cache architecture in the simulator.
package mem

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// Line is a cache-block-aligned address (the block's base address shifted
// right by the block-offset bits). All cache and coherence structures key
// on Lines, never raw byte addresses, so aliasing bugs between the private
// and shared address interpretations cannot occur at this layer.
type Line uint64

// Geometry describes the block geometry of the memory system.
type Geometry struct {
	BlockBytes int // bytes per cache block (paper: 64)
	OffsetBits uint
}

// NewGeometry returns the geometry for the given block size, which must be
// a power of two.
func NewGeometry(blockBytes int) (Geometry, error) {
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		return Geometry{}, fmt.Errorf("mem: block size %d is not a positive power of two", blockBytes)
	}
	bits := uint(0)
	for 1<<bits != blockBytes {
		bits++
	}
	return Geometry{BlockBytes: blockBytes, OffsetBits: bits}, nil
}

// LineOf returns the cache line containing addr.
func (g Geometry) LineOf(a Addr) Line { return Line(uint64(a) >> g.OffsetBits) }

// AddrOf returns the base byte address of line l.
func (g Geometry) AddrOf(l Line) Addr { return Addr(uint64(l) << g.OffsetBits) }

// Log2 returns floor(log2(v)) and whether v is an exact power of two.
// It is used throughout the cache packages to derive field widths from
// bank/set counts.
func Log2(v int) (bits uint, exact bool) {
	if v <= 0 {
		return 0, false
	}
	for 1<<(bits+1) <= v {
		bits++
	}
	return bits, 1<<bits == v
}
