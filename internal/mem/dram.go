package mem

import (
	"sync/atomic"

	"espnuca/internal/sim"
)

// DRAMConfig parameterizes the off-chip memory model.
type DRAMConfig struct {
	// Latency is the fixed access latency of an idle channel, in cycles.
	// The paper does not list it explicitly; GEMS-era studies on the same
	// infrastructure use 250-350 core cycles for DRAM + controller.
	Latency sim.Cycle
	// Interval is the initiation interval of a channel: a new request can
	// begin every Interval cycles (bandwidth model).
	Interval sim.Cycle
	// Channels is the number of independent memory controllers.
	Channels int
}

// DefaultDRAMConfig mirrors the evaluation setup: two memory controllers
// on the mesh edges.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Latency: 300, Interval: 16, Channels: 2}
}

// DRAM models the off-chip memory controllers. Addresses interleave across
// channels at block granularity; each channel is a contended resource with
// a fixed service latency.
type DRAM struct {
	cfg      DRAMConfig
	channels []*sim.Resource

	// functional short-circuits Read/Write: requests complete instantly
	// without claiming a channel or counting (sampled-run fast-forward).
	functional bool

	// concurrent gates Reads/Writes onto atomic adds during the sharded
	// engine's parallel barrier phases (order-free integer sums, so the
	// totals stay deterministic). Channel Resources stay plain: footprint
	// grouping guarantees per-channel exclusivity.
	concurrent bool

	// OnChannel, when non-nil, observes every channel use. Test
	// instrumentation for the footprint oracle; nil in production runs.
	OnChannel func(ch int)

	// Reads and Writes count accesses, for the off-chip traffic metrics
	// of Figure 7.
	Reads  uint64
	Writes uint64
}

// SetConcurrent switches the access counters between plain and atomic
// increments (see the field comment).
func (d *DRAM) SetConcurrent(on bool) { d.concurrent = on }

func (d *DRAM) count(p *uint64) {
	if d.concurrent {
		atomic.AddUint64(p, 1)
	} else {
		*p++
	}
}

// SetFunctional switches the memory model between timed and functional
// mode. Functional accesses are instant, unaccounted, and claim no
// channel bandwidth.
func (d *DRAM) SetFunctional(on bool) { d.functional = on }

// NewDRAM builds the memory model; invalid fields fall back to defaults.
func NewDRAM(cfg DRAMConfig) *DRAM {
	def := DefaultDRAMConfig()
	if cfg.Latency == 0 {
		cfg.Latency = def.Latency
	}
	if cfg.Interval == 0 {
		cfg.Interval = def.Interval
	}
	if cfg.Channels <= 0 {
		cfg.Channels = def.Channels
	}
	d := &DRAM{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		d.channels = append(d.channels, sim.NewResource(cfg.Interval))
	}
	return d
}

// Config returns the memory configuration.
func (d *DRAM) Config() DRAMConfig { return d.cfg }

// Channels returns the number of memory controllers.
func (d *DRAM) Channels() int { return d.cfg.Channels }

// Utilization returns the mean channel occupancy over the first now
// cycles, in [0,1].
func (d *DRAM) Utilization(now sim.Cycle) float64 {
	if now == 0 || len(d.channels) == 0 {
		return 0
	}
	var busy sim.Cycle
	for _, ch := range d.channels {
		busy += ch.Busy
	}
	u := float64(busy) / (float64(now) * float64(len(d.channels)))
	if u > 1 {
		u = 1
	}
	return u
}

// ChannelOf maps a line to its controller (block interleaving).
func (d *DRAM) ChannelOf(l Line) int { return int(uint64(l) % uint64(len(d.channels))) }

// Read schedules a read of line l arriving at the controller at cycle at
// and returns the cycle its data is available at the controller.
func (d *DRAM) Read(at sim.Cycle, l Line) sim.Cycle {
	if d.functional {
		return at
	}
	d.count(&d.Reads)
	c := d.ChannelOf(l)
	if d.OnChannel != nil {
		d.OnChannel(c)
	}
	ch := d.channels[c]
	return ch.Claim(at) + d.cfg.Latency
}

// Write schedules a write-back of line l arriving at cycle at and returns
// the cycle the controller has accepted it. Write-backs are posted: the
// requester does not wait for the array update.
func (d *DRAM) Write(at sim.Cycle, l Line) sim.Cycle {
	if d.functional {
		return at
	}
	d.count(&d.Writes)
	c := d.ChannelOf(l)
	if d.OnChannel != nil {
		d.OnChannel(c)
	}
	ch := d.channels[c]
	return ch.Claim(at)
}

// Accesses returns total off-chip accesses.
func (d *DRAM) Accesses() uint64 { return d.Reads + d.Writes }
