package mem

import (
	"testing"
	"testing/quick"

	"espnuca/internal/sim"
)

func TestNewGeometry(t *testing.T) {
	g, err := NewGeometry(64)
	if err != nil {
		t.Fatal(err)
	}
	if g.OffsetBits != 6 {
		t.Fatalf("OffsetBits = %d, want 6", g.OffsetBits)
	}
	if _, err := NewGeometry(0); err == nil {
		t.Error("NewGeometry(0) did not fail")
	}
	if _, err := NewGeometry(48); err == nil {
		t.Error("NewGeometry(48) did not fail")
	}
	if _, err := NewGeometry(-64); err == nil {
		t.Error("NewGeometry(-64) did not fail")
	}
}

func TestLineRoundTrip(t *testing.T) {
	g, _ := NewGeometry(64)
	cases := []Addr{0, 1, 63, 64, 65, 4096, 0xFFFF_FFFF_FFFF_FFC0}
	for _, a := range cases {
		l := g.LineOf(a)
		base := g.AddrOf(l)
		if base > a || a-base >= 64 {
			t.Errorf("addr %#x maps to line base %#x", a, base)
		}
	}
}

// Property: all addresses within one block map to the same line, and
// adjacent blocks map to adjacent lines.
func TestLineOfProperty(t *testing.T) {
	g, _ := NewGeometry(64)
	prop := func(block uint64, off uint8) bool {
		block &= (1 << 57) - 1
		a := Addr(block<<6 | uint64(off%64))
		return g.LineOf(a) == Line(block) && g.LineOf(g.AddrOf(Line(block)+1)) == Line(block)+1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2(t *testing.T) {
	cases := []struct {
		v     int
		bits  uint
		exact bool
	}{
		{1, 0, true}, {2, 1, true}, {3, 1, false}, {4, 2, true},
		{32, 5, true}, {256, 8, true}, {257, 8, false},
	}
	for _, c := range cases {
		bits, exact := Log2(c.v)
		if bits != c.bits || exact != c.exact {
			t.Errorf("Log2(%d) = (%d,%v), want (%d,%v)", c.v, bits, exact, c.bits, c.exact)
		}
	}
	if _, exact := Log2(0); exact {
		t.Error("Log2(0) reported exact")
	}
}

func TestDRAMLatency(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, Interval: 10, Channels: 1})
	if got := d.Read(0, 0); got != 100 {
		t.Fatalf("idle read done at %d, want 100", got)
	}
	// Second read to the same channel queues behind the first.
	if got := d.Read(0, 0); got != 110 {
		t.Fatalf("queued read done at %d, want 110", got)
	}
}

func TestDRAMChannelInterleaving(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, Interval: 10, Channels: 2})
	if d.ChannelOf(0) == d.ChannelOf(1) {
		t.Fatal("adjacent lines mapped to same channel")
	}
	// Different channels do not contend.
	if got := d.Read(0, 0); got != 100 {
		t.Fatalf("ch0 read done at %d, want 100", got)
	}
	if got := d.Read(0, 1); got != 100 {
		t.Fatalf("ch1 read done at %d, want 100", got)
	}
}

func TestDRAMPostedWrites(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 100, Interval: 10, Channels: 1})
	if got := d.Write(5, 0); got != 5 {
		t.Fatalf("posted write accepted at %d, want 5", got)
	}
	if d.Writes != 1 || d.Reads != 0 || d.Accesses() != 1 {
		t.Fatalf("counters = %d reads %d writes", d.Reads, d.Writes)
	}
}

func TestDRAMDefaults(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	def := DefaultDRAMConfig()
	if d.Channels() != def.Channels {
		t.Fatalf("Channels() = %d, want %d", d.Channels(), def.Channels)
	}
	if got := d.Read(0, 0); got != def.Latency {
		t.Fatalf("default read latency = %d, want %d", got, def.Latency)
	}
}

// Property: DRAM read completion is always >= arrival + latency, and
// per-channel completions are spaced by at least the interval.
func TestDRAMBandwidthProperty(t *testing.T) {
	prop := func(gaps []uint8) bool {
		d := NewDRAM(DRAMConfig{Latency: 50, Interval: 8, Channels: 1})
		at := sim.Cycle(0)
		var prev sim.Cycle
		first := true
		for _, gp := range gaps {
			at += sim.Cycle(gp % 4)
			done := d.Read(at, 0)
			if done < at+50 {
				return false
			}
			if !first && done < prev+8 {
				return false
			}
			prev, first = done, false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
