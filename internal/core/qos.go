package core

import "fmt"

// QoS is the Quality-of-Service policy the paper sketches as future work
// (§5.2): because the accepted first-class degradation d is what decides
// how much of a bank helping blocks may occupy, making d per-priority
// turns the protected-LRU controller into a capacity-QoS knob. A bank
// belonging to a high-priority core uses a small d (its own blocks are
// protected aggressively: helping blocks from other cores are admitted
// only if they cost almost nothing), while a low-priority core's banks
// use a large d and donate capacity liberally.
type QoS struct {
	// ClassOf maps a core to its priority class.
	ClassOf [8]PriorityClass
	// DFor maps a priority class to its degradation shift d.
	DFor map[PriorityClass]uint
}

// PriorityClass is a QoS service level.
type PriorityClass uint8

// The three service levels of the default policy. Standard is the zero
// value so an unconfigured core gets the paper's d=3.
const (
	// Standard class: the paper's d=3 (12.5% slack).
	Standard PriorityClass = iota
	// Latency class: d=4 (6.25% slack) — bank capacity strongly
	// protected for the owner.
	Latency
	// Bulk class: d=2 (25% slack) — the bank donates readily.
	Bulk
)

// String implements fmt.Stringer.
func (p PriorityClass) String() string {
	switch p {
	case Latency:
		return "latency"
	case Standard:
		return "standard"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("PriorityClass(%d)", uint8(p))
}

// DefaultQoS gives every core the Standard class.
func DefaultQoS() QoS {
	return QoS{DFor: map[PriorityClass]uint{Latency: 4, Standard: 3, Bulk: 2}}
}

// Validate reports configuration errors.
func (q QoS) Validate() error {
	for c, cls := range q.ClassOf {
		d, ok := q.DFor[cls]
		if !ok {
			return fmt.Errorf("core: core %d has class %v with no d mapping", c, cls)
		}
		if d == 0 || d > 8 {
			return fmt.Errorf("core: class %v maps to d=%d outside 1..8", cls, d)
		}
	}
	return nil
}

// DForCore returns the degradation shift to use for banks owned by core c.
func (q QoS) DForCore(c int) uint {
	if c < 0 || c >= len(q.ClassOf) {
		return 3
	}
	if d, ok := q.DFor[q.ClassOf[c]]; ok {
		return d
	}
	return 3
}

// Apply returns a SamplerConfig for a bank owned by core c: the base
// configuration with the class's d substituted.
func (q QoS) Apply(base SamplerConfig, core int) SamplerConfig {
	base.D = q.DForCore(core)
	return base
}
