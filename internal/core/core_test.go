package core

import (
	"testing"
	"testing/quick"

	"espnuca/internal/cache"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

func mustMapping(t *testing.T) Mapping {
	t.Helper()
	m, err := NewMapping(32, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMappingValidation(t *testing.T) {
	if _, err := NewMapping(31, 8, 256); err == nil {
		t.Error("non-power-of-two banks accepted")
	}
	if _, err := NewMapping(32, 7, 256); err == nil {
		t.Error("non-power-of-two cores accepted")
	}
	if _, err := NewMapping(32, 8, 255); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := NewMapping(4, 8, 256); err == nil {
		t.Error("fewer banks than cores accepted")
	}
}

func TestMappingGeometry(t *testing.T) {
	m := mustMapping(t)
	if m.Banks() != 32 || m.Cores() != 8 || m.BanksPerCore() != 4 || m.SetsPerBank() != 256 {
		t.Fatalf("geometry: %d banks, %d cores, %d per core, %d sets",
			m.Banks(), m.Cores(), m.BanksPerCore(), m.SetsPerBank())
	}
	if m.ExtraTagBits() != 3 {
		t.Fatalf("ExtraTagBits = %d, want p=3", m.ExtraTagBits())
	}
}

func TestSharedMappingUsesLowBits(t *testing.T) {
	m := mustMapping(t)
	// Paper Fig 1b: low n bits above the block offset select the bank.
	bank, set := m.Shared(0)
	if bank != 0 || set != 0 {
		t.Fatalf("Shared(0) = %d,%d", bank, set)
	}
	bank, _ = m.Shared(31)
	if bank != 31 {
		t.Fatalf("Shared(31) bank = %d, want 31", bank)
	}
	bank, set = m.Shared(32)
	if bank != 0 || set != 1 {
		t.Fatalf("Shared(32) = %d,%d, want 0,1", bank, set)
	}
}

func TestPrivateMappingStaysInGroup(t *testing.T) {
	m := mustMapping(t)
	for c := 0; c < 8; c++ {
		lo, hi := m.PrivateBanks(c)
		if hi-lo != 4 || lo != c*4 {
			t.Fatalf("PrivateBanks(%d) = [%d,%d)", c, lo, hi)
		}
		for l := mem.Line(0); l < 1000; l += 7 {
			bank, set := m.Private(l, c)
			if bank < lo || bank >= hi {
				t.Fatalf("Private(%d, core %d) bank %d outside [%d,%d)", l, c, bank, lo, hi)
			}
			if set < 0 || set >= 256 {
				t.Fatalf("set %d out of range", set)
			}
			if m.CoreOfBank(bank) != c {
				t.Fatalf("CoreOfBank(%d) = %d, want %d", bank, m.CoreOfBank(bank), c)
			}
		}
	}
}

// Property: both mappings are deterministic functions of (line, core) and
// two distinct lines mapping to the same (bank,set) under the shared view
// can still be distinguished by tag — i.e. the mapping partitions lines:
// same line always maps to exactly one shared slot and one private slot
// per core.
func TestMappingDeterminismProperty(t *testing.T) {
	m := mustMapping(t)
	prop := func(l uint64, c uint8) bool {
		line := mem.Line(l)
		core := int(c % 8)
		b1, s1 := m.Shared(line)
		b2, s2 := m.Shared(line)
		p1, q1 := m.Private(line, core)
		p2, q2 := m.Private(line, core)
		return b1 == b2 && s1 == s2 && p1 == p2 && q1 == q2 &&
			b1 >= 0 && b1 < 32 && p1 >= 0 && p1 < 32
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: consecutive lines spread across all banks in the shared view
// (block interleaving) and across the core's 4 banks in the private view.
func TestMappingInterleavingProperty(t *testing.T) {
	m := mustMapping(t)
	seenShared := map[int]bool{}
	seenPrivate := map[int]bool{}
	for l := mem.Line(0); l < 64; l++ {
		b, _ := m.Shared(l)
		seenShared[b] = true
		pb, _ := m.Private(l, 3)
		seenPrivate[pb] = true
	}
	if len(seenShared) != 32 {
		t.Fatalf("shared interleaving reached %d banks, want 32", len(seenShared))
	}
	if len(seenPrivate) != 4 {
		t.Fatalf("private interleaving reached %d banks, want 4", len(seenPrivate))
	}
}

func TestCoreOfBankPanicsOutOfRange(t *testing.T) {
	m := mustMapping(t)
	defer func() {
		if recover() == nil {
			t.Error("CoreOfBank(32) did not panic")
		}
	}()
	m.CoreOfBank(32)
}

func TestPrivatePanicsOnBadCore(t *testing.T) {
	m := mustMapping(t)
	defer func() {
		if recover() == nil {
			t.Error("Private with core 8 did not panic")
		}
	}()
	m.Private(0, 8)
}

// --- Sampler / ProtectedLRU ---

func newBankWithRoles(t *testing.T, ways int) (*cache.Bank, *Sampler) {
	t.Helper()
	b, err := cache.NewBank(cache.Config{Sets: 16, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSamplerConfig()
	AssignRoles(b, cfg)
	return b, NewSampler(cfg, ways)
}

func TestAssignRolesCounts(t *testing.T) {
	b, _ := newBankWithRoles(t, 16)
	var ref, exp, conv int
	for i := 0; i < b.Sets(); i++ {
		s := b.Set(i)
		if !s.Sampled {
			if s.Role != cache.Conventional {
				t.Fatalf("unsampled set %d has role %v", i, s.Role)
			}
			continue
		}
		switch s.Role {
		case cache.Reference:
			ref++
		case cache.Explorer:
			exp++
		default:
			conv++
		}
	}
	if ref != 1 || exp != 1 || conv != 2 {
		t.Fatalf("sampled sets: %d ref, %d exp, %d conv; want 1,1,2", ref, exp, conv)
	}
}

func TestSamplerLimits(t *testing.T) {
	s := NewSampler(DefaultSamplerConfig(), 16)
	s.SetNMax(4)
	if s.LimitFor(cache.Reference) != 0 {
		t.Error("reference limit != 0")
	}
	if s.LimitFor(cache.Conventional) != 4 {
		t.Error("conventional limit != nmax")
	}
	if s.LimitFor(cache.Explorer) != 5 {
		t.Error("explorer limit != nmax+1")
	}
}

func TestSamplerClamp(t *testing.T) {
	s := NewSampler(DefaultSamplerConfig(), 16)
	s.SetNMax(-3)
	if s.NMax() != 0 {
		t.Fatalf("NMax = %d, want clamp to 0", s.NMax())
	}
	s.SetNMax(100)
	if s.NMax() != 14 {
		t.Fatalf("NMax = %d, want clamp to ways-2 = 14", s.NMax())
	}
}

func TestSamplerRaisesWhenExplorerHealthy(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Period = 8
	s := NewSampler(cfg, 16)
	// All three estimators see perfect first-class hit rates: helping
	// blocks are harmless, so nmax should rise.
	for i := 0; i < 400; i++ {
		s.Observe(cache.Reference, true)
		s.Observe(cache.Explorer, true)
		s.Observe(cache.Conventional, true)
	}
	if s.NMax() == 0 {
		t.Fatal("nmax did not rise despite healthy explorer sets")
	}
	if s.Raises == 0 {
		t.Fatal("Raises counter not incremented")
	}
}

func TestSamplerLowersWhenConventionalDegraded(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Period = 8
	s := NewSampler(cfg, 16)
	s.SetNMax(6)
	// Reference sets hit, conventional sets miss badly: helping blocks
	// are hurting; nmax must fall.
	for i := 0; i < 400; i++ {
		s.Observe(cache.Reference, true)
		s.Observe(cache.Explorer, i%4 == 0)
		s.Observe(cache.Conventional, i%4 == 0)
	}
	if s.NMax() >= 6 {
		t.Fatalf("nmax = %d, did not fall despite degraded conventional sets", s.NMax())
	}
	if s.Lowers == 0 {
		t.Fatal("Lowers counter not incremented")
	}
}

func TestSamplerStableWhenExplorerDegradedOnly(t *testing.T) {
	cfg := DefaultSamplerConfig()
	cfg.Period = 8
	s := NewSampler(cfg, 16)
	s.SetNMax(3)
	// Conventional healthy, explorer degraded: current nmax is right,
	// one more helping block would hurt. nmax must stay.
	for i := 0; i < 400; i++ {
		s.Observe(cache.Reference, true)
		s.Observe(cache.Conventional, true)
		s.Observe(cache.Explorer, i%4 == 0)
	}
	if s.NMax() != 3 {
		t.Fatalf("nmax = %d, want stable 3", s.NMax())
	}
}

func TestSamplerStorageBits(t *testing.T) {
	s := NewSampler(DefaultSamplerConfig(), 16)
	// Paper §5.2: 4 bits per set for n, 4 bits for nmax, 24 bits of EMA.
	got := s.StorageBits(256)
	want := 256*4 + 4 + 24
	if got != want {
		t.Fatalf("StorageBits(256) = %d, want %d", got, want)
	}
}

func helpingBlock(line mem.Line, owner int) cache.Block {
	return cache.Block{Valid: true, Line: line, Class: cache.Replica, Owner: owner}
}

func firstClassBlock(line mem.Line) cache.Block {
	return cache.Block{Valid: true, Line: line, Class: cache.Private, Owner: 0}
}

func TestProtectedLRUCapsHelpingBlocks(t *testing.T) {
	b, s := newBankWithRoles(t, 4)
	s.SetNMax(2)
	pol := ProtectedLRU{S: s}
	// Pick a plain conventional (unsampled) set.
	setIdx := -1
	for i := 0; i < b.Sets(); i++ {
		if !b.Set(i).Sampled {
			setIdx = i
			break
		}
	}
	// Fill with first-class blocks.
	for i := 0; i < 4; i++ {
		b.Insert(setIdx, firstClassBlock(mem.Line(100+i)), pol)
	}
	// Two helping blocks are admitted (evicting first-class LRU)...
	b.Insert(setIdx, helpingBlock(1, 1), pol)
	b.Insert(setIdx, helpingBlock(2, 1), pol)
	if b.Set(setIdx).HelpCount != 2 {
		t.Fatalf("HelpCount = %d, want 2", b.Set(setIdx).HelpCount)
	}
	// ...the third must displace a helping block, not first-class.
	ev := b.Insert(setIdx, helpingBlock(3, 1), pol)
	if !ev.Valid || !ev.Block.Class.Helping() {
		t.Fatalf("third helping insert evicted %+v, want a helping block", ev)
	}
	if b.Set(setIdx).HelpCount != 2 {
		t.Fatalf("HelpCount = %d after capped insert, want 2", b.Set(setIdx).HelpCount)
	}
}

func TestProtectedLRUFirstClassEvictsHelpingAtCap(t *testing.T) {
	b, s := newBankWithRoles(t, 4)
	s.SetNMax(2)
	pol := ProtectedLRU{S: s}
	setIdx := 0
	for !(!b.Set(setIdx).Sampled) {
		setIdx++
	}
	b.Insert(setIdx, firstClassBlock(100), pol)
	b.Insert(setIdx, firstClassBlock(101), pol)
	b.Insert(setIdx, helpingBlock(1, 1), pol)
	b.Insert(setIdx, helpingBlock(2, 1), pol)
	// Set is full with n = nmax: an incoming first-class block evicts the
	// helping LRU (paper: n == nmax -> LRU among helping blocks).
	ev := b.Insert(setIdx, firstClassBlock(102), pol)
	if !ev.Valid || !ev.Block.Class.Helping() {
		t.Fatalf("evicted %+v, want helping block at cap", ev)
	}
	if b.Set(setIdx).HelpCount != 1 {
		t.Fatalf("HelpCount = %d, want 1 (decremented)", b.Set(setIdx).HelpCount)
	}
}

func TestProtectedLRUBelowCapUsesWholeSetLRU(t *testing.T) {
	b, s := newBankWithRoles(t, 8)
	s.SetNMax(3)
	pol := ProtectedLRU{S: s}
	setIdx := 0
	for b.Set(setIdx).Sampled {
		setIdx++
	}
	b.Insert(setIdx, firstClassBlock(100), pol) // oldest
	b.Insert(setIdx, helpingBlock(1, 1), pol)
	b.Insert(setIdx, helpingBlock(2, 1), pol)
	for i := 0; i < 5; i++ { // fill the remaining ways with first-class
		b.Insert(setIdx, firstClassBlock(mem.Line(101+i)), pol)
	}
	// n=2 < nmax=3: whole-set LRU (the first-class block 100) goes.
	ev := b.Insert(setIdx, helpingBlock(3, 1), pol)
	if !ev.Valid || ev.Block.Line != 100 {
		t.Fatalf("evicted %+v, want line 100 (whole-set LRU)", ev)
	}
	if b.Set(setIdx).HelpCount != 3 {
		t.Fatalf("HelpCount = %d, want 3", b.Set(setIdx).HelpCount)
	}
}

func TestReferenceSetRefusesHelping(t *testing.T) {
	b, s := newBankWithRoles(t, 4)
	s.SetNMax(4)
	pol := ProtectedLRU{S: s}
	refIdx := -1
	for i := 0; i < b.Sets(); i++ {
		if b.Set(i).Role == cache.Reference {
			refIdx = i
			break
		}
	}
	for i := 0; i < 4; i++ {
		b.Insert(refIdx, firstClassBlock(mem.Line(100+i)), pol)
	}
	ev := b.Insert(refIdx, helpingBlock(1, 1), pol)
	if !ev.Refused {
		t.Fatalf("reference set accepted a helping block: %+v", ev)
	}
	if b.Set(refIdx).HelpCount != 0 {
		t.Fatalf("reference set HelpCount = %d", b.Set(refIdx).HelpCount)
	}
}

func TestExplorerSetAcceptsOneExtra(t *testing.T) {
	b, s := newBankWithRoles(t, 4)
	s.SetNMax(1)
	pol := ProtectedLRU{S: s}
	expIdx := -1
	for i := 0; i < b.Sets(); i++ {
		if b.Set(i).Role == cache.Explorer {
			expIdx = i
			break
		}
	}
	b.Insert(expIdx, firstClassBlock(100), pol)
	b.Insert(expIdx, firstClassBlock(101), pol)
	b.Insert(expIdx, helpingBlock(1, 1), pol)
	b.Insert(expIdx, helpingBlock(2, 1), pol) // nmax+1 = 2 allowed
	if b.Set(expIdx).HelpCount != 2 {
		t.Fatalf("explorer HelpCount = %d, want 2", b.Set(expIdx).HelpCount)
	}
	ev := b.Insert(expIdx, helpingBlock(3, 1), pol)
	if !ev.Valid || !ev.Block.Class.Helping() {
		t.Fatalf("explorer over-cap insert evicted %+v, want helping", ev)
	}
}

// Property: under any random mix of first-class and helping inserts, a
// conventional set never holds more than nmax helping blocks after the
// budget is enforced, and the bank invariants hold throughout.
func TestProtectedLRUCapProperty(t *testing.T) {
	prop := func(seed uint64, nmax8 uint8) bool {
		rng := sim.NewRNG(seed)
		b, _ := cache.NewBank(cache.Config{Sets: 4, Ways: 8})
		cfg := DefaultSamplerConfig()
		s := NewSampler(cfg, 8)
		s.SetNMax(int(nmax8 % 7))
		pol := ProtectedLRU{S: s}
		classes := []cache.Class{cache.Private, cache.Shared, cache.Replica, cache.Victim}
		for op := 0; op < 1000; op++ {
			set := rng.Intn(4)
			line := mem.Line(rng.Intn(256))
			c := classes[rng.Intn(4)]
			if b.Peek(set, cache.ClassQuery(line, c)) != nil {
				continue
			}
			b.Insert(set, cache.Block{Valid: true, Line: line, Class: c, Owner: rng.Intn(8)}, pol)
			if err := b.CheckInvariants(); err != nil {
				return false
			}
			// After the set is full once, the helping count must respect
			// the cap: it can exceed it only while free ways remain
			// (inserts into empty ways bypass replacement).
			full := true
			for w := 0; w < 8; w++ {
				if !b.Set(set).Blocks[w].Valid {
					full = false
					break
				}
			}
			if full && b.Set(set).HelpCount > s.NMax()+1 {
				// +1 tolerance: blocks that arrived while ways were free.
				// Enforcement happens at replacement time only, but the
				// count must never grow beyond the cap via replacement.
				evBefore := b.Set(set).HelpCount
				b.Insert(set, cache.Block{Valid: true, Line: mem.Line(1000 + op), Class: cache.Replica, Owner: 0}, pol)
				if b.Set(set).HelpCount > evBefore {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerRatesExposed(t *testing.T) {
	s := NewSampler(DefaultSamplerConfig(), 16)
	for i := 0; i < 50; i++ {
		s.Observe(cache.Reference, true)
	}
	_, hrr, _ := s.Rates()
	if hrr <= 0 {
		t.Fatalf("reference rate = %g after hits", hrr)
	}
}

func TestAssignRolesDegenerate(t *testing.T) {
	b, _ := cache.NewBank(cache.Config{Sets: 2, Ways: 4})
	cfg := DefaultSamplerConfig() // needs 4 sampled sets; bank has 2
	AssignRoles(b, cfg)
	for i := 0; i < b.Sets(); i++ {
		if b.Set(i).Sampled {
			t.Fatal("oversubscribed sampling not refused")
		}
	}
}

func TestQoSApply(t *testing.T) {
	q := DefaultQoS()
	q.ClassOf[2] = Bulk
	base := DefaultSamplerConfig()
	got := q.Apply(base, 2)
	if got.D != 2 {
		t.Fatalf("bulk D = %d, want 2", got.D)
	}
	if got.B != base.B || got.A != base.A {
		t.Fatal("Apply changed unrelated fields")
	}
}

func TestMappingExtraTagBitsSmall(t *testing.T) {
	m, err := NewMapping(8, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// n == p: one bank per core, zero local-selector bits.
	if m.BanksPerCore() != 1 {
		t.Fatalf("BanksPerCore = %d", m.BanksPerCore())
	}
	bank, _ := m.Private(12345, 5)
	if bank != 5 {
		t.Fatalf("single-bank private mapping = %d, want 5", bank)
	}
}
