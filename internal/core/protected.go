package core

import (
	"espnuca/internal/cache"
	"espnuca/internal/stats"
)

// SamplerConfig holds the protected-LRU tuning constants of paper §3.3;
// DefaultSamplerConfig returns the values chosen there after the
// sensitivity sweep (§5.2).
type SamplerConfig struct {
	// A is the EMA smoothing shift (alpha = 2^-A; A=1 corresponds to the
	// paper's N=3-sample moving average).
	A uint
	// B is the EMA register width in bits.
	B uint
	// D is the accepted first-class hit-rate degradation shift: the
	// threshold is a fraction 2^-D (D=3 -> 12.5%, i.e. explorer sets must
	// stay above 87.5% of the reference hit rate).
	D uint
	// Period is the number of sampled-set references between nmax
	// re-evaluations.
	Period int
	// ConventionalSets, ReferenceSets, ExplorerSets are the number of
	// sampled sets per bank feeding each estimator.
	ConventionalSets, ReferenceSets, ExplorerSets int
}

// DefaultSamplerConfig is the paper's configuration: b=8, N=3 (a=1), d=3,
// two conventional + one reference + one explorer sampled sets.
func DefaultSamplerConfig() SamplerConfig {
	return SamplerConfig{A: 1, B: 8, D: 3, Period: 64,
		ConventionalSets: 2, ReferenceSets: 1, ExplorerSets: 1}
}

// Sampler is the per-bank controller deciding the helping-block budget
// nmax. It owns the three EMA estimators (HRC, HRR, HRE) and applies the
// update rule of paper eq. (3).
type Sampler struct {
	cfg  SamplerConfig
	hrc  *stats.EMA // conventional sets, first-class hit rate
	hrr  *stats.EMA // reference sets
	hre  *stats.EMA // explorer sets
	nmax int
	ways int

	events int

	// Raises and Lowers count nmax adjustments, for adaptivity studies.
	Raises, Lowers uint64
}

// NewSampler builds the controller for a bank of the given associativity.
func NewSampler(cfg SamplerConfig, ways int) *Sampler {
	if cfg.Period <= 0 {
		cfg.Period = 64
	}
	return &Sampler{
		cfg:  cfg,
		hrc:  stats.NewEMA(cfg.A, cfg.B),
		hrr:  stats.NewEMA(cfg.A, cfg.B),
		hre:  stats.NewEMA(cfg.A, cfg.B),
		nmax: 0,
		ways: ways,
	}
}

// NMax returns the current helping-block budget for conventional sets.
func (s *Sampler) NMax() int { return s.nmax }

// SetNMax overrides the budget (tests, static configurations).
func (s *Sampler) SetNMax(n int) { s.nmax = s.clamp(n) }

func (s *Sampler) clamp(n int) int {
	if n < 0 {
		return 0
	}
	// Leave at least one way for first-class blocks; the explorer limit
	// nmax+1 may still reach ways-1+1 = ways? No: explorer also keeps one.
	if n > s.ways-2 {
		return s.ways - 2
	}
	return n
}

// LimitFor returns the helping-block cap for a set with the given role.
func (s *Sampler) LimitFor(role cache.SetRole) int {
	switch role {
	case cache.Reference:
		return 0
	case cache.Explorer:
		return s.nmax + 1
	default:
		return s.nmax
	}
}

// Observe records one reference to a sampled set: its role and whether the
// access hit a first-class block (h=1) or anything else happened (h=0).
// Every cfg.Period sampled references the nmax update rule runs.
func (s *Sampler) Observe(role cache.SetRole, firstClassHit bool) {
	switch role {
	case cache.Reference:
		s.hrr.Observe(firstClassHit)
	case cache.Explorer:
		s.hre.Observe(firstClassHit)
	default:
		s.hrc.Observe(firstClassHit)
	}
	s.events++
	if s.events >= s.cfg.Period {
		s.events = 0
		s.update()
	}
}

// update applies eq. (3): lower nmax when conventional sets degraded below
// the threshold fraction of the reference hit rate; raise it when even the
// explorer sets (one extra helping block) are not degraded.
func (s *Sampler) update() {
	switch {
	case s.hrr.DegradedBelow(s.hrc, s.cfg.D):
		if n := s.clamp(s.nmax - 1); n != s.nmax {
			s.nmax = n
			s.Lowers++
		}
	case !s.hrr.DegradedBelow(s.hre, s.cfg.D):
		if n := s.clamp(s.nmax + 1); n != s.nmax {
			s.nmax = n
			s.Raises++
		}
	}
}

// Rates exposes the three estimates (normalized to [0,1]) for the
// adaptivity example and tests.
func (s *Sampler) Rates() (hrc, hrr, hre float64) {
	return s.hrc.Rate(), s.hrr.Rate(), s.hre.Rate()
}

// StorageBits returns the controller's hardware bookkeeping cost in bits
// for a bank with the given number of sets: log2(w) per set for the n
// counters, log2(w) for nmax, and 3*b for the estimators (paper §5.2).
func (s *Sampler) StorageBits(sets int) int {
	wBits, _ := log2ceil(s.ways)
	return sets*wBits + wBits + int(3*s.cfg.B)
}

func log2ceil(v int) (int, bool) {
	b := 0
	for 1<<b < v {
		b++
	}
	return b, 1<<b == v
}

// ProtectedLRU is the ESP-NUCA replacement policy (paper §3.2). Victim
// selection depends on the set's helping-block count n and its role's cap:
//
//	n <  cap: evict the LRU block of the whole set
//	n >= cap: evict the LRU block among helping blocks
//
// Reference sets have cap 0 and therefore refuse helping blocks entirely;
// explorer sets use cap nmax+1.
type ProtectedLRU struct {
	S *Sampler
}

// PickVictim implements cache.Policy.
func (p ProtectedLRU) PickVictim(b *cache.Bank, setIdx int, incoming cache.Class) int {
	set := b.Set(setIdx)
	limit := p.S.LimitFor(set.Role)
	if set.HelpCount >= limit {
		if w := b.LRUWay(setIdx, cache.HelpingMask); w >= 0 {
			return w
		}
		// No helping block to displace. A first-class block falls back to
		// plain LRU; a helping block is refused (the cap is zero).
		if incoming.Helping() {
			return -1
		}
	}
	return b.LRUWay(setIdx, cache.AnyClass)
}

// AssignRoles marks the sampled sets of a bank: the requested number of
// reference, explorer and conventional-sampled sets, spread across the
// index space so that set-index locality does not bias the estimators.
// The remaining sets are plain conventional sets.
func AssignRoles(b *cache.Bank, cfg SamplerConfig) {
	n := b.Sets()
	total := cfg.ReferenceSets + cfg.ExplorerSets + cfg.ConventionalSets
	if total <= 0 || total > n {
		return
	}
	// Stride the sampled sets evenly, starting away from set 0 (which
	// often carries pathological traffic in synthetic streams).
	stride := n / total
	idx := stride / 2
	place := func(role cache.SetRole, count int) {
		for i := 0; i < count; i++ {
			s := b.Set(idx % n)
			s.Role = role
			s.Sampled = true
			idx += stride
		}
	}
	place(cache.Reference, cfg.ReferenceSets)
	place(cache.Explorer, cfg.ExplorerSets)
	place(cache.Conventional, cfg.ConventionalSets)
}
