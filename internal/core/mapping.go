// Package core implements the paper's primary contribution: the SP-NUCA /
// ESP-NUCA mechanisms. It contains the dual private/shared address
// interpretation (paper Figure 1b), the protected-LRU replacement policy
// with per-set helping-block budgets (paper §3.2), and the set-sampling
// controller that tunes the budget nmax on-line from EMA hit-rate
// estimates of reference, explorer and conventional sets (paper §3.3).
package core

import (
	"fmt"

	"espnuca/internal/cache"
	"espnuca/internal/mem"
)

// Mapping derives bank and set indices from a cache line under the two
// interpretations of Figure 1b. For a NUCA with 2^n banks, 2^p cores and
// 2^i sets per bank:
//
//	shared request:  bank = low n bits, index = next i bits
//	private request: bank = core's group base + low n-p bits,
//	                 index = next i bits
//
// The private tag is p bits longer; the tag array is sized for it (the
// paper's p-bits-per-line overhead), which in the simulator simply means
// both interpretations are exact.
type Mapping struct {
	banks, cores, setsPerBank int
	bankBits, coreBankBits    uint
	setBits                   uint
}

// NewMapping validates the geometry; banks, cores and setsPerBank must be
// powers of two with banks >= cores.
func NewMapping(banks, cores, setsPerBank int) (Mapping, error) {
	bb, ok := mem.Log2(banks)
	if !ok || banks <= 0 {
		return Mapping{}, fmt.Errorf("core: banks = %d is not a power of two", banks)
	}
	cb, ok := mem.Log2(cores)
	if !ok || cores <= 0 {
		return Mapping{}, fmt.Errorf("core: cores = %d is not a power of two", cores)
	}
	sb, ok := mem.Log2(setsPerBank)
	if !ok || setsPerBank <= 0 {
		return Mapping{}, fmt.Errorf("core: setsPerBank = %d is not a power of two", setsPerBank)
	}
	if banks < cores {
		return Mapping{}, fmt.Errorf("core: %d banks cannot serve %d cores", banks, cores)
	}
	return Mapping{
		banks: banks, cores: cores, setsPerBank: setsPerBank,
		bankBits: bb, coreBankBits: bb - cb, setBits: sb,
	}, nil
}

// Banks returns the total bank count (2^n).
func (m Mapping) Banks() int { return m.banks }

// Cores returns the core count (2^p).
func (m Mapping) Cores() int { return m.cores }

// BanksPerCore returns the private-group size (2^(n-p)).
func (m Mapping) BanksPerCore() int { return m.banks / m.cores }

// SetsPerBank returns 2^i.
func (m Mapping) SetsPerBank() int { return m.setsPerBank }

// Shared returns the home bank and set index of line l under the shared
// interpretation.
func (m Mapping) Shared(l mem.Line) (bank, set int) {
	v := uint64(l)
	bank = int(v & uint64(m.banks-1))
	set = int((v >> m.bankBits) & uint64(m.setsPerBank-1))
	return bank, set
}

// Private returns the bank and set index of line l under the private
// interpretation for the given core.
func (m Mapping) Private(l mem.Line, core int) (bank, set int) {
	if core < 0 || core >= m.cores {
		panic(fmt.Sprintf("core: private mapping for core %d of %d", core, m.cores))
	}
	v := uint64(l)
	local := int(v & uint64(m.BanksPerCore()-1))
	bank = core*m.BanksPerCore() + local
	set = int((v >> m.coreBankBits) & uint64(m.setsPerBank-1))
	return bank, set
}

// CoreOfBank returns the core whose private group contains bank b.
func (m Mapping) CoreOfBank(b int) int {
	if b < 0 || b >= m.banks {
		panic(fmt.Sprintf("core: bank %d of %d", b, m.banks))
	}
	return b / m.BanksPerCore()
}

// PrivateBanks returns the bank range [lo,hi) owned by core c.
func (m Mapping) PrivateBanks(c int) (lo, hi int) {
	g := m.BanksPerCore()
	return c * g, (c + 1) * g
}

// ExtraTagBits returns the tag widening the private interpretation costs
// (p bits per line, paper §2.1).
func (m Mapping) ExtraTagBits() uint {
	cb, _ := mem.Log2(m.cores)
	return cb
}

var _ = cache.Private // documented dependency: classes live in the cache package
