package stats

import (
	"math"
	"testing"
	"testing/quick"

	"espnuca/internal/sim"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", m)
	}
	if v := Variance(xs); !approx(v, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %g, want %g", v, 32.0/7)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("empty/single-sample edge cases wrong")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil || !approx(g, 4, 1e-12) {
		t.Fatalf("GeoMean = %g, %v; want 4", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean accepted zero")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean accepted empty input")
	}
}

func TestCI95(t *testing.T) {
	// Two samples: t(1 df) = 12.706, sd = sqrt(2)/sqrt(2)... sample {0,2}:
	// mean 1, sd sqrt(2), CI = 12.706*sqrt(2)/sqrt(2) = 12.706.
	ci := CI95([]float64{0, 2})
	if !approx(ci, 12.706, 1e-9) {
		t.Fatalf("CI95 = %g, want 12.706", ci)
	}
	if CI95([]float64{5}) != 0 {
		t.Fatal("single-sample CI should be 0")
	}
	// Large n uses the normal critical value.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	want := 1.96 * StdDev(xs) / 10
	if got := CI95(xs); !approx(got, want, 1e-9) {
		t.Fatalf("CI95(large n) = %g, want %g", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || !approx(s.Mean, 2, 1e-12) || s.N != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Median != 2 {
		t.Fatalf("Summary.Median = %g, want 2", s.Median)
	}
	// A skewed sample: the median must resist the outlier the mean follows.
	sk := Summarize([]float64{1, 2, 3, 100})
	if sk.Median != 2.5 {
		t.Fatalf("skewed Summary.Median = %g, want 2.5", sk.Median)
	}
	if sk.Mean <= sk.Median {
		t.Fatalf("outlier should pull Mean (%g) above Median (%g)", sk.Mean, sk.Median)
	}
	if z := Summarize(nil); z.N != 0 || z.Median != 0 {
		t.Fatalf("empty Summary = %+v", z)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("odd Median = %g", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even Median = %g", m)
	}
	if Median(nil) != 0 {
		t.Fatal("empty Median != 0")
	}
}

func TestEMAConvergesToHitRate(t *testing.T) {
	e := NewEMA(1, 8)
	for i := 0; i < 1000; i++ {
		e.Observe(true)
	}
	if e.Rate() < 0.98 {
		t.Fatalf("all-hit EMA rate = %g, want ~1", e.Rate())
	}
	for i := 0; i < 1000; i++ {
		e.Observe(false)
	}
	// Integer truncation leaves v stuck at 1 (1>>1 == 0), exactly as the
	// shift-based hardware would; the residual is below 1/2^b of full scale.
	if e.Rate() > 2.0/256 {
		t.Fatalf("all-miss EMA rate = %g, want ~0", e.Rate())
	}
}

func TestEMAAlternating(t *testing.T) {
	// With a=1 (alpha = 1/2) the estimate oscillates around the true rate:
	// ~2/3 after a hit, ~1/3 after a miss. Check the time average instead.
	e := NewEMA(1, 8)
	sum := 0.0
	const n, warm = 1000, 100
	for i := 0; i < n; i++ {
		e.Observe(i%2 == 0)
		if i >= warm {
			sum += e.Rate()
		}
	}
	avg := sum / (n - warm)
	if avg < 0.4 || avg > 0.6 {
		t.Fatalf("50%% hit stream EMA average = %g, want ~0.5", avg)
	}
}

func TestEMAMaxIsFixedPoint(t *testing.T) {
	e := NewEMA(1, 8)
	max := e.Max()
	for i := 0; i < 100; i++ {
		e.Observe(true)
	}
	if e.Value() != max {
		t.Fatalf("saturated value %d != Max() %d", e.Value(), max)
	}
	e.Observe(true)
	if e.Value() != max {
		t.Fatal("Max() is not a fixed point")
	}
}

func TestEMAPanicsOnBadConfig(t *testing.T) {
	for _, c := range []struct{ a, b uint }{{0, 8}, {9, 8}, {1, 0}, {1, 31}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEMA(%d,%d) did not panic", c.a, c.b)
				}
			}()
			NewEMA(c.a, c.b)
		}()
	}
}

func TestEMADegradedBelow(t *testing.T) {
	ref := NewEMA(1, 8)
	low := NewEMA(1, 8)
	for i := 0; i < 200; i++ {
		ref.Observe(true)
		low.Observe(i%4 == 0) // 25% hit rate
	}
	// d=3: threshold is 87.5% of reference; 25% is clearly degraded.
	if !ref.DegradedBelow(low, 3) {
		t.Fatal("25% stream not flagged as degraded vs all-hit reference")
	}
	// An equal estimator is not degraded.
	same := NewEMA(1, 8)
	for i := 0; i < 200; i++ {
		same.Observe(true)
	}
	if ref.DegradedBelow(same, 3) {
		t.Fatal("equal stream flagged as degraded")
	}
}

// Property: the EMA estimate always stays within [0, Max] and tracks the
// true hit probability of a Bernoulli stream to within a loose bound.
func TestEMABoundsProperty(t *testing.T) {
	prop := func(seed uint64, p8 uint8) bool {
		p := float64(p8) / 255
		rng := sim.NewRNG(seed)
		e := NewEMA(3, 8) // longer window for a tighter estimate
		max := e.Max()
		tail := 0.0
		const n, warm = 5000, 1000
		for i := 0; i < n; i++ {
			e.Observe(rng.Bool(p))
			if e.Value() > max {
				return false
			}
			if i >= warm {
				tail += e.Rate()
			}
		}
		// The time-averaged estimate tracks the true probability; the
		// instantaneous value fluctuates by design.
		return math.Abs(tail/(n-warm)-p) < 0.15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(100, 1.0)
	rng := sim.NewRNG(3)
	counts := make([]int, 100)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Rank 0 should be sampled ~P(0) of the time.
	got := float64(counts[0]) / float64(n)
	if !approx(got, z.P(0), 0.01) {
		t.Fatalf("rank-0 frequency %g, want %g", got, z.P(0))
	}
	// Monotone popularity in the aggregate: first decile beats last decile.
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
		tail += counts[90+i]
	}
	if head <= tail {
		t.Fatalf("head %d not more popular than tail %d", head, tail)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if !approx(z.P(i), 0.1, 1e-12) {
			t.Fatalf("P(%d) = %g, want 0.1", i, z.P(i))
		}
	}
}

// Property: samples are always in range and the CDF is complete.
func TestZipfRangeProperty(t *testing.T) {
	prop := func(seed uint64, n16 uint16, s8 uint8) bool {
		n := int(n16%1000) + 1
		s := float64(s8%30) / 10
		z := NewZipf(n, s)
		if z.N() != n {
			return false
		}
		rng := sim.NewRNG(seed)
		for i := 0; i < 200; i++ {
			v := z.Sample(rng)
			if v < 0 || v >= n {
				return false
			}
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += z.P(i)
		}
		return approx(sum, 1, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}
