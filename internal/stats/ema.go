package stats

// EMA is the integer exponential-moving-average estimator the ESP-NUCA
// hardware uses to track first-class hit rates (paper eq. 2). The estimate
// is kept in b bits, normalized so that 2^b-ish values mean "every recent
// event was a hit"; on each event it is updated with shifts only:
//
//	hit:  v = v - (v >> a) + (2^b >> a)
//	miss: v = v - (v >> a)
//
// where alpha = 2^-a is the smoothing factor (alpha = 2/(N+1) for an
// N-sample moving average).
type EMA struct {
	a, b uint
	v    uint32
}

// NewEMA returns an estimator with smoothing shift a and width b bits.
// The paper's chosen configuration is a=1 (N=3 samples) and b=8.
func NewEMA(a, b uint) *EMA {
	if b == 0 || b > 30 {
		panic("stats: EMA width must be 1..30 bits")
	}
	if a == 0 || a > b {
		panic("stats: EMA shift must be 1..b")
	}
	return &EMA{a: a, b: b}
}

// Observe records a hit (true) or miss (false).
func (e *EMA) Observe(hit bool) {
	e.v -= e.v >> e.a
	if hit {
		e.v += uint32(1) << (e.b - e.a)
	}
}

// Value returns the raw b-bit estimate.
func (e *EMA) Value() uint32 { return e.v }

// Rate returns the estimate normalized to [0,1].
func (e *EMA) Rate() float64 {
	// The fixed point of all-hits updates is 2^b - 2^a (not exactly 2^b)
	// because of integer truncation; normalizing by 2^b keeps the
	// hardware semantics and is what the comparison rule uses.
	return float64(e.v) / float64(uint32(1)<<e.b)
}

// Max returns the largest value the estimator can reach (its all-hits
// fixed point).
func (e *EMA) Max() uint32 {
	// Solve v = v - (v>>a) + (2^b >> a) at the fixed point: v>>a = 2^(b-a),
	// so v approaches 2^b but saturates below it due to truncation.
	v := uint32(0)
	for i := 0; i < 64; i++ {
		nv := v - (v >> e.a) + (uint32(1) << (e.b - e.a))
		if nv == v {
			break
		}
		v = nv
	}
	return v
}

// Reset clears the estimate.
func (e *EMA) Reset() { e.v = 0 }

// DegradedBelow reports whether other's estimate has degraded by at least
// a fraction 2^-d relative to this (reference) estimate, i.e. whether
// ref - (ref >> d) >= other. This is the comparison the nmax update rule
// (paper eq. 3) performs in hardware.
func (e *EMA) DegradedBelow(other *EMA, d uint) bool {
	return e.v-(e.v>>d) >= other.v
}
