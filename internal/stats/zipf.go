package stats

import (
	"math"

	"espnuca/internal/sim"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. Cache-workload locality is classically well approximated
// by Zipf-distributed block popularity; the synthetic workload profiles
// use it to reproduce each application class's reuse behaviour.
//
// The implementation precomputes the CDF and samples by binary search,
// which is fast enough (one RNG draw + log2(n) comparisons) for the
// simulator's hot path when n is the number of *regions*, and is exact.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s >= 0. n must be
// positive. s = 0 degenerates to uniform.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf needs positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank using rng.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// P returns the probability of rank i.
func (z *Zipf) P(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
