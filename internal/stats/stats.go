// Package stats provides the small statistical toolkit the simulator and
// the experiment harness rely on: the integer exponential moving average
// used by the ESP-NUCA hardware (paper eq. 2), descriptive statistics,
// Student-t confidence intervals for the multi-run methodology (paper
// §4.2), geometric means for normalized-performance summaries, and a Zipf
// sampler used by the synthetic workloads.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than
// two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %g", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// tTable95 holds two-sided 95% Student-t critical values by degrees of
// freedom (1-30); beyond 30 we use the normal approximation.
var tTable95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval for
// the mean of xs (0 for fewer than two samples).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.960
	if df < len(tTable95) {
		t = tTable95[df]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// Estimate is a sampled point estimate: the mean over measurement
// windows (or any other sample set) with its two-sided 95% confidence
// half-width. The sampled-execution mode attaches one per headline
// metric so estimates always travel with their error bound.
type Estimate struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// EstimateOf computes the estimate for xs.
func EstimateOf(xs []float64) Estimate {
	return Estimate{Mean: Mean(xs), CI95: CI95(xs), N: len(xs)}
}

// RelCI95 returns the confidence half-width relative to the magnitude of
// the mean (0 when the mean is 0).
func (e Estimate) RelCI95() float64 {
	if e.Mean == 0 {
		return 0
	}
	return math.Abs(e.CI95 / e.Mean)
}

// Summary bundles the descriptive statistics reported for each data point.
type Summary struct {
	Mean, Median, Min, Max, StdDev, CI95 float64
	N                                    int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Summary{
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    min,
		Max:    max,
		StdDev: StdDev(xs),
		CI95:   CI95(xs),
		N:      len(xs),
	}
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
