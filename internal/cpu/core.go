// Package cpu models the processor cores of Table 2: out-of-order with a
// 64-entry window, 4-wide issue, and up to 16 outstanding memory
// requests.
//
// The model is the standard lightweight OoO approximation used by
// trace-driven memory-system studies: instructions retire at the issue
// width; an L1 miss does not stall the core immediately — execution runs
// ahead until either the MSHRs fill (16 outstanding misses) or the
// reorder window fills (64 instructions past the oldest incomplete miss),
// at which point the core waits for the oldest miss. This captures
// memory-level parallelism and latency hiding, the two first-order
// effects the L2 architecture differentiates on.
package cpu

import (
	"espnuca/internal/arch"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

// Config holds the core parameters.
type Config struct {
	IssueWidth  int // instructions per cycle (paper: 4)
	Window      int // reorder window (paper: 64)
	MSHRs       int // outstanding memory requests (paper: 16)
	Quantum     int // instructions executed per scheduler slice
	L1HitCycles sim.Cycle
	// PrefetchDegree, when positive, enables a per-core stride
	// prefetcher issuing that many lines ahead on confirmed strides
	// (extension; the paper's system has none).
	PrefetchDegree int
}

// DefaultConfig returns Table 2's core.
func DefaultConfig() Config {
	return Config{IssueWidth: 4, Window: 64, MSHRs: 16, Quantum: 256, L1HitCycles: 3}
}

// missHeap orders outstanding misses by completion cycle. Like the event
// queue in internal/sim, it is a hand-rolled binary min-heap rather than a
// container/heap implementation: the interface-based API boxes every
// missEntry into an `any` on Push and Pop, one heap allocation per L1 miss
// on the simulator's hot path.
type missHeap []missEntry

type missEntry struct {
	done  sim.Cycle
	instr uint64 // instruction index that issued it
}

func (h missHeap) less(i, j int) bool { return h[i].done < h[j].done }

func (h missHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h missHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h.less(r, l) {
			min = r
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

func (h *missHeap) push(e missEntry) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

// popMin removes and returns the earliest-completing miss, keeping the
// backing array's capacity for reuse.
func (h *missHeap) popMin() missEntry {
	q := *h
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	if n > 1 {
		q.down(0)
	}
	*h = q
	return min
}

func (h missHeap) oldestInstr() uint64 { // min instruction index among entries
	min := ^uint64(0)
	for _, e := range h {
		if e.instr < min {
			min = e.instr
		}
	}
	return min
}

// InstrSource supplies the instruction stream a core executes. The
// synthetic workload generators implement it, as do trace replayers.
type InstrSource interface {
	Next() workload.Instr
}

// MemPort decouples a core from the synchronous memory system for
// sharded execution: instead of calling arch.System.Access inline (which
// touches mesh links, L2 banks, the directory and DRAM — state shared
// across shards), a ported core enqueues its request and learns the
// completion cycle later, when the sharded runner's barrier phase has
// serviced the merged request stream in deterministic order and called
// Resolve. Access returns a ticket scoped to the current window; demand
// requests must be resolved before the core's next resume, prefetches are
// fire-and-forget. WriteBackAfter attaches a displaced dirty line to the
// ticket's request so the service issues the write-back immediately after
// the access, exactly where the serial engine would.
type MemPort interface {
	Access(at sim.Cycle, line mem.Line, write, present, demand bool) uint64
	WriteBackAfter(ticket uint64, line mem.Line, dirty bool)
}

// pendingMiss is an issued-but-unresolved demand request: the completion
// cycle is unknown until the barrier service resolves the ticket.
type pendingMiss struct {
	ticket uint64
	instr  uint64 // instruction index that issued it
}

// Micro-architectural resume points of the ported slice state machine.
const (
	stageTop     = iota // begin the next instruction
	stageFetch          // instruction-fetch path
	stageFetchBP        // back-pressure after a fetch miss
	stageData           // data-access path
	stageDataBP         // back-pressure after a data miss
	stageRetire         // retirement bookkeeping
	stageDrain          // waiting out outstanding misses at the target
)

// Core executes one workload stream against the memory system.
type Core struct {
	ID     int
	cfg    Config
	eng    *sim.Engine
	sys    arch.System
	stream InstrSource

	localTime sim.Cycle
	retired   uint64
	target    uint64
	slot      int // issue slots consumed this cycle
	misses    missHeap

	// warmTarget is the retirement count at which measurement begins;
	// warmTime records the core's local clock at that point.
	warmTarget uint64
	warmTime   sim.Cycle
	warmed     bool

	// Done reports whether the core reached its instruction target.
	Done bool

	// Stalls counts cycles lost waiting on the window/MSHR limits.
	Stalls sim.Cycle

	// pf is the optional stride prefetcher.
	pf *stridePrefetcher

	// --- Ported (sharded) execution state; nil/zero on the serial path ---

	// port, when non-nil, routes memory requests through the sharded
	// runner instead of the synchronous system; the core then executes
	// via the resumable state machine in slice_port.go.
	port MemPort
	// pending holds issued demand requests whose completion cycle the
	// barrier service has not yet resolved.
	pending []pendingMiss
	// suspended marks a core parked mid-instruction on an unresolved
	// miss; the runner resumes it after the barrier resolves everything.
	suspended bool
	// stage/in/sliceStart/sliceN persist the state machine's position
	// across suspensions (a resume re-enters mid-slice, mid-instruction).
	stage      int
	in         workload.Instr
	sliceStart sim.Cycle
	sliceN     int
	// bufHits counts L1 hits recorded during the parallel phase, flushed
	// to the substrate decomposition at each barrier (FlushL1Hits).
	bufHits uint64
}

// New builds a core; call Start to schedule it.
func New(id int, cfg Config, eng *sim.Engine, sys arch.System, stream InstrSource, target uint64) *Core {
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = 4
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.MSHRs <= 0 {
		cfg.MSHRs = 16
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 256
	}
	c := &Core{ID: id, cfg: cfg, eng: eng, sys: sys, stream: stream, target: target}
	if cfg.PrefetchDegree > 0 {
		c.pf = newStridePrefetcher(cfg.PrefetchDegree)
	}
	return c
}

// Prefetcher stats: prefetches issued and those that saw demand hits;
// zeros when prefetching is disabled.
func (c *Core) PrefetchStats() (issued, useful uint64) {
	if c.pf == nil {
		return 0, 0
	}
	return c.pf.Issued, c.pf.Useful
}

// Retired returns the number of instructions completed.
func (c *Core) Retired() uint64 { return c.retired }

// Time returns the core's local cycle count.
func (c *Core) Time() sim.Cycle { return c.localTime }

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.localTime == 0 {
		return 0
	}
	return float64(c.retired) / float64(c.localTime)
}

// SetWarmup makes the core record the local cycle at which it retires its
// n-th instruction, delimiting the measured window. Call before Start.
func (c *Core) SetWarmup(n uint64) { c.warmTarget = n }

// Warmed reports whether the warmup boundary was crossed.
func (c *Core) Warmed() bool { return c.warmed }

// MeasuredIPC returns instructions per cycle within the core's own
// measured window (after its warmup boundary).
func (c *Core) MeasuredIPC() float64 {
	if !c.warmed || c.localTime <= c.warmTime {
		return c.IPC()
	}
	return float64(c.retired-c.warmTarget) / float64(c.localTime-c.warmTime)
}

// MeasuredWindow returns the measured cycles and instructions.
func (c *Core) MeasuredWindow() (sim.Cycle, uint64) {
	if !c.warmed {
		return c.localTime, c.retired
	}
	return c.localTime - c.warmTime, c.retired - c.warmTarget
}

// SetPort switches the core to ported (sharded) execution. Call before
// Start.
func (c *Core) SetPort(p MemPort) { c.port = p }

// Start schedules the core's first slice.
func (c *Core) Start() {
	if c.port != nil {
		c.eng.Schedule(0, c.sliceEventP)
		return
	}
	c.eng.Schedule(0, c.slice)
}

// maxSliceSkew bounds how far a core's local clock may advance within one
// scheduler slice. Shared resources (links, bank ports, DRAM channels) use
// next-free-time queueing, which is only accurate when claims arrive in
// roughly global time order; yielding whenever the local clock jumps keeps
// cross-core skew below one short transaction.
const maxSliceSkew = 64

// slice executes up to Quantum instructions, then yields to the event
// queue so cores stay loosely synchronized in simulated time.
func (c *Core) slice() {
	if c.Done {
		return
	}
	sub := c.sys.Sub()
	sliceStart := c.localTime
	for n := 0; n < c.cfg.Quantum; n++ {
		if c.localTime > sliceStart+maxSliceSkew {
			break
		}
		if c.retired >= c.target {
			c.Done = true
			c.drain()
			return
		}
		c.reapCompleted()

		in := c.stream.Next()

		// Instruction fetch on code-line crossings.
		if in.HasFetch {
			if !sub.L1.Lookup(c.ID, in.Fetch, false, true) {
				c.handleMiss(in.Fetch, false, true)
			} else {
				sub.RecordL1Hit(c.cfg.L1HitCycles)
			}
		}

		// Data access.
		if in.IsMem {
			if sub.L1.Lookup(c.ID, in.Data, in.Write, false) {
				sub.RecordL1Hit(c.cfg.L1HitCycles)
				if c.pf != nil {
					c.pf.observeHit(in.Data)
				}
			} else {
				c.handleMiss(in.Data, in.Write, false)
				if c.pf != nil {
					c.prefetch(in.Data)
				}
			}
		}

		c.retired++
		if !c.warmed && c.warmTarget > 0 && c.retired >= c.warmTarget {
			c.warmed = true
			c.warmTime = c.localTime
		}
		c.slot++
		if c.slot >= c.cfg.IssueWidth {
			c.slot = 0
			c.localTime++
		}
	}
	// Yield: reschedule at the core's current local time so other cores
	// catch up in simulated time before we claim more shared resources.
	c.eng.At(c.localTime, c.slice)
}

// handleMiss issues the access to the L2 system and applies the window /
// MSHR back-pressure rules.
func (c *Core) handleMiss(line mem.Line, write, ifetch bool) {
	sub := c.sys.Sub()
	res := c.sys.Access(c.localTime, c.ID, line, write)
	c.misses.push(missEntry{done: res.Done, instr: c.retired})
	wb := sub.L1.Fill(c.ID, line, write, ifetch)
	if wb.Valid {
		c.sys.WriteBack(res.Done, c.ID, wb.Line, wb.Dirty)
	}

	// Back-pressure: MSHRs full, or the window has run ahead of the
	// oldest outstanding miss.
	for len(c.misses) >= c.cfg.MSHRs ||
		(len(c.misses) > 0 && c.retired-c.misses.oldestInstr() >= uint64(c.cfg.Window)) {
		c.waitOldest()
	}
}

// prefetch trains the stride predictor and issues non-blocking fills.
func (c *Core) prefetch(miss mem.Line) {
	sub := c.sys.Sub()
	for _, l := range c.pf.observeMiss(miss) {
		if sub.L1.Has(c.ID, l) {
			continue
		}
		c.pf.markIssued(l)
		res := c.sys.Access(c.localTime, c.ID, l, false)
		wb := sub.L1.Fill(c.ID, l, false, false)
		if wb.Valid {
			c.sys.WriteBack(res.Done, c.ID, wb.Line, wb.Dirty)
		}
	}
}

// reapCompleted retires misses whose data has arrived.
func (c *Core) reapCompleted() {
	for len(c.misses) > 0 && c.misses[0].done <= c.localTime {
		c.misses.popMin()
	}
}

// waitOldest advances local time to the earliest completing miss.
func (c *Core) waitOldest() {
	if len(c.misses) == 0 {
		return
	}
	e := c.misses.popMin()
	if e.done > c.localTime {
		c.Stalls += e.done - c.localTime
		c.localTime = e.done
		c.slot = 0
	}
	c.reapCompleted()
}

// drain waits for all outstanding misses at the end of the run.
func (c *Core) drain() {
	for len(c.misses) > 0 {
		c.waitOldest()
	}
}
