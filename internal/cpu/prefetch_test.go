package cpu

import (
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

func TestStridePrefetcherLearnsStride(t *testing.T) {
	p := newStridePrefetcher(2)
	// Train with a unit-stride miss stream: 100, 101, 102, ...
	var issued []mem.Line
	for i := 0; i < 6; i++ {
		for _, l := range p.observeMiss(mem.Line(100 + i)) {
			p.markIssued(l)
			issued = append(issued, l)
		}
	}
	if len(issued) == 0 {
		t.Fatal("no prefetches for a perfect stride stream")
	}
	// First prefetches appear after the confirmation threshold and run
	// ahead of the stream.
	if issued[0] <= 102 {
		t.Fatalf("first prefetch %d not ahead of stream", issued[0])
	}
	if issued[1] != issued[0]+1 {
		t.Fatalf("degree-2 prefetches not consecutive: %v", issued[:2])
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	p := newStridePrefetcher(2)
	// Misses with changing strides never confirm.
	lines := []mem.Line{100, 105, 107, 120, 121, 150}
	n := 0
	for _, l := range lines {
		n += len(p.observeMiss(l))
	}
	if n != 0 {
		t.Fatalf("%d prefetches on a strideless stream", n)
	}
}

func TestStridePrefetcherNegativeStride(t *testing.T) {
	p := newStridePrefetcher(1)
	var got []mem.Line
	for i := 0; i < 6; i++ {
		got = append(got, p.observeMiss(mem.Line(1000-2*i))...)
	}
	if len(got) == 0 {
		t.Fatal("no prefetches on a descending stride")
	}
	if got[0] >= 1000 {
		t.Fatalf("descending prefetch %d not below stream", got[0])
	}
}

func TestStridePrefetcherRegions(t *testing.T) {
	p := newStridePrefetcher(1)
	// Two interleaved unit-stride streams in regions mapping to distinct
	// table entries must both train.
	var a, b int
	for i := 0; i < 8; i++ {
		a += len(p.observeMiss(mem.Line(0x0000 + i)))
		b += len(p.observeMiss(mem.Line(0x4400 + i))) // region 17 -> entry 1
	}
	if a == 0 || b == 0 {
		t.Fatalf("interleaved streams not independently trained: %d, %d", a, b)
	}
}

func TestStridePrefetcherUsefulCounting(t *testing.T) {
	p := newStridePrefetcher(1)
	p.markIssued(42)
	p.observeHit(42)
	p.observeHit(42) // second hit must not double-count
	if p.Issued != 1 || p.Useful != 1 {
		t.Fatalf("issued=%d useful=%d", p.Issued, p.Useful)
	}
}

func TestPrefetchEndToEnd(t *testing.T) {
	// A streaming workload with a prefetching core should report issued
	// and useful prefetches, and still satisfy system invariants.
	eng, sys := engineAndSystem(t)
	cfg := DefaultConfig()
	cfg.PrefetchDegree = 2
	c := New(0, cfg, eng, sys, strideSource{}, 20000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	issued, useful := c.PrefetchStats()
	if issued == 0 {
		t.Fatal("no prefetches issued on a streaming source")
	}
	if useful == 0 {
		t.Fatal("no prefetch was ever useful on a pure stream")
	}
	if useful > issued {
		t.Fatalf("useful %d > issued %d", useful, issued)
	}
	if err := sys.Sub().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	eng, sys := engineAndSystem(t)
	c := New(0, DefaultConfig(), eng, sys, strideSource{}, 2000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if issued, _ := c.PrefetchStats(); issued != 0 {
		t.Fatalf("prefetches issued with degree 0: %d", issued)
	}
}

// engineAndSystem builds a fresh engine + shared-NUCA system for
// prefetch tests.
func engineAndSystem(t *testing.T) (*sim.Engine, arch.System) {
	t.Helper()
	return sim.NewEngine(), testSystem(t)
}

// strideSource emits a pure unit-stride data stream (one load per
// instruction), the best case for a stride prefetcher.
type strideSource struct{ n mem.Line }

func (s strideSource) Next() workload.Instr {
	strideCursor++
	return workload.Instr{IsMem: true, Data: 0x4000_0000 + strideCursor}
}

// strideCursor advances the shared stream position (tests are
// single-goroutine; each test uses a fresh system so interleaving is
// irrelevant to the assertions).
var strideCursor mem.Line
