package cpu

import (
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

func testSystem(t *testing.T) arch.System {
	t.Helper()
	cfg := arch.ScaledConfig()
	sys, err := arch.Build("shared", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testStream(t *testing.T, core int) *workload.Stream {
	t.Helper()
	spec, ok := workload.ByName("apache")
	if !ok {
		t.Fatal("apache missing")
	}
	cfg := arch.ScaledConfig()
	return spec.Bind(cfg.L2Lines(), cfg.L1ILines(), 1).Streams[core]
}

func TestCoreRunsToTarget(t *testing.T) {
	eng := sim.NewEngine()
	sys := testSystem(t)
	c := New(0, DefaultConfig(), eng, sys, testStream(t, 0), 5000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if c.Retired() < 5000 {
		t.Fatalf("retired %d, want >= 5000", c.Retired())
	}
	if c.Time() == 0 {
		t.Fatal("clock did not advance")
	}
	if ipc := c.IPC(); ipc <= 0 || ipc > float64(DefaultConfig().IssueWidth) {
		t.Fatalf("IPC = %g outside (0, issue width]", ipc)
	}
}

func TestCoreIPCBoundedByIssueWidth(t *testing.T) {
	// Even a perfectly cache-resident stream cannot exceed issue width.
	eng := sim.NewEngine()
	sys := testSystem(t)
	c := New(0, Config{IssueWidth: 2, Window: 64, MSHRs: 16, Quantum: 128, L1HitCycles: 3},
		eng, sys, testStream(t, 0), 3000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if c.IPC() > 2.0 {
		t.Fatalf("IPC %g exceeds issue width 2", c.IPC())
	}
}

func TestCoreWarmupWindow(t *testing.T) {
	eng := sim.NewEngine()
	sys := testSystem(t)
	c := New(0, DefaultConfig(), eng, sys, testStream(t, 0), 6000)
	c.SetWarmup(3000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if !c.Warmed() {
		t.Fatal("warmup boundary never crossed")
	}
	cycles, instrs := c.MeasuredWindow()
	if instrs < 3000 || instrs > 3100 {
		t.Fatalf("measured instructions = %d, want ~3000", instrs)
	}
	if cycles == 0 || cycles >= c.Time() {
		t.Fatalf("measured cycles = %d of total %d", cycles, c.Time())
	}
	if mi := c.MeasuredIPC(); mi <= 0 {
		t.Fatalf("MeasuredIPC = %g", mi)
	}
}

func TestCoreWithoutWarmupUsesFullRun(t *testing.T) {
	eng := sim.NewEngine()
	sys := testSystem(t)
	c := New(0, DefaultConfig(), eng, sys, testStream(t, 0), 2000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if c.Warmed() {
		t.Fatal("unexpected warmup boundary")
	}
	if c.MeasuredIPC() != c.IPC() {
		t.Fatal("MeasuredIPC should fall back to full-run IPC")
	}
}

func TestCoreStallsAccumulate(t *testing.T) {
	eng := sim.NewEngine()
	sys := testSystem(t)
	c := New(0, DefaultConfig(), eng, sys, testStream(t, 0), 20000)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if c.Stalls == 0 {
		t.Fatal("no stall cycles despite L2/memory misses")
	}
	if c.Stalls >= c.Time() {
		t.Fatalf("stalls %d >= total time %d", c.Stalls, c.Time())
	}
}

func TestMultipleCoresProgressTogether(t *testing.T) {
	eng := sim.NewEngine()
	sys := testSystem(t)
	spec, _ := workload.ByName("apache")
	cfg := arch.ScaledConfig()
	bound := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), 7)
	var cores []*Core
	for i := 0; i < 8; i++ {
		c := New(i, DefaultConfig(), eng, sys, bound.Streams[i], 3000)
		c.Start()
		cores = append(cores, c)
	}
	eng.RunUntil(0, func() bool {
		for _, c := range cores {
			if !c.Done {
				return false
			}
		}
		return true
	})
	var minT, maxT sim.Cycle
	for i, c := range cores {
		if c.Retired() < 3000 {
			t.Fatalf("core %d retired %d", i, c.Retired())
		}
		if i == 0 || c.Time() < minT {
			minT = c.Time()
		}
		if c.Time() > maxT {
			maxT = c.Time()
		}
	}
	// Same workload on all cores: completion times should be comparable
	// (loose 3x bound; they contend for shared resources).
	if maxT > 3*minT {
		t.Fatalf("cores diverged: %d vs %d cycles", minT, maxT)
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.IssueWidth != 4 || cfg.Window != 64 || cfg.MSHRs != 16 {
		t.Fatalf("core config %+v does not match Table 2", cfg)
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	eng := sim.NewEngine()
	sys := testSystem(t)
	c := New(0, Config{}, eng, sys, testStream(t, 0), 100)
	c.Start()
	eng.RunUntil(0, func() bool { return c.Done })
	if c.Retired() < 100 {
		t.Fatal("zero-value config core made no progress")
	}
}
