package cpu

import "espnuca/internal/mem"

// stridePrefetcher is a classic per-core stride predictor: it watches the
// L1-miss stream, and when consecutive misses to the same region step by
// a constant stride it issues non-blocking prefetches ahead of the
// stream. Prefetches run the full L2/coherence/NoC path (they consume
// real bandwidth and can displace real data) but never stall the core.
//
// The paper's system has no prefetcher; this is an opt-in extension
// (Config.PrefetchDegree > 0) used to study how the NUCA organizations
// interact with prefetch traffic.
type stridePrefetcher struct {
	entries [prefetchEntries]strideEntry
	degree  int

	// Issued and Useful count prefetches sent and prefetched lines that
	// subsequently saw demand hits.
	Issued, Useful uint64

	inflight map[mem.Line]struct{}
}

type strideEntry struct {
	valid    bool
	tag      uint64
	last     mem.Line
	stride   int64
	confirms uint8
}

const (
	prefetchEntries = 16
	// regionBits groups misses into 64 KB regions (1024 lines) so
	// independent streams train independent entries.
	regionBits = 10
	// confirmThreshold is how many consecutive equal strides are needed
	// before prefetching begins.
	confirmThreshold = 2
)

func newStridePrefetcher(degree int) *stridePrefetcher {
	return &stridePrefetcher{degree: degree, inflight: make(map[mem.Line]struct{}, 64)}
}

// observeMiss trains the predictor with a demand miss and returns the
// lines to prefetch (possibly none).
func (p *stridePrefetcher) observeMiss(line mem.Line) []mem.Line {
	region := uint64(line) >> regionBits
	e := &p.entries[region%prefetchEntries]
	if !e.valid || e.tag != region {
		*e = strideEntry{valid: true, tag: region, last: line}
		return nil
	}
	stride := int64(line) - int64(e.last)
	e.last = line
	if stride == 0 {
		return nil
	}
	if stride != e.stride {
		e.stride = stride
		e.confirms = 0
		return nil
	}
	if e.confirms < confirmThreshold {
		e.confirms++
		if e.confirms < confirmThreshold {
			return nil
		}
	}
	out := make([]mem.Line, 0, p.degree)
	next := int64(line)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		l := mem.Line(next)
		if _, dup := p.inflight[l]; dup {
			continue
		}
		out = append(out, l)
	}
	return out
}

// markIssued records an in-flight prefetch.
func (p *stridePrefetcher) markIssued(line mem.Line) {
	p.Issued++
	p.inflight[line] = struct{}{}
	if len(p.inflight) > 4096 {
		p.inflight = make(map[mem.Line]struct{}, 64)
	}
}

// observeHit credits a demand access that found a prefetched line.
func (p *stridePrefetcher) observeHit(line mem.Line) {
	if _, ok := p.inflight[line]; ok {
		p.Useful++
		delete(p.inflight, line)
	}
}
