package cpu

// Ported (sharded) execution. When a MemPort is attached, the core runs
// the same micro-architectural model as slice() but as a resumable state
// machine: every memory request is enqueued on the port instead of being
// resolved synchronously, and whenever a back-pressure decision needs a
// completion cycle that has not been resolved yet, the core suspends —
// returns to the shard's event loop without rescheduling itself — until
// the sharded runner's barrier phase resolves all outstanding requests
// and resumes it.
//
// Equivalence with the serial path. Suspension is purely host-side: it
// mutates no simulated state (localTime, Stalls, retirement, the miss
// set), and on resume every decision is recomputed from the now-complete
// miss set with the exact predicates slice() uses. Requests that the
// serial engine would already have reaped (done <= localTime) but that
// were still unresolved here merely trigger a suspend/resume round after
// which waitOldest removes them without advancing time — the fixpoint is
// the state slice() reaches directly. Given identical completion cycles
// for identical requests, the two paths retire the same instructions at
// the same local cycles with the same stall accounting.

import (
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// sliceEventP begins a new scheduler slice on the ported path; it is the
// event each yield schedules (the ported analogue of slice()).
func (c *Core) sliceEventP() {
	if c.Done {
		return
	}
	c.sliceStart = c.localTime
	c.sliceN = 0
	c.runP()
}

// resumeP re-enters the state machine after the runner resolved this
// core's outstanding requests; slice bookkeeping is preserved so the
// interrupted slice continues under its original skew budget.
func (c *Core) resumeP() {
	c.runP()
}

// runP advances the state machine until the core yields (end of slice),
// suspends (unresolved miss), or finishes draining.
func (c *Core) runP() {
	sub := c.sys.Sub()
	for {
		switch c.stage {
		case stageTop:
			if c.sliceN >= c.cfg.Quantum || c.localTime > c.sliceStart+maxSliceSkew {
				// Yield: reschedule at the core's local time, exactly like
				// the serial slice, so shard-local cores stay loosely
				// synchronized. After a barrier resume the shard engine may
				// already sit past this core's local time; the clamp is
				// host-side only — slice decisions key off localTime, never
				// the engine clock.
				at := c.localTime
				if now := c.eng.Now(); now > at {
					at = now
				}
				c.eng.At(at, c.sliceEventP)
				return
			}
			if c.retired >= c.target {
				c.Done = true
				c.stage = stageDrain
				continue
			}
			c.reapCompleted()
			c.in = c.stream.Next()
			c.stage = stageFetch

		case stageFetch:
			if c.in.HasFetch {
				if !sub.L1.Lookup(c.ID, c.in.Fetch, false, true) {
					c.handleMissP(c.in.Fetch, false, true)
					c.stage = stageFetchBP
					continue
				}
				c.bufHits++
			}
			c.stage = stageData

		case stageFetchBP:
			if c.backpressureP() {
				return // suspended
			}
			c.stage = stageData

		case stageData:
			if c.in.IsMem {
				if sub.L1.Lookup(c.ID, c.in.Data, c.in.Write, false) {
					c.bufHits++
					if c.pf != nil {
						c.pf.observeHit(c.in.Data)
					}
				} else {
					c.handleMissP(c.in.Data, c.in.Write, false)
					c.stage = stageDataBP
					continue
				}
			}
			c.stage = stageRetire

		case stageDataBP:
			if c.backpressureP() {
				return // suspended
			}
			if c.pf != nil {
				c.prefetchP(c.in.Data)
			}
			c.stage = stageRetire

		case stageRetire:
			c.retired++
			if !c.warmed && c.warmTarget > 0 && c.retired >= c.warmTarget {
				c.warmed = true
				c.warmTime = c.localTime
			}
			c.slot++
			if c.slot >= c.cfg.IssueWidth {
				c.slot = 0
				c.localTime++
			}
			c.sliceN++
			c.stage = stageTop

		case stageDrain:
			for len(c.misses) > 0 || len(c.pending) > 0 {
				if len(c.pending) > 0 {
					c.suspended = true
					return
				}
				c.waitOldest()
			}
			return // target reached, all misses drained; no reschedule
		}
	}
}

// handleMissP is the ported handleMiss: the access is enqueued with its
// at-issue L1 presence (the service needs it for upgrade classification,
// since the fill below runs before the access is serviced), the L1 fill
// happens immediately so subsequent shard-local lookups see the line, and
// any displaced dirty line rides along with the request.
func (c *Core) handleMissP(line mem.Line, write, ifetch bool) {
	sub := c.sys.Sub()
	present := sub.L1.Has(c.ID, line)
	t := c.port.Access(c.localTime, line, write, present, true)
	c.pending = append(c.pending, pendingMiss{ticket: t, instr: c.retired})
	wb := sub.L1.Fill(c.ID, line, write, ifetch)
	if wb.Valid {
		c.port.WriteBackAfter(t, wb.Line, wb.Dirty)
	}
}

// prefetchP is the ported prefetch: fire-and-forget requests, no MSHR
// entries, no back-pressure — mirroring the serial path.
func (c *Core) prefetchP(miss mem.Line) {
	sub := c.sys.Sub()
	for _, l := range c.pf.observeMiss(miss) {
		if sub.L1.Has(c.ID, l) {
			continue
		}
		c.pf.markIssued(l)
		t := c.port.Access(c.localTime, l, false, false, false)
		wb := sub.L1.Fill(c.ID, l, false, false)
		if wb.Valid {
			c.port.WriteBackAfter(t, wb.Line, wb.Dirty)
		}
	}
}

// backpressureP applies the serial engine's MSHR/window rules over the
// union of resolved and unresolved outstanding misses. It reports true
// when the core suspended: releasing back-pressure would require a
// completion cycle only the barrier service knows.
func (c *Core) backpressureP() bool {
	for {
		total := len(c.misses) + len(c.pending)
		if total >= c.cfg.MSHRs ||
			(total > 0 && c.retired-c.oldestInstrP() >= uint64(c.cfg.Window)) {
			if len(c.pending) > 0 {
				c.suspended = true
				return true
			}
			c.waitOldest()
			continue
		}
		return false
	}
}

// oldestInstrP returns the minimum issuing-instruction index across the
// resolved heap and the unresolved pending set.
func (c *Core) oldestInstrP() uint64 {
	min := c.misses.oldestInstr()
	for _, p := range c.pending {
		if p.instr < min {
			min = p.instr
		}
	}
	return min
}

// Resolve delivers the completion cycle of a demand request issued this
// window, moving it from the pending set into the miss heap. The runner
// calls it from the barrier phase.
func (c *Core) Resolve(ticket uint64, done sim.Cycle) {
	for i := range c.pending {
		if c.pending[i].ticket == ticket {
			c.misses.push(missEntry{done: done, instr: c.pending[i].instr})
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
	panic("cpu: Resolve for unknown ticket")
}

// Suspended reports whether the core is parked on an unresolved miss.
func (c *Core) Suspended() bool { return c.suspended }

// ScheduleResume schedules the suspended core's continuation on its shard
// engine; a no-op for cores that are not suspended. The runner calls it
// after the barrier phase has resolved every outstanding request.
func (c *Core) ScheduleResume() {
	if !c.suspended {
		return
	}
	c.suspended = false
	at := c.localTime
	if now := c.eng.Now(); now > at {
		at = now
	}
	c.eng.At(at, c.resumeP)
}

// FlushL1Hits moves the parallel phase's buffered L1-hit count into the
// substrate decomposition; the runner calls it at every barrier, before
// any snapshot that reads the counters.
func (c *Core) FlushL1Hits() {
	if c.bufHits > 0 {
		c.sys.Sub().RecordL1Hits(c.bufHits, c.cfg.L1HitCycles)
		c.bufHits = 0
	}
}
