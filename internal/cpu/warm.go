package cpu

import (
	"espnuca/internal/arch"
	"espnuca/internal/mem"
	"espnuca/internal/workload"
)

// warmQuantum is the per-core round-robin granularity of the functional
// warmup. It mirrors the detailed scheduler's default slice so that the
// interleaving of the cores' reference streams — which determines how
// shared lines acquire their private/shared status and how the cores
// compete for L2 sets — is comparable between the two modes.
const warmQuantum = 256

// FunctionalWarm retires n instructions from each non-nil stream against
// sys without the event engine: every L1 lookup, fill, L2 transaction,
// directory token movement and adaptive-mechanism update runs through the
// same code paths as detailed simulation, but no events are scheduled and
// no core-side back-pressure (MSHR/window limits) is modelled. The caller
// must put the substrate into functional mode first
// (arch.Substrate.SetFunctional), both so the fast-forward is cheap and
// so it leaves no resource bookings behind for the detailed window that
// follows. Stream c drives core c.
func FunctionalWarm(sys arch.System, streams []*workload.Stream, n uint64) {
	sub := sys.Sub()
	for base := uint64(0); base < n; base += warmQuantum {
		q := uint64(warmQuantum)
		if base+q > n {
			q = n - base
		}
		for c, st := range streams {
			if st == nil {
				continue
			}
			for i := uint64(0); i < q; i++ {
				in := st.Next()
				if in.HasFetch && !sub.L1.Lookup(c, in.Fetch, false, true) {
					warmMiss(sys, sub, c, in.Fetch, false, true)
				}
				if in.IsMem && !sub.L1.Lookup(c, in.Data, in.Write, false) {
					warmMiss(sys, sub, c, in.Data, in.Write, false)
				}
			}
		}
	}
}

// warmMiss resolves an L1 miss functionally: the L2 transaction and the
// L1 fill (plus any displaced write-back) run at time zero.
func warmMiss(sys arch.System, sub *arch.Substrate, c int, line mem.Line, write, ifetch bool) {
	sys.Access(0, c, line, write)
	wb := sub.L1.Fill(c, line, write, ifetch)
	if wb.Valid {
		sys.WriteBack(0, c, wb.Line, wb.Dirty)
	}
}
