package cpu

import (
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/workload"
)

// TestFunctionalWarmPopulatesState drives the functional fast-forward and
// checks it does what sampled execution needs: cache state advances (the
// L1s see hits and misses, the L2 holds lines) while the substrate's
// invariants — bank counters, residency bookkeeping, token conservation —
// hold exactly as after detailed simulation.
func TestFunctionalWarmPopulatesState(t *testing.T) {
	for _, archName := range []string{"shared", "esp-nuca", "private"} {
		cfg := arch.ScaledConfig()
		cfg.CheckTokens = true
		sys, err := arch.Build(archName, cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec, ok := workload.ByName("apache")
		if !ok {
			t.Fatal("no apache workload")
		}
		bound := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), 1)

		sub := sys.Sub()
		sub.SetFunctional(true)
		FunctionalWarm(sys, bound.Streams[:cfg.Cores], 20_000)
		sub.SetFunctional(false)

		if err := sub.CheckInvariants(); err != nil {
			t.Fatalf("%s: substrate invariants broken after functional warm: %v", archName, err)
		}
		if dh, dm, _, _ := sub.L1.Totals(); dh == 0 || dm == 0 {
			t.Errorf("%s: L1 saw no traffic (hits %d, misses %d)", archName, dh, dm)
		}
		var l2Blocks int
		for _, b := range sub.Bank {
			for i := 0; i < b.Sets(); i++ {
				for _, blk := range b.Set(i).Blocks {
					if blk.Valid {
						l2Blocks++
					}
				}
			}
		}
		if l2Blocks == 0 {
			t.Errorf("%s: L2 empty after functional warm", archName)
		}
		// Functional mode must not advance simulated time: every timing
		// sink returns its input cycle, so no DRAM access is counted and
		// every decomposition sample lands with zero latency.
		if sub.DRAM.Reads != 0 || sub.DRAM.Writes != 0 {
			t.Errorf("%s: functional warm counted DRAM traffic (%d reads, %d writes)",
				archName, sub.DRAM.Reads, sub.DRAM.Writes)
		}
		for l := arch.Level(0); l < arch.NumLevels; l++ {
			if sub.Latency[l] != 0 {
				t.Errorf("%s: functional warm accumulated %d latency cycles at level %d",
					archName, sub.Latency[l], l)
			}
		}
	}
}
