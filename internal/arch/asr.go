package arch

import (
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// ASR is Adaptive Selective Replication (Beckmann et al.): the private
// Tiled organization plus controlled replication of remotely-served
// shared data into the local tile. Each core adapts its replication
// probability over a discrete set of levels by comparing, per epoch, the
// estimated benefit of replication (remote-hit latency saved by local
// replica hits) against its cost (extra off-chip misses attributed to
// capacity consumed by replicas, estimated from recently-evicted tags).
type ASR struct {
	t *Tiled

	levels []float64
	level  []int // per core index into levels

	// Per-core epoch counters.
	replicaHits []uint64
	victimHits  []uint64 // misses that hit the recently-evicted filter
	epochEvents []uint64

	// recently-evicted tag filter per core (cost estimator).
	evicted []map[mem.Line]struct{}

	epoch uint64

	// LevelChanges counts adaptation steps (observability).
	LevelChanges uint64
}

// NewASR builds the ASR architecture.
func NewASR(cfg Config) (*ASR, error) {
	t, err := NewTiled(cfg)
	if err != nil {
		return nil, err
	}
	a := &ASR{
		t:      t,
		levels: []float64{0, 0.25, 0.5, 0.75, 1},
		epoch:  4096,
	}
	n := cfg.Cores
	a.level = make([]int, n)
	a.replicaHits = make([]uint64, n)
	a.victimHits = make([]uint64, n)
	a.epochEvents = make([]uint64, n)
	a.evicted = make([]map[mem.Line]struct{}, n)
	for c := 0; c < n; c++ {
		a.level[c] = 2 // start at 0.5
		a.evicted[c] = make(map[mem.Line]struct{})
	}
	t.replicate = a.shouldReplicate
	return a, nil
}

// Name implements System.
func (a *ASR) Name() string { return "asr" }

// Sub implements System.
func (a *ASR) Sub() *Substrate { return a.t.s }

func (a *ASR) shouldReplicate(c int) bool {
	return a.t.s.RNG.Bool(a.levels[a.level[c]])
}

// Access implements System, layering the benefit/cost bookkeeping over
// the Tiled access path.
func (a *ASR) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	s := a.t.s
	// Benefit estimation: a local L2 hit on a line this core replicated
	// earlier would have been a remote hit without ASR. We approximate by
	// observing local hits in general vs the eviction filter.
	bank, set := s.Map.Private(line, c)
	_ = set
	res := a.t.Access(at, c, line, write)

	switch res.Level {
	case LocalL2:
		if _, ok := a.evicted[c][line]; !ok {
			// Count only lines that plausibly exist because of
			// replication (the line's home tile is another core's).
			if s.Map.CoreOfBank(bank) == c {
				a.replicaHits[c]++
			}
		}
	case OffChip:
		if _, ok := a.evicted[c][line]; ok {
			a.victimHits[c]++ // would have hit without replica pressure
			delete(a.evicted[c], line)
		}
	}

	a.epochEvents[c]++
	if a.epochEvents[c] >= a.epoch {
		a.adapt(c)
	}
	return res
}

// adapt moves core c's replication level toward the side with the better
// benefit/cost balance and resets the epoch.
func (a *ASR) adapt(c int) {
	// Remote hit costs ~2 extra hops (~10 cycles) vs a local hit; an
	// off-chip miss costs ~memory latency (~300). The standard ASR
	// comparison weighs the two.
	benefit := float64(a.replicaHits[c]) * 10
	cost := float64(a.victimHits[c]) * 300
	old := a.level[c]
	if benefit > cost*1.2 && a.level[c] < len(a.levels)-1 {
		a.level[c]++
	} else if cost > benefit*1.2 && a.level[c] > 0 {
		a.level[c]--
	}
	if a.level[c] != old {
		a.LevelChanges++
	}
	a.replicaHits[c] = 0
	a.victimHits[c] = 0
	a.epochEvents[c] = 0
	// Keep the filter bounded.
	if len(a.evicted[c]) > 1<<14 {
		a.evicted[c] = make(map[mem.Line]struct{})
	}
}

// WriteBack implements System; evictions feed the cost filter.
func (a *ASR) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	a.t.WriteBack(at, c, line, dirty)
}

// NoteEviction records an L2 eviction in core c's cost filter. The Tiled
// base calls dropEvicted internally, so ASR approximates by snooping its
// own L1 write-back victims; the filter needs only a recency signal.
func (a *ASR) NoteEviction(c int, line mem.Line) {
	a.evicted[c][line] = struct{}{}
}

// Levels returns each core's current replication probability.
func (a *ASR) Levels() []float64 {
	out := make([]float64, len(a.level))
	for c, l := range a.level {
		out[c] = a.levels[l]
	}
	return out
}

// FootprintPrepare implements Footprinter.
func (a *ASR) FootprintPrepare(*FootprintCtx, FootprintReq) {}

// Footprint implements Footprinter: ASR's replication decision draws from
// the substrate RNG, whose draw order is global state — every transaction
// conflicts with every other, so the barrier falls back to exact serial
// servicing.
func (a *ASR) Footprint(*FootprintCtx, FootprintReq) Footprint {
	return Footprint{Global: true}
}

var _ System = (*ASR)(nil)
var _ Footprinter = (*ASR)(nil)
