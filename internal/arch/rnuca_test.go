package arch

import (
	"testing"

	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

func TestRNUCAPrivatePagePlacesLocally(t *testing.T) {
	sys := build(t, "r-nuca").(*RNUCA)
	s := sys.Sub()
	r := sys.Access(0, 3, 100, false)
	if r.Level != OffChip {
		t.Fatalf("cold = %v", r.Level)
	}
	// The block must sit in core 3's slice (private-page placement).
	pbank, _ := s.Map.Private(100, 3)
	if _, ok := s.l2Find(100, pbank); !ok {
		t.Fatal("private-page fill not in owner's slice")
	}
	r2 := sys.Access(r.Done, 3, 100, false)
	if r2.Level != LocalL2 {
		t.Fatalf("owner re-access = %v, want LocalL2", r2.Level)
	}
}

func TestRNUCAReclassifiesWholePage(t *testing.T) {
	sys := build(t, "r-nuca").(*RNUCA)
	s := sys.Sub()
	// Core 0 touches two lines of the same 64-line page.
	r := sys.Access(0, 0, 64, false)
	r2 := sys.Access(r.Done, 0, 65, false)
	// Core 5 touches one line: the whole page flips to shared.
	r3 := sys.Access(r2.Done, 5, 64, false)
	if sys.Reclassifications != 1 {
		t.Fatalf("Reclassifications = %d", sys.Reclassifications)
	}
	// The old private placements are flushed; refills go to home banks.
	pbank, _ := s.Map.Private(65, 0)
	if _, ok := s.l2Find(65, pbank); ok {
		t.Fatal("stale private placement after page reclassification")
	}
	// Drop the line from every L1 (otherwise the next access is a
	// perfectly legal L1-to-L1 intervention) and re-touch.
	for c := 0; c < 8; c++ {
		s.L1.Invalidate(c, 65)
		s.Dir.L1Evict(65, c, false)
	}
	r4 := sys.Access(r3.Done, 5, 65, false)
	if r4.Level != OffChip {
		t.Fatalf("post-flush access = %v, want OffChip", r4.Level)
	}
	hbank, _ := s.Map.Shared(65)
	if _, ok := s.l2Find(65, hbank); !ok {
		t.Fatal("post-reclassification fill not at home bank")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRNUCAInstructionPagesStayLocal(t *testing.T) {
	sys := build(t, "r-nuca").(*RNUCA)
	// Mark the page as an instruction page via classification, then have
	// two cores touch it: no reclassification (instruction pages
	// replicate rather than shared-ify).
	p := sys.classify(128, 0, true)
	if !p.instr {
		t.Fatal("ifetch did not mark instruction page")
	}
	sys.classify(128, 5, false)
	if p.shared {
		t.Fatal("instruction page flipped to shared")
	}
	if sys.Reclassifications != 0 {
		t.Fatalf("Reclassifications = %d", sys.Reclassifications)
	}
	// Placement for each core is its own slice.
	b0, _ := sys.placement(128, 0, p)
	b5, _ := sys.placement(128, 5, p)
	if sys.Sub().Map.CoreOfBank(b0) != 0 || sys.Sub().Map.CoreOfBank(b5) != 5 {
		t.Fatalf("instruction placements %d,%d not per-cluster", b0, b5)
	}
}

func TestRNUCAUnderRandomTraffic(t *testing.T) {
	cfg := testConfig()
	sys, err := NewRNUCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	rng := sim.NewRNG(17)
	var tm sim.Cycle
	for op := 0; op < 4000; op++ {
		c := rng.Intn(8)
		line := mem.Line(rng.Intn(2048))
		write := rng.Bool(0.3)
		if s.L1.Lookup(c, line, write, false) {
			continue
		}
		res := sys.Access(tm, c, line, write)
		wb := s.L1.Fill(c, line, write, false)
		if wb.Valid {
			sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
		}
		tm = res.Done
		if op%512 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if sys.Reclassifications == 0 {
		t.Fatal("random multi-core traffic never reclassified a page")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
