package arch

import (
	"testing"

	"espnuca/internal/core"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// --- QoS (per-priority d, paper S5.2 future work) ---

func TestQoSValidation(t *testing.T) {
	q := core.DefaultQoS()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := core.QoS{DFor: map[core.PriorityClass]uint{}}
	if bad.Validate() == nil {
		t.Error("missing class mapping accepted")
	}
	bad = core.QoS{DFor: map[core.PriorityClass]uint{core.Latency: 0, core.Standard: 3, core.Bulk: 2}}
	bad.ClassOf[0] = core.Latency
	if bad.Validate() == nil {
		t.Error("d=0 accepted")
	}
}

func TestQoSClassNames(t *testing.T) {
	for _, c := range []core.PriorityClass{core.Latency, core.Standard, core.Bulk} {
		if c.String() == "" {
			t.Errorf("class %d unnamed", c)
		}
	}
}

func TestQoSDForCore(t *testing.T) {
	q := core.DefaultQoS()
	q.ClassOf[0] = core.Latency
	q.ClassOf[1] = core.Bulk
	if q.DForCore(0) != 4 || q.DForCore(1) != 2 || q.DForCore(2) != 3 {
		t.Fatalf("d per core = %d,%d,%d", q.DForCore(0), q.DForCore(1), q.DForCore(2))
	}
	if q.DForCore(-1) != 3 || q.DForCore(99) != 3 {
		t.Error("out-of-range core does not fall back to standard")
	}
}

func TestQoSBuildsAndRuns(t *testing.T) {
	cfg := testConfig()
	cfg.QoS = core.DefaultQoS()
	cfg.QoS.ClassOf[0] = core.Latency
	cfg.QoS.ClassOf[7] = core.Bulk
	sys, err := Build("esp-nuca-qos", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	rng := sim.NewRNG(13)
	var tm sim.Cycle
	for op := 0; op < 3000; op++ {
		c := rng.Intn(8)
		line := mem.Line(rng.Intn(4096))
		if s.L1.Lookup(c, line, false, false) {
			continue
		}
		res := sys.Access(tm, c, line, false)
		wb := s.L1.Fill(c, line, false, false)
		if wb.Valid {
			sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
		}
		tm = res.Done
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQoSRejectsInvalidPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.QoS = core.QoS{DFor: map[core.PriorityClass]uint{}}
	if _, err := Build("esp-nuca-qos", cfg); err == nil {
		t.Fatal("invalid QoS policy accepted")
	}
}

// TestQoSBulkDonatesMoreThanLatency checks the mechanism end to end: a
// bank whose owner is Bulk-class (large d) should admit more helping
// blocks than a Latency-class bank under identical pressure.
func TestQoSBulkDonatesMoreThanLatency(t *testing.T) {
	helpingIn := func(cls core.PriorityClass) int {
		cfg := testConfig()
		cfg.QoS = core.DefaultQoS()
		cfg.QoS.ClassOf[0] = cls
		sys, err := NewESPNUCAQoS(cfg, cfg.QoS)
		if err != nil {
			t.Fatal(err)
		}
		s := sys.Sub()
		rng := sim.NewRNG(21)
		var tm sim.Cycle
		// Mixed pressure: core 0's own private lines (first-class) against
		// remote cores' shared lines that spawn replicas/victims landing in
		// core 0's banks.
		for op := 0; op < 20000; op++ {
			var c int
			var line mem.Line
			if rng.Bool(0.5) {
				c = 0
				line = mem.Line(rng.Intn(2048))*4 + 0 // core 0 private bank group
			} else {
				c = 1 + rng.Intn(7)
				line = mem.Line(rng.Intn(2048))
			}
			if s.L1.Lookup(c, line, false, false) {
				continue
			}
			res := sys.Access(tm, c, line, false)
			wb := s.L1.Fill(c, line, false, false)
			if wb.Valid {
				sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
			}
			tm = res.Done
		}
		// Count helping blocks resident in core 0's banks.
		lo, hi := s.Map.PrivateBanks(0)
		n := 0
		for b := lo; b < hi; b++ {
			for si := 0; si < s.Bank[b].Sets(); si++ {
				n += s.Bank[b].Set(si).HelpCount
			}
		}
		return n
	}
	lat := helpingIn(core.Latency)
	bulk := helpingIn(core.Bulk)
	if bulk < lat {
		t.Fatalf("bulk-class bank holds %d helping blocks, latency-class %d; want bulk >= latency", bulk, lat)
	}
}

// --- Victim Replication ---

func TestVRReplicatesOnRemoteHomeEviction(t *testing.T) {
	sys := build(t, "victim-replication").(*VictimReplication)
	s := sys.Sub()
	// Find a line whose home bank is remote to core 0.
	var line mem.Line
	for l := mem.Line(0); ; l++ {
		hb, _ := s.Map.Shared(l)
		if s.NodeOfBank(hb) != s.NodeOfCore(0) {
			line = l
			break
		}
	}
	r := sys.Access(0, 0, line, false)
	s.L1.Fill(0, line, false, false)
	s.L1.Invalidate(0, line)
	sys.WriteBack(r.Done, 0, line, false)
	if sys.ReplicasMade == 0 {
		t.Fatal("no replica made on remote-homed eviction")
	}
	// Re-access: local replica hit.
	r2 := sys.Access(r.Done+100, 0, line, false)
	if r2.Level != LocalL2 {
		t.Fatalf("post-VR access = %v, want LocalL2", r2.Level)
	}
	if sys.ReplicaHits == 0 {
		t.Fatal("replica hit not counted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVRNoReplicaForLocalHome(t *testing.T) {
	sys := build(t, "victim-replication").(*VictimReplication)
	s := sys.Sub()
	var line mem.Line
	for l := mem.Line(0); ; l++ {
		hb, _ := s.Map.Shared(l)
		if s.NodeOfBank(hb) == s.NodeOfCore(0) {
			line = l
			break
		}
	}
	r := sys.Access(0, 0, line, false)
	s.L1.Fill(0, line, false, false)
	s.L1.Invalidate(0, line)
	sys.WriteBack(r.Done, 0, line, false)
	if sys.ReplicasMade != 0 {
		t.Fatal("replica made despite local home")
	}
}

func TestVRWriteKillsReplica(t *testing.T) {
	sys := build(t, "victim-replication").(*VictimReplication)
	s := sys.Sub()
	var line mem.Line
	for l := mem.Line(0); ; l++ {
		hb, _ := s.Map.Shared(l)
		if s.NodeOfBank(hb) != s.NodeOfCore(0) {
			line = l
			break
		}
	}
	r := sys.Access(0, 0, line, false)
	s.L1.Fill(0, line, false, false)
	s.L1.Invalidate(0, line)
	sys.WriteBack(r.Done, 0, line, false)
	// A remote write must invalidate the replica too.
	sys.Access(r.Done+100, 5, line, true)
	pbank, _ := s.Map.Private(line, 0)
	if _, ok := s.l2Find(line, pbank); ok {
		t.Fatal("stale replica survived a remote GETX")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVRUnderRandomTraffic(t *testing.T) {
	cfg := testConfig()
	sys, err := NewVictimReplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	rng := sim.NewRNG(31)
	var tm sim.Cycle
	for op := 0; op < 4000; op++ {
		c := rng.Intn(8)
		line := mem.Line(rng.Intn(1024))
		write := rng.Bool(0.3)
		if s.L1.Lookup(c, line, write, false) {
			continue
		}
		res := sys.Access(tm, c, line, write)
		wb := s.L1.Fill(c, line, write, false)
		if wb.Valid {
			sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
		}
		tm = res.Done
		if op%512 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
