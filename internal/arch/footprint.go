package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
)

// This file implements the static conflict-footprint model behind the
// sharded engine's parallel barrier. A Footprint is a conservative
// superset of the shared state one barrier transaction (Access plus its
// optional trailing WriteBack) may touch; two transactions whose
// footprints are disjoint commute, so the barrier may service them
// concurrently while remaining bit-identical to serial execution.
//
// The resource spaces, one bit each:
//
//   - Banks (<=64): bit b conflates two things that share the same index
//     space on purpose — the L2 bank array b, and partition b of every
//     line-keyed shared table (the coherence directory, the substrate's
//     where/status maps, D-NUCA's lastReq). Partition(line) is
//     line & (Banks-1), the same bits the Shared mapping uses for a home
//     bank, so "touching line l's directory entry" and "touching l's home
//     bank" claim the same bit.
//   - Links (<=64): one bit per unidirectional mesh link
//     (noc.Mesh.LinkBit). A transaction claims the closure of DOR routes
//     between every pair of nodes it may message.
//   - Cores (<=32): bit c covers core c's L1 arrays, its L1 stat counters,
//     the substrate's per-core presence hint and scratch buffer. Every
//     footprint includes its own requester core, which also guarantees all
//     of one core's transactions land in the same conflict group.
//   - Chans (<=32): DRAM channel bit (block-interleaved).
//
// Global marks a transaction that may touch anything (ASR and CC draw
// from the substrate RNG, whose state orders every draw); one Global
// footprint collapses the barrier to a single group, i.e. exact serial
// servicing.
//
// Soundness leans on three facts, verified by the footprint-oracle test:
//
//  1. Exec-time L1 sharers of a line are a subset of its grouping-time
//     sharers plus cores whose own transactions this barrier mention the
//     line; fpSharers claims both, which also puts the mention cores'
//     nodes in the link closure (intervention paths to holders that did
//     not exist at grouping time).
//  2. Eviction victims inserted by a same-group transaction are covered by
//     the inserter's declared bits (occupant scans below), so a group's
//     union covers everything any serial-order interleaving of the group
//     touches.
//  3. Integer event counters are order-free sums (flag-gated atomics), so
//     their totals are deterministic regardless of which worker adds
//     first.
type Footprint struct {
	Banks  uint64
	Links  uint64
	Cores  uint32
	Chans  uint32
	Global bool
}

// Overlaps reports whether two footprints may touch common state.
func (f Footprint) Overlaps(g Footprint) bool {
	return f.Global || g.Global ||
		f.Banks&g.Banks != 0 || f.Links&g.Links != 0 ||
		f.Cores&g.Cores != 0 || f.Chans&g.Chans != 0
}

// FootprintReq describes one barrier transaction: an Access by Core for
// Line (Write selects GETX) followed, when WB is set, by a WriteBack of
// WBLine from the same core.
type FootprintReq struct {
	Core   int
	Line   mem.Line
	Write  bool
	WB     bool
	WBLine mem.Line
}

// Footprinter is implemented by architectures that can declare static
// footprints. FootprintPrepare is pass one over a barrier's requests:
// each request notes the (bank, set) pairs it may insert into (including,
// for ESP-NUCA, the depth-2 victim-spill homes of private occupants of
// those sets). Footprint is pass two: compute the request's footprint,
// consulting the context for the slim-hit guards. Both passes are
// strictly read-only on simulator state (Peek, never Lookup/State), so
// running them has no effect on the simulation — which is what keeps
// BarrierParallelism=1 bit-identical without even computing footprints.
type Footprinter interface {
	FootprintPrepare(ctx *FootprintCtx, r FootprintReq)
	Footprint(ctx *FootprintCtx, r FootprintReq) Footprint
}

// --- FootprintCtx: per-barrier scratch tables ---

// fpTable is a small open-addressed uint64-key table with O(1)
// generation-based reset, holding a small counter per key.
type fpTable struct {
	entries []fpTableEntry
	mask    uint64
	gen     uint32
	count   int
}

type fpTableEntry struct {
	key uint64
	gen uint32
	n   int32
}

func newFPTable(hint int) fpTable {
	cap := 16
	for cap < hint {
		cap *= 2
	}
	return fpTable{entries: make([]fpTableEntry, cap), mask: uint64(cap - 1), gen: 1}
}

func (t *fpTable) reset() {
	t.gen++
	if t.gen == 0 {
		clear(t.entries)
		t.gen = 1
	}
	t.count = 0
}

func mixKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// or ORs bits into key's value, inserting at zero if absent.
func (t *fpTable) or(key uint64, bits int32) {
	i := mixKey(key) & t.mask
	for {
		e := &t.entries[i]
		if e.gen != t.gen {
			if 4*(t.count+1) > 3*len(t.entries) {
				t.grow()
				t.or(key, bits)
				return
			}
			*e = fpTableEntry{key: key, gen: t.gen, n: bits}
			t.count++
			return
		}
		if e.key == key {
			e.n |= bits
			return
		}
		i = (i + 1) & t.mask
	}
}

// incr adds delta to key's counter, inserting at zero if absent.
func (t *fpTable) incr(key uint64, delta int32) {
	i := mixKey(key) & t.mask
	for {
		e := &t.entries[i]
		if e.gen != t.gen {
			if 4*(t.count+1) > 3*len(t.entries) {
				t.grow()
				t.incr(key, delta)
				return
			}
			*e = fpTableEntry{key: key, gen: t.gen, n: delta}
			t.count++
			return
		}
		if e.key == key {
			e.n += delta
			return
		}
		i = (i + 1) & t.mask
	}
}

// get returns key's counter (zero if absent).
func (t *fpTable) get(key uint64) int32 {
	i := mixKey(key) & t.mask
	for {
		e := &t.entries[i]
		if e.gen != t.gen {
			return 0
		}
		if e.key == key {
			return e.n
		}
		i = (i + 1) & t.mask
	}
}

func (t *fpTable) grow() {
	old := t.entries
	oldGen := t.gen
	t.entries = make([]fpTableEntry, 2*len(old))
	t.mask = uint64(len(t.entries) - 1)
	for i := range old {
		e := &old[i]
		if e.gen != oldGen {
			continue
		}
		j := mixKey(e.key) & t.mask
		for t.entries[j].gen == oldGen {
			j = (j + 1) & t.mask
		}
		t.entries[j] = *e
	}
}

// FootprintCtx carries the per-barrier scratch the two footprint passes
// share: how many requests mention each line, and the set of (bank, set)
// pairs any request may insert into. Reset is O(1); the tables are reused
// across barriers without allocation churn.
type FootprintCtx struct {
	lines   fpTable // line -> mention count
	cores   fpTable // line -> mask of mentioning cores
	inserts fpTable // bank<<32|set -> note count

	// own holds the current request's own insert notes while a slim-hit
	// guard runs (see BeginOwn); collect diverts NoteInsert into it.
	own     []uint64
	collect bool
}

// NewFootprintCtx returns an empty context.
func NewFootprintCtx() *FootprintCtx {
	return &FootprintCtx{
		lines:   newFPTable(1 << 10),
		cores:   newFPTable(1 << 10),
		inserts: newFPTable(1 << 10),
	}
}

func (c *FootprintCtx) reset() {
	c.lines.reset()
	c.cores.reset()
	c.inserts.reset()
	c.own = c.own[:0]
}

func (c *FootprintCtx) noteLine(l mem.Line, core int) {
	c.lines.incr(uint64(l), 1)
	c.cores.or(uint64(l), 1<<uint(core))
}

// Mentions returns how many requests in the current barrier mention l
// (as access line or write-back line).
func (c *FootprintCtx) Mentions(l mem.Line) int { return int(c.lines.get(uint64(l))) }

// MentionCores returns the mask of cores whose requests mention l this
// barrier. Any exec-time change to l's holders, copies, or status comes
// from one of these cores' transactions, so claiming them (fpSharers)
// covers intervention and invalidation paths to holders that did not
// exist at grouping time.
func (c *FootprintCtx) MentionCores(l mem.Line) uint32 { return uint32(c.cores.get(uint64(l))) }

func insertKey(bank, set int) uint64 { return uint64(bank)<<32 | uint64(uint32(set)) }

// NoteInsert records that some request may insert a block into
// (bank, set) this barrier. During CollectOwn it records into the
// current request's own-note buffer instead.
func (c *FootprintCtx) NoteInsert(bank, set int) {
	k := insertKey(bank, set)
	if c.collect {
		c.own = append(c.own, k)
		return
	}
	c.inserts.incr(k, 1)
}

// HasInsert reports whether any request may insert into (bank, set) this
// barrier, including the asking request itself.
func (c *FootprintCtx) HasInsert(bank, set int) bool { return c.inserts.get(insertKey(bank, set)) != 0 }

// BeginOwn/EndOwn bracket a re-run of one request's prepare pass with
// NoteInsert diverted into the own-note buffer, so OthersInsert can
// subtract the request's own possibilistic inserts. A request that takes
// a slim hit path performs none of its noted inserts, so only *other*
// requests' notes can evict its hit block — counting our own note would
// make every slim guard fail against the set the request itself targets.
func (c *FootprintCtx) BeginOwn() {
	c.own = c.own[:0]
	c.collect = true
}

// EndOwn ends a BeginOwn bracket.
func (c *FootprintCtx) EndOwn() { c.collect = false }

// OthersInsert reports whether a request other than the one whose
// prepare ran inside the last BeginOwn/EndOwn bracket may insert into
// (bank, set) this barrier. The slim-hit footprints require it false:
// such an insert could evict the grouping-time hit block, sending the
// transaction down a miss path the slim footprint does not cover.
func (c *FootprintCtx) OthersInsert(bank, set int) bool {
	k := insertKey(bank, set)
	n := c.inserts.get(k)
	for _, o := range c.own {
		if o == k {
			n--
		}
	}
	return n != 0
}

// ComputeFootprints runs the two footprint passes over one barrier's
// requests, filling out (len(out) must equal len(reqs)).
func ComputeFootprints(f Footprinter, ctx *FootprintCtx, reqs []FootprintReq, out []Footprint) {
	ctx.reset()
	for i := range reqs {
		ctx.noteLine(reqs[i].Line, reqs[i].Core)
		if reqs[i].WB {
			ctx.noteLine(reqs[i].WBLine, reqs[i].Core)
		}
	}
	for i := range reqs {
		f.FootprintPrepare(ctx, reqs[i])
	}
	for i := range reqs {
		out[i] = f.Footprint(ctx, reqs[i])
	}
}

// --- Substrate footprint support ---

// fpInit precomputes the footprint machinery: the geometry guards and the
// pairwise DOR link-mask table. Called from NewSubstrate.
func (s *Substrate) fpInit() {
	n := s.Mesh.Nodes()
	s.fpOK = s.Mesh.LinkCount() <= 64 && s.Cfg.Banks <= 64 &&
		s.Cfg.Cores <= 32 && s.DRAM.Channels() <= 32 && n <= 32
	if !s.fpOK {
		return
	}
	s.fpLinks = make([]uint64, n*n)
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			s.fpLinks[from*n+to] = s.Mesh.PathLinkMask(noc.NodeID(from), noc.NodeID(to))
		}
	}
}

// fpBuilder accumulates one transaction's footprint. bank/core/channel
// also collect the mesh nodes involved; finish() closes the link set over
// every DOR route between collected nodes (both directions), which covers
// any message the transaction can send.
type fpBuilder struct {
	s     *Substrate
	fp    Footprint
	nodes uint32
}

func (b *fpBuilder) node(n noc.NodeID) { b.nodes |= 1 << uint(n) }

// bank claims L2 bank array bk and its router.
func (b *fpBuilder) bank(bk int) {
	b.fp.Banks |= 1 << uint(bk)
	b.node(b.s.NodeOfBank(bk))
}

// part claims line l's partition of the line-keyed shared tables
// (directory, where, status, lastReq) — the bit only, no node.
func (b *fpBuilder) part(l mem.Line) {
	b.fp.Banks |= 1 << (uint64(l) & uint64(b.s.Cfg.Banks-1))
}

// core claims core c's L1 side and its router.
func (b *fpBuilder) core(c int) {
	b.fp.Cores |= 1 << uint(c)
	b.node(b.s.NodeOfCore(c))
}

// channel claims line l's DRAM channel and the memory controller's router.
func (b *fpBuilder) channel(l mem.Line) {
	ch := b.s.DRAM.ChannelOf(l)
	b.fp.Chans |= 1 << uint(ch)
	b.node(b.s.Mesh.MemRouter(ch))
}

// memNode claims the memory controller router of line l's channel — the
// node only, not the channel bit: an Upgrade's token round trip rides the
// mesh to the controller but never claims the DRAM channel resource.
func (b *fpBuilder) memNode(l mem.Line) {
	b.node(b.s.Mesh.MemRouter(b.s.DRAM.ChannelOf(l)))
}

// occupants claims the partition and channel of every block currently in
// (bank, set): an insert there may evict any of them, touching their
// directory/status entries and possibly writing them back to DRAM. With
// esp set, Private-class occupants additionally claim their victim-spill
// home bank and, depth two, its occupants (ESP-NUCA spills evicted
// private blocks to their home; the spill's own eviction is dropped, so
// the recursion is bounded).
func (b *fpBuilder) occupants(bank, set int, esp bool) {
	st := b.s.Bank[bank].Set(set)
	for i := range st.Blocks {
		blk := &st.Blocks[i]
		if !blk.Valid {
			continue
		}
		b.part(blk.Line)
		b.channel(blk.Line)
		if esp && blk.Class == cache.Private {
			hb, hs := b.s.Map.Shared(blk.Line)
			b.bank(hb)
			b.occupants(hb, hs, false)
		}
	}
}

// finish closes the link set and returns the footprint.
func (b *fpBuilder) finish() Footprint {
	n := b.s.Mesh.Nodes()
	for i := 0; i < n; i++ {
		if b.nodes&(1<<uint(i)) == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			if i == j || b.nodes&(1<<uint(j)) == 0 {
				continue
			}
			b.fp.Links |= b.s.fpLinks[i*n+j]
		}
	}
	return b.fp
}

// fpSharers claims every core whose L1 holds tokens for line at grouping
// time plus every core whose requests mention the line this barrier
// (intervention and invalidation targets). Exec-time holders are a subset
// of the two: tokens move only through transactions on the line, and a
// new copy lands either in its creator's core-local bank (the mention
// core's node) or in the line's home bank, which the fat paths claim —
// so the node closure also covers intervention links to holders and
// copies that did not exist at grouping time.
func (s *Substrate) fpSharers(b *fpBuilder, ctx *FootprintCtx, line mem.Line) {
	if st := s.Dir.Peek(line); st != nil {
		for c := 0; c < s.Cfg.Cores; c++ {
			if st.L1Tokens[c] > 0 {
				b.core(c)
			}
		}
	}
	for m := uint64(ctx.MentionCores(line)); m != 0; m &= m - 1 {
		b.core(trailingZeros64(m))
	}
}

// fpCopies claims the bank of every current L2 copy of line (write
// invalidations, remote-copy responses). Copies created during the
// barrier come from transactions that mention the line — same group.
func (s *Substrate) fpCopies(b *fpBuilder, line mem.Line) {
	for _, loc := range s.l2Has(line) {
		b.bank(loc.bank)
	}
}

// fpNoteSpills notes the victim-spill home sets of (bank, set)'s
// Private-class occupants: under ESP-NUCA, an insert into the set can
// evict them into their home banks — a second-level insert the slim-hit
// guard must know about.
func (s *Substrate) fpNoteSpills(ctx *FootprintCtx, bank, set int) {
	st := s.Bank[bank].Set(set)
	for i := range st.Blocks {
		blk := &st.Blocks[i]
		if blk.Valid && blk.Class == cache.Private {
			hb, hs := s.Map.Shared(blk.Line)
			ctx.NoteInsert(hb, hs)
		}
	}
}

// fpOwnedRemote is ownedByRemoteL1 over a possibly-nil Peek result.
func fpOwnedRemote(st *coherence.LineState, c int) bool {
	return st != nil && ownedByRemoteL1(st, c)
}

// fpStableCopy reports whether some L2 copy of line is guaranteed to
// survive the barrier: present now, in a set no *other* request may
// insert into. Callers must additionally establish that no other request
// mentions the line (Mentions == 1), which rules out mid-barrier
// invalidation — evictions are insert-driven, invalidations are
// write-driven, and both kinds of driver would mention the line.
func (s *Substrate) fpStableCopy(ctx *FootprintCtx, line mem.Line) bool {
	for _, loc := range s.l2Has(line) {
		if !ctx.OthersInsert(loc.bank, loc.set) {
			return true
		}
	}
	return false
}

// fpWriteMem reports whether a write to line may contact the memory
// controller router even though a stable on-chip copy rules out a DRAM
// fetch: an Upgrade cedes memory's tokens via a control round trip when
// MemTokens > 0, and a same-barrier eviction of any unstable copy can
// raise MemTokens before the write executes. A nil directory entry means
// all tokens sit at memory.
func (s *Substrate) fpWriteMem(ctx *FootprintCtx, line mem.Line) bool {
	st := s.Dir.Peek(line)
	if st == nil || st.MemTokens > 0 {
		return true
	}
	for _, loc := range s.l2Has(line) {
		if ctx.OthersInsert(loc.bank, loc.set) {
			return true
		}
	}
	return false
}

// fpPeekSharers returns the grouping-time L1 sharer mask of line (zero
// when the directory has no entry).
func (s *Substrate) fpPeekSharers(line mem.Line) uint32 {
	if st := s.Dir.Peek(line); st != nil {
		return uint32(st.Sharers())
	}
	return 0
}

// --- Conflict grouping ---

// GroupFootprints partitions footprints into conflict groups:
// transitively overlapping footprints share a group. groups (len >=
// len(fps)) receives each footprint's group id; ids are assigned in
// first-seen order over ascending index, so the labeling is canonical —
// it depends only on fps, never on worker count or timing. Returns the
// number of groups. Any Global footprint collapses everything to one
// group.
//
// The implementation is a union-find keyed by resource bit: for every bit
// a footprint claims, it unions with the previous footprint that claimed
// the same bit. This is O(n * bits) rather than O(n^2) pairwise overlap;
// the differential fuzz test checks it against the naive reference.
func GroupFootprints(fps []Footprint, groups []int) int {
	n := len(fps)
	if n == 0 {
		return 0
	}
	for i := range fps {
		if fps[i].Global {
			for j := 0; j < n; j++ {
				groups[j] = 0
			}
			return 1
		}
	}
	// groups doubles as the union-find parent array.
	for i := 0; i < n; i++ {
		groups[i] = i
	}
	find := func(x int) int {
		for groups[x] != x {
			groups[x] = groups[groups[x]] // path halving
			x = groups[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				groups[rb] = ra
			} else {
				groups[ra] = rb
			}
		}
	}
	var lastBank, lastLink [64]int
	var lastCore, lastChan [32]int
	for i := range lastBank {
		lastBank[i], lastLink[i] = -1, -1
	}
	for i := range lastCore {
		lastCore[i], lastChan[i] = -1, -1
	}
	for i := 0; i < n; i++ {
		f := &fps[i]
		for m := f.Banks; m != 0; m &= m - 1 {
			b := trailingZeros64(m)
			if lastBank[b] >= 0 {
				union(i, lastBank[b])
			}
			lastBank[b] = i
		}
		for m := f.Links; m != 0; m &= m - 1 {
			b := trailingZeros64(m)
			if lastLink[b] >= 0 {
				union(i, lastLink[b])
			}
			lastLink[b] = i
		}
		for m := uint64(f.Cores); m != 0; m &= m - 1 {
			b := trailingZeros64(m)
			if lastCore[b] >= 0 {
				union(i, lastCore[b])
			}
			lastCore[b] = i
		}
		for m := uint64(f.Chans); m != 0; m &= m - 1 {
			b := trailingZeros64(m)
			if lastChan[b] >= 0 {
				union(i, lastChan[b])
			}
			lastChan[b] = i
		}
	}
	// Relabel to canonical first-seen group ids. Roots store their final
	// label negated (-label-1) so parent indices (>=0) and labels never
	// collide; every chain terminates at a labeled root.
	ngroups := 0
	for i := 0; i < n; i++ {
		r := i
		for groups[r] >= 0 && groups[r] != r {
			r = groups[r]
		}
		var lbl int
		if groups[r] < 0 {
			lbl = -groups[r] - 1
		} else {
			lbl = ngroups
			ngroups++
			groups[r] = -lbl - 1
		}
		if r != i {
			groups[i] = -lbl - 1
		}
	}
	for i := 0; i < n; i++ {
		groups[i] = -groups[i] - 1
	}
	return ngroups
}

// trailingZeros64 is math/bits.TrailingZeros64 without the import (the
// compiler intrinsifies neither here; the De Bruijn form is branch-free
// and allocation-free).
func trailingZeros64(x uint64) int {
	return deBruijnIdx[((x&-x)*0x03f79d71b4ca8b09)>>58]
}

var deBruijnIdx = [64]int{
	0, 1, 56, 2, 57, 49, 28, 3, 61, 58, 42, 50, 38, 29, 17, 4,
	62, 47, 59, 36, 45, 43, 51, 22, 53, 39, 33, 30, 24, 18, 12, 5,
	63, 55, 48, 27, 60, 41, 37, 16, 46, 35, 44, 21, 52, 32, 23, 11,
	54, 26, 40, 15, 34, 20, 31, 10, 25, 14, 19, 9, 13, 8, 7, 6,
}
