package arch

import (
	"fmt"

	"espnuca/internal/cache"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
)

// Observable is implemented by architectures with adaptive internal state
// worth exporting beyond the substrate-level telemetry (ESP-NUCA's
// per-bank nmax budgets and EMA estimators). The experiment harness
// attaches it in addition to Substrate.AttachObs.
type Observable interface {
	AttachObs(reg *obs.Registry)
}

// AttachObs registers substrate-level telemetry probes on reg: per-bank
// per-interval hit rates and live helping-block occupancy, NoC link
// utilization and queuing delay, DRAM channel occupancy, and cumulative
// traffic counters. Probes poll component statistics on each registry
// Tick, so between ticks the simulation pays nothing.
func (s *Substrate) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	nb := len(s.Bank)
	hit := make([]*obs.Series, nb)
	helping := make([]*obs.Series, nb)
	for i := range s.Bank {
		hit[i] = reg.Series(fmt.Sprintf("bank%02d.hitrate", i))
		helping[i] = reg.Series(fmt.Sprintf("bank%02d.helping", i))
	}
	var (
		lookupsC = reg.Counter("l2.lookups")
		hitsC    = reg.Counter("l2.hits")
		missesC  = reg.Counter("l2.misses")
		dramR    = reg.Counter("dram.reads")
		dramW    = reg.Counter("dram.writes")
		nocMsgs  = reg.Counter("noc.messages")
		linkUtil = reg.Gauge("noc.link_util")
		dramOcc  = reg.Gauge("dram.occupancy")
		qdelay   = reg.Series("noc.queue_delay")
	)
	prev := make([]cache.Stats, nb)
	var prevReads, prevWrites, prevMsgs uint64
	var prevWaits sim.Cycle
	reg.OnTick(func(now uint64) {
		var dLook, dHit uint64
		for i, b := range s.Bank {
			st := b.Stats
			dl := st.Lookups - prev[i].Lookups
			dh := st.Hits - prev[i].Hits
			if dl > 0 {
				hit[i].Append(now, float64(dh)/float64(dl))
			}
			helping[i].Append(now, float64(b.HelpingBlocks()))
			prev[i] = st
			dLook += dl
			dHit += dh
		}
		lookupsC.Add(dLook)
		hitsC.Add(dHit)
		missesC.Add(dLook - dHit)
		dramR.Add(s.DRAM.Reads - prevReads)
		prevReads = s.DRAM.Reads
		dramW.Add(s.DRAM.Writes - prevWrites)
		prevWrites = s.DRAM.Writes
		dMsgs := s.Mesh.Messages - prevMsgs
		nocMsgs.Add(dMsgs)
		prevMsgs = s.Mesh.Messages
		waits := s.Mesh.LinkWaits()
		if dMsgs > 0 {
			qdelay.Append(now, float64(waits-prevWaits)/float64(dMsgs))
		}
		prevWaits = waits
		linkUtil.Set(s.Mesh.LinkUtilization(sim.Cycle(now)))
		dramOcc.Set(s.DRAM.Utilization(sim.Cycle(now)))
	})
}

// AttachObs implements Observable: per-bank series of the live nmax
// budget and the three EMA hit-rate estimators, plus helping-block
// creation counters. Flat-LRU ESP-NUCA has no samplers and exports only
// the counters.
func (a *ESPNUCA) AttachObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var (
		replicas = reg.Counter("esp.replicas")
		victims  = reg.Counter("esp.victims")
		refused  = reg.Counter("esp.refused")
	)
	type bankSeries struct{ nmax, hrc, hrr, hre *obs.Series }
	banks := make([]bankSeries, len(a.samplers))
	for i := range a.samplers {
		banks[i] = bankSeries{
			nmax: reg.Series(fmt.Sprintf("bank%02d.nmax", i)),
			hrc:  reg.Series(fmt.Sprintf("bank%02d.hrc", i)),
			hrr:  reg.Series(fmt.Sprintf("bank%02d.hrr", i)),
			hre:  reg.Series(fmt.Sprintf("bank%02d.hre", i)),
		}
	}
	var prevR, prevV, prevRef uint64
	reg.OnTick(func(now uint64) {
		replicas.Add(a.Replicas - prevR)
		prevR = a.Replicas
		victims.Add(a.Victims - prevV)
		prevV = a.Victims
		refused.Add(a.RefusedHelping - prevRef)
		prevRef = a.RefusedHelping
		for i, smp := range a.samplers {
			banks[i].nmax.Append(now, float64(smp.NMax()))
			hrc, hrr, hre := smp.Rates()
			banks[i].hrc.Append(now, hrc)
			banks[i].hrr.Append(now, hrr)
			banks[i].hre.Append(now, hre)
		}
	})
}

var _ Observable = (*ESPNUCA)(nil)
