package arch

import "espnuca/internal/mem"

// lineMap is an open-addressed, linearly probed hash table keyed by cache
// line, used for the substrate's residency (where) and private-bit
// (status) bookkeeping. Like the coherence directory it replaces the
// runtime map on the simulator's per-access path: line keys are
// fixed-stride addresses that hash well with a cheap mixer, entries store
// values inline, and deletion backward-shifts the probe chain so the
// table never accumulates tombstones.
//
// The API mirrors plain map semantics (get returns a copy, set overwrites,
// del removes) so call sites behave exactly like the maps they replace.
type lineMap[V any] struct {
	entries []lineMapEntry[V]
	mask    uint64
	count   int
}

type lineMapEntry[V any] struct {
	line mem.Line
	used bool
	val  V
}

// mixLine is the splitmix64 finalizer (shared shape with the coherence
// directory's hash).
func mixLine(l mem.Line) uint64 {
	x := uint64(l)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newLineMap builds a table with capacity hint (rounded up to a power of
// two).
func newLineMap[V any](hint int) lineMap[V] {
	cap := 16
	for cap < hint {
		cap *= 2
	}
	return lineMap[V]{
		entries: make([]lineMapEntry[V], cap),
		mask:    uint64(cap - 1),
	}
}

// slot returns the index of l's entry, or -1 and the free slot that
// terminated the probe.
func (m *lineMap[V]) slot(l mem.Line) (found, free int) {
	i := mixLine(l) & m.mask
	for {
		e := &m.entries[i]
		if !e.used {
			return -1, int(i)
		}
		if e.line == l {
			return int(i), -1
		}
		i = (i + 1) & m.mask
	}
}

// get returns the value for l and whether it is present.
func (m *lineMap[V]) get(l mem.Line) (V, bool) {
	if found, _ := m.slot(l); found >= 0 {
		return m.entries[found].val, true
	}
	var zero V
	return zero, false
}

// set stores v under l, inserting or overwriting.
func (m *lineMap[V]) set(l mem.Line, v V) {
	found, free := m.slot(l)
	if found >= 0 {
		m.entries[found].val = v
		return
	}
	if 4*(m.count+1) > 3*len(m.entries) {
		m.grow()
		_, free = m.slot(l)
	}
	m.entries[free] = lineMapEntry[V]{line: l, used: true, val: v}
	m.count++
}

// ptr returns a pointer to l's value, materializing a zero value if
// absent. The pointer is valid only until the next set/ptr/del call.
func (m *lineMap[V]) ptr(l mem.Line) *V {
	found, free := m.slot(l)
	if found >= 0 {
		return &m.entries[found].val
	}
	if 4*(m.count+1) > 3*len(m.entries) {
		m.grow()
		_, free = m.slot(l)
	}
	m.entries[free].line = l
	m.entries[free].used = true
	m.count++
	return &m.entries[free].val
}

// del removes l's entry if present, repairing the probe chain by
// backward-shifting (no tombstones).
func (m *lineMap[V]) del(l mem.Line) {
	found, _ := m.slot(l)
	if found < 0 {
		return
	}
	i := uint64(found)
	for {
		m.entries[i] = lineMapEntry[V]{}
		j := i
		for {
			j = (j + 1) & m.mask
			e := &m.entries[j]
			if !e.used {
				m.count--
				return
			}
			home := mixLine(e.line) & m.mask
			// e may fill slot i iff its home position is not cyclically
			// inside (i, j] — moving it would otherwise break its chain.
			if lineMapBetween(i, home, j) {
				continue
			}
			m.entries[i] = *e
			i = j
			break
		}
	}
}

// lineMapBetween reports whether h lies in the cyclic half-open range
// (i, j].
func lineMapBetween(i, h, j uint64) bool {
	if i <= j {
		return i < h && h <= j
	}
	return i < h || h <= j
}

// grow doubles the table and rehashes live entries.
func (m *lineMap[V]) grow() {
	old := m.entries
	m.entries = make([]lineMapEntry[V], 2*len(old))
	m.mask = uint64(len(m.entries) - 1)
	for i := range old {
		e := &old[i]
		if !e.used {
			continue
		}
		j := mixLine(e.line) & m.mask
		for m.entries[j].used {
			j = (j + 1) & m.mask
		}
		m.entries[j] = *e
	}
}

// forEach visits every entry; the callback must not mutate the table.
func (m *lineMap[V]) forEach(f func(mem.Line, V) error) error {
	for i := range m.entries {
		if !m.entries[i].used {
			continue
		}
		if err := f(m.entries[i].line, m.entries[i].val); err != nil {
			return err
		}
	}
	return nil
}

// partLineMap is a lineMap split into partitions routed by the line's
// home-bank bits (line & pmask — the same bits core.Mapping.Shared uses to
// pick a home bank). Transactions with disjoint bank footprints touch
// disjoint partitions, so the sharded engine's parallel barrier can mutate
// the substrate's residency and status tables from several workers without
// a lock. With one partition it degenerates to a plain lineMap.
type partLineMap[V any] struct {
	parts []lineMap[V]
	pmask uint64
}

// newPartLineMap builds a table of the given partition count (rounded up
// to a power of two) with a total capacity hint spread across partitions.
func newPartLineMap[V any](parts, hint int) partLineMap[V] {
	np := 1
	for np < parts {
		np <<= 1
	}
	per := hint / np
	if per < 16 {
		per = 16
	}
	m := partLineMap[V]{parts: make([]lineMap[V], np), pmask: uint64(np - 1)}
	for i := range m.parts {
		m.parts[i] = newLineMap[V](per)
	}
	return m
}

func (m *partLineMap[V]) part(l mem.Line) *lineMap[V] {
	return &m.parts[uint64(l)&m.pmask]
}

func (m *partLineMap[V]) get(l mem.Line) (V, bool) { return m.part(l).get(l) }
func (m *partLineMap[V]) set(l mem.Line, v V)      { m.part(l).set(l, v) }
func (m *partLineMap[V]) ptr(l mem.Line) *V        { return m.part(l).ptr(l) }
func (m *partLineMap[V]) del(l mem.Line)           { m.part(l).del(l) }

// forEach visits every entry, partition by partition; the callback must
// not mutate the table.
func (m *partLineMap[V]) forEach(f func(mem.Line, V) error) error {
	for i := range m.parts {
		if err := m.parts[i].forEach(f); err != nil {
			return err
		}
	}
	return nil
}
