package arch

import (
	"testing"

	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// --- Upgrade path (token-only writes) ---

func TestUpgradeDoesNotTouchDRAM(t *testing.T) {
	for _, name := range []string{"shared", "private", "sp-nuca", "esp-nuca", "d-nuca", "asr", "cc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys := build(t, name)
			s := sys.Sub()
			// Core 0 reads the line (gets 1 token), fills L1.
			r := sys.Access(0, 0, 100, false)
			s.L1.Fill(0, 100, false, false)
			reads := s.DRAM.Reads
			// Write to the same line: an upgrade; data must not leave DRAM.
			r2 := sys.Access(r.Done, 0, 100, true)
			if s.DRAM.Reads != reads {
				t.Fatalf("upgrade caused a DRAM read")
			}
			if r2.Level != LocalL1 {
				t.Fatalf("upgrade level = %v, want LocalL1", r2.Level)
			}
			st := s.Dir.State(100)
			if st.L1Tokens[0] != coherence.TokensPerLine {
				t.Fatalf("upgrade did not collect all tokens: %+v", st)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUpgradeInvalidatesOtherSharers(t *testing.T) {
	sys := build(t, "esp-nuca")
	s := sys.Sub()
	var tm sim.Cycle
	for c := 0; c < 3; c++ {
		r := sys.Access(tm, c, 100, false)
		s.L1.Fill(c, 100, false, false)
		tm = r.Done
	}
	r := sys.Access(tm, 0, 100, true) // upgrade by core 0
	if r.Level != LocalL1 {
		t.Fatalf("level = %v", r.Level)
	}
	for c := 1; c < 3; c++ {
		if s.L1.Has(c, 100) {
			t.Fatalf("core %d retains line after upgrade", c)
		}
	}
}

// --- Clean vs dirty write-back routing ---

func TestCleanWritebackAllocatesInVictimArchitectures(t *testing.T) {
	for _, name := range []string{"private", "cc", "asr", "d-nuca"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys := build(t, name)
			s := sys.Sub()
			r := sys.Access(0, 1, 200, false)
			s.L1.Fill(1, 200, false, false)
			s.L1.Invalidate(1, 200)
			sys.WriteBack(r.Done, 1, 200, false) // clean eviction
			if len(s.l2Has(200)) == 0 {
				t.Fatal("clean victim not allocated in L2")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCleanWritebackSharedReleasesTokens(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	r := sys.Access(0, 1, 200, false)
	s.L1.Fill(1, 200, false, false)
	s.L1.Invalidate(1, 200)
	sys.WriteBack(r.Done, 1, 200, false)
	st := s.Dir.State(200)
	if st.L1Tokens[1] != 0 {
		t.Fatal("clean write-back left tokens in L1")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyWritebackReachesDRAMEventually(t *testing.T) {
	// Fill a private tile set until dirty victims cascade to memory.
	cfg := testConfig()
	sys, err := NewTiled(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	var tm sim.Cycle
	// Lines = 8 mod 32 all land in core 0's bank 0 set 2 (4 ways).
	for i := 0; i < 8; i++ {
		l := mem.Line(8 + 32*i)
		r := sys.Access(tm, 0, l, true)
		s.L1.Fill(0, l, true, false)
		s.L1.Invalidate(0, l)
		sys.WriteBack(r.Done, 0, l, true)
		tm = r.Done + 10
	}
	if s.DRAM.Writes == 0 {
		t.Fatal("no dirty data ever written back to DRAM")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- ESP-NUCA specifics ---

func TestESPFlatVersusProtectedDiffer(t *testing.T) {
	run := func(protected bool) uint64 {
		cfg := testConfig()
		sys, err := NewESPNUCA(cfg, protected)
		if err != nil {
			t.Fatal(err)
		}
		s := sys.Sub()
		rng := sim.NewRNG(5)
		var tm sim.Cycle
		for op := 0; op < 12000; op++ {
			c := rng.Intn(8)
			line := mem.Line(rng.Intn(8192))
			if s.L1.Lookup(c, line, false, false) {
				continue
			}
			res := sys.Access(tm, c, line, false)
			wb := s.L1.Fill(c, line, false, false)
			if wb.Valid {
				sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
			}
			tm = res.Done
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return sys.RefusedHelping
	}
	flat := run(false)
	prot := run(true)
	if flat != 0 {
		t.Fatalf("flat LRU refused %d helping blocks; it must refuse none", flat)
	}
	if prot == 0 {
		t.Fatal("protected LRU never exercised its admission control")
	}
}

func TestESPNMaxHistogram(t *testing.T) {
	cfg := testConfig()
	prot, _ := NewESPNUCA(cfg, true)
	if h := prot.NMaxHistogram(); len(h) != cfg.Banks {
		t.Fatalf("histogram length %d", len(h))
	}
	flat, _ := NewESPNUCA(cfg, false)
	if flat.NMaxHistogram() != nil {
		t.Fatal("flat variant has a histogram")
	}
	if len(flat.Samplers()) != 0 {
		t.Fatal("flat variant has samplers")
	}
}

func TestESPAblationKnobs(t *testing.T) {
	cfg := testConfig()
	sys, _ := NewESPNUCA(cfg, true)
	for _, smp := range sys.Samplers() {
		smp.SetNMax(2)
	}
	sys.ReplicasOff = true
	sys.VictimsOff = true
	s := sys.Sub()
	rng := sim.NewRNG(9)
	var tm sim.Cycle
	for op := 0; op < 3000; op++ {
		c := rng.Intn(8)
		line := mem.Line(rng.Intn(256))
		if s.L1.Lookup(c, line, false, false) {
			continue
		}
		res := sys.Access(tm, c, line, false)
		wb := s.L1.Fill(c, line, false, false)
		if wb.Valid {
			sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
		}
		tm = res.Done
	}
	if sys.Replicas != 0 || sys.Victims != 0 {
		t.Fatalf("knobs ignored: %d replicas, %d victims", sys.Replicas, sys.Victims)
	}
}

// --- SP-NUCA shadow & static variants under traffic ---

func TestSPNUCAVariantsStayConsistent(t *testing.T) {
	for _, kind := range []PartitionKind{FlatLRUPartition, ShadowTagPartition, StaticPartitionKind} {
		sys, err := NewSPNUCA(testConfig(), kind)
		if err != nil {
			t.Fatal(err)
		}
		s := sys.Sub()
		rng := sim.NewRNG(11)
		var tm sim.Cycle
		for op := 0; op < 3000; op++ {
			c := rng.Intn(8)
			line := mem.Line(rng.Intn(512))
			write := rng.Bool(0.3)
			if s.L1.Lookup(c, line, write, false) {
				continue
			}
			res := sys.Access(tm, c, line, write)
			wb := s.L1.Fill(c, line, write, false)
			if wb.Valid {
				sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
			}
			tm = res.Done
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
	}
}

// --- CC probabilities ---

func TestCCProbabilityOrdersSpills(t *testing.T) {
	spills := func(p float64) uint64 {
		cfg := testConfig()
		cfg.CCProbability = p
		sys, err := NewCC(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := sys.Sub()
		var tm sim.Cycle
		// Pound one set with dirty write-backs to force evictions.
		for i := 0; i < 40; i++ {
			l := mem.Line(8 + 32*(i%10))
			r := sys.Access(tm, 0, l, true)
			s.L1.Fill(0, l, true, false)
			s.L1.Invalidate(0, l)
			sys.WriteBack(r.Done, 0, l, true)
			tm = r.Done + 10
		}
		return sys.Spills
	}
	if s0 := spills(0); s0 != 0 {
		t.Fatalf("CC-0%% spilled %d", s0)
	}
	s100 := spills(1.0)
	if s100 == 0 {
		t.Fatal("CC-100% never spilled")
	}
}

// --- ASR adaptation under replica-friendly traffic ---

func TestASRReplicationCreatesLocalCopies(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 3
	sys, err := NewASR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	// Put a line in tile 0's L2 only; core 7 reads it repeatedly. With
	// replication level 0.5 some read should copy it into tile 7.
	r := sys.Access(0, 0, 100, false)
	s.L1.Fill(0, 100, false, false)
	s.L1.Invalidate(0, 100)
	sys.WriteBack(r.Done, 0, 100, false)
	tm := r.Done + 100
	created := false
	pbank, _ := s.Map.Private(100, 7)
	for i := 0; i < 40 && !created; i++ {
		sys.Access(tm, 7, 100, false)
		s.L1.Invalidate(7, 100) // force re-access through L2
		tm += 500
		if _, ok := s.l2Find(100, pbank); ok {
			created = true
		}
	}
	if !created {
		t.Fatal("ASR never replicated a remote-read line locally")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Substrate edge cases ---

func TestCollectForWriteOnUntouchedLine(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	// A write to a line nobody holds: no invalidation latency beyond the
	// access path itself.
	done := s.collectForWrite(10, 0, 0, 999)
	if done != 10 {
		t.Fatalf("no-sharer GETX took %d extra cycles", done-10)
	}
	st := s.Dir.State(999)
	if st.L1Tokens[0] != coherence.TokensPerLine {
		t.Fatal("writer did not receive all tokens")
	}
}

func TestStatusLifecycle(t *testing.T) {
	sys := build(t, "sp-nuca")
	s := sys.Sub()
	// First toucher becomes the private owner.
	shared, owner := s.statusOf(300, 2)
	if shared || owner != 2 {
		t.Fatalf("first touch: shared=%v owner=%d", shared, owner)
	}
	// Second core upgrades to shared.
	shared, _ = s.statusOf(300, 5)
	if !shared {
		t.Fatal("second core did not shared-ify the line")
	}
	// Status survives while the line is on chip... here nothing holds it,
	// so dropping the last copy forgets it.
	s.maybeForgetStatus(300)
	if _, _, known := s.peekStatus(300); known {
		t.Fatal("status survived with no on-chip copies")
	}
}

func TestRecordL1HitAccounting(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	s.RecordL1Hit(3)
	s.RecordL1Hit(3)
	if s.Counts[LocalL1] != 2 || s.Latency[LocalL1] != 6 {
		t.Fatalf("L1 accounting: %d hits, %d cycles", s.Counts[LocalL1], s.Latency[LocalL1])
	}
}

func TestMapPrivateSharedAgreeOnCapacity(t *testing.T) {
	s, err := NewSubstrate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every line has exactly one home (shared) slot and one private slot
	// per core; aggregate capacity is identical under both mappings.
	seen := map[int]int{}
	for l := mem.Line(0); l < 4096; l++ {
		b, _ := s.Map.Shared(l)
		seen[b]++
	}
	for b := 0; b < s.Cfg.Banks; b++ {
		if seen[b] != 4096/s.Cfg.Banks {
			t.Fatalf("bank %d receives %d lines, want %d", b, seen[b], 4096/s.Cfg.Banks)
		}
	}
}
