package arch

import (
	"math/rand"
	"testing"
)

// sparseMask64 returns a mask with up to three random bits set (possibly
// none), sparse enough that disjoint footprints actually occur.
func sparseMask64(rng *rand.Rand, width int) uint64 {
	var m uint64
	for k := rng.Intn(4); k > 0; k-- {
		m |= 1 << uint(rng.Intn(width))
	}
	return m
}

func randFootprints(rng *rand.Rand, n int) []Footprint {
	fps := make([]Footprint, n)
	for i := range fps {
		fps[i] = Footprint{
			Banks:  sparseMask64(rng, 64),
			Links:  sparseMask64(rng, 64),
			Cores:  uint32(sparseMask64(rng, 32)),
			Chans:  uint32(sparseMask64(rng, 32)),
			Global: rng.Intn(48) == 0,
		}
	}
	return fps
}

// refGroups is the obvious O(n^2) reference: build the pairwise-overlap
// graph, take connected components, and label them in order of their
// first member (the canonical labeling GroupFootprints promises).
func refGroups(fps []Footprint) (int, []int) {
	n := len(fps)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		comp[i] = next
		stack = append(stack[:0], i)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for j := 0; j < n; j++ {
				if comp[j] < 0 && fps[v].Overlaps(fps[j]) {
					comp[j] = next
					stack = append(stack, j)
				}
			}
		}
		next++
	}
	return next, comp
}

// TestGroupFootprintsDifferential fuzzes the resource-keyed union-find
// grouper against the O(n^2) pairwise reference: identical component
// structure AND identical canonical (first-seen) labels on every input.
func TestGroupFootprintsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	groups := make([]int, 64)
	for iter := 0; iter < 4000; iter++ {
		n := 1 + rng.Intn(25)
		fps := randFootprints(rng, n)
		ng := GroupFootprints(fps, groups[:n])
		wantNG, want := refGroups(fps)
		if ng != wantNG {
			t.Fatalf("iter %d: %d groups, reference says %d\nfps: %+v",
				iter, ng, wantNG, fps)
		}
		for i := 0; i < n; i++ {
			if groups[i] != want[i] {
				t.Fatalf("iter %d req %d: group %d, reference %d\nfps: %+v",
					iter, i, groups[i], want[i], fps)
			}
		}
	}
}

// TestGroupFootprintsCanonical checks the two properties the parallel
// barrier's determinism rests on: labels are assigned in first-seen
// order (so equal inputs give equal labelings), and permuting the input
// permutes the labeling but never the partition.
func TestGroupFootprintsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(24)
		fps := randFootprints(rng, n)
		groups := make([]int, n)
		ng := GroupFootprints(fps, groups)

		// First-seen canonical labels: scanning left to right, each new
		// label is exactly the next integer.
		seen := 0
		for i, g := range groups {
			if g > seen {
				t.Fatalf("iter %d: label %d at index %d before %d was used",
					iter, g, i, seen)
			}
			if g == seen {
				seen++
			}
		}
		if seen != ng {
			t.Fatalf("iter %d: %d labels used, GroupFootprints returned %d",
				iter, seen, ng)
		}

		// Rerunning on the same input reproduces the labeling bit for bit.
		again := make([]int, n)
		if ng2 := GroupFootprints(fps, again); ng2 != ng {
			t.Fatalf("iter %d: group count changed on rerun: %d vs %d", iter, ng2, ng)
		}
		for i := range groups {
			if groups[i] != again[i] {
				t.Fatalf("iter %d: labeling changed on rerun at %d", iter, i)
			}
		}

		// A random permutation of the requests must induce the same
		// partition: i and j share a group before iff they do after.
		perm := rng.Perm(n)
		pfps := make([]Footprint, n)
		for i, p := range perm {
			pfps[i] = fps[p]
		}
		pgroups := make([]int, n)
		GroupFootprints(pfps, pgroups)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				before := groups[perm[i]] == groups[perm[j]]
				after := pgroups[i] == pgroups[j]
				if before != after {
					t.Fatalf("iter %d: partition not permutation-invariant "+
						"(orig %d,%d same=%v, permuted same=%v)",
						iter, perm[i], perm[j], before, after)
				}
			}
		}
	}
}
