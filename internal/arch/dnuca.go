package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// DNUCA is the dynamically-mapped NUCA comparison point (Kim et al.,
// implemented as in Beckmann & Wood): a line maps to a bank *set* (one
// mesh column), may live in any bank of that column, migrates toward its
// requesters on hits, and replicates on remote hits. Search is idealized
// ("perfect search", paper §6.1): the requester magically knows the
// nearest copy and probes only that bank — which is why the paper calls
// D-NUCA costly yet uses it as the strongest shared-derived latency
// optimizer.
type DNUCA struct {
	s *Substrate

	// MigrationOff and ReplicationOff disable the corresponding
	// mechanism; used by the ablation benchmarks to attribute D-NUCA's
	// behaviour to its two moving parts.
	MigrationOff, ReplicationOff bool

	// lastReq implements promotion hysteresis: a block moves or
	// replicates only on the second consecutive remote hit by the same
	// core, suppressing ping-pong between alternating requesters. Stored
	// home-bank-partitioned so the sharded engine's parallel barrier can
	// touch disjoint partitions from different workers.
	lastReq partLineMap[int8]

	// Migs and Reps count migrations and replications.
	Migs, Reps uint64

	// bankOrder[col][core] is the column's bank list ordered by distance
	// from the core, precomputed so the per-access lookup is a slice read
	// instead of a build-and-sort (callers never mutate the shared slice).
	bankOrder [][][]int
}

// NewDNUCA builds the idealized D-NUCA.
func NewDNUCA(cfg Config) (*DNUCA, error) {
	s, err := NewSubstrate(cfg)
	if err != nil {
		return nil, err
	}
	a := &DNUCA{s: s, lastReq: newPartLineMap[int8](cfg.Banks, 1<<14)}
	a.bankOrder = make([][][]int, cfg.NoC.Cols)
	for col := range a.bankOrder {
		a.bankOrder[col] = make([][]int, cfg.Cores)
		for c := range a.bankOrder[col] {
			a.bankOrder[col][c] = a.buildBanksInColumn(col, c)
		}
	}
	return a, nil
}

// Name implements System.
func (a *DNUCA) Name() string { return "d-nuca" }

// Sub implements System.
func (a *DNUCA) Sub() *Substrate { return a.s }

// column returns the bankset (mesh column) of a line and the set index
// within a bank.
func (a *DNUCA) column(line mem.Line) (col, set int) {
	cols := a.s.Cfg.NoC.Cols
	col = int(uint64(line) % uint64(cols))
	set = int((uint64(line) / uint64(cols)) % uint64(a.s.Cfg.SetsPerBank))
	return col, set
}

// banksInColumn lists the banks of a column ordered by distance from the
// requesting core (a precomputed shared slice; do not mutate).
func (a *DNUCA) banksInColumn(col, c int) []int {
	return a.bankOrder[col][c]
}

// buildBanksInColumn computes one bankOrder entry at construction time.
func (a *DNUCA) buildBanksInColumn(col, c int) []int {
	s := a.s
	perNode := s.Cfg.Banks / s.Mesh.Nodes()
	var banks []int
	for node := 0; node < s.Mesh.Nodes(); node++ {
		if node%s.Cfg.NoC.Cols != col {
			continue
		}
		for k := 0; k < perNode; k++ {
			banks = append(banks, node*perNode+k)
		}
	}
	// Order by hop distance from the requester.
	reqNode := s.NodeOfCore(c)
	for i := 1; i < len(banks); i++ {
		for j := i; j > 0 && s.Mesh.Hops(reqNode, s.NodeOfBank(banks[j])) <
			s.Mesh.Hops(reqNode, s.NodeOfBank(banks[j-1])); j-- {
			banks[j], banks[j-1] = banks[j-1], banks[j]
		}
	}
	return banks
}

// Access implements System with perfect search over the bankset.
func (a *DNUCA) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	s := a.s
	if write {
		if res, ok := s.Upgrade(at, c, line); ok {
			return res
		}
	}
	col, set := a.column(line)
	reqNode := s.NodeOfCore(c)
	st := s.Dir.State(line)

	finish := func(t sim.Cycle, via noc.NodeID) sim.Cycle {
		if write {
			if ack := s.collectForWrite(t, via, c, line); ack > t {
				return ack
			}
			return t
		}
		s.Dir.GrantReadL1(line, c)
		return t
	}

	// Perfect search: find the nearest resident copy in the column.
	banks := a.banksInColumn(col, c)
	var hitBank, hitSet int = -1, set
	for _, b := range banks {
		if _, ok := s.l2Find(line, b); ok {
			hitBank = b
			break
		}
	}

	switch {
	case hitBank >= 0 && !ownedByRemoteL1(st, c):
		node := s.NodeOfBank(hitBank)
		t := s.Mesh.Send(at, reqNode, node, noc.Control, 0)
		s.Bank[hitBank].Lookup(hitSet, cache.LineQuery(line))
		t = s.Bank[hitBank].Access(t)
		t = s.Mesh.Send(t, node, reqNode, noc.Data, s.Cfg.BlockBytes)
		level := SharedL2
		if node == reqNode {
			level = LocalL2
		} else if !write {
			a.promote(t, line, hitBank, hitSet, banks, c)
		}
		s.record(level, at, t)
		return Result{Done: finish(t, node), Level: level}

	case ownedByRemoteL1(st, c):
		t := a.s.l1Intervention(at, reqNode, int(st.Owner-coherence.HolderL1), c)
		s.record(RemoteL1, at, t)
		return Result{Done: finish(t, reqNode), Level: RemoteL1}

	case st.Sharers()&^(1<<uint(c)) != 0:
		holder := nearestSharer(s, st, c)
		t := at
		if holder != c {
			t = a.s.l1Intervention(at, reqNode, holder, c)
		}
		s.record(RemoteL1, at, t)
		return Result{Done: finish(t, reqNode), Level: RemoteL1}
	}

	// Off-chip: probe nearest bank (tag miss), fetch, allocate at the far
	// end of the bankset. New blocks enter the bottom "generation" and
	// earn proximity through promotion on reuse (gradual promotion);
	// single-use streaming data therefore never pollutes the near banks
	// nor gains their latency.
	near := banks[0]
	t := s.Mesh.Send(at, reqNode, s.NodeOfBank(near), noc.Control, 0)
	t = s.Bank[near].TagProbe(t)
	t = s.memFetch(t, reqNode, line)
	if !write {
		s.Dir.L2Fill(line, coherence.TokensPerLine)
		a.insertFar(t, set, banks, line, cache.Block{
			Valid: true, Line: line, Class: cache.Shared, Owner: -1,
		})
	}
	s.record(OffChip, at, t)
	return Result{Done: finish(t, reqNode), Level: OffChip}
}

// insertFar allocates blk into a line-hashed bank of the bankset: fills
// spread over the whole column (full capacity), and blocks then earn
// proximity to their users through promotion on reuse. Single-use
// streaming data stays at its hashed position (average distance, like a
// shared cache), which is exactly the regime where the paper finds
// D-NUCA unrewarding.
func (a *DNUCA) insertFar(at sim.Cycle, set int, ordered []int, line mem.Line, blk cache.Block) {
	s := a.s
	bank := ordered[int(uint64(line)>>7)%len(ordered)]
	if _, ok := s.l2Find(line, bank); ok {
		return
	}
	ev := s.l2Insert(bank, set, blk, cache.FlatLRU{})
	s.dropEvicted(at, ev, bank)
}

// promote moves or copies the block one step closer to the requester.
// Blocks used by a single core migrate by *swapping* with the victim in
// the closer bank (classic D-NUCA gradual promotion: no capacity is
// lost). Blocks shared by several cores are replicated instead — but a
// replica may only displace another replica, never first-class data, so
// replication cannot thrash the bankset (the replication-enabled D-NUCA
// variant of §6.1).
func (a *DNUCA) promote(at sim.Cycle, line mem.Line, fromBank, set int, ordered []int, c int) {
	s := a.s
	shared, _ := s.statusOf(line, c)
	if last, ok := a.lastReq.get(line); !ok || last != int8(c) {
		a.lastReq.set(line, int8(c))
		return
	}
	for _, b := range ordered {
		if b == fromBank {
			return // already nearest
		}
		if _, ok := s.l2Find(line, b); ok {
			continue
		}
		st := s.Dir.Peek(line)
		dirtyHere := st != nil && st.Owner == coherence.HolderL2 && st.Dirty
		if !shared || dirtyHere {
			if a.MigrationOff {
				return
			}
			blk, ok := s.l2Invalidate(line, fromBank, set)
			if !ok {
				return
			}
			// Migration moves a whole block between banks: real data
			// traffic on the mesh (posted, but it loads the links).
			s.Mesh.Send(at, s.NodeOfBank(fromBank), s.NodeOfBank(b), noc.Data, s.Cfg.BlockBytes)
			ev := s.l2Insert(b, set, blk, cache.FlatLRU{})
			s.bump(&a.Migs)
			if ev.Valid {
				if _, dup := s.l2Find(ev.Block.Line, fromBank); dup {
					// The displaced line already has a copy in the source
					// bank; dropping this one loses nothing.
					s.dropEvicted(at, ev, b)
				} else {
					// Swap: the displaced block takes the way just freed
					// in the source bank (same set index bankset-wide).
					sev := s.l2Insert(fromBank, set, ev.Block, cache.FlatLRU{})
					s.dropEvicted(at, sev, fromBank)
				}
			}
			return
		}
		if a.ReplicationOff {
			return
		}
		// Unrestricted replication (paper §6.1): the copy may displace
		// first-class data — the latency gain costs L2 hit rate, which is
		// exactly the D-NUCA trade-off Figure 6 shows.
		ev := s.l2Insert(b, set, cache.Block{
			Valid: true, Line: line, Class: cache.Replica, Owner: c,
		}, cache.FlatLRU{})
		s.bump(&a.Reps)
		s.dropEvicted(at, ev, b)
		return
	}
}

// WriteBack implements System: L1 evictions go to the nearest bank of the
// bankset (clean ones too — D-NUCA keeps blocks in their bankset).
func (a *DNUCA) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.s
	col, set := a.column(line)
	banks := a.banksInColumn(col, c)
	near := banks[0]
	t := s.Mesh.Send(at, s.NodeOfCore(c), s.NodeOfBank(near), noc.Data, s.Cfg.BlockBytes)
	t = s.Bank[near].Access(t)
	s.Dir.L1Evict(line, c, true)
	resident := len(s.l2Has(line)) > 0
	if resident {
		if dirty {
			s.Dir.WriteBackDirty(line)
		}
		return
	}
	a.insertFar(t, set, banks, line, cache.Block{
		Valid: true, Line: line, Class: cache.Shared, Owner: -1, Dirty: dirty,
	})
	if dirty {
		s.Dir.WriteBackDirty(line)
	}
	_ = near
}

// FootprintPrepare implements Footprinter: D-NUCA has no slim-hit tier,
// so the insert-target pass has nothing to contribute.
func (a *DNUCA) FootprintPrepare(*FootprintCtx, FootprintReq) {}

// Footprint implements Footprinter: a D-NUCA transaction may probe, hit,
// promote into, or fill any bank of the line's column (same set index
// bankset-wide), so the footprint claims the whole column plus every
// occupant of the set in each column bank (promotion swaps and fills can
// evict any of them).
func (a *DNUCA) Footprint(ctx *FootprintCtx, r FootprintReq) Footprint {
	s := a.s
	if !s.fpOK {
		return Footprint{Global: true}
	}
	bld := fpBuilder{s: s}
	bld.core(r.Core)
	a.fpColumn(&bld, r.Line)
	s.fpSharers(&bld, ctx, r.Line)
	s.fpCopies(&bld, r.Line)
	if r.WB {
		a.fpColumn(&bld, r.WBLine)
		s.fpCopies(&bld, r.WBLine)
	}
	return bld.finish()
}

func (a *DNUCA) fpColumn(bld *fpBuilder, line mem.Line) {
	bld.part(line)
	bld.channel(line)
	col, set := a.column(line)
	for _, b := range a.bankOrder[col][0] { // membership is core-independent
		bld.bank(b)
		bld.occupants(b, set, false)
	}
}

var _ System = (*DNUCA)(nil)
var _ Footprinter = (*DNUCA)(nil)
