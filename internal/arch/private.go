package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// Tiled is the "Private" baseline: each core's four nearest banks form a
// fully private L2 with unrestricted replication; every L1 write-back is
// stored in the local private L2 (paper §6.1). On a local miss, the
// request is broadcast to the other tiles and memory; the nearest holder
// responds.
type Tiled struct {
	s *Substrate
	// replicate controls whether remote L2/L1 read hits create a local
	// copy. Plain Tiled does not (allocation happens on L1 write-back
	// only); ASR layers adaptive replication on top.
	replicate func(c int) bool
}

// NewTiled builds the private baseline.
func NewTiled(cfg Config) (*Tiled, error) {
	s, err := NewSubstrate(cfg)
	if err != nil {
		return nil, err
	}
	return &Tiled{s: s}, nil
}

// Name implements System.
func (a *Tiled) Name() string { return "private" }

// Sub implements System.
func (a *Tiled) Sub() *Substrate { return a.s }

// Access implements System.
func (a *Tiled) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	s := a.s
	if write {
		if res, ok := s.Upgrade(at, c, line); ok {
			return res
		}
	}
	bank, set := s.Map.Private(line, c)
	reqNode := s.NodeOfCore(c)

	// Local private bank: same router, no hops.
	blk := s.Bank[bank].Lookup(set, cache.LineQuery(line))
	st := s.Dir.State(line)
	var t sim.Cycle
	level := LocalL2

	switch {
	case blk != nil && !ownedByRemoteL1(st, c):
		t = s.Bank[bank].Access(at)
	default:
		// Local miss (or stale local copy): broadcast to the other tiles
		// and, in parallel, to memory (paper Figure 2); the nearest
		// on-chip holder wins, otherwise the DRAM response (which must
		// still wait for the last probe's miss confirmation — token
		// counting requires knowing no probe will supply tokens).
		t = s.Bank[bank].TagProbe(at)
		probeDone := a.broadcastProbes(t, c, line)
		if resp, lvl, ok := a.bestOnChipResponse(t, c, line, st); ok {
			t, level = resp, lvl
			if t < probeDone {
				t = probeDone
			}
			if !write && a.replicate != nil && a.replicate(c) {
				a.fillLocal(t, c, line, false)
			}
		} else {
			memDone := s.memFetch(t, reqNode, line)
			t = memDone
			if t < probeDone {
				t = probeDone
			}
			level = OffChip
		}
	}

	if write {
		if ack := s.collectForWrite(t, reqNode, c, line); ack > t {
			t = ack
		}
	} else {
		s.Dir.GrantReadL1(line, c)
	}
	s.record(level, at, t)
	return Result{Done: t, Level: level}
}

// broadcastProbes sends tag probes to every other tile's candidate bank
// and returns the cycle the slowest probe response is back (misses must
// be confirmed before memory data may be used, which token counting
// enforces; timing-wise the memory latency almost always dominates).
func (a *Tiled) broadcastProbes(at sim.Cycle, c int, line mem.Line) sim.Cycle {
	s := a.s
	done := at
	for o := 0; o < s.Cfg.Cores; o++ {
		if o == c {
			continue
		}
		ob, _ := s.Map.Private(line, o)
		t := s.Mesh.Send(at, s.NodeOfCore(c), s.NodeOfBank(ob), noc.Control, 0)
		t = s.Bank[ob].TagProbe(t)
		t = s.Mesh.Send(t, s.NodeOfBank(ob), s.NodeOfCore(c), noc.Control, 0)
		if t > done {
			done = t
		}
	}
	return done
}

// bestOnChipResponse finds the fastest on-chip source (remote tile L2 or
// remote L1) for the line.
func (a *Tiled) bestOnChipResponse(at sim.Cycle, c int, line mem.Line, st *coherence.LineState) (sim.Cycle, Level, bool) {
	s := a.s
	best := sim.Cycle(0)
	level := RemoteL2
	found := false
	// Remote tiles holding the line in L2.
	for _, loc := range s.l2Has(line) {
		if s.Map.CoreOfBank(loc.bank) == c {
			continue
		}
		t := s.Mesh.Send(at, s.NodeOfCore(c), s.NodeOfBank(loc.bank), noc.Control, 0)
		t = s.Bank[loc.bank].Access(t)
		t = s.Mesh.Send(t, s.NodeOfBank(loc.bank), s.NodeOfCore(c), noc.Data, s.Cfg.BlockBytes)
		if !found || t < best {
			best, level, found = t, RemoteL2, true
		}
	}
	// Remote L1 holders (dirty owner has priority for correctness, but
	// any token holder can supply data).
	if ownedByRemoteL1(st, c) {
		t := a.s.l1Intervention(at, s.NodeOfCore(c), int(st.Owner-coherence.HolderL1), c)
		if !found || t < best {
			best, level, found = t, RemoteL1, true
		}
	} else if st.Sharers()&^(1<<uint(c)) != 0 {
		holder := nearestSharer(s, st, c)
		if holder != c {
			t := a.s.l1Intervention(at, s.NodeOfCore(c), holder, c)
			if !found || t < best {
				best, level, found = t, RemoteL1, true
			}
		}
	}
	return best, level, found
}

// fillLocal allocates a copy of line in core c's private bank (ASR
// replication or CC-style placement).
func (a *Tiled) fillLocal(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.s
	bank, set := s.Map.Private(line, c)
	if _, ok := s.l2Find(line, bank); ok {
		if dirty {
			s.Dir.WriteBackDirty(line)
		}
		return
	}
	ev := s.l2Insert(bank, set, cache.Block{
		Valid: true, Line: line, Class: cache.Private, Owner: c, Dirty: dirty,
	}, cache.FlatLRU{})
	s.dropEvicted(at, ev, bank)
}

// WriteBack implements System: every L1 eviction, clean or dirty,
// allocates in the local private L2 — the tile L2 is a victim store for
// its L1 with unrestricted replication (paper §6.1).
func (a *Tiled) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.s
	bank, _ := s.Map.Private(line, c)
	t := s.Bank[bank].Access(at)
	s.Dir.L1Evict(line, c, true)
	a.fillLocal(t, c, line, dirty)
	if dirty {
		s.Dir.WriteBackDirty(line)
	}
}

// FootprintPrepare implements Footprinter: a Tiled access itself never
// allocates (plain private allocates on L1 write-back only), so only the
// trailing write-back contributes an insert target.
func (a *Tiled) FootprintPrepare(ctx *FootprintCtx, r FootprintReq) {
	if r.WB {
		wb, ws := a.s.Map.Private(r.WBLine, r.Core)
		ctx.NoteInsert(wb, ws)
	}
}

// Footprint implements Footprinter for the Private baseline. A Tiled
// access itself never allocates, so the access side never claims
// occupants; the tiers are: guaranteed local hit (stable copy in the
// core-local bank), guaranteed on-chip response (a stable copy in some
// tile, or an L1 holder whose tokens cannot move — either way the
// broadcast is answered without DRAM), and the full off-chip-capable
// path.
func (a *Tiled) Footprint(ctx *FootprintCtx, r FootprintReq) Footprint {
	s := a.s
	if !s.fpOK || a.replicate != nil {
		// A replication policy (ASR) may consult the substrate RNG, whose
		// draw order is global state.
		return Footprint{Global: true}
	}
	bld := fpBuilder{s: s}
	bld.core(r.Core)
	bank, set := s.Map.Private(r.Line, r.Core)
	ctx.BeginOwn()
	a.FootprintPrepare(ctx, r)
	ctx.EndOwn()

	solo := ctx.Mentions(r.Line) == 1
	owned := fpOwnedRemote(s.Dir.Peek(r.Line), r.Core)
	stableLocal := solo && !ctx.OthersInsert(bank, set) &&
		s.Bank[bank].Peek(set, cache.LineQuery(r.Line)) != nil

	bld.part(r.Line)
	bld.bank(bank)
	switch {
	case stableLocal && !owned && !r.Write:
		// Slim local read hit: same node as the requester, no mesh
		// traffic at all.
	case stableLocal && !owned:
		// Guaranteed local hit; the write's collect fans out from the
		// requester to the current holders and copies.
		s.fpSharers(&bld, ctx, r.Line)
		s.fpCopies(&bld, r.Line)
		if s.fpWriteMem(ctx, r.Line) {
			bld.memNode(r.Line)
		}
	default:
		// A local miss broadcasts tag probes to every other tile's
		// candidate bank and may be answered by any current copy or L1
		// holder.
		for o := 0; o < s.Cfg.Cores; o++ {
			if o == r.Core {
				continue
			}
			ob, _ := s.Map.Private(r.Line, o)
			bld.bank(ob)
		}
		s.fpSharers(&bld, ctx, r.Line)
		s.fpCopies(&bld, r.Line)
		if solo && (s.fpStableCopy(ctx, r.Line) ||
			s.fpPeekSharers(r.Line)&^(1<<uint(r.Core)) != 0) {
			// An on-chip source is guaranteed to answer the broadcast —
			// any surviving L2 copy or a *remote* L1 holder will do
			// (bestOnChipResponse never uses the requester's own tokens),
			// and with no other mention of the line neither kind can
			// disappear — so the memory fetch is never issued.
			if r.Write && s.fpWriteMem(ctx, r.Line) {
				bld.memNode(r.Line)
			}
		} else {
			bld.channel(r.Line)
		}
	}
	if r.WB {
		wb, ws := s.Map.Private(r.WBLine, r.Core)
		bld.part(r.WBLine)
		bld.bank(wb)
		// A Tiled access never allocates, so only *other* requests'
		// inserts threaten the write-back's resident copy; stable and
		// resident means the write-back is a pure bank update.
		stableWB := ctx.Mentions(r.WBLine) == 1 && !ctx.OthersInsert(wb, ws)
		if stableWB {
			_, stableWB = s.l2Find(r.WBLine, wb)
		}
		if !stableWB {
			bld.occupants(wb, ws, false)
		}
	}
	return bld.finish()
}

var _ System = (*Tiled)(nil)
var _ Footprinter = (*Tiled)(nil)
