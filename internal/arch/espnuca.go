package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/core"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// ESPNUCA is the paper's proposal (§3): SP-NUCA extended with helping
// blocks — replicas of shared data in the requester's private partition
// and victims of remote private data in the shared partition — governed
// either by flat LRU (the Figure 5 baseline) or by the protected-LRU
// policy with per-bank set sampling and EMA-driven nmax adaptation.
type ESPNUCA struct {
	sp        *SPNUCA
	protected bool
	samplers  []*core.Sampler // per bank, nil when flat LRU
	policies  []cache.Policy
	hooks     espHooks

	// ReplicasOff and VictimsOff disable one helping-block mechanism;
	// used by the ablation benchmarks to attribute ESP-NUCA's gains.
	ReplicasOff, VictimsOff bool

	// Replicas and Victims count helping-block creations; RefusedHelping
	// counts inserts rejected by protected LRU.
	Replicas, Victims, RefusedHelping uint64
}

// NewESPNUCA builds ESP-NUCA; protected selects protected LRU (the
// paper's final configuration) over flat LRU.
func NewESPNUCA(cfg Config, protected bool) (*ESPNUCA, error) {
	return newESPNUCA(cfg, protected, nil)
}

// NewESPNUCAQoS builds protected-LRU ESP-NUCA with the per-priority d
// policy of paper §5.2's future-work remark: each bank's controller uses
// the degradation slack of its owning core's priority class.
func NewESPNUCAQoS(cfg Config, qos core.QoS) (*ESPNUCA, error) {
	if err := qos.Validate(); err != nil {
		return nil, err
	}
	return newESPNUCA(cfg, true, &qos)
}

func newESPNUCA(cfg Config, protected bool, qos *core.QoS) (*ESPNUCA, error) {
	sp, err := NewSPNUCA(cfg, FlatLRUPartition)
	if err != nil {
		return nil, err
	}
	a := &ESPNUCA{sp: sp, protected: protected}
	for b := 0; b < cfg.Banks; b++ {
		if protected {
			scfg := cfg.Sampler
			if qos != nil {
				scfg = qos.Apply(scfg, sp.s.Map.CoreOfBank(b))
			}
			smp := core.NewSampler(scfg, cfg.Ways)
			core.AssignRoles(sp.s.Bank[b], scfg)
			a.samplers = append(a.samplers, smp)
			a.policies = append(a.policies, core.ProtectedLRU{S: smp})
		} else {
			a.policies = append(a.policies, cache.FlatLRU{})
		}
	}
	if protected {
		sp.sample = func(bank, set int, firstClassHit bool) {
			bset := sp.s.Bank[bank].Set(set)
			if bset.Sampled {
				a.samplers[bank].Observe(bset.Role, firstClassHit)
			}
		}
	}
	a.hooks = espHooks{
		privateMatch: func(line mem.Line, c int) cache.Query {
			return cache.Query{Line: line, Classes: cache.MaskPrivate | cache.MaskReplica, Owner: cache.AnyOwner}
		},
		homeMatch: func(line mem.Line) cache.Query {
			return cache.Query{Line: line, Classes: cache.MaskShared | cache.MaskVictim, Owner: cache.AnyOwner}
		},
		onHomeHit: a.onHomeHit,
		policyFor: func(bank int) cache.Policy { return a.policies[bank] },
		espOwner:  a,
	}
	return a, nil
}

// Name implements System.
func (a *ESPNUCA) Name() string {
	if a.protected {
		return "esp-nuca"
	}
	return "esp-nuca-flat"
}

// Sub implements System.
func (a *ESPNUCA) Sub() *Substrate { return a.sp.s }

// Access implements System.
func (a *ESPNUCA) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	t, level := a.sp.resolve(at, c, line, write, &a.hooks)
	a.sp.s.record(level, at, t)
	return Result{Done: t, Level: level}
}

// WriteBack implements System.
func (a *ESPNUCA) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	a.sp.writeBack(at, c, line, dirty, &a.hooks)
}

// onHomeHit runs when the probe chain hits in the shared home bank.
// Two ESP-NUCA behaviours attach here:
//
//   - victim promotion: a victim touched by a core other than its owner
//     becomes a first-class shared block in place (a second core is now
//     using it);
//   - replica creation: a shared block served from a remote home bank is
//     copied into the requester's private partition as a helping block,
//     subject to the replacement policy's admission decision.
func (a *ESPNUCA) onHomeHit(t sim.Cycle, c int, line mem.Line, bank, set int, blk *cache.Block) {
	s := a.sp.s
	if blk.Class == cache.Victim {
		if blk.Owner != c {
			s.Bank[bank].Reclass(set, cache.ClassQuery(line, cache.Victim), cache.Shared, -1)
			s.reclassWhere(line, bank, cache.Shared)
			s.markShared(line)
		}
		return
	}
	// Replica creation for remote shared hits.
	if blk.Class != cache.Shared || a.ReplicasOff {
		return
	}
	if s.NodeOfBank(bank) == s.NodeOfCore(c) {
		return // already local: nothing to gain
	}
	pbank, pset := s.Map.Private(line, c)
	if pbank == bank {
		return
	}
	if _, ok := s.l2Find(line, pbank); ok {
		return // replica already present
	}
	ev := s.l2Insert(pbank, pset, cache.Block{
		Valid: true, Line: line, Class: cache.Replica, Owner: c,
	}, a.policies[pbank])
	if ev.Refused {
		s.bump(&a.RefusedHelping)
		return
	}
	s.bump(&a.Replicas)
	a.routeEviction(t, ev, pbank)
}

// routeEviction is ESP-NUCA's eviction fate: an evicted first-class
// private block is spilled into its home bank's shared partition as a
// victim (helping block) instead of being dropped; everything else takes
// the default path.
func (a *ESPNUCA) routeEviction(at sim.Cycle, ev cache.Evicted, fromBank int) {
	s := a.sp.s
	if !ev.Valid {
		return
	}
	blk := ev.Block
	if blk.Class != cache.Private || a.VictimsOff {
		s.dropEvicted(at, ev, fromBank)
		return
	}
	hbank, hset := s.Map.Shared(blk.Line)
	if hbank == fromBank {
		s.dropEvicted(at, ev, fromBank)
		return
	}
	if _, ok := s.l2Find(blk.Line, hbank); ok {
		s.dropEvicted(at, ev, fromBank)
		return
	}
	t := s.Mesh.Send(at, s.NodeOfBank(fromBank), s.NodeOfBank(hbank), noc.Data, s.Cfg.BlockBytes)
	t = s.Bank[hbank].Access(t)
	vev := s.l2Insert(hbank, hset, cache.Block{
		Valid: true, Line: blk.Line, Class: cache.Victim, Owner: blk.Owner, Dirty: blk.Dirty,
	}, a.policies[hbank])
	if vev.Refused {
		s.bump(&a.RefusedHelping)
		s.dropEvicted(t, ev, fromBank)
		return
	}
	s.bump(&a.Victims)
	// The displaced block from the victim insert takes the default path:
	// spilling victims recursively would ping-pong helping blocks.
	s.dropEvicted(t, vev, hbank)
}

// NMaxHistogram returns the current nmax of every bank (adaptivity
// studies); nil when running flat LRU.
func (a *ESPNUCA) NMaxHistogram() []int {
	if !a.protected {
		return nil
	}
	out := make([]int, len(a.samplers))
	for i, s := range a.samplers {
		out[i] = s.NMax()
	}
	return out
}

// Samplers exposes the per-bank controllers (nil entries when flat).
func (a *ESPNUCA) Samplers() []*core.Sampler { return a.samplers }

// FootprintPrepare implements Footprinter: SP-NUCA's insert targets plus
// the depth-2 victim-spill home sets of private occupants.
func (a *ESPNUCA) FootprintPrepare(ctx *FootprintCtx, r FootprintReq) {
	a.sp.fpPrepare(ctx, r, true)
}

// Footprint implements Footprinter for ESP-NUCA.
func (a *ESPNUCA) Footprint(ctx *FootprintCtx, r FootprintReq) Footprint {
	return a.sp.footprint(ctx, r, true)
}

var _ System = (*ESPNUCA)(nil)
var _ Footprinter = (*ESPNUCA)(nil)
