package arch

import (
	"testing"

	"espnuca/internal/cache"
	"espnuca/internal/mem"
)

// Fault-injection tests: corrupt internal state deliberately and verify
// the invariant checkers catch it. A checker that never fires is
// indistinguishable from no checker.

func TestInjectTokenLossDetected(t *testing.T) {
	sys := build(t, "esp-nuca")
	s := sys.Sub()
	sys.Access(0, 0, 100, false)
	st := s.Dir.State(100)
	st.MemTokens-- // lose a token
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("token loss not detected")
	}
	st.MemTokens++ // repair
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("repair not accepted: %v", err)
	}
}

func TestInjectPhantomResidencyDetected(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	sys.Access(0, 0, 100, false)
	// Remove the block from its bank behind the bookkeeping's back.
	bank, set := s.Map.Shared(100)
	if _, ok := s.Bank[bank].Invalidate(set, cache.LineQuery(100)); !ok {
		t.Fatal("setup: line not resident")
	}
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("phantom residency entry not detected")
	}
}

func TestInjectOrphanBlockDetected(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	// Insert a block directly into a bank without a residency entry.
	s.Bank[3].Insert(0, cache.Block{Valid: true, Line: 777, Class: cache.Shared, Owner: -1}, cache.FlatLRU{})
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("orphan bank block not detected")
	}
}

func TestInjectHelpCountCorruptionDetected(t *testing.T) {
	sys := build(t, "esp-nuca")
	s := sys.Sub()
	s.Bank[0].Set(0).HelpCount = 3 // no helping blocks actually present
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("helping-counter corruption not detected")
	}
}

func TestInjectDirtyAtMemoryDetected(t *testing.T) {
	sys := build(t, "private")
	s := sys.Sub()
	sys.Access(0, 2, mem.Line(300), false)
	st := s.Dir.State(300)
	// All tokens back at memory but dirty set: impossible state.
	for c := range st.L1Tokens {
		st.MemTokens += st.L1Tokens[c]
		st.L1Tokens[c] = 0
	}
	st.MemTokens += st.L2Tokens
	st.L2Tokens = 0
	st.Owner = -2 // HolderMem
	st.Dirty = true
	if err := s.Dir.Verify(300); err == nil {
		t.Fatal("dirty-at-memory not detected")
	}
}
