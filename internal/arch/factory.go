package arch

import (
	"fmt"
	"sort"
)

// Build constructs an architecture by name. Recognized names:
//
//	shared          Static-NUCA baseline
//	private         Tiled private baseline
//	sp-nuca         SP-NUCA with flat LRU (paper's choice)
//	sp-nuca-shadow  SP-NUCA with shadow-tag partitioning (Fig. 4)
//	sp-nuca-static  SP-NUCA with a static 12+4 partition (Fig. 4)
//	esp-nuca-flat   ESP-NUCA with flat LRU (Fig. 5 baseline)
//	esp-nuca        ESP-NUCA with protected LRU (the proposal)
//	esp-nuca-qos    ESP-NUCA with per-priority d (S5.2 future work)
//	d-nuca          idealized-perfect-search D-NUCA
//	asr             Adaptive Selective Replication
//	cc              Cooperative Caching (cfg.CCProbability)
//	victim-replication  Zhang & Asanovic's VR (bonus counterpart)
//	r-nuca          Hardavellas et al.'s Reactive-NUCA (bonus counterpart)
func Build(name string, cfg Config) (System, error) {
	switch name {
	case "shared":
		return NewSharedNUCA(cfg)
	case "private":
		return NewTiled(cfg)
	case "sp-nuca":
		return NewSPNUCA(cfg, FlatLRUPartition)
	case "sp-nuca-shadow":
		return NewSPNUCA(cfg, ShadowTagPartition)
	case "sp-nuca-static":
		return NewSPNUCA(cfg, StaticPartitionKind)
	case "esp-nuca-flat":
		return NewESPNUCA(cfg, false)
	case "esp-nuca":
		return NewESPNUCA(cfg, true)
	case "d-nuca":
		return NewDNUCA(cfg)
	case "asr":
		return NewASR(cfg)
	case "cc":
		return NewCC(cfg)
	case "esp-nuca-qos":
		return NewESPNUCAQoS(cfg, cfg.QoS)
	case "victim-replication":
		return NewVictimReplication(cfg)
	case "r-nuca":
		return NewRNUCA(cfg)
	}
	return nil, fmt.Errorf("arch: unknown architecture %q (known: %v)", name, Names())
}

// Names returns every buildable architecture name, sorted.
func Names() []string {
	names := []string{
		"shared", "private", "sp-nuca", "sp-nuca-shadow", "sp-nuca-static",
		"esp-nuca-flat", "esp-nuca", "esp-nuca-qos", "d-nuca", "asr", "cc",
		"victim-replication", "r-nuca",
	}
	sort.Strings(names)
	return names
}
