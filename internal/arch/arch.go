// Package arch assembles the seven evaluated L2 organizations on one
// common substrate (cores, split L1s, token-coherence directory, mesh
// NoC, DRAM): Shared S-NUCA, Private/Tiled, SP-NUCA (flat LRU, shadow
// tags, static partition), ESP-NUCA (flat or protected LRU), D-NUCA with
// idealized perfect search, Adaptive Selective Replication, and
// Cooperative Caching.
//
// Every architecture implements the System interface: the CPU model calls
// Access for each L1 miss and WriteBack for each dirty L1 eviction; the
// architecture resolves the transaction against its probe chain (paper
// Figure 2), moving tokens in the shared directory and accumulating the
// access-time decomposition of Figure 6.
package arch

import (
	"fmt"
	"sync/atomic"

	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/core"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// Level classifies where an access was satisfied, matching the Figure 6
// decomposition.
type Level int

// Decomposition levels, nearest first.
const (
	LocalL1  Level = iota // hit in the requesting core's L1
	RemoteL1              // satisfied by another core's L1 (intervention)
	LocalL2               // hit in an L2 bank on the requester's router
	RemoteL2              // hit in a remote private/tile bank
	SharedL2              // hit in a remote shared/home bank
	OffChip               // satisfied by DRAM
	NumLevels
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LocalL1:
		return "LocalL1"
	case RemoteL1:
		return "RemoteL1"
	case LocalL2:
		return "LocalL2"
	case RemoteL2:
		return "RemoteL2"
	case SharedL2:
		return "SharedL2"
	case OffChip:
		return "OffChip"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Result reports how an L1 miss was resolved.
type Result struct {
	Done  sim.Cycle
	Level Level
}

// System is one L2 organization bound to a substrate.
type System interface {
	// Name returns the architecture's display name.
	Name() string
	// Access resolves an L1 miss by core for line at cycle at; write
	// requests collect every token (GETX).
	Access(at sim.Cycle, core int, line mem.Line, write bool) Result
	// WriteBack routes an L1 eviction (clean or dirty). Victim-allocating
	// organizations install the block in L2; others update or drop it.
	WriteBack(at sim.Cycle, core int, line mem.Line, dirty bool)
	// Sub returns the underlying substrate (stats, invariants).
	Sub() *Substrate
}

// Config describes the simulated system. DefaultConfig is the paper's
// Table 2; ScaledConfig is a capacity-scaled variant that keeps every
// ratio but makes multi-run experiments tractable.
type Config struct {
	Cores       int
	Banks       int
	SetsPerBank int
	Ways        int
	BlockBytes  int
	BankLatency sim.Cycle
	TagLatency  sim.Cycle

	L1   coherence.L1Config
	NoC  noc.Config
	DRAM mem.DRAMConfig

	// Sampler configures ESP-NUCA's protected-LRU controller.
	Sampler core.SamplerConfig

	// StaticPrivateWays configures the static-partition SP-NUCA variant
	// of Figure 4 (paper: 12 private + 4 shared).
	StaticPrivateWays int

	// CCProbability is the cooperation probability for Cooperative
	// Caching (paper evaluates 0, 0.3, 0.7, 1.0).
	CCProbability float64

	// QoS configures the per-priority degradation policy of the
	// "esp-nuca-qos" architecture (paper S5.2's future-work sketch).
	QoS core.QoS

	// Seed perturbs stochastic mechanisms inside architectures (ASR and
	// CC randomization), independent of the workload seed.
	Seed uint64

	// CheckTokens enables per-transaction token-conservation checks.
	CheckTokens bool
}

// DefaultConfig returns the paper's Table 2 system: 8 cores, 8 MB L2 in
// 32 banks (16-way, 256 sets, 64 B blocks, 5-cycle banks), 32 KB L1s,
// 4x2 mesh with 5-cycle hops.
func DefaultConfig() Config {
	return Config{
		Cores: 8, Banks: 32, SetsPerBank: 256, Ways: 16, BlockBytes: 64,
		BankLatency: 5, TagLatency: 2,
		L1:                coherence.DefaultL1Config(),
		NoC:               noc.DefaultConfig(),
		DRAM:              mem.DefaultDRAMConfig(),
		Sampler:           core.DefaultSamplerConfig(),
		QoS:               core.DefaultQoS(),
		StaticPrivateWays: 12,
		CCProbability:     0.7,
	}
}

// ScaledConfig returns a capacity-scaled system preserving Table 2's
// organization and (approximately) its L1:L2 ratio: a 1 MB L2 in the same
// 32 banks and 8 KB split L1s. The experiment harness uses it so that the
// synthetic workloads exercise the same capacity regimes as the paper's
// full-size system within short runs.
func ScaledConfig() Config {
	c := DefaultConfig()
	c.SetsPerBank = 32 // 32 banks x 32 sets x 16 ways x 64B = 1 MB
	c.L1 = coherence.L1Config{Bytes: 8 * 1024, Ways: 4, BlockBytes: 64, Latency: 3, TagLatency: 1}
	return c
}

// L2Lines returns the L2 capacity in cache lines.
func (c Config) L2Lines() int { return c.Banks * c.SetsPerBank * c.Ways }

// L1ILines returns the instruction-L1 capacity in lines.
func (c Config) L1ILines() int { return c.L1.Bytes / c.L1.BlockBytes }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores != 8 {
		return fmt.Errorf("arch: this substrate models the paper's 8-core CMP, got %d cores", c.Cores)
	}
	if c.Banks%c.Cores != 0 {
		return fmt.Errorf("arch: %d banks not divisible across %d cores", c.Banks, c.Cores)
	}
	if c.StaticPrivateWays < 0 || c.StaticPrivateWays > c.Ways {
		return fmt.Errorf("arch: static partition %d exceeds %d ways", c.StaticPrivateWays, c.Ways)
	}
	if c.CCProbability < 0 || c.CCProbability > 1 {
		return fmt.Errorf("arch: cooperation probability %g outside [0,1]", c.CCProbability)
	}
	return nil
}

// l2loc records one L2 residency of a line.
type l2loc struct {
	bank  int
	class cache.Class
	set   int
}

// Substrate is the hardware common to every architecture.
type Substrate struct {
	Cfg  Config
	Mesh *noc.Mesh
	DRAM *mem.DRAM
	Dir  *coherence.Directory
	L1   *coherence.L1s
	Map  core.Mapping
	Bank []*cache.Bank
	RNG  *sim.RNG

	// where and status are partitioned by home-bank bits (line & Banks-1):
	// barrier transactions whose footprints claim disjoint Banks bits touch
	// disjoint partitions, so parallel conflict groups never share a
	// backing array (see footprint.go).
	where partLineMap[[]l2loc]
	// scratch is collectForWrite's reusable residency snapshot, one per
	// core: all of a core's transactions land in the same conflict group
	// (every footprint includes its requester-core bit), so the per-core
	// buffer is never shared across workers.
	scratch [][]l2loc

	// sharedStatus tracks the SP/ESP private bit: present = line has been
	// on chip; value true = shared status (two or more accessor cores).
	status partLineMap[lineStatus]

	// hintValid/hintPresent carry the sharded runner's per-core
	// requester-presence override for Upgrade; see SetPresenceHint.
	hintValid   []bool
	hintPresent []bool

	// concurrent gates record/bump onto atomic adds during the sharded
	// engine's parallel barrier phases; the sums are order-free, so the
	// totals stay deterministic. Serial paths never pay the atomic cost.
	concurrent bool

	// OnLine, when non-nil, observes every line whose substrate residency
	// or status bookkeeping is consulted or mutated. Test instrumentation
	// for the footprint oracle; nil in production runs.
	OnLine func(l mem.Line)

	// fpOK reports that the geometry fits the footprint bitmask model
	// (<=64 banks, <=64 links, <=32 cores, <=32 channels); fpLinks caches
	// Mesh.PathLinkMask for every node pair, [from*nodes+to]. Both are
	// set up by fpInit (footprint.go).
	fpOK    bool
	fpLinks []uint64

	// Counts and Latency accumulate the Figure 6 decomposition; index by
	// Level. Latency is in cycles summed over accesses.
	Counts  [NumLevels]uint64
	Latency [NumLevels]uint64
}

type lineStatus struct {
	shared bool
	owner  int // first accessor while private
}

// NewSubstrate builds the common hardware for a config.
func NewSubstrate(cfg Config) (*Substrate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := noc.New(cfg.NoC)
	if err != nil {
		return nil, err
	}
	dir := coherence.NewDirectoryParts(cfg.Banks)
	dir.Check = cfg.CheckTokens
	l1, err := coherence.NewL1s(cfg.Cores, cfg.L1, dir)
	if err != nil {
		return nil, err
	}
	mapping, err := core.NewMapping(cfg.Banks, cfg.Cores, cfg.SetsPerBank)
	if err != nil {
		return nil, err
	}
	s := &Substrate{
		Cfg:         cfg,
		Mesh:        mesh,
		DRAM:        mem.NewDRAM(cfg.DRAM),
		Dir:         dir,
		L1:          l1,
		Map:         mapping,
		RNG:         sim.NewRNG(cfg.Seed ^ 0xA11CE),
		where:       newPartLineMap[[]l2loc](cfg.Banks, 1<<16),
		status:      newPartLineMap[lineStatus](cfg.Banks, 1<<16),
		scratch:     make([][]l2loc, cfg.Cores),
		hintValid:   make([]bool, cfg.Cores),
		hintPresent: make([]bool, cfg.Cores),
	}
	for i := 0; i < cfg.Banks; i++ {
		b, err := cache.NewBank(cache.Config{
			Sets: cfg.SetsPerBank, Ways: cfg.Ways,
			Latency: cfg.BankLatency, TagLatency: cfg.TagLatency,
		})
		if err != nil {
			return nil, err
		}
		s.Bank = append(s.Bank, b)
	}
	s.fpInit()
	return s, nil
}

// SetFunctional switches the whole substrate between timed and
// functional mode. In functional mode every timing sink — mesh links,
// DRAM channels, L2 bank ports, L1 ports — completes instantly without
// claiming its resource, while all state machinery (tag arrays, LRU and
// class metadata, directory tokens, private-bit status, the adaptive
// mechanisms' counters and RNG draws) follows exactly the detailed-mode
// code paths. The sampled-run fast-forward runs the memory system in
// this mode to warm a measurement window.
func (s *Substrate) SetFunctional(on bool) {
	s.Mesh.SetFunctional(on)
	s.DRAM.SetFunctional(on)
	s.L1.SetFunctional(on)
	for _, b := range s.Bank {
		b.SetFunctional(on)
	}
}

// Reseed re-derives the substrate RNG exactly as NewSubstrate does for
// the given seed and records it in Cfg. RunOn uses it to align a
// caller-built system with the run seed; reseeding a freshly built
// system with its own seed is a no-op. The RNG is reset in place so
// components holding the pointer see the new state.
func (s *Substrate) Reseed(seed uint64) {
	s.Cfg.Seed = seed
	*s.RNG = *sim.NewRNG(seed ^ 0xA11CE)
}

// NodeOfBank returns the router to which bank b attaches (banks attach in
// groups of Banks/Nodes per router, groups aligned with cores).
func (s *Substrate) NodeOfBank(b int) noc.NodeID {
	perNode := s.Cfg.Banks / s.Mesh.Nodes()
	return noc.NodeID(b / perNode)
}

// NodeOfCore returns core c's router.
func (s *Substrate) NodeOfCore(c int) noc.NodeID { return noc.NodeID(c) }

// SetConcurrent switches the substrate's shared counters (the Figure 6
// decomposition, architecture-specific event counters, mesh traffic, DRAM
// access counts) between plain and atomic increments. The sharded runner
// sets it around parallel barrier servicing; serial paths never pay the
// atomic cost. Counter totals are order-free integer sums, so parallel
// accumulation is deterministic.
func (s *Substrate) SetConcurrent(on bool) {
	s.concurrent = on
	s.Mesh.SetConcurrent(on)
	s.DRAM.SetConcurrent(on)
}

// bump adds one to a shared event counter, atomically during concurrent
// barrier phases. Architecture counters (migrations, replicas, victims...)
// route through it.
func (s *Substrate) bump(p *uint64) {
	if s.concurrent {
		atomic.AddUint64(p, 1)
	} else {
		*p++
	}
}

// record accumulates an access into the decomposition.
func (s *Substrate) record(level Level, at, done sim.Cycle) {
	if s.concurrent {
		atomic.AddUint64(&s.Counts[level], 1)
		atomic.AddUint64(&s.Latency[level], uint64(done-at))
		return
	}
	s.Counts[level]++
	s.Latency[level] += uint64(done - at)
}

// RecordL1Hit lets the CPU model account local L1 hits in the same
// decomposition.
func (s *Substrate) RecordL1Hit(lat sim.Cycle) {
	s.Counts[LocalL1]++
	s.Latency[LocalL1] += uint64(lat)
}

// RecordL1Hits accounts n local L1 hits at once. The sharded runner's
// cores buffer their hit counts core-locally during the parallel phase
// and flush them here at every window barrier; because the decomposition
// is a pair of order-independent sums, the bulk flush yields the same
// totals the serial engine's per-hit calls would.
func (s *Substrate) RecordL1Hits(n uint64, lat sim.Cycle) {
	s.Counts[LocalL1] += n
	s.Latency[LocalL1] += n * uint64(lat)
}

// SetPresenceHint overrides — for core's next Access only — what Upgrade
// considers the requester's L1 presence for the accessed line. The
// sharded runner fills a missing line into the requester's L1 at issue
// time (the parallel phase) but routes the access itself through the
// barrier phase; by then L1.Has would report the post-fill state,
// misclassifying every plain miss as an upgrade. The hint restores the
// at-issue truth. ClearPresenceHint removes it; the serial engine never
// sets one. The hint is per core so that the parallel barrier's workers
// — which only ever service one core's transactions concurrently with
// other cores' (every footprint includes its requester-core bit) — never
// share a hint slot.
func (s *Substrate) SetPresenceHint(core int, present bool) {
	s.hintValid[core] = true
	s.hintPresent[core] = present
}

// ClearPresenceHint removes the presence hint set by SetPresenceHint.
func (s *Substrate) ClearPresenceHint(core int) { s.hintValid[core] = false }

// --- L2 residency management ---

// onLine notifies the oracle hook, if installed.
func (s *Substrate) onLine(l mem.Line) {
	if s.OnLine != nil {
		s.OnLine(l)
	}
}

// l2Has returns the copies of line currently in the L2.
func (s *Substrate) l2Has(line mem.Line) []l2loc {
	s.onLine(line)
	locs, _ := s.where.get(line)
	return locs
}

// l2Find returns the residency entry for line in bank, if any.
func (s *Substrate) l2Find(line mem.Line, bank int) (l2loc, bool) {
	for _, loc := range s.l2Has(line) {
		if loc.bank == bank {
			return loc, true
		}
	}
	return l2loc{}, false
}

// l2Insert places blk into (bank, set) under pol and returns the eviction
// for the caller to route. Residency bookkeeping for both the inserted and
// the evicted block is handled here; token/dirty consequences of the
// eviction are the caller's job via dropEvicted or an architecture-
// specific spill.
func (s *Substrate) l2Insert(bank, set int, blk cache.Block, pol cache.Policy) cache.Evicted {
	s.onLine(blk.Line)
	ev := s.Bank[bank].Insert(set, blk, pol)
	if !ev.Refused {
		p := s.where.ptr(blk.Line)
		*p = append(*p, l2loc{bank: bank, class: blk.Class, set: set})
	}
	if ev.Valid {
		s.removeWhere(ev.Block.Line, bank)
	}
	return ev
}

// l2Invalidate removes line from bank and returns the dropped block.
func (s *Substrate) l2Invalidate(line mem.Line, bank, set int) (cache.Block, bool) {
	blk, ok := s.Bank[bank].Invalidate(set, cache.LineQuery(line))
	if ok {
		s.removeWhere(line, bank)
	}
	return blk, ok
}

func (s *Substrate) removeWhere(line mem.Line, bank int) {
	s.onLine(line)
	locs, _ := s.where.get(line)
	for i, loc := range locs {
		if loc.bank == bank {
			locs[i] = locs[len(locs)-1]
			locs = locs[:len(locs)-1]
			break
		}
	}
	if len(locs) == 0 {
		s.where.del(line)
		s.maybeForgetStatus(line)
	} else {
		s.where.set(line, locs)
	}
}

// reclassWhere updates the cached class of a residency entry after a
// Reclass on the bank.
func (s *Substrate) reclassWhere(line mem.Line, bank int, to cache.Class) {
	s.onLine(line)
	locs, _ := s.where.get(line)
	for i := range locs {
		if locs[i].bank == bank {
			locs[i].class = to
		}
	}
}

// dropEvicted applies the default fate of an evicted L2 block: if it was
// the last on-chip L2 copy, its tokens return to memory and dirty data is
// written back to DRAM (posted).
func (s *Substrate) dropEvicted(at sim.Cycle, ev cache.Evicted, fromBank int) {
	if !ev.Valid {
		return
	}
	line := ev.Block.Line
	if len(s.l2Has(line)) > 0 {
		return // other L2 copies remain; the pool keeps its tokens
	}
	st := s.Dir.State(line)
	dirty := ev.Block.Dirty || (st.Owner == coherence.HolderL2 && st.Dirty)
	if s.Dir.L2Evict(line) || dirty {
		// Posted write-back: bank -> memory controller.
		mcNode := s.Mesh.MemRouter(s.DRAM.ChannelOf(line))
		t := s.Mesh.Send(at, s.NodeOfBank(fromBank), mcNode, noc.Data, s.Cfg.BlockBytes)
		s.DRAM.Write(t, line)
	}
	s.maybeForgetStatus(line)
}

// --- SP/ESP private-bit status ---

// statusOf returns (shared?, firstOwner) for a line, registering core c
// as the first accessor on first touch and upgrading to shared when a
// different core touches a private line (paper §2.1).
func (s *Substrate) statusOf(line mem.Line, c int) (shared bool, owner int) {
	s.onLine(line)
	st, ok := s.status.get(line)
	if !ok {
		s.status.set(line, lineStatus{shared: false, owner: c})
		return false, c
	}
	if !st.shared && st.owner != c {
		st.shared = true
		s.status.set(line, st)
	}
	return st.shared, st.owner
}

// peekStatus returns the status without mutating it.
func (s *Substrate) peekStatus(line mem.Line) (shared bool, owner int, known bool) {
	s.onLine(line)
	st, ok := s.status.get(line)
	return st.shared, st.owner, ok
}

// markShared forces a line's status to shared (victim touched by a
// non-owner, migration, etc.).
func (s *Substrate) markShared(line mem.Line) {
	s.onLine(line)
	st, _ := s.status.get(line)
	st.shared = true
	s.status.set(line, st)
}

// maybeForgetStatus clears the private bit when the line has left the
// chip entirely: the status "remains with the block while it stays in the
// chip" (paper §2.1).
func (s *Substrate) maybeForgetStatus(line mem.Line) {
	s.onLine(line)
	if len(s.l2Has(line)) > 0 {
		return
	}
	if st := s.Dir.Peek(line); st != nil && st.Sharers() != 0 {
		return
	}
	s.status.del(line)
	// The line has fully left the chip; if its token state has decayed
	// back to all-at-memory the directory entry is redundant (a later
	// State call re-materializes identical contents), so drop it to bound
	// the table's live-entry count.
	s.Dir.Forget(line)
}

// --- Common transaction steps ---

// memFetch issues a read to DRAM for a requester at reqNode starting at
// cycle at (the cycle the request leaves that node) and returns when the
// data arrives back at reqNode.
func (s *Substrate) memFetch(at sim.Cycle, reqNode noc.NodeID, line mem.Line) sim.Cycle {
	mcNode := s.Mesh.MemRouter(s.DRAM.ChannelOf(line))
	t := s.Mesh.Send(at, reqNode, mcNode, noc.Control, 0)
	t = s.DRAM.Read(t, line)
	return s.Mesh.Send(t, mcNode, reqNode, noc.Data, s.Cfg.BlockBytes)
}

// l1Intervention forwards a request from the serialization point at
// viaNode to the L1 of core holder and returns when data reaches core
// reqCore.
func (s *Substrate) l1Intervention(at sim.Cycle, viaNode noc.NodeID, holder, reqCore int) sim.Cycle {
	t := s.Mesh.Send(at, viaNode, s.NodeOfCore(holder), noc.Control, 0)
	t = s.L1.Access(t, holder, false)
	return s.Mesh.Send(t, s.NodeOfCore(holder), s.NodeOfCore(reqCore), noc.Data, s.Cfg.BlockBytes)
}

// Upgrade handles a write by a core whose L1 already holds the line with
// insufficient tokens: the data never moves, only tokens do. Memory cedes
// its tokens via a control round trip; other holders are invalidated as
// in any GETX. It reports false when the requester's L1 does not hold the
// line (a real miss).
func (s *Substrate) Upgrade(at sim.Cycle, c int, line mem.Line) (Result, bool) {
	held := s.L1.Has(c, line)
	if s.hintValid[c] {
		held = s.hintPresent[c]
	}
	if !held {
		return Result{}, false
	}
	st := s.Dir.State(line)
	t := at
	if st.MemTokens > 0 {
		mc := s.Mesh.MemRouter(s.DRAM.ChannelOf(line))
		tt := s.Mesh.Send(at, s.NodeOfCore(c), mc, noc.Control, 0)
		tt = s.Mesh.Send(tt, mc, s.NodeOfCore(c), noc.Control, 0)
		t = tt
	}
	if ack := s.collectForWrite(at, s.NodeOfCore(c), c, line); ack > t {
		t = ack
	}
	s.record(LocalL1, at, t)
	return Result{Done: t, Level: LocalL1}, true
}

// collectForWrite performs the GETX side effects: invalidates every other
// L1 copy (control to each sharer, ack to the requester) and every L2
// copy, grants all tokens to the writer, and returns the cycle the last
// acknowledgement reaches the requester. viaNode is the serialization
// point the invalidations fan out from.
func (s *Substrate) collectForWrite(at sim.Cycle, viaNode noc.NodeID, reqCore int, line mem.Line) sim.Cycle {
	st := s.Dir.State(line)
	done := at
	mask := st.Sharers()
	for c := 0; c < s.Cfg.Cores; c++ {
		if c == reqCore || mask&(1<<uint(c)) == 0 {
			continue
		}
		t := s.Mesh.Send(at, viaNode, s.NodeOfCore(c), noc.Control, 0)
		t = s.L1.Access(t, c, false)
		t = s.Mesh.Send(t, s.NodeOfCore(c), s.NodeOfCore(reqCore), noc.Control, 0)
		if t > done {
			done = t
		}
		s.L1.Invalidate(c, line)
	}
	// Invalidate every L2 copy (tokens drain to the writer). l2Invalidate
	// mutates s.where[line], so iterate over a reusable snapshot instead of
	// the live slice (the per-core scratch buffer avoids an allocation per
	// write; collectForWrite never reenters itself, and a core's
	// transactions never run concurrently with each other).
	s.scratch[reqCore] = append(s.scratch[reqCore][:0], s.l2Has(line)...)
	for _, loc := range s.scratch[reqCore] {
		t := s.Mesh.Send(at, viaNode, s.NodeOfBank(loc.bank), noc.Control, 0)
		t = s.Bank[loc.bank].TagProbe(t)
		t = s.Mesh.Send(t, s.NodeOfBank(loc.bank), s.NodeOfCore(reqCore), noc.Control, 0)
		if t > done {
			done = t
		}
		s.l2Invalidate(line, loc.bank, loc.set)
	}
	s.Dir.GrantWriteL1(line, reqCore)
	return done
}

// CheckInvariants verifies bank counters, residency bookkeeping and token
// conservation. Tests call it after driving traffic.
func (s *Substrate) CheckInvariants() error {
	for i, b := range s.Bank {
		if err := b.CheckInvariants(); err != nil {
			return fmt.Errorf("bank %d: %w", i, err)
		}
	}
	// Every 'where' entry must exist in its bank, and vice versa.
	if err := s.where.forEach(func(line mem.Line, locs []l2loc) error {
		for _, loc := range locs {
			if s.Bank[loc.bank].Peek(loc.set, cache.LineQuery(line)) == nil {
				return fmt.Errorf("arch: residency of line %#x in bank %d not present in array", line, loc.bank)
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for bi, b := range s.Bank {
		for si := 0; si < b.Sets(); si++ {
			set := b.Set(si)
			for wi := range set.Blocks {
				blk := &set.Blocks[wi]
				if !blk.Valid {
					continue
				}
				if _, ok := s.l2Find(blk.Line, bi); !ok {
					return fmt.Errorf("arch: bank %d holds line %#x without residency entry", bi, blk.Line)
				}
			}
		}
	}
	return s.Dir.VerifyAll()
}

// AvgAccessTime returns the mean cycles per access and the per-level
// contribution to it (Figure 6's stacked decomposition).
func (s *Substrate) AvgAccessTime() (total float64, contrib [NumLevels]float64) {
	var n, lat uint64
	for l := Level(0); l < NumLevels; l++ {
		n += s.Counts[l]
		lat += s.Latency[l]
	}
	if n == 0 {
		return 0, contrib
	}
	for l := Level(0); l < NumLevels; l++ {
		contrib[l] = float64(s.Latency[l]) / float64(n)
	}
	return float64(lat) / float64(n), contrib
}
