package arch

import (
	"math/rand"
	"testing"

	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// fpOracle records the shared resources a transaction actually touches
// during execution, in the same bit spaces the static footprints use.
// Core/L1-side state has no instrumentation hook; it is covered by the
// requester-core bit plus fpSharers and exercised end to end by the
// sharded engine's determinism test instead.
type fpOracle struct {
	armed bool
	banks uint64
	links uint64
	chans uint32
}

func (o *fpOracle) reset() { o.banks, o.links, o.chans = 0, 0, 0 }

// install hooks the oracle into every touchable resource of s. The hooks
// only record while armed, so footprint computation (which peeks banks
// and residency) can run over the same substrate without polluting the
// observation.
func installOracle(s *Substrate) *fpOracle {
	o := &fpOracle{}
	nb := uint64(s.Cfg.Banks)
	s.OnLine = func(l mem.Line) {
		if o.armed {
			o.banks |= 1 << (uint64(l) & (nb - 1))
		}
	}
	for i := range s.Bank {
		i := i
		s.Bank[i].OnTouch = func() {
			if o.armed {
				o.banks |= 1 << uint(i)
			}
		}
	}
	s.Mesh.OnLink = func(dir int, node noc.NodeID) {
		if o.armed {
			o.links |= 1 << uint(s.Mesh.LinkBit(dir, node))
		}
	}
	s.DRAM.OnChannel = func(ch int) {
		if o.armed {
			o.chans |= 1 << uint(ch)
		}
	}
	return o
}

// l1Model is a tiny per-core FIFO emulation of the issue-side L1: it
// produces the presence hints and displacement write-backs a sharded
// engine window would, including stale presence (a line another core
// writes this barrier is still "present" for requests issued before the
// barrier serviced the write — exactly the skew the mention-core mask in
// the footprints must cover).
type l1Model struct {
	lines []mem.Line
	dirty []bool
	cap   int
}

func (m *l1Model) find(l mem.Line) int {
	for i, x := range m.lines {
		if x == l {
			return i
		}
	}
	return -1
}

// issue models one core reference and returns (queued, present, wbValid,
// wbLine, wbDirty). Following the engine's issue protocol, an L1 hit
// (resident read, or write to a line this core already wrote) is absorbed
// by the L1 and never becomes a barrier request; a write to a resident
// clean line is queued as an upgrade with present=true.
func (m *l1Model) issue(l mem.Line, write bool) (bool, bool, bool, mem.Line, bool) {
	if i := m.find(l); i >= 0 {
		if !write || m.dirty[i] {
			m.dirty[i] = m.dirty[i] || write
			return false, true, false, 0, false
		}
		m.dirty[i] = true
		return true, true, false, 0, false
	}
	m.lines = append(m.lines, l)
	m.dirty = append(m.dirty, write)
	if len(m.lines) <= m.cap {
		return true, false, false, 0, false
	}
	vl, vd := m.lines[0], m.dirty[0]
	m.lines = m.lines[1:]
	m.dirty = m.dirty[1:]
	return true, false, true, vl, vd
}

// TestFootprintOracle drives randomized barrier batches through every
// footprint-capable architecture and asserts, per transaction, that the
// banks, line partitions, mesh links and DRAM channels it actually
// touches are inside the union footprint of its conflict group. This is
// the safety net for every slim-tier refinement: a hole here is a
// cross-group conflict the parallel barrier would race on.
func TestFootprintOracle(t *testing.T) {
	for _, name := range []string{"shared", "private", "sp-nuca", "esp-nuca", "d-nuca"} {
		t.Run(name, func(t *testing.T) {
			sys := build(t, name)
			fpr, ok := sys.(Footprinter)
			if !ok {
				t.Fatalf("%s does not implement Footprinter", name)
			}
			s := sys.Sub()
			if !s.fpOK {
				t.Fatalf("test geometry must support footprints")
			}
			o := installOracle(s)
			ctx := NewFootprintCtx()
			// Several seeded streams over the same substrate: later seeds
			// run against a warmed, heavily aliased cache state.
			rng := rand.New(rand.NewSource(1))
			l1s := make([]*l1Model, s.Cfg.Cores)
			for i := range l1s {
				l1s[i] = &l1Model{cap: s.Cfg.L1ILines()}
			}

			const maxReqs = 16
			reqs := make([]FootprintReq, 0, maxReqs)
			wbDirty := make([]bool, 0, maxReqs)
			present := make([]bool, 0, maxReqs)
			ats := make([]sim.Cycle, 0, maxReqs)
			fps := make([]Footprint, maxReqs)
			groups := make([]int, maxReqs)
			unions := make([]Footprint, maxReqs)

			at := sim.Cycle(0)
			checked := 0
			for barrier := 0; barrier < 1200; barrier++ {
				if barrier%400 == 0 {
					rng = rand.New(rand.NewSource(int64(1 + barrier/400)))
				}
				reqs, wbDirty, present, ats = reqs[:0], wbDirty[:0], present[:0], ats[:0]
				want := 4 + rng.Intn(maxReqs-4)
				for len(reqs) < want {
					c := rng.Intn(s.Cfg.Cores)
					// A small pool with a hot subset: enough reuse for
					// hits, upgrades and cross-core sharing, enough spread
					// for evictions and spills.
					var line mem.Line
					if rng.Intn(3) == 0 {
						line = mem.Line(rng.Intn(24))
					} else {
						line = mem.Line(rng.Intn(512))
					}
					write := rng.Intn(100) < 30
					queued, pres, wbv, wbl, wbd := l1s[c].issue(line, write)
					if !queued {
						continue
					}
					reqs = append(reqs, FootprintReq{
						Core: c, Line: line, Write: write, WB: wbv, WBLine: wbl,
					})
					present = append(present, pres)
					wbDirty = append(wbDirty, wbd)
					at++
					ats = append(ats, at)
				}
				n := len(reqs)

				ComputeFootprints(fpr, ctx, reqs, fps[:n])
				ng := GroupFootprints(fps[:n], groups[:n])
				for g := 0; g < ng; g++ {
					unions[g] = Footprint{}
				}
				for i := 0; i < n; i++ {
					u := &unions[groups[i]]
					u.Banks |= fps[i].Banks
					u.Links |= fps[i].Links
					u.Cores |= fps[i].Cores
					u.Chans |= fps[i].Chans
					u.Global = u.Global || fps[i].Global
				}

				for i := 0; i < n; i++ {
					r := reqs[i]
					o.armed = true
					o.reset()
					s.SetPresenceHint(r.Core, present[i])
					res := sys.Access(ats[i], r.Core, r.Line, r.Write)
					s.ClearPresenceHint(r.Core)
					if r.WB {
						sys.WriteBack(res.Done, r.Core, r.WBLine, wbDirty[i])
					}
					o.armed = false
					u := unions[groups[i]]
					if u.Global {
						continue
					}
					checked++
					if o.banks&^u.Banks != 0 || o.links&^u.Links != 0 ||
						o.chans&^u.Chans != 0 {
						t.Fatalf("barrier %d req %d (%+v present=%v wbDirty=%v): "+
							"touched outside group union\n  banks %#x outside %#x\n"+
							"  links %#x outside %#x\n  chans %#x outside %#x",
							barrier, i, r, present[i], wbDirty[i],
							o.banks, u.Banks, o.links, u.Links, o.chans, u.Chans)
					}
				}
				at += 64
			}
			if checked == 0 {
				t.Fatal("no non-global transactions checked; oracle exercised nothing")
			}
		})
	}
}
