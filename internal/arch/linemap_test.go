package arch

import (
	"math/rand"
	"testing"

	"espnuca/internal/mem"
)

// TestLineMapDifferential drives lineMap and a plain map with the same
// random operation stream; a tiny initial table forces collisions, growth
// and backward-shift deletion.
func TestLineMapDifferential(t *testing.T) {
	m := lineMap[int]{entries: make([]lineMapEntry[int], 8), mask: 7}
	ref := map[mem.Line]int{}
	rng := rand.New(rand.NewSource(7))
	const universe = 128

	for op := 0; op < 200_000; op++ {
		l := mem.Line(rng.Intn(universe))
		switch rng.Intn(4) {
		case 0: // set
			v := rng.Int()
			m.set(l, v)
			ref[l] = v
		case 1: // ptr (materializes zero)
			p := m.ptr(l)
			r, ok := ref[l]
			if !ok {
				r = 0
				ref[l] = 0
			}
			if *p != r {
				t.Fatalf("op %d: ptr(%d) = %d, ref %d", op, l, *p, r)
			}
			*p = op
			ref[l] = op
		case 2: // get
			v, ok := m.get(l)
			r, rok := ref[l]
			if ok != rok || v != r {
				t.Fatalf("op %d: get(%d) = (%d,%v), ref (%d,%v)", op, l, v, ok, r, rok)
			}
		case 3: // del
			m.del(l)
			delete(ref, l)
		}
		if m.count != len(ref) {
			t.Fatalf("op %d: count %d, ref %d", op, m.count, len(ref))
		}
	}
	for l := mem.Line(0); l < universe; l++ {
		v, ok := m.get(l)
		r, rok := ref[l]
		if ok != rok || v != r {
			t.Fatalf("final: line %d mismatch (%d,%v) vs (%d,%v)", l, v, ok, r, rok)
		}
	}
}
