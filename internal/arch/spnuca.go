package arch

import (
	"fmt"

	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// PartitionKind selects how SP-NUCA arbitrates private vs shared ways
// within a set (paper Figure 4).
type PartitionKind int

// Partitioning variants.
const (
	// FlatLRUPartition is the paper's choice: plain LRU over the whole
	// set, letting recency allocate ways between classes.
	FlatLRUPartition PartitionKind = iota
	// ShadowTagPartition uses per-set shadow tags (Suh/Dybdahl style), a
	// more accurate but costlier monitor.
	ShadowTagPartition
	// StaticPartitionKind reserves a fixed private/shared split
	// (paper: 12+4).
	StaticPartitionKind
)

// SPNUCA implements the Shared Private-NUCA of paper §2: one private bit
// per block, dual address interpretation, probe chain private bank ->
// shared home bank -> other private banks -> memory (Figure 2b), with
// migration of discovered remote-private blocks to their home bank.
type SPNUCA struct {
	s    *Substrate
	kind PartitionKind
	// policy per bank (shadow policies hold per-bank state).
	pol []cache.Policy
	// shadow is non-nil for ShadowTagPartition, indexed by bank.
	shadow []*cache.ShadowPolicy

	// sample, when set (by ESP-NUCA), feeds the per-bank hit-rate
	// estimators on every access to a sampled set.
	sample func(bank, set int, firstClassHit bool)

	// Migrations counts private->shared home migrations.
	Migrations uint64
}

// NewSPNUCA builds SP-NUCA with the given partitioning variant.
func NewSPNUCA(cfg Config, kind PartitionKind) (*SPNUCA, error) {
	s, err := NewSubstrate(cfg)
	if err != nil {
		return nil, err
	}
	a := &SPNUCA{s: s, kind: kind}
	for b := 0; b < cfg.Banks; b++ {
		switch kind {
		case FlatLRUPartition:
			a.pol = append(a.pol, cache.FlatLRU{})
		case ShadowTagPartition:
			sp := cache.NewShadowPolicy(cfg.SetsPerBank, 8)
			a.shadow = append(a.shadow, sp)
			a.pol = append(a.pol, sp)
		case StaticPartitionKind:
			a.pol = append(a.pol, cache.StaticPartition{PrivateWays: cfg.StaticPrivateWays})
		default:
			return nil, fmt.Errorf("arch: unknown partition kind %d", kind)
		}
	}
	return a, nil
}

// Name implements System.
func (a *SPNUCA) Name() string {
	switch a.kind {
	case ShadowTagPartition:
		return "sp-nuca-shadow"
	case StaticPartitionKind:
		return "sp-nuca-static"
	}
	return "sp-nuca"
}

// Sub implements System.
func (a *SPNUCA) Sub() *Substrate { return a.s }

// Access implements System with the Figure 2b probe chain.
func (a *SPNUCA) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	t, level := a.resolve(at, c, line, write, nil)
	a.s.record(level, at, t)
	return Result{Done: t, Level: level}
}

// espHooks lets ESP-NUCA extend the probe chain (replica lookup/creation
// and victim hits) without duplicating it.
type espHooks struct {
	// privateMatch widens the step-1 query (replicas).
	privateMatch func(line mem.Line, c int) cache.Query
	// homeMatch widens the step-2 query (victims).
	homeMatch func(line mem.Line) cache.Query
	// onHomeHit runs after a home-bank hit is served (replica creation,
	// victim reclassification). blk is the resident block.
	onHomeHit func(t sim.Cycle, c int, line mem.Line, bank, set int, blk *cache.Block)
	// policyFor returns the replacement policy for a bank.
	policyFor func(bank int) cache.Policy
	// espOwner routes evictions through ESP-NUCA's victim mechanism.
	espOwner *ESPNUCA
}

func (a *SPNUCA) policyFor(bank int) cache.Policy { return a.pol[bank] }

// resolve walks the SP-NUCA probe chain; hooks may be nil (plain SP-NUCA).
func (a *SPNUCA) resolve(at sim.Cycle, c int, line mem.Line, write bool, h *espHooks) (sim.Cycle, Level) {
	s := a.s
	if write {
		if res, ok := s.Upgrade(at, c, line); ok {
			// record() is the caller's job; undo the double count by
			// returning the level directly.
			return res.Done, res.Level
		}
	}
	reqNode := s.NodeOfCore(c)
	shared, _ := s.statusOf(line, c)
	st := s.Dir.State(line)

	finishRead := func(t sim.Cycle) sim.Cycle { s.Dir.GrantReadL1(line, c); return t }
	finishWrite := func(t sim.Cycle, via noc.NodeID) sim.Cycle {
		if ack := s.collectForWrite(t, via, c, line); ack > t {
			return ack
		}
		return t
	}
	finish := func(t sim.Cycle, via noc.NodeID) sim.Cycle {
		if write {
			return finishWrite(t, via)
		}
		return finishRead(t)
	}

	// Step 1: the requester's private bank (same router: no hops).
	pbank, pset := s.Map.Private(line, c)
	pmatch := cache.Query{Line: line, Classes: cache.MaskPrivate, Owner: cache.AnyOwner}
	if h != nil && h.privateMatch != nil {
		pmatch = h.privateMatch(line, c)
	}
	pblk := s.Bank[pbank].Lookup(pset, pmatch)
	a.observeSample(pbank, pset, pblk != nil && pblk.Class.FirstClass())
	if pblk != nil && !ownedByRemoteL1(st, c) {
		t := s.Bank[pbank].Access(at)
		return finish(t, reqNode), LocalL2
	}
	if a.shadow != nil && pblk == nil && !shared {
		a.shadow[pbank].OnMiss(pset, line, cache.Private)
	}
	t := s.Bank[pbank].TagProbe(at)

	// Step 2: forward to the shared home bank (and, in parallel, notify
	// the memory controller - modelled by starting the DRAM fetch from
	// this same cycle if it ends up being needed).
	memStart := t
	hbank, hset := s.Map.Shared(line)
	homeNode := s.NodeOfBank(hbank)
	t = s.Mesh.Send(t, reqNode, homeNode, noc.Control, 0)

	hmatch := cache.Query{Line: line, Classes: cache.MaskShared, Owner: cache.AnyOwner}
	if h != nil && h.homeMatch != nil {
		hmatch = h.homeMatch(line)
	}
	hblk := s.Bank[hbank].Lookup(hset, hmatch)
	a.observeSample(hbank, hset, hblk != nil && hblk.Class.FirstClass())

	level := SharedL2
	if homeNode == reqNode {
		level = LocalL2
	}
	switch {
	case hblk != nil && ownedByRemoteL1(st, c):
		// Stale home copy: forward to the owning L1 (step 3 of Fig 2b).
		t = s.Bank[hbank].TagProbe(t)
		t = s.l1Intervention(t, homeNode, int(st.Owner-coherence.HolderL1), c)
		return finish(t, homeNode), RemoteL1
	case hblk != nil:
		t = s.Bank[hbank].Access(t)
		done := s.Mesh.Send(t, homeNode, reqNode, noc.Data, s.Cfg.BlockBytes)
		if h != nil && h.onHomeHit != nil {
			h.onHomeHit(t, c, line, hbank, hset, hblk)
		}
		return finish(done, homeNode), level
	}
	if a.shadow != nil && shared {
		a.shadow[hbank].OnMiss(hset, line, cache.Shared)
	}
	t = s.Bank[hbank].TagProbe(t)

	// Step 3': the block may be private in another core's bank. The home
	// bank forwards the request to the other private banks.
	if owner, obank, oset, ok := a.findRemotePrivate(line, c); ok {
		probe := s.Mesh.Send(t, homeNode, s.NodeOfBank(obank), noc.Control, 0)
		probe = s.Bank[obank].Access(probe)
		done := s.Mesh.Send(probe, s.NodeOfBank(obank), reqNode, noc.Data, s.Cfg.BlockBytes)
		a.migrateToHome(probe, line, owner, obank, oset, hbank, hset, h)
		return finish(done, homeNode), RemoteL2
	}

	// Step 3: L1-only holders (line fell out of L2 but lives in an L1).
	if st.Sharers()&^(1<<uint(c)) != 0 {
		holder := nearestSharer(s, st, c)
		if holder != c {
			done := s.l1Intervention(t, homeNode, holder, c)
			// A second core is touching the line: it is shared now.
			s.markShared(line)
			return finish(done, homeNode), RemoteL1
		}
	}

	// Memory: the fetch was launched in parallel with step 2 (paper
	// Figure 2b message 2 goes to both home bank and memory controller).
	done := s.memFetch(memStart, reqNode, line)
	if done < t {
		done = t // the on-chip miss confirmation must arrive too
	}
	if !write {
		// A block arriving from memory has its private bit set and is
		// stored in the bank closest to its only user (paper §2.1) -
		// unless it is already known shared, in which case it fills home.
		s.Dir.L2Fill(line, coherence.TokensPerLine)
		pol := a.policyFor
		if h != nil && h.policyFor != nil {
			pol = h.policyFor
		}
		if shared {
			ev := s.l2Insert(hbank, hset, cache.Block{
				Valid: true, Line: line, Class: cache.Shared, Owner: -1,
			}, pol(hbank))
			a.routeEviction(done, ev, hbank, h)
		} else {
			ev := s.l2Insert(pbank, pset, cache.Block{
				Valid: true, Line: line, Class: cache.Private, Owner: c,
			}, pol(pbank))
			a.routeEviction(done, ev, pbank, h)
		}
	}
	return finish(done, homeNode), OffChip
}

// observeSample feeds ESP-NUCA's sampler when installed; plain SP-NUCA
// has none.
func (a *SPNUCA) observeSample(bank, set int, firstClassHit bool) {
	if a.sample != nil {
		a.sample(bank, set, firstClassHit)
	}
}

// findRemotePrivate locates a private copy of line in another core's
// partition.
func (a *SPNUCA) findRemotePrivate(line mem.Line, c int) (owner, bank, set int, ok bool) {
	for _, loc := range a.s.l2Has(line) {
		if loc.class != cache.Private {
			continue
		}
		o := a.s.Map.CoreOfBank(loc.bank)
		if o != c {
			return o, loc.bank, loc.set, true
		}
	}
	return 0, 0, 0, false
}

// migrateToHome resets the private bit and moves the block to its shared
// home bank (paper §2.3): further accesses hit in the shared bank.
func (a *SPNUCA) migrateToHome(at sim.Cycle, line mem.Line, owner, obank, oset, hbank, hset int, h *espHooks) {
	s := a.s
	blk, ok := s.l2Invalidate(line, obank, oset)
	if !ok {
		return
	}
	s.bump(&a.Migrations)
	s.markShared(line)
	pol := a.policyFor
	if h != nil && h.policyFor != nil {
		pol = h.policyFor
	}
	ev := s.l2Insert(hbank, hset, cache.Block{
		Valid: true, Line: line, Class: cache.Shared, Owner: -1, Dirty: blk.Dirty,
	}, pol(hbank))
	a.routeEviction(at, ev, hbank, h)
}

// routeEviction applies the default eviction fate; ESP-NUCA's hooks turn
// evicted private blocks into victims instead (see espnuca.go).
func (a *SPNUCA) routeEviction(at sim.Cycle, ev cache.Evicted, fromBank int, h *espHooks) {
	if esp, ok := a.owner(h); ok {
		esp.routeEviction(at, ev, fromBank)
		return
	}
	a.s.dropEvicted(at, ev, fromBank)
}

// owner resolves the ESP-NUCA wrapper when hooks are present.
func (a *SPNUCA) owner(h *espHooks) (*ESPNUCA, bool) {
	if h == nil || h.espOwner == nil {
		return nil, false
	}
	return h.espOwner, true
}

// WriteBack implements System: L1 evictions follow the private bit
// (private blocks to the private bank, shared blocks to the home bank);
// clean evictions allocate too, keeping recently-used blocks on chip.
func (a *SPNUCA) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	a.writeBack(at, c, line, dirty, nil)
}

func (a *SPNUCA) writeBack(at sim.Cycle, c int, line mem.Line, dirty bool, h *espHooks) {
	s := a.s
	shared, _, known := s.peekStatus(line)
	s.Dir.L1Evict(line, c, true)
	pol := a.policyFor
	if h != nil && h.policyFor != nil {
		pol = h.policyFor
	}
	markDirty := func() {
		if dirty {
			s.Dir.WriteBackDirty(line)
		}
	}
	if known && shared {
		hbank, hset := s.Map.Shared(line)
		t := s.Mesh.Send(at, s.NodeOfCore(c), s.NodeOfBank(hbank), noc.Data, s.Cfg.BlockBytes)
		t = s.Bank[hbank].Access(t)
		if _, ok := s.l2Find(line, hbank); ok {
			markDirty()
			return
		}
		ev := s.l2Insert(hbank, hset, cache.Block{
			Valid: true, Line: line, Class: cache.Shared, Owner: -1, Dirty: dirty,
		}, pol(hbank))
		markDirty()
		a.routeEviction(t, ev, hbank, h)
		return
	}
	pbank, pset := s.Map.Private(line, c)
	t := s.Bank[pbank].Access(at)
	if _, ok := s.l2Find(line, pbank); ok {
		markDirty()
		return
	}
	ev := s.l2Insert(pbank, pset, cache.Block{
		Valid: true, Line: line, Class: cache.Private, Owner: c, Dirty: dirty,
	}, pol(pbank))
	markDirty()
	a.routeEviction(t, ev, pbank, h)
}

// FootprintPrepare implements Footprinter for plain SP-NUCA.
func (a *SPNUCA) FootprintPrepare(ctx *FootprintCtx, r FootprintReq) {
	a.fpPrepare(ctx, r, false)
}

// fpPrepare notes every set this transaction may insert into: the line's
// private set (memory fill with the private bit set, write-back, ESP
// replica) and its shared home set (fill of a known-shared line,
// migration, write-back). Under ESP, evictions from those sets can spill
// private occupants to their own home sets — depth two, noted as well.
// A write never fills from memory, but it can still migrate a discovered
// remote private copy to its home, and an ESP write served by the home
// bank can still create a replica in the private set.
func (a *SPNUCA) fpPrepare(ctx *FootprintCtx, r FootprintReq, esp bool) {
	a.fpNoteInserts(ctx, r.Line, r.Core, esp, r.Write)
	if r.WB {
		a.fpNoteInserts(ctx, r.WBLine, r.Core, esp, false)
	}
}

func (a *SPNUCA) fpNoteInserts(ctx *FootprintCtx, line mem.Line, c int, esp, write bool) {
	s := a.s
	if !write || esp {
		pb, ps := s.Map.Private(line, c)
		ctx.NoteInsert(pb, ps)
		if esp {
			s.fpNoteSpills(ctx, pb, ps)
		}
	}
	hb, hs := s.Map.Shared(line)
	ctx.NoteInsert(hb, hs)
	if esp {
		s.fpNoteSpills(ctx, hb, hs)
	}
}

// Footprint implements Footprinter for plain SP-NUCA.
func (a *SPNUCA) Footprint(ctx *FootprintCtx, r FootprintReq) Footprint {
	return a.footprint(ctx, r, false)
}

// footprint computes the SP/ESP footprint in tiers. A copy of the line
// that is guaranteed to survive the barrier — present now, in a set no
// other request may insert into, with no other request mentioning the
// line (Mentions == 1 rules out mid-barrier invalidations, token moves,
// and status flips) — pins where the probe chain terminates, which
// shrinks the claims: a stable copy in the requester's own private bank
// means a guaranteed step-1 hit in a core-local bank; any stable copy at
// all means the chain ends on chip, so no DRAM fetch and no fill. esp
// widens the step-1/step-2 queries to replicas and victims, adds the
// replica-creation insert on home hits, and extends occupant scans with
// the depth-2 victim-spill targets.
func (a *SPNUCA) footprint(ctx *FootprintCtx, r FootprintReq, esp bool) Footprint {
	s := a.s
	if !s.fpOK {
		return Footprint{Global: true}
	}
	bld := fpBuilder{s: s}
	bld.core(r.Core)
	pb, ps := s.Map.Private(r.Line, r.Core)
	hb, hs := s.Map.Shared(r.Line)
	ctx.BeginOwn()
	a.fpPrepare(ctx, r, esp)
	ctx.EndOwn()

	solo := ctx.Mentions(r.Line) == 1
	owned := fpOwnedRemote(s.Dir.Peek(r.Line), r.Core)
	pq := cache.Query{Line: r.Line, Classes: cache.MaskPrivate, Owner: cache.AnyOwner}
	hq := cache.Query{Line: r.Line, Classes: cache.MaskShared, Owner: cache.AnyOwner}
	if esp {
		pq.Classes |= cache.MaskReplica
		hq.Classes |= cache.MaskVictim
	}
	stableP := solo && !ctx.OthersInsert(pb, ps) && s.Bank[pb].Peek(ps, pq) != nil
	stableH := solo && !ctx.OthersInsert(hb, hs) && s.Bank[hb].Peek(hs, hq) != nil

	bld.part(r.Line)
	noInsert := false
	switch {
	case stableP && !owned && !r.Write:
		// Slim step-1 read hit: requester-local private bank plus the
		// line's directory/status partition.
		bld.bank(pb)
		noInsert = true
	case stableP && !owned && r.Write:
		// Guaranteed step-1 hit; the write's collect fans out from the
		// requester to the current holders and copies.
		bld.bank(pb)
		s.fpSharers(&bld, ctx, r.Line)
		s.fpCopies(&bld, r.Line)
		if s.fpWriteMem(ctx, r.Line) {
			bld.memNode(r.Line)
		}
		noInsert = true
	case solo && (stableP || stableH || a.fpStableRemotePrivate(ctx, r.Line, r.Core)):
		// Some copy the probe chain is guaranteed to find survives the
		// barrier (a stable remote Replica would not do: step 3' only
		// discovers Private-class copies), so the chain terminates on
		// chip: no DRAM fetch, no fill. It may still walk the private
		// bank, the home bank, and every current copy.
		bld.bank(pb)
		bld.bank(hb)
		s.fpCopies(&bld, r.Line)
		if r.Write {
			s.fpSharers(&bld, ctx, r.Line)
			if s.fpWriteMem(ctx, r.Line) {
				bld.memNode(r.Line)
			}
		} else if owned {
			// Reads stop at a bank or migrate before any L1 contact —
			// except a stale copy, which forwards to the owning L1.
			s.fpSharers(&bld, ctx, r.Line)
		}
		_, pbHas := s.l2Find(r.Line, pb)
		mayReplica := esp && !pbHas && !owned
		if mayReplica {
			// A home hit copies the block into the private set.
			bld.occupants(pb, ps, true)
		}
		mayMigrate := !stableH && a.fpHasRemotePrivate(r.Line, r.Core)
		if mayMigrate {
			// A discovered remote private copy migrates into the home set.
			bld.occupants(hb, hs, esp)
		}
		noInsert = !mayReplica && !mayMigrate
	default:
		bld.channel(r.Line)
		bld.bank(pb)
		bld.occupants(pb, ps, esp)
		bld.bank(hb)
		bld.occupants(hb, hs, esp)
		s.fpSharers(&bld, ctx, r.Line)
		s.fpCopies(&bld, r.Line) // remote-private probe and write-invalidation targets
	}
	if r.WB {
		a.fpWB(ctx, &bld, r, esp, noInsert)
	}
	return bld.finish()
}

// fpHasRemotePrivate reports whether another core's partition holds a
// private copy of line at grouping time (the step-3' migration source).
// Under Mentions == 1 none can appear mid-barrier: creating one requires
// a transaction on the line.
func (a *SPNUCA) fpHasRemotePrivate(line mem.Line, c int) bool {
	for _, loc := range a.s.l2Has(line) {
		if loc.class == cache.Private && a.s.Map.CoreOfBank(loc.bank) != c {
			return true
		}
	}
	return false
}

// fpStableRemotePrivate is fpHasRemotePrivate restricted to copies in
// sets no other request may insert into — the only remote copies whose
// survival (and hence an on-chip chain termination) is guaranteed.
func (a *SPNUCA) fpStableRemotePrivate(ctx *FootprintCtx, line mem.Line, c int) bool {
	for _, loc := range a.s.l2Has(line) {
		if loc.class == cache.Private && a.s.Map.CoreOfBank(loc.bank) != c &&
			!ctx.OthersInsert(loc.bank, loc.set) {
			return true
		}
	}
	return false
}

// fpWB adds the write-back side. The target bank follows the line's
// private bit; with no other request mentioning the evicted line the
// status is pinned for the barrier (markShared and first-touch
// registration both require a transaction on the line, and a resident
// copy's tokens keep maybeForgetStatus at bay while our L1 still holds
// the block), so only the one target side is claimed — and if the line is
// resident there in a stable set, the write-back is a pure bank update.
// ownNoInsert must be true only when the access side of this same
// transaction performs no insert, since an access-side fill could evict
// the write-back's resident copy before the write-back runs. The evicted
// line itself never rides to DRAM (SP/ESP write-backs always allocate);
// evictions the allocation causes are covered by the occupant scans.
func (a *SPNUCA) fpWB(ctx *FootprintCtx, bld *fpBuilder, r FootprintReq, esp, ownNoInsert bool) {
	s := a.s
	bld.part(r.WBLine)
	wpb, wps := s.Map.Private(r.WBLine, r.Core)
	whb, whs := s.Map.Shared(r.WBLine)
	if ownNoInsert && ctx.Mentions(r.WBLine) == 1 {
		tb, ts := wpb, wps
		if shared, _, known := s.peekStatus(r.WBLine); known && shared {
			tb, ts = whb, whs
		}
		bld.bank(tb)
		if !ctx.OthersInsert(tb, ts) {
			if _, ok := s.l2Find(r.WBLine, tb); ok {
				return
			}
		}
		bld.occupants(tb, ts, esp)
		return
	}
	bld.bank(wpb)
	bld.occupants(wpb, wps, esp)
	bld.bank(whb)
	bld.occupants(whb, whs, esp)
}

var _ System = (*SPNUCA)(nil)
var _ Footprinter = (*SPNUCA)(nil)
