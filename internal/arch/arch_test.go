package arch

import (
	"testing"

	"espnuca/internal/cache"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// testConfig is a small geometry that fills quickly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SetsPerBank = 8
	cfg.Ways = 4
	cfg.L1.Bytes = 1024 // 16 lines, 8 sets of 2
	cfg.L1.Ways = 2
	cfg.StaticPrivateWays = 3
	cfg.CheckTokens = true
	return cfg
}

func build(t *testing.T, name string) System {
	t.Helper()
	sys, err := Build(name, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildAllNames(t *testing.T) {
	for _, name := range Names() {
		sys, err := Build(name, testConfig())
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if sys.Name() == "" {
			t.Fatalf("%q has empty display name", name)
		}
		if sys.Sub() == nil {
			t.Fatalf("%q has nil substrate", name)
		}
	}
	if _, err := Build("bogus", testConfig()); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig()
	cfg.Cores = 4
	if _, err := NewSubstrate(cfg); err == nil {
		t.Error("non-8-core config accepted")
	}
	cfg = testConfig()
	cfg.CCProbability = 1.5
	if cfg.Validate() == nil {
		t.Error("bad CC probability accepted")
	}
	cfg = testConfig()
	cfg.StaticPrivateWays = 99
	if cfg.Validate() == nil {
		t.Error("oversized static partition accepted")
	}
}

func TestConfigCapacities(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.L2Lines() * cfg.BlockBytes; got != 8*1024*1024 {
		t.Fatalf("default L2 = %d bytes, want 8 MB", got)
	}
	if cfg.L1ILines() != 512 {
		t.Fatalf("L1I lines = %d, want 512", cfg.L1ILines())
	}
	s := ScaledConfig()
	if got := s.L2Lines() * s.BlockBytes; got != 1024*1024 {
		t.Fatalf("scaled L2 = %d bytes, want 1 MB", got)
	}
}

func TestNodeMapping(t *testing.T) {
	s, err := NewSubstrate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Banks 0-3 on node 0 (core 0's router), banks 28-31 on node 7.
	if s.NodeOfBank(0) != 0 || s.NodeOfBank(3) != 0 || s.NodeOfBank(28) != 7 {
		t.Fatalf("bank->node mapping wrong: %d %d %d",
			s.NodeOfBank(0), s.NodeOfBank(3), s.NodeOfBank(28))
	}
	// A core's private banks are on its own router (zero-hop).
	for c := 0; c < 8; c++ {
		lo, hi := s.Map.PrivateBanks(c)
		for b := lo; b < hi; b++ {
			if s.NodeOfBank(b) != s.NodeOfCore(c) {
				t.Fatalf("core %d private bank %d on node %d", c, b, s.NodeOfBank(b))
			}
		}
	}
}

// --- Per-architecture behaviour ---

func TestSharedMissGoesOffChipAndAllocatesHome(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	res := sys.Access(0, 0, 100, false)
	if res.Level != OffChip {
		t.Fatalf("cold access level = %v", res.Level)
	}
	if res.Done < s.Cfg.DRAM.Latency {
		t.Fatalf("off-chip done at %d, faster than DRAM latency", res.Done)
	}
	// Second access by another core hits in the home bank.
	res2 := sys.Access(res.Done, 1, 100, false)
	if res2.Level != SharedL2 && res2.Level != LocalL2 {
		t.Fatalf("warm access level = %v", res2.Level)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedWriteInvalidatesSharers(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	// Three cores read the line.
	var tm sim.Cycle
	for c := 0; c < 3; c++ {
		r := sys.Access(tm, c, 100, false)
		s.L1.Fill(c, 100, false, false)
		tm = r.Done
	}
	// Core 3 writes: all other L1 copies must vanish.
	r := sys.Access(tm, 3, 100, true)
	s.L1.Fill(3, 100, true, false)
	for c := 0; c < 3; c++ {
		if s.L1.Has(c, 100) {
			t.Fatalf("core %d retains the line after remote write", c)
		}
	}
	st := s.Dir.State(100)
	if st.L1Tokens[3] != 8 || !st.Dirty {
		t.Fatalf("writer state = %+v", st)
	}
	_ = r
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedRemoteL1Intervention(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	// Core 0 writes the line (dirty in its L1).
	r := sys.Access(0, 0, 100, true)
	s.L1.Fill(0, 100, true, false)
	// Core 5 reads: must be served by core 0's L1.
	r2 := sys.Access(r.Done, 5, 100, false)
	if r2.Level != RemoteL1 {
		t.Fatalf("read of remote-dirty line level = %v, want RemoteL1", r2.Level)
	}
}

func TestPrivateLocalHitAfterWriteback(t *testing.T) {
	sys := build(t, "private")
	s := sys.Sub()
	r := sys.Access(0, 2, 100, false)
	if r.Level != OffChip {
		t.Fatalf("cold = %v", r.Level)
	}
	s.L1.Fill(2, 100, false, false)
	// Evict from L1 to L2 (unrestricted local allocation).
	s.L1.Invalidate(2, 100)
	sys.WriteBack(r.Done, 2, 100, true)
	r2 := sys.Access(r.Done+100, 2, 100, false)
	if r2.Level != LocalL2 {
		t.Fatalf("post-writeback access = %v, want LocalL2", r2.Level)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPrivateRemoteTileHit(t *testing.T) {
	sys := build(t, "private")
	s := sys.Sub()
	r := sys.Access(0, 0, 100, false)
	s.L1.Fill(0, 100, false, false)
	s.L1.Invalidate(0, 100)
	sys.WriteBack(r.Done, 0, 100, true) // now in tile 0's L2 only
	r2 := sys.Access(r.Done+200, 6, 100, false)
	if r2.Level != RemoteL2 {
		t.Fatalf("cross-tile access = %v, want RemoteL2", r2.Level)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSPNUCAMemoryFillIsPrivate(t *testing.T) {
	sys := build(t, "sp-nuca")
	s := sys.Sub()
	r := sys.Access(0, 3, 100, false)
	if r.Level != OffChip {
		t.Fatalf("cold = %v", r.Level)
	}
	// The block must sit in core 3's private partition as Private.
	pbank, _ := s.Map.Private(100, 3)
	loc, ok := s.l2Find(100, pbank)
	if !ok || loc.class != cache.Private {
		t.Fatalf("fill not private in owner bank: %+v ok=%v", loc, ok)
	}
	// Re-access by the owner: local hit.
	r2 := sys.Access(r.Done, 3, 100, false)
	if r2.Level != LocalL2 {
		t.Fatalf("owner re-access = %v, want LocalL2", r2.Level)
	}
}

func TestSPNUCAMigrationOnSecondCore(t *testing.T) {
	sys := build(t, "sp-nuca").(*SPNUCA)
	s := sys.Sub()
	r := sys.Access(0, 3, 100, false)
	// Core 5 touches the same line: found in core 3's private bank,
	// migrated to the shared home bank.
	r2 := sys.Access(r.Done, 5, 100, false)
	if r2.Level != RemoteL2 {
		t.Fatalf("discovery access = %v, want RemoteL2", r2.Level)
	}
	if sys.Migrations != 1 {
		t.Fatalf("Migrations = %d", sys.Migrations)
	}
	hbank, _ := s.Map.Shared(100)
	loc, ok := s.l2Find(100, hbank)
	if !ok || loc.class != cache.Shared {
		t.Fatalf("line not migrated to home: %+v ok=%v", loc, ok)
	}
	pbank, _ := s.Map.Private(100, 3)
	if _, ok := s.l2Find(100, pbank); ok {
		t.Fatal("stale private copy after migration")
	}
	// Third access (core 7) hits the shared bank directly.
	r3 := sys.Access(r2.Done, 7, 100, false)
	if r3.Level != SharedL2 && r3.Level != LocalL2 {
		t.Fatalf("post-migration access = %v", r3.Level)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSPNUCAStatusPersistsWhileOnChip(t *testing.T) {
	sys := build(t, "sp-nuca")
	s := sys.Sub()
	r := sys.Access(0, 3, 100, false)
	r2 := sys.Access(r.Done, 5, 100, false)
	shared, _, known := s.peekStatus(100)
	if !known || !shared {
		t.Fatalf("status = shared=%v known=%v, want shared", shared, known)
	}
	// Writebacks of shared lines go to the home bank.
	s.L1.Fill(5, 100, false, false)
	_ = r2
}

func TestESPNUCACreatesReplicaOnRemoteSharedHit(t *testing.T) {
	sys := build(t, "esp-nuca").(*ESPNUCA)
	s := sys.Sub()
	// Make line 100 shared and resident at home.
	r := sys.Access(0, 3, 100, false)
	r2 := sys.Access(r.Done, 5, 100, false) // migrates to home
	// Another access by core 5 hits home; if home is remote, a replica
	// lands in 5's partition.
	hbank, _ := s.Map.Shared(100)
	if s.NodeOfBank(hbank) == s.NodeOfCore(5) {
		t.Skip("home bank local to core 5 for this line; replica not expected")
	}
	r3 := sys.Access(r2.Done, 5, 100, false)
	if r3.Level != SharedL2 {
		t.Fatalf("shared hit = %v", r3.Level)
	}
	pbank, _ := s.Map.Private(100, 5)
	loc, ok := s.l2Find(100, pbank)
	if !ok || loc.class != cache.Replica {
		t.Fatalf("replica not created: %+v ok=%v", loc, ok)
	}
	if sys.Replicas == 0 {
		t.Fatal("replica counter zero")
	}
	// Fourth access hits the replica locally.
	r4 := sys.Access(r3.Done, 5, 100, false)
	if r4.Level != LocalL2 {
		t.Fatalf("replica hit = %v, want LocalL2", r4.Level)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestESPNUCAWriteKillsReplicas(t *testing.T) {
	sys := build(t, "esp-nuca").(*ESPNUCA)
	s := sys.Sub()
	r := sys.Access(0, 3, 100, false)
	r2 := sys.Access(r.Done, 5, 100, false)
	r3 := sys.Access(r2.Done, 5, 100, false) // replica for 5 (if remote home)
	// Core 1 writes: every L2 copy (home + replicas) must be gone.
	r4 := sys.Access(r3.Done, 1, 100, true)
	if locs := s.l2Has(100); len(locs) != 0 {
		t.Fatalf("L2 copies after GETX: %+v", locs)
	}
	st := s.Dir.State(100)
	if st.L1Tokens[1] != 8 {
		t.Fatalf("writer tokens = %d", st.L1Tokens[1])
	}
	_ = r4
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestESPNUCAVictimSpill(t *testing.T) {
	cfg := testConfig()
	sys, err := NewESPNUCA(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	// Raise every bank's nmax so victims are accepted.
	for _, smp := range sys.Samplers() {
		smp.SetNMax(2)
	}
	// Fill core 0's private bank set beyond capacity with private lines
	// that map to the same private bank/set but a different home bank.
	// Private mapping for core 0: bank = line & 3, set = (line >> 2) & 7:
	// lines = 8 mod 32 share private bank 0, set 2; their home is bank 8.
	var tm sim.Cycle
	lines := []mem.Line{8, 40, 72, 104, 136}
	for _, l := range lines {
		r := sys.Access(tm, 0, l, false)
		tm = r.Done
	}
	if sys.Victims == 0 {
		t.Fatal("no victims spilled despite private-partition overflow")
	}
	// At least one of the early lines should now be a Victim in its home
	// bank.
	foundVictim := false
	for _, l := range lines {
		for _, loc := range s.l2Has(l) {
			if loc.class == cache.Victim {
				foundVictim = true
			}
		}
	}
	if !foundVictim {
		t.Fatal("no victim block resident")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestESPNUCAVictimPromotionOnForeignTouch(t *testing.T) {
	cfg := testConfig()
	sys, err := NewESPNUCA(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	for _, smp := range sys.Samplers() {
		smp.SetNMax(2)
	}
	var tm sim.Cycle
	for _, l := range []mem.Line{8, 40, 72, 104, 136} {
		r := sys.Access(tm, 0, l, false)
		tm = r.Done
	}
	// Find a victim line and touch it from another core.
	var vline mem.Line
	var vbank int
	found := false
	for _, l := range []mem.Line{8, 40, 72, 104, 136} {
		for _, loc := range s.l2Has(l) {
			if loc.class == cache.Victim {
				vline, vbank, found = l, loc.bank, true
			}
		}
	}
	if !found {
		t.Skip("no victim resident (policy refused)")
	}
	r := sys.Access(tm, 5, vline, false)
	if loc, ok := s.l2Find(vline, vbank); !ok || loc.class != cache.Shared {
		t.Fatalf("victim not promoted to shared: %+v ok=%v (level %v)", loc, ok, r.Level)
	}
	if shared, _, _ := s.peekStatus(vline); !shared {
		t.Fatal("status not marked shared after promotion")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDNUCAPromotesTowardRequester(t *testing.T) {
	sys := build(t, "d-nuca").(*DNUCA)
	s := sys.Sub()
	// Line 0 maps to column 0. Access from core 7 (node 7, column 3...).
	// Use a core whose router is in the line's column but the far row.
	r := sys.Access(0, 4, 0, false) // node 4 is column 0, row 1
	if r.Level != OffChip {
		t.Fatalf("cold = %v", r.Level)
	}
	// The fill must be in a bank on node 4 (nearest in column).
	locs := s.l2Has(0)
	if len(locs) != 1 || s.NodeOfBank(locs[0].bank) != 4 {
		t.Fatalf("fill location = %+v", locs)
	}
	// Access from core 0 (node 0, same column, other row): remote hit.
	// Promotion is hysteretic — it needs a second consecutive remote hit
	// by the same core.
	r2 := sys.Access(r.Done, 0, 0, false)
	if r2.Level != SharedL2 {
		t.Fatalf("cross-row access = %v", r2.Level)
	}
	if sys.Reps != 0 || sys.Migs != 0 {
		t.Fatal("promotion fired on the first remote hit (hysteresis broken)")
	}
	r2b := sys.Access(r2.Done, 0, 0, false)
	if r2b.Level != SharedL2 {
		t.Fatalf("second cross-row access = %v", r2b.Level)
	}
	if sys.Reps == 0 && sys.Migs == 0 {
		t.Fatal("no promotion occurred after repeated remote hits")
	}
	// Next access from core 0 is local.
	r3 := sys.Access(r2b.Done, 0, 0, false)
	if r3.Level != LocalL2 {
		t.Fatalf("post-promotion access = %v, want LocalL2", r3.Level)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCCSpillsToPeer(t *testing.T) {
	cfg := testConfig()
	cfg.CCProbability = 1.0
	sys, err := NewCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sys.Sub()
	// Overflow core 0's private bank 0 set 2 via write-backs (lines = 8
	// mod 32).
	var tm sim.Cycle
	for _, l := range []mem.Line{8, 40, 72, 104, 136, 168} {
		r := sys.Access(tm, 0, l, true)
		s.L1.Fill(0, l, true, false)
		s.L1.Invalidate(0, l)
		sys.WriteBack(r.Done, 0, l, true)
		tm = r.Done + 50
	}
	if sys.Spills == 0 {
		t.Fatal("CC with probability 1.0 never spilled")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCCZeroProbabilityNeverSpills(t *testing.T) {
	cfg := testConfig()
	cfg.CCProbability = 0
	sys, err := NewCC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tm sim.Cycle
	for _, l := range []mem.Line{8, 40, 72, 104, 136, 168} {
		r := sys.Access(tm, 0, l, true)
		sys.Sub().L1.Fill(0, l, true, false)
		sys.Sub().L1.Invalidate(0, l)
		sys.WriteBack(r.Done, 0, l, true)
		tm = r.Done + 50
	}
	if sys.Spills != 0 {
		t.Fatalf("CC-0%% spilled %d times", sys.Spills)
	}
}

func TestASRAdaptsLevels(t *testing.T) {
	sys := build(t, "asr").(*ASR)
	levels := sys.Levels()
	if len(levels) != 8 || levels[0] != 0.5 {
		t.Fatalf("initial levels = %v", levels)
	}
}

func TestLevelString(t *testing.T) {
	for l := Level(0); l < NumLevels; l++ {
		if l.String() == "" {
			t.Errorf("level %d unnamed", l)
		}
	}
}

func TestAvgAccessTimeDecomposition(t *testing.T) {
	sys := build(t, "shared")
	s := sys.Sub()
	sys.Access(0, 0, 100, false)
	s.RecordL1Hit(3)
	total, contrib := s.AvgAccessTime()
	if total <= 0 {
		t.Fatal("zero average access time")
	}
	sum := 0.0
	for l := Level(0); l < NumLevels; l++ {
		sum += contrib[l]
	}
	if diff := sum - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("decomposition sum %g != total %g", sum, total)
	}
}
