package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// SharedNUCA is the Static-NUCA baseline ("Shared"): every block lives in
// its address-interleaved home bank; requests go straight there (paper
// Figure 2a).
type SharedNUCA struct {
	s *Substrate
}

// NewSharedNUCA builds the baseline on a fresh substrate.
func NewSharedNUCA(cfg Config) (*SharedNUCA, error) {
	s, err := NewSubstrate(cfg)
	if err != nil {
		return nil, err
	}
	return &SharedNUCA{s: s}, nil
}

// Name implements System.
func (a *SharedNUCA) Name() string { return "shared" }

// Sub implements System.
func (a *SharedNUCA) Sub() *Substrate { return a.s }

// Access implements System: probe the home bank; hit serves from there
// (with L1 intervention if a remote L1 owns newer data); miss forwards to
// the L1 holders known by the directory or to memory.
func (a *SharedNUCA) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	s := a.s
	if write {
		if res, ok := s.Upgrade(at, c, line); ok {
			return res
		}
	}
	bank, set := s.Map.Shared(line)
	reqNode, homeNode := s.NodeOfCore(c), s.NodeOfBank(bank)
	level := SharedL2
	if homeNode == reqNode {
		level = LocalL2
	}

	t := s.Mesh.Send(at, reqNode, homeNode, noc.Control, 0)
	st := s.Dir.State(line)
	blk := s.Bank[bank].Lookup(set, cache.LineQuery(line))

	switch {
	case blk != nil && ownedByRemoteL1(st, c):
		// The L2 copy is stale: forward to the owning L1.
		t = s.Bank[bank].TagProbe(t)
		t = s.l1Intervention(t, homeNode, int(st.Owner-coherence.HolderL1), c)
		level = RemoteL1
	case blk != nil:
		t = s.Bank[bank].Access(t)
		t = s.Mesh.Send(t, homeNode, reqNode, noc.Data, s.Cfg.BlockBytes)
	case st.Sharers() != 0:
		// Not in L2, but an L1 holds it: TokenD forwards the request.
		t = s.Bank[bank].TagProbe(t)
		holder := nearestSharer(s, st, c)
		t = s.l1Intervention(t, homeNode, holder, c)
		level = RemoteL1
	default:
		// Off-chip: the home bank forwards to the memory controller; data
		// returns to the requester and the home bank allocates a copy.
		t = s.Bank[bank].TagProbe(t)
		t = s.memFetch(t, homeNode, line)
		t = s.Mesh.Send(t, homeNode, reqNode, noc.Data, s.Cfg.BlockBytes)
		level = OffChip
		if !write {
			s.Dir.L2Fill(line, coherence.TokensPerLine)
			ev := s.l2Insert(bank, set, cache.Block{
				Valid: true, Line: line, Class: cache.Shared, Owner: -1,
			}, cache.FlatLRU{})
			s.dropEvicted(t, ev, bank)
		}
	}

	if write {
		if ack := s.collectForWrite(t, homeNode, c, line); ack > t {
			t = ack
		}
	} else {
		s.Dir.GrantReadL1(line, c)
	}
	s.record(level, at, t)
	return Result{Done: t, Level: level}
}

// WriteBack implements System: dirty L1 evictions allocate in the home
// bank; clean evictions release their tokens (to the resident L2 copy if
// one exists, to memory otherwise) without allocating.
func (a *SharedNUCA) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.s
	bank, set := s.Map.Shared(line)
	resident := false
	if _, ok := s.l2Find(line, bank); ok {
		resident = true
	}
	if !dirty {
		s.Dir.L1Evict(line, c, resident)
		if !resident {
			s.maybeForgetStatus(line)
		}
		return
	}
	t := s.Mesh.Send(at, s.NodeOfCore(c), s.NodeOfBank(bank), noc.Data, s.Cfg.BlockBytes)
	t = s.Bank[bank].Access(t)
	s.Dir.L1Evict(line, c, true)
	if resident {
		s.Dir.WriteBackDirty(line)
		return
	}
	ev := s.l2Insert(bank, set, cache.Block{
		Valid: true, Line: line, Class: cache.Shared, Owner: -1, Dirty: true,
	}, cache.FlatLRU{})
	s.Dir.WriteBackDirty(line)
	s.dropEvicted(t, ev, bank)
}

// ownedByRemoteL1 reports whether a different core's L1 owns dirty data.
func ownedByRemoteL1(st *coherence.LineState, c int) bool {
	if st.Owner < coherence.HolderL1 {
		return false
	}
	return st.Dirty && int(st.Owner-coherence.HolderL1) != c
}

// nearestSharer picks the token-holding L1 closest to the requester.
func nearestSharer(s *Substrate, st *coherence.LineState, c int) int {
	best, bestHops := -1, 1<<30
	reqNode := s.NodeOfCore(c)
	for o := 0; o < s.Cfg.Cores; o++ {
		if o == c || st.L1Tokens[o] == 0 {
			continue
		}
		if h := s.Mesh.Hops(reqNode, s.NodeOfCore(o)); h < bestHops {
			best, bestHops = o, h
		}
	}
	if best < 0 {
		// The requester itself may be the only token holder (e.g. an
		// upgrade): fall back to it.
		return c
	}
	return best
}

// FootprintPrepare implements Footprinter: a Shared read may fill the
// line's home set on an off-chip miss, and a write-back may allocate in
// the evicted line's home set. Writes never insert (the GETX data lives
// in the writer's L1 afterward), so they note nothing for the access.
func (a *SharedNUCA) FootprintPrepare(ctx *FootprintCtx, r FootprintReq) {
	if !r.Write {
		bank, set := a.s.Map.Shared(r.Line)
		ctx.NoteInsert(bank, set)
	}
	if r.WB {
		wb, ws := a.s.Map.Shared(r.WBLine)
		ctx.NoteInsert(wb, ws)
	}
}

// Footprint implements Footprinter for the Shared baseline.
func (a *SharedNUCA) Footprint(ctx *FootprintCtx, r FootprintReq) Footprint {
	s := a.s
	if !s.fpOK {
		return Footprint{Global: true}
	}
	bld := fpBuilder{s: s}
	bld.core(r.Core)
	bank, set := s.Map.Shared(r.Line)
	ctx.BeginOwn()
	a.FootprintPrepare(ctx, r)
	ctx.EndOwn()

	// stable: the home copy is guaranteed to survive the whole barrier —
	// it exists now, no *other* request may insert into its set (an
	// eviction), and no other request mentions the line (an
	// invalidation); our own noted insert never happens on a hit.
	stable := ctx.Mentions(r.Line) == 1 && !ctx.OthersInsert(bank, set) &&
		s.Bank[bank].Peek(set, cache.LineQuery(r.Line)) != nil

	bld.part(r.Line)
	bld.bank(bank)
	noInsert := false
	switch {
	case stable && !r.Write && !fpOwnedRemote(s.Dir.Peek(r.Line), r.Core):
		// Slim read hit: only the requester's L1 side, the line's
		// directory/status partition, and the home bank.
		noInsert = true
	case stable:
		// Guaranteed on-chip: neither the access (reads may still need
		// an L1 intervention) nor a write's collect can reach DRAM, and
		// no fill insert happens. A write may still ride to the memory
		// router for an Upgrade's token round trip.
		s.fpSharers(&bld, ctx, r.Line)
		s.fpCopies(&bld, r.Line)
		if r.Write && s.fpWriteMem(ctx, r.Line) {
			bld.memNode(r.Line)
		}
		noInsert = true
	default:
		bld.channel(r.Line)
		if !r.Write {
			// Only a read fill can insert here and evict an occupant.
			bld.occupants(bank, set, false)
		}
		s.fpSharers(&bld, ctx, r.Line)
		s.fpCopies(&bld, r.Line)
	}
	if r.WB {
		a.fpWB(ctx, &bld, r, noInsert)
	}
	return bld.finish()
}

// fpWB adds the write-back side. A resident copy of the evicted line that
// is stable for the barrier makes the write-back a pure bank update (plus
// directory bits); otherwise it may allocate and evict, claiming the
// target set's occupants. ownNoInsert must be true only when the access
// side of this same transaction performs no insert — an access-side fill
// could itself evict the write-back's resident copy before the write-back
// runs. The evicted line never rides to DRAM directly (a clean
// non-resident write-back just releases tokens; a dirty one allocates),
// so no channel claim is needed for it — evictions it causes are covered
// by the occupant scan.
func (a *SharedNUCA) fpWB(ctx *FootprintCtx, bld *fpBuilder, r FootprintReq, ownNoInsert bool) {
	s := a.s
	wb, ws := s.Map.Shared(r.WBLine)
	bld.part(r.WBLine)
	bld.bank(wb)
	if ownNoInsert && ctx.Mentions(r.WBLine) == 1 && !ctx.OthersInsert(wb, ws) {
		if _, ok := s.l2Find(r.WBLine, wb); ok {
			return
		}
	}
	bld.occupants(wb, ws, false)
}

var _ System = (*SharedNUCA)(nil)
var _ Footprinter = (*SharedNUCA)(nil)

// noc import is used throughout the architecture files.
var _ = noc.Control
