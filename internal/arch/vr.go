package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// VictimReplication is Zhang & Asanovic's scheme (ISCA-05): a shared
// S-NUCA home placement, but when an L1 evicts a line whose home bank is
// remote, a replica of the victim is kept in the evicting core's local
// L2 slice, so a re-fetch hits locally instead of paying the home-bank
// round trip.
//
// The paper excludes VR from its evaluation because ASR and Cooperative
// Caching had already been shown to outperform it (§6.1); it is included
// here as an additional counterpart since the substrate supports it
// directly. Replicas never displace home (first-class) blocks of the
// local slice's own home traffic beyond plain LRU order — VR uses flat
// LRU, which is its known weakness.
type VictimReplication struct {
	base *SharedNUCA

	// ReplicaHits and ReplicasMade count the mechanism's activity.
	ReplicaHits, ReplicasMade uint64
}

// NewVictimReplication builds VR on a fresh substrate.
func NewVictimReplication(cfg Config) (*VictimReplication, error) {
	base, err := NewSharedNUCA(cfg)
	if err != nil {
		return nil, err
	}
	return &VictimReplication{base: base}, nil
}

// Name implements System.
func (a *VictimReplication) Name() string { return "victim-replication" }

// Sub implements System.
func (a *VictimReplication) Sub() *Substrate { return a.base.s }

// Access implements System: probe the local slice for a replica first,
// then fall through to the S-NUCA path.
func (a *VictimReplication) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	s := a.base.s
	if write {
		if res, ok := s.Upgrade(at, c, line); ok {
			return res
		}
	}
	pbank, pset := s.Map.Private(line, c)
	st := s.Dir.State(line)
	if blk := s.Bank[pbank].Lookup(pset, cache.ClassQuery(line, cache.Replica)); blk != nil && !ownedByRemoteL1(st, c) {
		a.ReplicaHits++
		t := s.Bank[pbank].Access(at)
		if write {
			if ack := s.collectForWrite(t, s.NodeOfCore(c), c, line); ack > t {
				t = ack
			}
		} else {
			s.Dir.GrantReadL1(line, c)
		}
		s.record(LocalL2, at, t)
		return Result{Done: t, Level: LocalL2}
	}
	return a.base.Access(at, c, line, write)
}

// WriteBack implements System: dirty data goes home as in S-NUCA; in
// addition, victims of remote-homed lines leave a local replica.
func (a *VictimReplication) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.base.s
	a.base.WriteBack(at, c, line, dirty)
	hbank, _ := s.Map.Shared(line)
	if s.NodeOfBank(hbank) == s.NodeOfCore(c) {
		return // home is already local: nothing to replicate
	}
	pbank, pset := s.Map.Private(line, c)
	if _, ok := s.l2Find(line, pbank); ok {
		return
	}
	// Replicas are clean: the dirty copy (if any) went home above.
	ev := s.l2Insert(pbank, pset, cache.Block{
		Valid: true, Line: line, Class: cache.Replica, Owner: c,
	}, cache.FlatLRU{})
	a.ReplicasMade++
	s.dropEvicted(at, ev, pbank)
	_ = noc.Control
}

var _ System = (*VictimReplication)(nil)
