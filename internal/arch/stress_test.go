package arch

import (
	"testing"

	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// TestRandomTrafficInvariants drives every architecture with randomized
// read/write/write-back traffic from all cores and checks, throughout,
// that token conservation, residency bookkeeping and bank counters hold.
// This is the system-level safety net on top of the per-package property
// tests.
func TestRandomTrafficInvariants(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := testConfig()
				cfg.Seed = seed
				sys, err := Build(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				s := sys.Sub()
				rng := sim.NewRNG(seed * 77)
				var tm sim.Cycle
				for op := 0; op < 4000; op++ {
					c := rng.Intn(8)
					line := mem.Line(rng.Intn(512))
					write := rng.Bool(0.3)
					if s.L1.Lookup(c, line, write, false) {
						continue
					}
					res := sys.Access(tm, c, line, write)
					wb := s.L1.Fill(c, line, write, false)
					if wb.Valid {
						if wb.Dirty {
							sys.WriteBack(res.Done, c, wb.Line, true)
						} else {
							s.Dir.L1Evict(wb.Line, c, false)
							s.maybeForgetStatus(wb.Line)
						}
					}
					tm = res.Done
					if op%512 == 0 {
						if err := s.CheckInvariants(); err != nil {
							t.Fatalf("seed %d op %d: %v", seed, op, err)
						}
					}
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("seed %d final: %v", seed, err)
				}
				// Sanity: traffic produced a sensible decomposition.
				total, _ := s.AvgAccessTime()
				if total <= 0 {
					t.Fatal("no access latency recorded")
				}
			}
		})
	}
}

// TestDeterministicReplay verifies that identical configs and traffic
// produce identical timing, the property every experiment relies on.
func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Cycle, [NumLevels]uint64) {
		cfg := testConfig()
		cfg.Seed = 9
		sys, err := Build("esp-nuca", cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := sys.Sub()
		rng := sim.NewRNG(123)
		var tm sim.Cycle
		for op := 0; op < 3000; op++ {
			c := rng.Intn(8)
			line := mem.Line(rng.Intn(256))
			write := rng.Bool(0.25)
			if s.L1.Lookup(c, line, write, false) {
				continue
			}
			res := sys.Access(tm, c, line, write)
			wb := s.L1.Fill(c, line, write, false)
			if wb.Valid {
				sys.WriteBack(res.Done, c, wb.Line, wb.Dirty)
			}
			tm = res.Done
		}
		return tm, s.Counts
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("replay diverged: %d/%v vs %d/%v", t1, c1, t2, c2)
	}
}
