package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/coherence"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// RNUCA is Reactive-NUCA (Hardavellas et al., ISCA-09), which the paper
// discusses as the closest related proposal: data is classified at page
// granularity by the OS —
//
//   - private pages (touched by one core) are placed in that core's
//     local L2 slice;
//   - shared data pages are address-interleaved across all banks (like a
//     shared S-NUCA);
//   - instruction pages are replicated in clusters so each core fetches
//     from a nearby slice.
//
// The paper notes R-NUCA makes coarser-grained decisions than ESP-NUCA
// (page vs block), needs OS support, and performs close to a shared
// NUCA once variability is considered. The OS classification is modelled
// by the same first-toucher/upgrade tracking the SP-NUCA private bit
// uses, applied at page granularity.
type RNUCA struct {
	s *Substrate

	// pageState tracks the OS's page classification.
	pages map[mem.Line]*rnucaPage

	// Reclassifications counts private->shared page upgrades.
	Reclassifications uint64
}

// rnucaPage is one page's classification.
type rnucaPage struct {
	owner  int
	shared bool
	instr  bool
}

// pageBits is the page size in line bits: 6 bits = 64 lines = 4 KB.
const pageBits = 6

// NewRNUCA builds the R-NUCA counterpart.
func NewRNUCA(cfg Config) (*RNUCA, error) {
	s, err := NewSubstrate(cfg)
	if err != nil {
		return nil, err
	}
	return &RNUCA{s: s, pages: make(map[mem.Line]*rnucaPage, 1<<14)}, nil
}

// Name implements System.
func (a *RNUCA) Name() string { return "r-nuca" }

// Sub implements System.
func (a *RNUCA) Sub() *Substrate { return a.s }

// classify returns the page record for a line, updating the
// classification with this access (the modelled OS page-table walk).
func (a *RNUCA) classify(line mem.Line, c int, ifetch bool) *rnucaPage {
	page := line >> pageBits
	p, ok := a.pages[page]
	if !ok {
		p = &rnucaPage{owner: c, instr: ifetch}
		a.pages[page] = p
		return p
	}
	if ifetch {
		p.instr = true
	}
	if !p.shared && p.owner != c && !p.instr {
		// Second toucher: the OS re-classifies the page as shared; the
		// paper's criticism of the coarse granularity is exactly that one
		// foreign touch moves a whole page's worth of blocks.
		p.shared = true
		a.Reclassifications++
		a.evictPagePlacements(page)
	}
	return p
}

// evictPagePlacements flushes a re-classified page's blocks from their
// old private placements (they re-fill at the interleaved location).
func (a *RNUCA) evictPagePlacements(page mem.Line) {
	s := a.s
	base := page << pageBits
	for off := mem.Line(0); off < 1<<pageBits; off++ {
		line := base + off
		for _, loc := range append([]l2loc(nil), s.l2Has(line)...) {
			if blk, ok := s.l2Invalidate(line, loc.bank, loc.set); ok {
				if len(s.l2Has(line)) == 0 {
					dirty := blk.Dirty
					if s.Dir.L2Evict(line) || dirty {
						mc := s.Mesh.MemRouter(s.DRAM.ChannelOf(line))
						s.DRAM.Write(sim.Cycle(0), line)
						_ = mc
					}
				}
			}
		}
		s.maybeForgetStatus(line)
	}
}

// placement returns the bank and set where the line lives under its
// page's current classification. Instruction pages replicate per
// cluster; the requester's local candidate is returned.
func (a *RNUCA) placement(line mem.Line, c int, p *rnucaPage) (bank, set int) {
	switch {
	case p.instr || !p.shared && p.owner == c:
		// Local slice (private data or the per-cluster instruction copy).
		return a.s.Map.Private(line, c)
	case !p.shared:
		// Private to another core: its slice.
		return a.s.Map.Private(line, p.owner)
	default:
		return a.s.Map.Shared(line)
	}
}

// Access implements System. R-NUCA has no search: the classification
// names the one location (instruction pages: the local copy first).
func (a *RNUCA) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	s := a.s
	if write {
		if res, ok := s.Upgrade(at, c, line); ok {
			return res
		}
	}
	p := a.classify(line, c, false)
	bank, set := a.placement(line, c, p)
	reqNode, node := s.NodeOfCore(c), s.NodeOfBank(bank)
	st := s.Dir.State(line)

	finish := func(t sim.Cycle) sim.Cycle {
		if write {
			if ack := s.collectForWrite(t, node, c, line); ack > t {
				return ack
			}
			return t
		}
		s.Dir.GrantReadL1(line, c)
		return t
	}
	level := SharedL2
	if node == reqNode {
		level = LocalL2
	} else if !p.shared {
		level = RemoteL2
	}

	t := s.Mesh.Send(at, reqNode, node, noc.Control, 0)
	blk := s.Bank[bank].Lookup(set, cache.LineQuery(line))
	switch {
	case blk != nil && ownedByRemoteL1(st, c):
		t = s.Bank[bank].TagProbe(t)
		t = s.l1Intervention(t, node, int(st.Owner-coherence.HolderL1), c)
		level = RemoteL1
	case blk != nil:
		t = s.Bank[bank].Access(t)
		t = s.Mesh.Send(t, node, reqNode, noc.Data, s.Cfg.BlockBytes)
	case st.Sharers()&^(1<<uint(c)) != 0:
		t = s.Bank[bank].TagProbe(t)
		holder := nearestSharer(s, st, c)
		if holder != c {
			t = s.l1Intervention(t, node, holder, c)
			level = RemoteL1
			break
		}
		fallthrough
	default:
		t = s.Bank[bank].TagProbe(t)
		t = s.memFetch(t, reqNode, line)
		level = OffChip
		if !write {
			s.Dir.L2Fill(line, coherence.TokensPerLine)
			ev := s.l2Insert(bank, set, cache.Block{
				Valid: true, Line: line, Class: a.classOf(p), Owner: a.ownerOf(p, c),
			}, cache.FlatLRU{})
			s.dropEvicted(t, ev, bank)
		}
	}
	s.record(level, at, t)
	return Result{Done: finish(t), Level: level}
}

func (a *RNUCA) classOf(p *rnucaPage) cache.Class {
	if p.shared {
		return cache.Shared
	}
	return cache.Private
}

func (a *RNUCA) ownerOf(p *rnucaPage, c int) int {
	if p.shared {
		return -1
	}
	return c
}

// WriteBack implements System: evictions return to the page's placement.
func (a *RNUCA) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.s
	p := a.classify(line, c, false)
	bank, set := a.placement(line, c, p)
	t := s.Mesh.Send(at, s.NodeOfCore(c), s.NodeOfBank(bank), noc.Data, s.Cfg.BlockBytes)
	t = s.Bank[bank].Access(t)
	s.Dir.L1Evict(line, c, true)
	if _, ok := s.l2Find(line, bank); ok {
		if dirty {
			s.Dir.WriteBackDirty(line)
		}
		return
	}
	ev := s.l2Insert(bank, set, cache.Block{
		Valid: true, Line: line, Class: a.classOf(p), Owner: a.ownerOf(p, c), Dirty: dirty,
	}, cache.FlatLRU{})
	if dirty {
		s.Dir.WriteBackDirty(line)
	}
	s.dropEvicted(t, ev, bank)
}

var _ System = (*RNUCA)(nil)
