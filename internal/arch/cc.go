package arch

import (
	"espnuca/internal/cache"
	"espnuca/internal/mem"
	"espnuca/internal/noc"
	"espnuca/internal/sim"
)

// CC is Cooperative Caching (Chang & Sohi): the private Tiled
// organization plus (a) spilling locally-evicted blocks into a randomly
// chosen peer tile with the configured cooperation probability, biased
// toward "singlets" (the only on-chip copy), and (b) a central-directory
// lookup that lets local misses hit spilled or peer copies. The paper
// evaluates cooperation probabilities 0, 30, 70 and 100%.
type CC struct {
	t    *Tiled
	prob float64

	// Spills and SpillHits count cooperation activity.
	Spills, SpillHits uint64
}

// NewCC builds Cooperative Caching with the config's CCProbability.
func NewCC(cfg Config) (*CC, error) {
	t, err := NewTiled(cfg)
	if err != nil {
		return nil, err
	}
	return &CC{t: t, prob: cfg.CCProbability}, nil
}

// Name implements System.
func (a *CC) Name() string { return "cc" }

// Sub implements System.
func (a *CC) Sub() *Substrate { return a.t.s }

// Access implements System: the Tiled path already consults the global
// residency (the central coherence engine), so spilled copies are found
// exactly like peer copies.
func (a *CC) Access(at sim.Cycle, c int, line mem.Line, write bool) Result {
	res := a.t.Access(at, c, line, write)
	if res.Level == RemoteL2 {
		a.SpillHits++
	}
	return res
}

// WriteBack implements System: like Tiled, but when the local allocation
// evicts a singlet, the victim is forwarded to a random peer tile with
// the cooperation probability (one-chance forwarding).
func (a *CC) WriteBack(at sim.Cycle, c int, line mem.Line, dirty bool) {
	s := a.t.s
	bank, set := s.Map.Private(line, c)
	t := s.Bank[bank].Access(at)
	s.Dir.L1Evict(line, c, true)
	if _, ok := s.l2Find(line, bank); ok {
		if dirty {
			s.Dir.WriteBackDirty(line)
		}
		return
	}
	ev := s.l2Insert(bank, set, cache.Block{
		Valid: true, Line: line, Class: cache.Private, Owner: c, Dirty: dirty,
	}, cache.FlatLRU{})
	if dirty {
		s.Dir.WriteBackDirty(line)
	}
	a.routeEviction(t, c, ev, bank)
}

// routeEviction spills eligible victims to a peer tile.
func (a *CC) routeEviction(at sim.Cycle, c int, ev cache.Evicted, fromBank int) {
	s := a.t.s
	if !ev.Valid {
		return
	}
	blk := ev.Block
	// Spill only first-class (non-spilled) singlets, with probability
	// prob; a spilled block (marked Victim) evicted again is dropped
	// (one-chance forwarding).
	singlet := len(s.l2Has(blk.Line)) == 0
	if blk.Class != cache.Private || !singlet || !s.RNG.Bool(a.prob) {
		s.dropEvicted(at, ev, fromBank)
		return
	}
	// Choose a random peer tile.
	peer := s.RNG.Intn(s.Cfg.Cores - 1)
	if peer >= c {
		peer++
	}
	pbank, pset := s.Map.Private(blk.Line, peer)
	t := s.Mesh.Send(at, s.NodeOfBank(fromBank), s.NodeOfBank(pbank), noc.Data, s.Cfg.BlockBytes)
	t = s.Bank[pbank].Access(t)
	sev := s.l2Insert(pbank, pset, cache.Block{
		Valid: true, Line: blk.Line, Class: cache.Victim, Owner: blk.Owner, Dirty: blk.Dirty,
	}, cache.FlatLRU{})
	a.Spills++
	s.dropEvicted(t, sev, pbank)
}

// FootprintPrepare implements Footprinter.
func (a *CC) FootprintPrepare(*FootprintCtx, FootprintReq) {}

// Footprint implements Footprinter: cooperative caching's spill decisions
// draw from the substrate RNG (probability and peer choice), whose draw
// order is global state — the barrier falls back to exact serial
// servicing.
func (a *CC) Footprint(*FootprintCtx, FootprintReq) Footprint {
	return Footprint{Global: true}
}

var _ System = (*CC)(nil)
var _ Footprinter = (*CC)(nil)
