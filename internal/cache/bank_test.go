package cache

import (
	"testing"
	"testing/quick"

	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

func mustBank(t *testing.T, sets, ways int) *Bank {
	t.Helper()
	b, err := NewBank(Config{Sets: sets, Ways: ways})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func blk(line mem.Line, c Class, owner int) Block {
	return Block{Valid: true, Line: line, Class: c, Owner: owner}
}

func TestNewBankValidation(t *testing.T) {
	if _, err := NewBank(Config{Sets: 0, Ways: 4}); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := NewBank(Config{Sets: 4, Ways: -1}); err == nil {
		t.Error("negative ways accepted")
	}
	b := mustBank(t, 8, 4)
	if b.Sets() != 8 || b.Ways() != 4 {
		t.Fatalf("geometry = %dx%d", b.Sets(), b.Ways())
	}
	if b.Config().Latency != 5 || b.Config().TagLatency != 2 {
		t.Fatalf("default latencies = %d/%d, want 5/2", b.Config().Latency, b.Config().TagLatency)
	}
}

func TestInsertAndLookup(t *testing.T) {
	b := mustBank(t, 4, 4)
	ev := b.Insert(1, blk(100, Private, 3), FlatLRU{})
	if ev.Valid || ev.Refused {
		t.Fatalf("insert into empty set evicted: %+v", ev)
	}
	got := b.Lookup(1, LineQuery(100))
	if got == nil || got.Owner != 3 || got.Class != Private {
		t.Fatalf("Lookup = %+v", got)
	}
	if b.Lookup(1, LineQuery(101)) != nil {
		t.Fatal("lookup of absent line hit")
	}
	if b.Lookup(2, LineQuery(100)) != nil {
		t.Fatal("lookup in wrong set hit")
	}
	if b.Stats.Hits != 1 || b.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", b.Stats)
	}
}

func TestMatchClassSelectivity(t *testing.T) {
	b := mustBank(t, 1, 4)
	b.Insert(0, blk(7, Private, 0), FlatLRU{})
	b.Insert(0, blk(7, Shared, -1), FlatLRU{})
	if got := b.Lookup(0, ClassQuery(7, Shared)); got == nil || got.Class != Shared {
		t.Fatalf("shared lookup = %+v", got)
	}
	if got := b.Lookup(0, ClassQuery(7, Private)); got == nil || got.Class != Private {
		t.Fatalf("private lookup = %+v", got)
	}
	if got := b.Lookup(0, ClassQuery(7, Victim, Replica)); got != nil {
		t.Fatalf("helping lookup hit a first-class block: %+v", got)
	}
}

func TestFlatLRUEvictsOldest(t *testing.T) {
	b := mustBank(t, 1, 2)
	b.Insert(0, blk(1, Private, 0), FlatLRU{})
	b.Insert(0, blk(2, Private, 0), FlatLRU{})
	b.Lookup(0, LineQuery(1)) // touch 1; 2 becomes LRU
	ev := b.Insert(0, blk(3, Private, 0), FlatLRU{})
	if !ev.Valid || ev.Block.Line != 2 {
		t.Fatalf("evicted %+v, want line 2", ev)
	}
	if b.Peek(0, LineQuery(1)) == nil || b.Peek(0, LineQuery(3)) == nil {
		t.Fatal("resident set wrong after eviction")
	}
}

func TestPeekDoesNotTouch(t *testing.T) {
	b := mustBank(t, 1, 2)
	b.Insert(0, blk(1, Private, 0), FlatLRU{})
	b.Insert(0, blk(2, Private, 0), FlatLRU{})
	b.Peek(0, LineQuery(1)) // must NOT refresh line 1
	ev := b.Insert(0, blk(3, Private, 0), FlatLRU{})
	if !ev.Valid || ev.Block.Line != 1 {
		t.Fatalf("evicted %+v, want line 1 (Peek must not touch LRU)", ev)
	}
}

func TestInvalidate(t *testing.T) {
	b := mustBank(t, 1, 4)
	b.Insert(0, blk(5, Victim, 2), FlatLRU{})
	if b.Set(0).HelpCount != 1 {
		t.Fatalf("HelpCount = %d, want 1", b.Set(0).HelpCount)
	}
	old, ok := b.Invalidate(0, LineQuery(5))
	if !ok || old.Line != 5 {
		t.Fatalf("Invalidate = %+v, %v", old, ok)
	}
	if b.Set(0).HelpCount != 0 {
		t.Fatalf("HelpCount = %d after invalidate, want 0", b.Set(0).HelpCount)
	}
	if _, ok := b.Invalidate(0, LineQuery(5)); ok {
		t.Fatal("double invalidate succeeded")
	}
}

func TestReclassMaintainsHelpCount(t *testing.T) {
	b := mustBank(t, 1, 4)
	b.Insert(0, blk(5, Private, 2), FlatLRU{})
	if !b.Reclass(0, LineQuery(5), Victim, 2) {
		t.Fatal("Reclass failed")
	}
	if b.Set(0).HelpCount != 1 {
		t.Fatalf("HelpCount = %d after private->victim, want 1", b.Set(0).HelpCount)
	}
	if !b.Reclass(0, LineQuery(5), Shared, -1) {
		t.Fatal("Reclass failed")
	}
	if b.Set(0).HelpCount != 0 {
		t.Fatalf("HelpCount = %d after victim->shared, want 0", b.Set(0).HelpCount)
	}
	if b.Reclass(0, LineQuery(99), Shared, -1) {
		t.Fatal("Reclass of absent line succeeded")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRefusedOnlyForHelping(t *testing.T) {
	b := mustBank(t, 1, 1)
	b.Insert(0, blk(1, Private, 0), FlatLRU{})
	refuse := policyFunc(func(*Bank, int, Class) int { return -1 })
	ev := b.Insert(0, blk(2, Replica, 0), refuse)
	if !ev.Refused {
		t.Fatal("helping insert not refused")
	}
	if b.Stats.HelpRefused != 1 {
		t.Fatalf("HelpRefused = %d", b.Stats.HelpRefused)
	}
	defer func() {
		if recover() == nil {
			t.Error("refusing a first-class block did not panic")
		}
	}()
	b.Insert(0, blk(3, Private, 0), refuse)
}

type policyFunc func(*Bank, int, Class) int

func (f policyFunc) PickVictim(b *Bank, s int, c Class) int { return f(b, s, c) }

func TestBankPortSerializes(t *testing.T) {
	b := mustBank(t, 4, 4)
	first := b.Access(0)
	second := b.Access(0)
	if first != 5 || second != 10 {
		t.Fatalf("accesses complete at %d,%d; want 5,10", first, second)
	}
	tp := b.TagProbe(20)
	if tp != 22 {
		t.Fatalf("tag probe completes at %d, want 22", tp)
	}
}

func TestLRUWayFilter(t *testing.T) {
	b := mustBank(t, 1, 3)
	b.Insert(0, blk(1, Private, 0), FlatLRU{})
	b.Insert(0, blk(2, Shared, -1), FlatLRU{})
	b.Insert(0, blk(3, Victim, 1), FlatLRU{})
	w := b.LRUWay(0, HelpingMask)
	if w < 0 || b.Set(0).Blocks[w].Line != 3 {
		t.Fatalf("helping LRU way = %d", w)
	}
	if b.LRUWay(0, MaskReplica) != -1 {
		t.Fatal("LRUWay found nonexistent class")
	}
}

func TestStaticPartitionHardSplit(t *testing.T) {
	b := mustBank(t, 1, 4)
	pol := StaticPartition{PrivateWays: 3}
	// Fill 3 private + 1 shared.
	b.Insert(0, blk(1, Private, 0), pol)
	b.Insert(0, blk(2, Private, 0), pol)
	b.Insert(0, blk(3, Private, 0), pol)
	b.Insert(0, blk(4, Shared, -1), pol)
	// New private block must evict a private block (partition full at 3).
	ev := b.Insert(0, blk(5, Private, 0), pol)
	if !ev.Valid || ev.Block.Class != Private {
		t.Fatalf("evicted %+v, want a private block", ev)
	}
	// New shared block must evict the shared block (its budget is 1).
	ev = b.Insert(0, blk(6, Shared, -1), pol)
	if !ev.Valid || ev.Block.Class != Shared {
		t.Fatalf("evicted %+v, want the shared block", ev)
	}
}

func TestStaticPartitionTakesFromOtherSideWhenUnderBudget(t *testing.T) {
	b := mustBank(t, 1, 4)
	pol := StaticPartition{PrivateWays: 3}
	// 4 shared blocks fill the set; shared budget is only 1.
	for i := 1; i <= 4; i++ {
		b.Insert(0, blk(mem.Line(i), Shared, -1), pol)
	}
	// A private block is under its budget (0 < 3): takes a shared way.
	ev := b.Insert(0, blk(10, Private, 0), pol)
	if !ev.Valid || ev.Block.Class != Shared {
		t.Fatalf("evicted %+v, want a shared block", ev)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	b := mustBank(t, 1, 4)
	b.Insert(0, blk(1, Replica, 0), FlatLRU{})
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("clean bank reported %v", err)
	}
	b.Set(0).HelpCount = 5
	if err := b.CheckInvariants(); err == nil {
		t.Fatal("corrupted HelpCount not detected")
	}
	b.Set(0).HelpCount = 1
	// Duplicate same-class copies of one line are illegal.
	b.Set(0).Blocks[1] = Block{Valid: true, Line: 1, Class: Replica, Owner: 0}
	b.Set(0).HelpCount = 2
	if err := b.CheckInvariants(); err == nil {
		t.Fatal("duplicate copy not detected")
	}
}

// Property: under random insert/lookup/invalidate/reclass traffic with
// flat LRU, the helping counter invariant holds and Insert never reports
// eviction from a set with free ways.
func TestBankInvariantProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		b, _ := NewBank(Config{Sets: 4, Ways: 4})
		classes := []Class{Private, Shared, Replica, Victim}
		for op := 0; op < 2000; op++ {
			set := rng.Intn(4)
			line := mem.Line(rng.Intn(64))
			switch rng.Intn(4) {
			case 0:
				// Avoid duplicate same-class same-line copies, as the
				// coherence layer does.
				c := classes[rng.Intn(4)]
				if b.Peek(set, ClassQuery(line, c)) == nil {
					b.Insert(set, blk(line, c, rng.Intn(8)), FlatLRU{})
				}
			case 1:
				b.Lookup(set, LineQuery(line))
			case 2:
				b.Invalidate(set, LineQuery(line))
			case 3:
				c := classes[rng.Intn(4)]
				if b.Peek(set, ClassQuery(line, c)) == nil {
					b.Reclass(set, LineQuery(line), c, rng.Intn(8))
				}
			}
			if err := b.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowPolicyLearnsUtility(t *testing.T) {
	p := NewShadowPolicy(1, 8)
	b := mustBank(t, 1, 4)
	// Fill with 2 private + 2 shared.
	b.Insert(0, blk(1, Private, 0), p)
	b.Insert(0, blk(2, Private, 0), p)
	b.Insert(0, blk(3, Shared, -1), p)
	b.Insert(0, blk(4, Shared, -1), p)
	// Repeatedly miss on a cycling private working set one line larger
	// than the cache: every miss re-references a just-evicted line, so
	// private marginal utility should grow and push evictions to the
	// shared side.
	for i := 0; i < 40; i++ {
		line := mem.Line(10 + i%5)
		if b.Lookup(0, ClassQuery(line, Private)) == nil {
			p.OnMiss(0, line, Private)
			b.Insert(0, blk(line, Private, 0), p)
		}
	}
	priv, shared := p.Utility(0)
	if priv <= shared {
		t.Fatalf("private utility %d not above shared %d", priv, shared)
	}
	// With private utility dominant, a new private insert should evict
	// from the shared side while any shared blocks remain.
	if b.Peek(0, ClassQuery(3, Shared)) != nil || b.Peek(0, ClassQuery(4, Shared)) != nil {
		ev := b.Insert(0, blk(99, Private, 0), p)
		if !ev.Valid || sideOfTest(ev.Block.Class) != 1 {
			t.Fatalf("evicted %+v, want a shared-side block", ev)
		}
	}
}

func sideOfTest(c Class) int {
	if c == Private || c == Replica {
		return 0
	}
	return 1
}

func TestShadowPolicyFallsBackAcrossSides(t *testing.T) {
	p := NewShadowPolicy(1, 8)
	b := mustBank(t, 1, 2)
	b.Insert(0, blk(1, Private, 0), p)
	b.Insert(0, blk(2, Private, 0), p)
	// Shared utility is zero, shared side empty: a shared insert must
	// still find a victim (falls back to private side).
	ev := b.Insert(0, blk(3, Shared, -1), p)
	if !ev.Valid || ev.Block.Class != Private {
		t.Fatalf("evicted %+v, want private fallback", ev)
	}
}

func TestClassPredicates(t *testing.T) {
	if !Private.FirstClass() || !Shared.FirstClass() {
		t.Error("first-class predicate wrong")
	}
	if Private.Helping() || Shared.Helping() {
		t.Error("helping predicate wrong for first-class")
	}
	if !Replica.Helping() || !Victim.Helping() {
		t.Error("helping predicate wrong for helping classes")
	}
	for _, c := range []Class{Private, Shared, Replica, Victim} {
		if c.String() == "" {
			t.Error("empty class name")
		}
	}
	for _, r := range []SetRole{Conventional, Reference, Explorer} {
		if r.String() == "" {
			t.Error("empty role name")
		}
	}
}

// Property: under random traffic the static partition never lets a side
// exceed its budget once the set is full (the partition is hard).
func TestStaticPartitionBudgetProperty(t *testing.T) {
	prop := func(seed uint64, budget8 uint8) bool {
		rng := sim.NewRNG(seed)
		ways := 8
		budget := int(budget8%7) + 1 // 1..7 private ways
		b, _ := NewBank(Config{Sets: 2, Ways: ways})
		pol := StaticPartition{PrivateWays: budget}
		classes := []Class{Private, Shared}
		for op := 0; op < 600; op++ {
			set := rng.Intn(2)
			line := mem.Line(rng.Intn(512))
			c := classes[rng.Intn(2)]
			if b.Peek(set, ClassQuery(line, c)) != nil {
				continue
			}
			b.Insert(set, Block{Valid: true, Line: line, Class: c, Owner: 0}, pol)
			// Once full, each side must stay within its budget +/- the
			// one-way transient of the current insertion.
			full := true
			priv := 0
			for w := 0; w < ways; w++ {
				blk := &b.Set(set).Blocks[w]
				if !blk.Valid {
					full = false
					break
				}
				if blk.Class == Private || blk.Class == Replica {
					priv++
				}
			}
			if full && op > 100 {
				if priv > budget+1 || (ways-priv) > (ways-budget)+1 {
					return false
				}
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the shadow policy always returns a legal victim for a full
// set (never -1 for first-class insertions) and its shadow FIFOs never
// exceed their configured depth.
func TestShadowPolicyBoundsProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		b, _ := NewBank(Config{Sets: 2, Ways: 4})
		p := NewShadowPolicy(2, 8)
		classes := []Class{Private, Shared}
		for op := 0; op < 500; op++ {
			set := rng.Intn(2)
			line := mem.Line(rng.Intn(128))
			c := classes[rng.Intn(2)]
			if b.Peek(set, ClassQuery(line, c)) == nil {
				p.OnMiss(set, line, c)
				ev := b.Insert(set, Block{Valid: true, Line: line, Class: c, Owner: 0}, p)
				if ev.Refused {
					return false // shadow policy must never refuse
				}
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHelpingBlocksCounter checks the bank-wide O(1) helping-block
// counter against a full recount through every mutation path: place,
// evict, invalidate and reclass, across multiple sets.
func TestHelpingBlocksCounter(t *testing.T) {
	b := mustBank(t, 4, 2)
	recount := func() int {
		n := 0
		for si := 0; si < b.Sets(); si++ {
			n += b.Set(si).recount()
		}
		return n
	}
	check := func(step string) {
		t.Helper()
		if got, want := b.HelpingBlocks(), recount(); got != want {
			t.Fatalf("%s: HelpingBlocks() = %d, recount %d", step, got, want)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}
	check("empty")
	b.Insert(0, blk(1, Replica, 0), FlatLRU{})
	b.Insert(0, blk(2, Victim, 1), FlatLRU{})
	b.Insert(1, blk(3, Private, 0), FlatLRU{})
	check("after inserts")
	// Evicting a helping block through a full set decrements the counter.
	b.Insert(0, blk(4, Private, 2), FlatLRU{})
	check("after evicting helper")
	// Reclass in both directions.
	b.Reclass(1, LineQuery(3), Victim, 0)
	check("first-class -> helping")
	b.Reclass(1, LineQuery(3), Shared, -1)
	check("helping -> first-class")
	// Invalidate a helping block.
	if _, ok := b.Invalidate(0, LineQuery(2)); !ok {
		t.Fatal("line 2 missing")
	}
	check("after invalidate")
	if b.HelpingBlocks() != recount() {
		t.Fatal("counter drifted")
	}
}
