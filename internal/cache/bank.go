package cache

import (
	"fmt"

	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// SetRole classifies a set for the ESP-NUCA set-sampling mechanism (paper
// §3.2). Conventional sets accept up to nmax helping blocks; Reference
// sets refuse all helping blocks; Explorer sets accept nmax+1.
type SetRole uint8

const (
	Conventional SetRole = iota
	Reference
	Explorer
)

// String implements fmt.Stringer.
func (r SetRole) String() string {
	switch r {
	case Conventional:
		return "conventional"
	case Reference:
		return "reference"
	case Explorer:
		return "explorer"
	}
	return fmt.Sprintf("SetRole(%d)", uint8(r))
}

// Set is one congruence class of a bank.
type Set struct {
	Blocks []Block
	// HelpCount is the per-set counter n of currently stored helping
	// blocks (paper §3.2: log2(w) bits of real hardware state).
	HelpCount int
	Role      SetRole
	// Sampled marks sets whose first-class hit rate feeds one of the
	// bank's EMA estimators.
	Sampled bool
}

// recount returns the true number of valid helping blocks; used to check
// the HelpCount invariant.
func (s *Set) recount() int {
	n := 0
	for i := range s.Blocks {
		if s.Blocks[i].Valid && s.Blocks[i].Class.Helping() {
			n++
		}
	}
	return n
}

// Config describes one L2 bank.
type Config struct {
	Sets, Ways int
	// Latency is the full (sequential tag+data) access latency; TagLatency
	// is the tag-only portion (paper Table 2: 5 and 2 cycles).
	Latency, TagLatency sim.Cycle
}

// Stats aggregates per-bank counters used by the experiment harness.
type Stats struct {
	Lookups     uint64
	Hits        uint64
	Misses      uint64
	Inserts     uint64
	Evictions   uint64
	HelpEvicted uint64 // evictions where the victim was a helping block
	HelpRefused uint64 // helping-block inserts refused by policy
}

// Bank is one NUCA bank: a tag/data array plus a port that serializes
// accesses (sequential-access banks service one operation at a time).
type Bank struct {
	cfg   Config
	sets  []Set
	clock uint64
	port  *sim.Resource
	// functional makes Access/TagProbe instant (no port claim); the
	// sampled-run fast-forward warms tag state without paying timing.
	functional bool
	// helping is the bank-wide helping-block count (the sum of the per-set
	// HelpCount counters), maintained incrementally so the observability
	// layer's per-interval HelpingBlocks sample is O(1) instead of a walk
	// over every set.
	helping int

	// OnTouch, when non-nil, observes every operation against the bank
	// (timed or tag-state). Test instrumentation for the footprint oracle;
	// nil in production runs.
	OnTouch func()

	// Stats is exported for the harness; it has no behaviourial role.
	Stats Stats
}

// NewBank builds a bank; Sets and Ways must be positive.
func NewBank(cfg Config) (*Bank, error) {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %d sets x %d ways", cfg.Sets, cfg.Ways)
	}
	if cfg.Latency == 0 {
		cfg.Latency = 5
	}
	if cfg.TagLatency == 0 {
		cfg.TagLatency = 2
	}
	b := &Bank{cfg: cfg, port: sim.NewResource(sim.Cycle(cfg.Latency))}
	b.sets = make([]Set, cfg.Sets)
	blocks := make([]Block, cfg.Sets*cfg.Ways)
	for i := range b.sets {
		b.sets[i].Blocks = blocks[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return b, nil
}

// Config returns the bank geometry.
func (b *Bank) Config() Config { return b.cfg }

// HelpingBlocks returns the number of helping blocks currently resident in
// the bank (the sum of the per-set n counters); the observability layer
// samples it into per-bank occupancy series every interval, so it is
// maintained as a counter rather than recounted (CheckInvariants verifies
// it against the full recount).
func (b *Bank) HelpingBlocks() int { return b.helping }

// Sets returns the number of sets.
func (b *Bank) Sets() int { return len(b.sets) }

// Ways returns the associativity.
func (b *Bank) Ways() int { return b.cfg.Ways }

// Set returns set idx for policies, sampling setup and tests.
func (b *Bank) Set(idx int) *Set { return &b.sets[idx] }

// touch notifies the oracle hook, if installed.
func (b *Bank) touch() {
	if b.OnTouch != nil {
		b.OnTouch()
	}
}

// Access claims the bank port for a full access arriving at cycle at and
// returns the completion cycle.
func (b *Bank) Access(at sim.Cycle) sim.Cycle {
	b.touch()
	if b.functional {
		return at
	}
	return b.port.Claim(at) + b.cfg.Latency
}

// SetFunctional switches the bank between timed and functional mode:
// functional accesses and tag probes complete instantly without
// serializing on the port.
func (b *Bank) SetFunctional(on bool) { b.functional = on }

// TagProbe claims the bank port for a tag-only probe (miss detection)
// arriving at cycle at and returns its completion cycle.
func (b *Bank) TagProbe(at sim.Cycle) sim.Cycle {
	b.touch()
	if b.functional {
		return at
	}
	return b.port.ClaimFor(at, b.cfg.TagLatency) + b.cfg.TagLatency
}

// Query is a concrete tag-comparison rule: the line, the set of classes
// that may answer, and (optionally) the owning core. The private bit and
// owner take part in the comparison exactly as the widened tags do in
// hardware, so each architecture supplies its own matching rule — but as a
// plain value compared inline, not a predicate closure: the previous
// func(*Block) bool API heap-allocated a closure per tag lookup, which was
// 18% of all objects allocated on the simulator's access path.
type Query struct {
	Line    mem.Line
	Classes ClassMask
	// Owner restricts the match to blocks owned by one core; AnyOwner
	// (the zero-value constructors' default) disables the comparison.
	Owner int
}

// AnyOwner disables Query's owner comparison. It is deliberately outside
// the valid owner range (cores are small non-negative ints, -1 marks
// shared blocks).
const AnyOwner = -1 << 30

// LineQuery matches any block holding the line regardless of class.
func LineQuery(l mem.Line) Query {
	return Query{Line: l, Classes: AnyClass, Owner: AnyOwner}
}

// ClassQuery matches the line only in the given classes.
func ClassQuery(l mem.Line, classes ...Class) Query {
	var m ClassMask
	for _, c := range classes {
		m |= c.Mask()
	}
	return Query{Line: l, Classes: m, Owner: AnyOwner}
}

// matches reports whether a valid block satisfies the query.
func (q Query) matches(blk *Block) bool {
	return blk.Line == q.Line &&
		q.Classes&blk.Class.Mask() != 0 &&
		(q.Owner == AnyOwner || q.Owner == blk.Owner)
}

// Lookup searches set idx for a block satisfying q and, on a hit, updates
// its LRU position. It returns the block (nil on miss).
func (b *Bank) Lookup(idx int, q Query) *Block {
	b.touch()
	b.Stats.Lookups++
	set := &b.sets[idx]
	for i := range set.Blocks {
		blk := &set.Blocks[i]
		if blk.Valid && q.matches(blk) {
			b.clock++
			blk.lastUse = b.clock
			b.Stats.Hits++
			return blk
		}
	}
	b.Stats.Misses++
	return nil
}

// Peek searches without touching LRU state or statistics.
func (b *Bank) Peek(idx int, q Query) *Block {
	b.touch()
	set := &b.sets[idx]
	for i := range set.Blocks {
		blk := &set.Blocks[i]
		if blk.Valid && q.matches(blk) {
			return blk
		}
	}
	return nil
}

// Policy chooses replacement victims. It returns the way to evict for an
// incoming block of class incoming, or -1 to refuse the insertion (legal
// only for helping blocks: a reference set refuses all of them).
type Policy interface {
	PickVictim(b *Bank, setIdx int, incoming Class) int
}

// Evicted describes a block displaced by Insert.
type Evicted struct {
	Block Block
	// Valid is false when the insertion filled an empty way or was
	// refused.
	Valid bool
	// Refused is true when the policy rejected the insertion entirely.
	Refused bool
}

// Insert places a new block into set idx using pol to choose the victim.
// It keeps the per-set helping counter consistent and returns the evicted
// block, if any.
func (b *Bank) Insert(idx int, nb Block, pol Policy) Evicted {
	b.touch()
	if !nb.Valid {
		panic("cache: inserting invalid block")
	}
	set := &b.sets[idx]
	// Prefer an empty way; no eviction needed.
	for i := range set.Blocks {
		if !set.Blocks[i].Valid {
			b.place(set, i, nb)
			return Evicted{}
		}
	}
	way := pol.PickVictim(b, idx, nb.Class)
	if way < 0 {
		if !nb.Class.Helping() {
			panic("cache: policy refused a first-class block")
		}
		b.Stats.HelpRefused++
		return Evicted{Refused: true}
	}
	old := set.Blocks[way]
	b.Stats.Evictions++
	if old.Class.Helping() {
		b.Stats.HelpEvicted++
		set.HelpCount--
		b.helping--
	}
	b.place(set, way, nb)
	return Evicted{Block: old, Valid: true}
}

func (b *Bank) place(set *Set, way int, nb Block) {
	b.clock++
	nb.lastUse = b.clock
	set.Blocks[way] = nb
	b.Stats.Inserts++
	if nb.Class.Helping() {
		set.HelpCount++
		b.helping++
	}
}

// Invalidate removes the first block matching q from set idx and returns
// it (Valid=false result if absent).
func (b *Bank) Invalidate(idx int, q Query) (Block, bool) {
	b.touch()
	set := &b.sets[idx]
	for i := range set.Blocks {
		blk := &set.Blocks[i]
		if blk.Valid && q.matches(blk) {
			old := *blk
			if blk.Class.Helping() {
				set.HelpCount--
				b.helping--
			}
			blk.Valid = false
			return old, true
		}
	}
	return Block{}, false
}

// Reclass changes the class of a resident block in place, maintaining the
// helping counters. It returns false if no block matches q.
func (b *Bank) Reclass(idx int, q Query, to Class, owner int) bool {
	b.touch()
	set := &b.sets[idx]
	for i := range set.Blocks {
		blk := &set.Blocks[i]
		if blk.Valid && q.matches(blk) {
			if blk.Class.Helping() {
				set.HelpCount--
				b.helping--
			}
			blk.Class = to
			blk.Owner = owner
			if to.Helping() {
				set.HelpCount++
				b.helping++
			}
			return true
		}
	}
	return false
}

// LRUWay returns the least-recently-used way among the valid blocks whose
// class is in mask (AnyClass = all valid ways), or -1 if none qualifies.
func (b *Bank) LRUWay(idx int, mask ClassMask) int {
	set := &b.sets[idx]
	best, bestUse := -1, uint64(0)
	for i := range set.Blocks {
		blk := &set.Blocks[i]
		if !blk.Valid || mask&blk.Class.Mask() == 0 {
			continue
		}
		if best == -1 || blk.lastUse < bestUse {
			best, bestUse = i, blk.lastUse
		}
	}
	return best
}

// CheckInvariants verifies internal consistency (helping counters, no
// duplicate first-class tags). Tests and debug builds call it; it returns
// a descriptive error on the first violation.
func (b *Bank) CheckInvariants() error {
	helping := 0
	for si := range b.sets {
		set := &b.sets[si]
		if got := set.recount(); got != set.HelpCount {
			return fmt.Errorf("cache: set %d helping counter %d, actual %d", si, set.HelpCount, got)
		}
		helping += set.HelpCount
		seen := map[mem.Line][]Class{}
		for i := range set.Blocks {
			blk := &set.Blocks[i]
			if !blk.Valid {
				continue
			}
			for _, c := range seen[blk.Line] {
				if c == blk.Class {
					return fmt.Errorf("cache: set %d holds duplicate %v copies of line %#x", si, c, blk.Line)
				}
			}
			seen[blk.Line] = append(seen[blk.Line], blk.Class)
		}
	}
	if helping != b.helping {
		return fmt.Errorf("cache: bank helping counter %d, actual %d", b.helping, helping)
	}
	return nil
}
