package cache

import "espnuca/internal/mem"

// ShadowPolicy is the "much more accurate but also more costly" dynamic
// partitioner the paper compares SP-NUCA's flat LRU against in Figure 4
// (Suh et al. / Dybdahl et al. style). Each set keeps 8 shadow tags per
// class recording recently evicted lines; a miss that hits in the shadow
// tags of its class signals that the class would have profited from one
// more way. Replacement then evicts from the class with the lower marginal
// utility.
//
// Only first-class behaviour matters here (SP-NUCA has no helping blocks),
// but helping classes degrade gracefully by mapping replicas to the
// private side and victims to the shared side.
type ShadowPolicy struct {
	shadowWays int
	// per set, per side (0=private, 1=shared): shadow tag FIFO.
	shadow [][2][]mem.Line
	// Marginal-utility counters, decayed by halving every epoch accesses.
	util   [][2]uint32
	epoch  uint32
	events uint32
}

// NewShadowPolicy builds the partitioner for a bank of nsets sets with
// shadowWays shadow tags per side per set (paper: 8).
func NewShadowPolicy(nsets, shadowWays int) *ShadowPolicy {
	p := &ShadowPolicy{
		shadowWays: shadowWays,
		shadow:     make([][2][]mem.Line, nsets),
		util:       make([][2]uint32, nsets),
		epoch:      4096,
	}
	return p
}

func sideOf(c Class) int {
	if c == Private || c == Replica {
		return 0
	}
	return 1
}

// OnMiss informs the monitor that a lookup for line of the given class
// missed in set setIdx. If the line is present in the class's shadow tags,
// the class gains utility.
func (p *ShadowPolicy) OnMiss(setIdx int, line mem.Line, c Class) {
	side := sideOf(c)
	tags := p.shadow[setIdx][side]
	for i, t := range tags {
		if t == line {
			p.util[setIdx][side]++
			// Promote within the shadow FIFO (move to the back).
			copy(tags[i:], tags[i+1:])
			tags[len(tags)-1] = line
			break
		}
	}
	p.events++
	if p.events >= p.epoch {
		p.events = 0
		for i := range p.util {
			p.util[i][0] >>= 1
			p.util[i][1] >>= 1
		}
	}
}

// PickVictim implements Policy: evict the LRU block of the side with the
// lower marginal utility, falling back across sides when one is empty.
func (p *ShadowPolicy) PickVictim(b *Bank, setIdx int, incoming Class) int {
	u := p.util[setIdx]
	loser := 0
	if u[1] < u[0] || (u[1] == u[0] && sideOf(incoming) == 0) {
		loser = 1
	}
	pick := func(side int) int {
		mask := MaskPrivate | MaskReplica
		if side == 1 {
			mask = MaskShared | MaskVictim
		}
		return b.LRUWay(setIdx, mask)
	}
	way := pick(loser)
	if way < 0 {
		way = pick(1 - loser)
	}
	if way >= 0 {
		blk := &b.Set(setIdx).Blocks[way]
		p.record(setIdx, blk.Line, blk.Class)
	}
	return way
}

// record pushes an evicted line into its side's shadow FIFO.
func (p *ShadowPolicy) record(setIdx int, line mem.Line, c Class) {
	side := sideOf(c)
	tags := p.shadow[setIdx][side]
	for i, t := range tags {
		if t == line {
			copy(tags[i:], tags[i+1:])
			tags[len(tags)-1] = line
			return
		}
	}
	if len(tags) < p.shadowWays {
		p.shadow[setIdx][side] = append(tags, line)
		return
	}
	copy(tags, tags[1:])
	tags[len(tags)-1] = line
}

// Utility exposes the per-set counters for tests.
func (p *ShadowPolicy) Utility(setIdx int) (private, shared uint32) {
	return p.util[setIdx][0], p.util[setIdx][1]
}
