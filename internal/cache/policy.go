package cache

// FlatLRU is the classic replacement policy: evict the least-recently-used
// valid block of the set, regardless of class. It is the SP-NUCA policy of
// paper §2.2 and the "ESP-NUCA with flat LRU" baseline of Figure 5.
type FlatLRU struct{}

// PickVictim implements Policy.
func (FlatLRU) PickVictim(b *Bank, setIdx int, _ Class) int {
	return b.LRUWay(setIdx, AnyClass)
}

// StaticPartition reserves a fixed number of ways per set for private
// blocks and the rest for shared blocks (the Zhao et al.-style comparison
// point in Figure 4: 12 private + 4 shared ways). An incoming block may
// only displace blocks of its own partition; if its partition has spare
// ways the LRU of the partition is used anyway, so the split is hard.
type StaticPartition struct {
	// PrivateWays is the way budget for private blocks; shared blocks get
	// Ways-PrivateWays.
	PrivateWays int
}

// PickVictim implements Policy. Helping classes are folded into the
// partition they occupy (replicas with private, victims with shared) so
// the policy remains usable under ESP-NUCA-style extensions.
func (p StaticPartition) PickVictim(b *Bank, setIdx int, incoming Class) int {
	privateSide := incoming == Private || incoming == Replica
	set := b.Set(setIdx)
	count := 0
	for i := range set.Blocks {
		blk := &set.Blocks[i]
		if !blk.Valid {
			continue
		}
		if (blk.Class == Private || blk.Class == Replica) == privateSide {
			count++
		}
	}
	budget := p.PrivateWays
	if !privateSide {
		budget = b.Ways() - p.PrivateWays
	}
	side := MaskPrivate | MaskReplica
	if !privateSide {
		side = MaskShared | MaskVictim
	}
	if count >= budget {
		// Partition full: evict within the partition.
		return b.LRUWay(setIdx, side)
	}
	// Partition has headroom: take a way from the other side (LRU there),
	// falling back to own side if the other side is empty.
	if w := b.LRUWay(setIdx, AnyClass&^side); w >= 0 {
		return w
	}
	return b.LRUWay(setIdx, side)
}
