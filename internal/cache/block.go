// Package cache implements the set-associative bank structures shared by
// every L2 organization in the simulator: tag arrays with the SP/ESP-NUCA
// class bits, true-LRU bookkeeping, pluggable replacement policies, and
// the shadow-tag monitor used as the costly reference partitioner in the
// paper's Figure 4.
package cache

import (
	"fmt"

	"espnuca/internal/mem"
)

// Class is the SP/ESP-NUCA block class. Private and Shared blocks are
// "first-class"; Replica and Victim blocks are "helping blocks" (paper
// §3.1) whose presence in a set is limited by the protected-LRU policy.
type Class uint8

const (
	// Private marks a block accessed by exactly one core so far; it lives
	// in that core's private bank partition (private bit set).
	Private Class = iota
	// Shared marks a block accessed by two or more cores; it lives in its
	// address-interleaved home bank (private bit clear).
	Shared
	// Replica is a helping copy of a Shared block placed in the
	// requester's private partition to cut shared-access latency.
	Replica
	// Victim is a helping block holding remote private data evicted into
	// the shared partition to absorb unbalanced private footprints.
	Victim
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Private:
		return "private"
	case Shared:
		return "shared"
	case Replica:
		return "replica"
	case Victim:
		return "victim"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// FirstClass reports whether the class is private or shared (not a helping
// block).
func (c Class) FirstClass() bool { return c == Private || c == Shared }

// Helping reports whether the class is a replica or victim.
func (c Class) Helping() bool { return c == Replica || c == Victim }

// ClassMask is a bit set of Classes, indexed by class value; tag queries
// and LRU filters compare against it inline instead of calling a
// predicate.
type ClassMask uint8

// Mask returns the singleton mask for the class.
func (c Class) Mask() ClassMask { return 1 << c }

// Class-mask constants for the common matching rules.
const (
	MaskPrivate = ClassMask(1 << Private)
	MaskShared  = ClassMask(1 << Shared)
	MaskReplica = ClassMask(1 << Replica)
	MaskVictim  = ClassMask(1 << Victim)
	// AnyClass matches every class.
	AnyClass = MaskPrivate | MaskShared | MaskReplica | MaskVictim
	// FirstClassMask matches private and shared (non-helping) blocks.
	FirstClassMask = MaskPrivate | MaskShared
	// HelpingMask matches replica and victim (helping) blocks.
	HelpingMask = MaskReplica | MaskVictim
)

// Block is one tag-array entry.
type Block struct {
	Valid bool
	Line  mem.Line
	Class Class
	// Owner is the core the block belongs to: the single accessor for
	// Private blocks and Victims, the replica-holding core for Replicas.
	// It is meaningless (-1) for Shared blocks.
	Owner int
	Dirty bool

	lastUse uint64 // bank access counter at last touch; smaller = older
}

// LastUse exposes the LRU timestamp for policies and tests.
func (b *Block) LastUse() uint64 { return b.lastUse }
