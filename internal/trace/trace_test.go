package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"espnuca/internal/mem"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

func sample() []workload.Instr {
	return []workload.Instr{
		{},
		{HasFetch: true, Fetch: 0x200_0000},
		{IsMem: true, Data: 0x4000_0001},
		{IsMem: true, Data: 0x4000_0002, Write: true},
		{HasFetch: true, Fetch: 0x200_0010, IsMem: true, Data: 0x800_0000, Write: true},
	}
}

func TestRoundTripBinary(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	for i, in := range want {
		if err := w.Record(i%8, in); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != uint64(len(want)) {
		t.Fatalf("Records() = %d", w.Records())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores() != 8 {
		t.Fatalf("Cores() = %d", r.Cores())
	}
	for i, exp := range want {
		core, got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if core != i%8 || got != exp {
			t.Fatalf("record %d: core %d %+v, want core %d %+v", i, core, got, i%8, exp)
		}
	}
	if _, _, err := r.Read(); err != io.EOF {
		t.Fatalf("tail read err = %v, want EOF", err)
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 0); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewWriter(&buf, 300); err == nil {
		t.Error("300 cores accepted")
	}
	w, _ := NewWriter(&buf, 2)
	if err := w.Record(5, workload.Instr{}); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("not a trace")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("ES")); err == nil {
		t.Error("short header accepted")
	}
	// Right magic, wrong version.
	if _, err := NewReader(strings.NewReader("ESPT\x07\x08")); err == nil {
		t.Error("wrong version accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, workload.Instr{IsMem: true, Data: 12345})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated record err = %v, want unexpected EOF", err)
	}
}

// Property: any instruction survives a binary round trip exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(fetch, data uint64, hasFetch, isMem, write bool) bool {
		in := workload.Instr{}
		if hasFetch {
			in.HasFetch, in.Fetch = true, mem.Line(fetch)
		}
		if isMem {
			in.IsMem, in.Data = true, mem.Line(data)
			in.Write = write
		}
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, 4)
		if w.Record(3, in) != nil {
			return false
		}
		w.Flush()
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		core, got, err := r.Read()
		return err == nil && core == 3 && got == in
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplayerRoundTrip(t *testing.T) {
	spec, _ := workload.ByName("apache")
	bound := spec.Bind(1<<14, 128, 3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 8)
	if err := Record(w, bound, 500); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cores() != 8 {
		t.Fatalf("Cores() = %d", rep.Cores())
	}
	// Replaying must equal regenerating the same streams.
	fresh := spec.Bind(1<<14, 128, 3)
	for c := 0; c < 8; c++ {
		if rep.Len(c) != 500 {
			t.Fatalf("core %d has %d records", c, rep.Len(c))
		}
		src := rep.Source(c)
		for i := 0; i < 500; i++ {
			if got, want := src.Next(), fresh.Streams[c].Next(); got != want {
				t.Fatalf("core %d instr %d: %+v != %+v", c, i, got, want)
			}
		}
	}
}

func TestReplayerWraps(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Record(0, workload.Instr{IsMem: true, Data: 1})
	w.Record(0, workload.Instr{IsMem: true, Data: 2})
	w.Flush()
	rep, err := NewReplayer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := rep.Source(0)
	seq := []mem.Line{src.Next().Data, src.Next().Data, src.Next().Data}
	if seq[0] != 1 || seq[1] != 2 || seq[2] != 1 {
		t.Fatalf("wrapped sequence %v", seq)
	}
	if src.Wraps != 1 {
		t.Fatalf("Wraps = %d", src.Wraps)
	}
}

func TestReplayerRejectsEmptyCore(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Record(0, workload.Instr{IsMem: true, Data: 1})
	w.Flush() // core 1 has nothing
	if _, err := NewReplayer(&buf); err == nil {
		t.Fatal("empty core accepted")
	}
}

func TestDineroRoundTrip(t *testing.T) {
	g, _ := mem.NewGeometry(64)
	seq := sample()
	var buf bytes.Buffer
	if err := WriteDinero(&buf, seq, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDinero(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	// The combined fetch+data instruction splits into two references.
	var refs []workload.Instr
	for _, in := range seq {
		if in.HasFetch {
			refs = append(refs, workload.Instr{HasFetch: true, Fetch: in.Fetch})
		}
		if in.IsMem {
			refs = append(refs, workload.Instr{IsMem: true, Data: in.Data, Write: in.Write})
		}
	}
	if len(got) != len(refs) {
		t.Fatalf("got %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d: %+v != %+v", i, got[i], refs[i])
		}
	}
}

func TestDineroParsing(t *testing.T) {
	g, _ := mem.NewGeometry(64)
	in := "# comment\n\nr 1000\nw 0x2040\n2 4080\n"
	seq, err := ReadDinero(strings.NewReader(in), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("%d refs", len(seq))
	}
	if !seq[0].IsMem || seq[0].Write || seq[0].Data != 0x1000/64 {
		t.Fatalf("read ref = %+v", seq[0])
	}
	if !seq[1].Write || seq[1].Data != 0x2040/64 {
		t.Fatalf("write ref = %+v", seq[1])
	}
	if !seq[2].HasFetch || seq[2].Fetch != 0x4080/64 {
		t.Fatalf("ifetch ref = %+v", seq[2])
	}
	for _, bad := range []string{"x 1000\n", "r\n", "r zzz\n", ""} {
		if _, err := ReadDinero(strings.NewReader(bad), g); err == nil {
			t.Errorf("bad input %q accepted", bad)
		}
	}
}

func TestSliceSource(t *testing.T) {
	if _, err := NewSliceSource(nil); err == nil {
		t.Fatal("empty slice accepted")
	}
	src, err := NewSliceSource([]workload.Instr{{IsMem: true, Data: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if src.Next().Data != 9 {
			t.Fatal("wrap lost data")
		}
	}
}

// Property: random instruction sequences survive trace->dinero->trace
// for their memory references (fetch/data separation is lossy by design:
// combined instructions split; so compare reference streams).
func TestDineroPropertyReferences(t *testing.T) {
	g, _ := mem.NewGeometry(64)
	prop := func(seed uint64, n8 uint8) bool {
		rng := sim.NewRNG(seed)
		n := int(n8%50) + 1
		var seq []workload.Instr
		for i := 0; i < n; i++ {
			var in workload.Instr
			if rng.Bool(0.3) {
				in.HasFetch, in.Fetch = true, mem.Line(rng.Intn(1<<20))
			}
			if rng.Bool(0.6) || !in.HasFetch {
				in.IsMem, in.Data = true, mem.Line(rng.Intn(1<<20))
				in.Write = rng.Bool(0.3)
			}
			seq = append(seq, in)
		}
		var buf bytes.Buffer
		if WriteDinero(&buf, seq, g) != nil {
			return false
		}
		got, err := ReadDinero(&buf, g)
		if err != nil {
			return false
		}
		idx := 0
		for _, in := range seq {
			if in.HasFetch {
				if idx >= len(got) || got[idx].Fetch != in.Fetch {
					return false
				}
				idx++
			}
			if in.IsMem {
				if idx >= len(got) || got[idx].Data != in.Data || got[idx].Write != in.Write {
					return false
				}
				idx++
			}
		}
		return idx == len(got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
