// Package trace provides record/replay tooling for the simulator's
// instruction streams: a compact binary format for multi-core traces, a
// Dinero-style ASCII format for interoperability with classic cache
// tools, and a replayer that implements cpu.InstrSource so recorded (or
// externally produced) traces can drive any architecture in place of the
// synthetic generators.
//
// The binary format is:
//
//	header:  "ESPT" magic, one version byte, one core-count byte
//	records: core byte, flags byte, then uvarint-encoded line numbers
//	         (fetch line if flagFetch, data line if flagMem)
//
// Line numbers are cache-block indices (mem.Line), not byte addresses.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"espnuca/internal/mem"
	"espnuca/internal/workload"
)

const (
	magic   = "ESPT"
	version = 1
)

const (
	flagFetch = 1 << iota
	flagMem
	flagWrite
)

// Writer serializes per-core instruction records.
type Writer struct {
	w     *bufio.Writer
	cores int
	buf   [2 + 2*binary.MaxVarintLen64]byte
	n     uint64
}

// NewWriter writes a trace header for the given core count and returns
// the writer.
func NewWriter(w io.Writer, cores int) (*Writer, error) {
	if cores <= 0 || cores > 255 {
		return nil, fmt.Errorf("trace: core count %d outside 1..255", cores)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(version); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(byte(cores)); err != nil {
		return nil, err
	}
	return &Writer{w: bw, cores: cores}, nil
}

// Record appends one instruction of one core.
func (t *Writer) Record(core int, in workload.Instr) error {
	if core < 0 || core >= t.cores {
		return fmt.Errorf("trace: core %d outside 0..%d", core, t.cores-1)
	}
	var flags byte
	if in.HasFetch {
		flags |= flagFetch
	}
	if in.IsMem {
		flags |= flagMem
	}
	if in.Write {
		flags |= flagWrite
	}
	b := t.buf[:0]
	b = append(b, byte(core), flags)
	if in.HasFetch {
		b = binary.AppendUvarint(b, uint64(in.Fetch))
	}
	if in.IsMem {
		b = binary.AppendUvarint(b, uint64(in.Data))
	}
	t.n++
	_, err := t.w.Write(b)
	return err
}

// Records returns the number of instructions recorded.
func (t *Writer) Records() uint64 { return t.n }

// Flush drains buffered output; call before closing the underlying file.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader deserializes a trace.
type Reader struct {
	r     *bufio.Reader
	cores int
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head[:len(magic)])
	}
	if head[len(magic)] != version {
		return nil, fmt.Errorf("trace: unsupported version %d", head[len(magic)])
	}
	cores := int(head[len(magic)+1])
	if cores == 0 {
		return nil, fmt.Errorf("trace: zero core count")
	}
	return &Reader{r: br, cores: cores}, nil
}

// Cores returns the trace's core count.
func (t *Reader) Cores() int { return t.cores }

// Read returns the next (core, instruction) record; io.EOF at the end.
func (t *Reader) Read() (int, workload.Instr, error) {
	core, err := t.r.ReadByte()
	if err != nil {
		return 0, workload.Instr{}, err
	}
	if int(core) >= t.cores {
		return 0, workload.Instr{}, fmt.Errorf("trace: record for core %d of %d", core, t.cores)
	}
	flags, err := t.r.ReadByte()
	if err != nil {
		return 0, workload.Instr{}, corrupt(err)
	}
	var in workload.Instr
	if flags&flagFetch != 0 {
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			return 0, workload.Instr{}, corrupt(err)
		}
		in.HasFetch, in.Fetch = true, mem.Line(v)
	}
	if flags&flagMem != 0 {
		v, err := binary.ReadUvarint(t.r)
		if err != nil {
			return 0, workload.Instr{}, corrupt(err)
		}
		in.IsMem, in.Data = true, mem.Line(v)
	}
	in.Write = flags&flagWrite != 0 && in.IsMem
	return int(core), in, nil
}

// corrupt maps mid-record EOF to ErrUnexpectedEOF so truncation is
// distinguishable from a clean end.
func corrupt(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
