package trace

import (
	"fmt"
	"io"

	"espnuca/internal/workload"
)

// Replayer demultiplexes a recorded trace into per-core instruction
// sources. Each core's source implements cpu.InstrSource; when a core's
// records run out, its source wraps to the beginning of its recorded
// sequence so fixed-instruction-budget simulations always complete.
type Replayer struct {
	perCore [][]workload.Instr
}

// NewReplayer reads the whole trace into memory (traces are per-run
// artifacts, tens of MB at most) and demultiplexes it by core.
func NewReplayer(r io.Reader) (*Replayer, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	rep := &Replayer{perCore: make([][]workload.Instr, tr.Cores())}
	for {
		core, in, err := tr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rep.perCore[core] = append(rep.perCore[core], in)
	}
	for c, seq := range rep.perCore {
		if len(seq) == 0 {
			return nil, fmt.Errorf("trace: core %d has no records", c)
		}
	}
	return rep, nil
}

// Cores returns the number of cores in the trace.
func (r *Replayer) Cores() int { return len(r.perCore) }

// Len returns the number of recorded instructions for a core.
func (r *Replayer) Len(core int) int { return len(r.perCore[core]) }

// Source returns core c's instruction source.
func (r *Replayer) Source(c int) *Source {
	return &Source{seq: r.perCore[c]}
}

// Source replays one core's recorded sequence, wrapping at the end.
type Source struct {
	seq []workload.Instr
	pos int
	// Wraps counts how many times the sequence restarted.
	Wraps int
}

// Next implements cpu.InstrSource.
func (s *Source) Next() workload.Instr {
	in := s.seq[s.pos]
	s.pos++
	if s.pos == len(s.seq) {
		s.pos = 0
		s.Wraps++
	}
	return in
}

// Record captures n instructions from each stream of a bound workload
// into w — the bridge from the synthetic generators to a portable trace.
func Record(w *Writer, bound *workload.Bound, n int) error {
	for i := 0; i < n; i++ {
		for c, st := range bound.Streams {
			if st == nil {
				continue
			}
			if err := w.Record(c, st.Next()); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}
