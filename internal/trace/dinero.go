package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"espnuca/internal/mem"
	"espnuca/internal/workload"
)

// Dinero-style ASCII traces: one reference per text line, a label and a
// hexadecimal byte address:
//
//	r 1a2b3c0    read
//	w 1a2b400    write
//	i 4000100    instruction fetch
//
// The format carries no core information, so a Dinero trace loads as a
// single-core reference stream; the label set {r,w,i} (also accepted:
// {0,1,2} as in dineroIII) covers what classic cache tools emit.

// ReadDinero parses an ASCII trace into an instruction sequence using
// the given block geometry. Blank lines and lines starting with '#' are
// skipped. Each reference becomes one instruction.
func ReadDinero(r io.Reader, g mem.Geometry) ([]workload.Instr, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	var out []workload.Instr
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: dinero line %d: want 'label address', got %q", lineNo, text)
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: dinero line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		line := g.LineOf(mem.Addr(addr))
		var in workload.Instr
		switch fields[0] {
		case "r", "R", "0":
			in.IsMem, in.Data = true, line
		case "w", "W", "1":
			in.IsMem, in.Data, in.Write = true, line, true
		case "i", "I", "2":
			in.HasFetch, in.Fetch = true, line
		default:
			return nil, fmt.Errorf("trace: dinero line %d: unknown label %q", lineNo, fields[0])
		}
		out = append(out, in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: empty dinero trace")
	}
	return out, nil
}

// WriteDinero emits an instruction sequence in the ASCII format. An
// instruction carrying both a fetch and a data access emits two lines
// (fetch first), matching how address-trace tools interleave them.
func WriteDinero(w io.Writer, seq []workload.Instr, g mem.Geometry) error {
	bw := bufio.NewWriter(w)
	for _, in := range seq {
		if in.HasFetch {
			if _, err := fmt.Fprintf(bw, "i %x\n", uint64(g.AddrOf(in.Fetch))); err != nil {
				return err
			}
		}
		if in.IsMem {
			label := "r"
			if in.Write {
				label = "w"
			}
			if _, err := fmt.Fprintf(bw, "%s %x\n", label, uint64(g.AddrOf(in.Data))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SliceSource replays a fixed instruction slice, wrapping at the end; it
// adapts Dinero traces (or any in-memory sequence) to cpu.InstrSource.
type SliceSource struct {
	seq []workload.Instr
	pos int
}

// NewSliceSource returns a source over seq; seq must be non-empty.
func NewSliceSource(seq []workload.Instr) (*SliceSource, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("trace: empty sequence")
	}
	return &SliceSource{seq: seq}, nil
}

// Next implements cpu.InstrSource.
func (s *SliceSource) Next() workload.Instr {
	in := s.seq[s.pos]
	s.pos = (s.pos + 1) % len(s.seq)
	return in
}
