package cacti

import (
	"fmt"
	"math"
)

// EnergySpec reports per-operation energy and standby power estimates
// for a bank, in the same analytic spirit as the timing model: monotone
// in the right variables and calibrated to the magnitudes published for
// 45 nm SRAM macros (roughly 0.1-1 nJ per access for 64 KB-1 MB arrays,
// leakage of tens of mW per MB).
type EnergySpec struct {
	// ReadNJ and WriteNJ are dynamic energies per access, nanojoules.
	ReadNJ, WriteNJ float64
	// TagNJ is the tag-probe-only energy (sequential-access banks probe
	// tags on misses without firing the data array).
	TagNJ float64
	// LeakMW is standby leakage, milliwatts.
	LeakMW float64
}

// Energy evaluates the energy model for a bank at a technology point.
func Energy(t Tech, b BankSpec) (EnergySpec, error) {
	if b.Bytes <= 0 || b.Ways <= 0 || b.BlockBytes <= 0 {
		return EnergySpec{}, fmt.Errorf("cacti: invalid bank spec %+v", b)
	}
	scale := t.NanoMeters / 45
	kb := float64(b.Bytes) / 1024

	// Dynamic energy: wordline/bitline switching grows with the square
	// root of capacity (rows x columns), plus a per-way tag term.
	read := (0.05 + 0.012*math.Sqrt(kb) + 0.002*float64(b.Ways)) * scale
	write := read * 1.15 // write drivers cost a bit more
	tag := (0.01 + 0.002*float64(b.Ways)) * scale

	// Leakage: ~linear in capacity; sequential (power-efficient) banks
	// gate the data array harder.
	leak := 0.045 * kb * scale * scale
	if b.Sequential {
		leak *= 0.8
	}
	return EnergySpec{ReadNJ: read, WriteNJ: write, TagNJ: tag, LeakMW: leak}, nil
}

// NetworkEnergy holds the per-event energies of the interconnect.
type NetworkEnergy struct {
	// FlitHopNJ is the energy of moving one flit across one router+link.
	FlitHopNJ float64
	// DRAMAccessNJ is the off-chip access energy (I/O + DRAM core),
	// dominated by the pin interface.
	DRAMAccessNJ float64
}

// DefaultNetworkEnergy returns 45 nm-era estimates: ~0.05 nJ per flit-hop
// on 128-bit links, ~20 nJ per DRAM access.
func DefaultNetworkEnergy() NetworkEnergy {
	return NetworkEnergy{FlitHopNJ: 0.05, DRAMAccessNJ: 20}
}
