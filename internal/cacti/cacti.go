// Package cacti provides a small analytic cache-bank timing and area
// model in the spirit of CACTI, used to justify the bank latencies in the
// simulated configuration (paper Table 2: 5-cycle sequential-access banks
// with 2-cycle tag at 45 nm). It is intentionally coarse — logarithmic
// decoder depth plus wordline/bitline RC terms scaled by geometry — but
// it is monotone in the right variables and reproduces the paper's chosen
// operating point, letting users re-derive latencies for other bank sizes.
package cacti

import (
	"fmt"
	"math"
)

// Tech describes a process technology node.
type Tech struct {
	// NanoMeters is the feature size (paper: 45).
	NanoMeters float64
	// ClockGHz is the core clock used to convert to cycles.
	ClockGHz float64
}

// Default45nm is the paper's technology point with a 3 GHz core clock.
func Default45nm() Tech { return Tech{NanoMeters: 45, ClockGHz: 3} }

// BankSpec describes one cache bank.
type BankSpec struct {
	Bytes      int // capacity in bytes
	Ways       int
	BlockBytes int
	Sequential bool // tag-then-data (power-efficient) vs parallel access
}

// Result reports the model's estimates.
type Result struct {
	TagNS, DataNS, TotalNS float64
	TagCycles, TotalCycles int
	AreaMM2                float64
}

// Model evaluates the timing model for a bank at a technology point.
func Model(t Tech, b BankSpec) (Result, error) {
	if b.Bytes <= 0 || b.Ways <= 0 || b.BlockBytes <= 0 {
		return Result{}, fmt.Errorf("cacti: invalid bank spec %+v", b)
	}
	if b.Bytes%(b.Ways*b.BlockBytes) != 0 {
		return Result{}, fmt.Errorf("cacti: %dB bank not divisible into %d ways of %dB blocks", b.Bytes, b.Ways, b.BlockBytes)
	}
	sets := b.Bytes / (b.Ways * b.BlockBytes)
	scale := t.NanoMeters / 45 // normalize to the 45nm reference point

	// Decoder: logarithmic in the number of sets.
	decoder := 0.04 * math.Log2(float64(sets)) * scale
	// Tag array: grows with ways (comparators) and sets (bitline length).
	tag := decoder + 0.01*float64(b.Ways)*scale + 0.005*math.Sqrt(float64(sets))*scale
	// Data array: dominated by bitline/sense over the larger macro.
	data := decoder + 0.008*math.Sqrt(float64(sets*b.Ways))*scale + 0.1*scale

	var total float64
	if b.Sequential {
		total = tag + data
	} else {
		total = math.Max(tag, data)
	}
	cyc := func(ns float64) int {
		c := int(math.Ceil(ns * t.ClockGHz))
		if c < 1 {
			c = 1
		}
		return c
	}
	// Area: ~linear in capacity with a per-way tag overhead.
	area := float64(b.Bytes)/1e6*0.55*scale*scale + float64(b.Ways)*0.002

	return Result{
		TagNS: tag, DataNS: data, TotalNS: total,
		TagCycles: cyc(tag), TotalCycles: cyc(total),
		AreaMM2: area,
	}, nil
}

// PaperBank is the evaluated 8 MB / 32-bank geometry: 256 KB banks,
// 16-way, 64 B blocks, sequential access.
func PaperBank() BankSpec {
	return BankSpec{Bytes: 256 * 1024, Ways: 16, BlockBytes: 64, Sequential: true}
}
