package cacti

import "testing"

func TestPaperBankMatchesTable2(t *testing.T) {
	r, err := Model(Default45nm(), PaperBank())
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: 5-cycle bank access, 2-cycle tag, sequential access.
	if r.TotalCycles != 5 {
		t.Fatalf("TotalCycles = %d, want 5", r.TotalCycles)
	}
	if r.TagCycles != 2 {
		t.Fatalf("TagCycles = %d, want 2", r.TagCycles)
	}
}

func TestL1Geometry(t *testing.T) {
	// 32KB 4-way L1 should be faster than the L2 bank.
	r, err := Model(Default45nm(), BankSpec{Bytes: 32 * 1024, Ways: 4, BlockBytes: 64, Sequential: false})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalCycles > 3 {
		t.Fatalf("L1 TotalCycles = %d, want <= 3 (Table 2)", r.TotalCycles)
	}
}

func TestModelMonotoneInCapacity(t *testing.T) {
	small, _ := Model(Default45nm(), BankSpec{Bytes: 64 * 1024, Ways: 16, BlockBytes: 64, Sequential: true})
	big, _ := Model(Default45nm(), BankSpec{Bytes: 1024 * 1024, Ways: 16, BlockBytes: 64, Sequential: true})
	if big.TotalNS <= small.TotalNS {
		t.Fatalf("larger bank not slower: %g vs %g ns", big.TotalNS, small.TotalNS)
	}
	if big.AreaMM2 <= small.AreaMM2 {
		t.Fatal("larger bank not bigger")
	}
}

func TestSequentialSlowerThanParallel(t *testing.T) {
	spec := PaperBank()
	seq, _ := Model(Default45nm(), spec)
	spec.Sequential = false
	par, _ := Model(Default45nm(), spec)
	if seq.TotalNS <= par.TotalNS {
		t.Fatalf("sequential (%g) not slower than parallel (%g)", seq.TotalNS, par.TotalNS)
	}
}

func TestModelValidation(t *testing.T) {
	if _, err := Model(Default45nm(), BankSpec{Bytes: 0, Ways: 4, BlockBytes: 64}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Model(Default45nm(), BankSpec{Bytes: 1000, Ways: 3, BlockBytes: 64}); err == nil {
		t.Error("non-divisible geometry accepted")
	}
}

func TestTechScaling(t *testing.T) {
	r45, _ := Model(Tech{NanoMeters: 45, ClockGHz: 3}, PaperBank())
	r90, _ := Model(Tech{NanoMeters: 90, ClockGHz: 3}, PaperBank())
	if r90.TotalNS <= r45.TotalNS {
		t.Fatal("older node not slower")
	}
}

func TestEnergyModel(t *testing.T) {
	e, err := Energy(Default45nm(), PaperBank())
	if err != nil {
		t.Fatal(err)
	}
	if e.ReadNJ <= 0 || e.WriteNJ <= e.ReadNJ || e.TagNJ <= 0 || e.LeakMW <= 0 {
		t.Fatalf("implausible energies: %+v", e)
	}
	// Tag probes must be much cheaper than full accesses (that is the
	// point of sequential banks).
	if e.TagNJ >= e.ReadNJ/2 {
		t.Fatalf("tag probe %.3f nJ not well below read %.3f nJ", e.TagNJ, e.ReadNJ)
	}
	if _, err := Energy(Default45nm(), BankSpec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestEnergyMonotoneInCapacity(t *testing.T) {
	small, _ := Energy(Default45nm(), BankSpec{Bytes: 64 * 1024, Ways: 16, BlockBytes: 64, Sequential: true})
	big, _ := Energy(Default45nm(), BankSpec{Bytes: 1024 * 1024, Ways: 16, BlockBytes: 64, Sequential: true})
	if big.ReadNJ <= small.ReadNJ || big.LeakMW <= small.LeakMW {
		t.Fatal("larger bank not costlier")
	}
	seq := PaperBank()
	par := seq
	par.Sequential = false
	es, _ := Energy(Default45nm(), seq)
	ep, _ := Energy(Default45nm(), par)
	if es.LeakMW >= ep.LeakMW {
		t.Fatal("sequential bank does not save leakage")
	}
}

func TestDefaultNetworkEnergy(t *testing.T) {
	n := DefaultNetworkEnergy()
	if n.FlitHopNJ <= 0 || n.DRAMAccessNJ <= n.FlitHopNJ {
		t.Fatalf("network energies implausible: %+v", n)
	}
}
