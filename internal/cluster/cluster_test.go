package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
	"espnuca/internal/service"
)

// plainMux adapts http.ServeMux to the cluster Mux interface.
type plainMux struct{ m *http.ServeMux }

func (p plainMux) Handle(pattern string, h http.HandlerFunc) { p.m.HandleFunc(pattern, h) }

func smallRC(seed uint64) experiment.RunConfig {
	rc := experiment.DefaultRunConfig("shared", "apache")
	rc.Warmup, rc.Instructions, rc.Seed = 4000, 1500, seed
	return rc
}

// testCoordinator is one in-process coordinator daemon: fleet state,
// dispatcher, its own (remote-tier-free) store and an HTTP server.
type testCoordinator struct {
	coord *Coordinator
	disp  *Dispatcher
	store *resultcache.Store
	hs    *httptest.Server
}

func newTestCoordinator(t *testing.T, hb time.Duration) *testCoordinator {
	t.Helper()
	store, err := resultcache.Open("", resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	coord := NewCoordinator(CoordinatorConfig{HeartbeatInterval: hb, Obs: reg})
	disp := NewDispatcher(DispatcherConfig{Coordinator: coord, Store: store, Obs: reg})
	node := NewNodeServer(NodeConfig{Store: store, Obs: reg})
	mux := http.NewServeMux()
	coord.Mount(plainMux{mux})
	node.Mount(plainMux{mux})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	coord.SetSelfAddr(hs.Listener.Addr().String())
	return &testCoordinator{coord: coord, disp: disp, store: store, hs: hs}
}

// testWorker is one in-process worker daemon: store with the remote
// tier, node endpoints and a running agent.
type testWorker struct {
	id    string
	store *resultcache.Store
	node  *NodeServer
	agent *Agent
	hs    *httptest.Server
	stop  context.CancelFunc
}

func newTestWorker(t *testing.T, tc *testCoordinator, id string) *testWorker {
	t.Helper()
	store, err := resultcache.Open("", resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	node := NewNodeServer(NodeConfig{Store: store, Obs: reg})
	mux := http.NewServeMux()
	node.Mount(plainMux{mux})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	agent := NewAgent(AgentConfig{
		Coordinator: tc.hs.URL,
		NodeID:      id,
		Advertise:   hs.Listener.Addr().String(),
		Node:        node,
		LeasePoll:   5 * time.Millisecond,
		Obs:         reg,
	})
	store.SetRemote(agent.Remote())
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go agent.Run(ctx)
	waitFor(t, time.Second, func() bool {
		v, _ := tc.coord.m.Addr(id)
		return v != ""
	})
	return &testWorker{id: id, store: store, node: node, agent: agent, hs: hs, stop: cancel}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetRemoteCacheHit: a run computed on worker A is a remote
// cache hit on worker B — byte-identical, with zero simulation work on
// B.
func TestFleetRemoteCacheHit(t *testing.T) {
	tc := newTestCoordinator(t, 50*time.Millisecond)
	wa := newTestWorker(t, tc, "wa")
	wb := newTestWorker(t, tc, "wb")

	rc := smallRC(21)
	ctx := context.Background()
	resA, err := wa.store.RunCtx(ctx, rc)
	if err != nil {
		t.Fatal(err)
	}
	if got := wa.store.Stats().Runs; got != 1 {
		t.Fatalf("worker A runs = %d, want 1", got)
	}

	resB, err := wb.store.RunCtx(ctx, rc)
	if err != nil {
		t.Fatal(err)
	}
	st := wb.store.Stats()
	if st.Runs != 0 {
		t.Errorf("worker B simulated (%d runs), want pure remote hit", st.Runs)
	}
	if st.RemoteHits != 1 {
		t.Errorf("worker B remote hits = %d, want 1", st.RemoteHits)
	}
	if a, b := mustJSON(t, resA), mustJSON(t, resB); string(a) != string(b) {
		t.Error("remote-fetched result is not byte-identical to the computed one")
	}
}

// TestFleetConcurrentSingleflight: N concurrent identical submissions
// spread across two nodes yield exactly one simulation, fleet-wide.
func TestFleetConcurrentSingleflight(t *testing.T) {
	tc := newTestCoordinator(t, 50*time.Millisecond)
	wa := newTestWorker(t, tc, "wa")
	wb := newTestWorker(t, tc, "wb")

	rc := smallRC(22)
	ctx := context.Background()
	stores := []*resultcache.Store{wa.store, wb.store}
	const n = 8
	results := make([]experiment.RunResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = stores[i%2].RunCtx(ctx, rc)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	want := mustJSON(t, results[0])
	for i := 1; i < n; i++ {
		if string(mustJSON(t, results[i])) != string(want) {
			t.Fatalf("request %d returned a different result", i)
		}
	}
	total := wa.store.Stats().Runs + wb.store.Stats().Runs
	if total != 1 {
		t.Errorf("fleet simulated %d times for one key, want exactly 1", total)
	}
}

// newDyingWorker joins a node whose /run endpoint accepts the request,
// lingers as if simulating, then drops the TCP connection without a
// response — a worker killed mid-job.
func newDyingWorker(t *testing.T, tc *testCoordinator, id string) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/run", func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		time.Sleep(20 * time.Millisecond)
		conn.Close()
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	hc := tc.hs.Client()
	_, err := postJSON(context.Background(), hc, tc.hs.URL+"/cluster/v1/join",
		joinRequest{Node: id, Addr: hs.Listener.Addr().String()}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestDispatchRetryWithExclusion: a worker dying mid-cell is excluded
// and dropped; the cell completes on the surviving node.
func TestDispatchRetryWithExclusion(t *testing.T) {
	tc := newTestCoordinator(t, time.Hour) // reaper quiet; death found via dispatch
	live := newTestWorker(t, tc, "live")
	newDyingWorker(t, tc, "dying")

	// Find a seed whose cell rendezvous-hashes onto the dying node, so
	// the first dispatch is guaranteed to hit the failure.
	var rc experiment.RunConfig
	found := false
	for seed := uint64(1); seed < 200; seed++ {
		rc = smallRC(seed)
		key, err := rc.CanonicalKey()
		if err != nil {
			t.Fatal(err)
		}
		if n, ok := tc.coord.Pick(key, nil); ok && n.ID == "dying" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed hashed onto the dying node")
	}

	res, err := tc.disp.RunCell(context.Background(), rc)
	if err != nil {
		t.Fatalf("cell did not survive worker death: %v", err)
	}
	want, err := experiment.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, res)) != string(mustJSON(t, want)) {
		t.Error("retried cell result differs from direct experiment.Run")
	}
	if got := live.store.Stats().Runs; got != 1 {
		t.Errorf("surviving worker runs = %d, want 1", got)
	}
	// The dead node was dropped from membership, not just skipped.
	if _, ok := tc.coord.m.Addr("dying"); ok {
		t.Error("dying node still registered after failed dispatch")
	}
	if _, ok := tc.coord.m.Addr("live"); !ok {
		t.Error("surviving node lost from membership")
	}
}

// TestDispatchPreservesRunnerError: a genuine simulation failure on a
// healthy worker travels through dispatch and the scheduler verbatim —
// not retried, not relabeled as a cancellation.
func TestDispatchPreservesRunnerError(t *testing.T) {
	tc := newTestCoordinator(t, time.Hour)
	newTestWorker(t, tc, "w1")

	sched, err := service.New(service.Config{
		Workers: 1,
		Runner:  &service.SimRunner{Cache: tc.store, RunCell: tc.disp.RunCell},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sched.Drain(ctx)
	}()

	// "nosuch" passes spec validation (only empty arch is rejected
	// there) and fails inside the run — on the worker.
	id, err := sched.Submit(service.JobSpec{Kind: service.KindRun,
		Run: &service.RunSpec{Arch: "nosuch", Workload: "apache"}})
	if err != nil {
		t.Fatal(err)
	}
	var v service.JobView
	waitFor(t, 5*time.Second, func() bool {
		v, err = sched.Get(id)
		return err == nil && v.State == service.StateFailed
	})
	if !strings.Contains(v.Error, "unknown architecture") {
		t.Errorf("job error %q lost the runner's message", v.Error)
	}
	if strings.Contains(v.Error, "context canceled") {
		t.Errorf("runner error relabeled as cancellation: %q", v.Error)
	}
	// A genuine error must not cost the healthy worker its membership.
	if _, ok := tc.coord.m.Addr("w1"); !ok {
		t.Error("healthy worker dropped after a runner error")
	}
}

// TestCoordinatorRestartRejoin: a restarted coordinator (fresh, empty
// state on the same address) learns its workers back through the
// heartbeat 404 -> re-join path.
func TestCoordinatorRestartRejoin(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	startCoord := func(l net.Listener) (*Coordinator, *http.Server) {
		coord := NewCoordinator(CoordinatorConfig{HeartbeatInterval: 30 * time.Millisecond, Obs: obs.NewRegistry()})
		mux := http.NewServeMux()
		coord.Mount(plainMux{mux})
		srv := &http.Server{Handler: mux}
		go srv.Serve(l)
		return coord, srv
	}
	coord1, srv1 := startCoord(ln)

	reg := obs.NewRegistry()
	agent := NewAgent(AgentConfig{
		Coordinator: "http://" + addr,
		NodeID:      "w1",
		Advertise:   "127.0.0.1:1", // never dialed in this test
		Obs:         reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go agent.Run(ctx)
	waitFor(t, 2*time.Second, func() bool {
		_, ok := coord1.m.Addr("w1")
		return ok
	})

	// Kill the coordinator and bring up a fresh one — empty membership,
	// empty leases — on the same address.
	srv1.Close()
	var ln2 net.Listener
	waitFor(t, 2*time.Second, func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	coord2, srv2 := startCoord(ln2)
	defer srv2.Close()

	waitFor(t, 3*time.Second, func() bool {
		_, ok := coord2.m.Addr("w1")
		return ok
	})
	if agent.Status().(WorkerStatus).Joined != true {
		t.Error("agent does not consider itself joined after re-registration")
	}
}

// TestPickDeterministicAndExcluding: sharding is a pure function of
// (key, membership), spreads keys across nodes, and honors exclusion.
func TestPickDeterministicAndExcluding(t *testing.T) {
	reg := obs.NewRegistry()
	m := newMembership(reg, NewCoordinator(CoordinatorConfig{Obs: reg}).logger, nil)
	now := time.Now()
	for _, id := range []string{"a", "b", "c"} {
		m.Join(id, id+":1", now)
	}
	picked := map[string]int{}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%d", i)
		n1, ok1 := m.Pick(key, nil)
		n2, ok2 := m.Pick(key, nil)
		if !ok1 || !ok2 || n1.ID != n2.ID {
			t.Fatalf("Pick not deterministic for %s: %v/%v %v/%v", key, n1.ID, ok1, n2.ID, ok2)
		}
		picked[n1.ID]++
		if ne, ok := m.Pick(key, map[string]bool{n1.ID: true}); !ok || ne.ID == n1.ID {
			t.Fatalf("exclusion ignored for %s", key)
		}
	}
	if len(picked) != 3 {
		t.Errorf("64 keys landed on %d of 3 nodes: %v", len(picked), picked)
	}
	if _, ok := m.Pick("any", map[string]bool{"a": true, "b": true, "c": true}); ok {
		t.Error("Pick returned a node with everyone excluded")
	}
}
