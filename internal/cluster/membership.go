package cluster

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"espnuca/internal/obs"
)

// NodeView is the externally visible snapshot of a registered worker,
// served by /readyz and GET /cluster/v1/nodes.
type NodeView struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Inflight is the coordinator's count of cells currently dispatched
	// to the node — the load signal the sharding tiebreak reads.
	Inflight int `json:"inflight"`
	// ReportedInflight is the node's own last-heartbeat load (it also
	// counts work submitted to the worker directly).
	ReportedInflight int   `json:"reported_inflight"`
	LastSeenMS       int64 `json:"last_seen_ms"`
	Draining         bool  `json:"draining"`
}

type member struct {
	id       string
	addr     string
	lastSeen time.Time
	inflight int // coordinator-dispatched cells currently on the node
	reported int // node's own heartbeat-reported load
	draining bool
	gauge    *obs.Gauge // service.cluster.node_inflight.<id>
}

// membership is the coordinator's worker table. All methods are
// goroutine-safe.
type membership struct {
	mu     sync.Mutex
	nodes  map[string]*member
	reg    *obs.Registry
	gPeers *obs.Gauge
	logger *slog.Logger
	// onDrop runs (without the lock) whenever a node leaves the table —
	// the coordinator hooks lease and location cleanup here.
	onDrop func(id string)
}

func newMembership(reg *obs.Registry, logger *slog.Logger, onDrop func(string)) *membership {
	return &membership{
		nodes:  make(map[string]*member),
		reg:    reg,
		gPeers: reg.Gauge("service.cluster.peers"),
		logger: logger,
		onDrop: onDrop,
	}
}

// Join registers (or refreshes) a node. Rejoining with a new address —
// a worker restarted on another port — simply overwrites it.
func (m *membership) Join(id, addr string, now time.Time) {
	m.mu.Lock()
	n, ok := m.nodes[id]
	if !ok {
		n = &member{id: id, gauge: m.reg.Gauge("service.cluster.node_inflight." + id)}
		m.nodes[id] = n
	}
	n.addr = addr
	n.lastSeen = now
	n.draining = false
	m.gPeers.Set(float64(len(m.nodes)))
	m.mu.Unlock()
	if !ok {
		m.logger.Info("cluster node joined", "node", id, "addr", addr)
	}
}

// Heartbeat refreshes a node's liveness and load. known=false tells
// the worker it is talking to a coordinator that does not remember it
// (a restart) and must re-join.
func (m *membership) Heartbeat(id string, inflight int, now time.Time) (known bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok {
		return false
	}
	n.lastSeen = now
	n.reported = inflight
	return true
}

// Drop removes a node (missed heartbeats, failed dispatch, leave).
func (m *membership) Drop(id, reason string) {
	m.mu.Lock()
	n, ok := m.nodes[id]
	if ok {
		delete(m.nodes, id)
		n.gauge.Set(0)
		m.gPeers.Set(float64(len(m.nodes)))
	}
	m.mu.Unlock()
	if ok {
		m.logger.Info("cluster node dropped", "node", id, "reason", reason)
		if m.onDrop != nil {
			m.onDrop(id)
		}
	}
}

// SetDraining marks a node as gracefully departing: it stays fetchable
// (its cache objects remain reachable) but is never picked for new
// dispatches.
func (m *membership) SetDraining(id string) {
	m.mu.Lock()
	if n, ok := m.nodes[id]; ok {
		n.draining = true
	}
	m.mu.Unlock()
}

// ExpireDead drops every node whose last heartbeat is older than
// deadAfter. Returns the dropped IDs.
func (m *membership) ExpireDead(now time.Time, deadAfter time.Duration) []string {
	m.mu.Lock()
	var dead []string
	for id, n := range m.nodes {
		if now.Sub(n.lastSeen) > deadAfter {
			dead = append(dead, id)
		}
	}
	m.mu.Unlock()
	for _, id := range dead {
		m.Drop(id, "missed heartbeats")
	}
	return dead
}

// AddInflight adjusts the coordinator-side dispatch count (and its
// per-node gauge). Unknown IDs — the node was dropped while a cell was
// in flight — are ignored.
func (m *membership) AddInflight(id string, delta int) {
	m.mu.Lock()
	if n, ok := m.nodes[id]; ok {
		n.inflight += delta
		n.gauge.Set(float64(n.inflight))
	}
	m.mu.Unlock()
}

// Addr resolves a live node's address.
func (m *membership) Addr(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[id]
	if !ok {
		return "", false
	}
	return n.addr, true
}

// Views snapshots the table, sorted by ID for stable output.
func (m *membership) Views(now time.Time) []NodeView {
	m.mu.Lock()
	out := make([]NodeView, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, NodeView{
			ID: n.id, Addr: n.addr,
			Inflight: n.inflight, ReportedInflight: n.reported,
			LastSeenMS: durMS(now.Sub(n.lastSeen)),
			Draining:   n.draining,
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// Pick shards key onto the fleet: the two highest rendezvous-scoring
// live, non-draining, non-excluded nodes are the candidates, and the
// less-loaded of the two wins (equal load keeps the higher score, so
// an idle cluster preserves pure hash affinity and its cache
// locality). ok=false means no eligible node remains — the dispatcher
// falls back to running on the coordinator itself.
func (m *membership) Pick(key string, exclude map[string]bool) (NodeView, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best, second *member
	var bestScore, secondScore uint64
	for id, n := range m.nodes {
		if n.draining || exclude[id] {
			continue
		}
		s := shardScore(key, id)
		switch {
		case best == nil || s > bestScore:
			second, secondScore = best, bestScore
			best, bestScore = n, s
		case second == nil || s > secondScore:
			second, secondScore = n, s
		}
	}
	if best == nil {
		return NodeView{}, false
	}
	// Least-loaded tiebreak between the top two hash candidates.
	if second != nil && second.inflight < best.inflight {
		best = second
	}
	return NodeView{ID: best.id, Addr: best.addr, Inflight: best.inflight}, true
}
