// Package cluster turns espserved into a coordinator/worker fleet.
//
// One daemon is the coordinator: workers register with it over HTTP
// (join/heartbeat/drain/leave), and jobs submitted to the coordinator
// shard across the registered workers by the canonical key of each
// simulation cell (rendezvous hashing with a least-loaded tiebreak).
// Every daemon's content-addressed result cache gains a remote tier:
// before computing a cell, a node asks the coordinator who already
// holds the key (peer fetch before compute), and the coordinator
// grants cluster-wide run leases so two nodes never simulate the same
// key concurrently — singleflight held across the fleet, not just
// within one process.
//
// Robustness is the core of the design:
//
//   - Worker death is detected by missed heartbeats (and immediately
//     on a failed dispatch); the dispatcher retries the cell on
//     another node with the dead node excluded, while genuine runner
//     errors are returned as-is, never retried and never relabeled.
//   - Coordinator restart loses only coordination state (membership,
//     leases, object locations); workers detect the restart through a
//     404 heartbeat and re-register, rebuilding the tables within one
//     heartbeat interval. Results are never lost — they live in each
//     node's content-addressed store.
//   - A dead or partitioned coordinator degrades every worker to
//     node-local behavior (compute without leases); correctness is
//     untouched because runs are pure functions of their
//     configuration, only the deduplication is lost.
//
// espctl stays the single entry point: pointed at the coordinator it
// submits, watches and fetches exactly as against a standalone daemon
// — the coordinator's own scheduler owns the job, and only per-cell
// execution is dispatched.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"espnuca/internal/experiment"
)

// Wire shapes of the internal /cluster/v1 API. They are versioned by
// the path prefix; mixed-CodeVersion fleets are additionally guarded
// at the object layer (objectResponse.Version must match the
// fetcher's).
type joinRequest struct {
	Node string `json:"node"`
	Addr string `json:"addr"`
}

type joinResponse struct {
	IntervalMS int64 `json:"interval_ms"`
}

type heartbeatRequest struct {
	Node     string `json:"node"`
	Inflight int    `json:"inflight"`
}

type leaveRequest struct {
	Node string `json:"node"`
	// Drain marks a graceful departure: the node finishes what it has
	// but must not be picked for new work.
	Drain bool `json:"drain,omitempty"`
}

// Lease protocol states (leaseResponse.State).
const (
	leaseGranted = "granted" // caller now holds the run lease
	leaseHeld    = "held"    // another node is simulating; poll again
	leaseDone    = "done"    // result exists; fetch it from Addr
)

type leaseRequest struct {
	Key  string `json:"key"`
	Node string `json:"node"`
}

type leaseResponse struct {
	State  string `json:"state"`
	Holder string `json:"holder,omitempty"`
	Addr   string `json:"addr,omitempty"`
}

type releaseRequest struct {
	Key    string `json:"key"`
	Node   string `json:"node"`
	Stored bool   `json:"stored"`
}

type locateResponse struct {
	Addr string `json:"addr"`
}

type runRequest struct {
	Config experiment.RunConfig `json:"config"`
}

type runResponse struct {
	Result *experiment.RunResult `json:"result,omitempty"`
	Error  string                `json:"error,omitempty"`
}

type objectResponse struct {
	Version string               `json:"version"`
	Key     string               `json:"key"`
	Result  experiment.RunResult `json:"result"`
}

// shardScore is the rendezvous (highest-random-weight) weight of
// placing key on node: FNV-1a over both identities, finalized with
// splitmix64 so near-identical inputs land far apart. Every
// participant computes the same ranking from the membership list
// alone — no token ring to rebalance when nodes come and go.
func shardScore(key, node string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	h ^= 0x9e3779b97f4a7c15 // separate the two fields
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * prime64
	}
	// splitmix64 finalizer.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// postJSON round-trips one JSON request/response pair with ctx.
func postJSON(ctx context.Context, hc *http.Client, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("cluster: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(b))
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: %s: decode: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

// getJSON fetches url and decodes into out. A 404 reports found=false
// with a nil error — the caller's clean-miss path.
func getJSON(ctx context.Context, hc *http.Client, url string, out any) (found bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return false, nil
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("cluster: %s: HTTP %d: %s", url, resp.StatusCode, bytes.TrimSpace(b))
	}
	return true, json.Unmarshal(b, out)
}

// defaultHTTPClient builds the intra-cluster client: generous overall
// behavior (simulations stream back whenever they finish) but a
// bounded dial so a dead peer fails fast instead of hanging a cell.
func defaultHTTPClient() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConnsPerHost = 64
	return &http.Client{Transport: t}
}

func durMS(d time.Duration) int64 { return int64(d / time.Millisecond) }
