package cluster

import (
	"context"
	"errors"
	"log/slog"
	"net/http"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
)

// DispatcherConfig tunes a Dispatcher.
type DispatcherConfig struct {
	// Coordinator supplies membership, sharding and lease state. Required.
	Coordinator *Coordinator
	// Store is the coordinator's own result cache. It must NOT have a
	// remote tier: the dispatcher already is the remote path, and a
	// lease-acquiring coordinator store would deadlock against the
	// worker it dispatched to. Required.
	Store *resultcache.Store
	// Obs receives the dispatch instruments. Required.
	Obs *obs.Registry
	// Logger is optional.
	Logger *slog.Logger
	// HTTPClient overrides the intra-cluster client (tests).
	HTTPClient *http.Client
}

// Dispatcher is the coordinator's execution path: it plugs into
// service.SimRunner.RunCell, so the coordinator's scheduler owns every
// job while each simulation cell is sharded onto the fleet by its
// canonical key. Cells still flow through the coordinator's own result
// cache (warm keys never leave the process) and its process-local
// singleflight; on a cache miss the compute step becomes "POST the
// cell to the picked worker".
//
// Failure handling discriminates three cases: a transport failure
// (node died, connection refused, 5xx) excludes the node and retries
// the cell elsewhere; a genuine runner error arrives as a 200 envelope
// and is returned verbatim — never retried, never relabeled; and
// caller cancellation wins over both. With no eligible workers the
// coordinator simulates locally, so a fleet degraded to one node is
// just a standalone espserved.
type Dispatcher struct {
	coord  *Coordinator
	store  *resultcache.Store
	hc     *http.Client
	logger *slog.Logger

	cDispatched *obs.Counter
	cRetried    *obs.Counter
	cLocal      *obs.Counter
}

// NewDispatcher builds the coordinator-side cell executor.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = defaultHTTPClient()
	}
	return &Dispatcher{
		coord:       cfg.Coordinator,
		store:       cfg.Store,
		hc:          hc,
		logger:      logger,
		cDispatched: cfg.Obs.Counter("service.cluster.cells_dispatched"),
		cRetried:    cfg.Obs.Counter("service.cluster.dispatch_retries"),
		cLocal:      cfg.Obs.Counter("service.cluster.local_runs"),
	}
}

// RunCell executes one simulation cell for the scheduler: coordinator
// cache first, then dispatch. Plug this into service.SimRunner.RunCell.
func (d *Dispatcher) RunCell(ctx context.Context, rc experiment.RunConfig) (experiment.RunResult, error) {
	key, err := rc.CanonicalKey()
	if err != nil {
		return experiment.RunResult{}, err
	}
	res, err := d.store.RunVia(ctx, rc, func(ctx context.Context) (experiment.RunResult, error) {
		return d.dispatch(ctx, rc, key)
	})
	if err == nil {
		// The object now lives in the coordinator's store; announce it
		// so workers peer-fetch instead of recomputing.
		d.coord.RecordLocal(key)
	}
	return res, err
}

// dispatch runs one cold cell on the fleet with retry-with-exclusion.
func (d *Dispatcher) dispatch(ctx context.Context, rc experiment.RunConfig, key string) (experiment.RunResult, error) {
	tr := obs.JobTraceFrom(ctx)
	exclude := make(map[string]bool)
	for {
		node, ok := d.coord.Pick(key, exclude)
		if !ok {
			// No eligible worker (none registered, all draining, or all
			// excluded this cell): the coordinator computes. Simulate
			// emits the same run span as a standalone daemon, so traces
			// don't change shape when a fleet shrinks to one node.
			d.cLocal.Inc()
			return resultcache.Simulate(ctx, rc)
		}
		sp := tr.StartSpan("dispatch", obs.SpanHandle{})
		sp.SetAttr("node", node.ID)
		sp.SetAttr("key", shortID(key))

		var resp runResponse
		d.coord.AddInflight(node.ID, 1)
		code, err := postJSON(ctx, d.hc, "http://"+node.Addr+"/cluster/v1/run", runRequest{Config: rc}, &resp)
		d.coord.AddInflight(node.ID, -1)
		sp.End()

		if err != nil {
			if ctx.Err() != nil {
				// The caller gave up; the scheduler's cause discrimination
				// needs the context error, not a wrapped transport one.
				return experiment.RunResult{}, ctx.Err()
			}
			// Transport failure: exclude the node for this cell and retry
			// elsewhere. Hard failures also drop it from membership — if
			// it is actually alive (a blip), its next heartbeat 404s and
			// it re-registers within one interval.
			d.cRetried.Inc()
			exclude[node.ID] = true
			if code == 0 || (code >= 500 && code != http.StatusServiceUnavailable) {
				d.coord.MarkUnreachable(node.ID)
			}
			d.logger.Warn("cell dispatch failed; retrying elsewhere",
				"node", node.ID, "key", shortID(key), "code", code, "err", err)
			continue
		}
		if resp.Error != "" {
			// The simulation itself failed on a healthy node. Retrying
			// cannot help (runs are pure), and the error text is the
			// user's diagnostic — preserve it exactly.
			return experiment.RunResult{}, errors.New(resp.Error)
		}
		if resp.Result == nil {
			d.cRetried.Inc()
			exclude[node.ID] = true
			d.logger.Warn("peer returned empty result envelope", "node", node.ID)
			continue
		}
		d.cDispatched.Inc()
		return *resp.Result, nil
	}
}
