package cluster

import (
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
)

// NodeConfig tunes a NodeServer.
type NodeConfig struct {
	// Store executes and caches dispatched cells. Required.
	Store *resultcache.Store
	// MaxConcurrent bounds simultaneously executing remote cells
	// (0: 2x GOMAXPROCS — the scheduler on the coordinator is the real
	// admission control; this is a local backstop against a misbehaving
	// peer).
	MaxConcurrent int
	// Obs receives the node-side service.cluster.* instruments. Required.
	Obs *obs.Registry
	// Logger is optional.
	Logger *slog.Logger
}

// NodeServer is the execution face every daemon exposes to the fleet:
// POST /cluster/v1/run executes one simulation cell through the node's
// result cache, and GET /cluster/v1/object/{key} serves completed
// results for peer fetch. It is mounted on coordinator and workers
// alike — the coordinator's objects are peer-fetchable too.
type NodeServer struct {
	store    *resultcache.Store
	sem      chan struct{}
	logger   *slog.Logger
	inflight atomic.Int64
	draining atomic.Bool

	cRuns    *obs.Counter
	cObjects *obs.Counter
	cBusy    *obs.Counter
}

// NewNodeServer builds the execution endpoints around store.
func NewNodeServer(cfg NodeConfig) *NodeServer {
	limit := cfg.MaxConcurrent
	if limit <= 0 {
		limit = 2 * runtime.GOMAXPROCS(0)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	return &NodeServer{
		store:    cfg.Store,
		sem:      make(chan struct{}, limit),
		logger:   logger,
		cRuns:    cfg.Obs.Counter("service.cluster.runs_served"),
		cObjects: cfg.Obs.Counter("service.cluster.objects_served"),
		cBusy:    cfg.Obs.Counter("service.cluster.runs_rejected"),
	}
}

// Mount attaches the node API under /cluster/v1 on srv.
func (n *NodeServer) Mount(srv Mux) {
	srv.Handle("POST /cluster/v1/run", n.handleRun)
	srv.Handle("GET /cluster/v1/object/{key}", n.handleObject)
}

// SetDraining makes subsequent /run calls answer 503 (the dispatcher
// treats that as a transport failure and retries elsewhere) while
// object fetches keep working, so a departing node's cache stays
// useful until it exits.
func (n *NodeServer) SetDraining() { n.draining.Store(true) }

// Inflight reports currently executing remote cells — the load the
// agent self-reports on each heartbeat.
func (n *NodeServer) Inflight() int { return int(n.inflight.Load()) }

func (n *NodeServer) handleRun(w http.ResponseWriter, r *http.Request) {
	if n.draining.Load() {
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		return
	}
	var req runRequest
	if !decodeInto(w, r, &req) {
		return
	}
	rc := req.Config
	// The registry pointer is process-local state; a decoded config must
	// never carry one (and hostile JSON could make it non-nil).
	rc.Metrics = nil
	if _, err := rc.CanonicalKey(); err != nil {
		http.Error(w, `{"error":"bad config"}`, http.StatusBadRequest)
		return
	}
	select {
	case n.sem <- struct{}{}:
	default:
		// Full semaphore: refuse instead of queueing, the dispatcher's
		// retry will land the cell on a less-loaded peer.
		n.cBusy.Inc()
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
		return
	}
	defer func() { <-n.sem }()
	n.inflight.Add(1)
	defer n.inflight.Add(-1)

	res, err := n.store.RunCtx(r.Context(), rc)
	if err != nil {
		// A 200 with an error envelope is the "simulation genuinely
		// failed" signal — distinct from transport failures, so the
		// dispatcher preserves it instead of retrying.
		writeOK(w, runResponse{Error: err.Error()})
		return
	}
	n.cRuns.Inc()
	writeOK(w, runResponse{Result: &res})
}

func (n *NodeServer) handleObject(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	res, ok, err := n.store.Get(key)
	if err != nil || !ok {
		http.Error(w, `{"error":"not found"}`, http.StatusNotFound)
		return
	}
	n.cObjects.Inc()
	writeOK(w, objectResponse{Version: experiment.CodeVersion, Key: key, Result: res})
}
