package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"espnuca/internal/obs"
)

// Mux is where cluster endpoints register; *service.Server implements
// it (raw routes, outside the API's latency histograms), and tests use
// a bare http.ServeMux adapter.
type Mux interface {
	Handle(pattern string, h http.HandlerFunc)
}

// DefaultHeartbeatInterval is the cadence the coordinator grants
// workers at join when CoordinatorConfig.HeartbeatInterval is zero.
const DefaultHeartbeatInterval = 2 * time.Second

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// HeartbeatInterval is granted to workers at join; a node missing
	// roughly three beats (ExpireAfter) is declared dead. Short
	// intervals make the failure tests fast; production keeps seconds.
	HeartbeatInterval time.Duration
	// ExpireAfter overrides the death threshold (0: 3.5x the interval).
	ExpireAfter time.Duration
	// SelfAddr is this daemon's peer-reachable host:port; local-
	// fallback results are announced under it so workers can fetch
	// them. Empty disables the announcement.
	SelfAddr string
	// Obs receives the service.cluster.* instruments. Required.
	Obs *obs.Registry
	// Logger receives membership and lease lifecycle logs. Nil is
	// silent.
	Logger *slog.Logger
}

// Coordinator owns the fleet's soft state: the worker table and the
// cluster-wide lease/location table, both rebuilt from worker
// re-registration after a restart. Mount attaches its HTTP API to a
// service.Server; Start runs the heartbeat reaper.
type Coordinator struct {
	cfg    CoordinatorConfig
	m      *membership
	leases *leaseTable
	logger *slog.Logger

	cJoins     *obs.Counter
	cExpired   *obs.Counter
	cLeases    *obs.Counter
	cLeaseDone *obs.Counter
}

// NewCoordinator builds a coordinator with empty tables.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.ExpireAfter <= 0 {
		cfg.ExpireAfter = cfg.HeartbeatInterval * 7 / 2
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	c := &Coordinator{
		cfg:        cfg,
		leases:     newLeaseTable(),
		logger:     logger,
		cJoins:     cfg.Obs.Counter("service.cluster.joins"),
		cExpired:   cfg.Obs.Counter("service.cluster.nodes_expired"),
		cLeases:    cfg.Obs.Counter("service.cluster.lease_grants"),
		cLeaseDone: cfg.Obs.Counter("service.cluster.lease_done"),
	}
	c.m = newMembership(cfg.Obs, logger, func(id string) {
		leases, locs := c.leases.DropNode(id)
		if leases > 0 || locs > 0 {
			logger.Info("cluster node state released", "node", id, "leases", leases, "locations", locs)
		}
	})
	return c
}

// Start runs the heartbeat reaper until ctx ends.
func (c *Coordinator) Start(ctx context.Context) {
	go func() {
		tick := time.NewTicker(c.cfg.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-tick.C:
				if dead := c.m.ExpireDead(now, c.cfg.ExpireAfter); len(dead) > 0 {
					c.cExpired.Add(uint64(len(dead)))
				}
			}
		}
	}()
}

// Mount attaches the coordinator API under /cluster/v1 on srv.
func (c *Coordinator) Mount(srv Mux) {
	srv.Handle("POST /cluster/v1/join", c.handleJoin)
	srv.Handle("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	srv.Handle("POST /cluster/v1/leave", c.handleLeave)
	srv.Handle("POST /cluster/v1/lease", c.handleLease)
	srv.Handle("POST /cluster/v1/release", c.handleRelease)
	srv.Handle("GET /cluster/v1/locate/{key}", c.handleLocate)
	srv.Handle("GET /cluster/v1/nodes", c.handleNodes)
}

// StatusView is the coordinator's /readyz "cluster" section.
type StatusView struct {
	Role      string     `json:"role"`
	Peers     int        `json:"peers"`
	Nodes     []NodeView `json:"nodes"`
	Leases    int        `json:"leases_held"`
	Locations int        `json:"locations"`
}

// Status snapshots the fleet for /readyz.
func (c *Coordinator) Status() any {
	views := c.m.Views(time.Now())
	held, locs := c.leases.Counts()
	return StatusView{Role: "coordinator", Peers: len(views), Nodes: views, Leases: held, Locations: locs}
}

// Pick shards a key onto the live fleet (see membership.Pick).
func (c *Coordinator) Pick(key string, exclude map[string]bool) (NodeView, bool) {
	return c.m.Pick(key, exclude)
}

// AddInflight adjusts the coordinator-side dispatch count for a node.
func (c *Coordinator) AddInflight(id string, delta int) { c.m.AddInflight(id, delta) }

// MarkUnreachable drops a node after a failed dispatch. If the node is
// actually alive (a network blip), its next heartbeat 404s and it
// re-registers within one interval.
func (c *Coordinator) MarkUnreachable(id string) { c.m.Drop(id, "dispatch failed") }

// RecordLocal announces a coordinator-local result so workers can
// peer-fetch it.
func (c *Coordinator) RecordLocal(key string) {
	if c.cfg.SelfAddr != "" {
		c.leases.RecordLocation(key, "", c.cfg.SelfAddr)
	}
}

// SetSelfAddr sets the peer-reachable address after the fact — for
// callers that only learn their bound port once listening. Call before
// serving work; it is not synchronized against in-flight dispatches.
func (c *Coordinator) SetSelfAddr(addr string) { c.cfg.SelfAddr = addr }

// HeartbeatInterval reports the coordinator-granted cadence.
func (c *Coordinator) HeartbeatInterval() time.Duration { return c.cfg.HeartbeatInterval }

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	b, err := io.ReadAll(r.Body)
	if err == nil {
		err = json.Unmarshal(b, v)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"decode: %s"}`, err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Node == "" || req.Addr == "" {
		http.Error(w, `{"error":"join needs node and addr"}`, http.StatusBadRequest)
		return
	}
	c.m.Join(req.Node, req.Addr, time.Now())
	c.cJoins.Inc()
	writeOK(w, joinResponse{IntervalMS: durMS(c.cfg.HeartbeatInterval)})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if !c.m.Heartbeat(req.Node, req.Inflight, time.Now()) {
		// Unknown node: the coordinator restarted (or expired it). The
		// 404 tells the worker to re-join, which rebuilds the table.
		http.Error(w, `{"error":"unknown node"}`, http.StatusNotFound)
		return
	}
	writeOK(w, joinResponse{IntervalMS: durMS(c.cfg.HeartbeatInterval)})
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req leaveRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Drain {
		// Graceful: keep the node fetchable while it finishes in-flight
		// work, but never pick it again. Its heartbeats keep it from
		// expiring until it actually exits.
		c.m.SetDraining(req.Node)
	} else {
		c.m.Drop(req.Node, "leave")
	}
	writeOK(w, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	if req.Key == "" || req.Node == "" {
		http.Error(w, `{"error":"lease needs key and node"}`, http.StatusBadRequest)
		return
	}
	resp := c.leases.Acquire(req.Key, req.Node)
	if resp.State == leaseDone && !c.locationLive(req.Key, resp) {
		// The advertised node died since; retry the acquire so the
		// caller can win the lease instead of chasing a ghost.
		resp = c.leases.Acquire(req.Key, req.Node)
	}
	switch resp.State {
	case leaseGranted:
		c.cLeases.Inc()
	case leaseDone:
		c.cLeaseDone.Inc()
	}
	writeOK(w, resp)
}

// locationLive validates a done-lease's fetch address against the
// membership table, forgetting stale entries. The coordinator's own
// locations (Holder == "") are always live.
func (c *Coordinator) locationLive(key string, resp leaseResponse) bool {
	if resp.Holder == "" {
		return true
	}
	if _, ok := c.m.Addr(resp.Holder); ok {
		return true
	}
	c.leases.Forget(key)
	return false
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	addr, _ := c.m.Addr(req.Node)
	c.leases.Release(req.Key, req.Node, req.Stored && addr != "", addr)
	writeOK(w, map[string]bool{"ok": true})
}

func (c *Coordinator) handleLocate(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	l, ok := c.leases.Locate(key)
	if !ok {
		http.Error(w, `{"error":"unknown key"}`, http.StatusNotFound)
		return
	}
	addr := l.addr
	if l.node != "" {
		// Re-resolve through membership so a restarted worker's new
		// address wins and dead nodes read as misses.
		cur, live := c.m.Addr(l.node)
		if !live {
			c.leases.Forget(key)
			http.Error(w, `{"error":"holder gone"}`, http.StatusNotFound)
			return
		}
		addr = cur
	}
	writeOK(w, locateResponse{Addr: addr})
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeOK(w, c.m.Views(time.Now()))
}

// discardHandler is a slog.Handler disabled at every level.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler       { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler            { return discardHandler{} }
