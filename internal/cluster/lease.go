package cluster

import "sync"

// locRec names where a completed result can be fetched from. node ==
// "" marks the coordinator itself (a local-fallback run), which is
// always considered live.
type locRec struct {
	node string
	addr string
}

// leaseTable is the coordinator's cluster-wide singleflight state: at
// most one node holds the run lease for a canonical key at a time, and
// completed keys carry the address they can be fetched from. The table
// is soft state — a coordinator restart empties it and the worst case
// is one duplicated (pure, bit-identical) simulation per in-flight
// key.
type leaseTable struct {
	mu   sync.Mutex
	held map[string]string // key -> holder node ID
	loc  map[string]locRec // key -> fetch location
}

func newLeaseTable() *leaseTable {
	return &leaseTable{held: make(map[string]string), loc: make(map[string]locRec)}
}

// Acquire implements one poll of the lease protocol. Re-acquiring a
// lease the node already holds stays granted (idempotent, so a worker
// retrying after a network blip does not deadlock against itself).
func (t *leaseTable) Acquire(key, node string) leaseResponse {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.loc[key]; ok {
		return leaseResponse{State: leaseDone, Holder: l.node, Addr: l.addr}
	}
	if holder, ok := t.held[key]; ok && holder != node {
		return leaseResponse{State: leaseHeld, Holder: holder}
	}
	t.held[key] = node
	return leaseResponse{State: leaseGranted}
}

// Release ends node's lease on key. stored announces the result is now
// fetchable at addr (the holder's advertised address).
func (t *leaseTable) Release(key, node string, stored bool, addr string) {
	t.mu.Lock()
	if t.held[key] == node {
		delete(t.held, key)
	}
	if stored {
		t.loc[key] = locRec{node: node, addr: addr}
	}
	t.mu.Unlock()
}

// RecordLocation registers a completed key without a lease round-trip
// (the coordinator's own local-fallback runs).
func (t *leaseTable) RecordLocation(key, node, addr string) {
	t.mu.Lock()
	t.loc[key] = locRec{node: node, addr: addr}
	t.mu.Unlock()
}

// Locate returns the fetch location for a completed key.
func (t *leaseTable) Locate(key string) (locRec, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.loc[key]
	return l, ok
}

// Forget drops a stale location (the advertised node stopped serving
// it); the next lease cycle recomputes the key.
func (t *leaseTable) Forget(key string) {
	t.mu.Lock()
	delete(t.loc, key)
	t.mu.Unlock()
}

// DropNode releases every lease node holds and forgets every location
// it advertised — run when the node dies or leaves, so waiters can
// acquire the lease themselves and nobody chases unreachable objects.
func (t *leaseTable) DropNode(node string) (leases, locations int) {
	t.mu.Lock()
	for key, holder := range t.held {
		if holder == node {
			delete(t.held, key)
			leases++
		}
	}
	for key, l := range t.loc {
		if l.node == node {
			delete(t.loc, key)
			locations++
		}
	}
	t.mu.Unlock()
	return leases, locations
}

// Counts reports table sizes for the status view.
func (t *leaseTable) Counts() (held, locations int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held), len(t.loc)
}
