package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
)

// AgentConfig tunes a worker's Agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:9000". Required.
	Coordinator string
	// NodeID is this worker's stable identity. Required.
	NodeID string
	// Advertise is the peer-reachable host:port this worker serves on.
	// Required.
	Advertise string
	// Node reports the worker's in-flight load on heartbeats. Optional.
	Node *NodeServer
	// LeasePoll is the wait between lease re-polls while another node
	// holds the key (0: 100ms).
	LeasePoll time.Duration
	// Obs receives the agent-side service.cluster.* instruments. Required.
	Obs *obs.Registry
	// Logger is optional.
	Logger *slog.Logger
	// HTTPClient overrides the intra-cluster client (tests).
	HTTPClient *http.Client
}

// Agent is the worker side of the cluster protocol: it registers with
// the coordinator, heartbeats (re-joining automatically when a
// coordinator restart answers 404), and implements the result cache's
// remote tier — peer fetch and cluster-wide run leases — against the
// coordinator's API. Every coordinator interaction is best-effort: a
// dead coordinator degrades the worker to node-local behavior, it
// never blocks compute.
type Agent struct {
	cfg    AgentConfig
	hc     *http.Client
	logger *slog.Logger
	joined atomic.Bool

	cBeats   *obs.Counter
	cRejoins *obs.Counter
	cErrs    *obs.Counter
	cRemote  *obs.Counter
}

// NewAgent builds a worker agent. Call Run to start the membership
// loop and SetRemote(agent.Remote()) to enable the cache's remote
// tier.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.LeasePoll <= 0 {
		cfg.LeasePoll = 100 * time.Millisecond
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = defaultHTTPClient()
	}
	return &Agent{
		cfg:      cfg,
		hc:       hc,
		logger:   logger,
		cBeats:   cfg.Obs.Counter("service.cluster.heartbeats"),
		cRejoins: cfg.Obs.Counter("service.cluster.rejoins"),
		cErrs:    cfg.Obs.Counter("service.cluster.coordinator_errors"),
		cRemote:  cfg.Obs.Counter("service.cluster.remote_cache_hits"),
	}
}

// Run joins the coordinator (retrying until it succeeds) and then
// heartbeats at the coordinator-granted cadence until ctx ends. A 404
// heartbeat — the coordinator restarted and lost its membership table
// — triggers an immediate re-join, rebuilding the coordinator's state
// within one interval.
func (a *Agent) Run(ctx context.Context) {
	interval := a.join(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		inflight := 0
		if a.cfg.Node != nil {
			inflight = a.cfg.Node.Inflight()
		}
		var resp joinResponse
		code, err := postJSON(ctx, a.hc, a.cfg.Coordinator+"/cluster/v1/heartbeat",
			heartbeatRequest{Node: a.cfg.NodeID, Inflight: inflight}, &resp)
		switch {
		case err == nil:
			a.cBeats.Inc()
			a.joined.Store(true)
			if d := time.Duration(resp.IntervalMS) * time.Millisecond; d > 0 {
				interval = d
			}
		case code == http.StatusNotFound:
			a.cRejoins.Inc()
			a.logger.Warn("coordinator forgot us; re-joining", "node", a.cfg.NodeID)
			interval = a.join(ctx)
		default:
			if ctx.Err() == nil {
				a.cErrs.Inc()
				a.joined.Store(false)
				a.logger.Warn("heartbeat failed", "err", err)
			}
		}
	}
}

// join registers with the coordinator, retrying with capped backoff
// until it succeeds or ctx ends. Returns the granted heartbeat
// interval.
func (a *Agent) join(ctx context.Context) time.Duration {
	backoff := 200 * time.Millisecond
	for {
		var resp joinResponse
		_, err := postJSON(ctx, a.hc, a.cfg.Coordinator+"/cluster/v1/join",
			joinRequest{Node: a.cfg.NodeID, Addr: a.cfg.Advertise}, &resp)
		if err == nil {
			a.joined.Store(true)
			a.logger.Info("joined cluster", "coordinator", a.cfg.Coordinator, "node", a.cfg.NodeID)
			if d := time.Duration(resp.IntervalMS) * time.Millisecond; d > 0 {
				return d
			}
			return DefaultHeartbeatInterval
		}
		if ctx.Err() != nil {
			return DefaultHeartbeatInterval
		}
		a.cErrs.Inc()
		a.logger.Warn("join failed; retrying", "err", err, "backoff", backoff)
		select {
		case <-ctx.Done():
			return DefaultHeartbeatInterval
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// Leave tells the coordinator this worker is departing. drain keeps
// the node fetchable while it finishes in-flight work; best-effort
// with its own short deadline (shutdown must not hang on a dead
// coordinator).
func (a *Agent) Leave(drain bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_, err := postJSON(ctx, a.hc, a.cfg.Coordinator+"/cluster/v1/leave",
		leaveRequest{Node: a.cfg.NodeID, Drain: drain}, nil)
	if err != nil {
		a.logger.Warn("leave failed", "err", err)
	}
}

// WorkerStatus is the worker's /readyz "cluster" section.
type WorkerStatus struct {
	Role        string `json:"role"`
	Coordinator string `json:"coordinator"`
	Node        string `json:"node"`
	Joined      bool   `json:"joined"`
	Inflight    int    `json:"inflight"`
}

// Status snapshots the agent for /readyz.
func (a *Agent) Status() any {
	inflight := 0
	if a.cfg.Node != nil {
		inflight = a.cfg.Node.Inflight()
	}
	return WorkerStatus{
		Role:        "worker",
		Coordinator: a.cfg.Coordinator,
		Node:        a.cfg.NodeID,
		Joined:      a.joined.Load(),
		Inflight:    inflight,
	}
}

// Remote returns the resultcache remote tier backed by this agent.
func (a *Agent) Remote() resultcache.Remote { return remoteTier{a} }

// remoteTier adapts the cluster protocol to resultcache.Remote.
type remoteTier struct{ a *Agent }

// Fetch locates key through the coordinator and pulls the object
// straight from the peer that computed it.
func (t remoteTier) Fetch(ctx context.Context, key string) (experiment.RunResult, bool, error) {
	a := t.a
	var loc locateResponse
	found, err := getJSON(ctx, a.hc, a.cfg.Coordinator+"/cluster/v1/locate/"+key, &loc)
	if err != nil || !found {
		return experiment.RunResult{}, false, err
	}
	res, err := a.fetchObject(ctx, loc.Addr, key)
	if err != nil {
		return experiment.RunResult{}, false, err
	}
	a.cRemote.Inc()
	return res, true, nil
}

// Acquire runs the cluster-wide singleflight protocol for key: poll
// the coordinator until this node is granted the run lease (ok=false,
// release non-nil), or the result exists somewhere and is fetched
// (ok=true), or the coordinator is unreachable (err — the store
// degrades to local compute).
func (t remoteTier) Acquire(ctx context.Context, key string) (experiment.RunResult, bool, func(stored bool), error) {
	a := t.a
	for {
		var resp leaseResponse
		_, err := postJSON(ctx, a.hc, a.cfg.Coordinator+"/cluster/v1/lease",
			leaseRequest{Key: key, Node: a.cfg.NodeID}, &resp)
		if err != nil {
			return experiment.RunResult{}, false, nil, err
		}
		switch resp.State {
		case leaseGranted:
			return experiment.RunResult{}, false, t.releaseFunc(key), nil
		case leaseDone:
			res, err := a.fetchObject(ctx, resp.Addr, key)
			if err != nil {
				return experiment.RunResult{}, false, nil, err
			}
			a.cRemote.Inc()
			return res, true, nil, nil
		default: // held elsewhere: poll again
			select {
			case <-ctx.Done():
				return experiment.RunResult{}, false, nil, ctx.Err()
			case <-time.After(a.cfg.LeasePoll):
			}
		}
	}
}

// releaseFunc builds the lease release callback. It runs on its own
// short deadline: the compute is already done, and a slow coordinator
// must not hold the store's singleflight open.
func (t remoteTier) releaseFunc(key string) func(stored bool) {
	a := t.a
	return func(stored bool) {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_, err := postJSON(ctx, a.hc, a.cfg.Coordinator+"/cluster/v1/release",
			releaseRequest{Key: key, Node: a.cfg.NodeID, Stored: stored}, nil)
		if err != nil {
			a.logger.Warn("lease release failed", "key", shortID(key), "err", err)
		}
	}
}

// fetchObject pulls one completed result from a peer, guarding the
// simulator revision: a mixed-CodeVersion fleet reads as a miss, never
// as a wrong answer.
func (a *Agent) fetchObject(ctx context.Context, addr, key string) (experiment.RunResult, error) {
	var obj objectResponse
	url := "http://" + addr + "/cluster/v1/object/" + key
	found, err := getJSON(ctx, a.hc, url, &obj)
	if err != nil {
		return experiment.RunResult{}, err
	}
	if !found {
		return experiment.RunResult{}, fmt.Errorf("cluster: peer %s no longer holds %s", addr, shortID(key))
	}
	if obj.Version != experiment.CodeVersion || obj.Key != key {
		return experiment.RunResult{}, fmt.Errorf("cluster: peer %s object mismatch (version %q)", addr, obj.Version)
	}
	return obj.Result, nil
}

func shortID(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
