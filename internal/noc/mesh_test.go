package noc

import (
	"testing"
	"testing/quick"

	"espnuca/internal/sim"
)

func mustMesh(t *testing.T) *Mesh {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultTopology(t *testing.T) {
	m := mustMesh(t)
	if m.Nodes() != 8 {
		t.Fatalf("Nodes() = %d, want 8", m.Nodes())
	}
	if m.MemRouter(0) != 1 || m.MemRouter(1) != 6 {
		t.Fatalf("memory routers = %d,%d", m.MemRouter(0), m.MemRouter(1))
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(Config{Cols: -1, Rows: 2}); err == nil {
		t.Error("negative cols accepted")
	}
	if _, err := New(Config{Cols: 2, Rows: 2, MemRouters: []NodeID{9}}); err == nil {
		t.Error("out-of-range memory router accepted")
	}
}

func TestHops(t *testing.T) {
	m := mustMesh(t)
	cases := []struct {
		from, to NodeID
		want     int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 7, 4}, {3, 4, 4}, {1, 6, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.from, c.to); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.from, c.to, got, c.want)
		}
		if got := m.Hops(c.to, c.from); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d (symmetry)", c.to, c.from, got, c.want)
		}
	}
}

func TestFlits(t *testing.T) {
	m := mustMesh(t)
	if got := m.Flits(0); got != 1 {
		t.Errorf("control message = %d flits, want 1", got)
	}
	// 64B data + 8B header on 16B links = 4.5 -> 5 flits.
	if got := m.Flits(64); got != 5 {
		t.Errorf("data message = %d flits, want 5", got)
	}
}

func TestPathIsDOR(t *testing.T) {
	m := mustMesh(t)
	// From node 4 (x=0,y=1) to node 3 (x=3,y=0): X first then Y.
	got := m.Path(4, 3)
	want := []NodeID{4, 5, 6, 7, 3}
	if len(got) != len(want) {
		t.Fatalf("Path(4,3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(4,3) = %v, want %v", got, want)
		}
	}
}

// Property: DOR paths are minimal (len = hops+1), start and end correctly,
// and every step is a mesh edge.
func TestPathProperty(t *testing.T) {
	m := mustMesh(t)
	prop := func(a, b uint8) bool {
		from, to := NodeID(a%8), NodeID(b%8)
		p := m.Path(from, to)
		if p[0] != from || p[len(p)-1] != to {
			return false
		}
		if len(p) != m.Hops(from, to)+1 {
			return false
		}
		for i := 0; i < len(p)-1; i++ {
			if m.Hops(p[i], p[i+1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := mustMesh(t)
	// Control message, 1 hop: 5 cycles.
	if got := m.Latency(0, 1, 0); got != 5 {
		t.Errorf("1-hop control latency = %d, want 5", got)
	}
	// Data message, 3 hops: 3*5 + (5-1) = 19.
	if got := m.Latency(0, 3, 64); got != 19 {
		t.Errorf("3-hop data latency = %d, want 19", got)
	}
	if got := m.Latency(2, 2, 64); got != 0 {
		t.Errorf("local latency = %d, want 0", got)
	}
}

func TestSendMatchesLatencyWhenIdle(t *testing.T) {
	for from := NodeID(0); from < 8; from++ {
		for to := NodeID(0); to < 8; to++ {
			mm := mustMesh(t)
			got := mm.Send(100, from, to, Data, 64)
			want := 100 + mm.Latency(from, to, 64)
			if got != want {
				t.Fatalf("Send(%d,%d) idle arrival = %d, want %d", from, to, got, want)
			}
		}
	}
}

func TestSendContention(t *testing.T) {
	m := mustMesh(t)
	// Two 5-flit data messages over the same link at the same cycle: the
	// second's head waits for the first's 5 flits.
	first := m.Send(0, 0, 1, Data, 64)
	second := m.Send(0, 0, 1, Data, 64)
	if second <= first {
		t.Fatalf("contended message arrived at %d, not after %d", second, first)
	}
	if second-first != 5 {
		t.Fatalf("contention delay = %d, want 5 (flit serialization)", second-first)
	}
	if m.LinkWaits() == 0 {
		t.Error("LinkWaits() = 0 despite contention")
	}
}

func TestSendDisjointPathsNoContention(t *testing.T) {
	m := mustMesh(t)
	a := m.Send(0, 0, 1, Data, 64)
	b := m.Send(0, 3, 2, Data, 64) // opposite direction, different link
	if a != b {
		t.Fatalf("disjoint sends interfered: %d vs %d", a, b)
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := mustMesh(t)
	m.Send(0, 0, 1, Control, 0)
	m.Send(0, 0, 1, Data, 64)
	m.Send(0, 2, 2, Control, 0) // local, still counted as a message
	if m.Messages != 3 || m.ControlMsgs != 2 || m.DataMsgs != 1 {
		t.Fatalf("messages=%d control=%d data=%d", m.Messages, m.ControlMsgs, m.DataMsgs)
	}
	// FlitHops: 1 (control, 1 hop) + 5 (data, 1 hop) = 6.
	if m.FlitHops != 6 {
		t.Fatalf("FlitHops = %d, want 6", m.FlitHops)
	}
}

// Property: arrival time is monotonically non-decreasing in injection time
// on a fixed route (FIFO links cannot reorder same-route messages).
func TestSendMonotonicProperty(t *testing.T) {
	prop := func(gaps []uint8) bool {
		m, _ := New(DefaultConfig())
		at := sim.Cycle(0)
		prev := sim.Cycle(0)
		for _, g := range gaps {
			at += sim.Cycle(g % 8)
			arr := m.Send(at, 0, 7, Data, 64)
			if arr < prev {
				return false
			}
			prev = arr
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMemRouterWraps(t *testing.T) {
	m := mustMesh(t)
	if m.MemRouter(0) != m.MemRouter(2) {
		t.Fatal("channel index does not wrap over configured memory routers")
	}
	if m.Config().HopLatency != 5 {
		t.Fatalf("Config() hop latency = %d", m.Config().HopLatency)
	}
}

func TestDefaultFallback(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nodes() != 8 {
		t.Fatalf("zero config built %d nodes", m.Nodes())
	}
}

func TestLatencySymmetry(t *testing.T) {
	m := mustMesh(t)
	for a := NodeID(0); a < 8; a++ {
		for b := NodeID(0); b < 8; b++ {
			if m.Latency(a, b, 64) != m.Latency(b, a, 64) {
				t.Fatalf("latency asymmetric between %d and %d", a, b)
			}
		}
	}
}
