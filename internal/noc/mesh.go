// Package noc models the on-chip interconnection network: a 2D mesh with
// deterministic dimension-order (X-then-Y) routing, 128-bit links, and
// per-link contention.
//
// The evaluated system (paper Table 2, Figure 1a) has 8 processors, each
// attached to one router together with its 4 nearest L2 banks, arranged as
// a 4x2 mesh; two memory controllers sit on the mesh edges. A hop costs 5
// cycles (3 router + 2 link). Multi-flit messages pipeline through the
// network, so a message of F flits over H hops takes H*5 + (F-1) cycles
// plus any queueing at contended links.
package noc

import (
	"fmt"
	"sync/atomic"

	"espnuca/internal/sim"
)

// NodeID identifies a router in the mesh. CPU i and L2 banks 4i..4i+3
// attach to node i.
type NodeID int

// Config describes the mesh.
type Config struct {
	Cols, Rows int       // router grid (paper: 4x2)
	HopLatency sim.Cycle // per-hop latency, router+link (paper: 5)
	LinkBytes  int       // link width in bytes per flit (paper: 16 = 128 bits)
	// MemRouters[i] is the router to which memory channel i attaches.
	MemRouters []NodeID
}

// DefaultConfig is the paper's network.
func DefaultConfig() Config {
	return Config{
		Cols:       4,
		Rows:       2,
		HopLatency: 5,
		LinkBytes:  16,
		MemRouters: []NodeID{1, 6},
	}
}

// Class labels a message for traffic accounting.
type Class int

const (
	Control Class = iota // requests, acks, forwards (one flit)
	Data                 // data responses / write-backs (block + header)
)

// Mesh is the interconnect model. It is not safe for unrestricted
// concurrent use; the simulator is single-threaded by design
// (deterministic replay), with one exception: the sharded engine's
// parallel barrier may call Send concurrently for messages whose DOR
// routes share no link (disjoint footprints, see the arch package).
// SetConcurrent(true) switches the traffic counters to atomic adds for
// those phases; link Resources stay plain because footprint grouping
// guarantees per-link exclusivity.
type Mesh struct {
	cfg   Config
	nodes int
	// links[d][n] is the outgoing link of node n in direction d.
	links [4][]*sim.Resource

	// functional short-circuits Send: messages deliver instantly without
	// claiming links or counting traffic (sampled-run fast-forward).
	functional bool

	// concurrent gates the traffic counters onto atomic adds (parallel
	// barrier phases); counter totals are order-free integer sums, so
	// they stay deterministic regardless of interleaving.
	concurrent bool

	// OnLink, when non-nil, observes every link claim as (direction,
	// node). Test instrumentation for the footprint oracle; nil in
	// production runs.
	OnLink func(dir int, node NodeID)

	// Stats.
	Messages    uint64
	FlitHops    uint64
	ControlMsgs uint64
	DataMsgs    uint64
}

// Directions for link indexing.
const (
	east = iota
	west
	north
	south
)

// New builds the mesh; a nil-ish config falls back to the default.
func New(cfg Config) (*Mesh, error) {
	def := DefaultConfig()
	if cfg.Cols == 0 && cfg.Rows == 0 {
		cfg = def
	}
	if cfg.Cols <= 0 || cfg.Rows <= 0 {
		return nil, fmt.Errorf("noc: invalid grid %dx%d", cfg.Cols, cfg.Rows)
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = def.HopLatency
	}
	if cfg.LinkBytes <= 0 {
		cfg.LinkBytes = def.LinkBytes
	}
	if len(cfg.MemRouters) == 0 {
		cfg.MemRouters = def.MemRouters
	}
	n := cfg.Cols * cfg.Rows
	for _, r := range cfg.MemRouters {
		if int(r) < 0 || int(r) >= n {
			return nil, fmt.Errorf("noc: memory router %d outside grid of %d nodes", r, n)
		}
	}
	m := &Mesh{cfg: cfg, nodes: n}
	for d := 0; d < 4; d++ {
		m.links[d] = make([]*sim.Resource, n)
		for i := 0; i < n; i++ {
			m.links[d][i] = sim.NewResource(1)
		}
	}
	return m, nil
}

// SetFunctional switches the mesh between timed and functional mode. In
// functional mode Send delivers instantly: no link is claimed and no
// traffic is counted, so warming cache state costs no timing work and
// leaves no bookings behind.
func (m *Mesh) SetFunctional(on bool) { m.functional = on }

// SetConcurrent switches the traffic counters between plain and atomic
// increments. The sharded runner sets it around parallel barrier
// servicing; the serial paths never pay the atomic cost.
func (m *Mesh) SetConcurrent(on bool) { m.concurrent = on }

// count adds n to a traffic counter, atomically during concurrent
// barrier phases.
func (m *Mesh) count(p *uint64, n uint64) {
	if m.concurrent {
		atomic.AddUint64(p, n)
	} else {
		*p += n
	}
}

// Nodes returns the number of routers.
func (m *Mesh) Nodes() int { return m.nodes }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// MemRouter returns the router of memory channel ch.
func (m *Mesh) MemRouter(ch int) NodeID {
	return m.cfg.MemRouters[ch%len(m.cfg.MemRouters)]
}

func (m *Mesh) coord(n NodeID) (x, y int) {
	return int(n) % m.cfg.Cols, int(n) / m.cfg.Cols
}

// Hops returns the DOR hop count between two nodes.
func (m *Mesh) Hops(from, to NodeID) int {
	fx, fy := m.coord(from)
	tx, ty := m.coord(to)
	dx, dy := tx-fx, ty-fy
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Flits returns the number of flits for a payload of size bytes (plus an
// 8-byte header).
func (m *Mesh) Flits(size int) int {
	total := size + 8
	f := (total + m.cfg.LinkBytes - 1) / m.cfg.LinkBytes
	if f < 1 {
		f = 1
	}
	return f
}

// Path returns the DOR (X then Y) sequence of nodes from 'from' to 'to',
// inclusive of both endpoints.
func (m *Mesh) Path(from, to NodeID) []NodeID {
	path := []NodeID{from}
	fx, fy := m.coord(from)
	tx, ty := m.coord(to)
	x, y := fx, fy
	for x != tx {
		if x < tx {
			x++
		} else {
			x--
		}
		path = append(path, NodeID(y*m.cfg.Cols+x))
	}
	for y != ty {
		if y < ty {
			y++
		} else {
			y--
		}
		path = append(path, NodeID(y*m.cfg.Cols+x))
	}
	return path
}

// Send injects a message of the given class and payload size at node from
// at cycle at, and returns the cycle the full message has arrived at node
// to. Same-node delivery (bank or controller attached to the requester's
// router) bypasses the network.
func (m *Mesh) Send(at sim.Cycle, from, to NodeID, class Class, size int) sim.Cycle {
	if m.functional {
		return at
	}
	m.count(&m.Messages, 1)
	if class == Data {
		m.count(&m.DataMsgs, 1)
	} else {
		m.count(&m.ControlMsgs, 1)
	}
	if from == to {
		return at
	}
	flits := m.Flits(size)
	// Walk the DOR route directly, claiming each hop's outgoing link as it
	// is reached. This folds Path() into the claim loop: building the
	// []NodeID slice per message was the single largest allocation source
	// in the whole simulator (~47% of objects on the access hot path).
	fx, fy := m.coord(from)
	tx, ty := m.coord(to)
	t := at
	hop := func(dir int, node NodeID) {
		if m.OnLink != nil {
			m.OnLink(dir, node)
		}
		// The head flit claims the link; the body occupies it for
		// one cycle per flit (wormhole pipelining).
		t = m.links[dir][node].ClaimFor(t, sim.Cycle(flits)) + m.cfg.HopLatency
		m.count(&m.FlitHops, uint64(flits))
	}
	x, y := fx, fy
	for x != tx {
		node := NodeID(y*m.cfg.Cols + x)
		if x < tx {
			hop(east, node)
			x++
		} else {
			hop(west, node)
			x--
		}
	}
	for y != ty {
		node := NodeID(y*m.cfg.Cols + x)
		if y < ty {
			hop(south, node)
			y++
		} else {
			hop(north, node)
			y--
		}
	}
	// Tail flit trails the head by flits-1 cycles.
	return t + sim.Cycle(flits-1)
}

// Latency returns the uncontended latency for a message (used by tests and
// by idealized architectures such as perfect-search D-NUCA).
func (m *Mesh) Latency(from, to NodeID, size int) sim.Cycle {
	if from == to {
		return 0
	}
	h := sim.Cycle(m.Hops(from, to))
	return h*m.cfg.HopLatency + sim.Cycle(m.Flits(size)-1)
}

func (m *Mesh) linkFor(from, to NodeID) *sim.Resource {
	fx, fy := m.coord(from)
	tx, ty := m.coord(to)
	switch {
	case tx == fx+1 && ty == fy:
		return m.links[east][from]
	case tx == fx-1 && ty == fy:
		return m.links[west][from]
	case ty == fy+1 && tx == fx:
		return m.links[south][from]
	case ty == fy-1 && tx == fx:
		return m.links[north][from]
	}
	panic(fmt.Sprintf("noc: %d -> %d is not a mesh edge", from, to))
}

// LinkCount returns the number of unidirectional links the mesh models
// (four outgoing per router; edge links exist but never carry traffic
// under DOR routing).
func (m *Mesh) LinkCount() int { return 4 * m.nodes }

// LinkBit returns the bit index of link (dir, node) in the link bitmask
// space used by PathLinkMask — meaningful only when LinkCount() <= 64.
func (m *Mesh) LinkBit(dir int, node NodeID) int { return dir*m.nodes + int(node) }

// PathLinkMask returns a bitmask of the unidirectional links the DOR
// route from 'from' to 'to' claims, bit LinkBit(dir, node) per hop. It
// walks exactly the loop Send uses, so a message's claims are always a
// subset of the mask. Callers must check LinkCount() <= 64 first; the
// arch footprint layer degrades to a global footprint otherwise.
func (m *Mesh) PathLinkMask(from, to NodeID) uint64 {
	var mask uint64
	fx, fy := m.coord(from)
	tx, ty := m.coord(to)
	x, y := fx, fy
	for x != tx {
		node := NodeID(y*m.cfg.Cols + x)
		if x < tx {
			mask |= 1 << uint(m.LinkBit(east, node))
			x++
		} else {
			mask |= 1 << uint(m.LinkBit(west, node))
			x--
		}
	}
	for y != ty {
		node := NodeID(y*m.cfg.Cols + x)
		if y < ty {
			mask |= 1 << uint(m.LinkBit(south, node))
			y++
		} else {
			mask |= 1 << uint(m.LinkBit(north, node))
			y--
		}
	}
	return mask
}

// LinkUtilization returns the mean link occupancy over the first now
// cycles, in [0,1], averaged across every link.
func (m *Mesh) LinkUtilization(now sim.Cycle) float64 {
	if now == 0 {
		return 0
	}
	var busy sim.Cycle
	for d := 0; d < 4; d++ {
		for _, l := range m.links[d] {
			busy += l.Busy
		}
	}
	u := float64(busy) / (float64(now) * float64(m.LinkCount()))
	if u > 1 {
		u = 1
	}
	return u
}

// LinkWaits returns total cycles messages spent queued on links, an
// aggregate congestion indicator.
func (m *Mesh) LinkWaits() sim.Cycle {
	var w sim.Cycle
	for d := 0; d < 4; d++ {
		for _, l := range m.links[d] {
			w += l.Waits
		}
	}
	return w
}
