package coherence

import (
	"fmt"

	"espnuca/internal/cache"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// L1Config describes the private first-level caches (paper Table 2:
// split 32 KB I/D, 4-way, 64 B blocks, 3-cycle access, 1-cycle tag).
type L1Config struct {
	Bytes, Ways, BlockBytes int
	Latency, TagLatency     sim.Cycle
}

// DefaultL1Config returns the Table 2 L1.
func DefaultL1Config() L1Config {
	return L1Config{Bytes: 32 * 1024, Ways: 4, BlockBytes: 64, Latency: 3, TagLatency: 1}
}

// WriteBack describes a dirty line displaced from an L1.
type WriteBack struct {
	Line  mem.Line
	Dirty bool
	Valid bool
}

// L1s owns every core's split L1 caches plus the per-core MSHR resources,
// and applies coherence actions (invalidations on remote writes). The L2
// architectures reach into it to invalidate or downgrade lines.
type L1s struct {
	cfg   L1Config
	data  []*cache.Bank
	instr []*cache.Bank
	dir   *Directory
	sets  int

	// stats holds each core's hit/miss counters. Keeping them per core
	// (padded to a cache line) lets the sharded engine's parallel phase
	// count lookups without any shard ever writing another shard's
	// memory; totals are summed on demand.
	stats []l1CoreStats
}

// l1CoreStats is one core's L1 hit/miss counters, padded so adjacent
// cores' counters never share a cache line (false sharing would serialize
// the sharded engine's lookup-heavy parallel phase).
type l1CoreStats struct {
	DataHits, DataMisses, InstrHits, InstrMisses uint64
	_                                            [4]uint64
}

// NewL1s builds per-core L1 pairs for n cores.
func NewL1s(n int, cfg L1Config, dir *Directory) (*L1s, error) {
	if cfg.Bytes <= 0 || cfg.Ways <= 0 || cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("coherence: invalid L1 config %+v", cfg)
	}
	lines := cfg.Bytes / cfg.BlockBytes
	sets := lines / cfg.Ways
	if sets <= 0 {
		return nil, fmt.Errorf("coherence: L1 of %d bytes has no sets", cfg.Bytes)
	}
	l := &L1s{cfg: cfg, dir: dir, sets: sets}
	for i := 0; i < n; i++ {
		mk := func() (*cache.Bank, error) {
			return cache.NewBank(cache.Config{
				Sets: sets, Ways: cfg.Ways,
				Latency: cfg.Latency, TagLatency: cfg.TagLatency,
			})
		}
		d, err := mk()
		if err != nil {
			return nil, err
		}
		ib, err := mk()
		if err != nil {
			return nil, err
		}
		l.data = append(l.data, d)
		l.instr = append(l.instr, ib)
	}
	l.stats = make([]l1CoreStats, n)
	return l, nil
}

// Totals returns the hit/miss counters summed over all cores.
func (l *L1s) Totals() (dataHits, dataMisses, instrHits, instrMisses uint64) {
	for i := range l.stats {
		dataHits += l.stats[i].DataHits
		dataMisses += l.stats[i].DataMisses
		instrHits += l.stats[i].InstrHits
		instrMisses += l.stats[i].InstrMisses
	}
	return
}

// HitMissTotals returns the combined (I+D) hit and miss totals.
func (l *L1s) HitMissTotals() (hits, misses uint64) {
	dh, dm, ih, im := l.Totals()
	return dh + ih, dm + im
}

// Config returns the L1 configuration.
func (l *L1s) Config() L1Config { return l.cfg }

// SetFunctional switches every core's L1 banks between timed and
// functional mode (see cache.Bank.SetFunctional).
func (l *L1s) SetFunctional(on bool) {
	for i := range l.data {
		l.data[i].SetFunctional(on)
		l.instr[i].SetFunctional(on)
	}
}

// SetOnTouch installs f as the touch observer on both of core c's L1
// banks (nil uninstalls). Test instrumentation for the footprint oracle.
func (l *L1s) SetOnTouch(c int, f func()) {
	l.data[c].OnTouch = f
	l.instr[c].OnTouch = f
}

func (l *L1s) setOf(line mem.Line) int { return int(uint64(line) % uint64(l.sets)) }

func (l *L1s) bank(c int, ifetch bool) *cache.Bank {
	if ifetch {
		return l.instr[c]
	}
	return l.data[c]
}

// Lookup probes core c's L1 (I or D). On a hit it returns true and, for a
// write, marks the line dirty; writes additionally require that c holds
// all tokens (write hit on a shared line is an upgrade miss).
func (l *L1s) Lookup(c int, line mem.Line, write, ifetch bool) bool {
	b := l.bank(c, ifetch)
	set := l.setOf(line)
	blk := b.Lookup(set, cache.LineQuery(line))
	hit := blk != nil
	if hit && write {
		// Upgrade check: a write needs every token. Peek rather than
		// State: a line with no directory entry implicitly holds all its
		// tokens at memory (zero in any L1), which fails the check the
		// same way, and the read must not materialize an entry — under
		// sharded execution lookups run concurrently across cores and
		// only the serialized barrier phase may mutate the directory.
		if st := l.dir.Peek(line); st == nil || st.L1Tokens[c] != TokensPerLine {
			hit = false
		} else {
			blk.Dirty = true
		}
	}
	st := &l.stats[c]
	if ifetch {
		if hit {
			st.InstrHits++
		} else {
			st.InstrMisses++
		}
	} else {
		if hit {
			st.DataHits++
		} else {
			st.DataMisses++
		}
	}
	return hit
}

// Fill installs the line into core c's L1 after a miss is satisfied and
// returns the displaced dirty line, if any. Token movement (GrantReadL1 /
// GrantWriteL1) is the caller's job: the architecture decides where the
// tokens come from before calling Fill.
func (l *L1s) Fill(c int, line mem.Line, write, ifetch bool) WriteBack {
	b := l.bank(c, ifetch)
	set := l.setOf(line)
	if blk := b.Peek(set, cache.LineQuery(line)); blk != nil {
		// Already present (upgrade): just set dirty.
		if write {
			blk.Dirty = true
		}
		return WriteBack{}
	}
	ev := b.Insert(set, cache.Block{
		Valid: true, Line: line, Class: cache.Private, Owner: c, Dirty: write,
	}, cache.FlatLRU{})
	if !ev.Valid {
		return WriteBack{}
	}
	// The displaced line's tokens leave this L1; the architecture routes
	// the write-back (to L2 or memory), so only report it here.
	return WriteBack{Line: ev.Block.Line, Dirty: ev.Block.Dirty, Valid: true}
}

// Invalidate removes the line from core c's L1 (both arrays; a line can
// only be in one, but code/data aliasing is legal) and returns whether a
// dirty copy was dropped.
func (l *L1s) Invalidate(c int, line mem.Line) (dirty bool) {
	set := l.setOf(line)
	if old, ok := l.data[c].Invalidate(set, cache.LineQuery(line)); ok && old.Dirty {
		dirty = true
	}
	if old, ok := l.instr[c].Invalidate(set, cache.LineQuery(line)); ok && old.Dirty {
		dirty = true
	}
	return dirty
}

// InvalidateSharers removes the line from every L1 in the mask except
// keep; used on writes (token collection).
func (l *L1s) InvalidateSharers(line mem.Line, mask uint8, keep int) {
	for c := 0; c < len(l.data); c++ {
		if c != keep && mask&(1<<uint(c)) != 0 {
			l.Invalidate(c, line)
		}
	}
}

// Has reports whether core c's L1 holds the line (either array), without
// touching LRU state.
func (l *L1s) Has(c int, line mem.Line) bool {
	set := l.setOf(line)
	return l.data[c].Peek(set, cache.LineQuery(line)) != nil ||
		l.instr[c].Peek(set, cache.LineQuery(line)) != nil
}

// Access claims core c's L1 port for timing and returns the completion
// cycle of the array access.
func (l *L1s) Access(at sim.Cycle, c int, ifetch bool) sim.Cycle {
	return l.bank(c, ifetch).Access(at)
}

// Cores returns the number of cores.
func (l *L1s) Cores() int { return len(l.data) }
