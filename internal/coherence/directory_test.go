package coherence

import (
	"math/rand"
	"testing"

	"espnuca/internal/mem"
)

// smallDirectory builds a directory with a tiny table so growth,
// collision chains and backward-shift deletion are exercised with few
// entries (the exported constructor starts at dirInitialCap).
func smallDirectory(cap int) *Directory {
	return &Directory{
		parts: []dirPart{{entries: make([]dirEntry, cap), mask: uint64(cap - 1)}},
		pmask: 0,
		gen:   1,
	}
}

func TestDirectoryInsertGrowLookup(t *testing.T) {
	d := smallDirectory(8)
	const n = 1000 // forces many doublings from cap 8
	for i := 0; i < n; i++ {
		s := d.State(mem.Line(i * 3))
		s.L1Tokens[i%TokensPerLine] = 1
		s.MemTokens = TokensPerLine - 1
		s.Owner = L1Holder(i % TokensPerLine)
	}
	if d.Lines() != n {
		t.Fatalf("Lines() = %d, want %d", d.Lines(), n)
	}
	for i := 0; i < n; i++ {
		s := d.Peek(mem.Line(i * 3))
		if s == nil {
			t.Fatalf("line %d lost after growth", i*3)
		}
		if s.L1Tokens[i%TokensPerLine] != 1 || s.Owner != L1Holder(i%TokensPerLine) {
			t.Fatalf("line %d state corrupted after growth: %+v", i*3, s)
		}
	}
	// Untouched lines must stay invisible.
	if d.Peek(mem.Line(1)) != nil {
		t.Fatal("Peek materialized an untouched line")
	}
}

func TestDirectoryForgetOnlyImplicit(t *testing.T) {
	d := smallDirectory(8)
	s := d.State(10)
	s.MemTokens = TokensPerLine - 1
	s.L1Tokens[0] = 1
	s.Owner = L1Holder(0)
	if d.Forget(10) {
		t.Fatal("Forget removed a line with tokens on chip")
	}
	if d.Peek(10) == nil {
		t.Fatal("non-implicit entry vanished")
	}
	// Return the token; now the state is implicit and Forget may erase it.
	s = d.State(10)
	s.L1Tokens[0] = 0
	s.MemTokens = TokensPerLine
	s.Owner = HolderMem
	if !d.Forget(10) {
		t.Fatal("Forget refused an implicit-state entry")
	}
	if d.Peek(10) != nil {
		t.Fatal("entry still visible after Forget")
	}
	if d.Lines() != 0 {
		t.Fatalf("Lines() = %d after Forget", d.Lines())
	}
	// Re-materialization must be bit-identical to first touch.
	if *d.State(10) != implicitState {
		t.Fatal("re-materialized state differs from implicit")
	}
	if d.Forget(999) {
		t.Fatal("Forget reported removing an absent line")
	}
}

// TestDirectoryForgetChains stresses backward-shift deletion on probe
// chains: fill a small table (guaranteed collisions), delete entries in
// varying order, and check every survivor stays reachable.
func TestDirectoryForgetChains(t *testing.T) {
	for pass := 0; pass < 32; pass++ {
		d := smallDirectory(16)
		rng := rand.New(rand.NewSource(int64(pass)))
		lines := rng.Perm(11) // load factor ~0.69, heavy chaining
		for _, l := range lines {
			d.State(mem.Line(l))
		}
		// Delete a random subset (all implicit, so Forget accepts).
		deleted := map[mem.Line]bool{}
		for _, l := range rng.Perm(11)[:6] {
			if !d.Forget(mem.Line(l)) {
				t.Fatalf("pass %d: Forget(%d) failed", pass, l)
			}
			deleted[mem.Line(l)] = true
		}
		for _, l := range lines {
			got := d.Peek(mem.Line(l))
			if deleted[mem.Line(l)] && got != nil {
				t.Fatalf("pass %d: deleted line %d still reachable", pass, l)
			}
			if !deleted[mem.Line(l)] && got == nil {
				t.Fatalf("pass %d: surviving line %d unreachable after shifts", pass, l)
			}
		}
		if d.Lines() != 5 {
			t.Fatalf("pass %d: Lines() = %d, want 5", pass, d.Lines())
		}
	}
}

func TestDirectoryResetCycles(t *testing.T) {
	d := smallDirectory(8)
	for cycle := 0; cycle < 100; cycle++ {
		for i := 0; i < 20; i++ {
			s := d.State(mem.Line(i))
			s.L2Tokens = uint8(cycle % 3)
			s.MemTokens = TokensPerLine - uint8(cycle%3)
			if cycle%3 != 0 {
				s.Owner = HolderL2
			}
		}
		if d.Lines() != 20 {
			t.Fatalf("cycle %d: Lines() = %d", cycle, d.Lines())
		}
		d.Reset()
		if d.Lines() != 0 {
			t.Fatalf("cycle %d: Lines() = %d after Reset", cycle, d.Lines())
		}
		for i := 0; i < 20; i++ {
			if d.Peek(mem.Line(i)) != nil {
				t.Fatalf("cycle %d: line %d survived Reset", cycle, i)
			}
		}
		// First touch after Reset must observe pristine implicit state,
		// not the stale bytes still sitting in the recycled slots.
		if *d.State(5) != implicitState {
			t.Fatalf("cycle %d: stale state leaked across Reset", cycle)
		}
		d.Forget(5)
	}
}

// TestDirectoryDifferential drives the open-addressed table and a plain
// map reference with the same random operation stream and requires them
// to agree at every step. Small table + small line universe maximizes
// collisions, growth, and backward-shift traffic.
func TestDirectoryDifferential(t *testing.T) {
	d := smallDirectory(8)
	ref := map[mem.Line]LineState{}
	rng := rand.New(rand.NewSource(42))
	const universe = 96

	for op := 0; op < 200_000; op++ {
		l := mem.Line(rng.Intn(universe))
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // State + random mutation
			s := d.State(l)
			r, ok := ref[l]
			if !ok {
				r = implicitState
			}
			if *s != r {
				t.Fatalf("op %d: State(%d) = %+v, ref %+v", op, l, *s, r)
			}
			// Mutate both sides identically (not necessarily a legal
			// token distribution; the table must store bytes faithfully).
			c := rng.Intn(TokensPerLine)
			s.L1Tokens[c] = uint8(rng.Intn(3))
			s.MemTokens = uint8(rng.Intn(int(TokensPerLine) + 1))
			s.Dirty = rng.Intn(2) == 0
			s.Owner = Holder(rng.Intn(11) - 2)
			if rng.Intn(8) == 0 {
				*s = implicitState // make some entries forgettable
			}
			ref[l] = *s
		case 4, 5, 6: // Peek
			s := d.Peek(l)
			r, ok := ref[l]
			if ok != (s != nil) {
				t.Fatalf("op %d: Peek(%d) present=%v, ref present=%v", op, l, s != nil, ok)
			}
			if ok && *s != r {
				t.Fatalf("op %d: Peek(%d) = %+v, ref %+v", op, l, *s, r)
			}
		case 7, 8: // Forget
			removed := d.Forget(l)
			r, ok := ref[l]
			wantRemoved := ok && r == implicitState
			if removed != wantRemoved {
				t.Fatalf("op %d: Forget(%d) = %v, want %v (ref %+v)", op, l, removed, wantRemoved, r)
			}
			if removed {
				delete(ref, l)
			}
		case 9: // occasional Reset
			if rng.Intn(200) == 0 {
				d.Reset()
				ref = map[mem.Line]LineState{}
			}
		}
		if d.Lines() != len(ref) {
			t.Fatalf("op %d: Lines() = %d, ref %d", op, d.Lines(), len(ref))
		}
	}
	// Final full sweep.
	for l := mem.Line(0); l < universe; l++ {
		s := d.Peek(l)
		r, ok := ref[l]
		if ok != (s != nil) || (ok && *s != r) {
			t.Fatalf("final: line %d table/ref mismatch", l)
		}
	}
}
