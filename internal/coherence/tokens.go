// Package coherence implements the simulator's token-counting coherence
// substrate (paper §2.3). Correctness follows Token Coherence: every line
// has a fixed number of tokens (one per L1) plus an owner token; a reader
// needs at least one token, a writer needs all of them. The home L2 bank
// acts as the TokenD-style performance directory: it knows which L1s hold
// tokens, so requests are forwarded point-to-point rather than broadcast.
//
// The package tracks where tokens are (L1s, on-chip L2, memory) and
// asserts conservation after every transaction when checking is enabled.
// Timing is computed by the architecture layer; this package is the
// bookkeeping that makes hits, misses, interventions and invalidations
// mean the same thing in every evaluated architecture.
package coherence

import (
	"fmt"

	"espnuca/internal/mem"
)

// TokensPerLine is the number of plain tokens per line: one per core.
const TokensPerLine = 8

// LineState tracks token placement and sharing for one line that has been
// touched on chip. Lines never touched are implicitly "all tokens at
// memory".
type LineState struct {
	// L1Tokens[c] is the token count held by core c's L1.
	L1Tokens [TokensPerLine]uint8
	// L2Tokens are tokens held somewhere in the L2 (the architecture
	// tracks in which bank(s) the data lives).
	L2Tokens uint8
	// MemTokens are tokens at the memory controller.
	MemTokens uint8
	// Owner is where the owner token (and responsibility for dirty data)
	// sits.
	Owner Holder
	// Dirty marks the on-chip copy as newer than memory.
	Dirty bool
}

// Holder identifies a token-holding location.
type Holder int8

// Holder values: memory, the L2, or L1 of core c (HolderL1 + c).
const (
	HolderMem Holder = -2
	HolderL2  Holder = -1
	HolderL1  Holder = 0 // add the core index
)

// L1Holder returns the holder value for core c's L1.
func L1Holder(c int) Holder { return HolderL1 + Holder(c) }

// Sharers returns a bitmask of cores whose L1 holds at least one token.
func (s *LineState) Sharers() uint8 {
	var m uint8
	for c := 0; c < TokensPerLine; c++ {
		if s.L1Tokens[c] > 0 {
			m |= 1 << uint(c)
		}
	}
	return m
}

// SharerCount returns the number of L1s holding tokens.
func (s *LineState) SharerCount() int {
	n := 0
	for c := 0; c < TokensPerLine; c++ {
		if s.L1Tokens[c] > 0 {
			n++
		}
	}
	return n
}

// total returns the token sum for conservation checking.
func (s *LineState) total() int {
	t := int(s.L2Tokens) + int(s.MemTokens)
	for _, v := range s.L1Tokens {
		t += int(v)
	}
	return t
}

// implicitState is the state of a line never touched on chip: every token
// at memory, memory owning, clean. The directory stores only lines whose
// state differs from it; Forget erases entries that have decayed back.
var implicitState = LineState{MemTokens: TokensPerLine, Owner: HolderMem}

// dirEntry is one open-addressing slot: the line key, the generation the
// entry belongs to (a slot whose gen differs from the table's is free),
// and the state stored by value.
type dirEntry struct {
	line  mem.Line
	gen   uint32
	state LineState
}

// Directory is the global token/sharing state, logically distributed
// across the home L2 bank controllers (TokenD performance policy). The
// simulator centralizes it for efficiency; each access serializes at the
// home bank in timing, which is what makes the centralization legal.
//
// Storage is an open-addressed, linearly probed hash table of LineState
// values rather than a map[mem.Line]*LineState: the map boxed every state
// behind its own heap allocation and paid map-internal overhead on the
// simulator's hottest lookup. Deletion backward-shifts the probe chain so
// the table never accumulates tombstones, and Reset is O(1) via the
// generation counter.
//
// Pointer invalidation: State and Peek return pointers into the table's
// backing array. Any later State call (which may grow the table) or
// Forget call (which may backward-shift entries) invalidates previously
// returned pointers; callers must not hold a *LineState across such
// calls. The architecture layer's call sites all fetch-then-mutate or
// re-fetch after transaction steps.
//
// Partitioning: storage is split into parts routed by the line's home-bank
// bits (line & pmask, the same bits the Shared mapping uses to pick a home
// bank). Transactions with disjoint bank footprints therefore touch
// disjoint parts — disjoint backing arrays — which is what lets the
// sharded engine's parallel barrier mutate the directory from several
// workers without a lock. The single-part form (NewDirectory) is plain
// open addressing, unchanged.
type Directory struct {
	parts []dirPart
	pmask uint64 // len(parts)-1; part of line l is uint64(l) & pmask
	gen   uint32 // current generation; slots with a different gen are free
	// Check enables token-conservation verification after every mutation
	// (tests and debug runs).
	Check bool
	// Violations counts failed checks when Check is set and Panic is not.
	Violations uint64
	// OnLine, when non-nil, observes every line whose state is consulted
	// or mutated. Test instrumentation for the footprint oracle; nil in
	// production runs.
	OnLine func(l mem.Line)
}

// dirPart is one home-bank partition: an open-addressed, linearly probed
// table of its own.
type dirPart struct {
	entries []dirEntry // power-of-two length
	mask    uint64
	count   int // live entries of the current generation
}

// dirInitialCap matches the old map's size hint; must be a power of two.
// It is the total across parts: each part starts at dirInitialCap/parts
// (floored at dirMinPartCap).
const (
	dirInitialCap = 1 << 16
	dirMinPartCap = 1 << 8
)

// NewDirectory returns an empty single-partition directory.
func NewDirectory() *Directory { return NewDirectoryParts(1) }

// NewDirectoryParts returns an empty directory split into the given number
// of home-bank partitions (rounded up to a power of two).
func NewDirectoryParts(parts int) *Directory {
	if parts < 1 {
		parts = 1
	}
	np := 1
	for np < parts {
		np <<= 1
	}
	cap := dirInitialCap / np
	if cap < dirMinPartCap {
		cap = dirMinPartCap
	}
	d := &Directory{parts: make([]dirPart, np), pmask: uint64(np - 1), gen: 1}
	for i := range d.parts {
		d.parts[i] = dirPart{entries: make([]dirEntry, cap), mask: uint64(cap - 1)}
	}
	return d
}

// part returns the partition holding line l's entry.
func (d *Directory) part(l mem.Line) *dirPart {
	return &d.parts[uint64(l)&d.pmask]
}

// onLine notifies the oracle hook, if installed.
func (d *Directory) onLine(l mem.Line) {
	if d.OnLine != nil {
		d.OnLine(l)
	}
}

// hashLine mixes the line address (a fixed-stride key) into a uniform slot
// index (splitmix64 finalizer).
func hashLine(l mem.Line) uint64 {
	x := uint64(l)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// slot returns the index of l's entry in part p, or -1 and the index of
// the free slot that terminated the probe.
func (p *dirPart) slot(l mem.Line, gen uint32) (found, free int) {
	i := hashLine(l) & p.mask
	for {
		e := &p.entries[i]
		if e.gen != gen {
			return -1, int(i)
		}
		if e.line == l {
			return int(i), -1
		}
		i = (i + 1) & p.mask
	}
}

// grow doubles the part's table and rehashes the live entries.
func (p *dirPart) grow(gen uint32) {
	old := p.entries
	p.entries = make([]dirEntry, 2*len(old))
	p.mask = uint64(len(p.entries) - 1)
	for i := range old {
		e := &old[i]
		if e.gen != gen {
			continue
		}
		j := hashLine(e.line) & p.mask
		for p.entries[j].gen == gen {
			j = (j + 1) & p.mask
		}
		p.entries[j] = *e
	}
}

// State returns the line's state, materializing the implicit
// "all-at-memory" state on first touch. The pointer is valid only until
// the next State or Forget call (see the type comment).
func (d *Directory) State(l mem.Line) *LineState {
	d.onLine(l)
	p := d.part(l)
	found, free := p.slot(l, d.gen)
	if found >= 0 {
		return &p.entries[found].state
	}
	// Keep the load factor below 3/4 so probe chains stay short.
	if 4*(p.count+1) > 3*len(p.entries) {
		p.grow(d.gen)
		_, free = p.slot(l, d.gen)
	}
	p.entries[free] = dirEntry{line: l, gen: d.gen, state: implicitState}
	p.count++
	return &p.entries[free].state
}

// Peek returns the state without materializing it (nil if untouched).
func (d *Directory) Peek(l mem.Line) *LineState {
	d.onLine(l)
	p := d.part(l)
	if found, _ := p.slot(l, d.gen); found >= 0 {
		return &p.entries[found].state
	}
	return nil
}

// Forget erases l's entry if (and only if) its state has decayed back to
// the implicit all-at-memory clean state, so a later State call
// re-materializes bit-identical contents. The vacated slot is repaired by
// backward-shifting the probe chain (no tombstones). It reports whether
// the entry was removed.
func (d *Directory) Forget(l mem.Line) bool {
	d.onLine(l)
	p := d.part(l)
	found, _ := p.slot(l, d.gen)
	if found < 0 || p.entries[found].state != implicitState {
		return false
	}
	i := uint64(found)
	for {
		p.entries[i].gen = d.gen - 1 // free the slot
		// Walk the chain after i; move back the first entry whose home
		// position is outside the cyclic range (i, j], then repeat from
		// its old slot.
		j := i
		for {
			j = (j + 1) & p.mask
			e := &p.entries[j]
			if e.gen != d.gen {
				p.count--
				return true
			}
			home := hashLine(e.line) & p.mask
			// e may fill slot i iff moving it there does not place it
			// before its home position in the cyclic probe order.
			if cyclicallyBetween(i, home, j) {
				continue
			}
			p.entries[i] = *e
			i = j
			break
		}
	}
}

// cyclicallyBetween reports whether h lies in the cyclic half-open range
// (i, j] — i.e. the probe walk from i (exclusive) reaches h no later
// than j.
func cyclicallyBetween(i, h, j uint64) bool {
	if i <= j {
		return i < h && h <= j
	}
	return i < h || h <= j
}

// Reset empties the directory in O(1) by advancing the generation; every
// existing slot becomes free without being cleared.
func (d *Directory) Reset() {
	d.gen++
	if d.gen == 0 {
		// Generation wrapped (after 2^32 resets): physically clear so no
		// ancient entry can alias the recycled generation value.
		for i := range d.parts {
			clear(d.parts[i].entries)
		}
		d.gen = 1
	}
	for i := range d.parts {
		d.parts[i].count = 0
	}
	d.Violations = 0
}

// Lines returns the number of touched lines.
func (d *Directory) Lines() int {
	n := 0
	for i := range d.parts {
		n += d.parts[i].count
	}
	return n
}

// Verify checks token conservation for l and returns an error on
// violation.
func (d *Directory) Verify(l mem.Line) error {
	s := d.Peek(l)
	if s == nil {
		return nil
	}
	if got := s.total(); got != TokensPerLine {
		return fmt.Errorf("coherence: line %#x holds %d tokens, want %d", l, got, TokensPerLine)
	}
	// The owner must actually hold a token (or be memory).
	switch {
	case s.Owner == HolderMem:
		if s.Dirty {
			return fmt.Errorf("coherence: line %#x dirty but owned by memory", l)
		}
	case s.Owner == HolderL2:
		if s.L2Tokens == 0 {
			return fmt.Errorf("coherence: line %#x owned by L2 holding no tokens", l)
		}
	default:
		c := int(s.Owner - HolderL1)
		if c < 0 || c >= TokensPerLine || s.L1Tokens[c] == 0 {
			return fmt.Errorf("coherence: line %#x owned by L1 %d holding no tokens", l, c)
		}
	}
	return nil
}

// VerifyAll checks every touched line (slow; tests only).
func (d *Directory) VerifyAll() error {
	for pi := range d.parts {
		p := &d.parts[pi]
		for i := range p.entries {
			if p.entries[i].gen != d.gen {
				continue
			}
			if err := d.Verify(p.entries[i].line); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *Directory) check(l mem.Line) {
	if !d.Check {
		return
	}
	if err := d.Verify(l); err != nil {
		panic(err)
	}
}

// --- Token movement primitives ---
//
// These are the only mutation points; each re-verifies conservation when
// checking is on.

// GrantReadL1 moves one token to core c's L1 from the richest other
// holder, for a load hit/fill. It is a no-op if c already holds a token.
func (d *Directory) GrantReadL1(l mem.Line, c int) {
	s := d.State(l)
	if s.L1Tokens[c] > 0 {
		return
	}
	switch {
	case s.L2Tokens > 0:
		s.L2Tokens--
		if s.L2Tokens == 0 && s.Owner == HolderL2 {
			// The owner token travels with the last token: the data (and
			// any dirty responsibility) moves to the requesting L1.
			s.Owner = L1Holder(c)
		}
	case s.MemTokens > 0:
		s.MemTokens--
		if s.MemTokens == 0 && s.Owner == HolderMem {
			s.Owner = L1Holder(c)
		}
	default:
		// Steal from the richest L1 (must hold >1, or be the owner with
		// exactly 1 in which case ownership moves too).
		rich := -1
		for i := 0; i < TokensPerLine; i++ {
			if i != c && s.L1Tokens[i] > 0 && (rich < 0 || s.L1Tokens[i] > s.L1Tokens[rich]) {
				rich = i
			}
		}
		if rich < 0 {
			panic(fmt.Sprintf("coherence: no token source for line %#x", l))
		}
		s.L1Tokens[rich]--
		if s.L1Tokens[rich] == 0 && s.Owner == L1Holder(rich) {
			s.Owner = L1Holder(c)
		}
	}
	s.L1Tokens[c]++
	d.check(l)
}

// GrantWriteL1 collects every token at core c's L1 (a GETX): all other L1
// copies are invalidated, the L2 and memory cede their tokens, c becomes
// the owner and the line is marked dirty.
func (d *Directory) GrantWriteL1(l mem.Line, c int) {
	s := d.State(l)
	for i := 0; i < TokensPerLine; i++ {
		if i != c {
			s.L1Tokens[i] = 0
		}
	}
	s.L1Tokens[c] = TokensPerLine
	s.L2Tokens = 0
	s.MemTokens = 0
	s.Owner = L1Holder(c)
	s.Dirty = true
	d.check(l)
}

// L1Evict releases core c's tokens to the L2 (toL2=true, an L2 allocation
// of the write-back) or to memory. Ownership follows the tokens when c was
// the owner. It returns whether the line was dirty at c (write-back data
// needed).
func (d *Directory) L1Evict(l mem.Line, c int, toL2 bool) (dirty bool) {
	s := d.State(l)
	n := s.L1Tokens[c]
	if n == 0 {
		return false
	}
	s.L1Tokens[c] = 0
	wasOwner := s.Owner == L1Holder(c)
	if toL2 {
		s.L2Tokens += n
		if wasOwner {
			s.Owner = HolderL2
		}
	} else {
		s.MemTokens += n
		if wasOwner {
			s.Owner = HolderMem
			if s.Dirty {
				dirty = true
				s.Dirty = false // memory becomes current
			}
		}
	}
	if wasOwner && s.Dirty && toL2 {
		dirty = true // data moves with the owner token to L2
	}
	d.check(l)
	return dirty
}

// L2Fill moves n tokens from memory to the L2 (a fill from DRAM).
func (d *Directory) L2Fill(l mem.Line, n uint8) {
	s := d.State(l)
	if n > s.MemTokens {
		n = s.MemTokens
	}
	s.MemTokens -= n
	s.L2Tokens += n
	if s.Owner == HolderMem && s.L2Tokens > 0 {
		s.Owner = HolderL2
	}
	d.check(l)
}

// L2Evict releases all L2 tokens back to memory, returning whether the L2
// copy was dirty (write-back to DRAM required).
func (d *Directory) L2Evict(l mem.Line) (dirty bool) {
	s := d.State(l)
	if s.L2Tokens == 0 {
		return false
	}
	s.MemTokens += s.L2Tokens
	s.L2Tokens = 0
	if s.Owner == HolderL2 {
		s.Owner = HolderMem
		if s.Dirty {
			dirty = true
			s.Dirty = false
		}
	}
	d.check(l)
	return dirty
}

// WriteBackDirty marks the L2 copy dirty (used when a dirty L1 write-back
// lands in an L2 bank).
func (d *Directory) WriteBackDirty(l mem.Line) {
	s := d.State(l)
	if s.L2Tokens > 0 {
		s.Dirty = true
		if s.Owner == HolderMem {
			s.Owner = HolderL2
		}
	}
	d.check(l)
}
