package coherence

import (
	"testing"
	"testing/quick"

	"espnuca/internal/cache"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

func newDir() *Directory {
	d := NewDirectory()
	d.Check = true
	return d
}

func TestDirectoryInitialState(t *testing.T) {
	d := newDir()
	s := d.State(5)
	if s.MemTokens != TokensPerLine || s.Owner != HolderMem {
		t.Fatalf("initial state = %+v", s)
	}
	if d.Lines() != 1 {
		t.Fatalf("Lines() = %d", d.Lines())
	}
	if d.Peek(6) != nil {
		t.Fatal("Peek materialized a line")
	}
	if err := d.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestGrantReadFromMemory(t *testing.T) {
	d := newDir()
	d.GrantReadL1(1, 3)
	s := d.State(1)
	if s.L1Tokens[3] != 1 || s.MemTokens != TokensPerLine-1 {
		t.Fatalf("state = %+v", s)
	}
	// Idempotent for a core already holding a token.
	d.GrantReadL1(1, 3)
	if s.L1Tokens[3] != 1 {
		t.Fatalf("second grant changed tokens: %+v", s)
	}
	if s.Sharers() != 1<<3 || s.SharerCount() != 1 {
		t.Fatalf("sharers = %b", s.Sharers())
	}
}

func TestGrantReadPrefersL2(t *testing.T) {
	d := newDir()
	d.L2Fill(1, 4)
	d.GrantReadL1(1, 0)
	s := d.State(1)
	if s.L2Tokens != 3 || s.L1Tokens[0] != 1 {
		t.Fatalf("state = %+v", s)
	}
}

func TestGrantWriteCollectsAllTokens(t *testing.T) {
	d := newDir()
	d.GrantReadL1(1, 0)
	d.GrantReadL1(1, 1)
	d.L2Fill(1, 2)
	d.GrantWriteL1(1, 2)
	s := d.State(1)
	if s.L1Tokens[2] != TokensPerLine {
		t.Fatalf("writer tokens = %d", s.L1Tokens[2])
	}
	if s.Sharers() != 1<<2 {
		t.Fatalf("sharers after write = %b", s.Sharers())
	}
	if !s.Dirty || s.Owner != L1Holder(2) {
		t.Fatalf("owner/dirty = %v/%v", s.Owner, s.Dirty)
	}
}

func TestGrantReadStealsFromRichL1(t *testing.T) {
	d := newDir()
	d.GrantWriteL1(1, 0) // core 0 has all 8 tokens
	d.GrantReadL1(1, 5)
	s := d.State(1)
	if s.L1Tokens[0] != 7 || s.L1Tokens[5] != 1 {
		t.Fatalf("state = %+v", s)
	}
	// Ownership stays with core 0 (it still holds tokens).
	if s.Owner != L1Holder(0) {
		t.Fatalf("owner = %v", s.Owner)
	}
}

func TestOwnershipMovesWhenLastTokenStolen(t *testing.T) {
	d := newDir()
	// Core 0 is owner with exactly 1 token, rest at... construct: write
	// at 0, then 7 reads drain it to 1 token.
	d.GrantWriteL1(1, 0)
	for c := 1; c < 8; c++ {
		d.GrantReadL1(1, c)
	}
	s := d.State(1)
	if s.L1Tokens[0] != 1 {
		t.Fatalf("core 0 tokens = %d, want 1", s.L1Tokens[0])
	}
	// Next grant must steal core 0's last token and move ownership.
	d.L1Evict(1, 3, false) // free a slot: core 3 gives its token to memory
	d.GrantReadL1(1, 3)    // takes from memory, not core 0
	if s.L1Tokens[0] != 1 {
		t.Fatalf("grant stole from owner despite memory tokens: %+v", s)
	}
}

func TestL1EvictToMemory(t *testing.T) {
	d := newDir()
	d.GrantWriteL1(1, 4)
	dirty := d.L1Evict(1, 4, false)
	if !dirty {
		t.Fatal("dirty eviction not reported")
	}
	s := d.State(1)
	if s.MemTokens != TokensPerLine || s.Owner != HolderMem || s.Dirty {
		t.Fatalf("state = %+v", s)
	}
	// Evicting a non-holder is a no-op.
	if d.L1Evict(1, 2, false) {
		t.Fatal("non-holder eviction reported dirty")
	}
}

func TestL1EvictToL2KeepsDirtyOnChip(t *testing.T) {
	d := newDir()
	d.GrantWriteL1(1, 4)
	dirty := d.L1Evict(1, 4, true)
	if !dirty {
		t.Fatal("dirty write-back to L2 not reported")
	}
	s := d.State(1)
	if s.L2Tokens != TokensPerLine || s.Owner != HolderL2 {
		t.Fatalf("state = %+v", s)
	}
	if !s.Dirty {
		t.Fatal("L2 copy must stay dirty (no DRAM update)")
	}
}

func TestL2EvictReturnsDirty(t *testing.T) {
	d := newDir()
	d.GrantWriteL1(1, 4)
	d.L1Evict(1, 4, true)
	dirty := d.L2Evict(1)
	if !dirty {
		t.Fatal("dirty L2 eviction not reported")
	}
	s := d.State(1)
	if s.MemTokens != TokensPerLine || s.Dirty {
		t.Fatalf("state = %+v", s)
	}
	if d.L2Evict(1) {
		t.Fatal("second eviction reported dirty")
	}
}

func TestWriteBackDirty(t *testing.T) {
	d := newDir()
	d.L2Fill(1, 8)
	d.WriteBackDirty(1)
	if !d.State(1).Dirty {
		t.Fatal("L2 copy not marked dirty")
	}
}

func TestVerifyDetectsViolation(t *testing.T) {
	d := NewDirectory()
	s := d.State(9)
	s.MemTokens = 3 // break conservation
	if err := d.Verify(9); err == nil {
		t.Fatal("token loss not detected")
	}
	s.MemTokens = TokensPerLine
	s.Dirty = true // dirty at memory owner is illegal
	if err := d.Verify(9); err == nil {
		t.Fatal("dirty-at-memory not detected")
	}
}

// Property: any sequence of coherence operations conserves tokens and
// keeps owner validity (Check panics on violation, so survival = pass).
func TestTokenConservationProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		d := newDir()
		lines := []mem.Line{1, 2, 3}
		for op := 0; op < 3000; op++ {
			l := lines[rng.Intn(len(lines))]
			c := rng.Intn(8)
			switch rng.Intn(6) {
			case 0:
				d.GrantReadL1(l, c)
			case 1:
				d.GrantWriteL1(l, c)
			case 2:
				d.L1Evict(l, c, rng.Intn(2) == 0)
			case 3:
				d.L2Fill(l, uint8(rng.Intn(9)))
			case 4:
				d.L2Evict(l)
			case 5:
				d.WriteBackDirty(l)
			}
		}
		return d.VerifyAll() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- L1s ---

func newL1s(t *testing.T) (*L1s, *Directory) {
	t.Helper()
	d := newDir()
	cfg := L1Config{Bytes: 1024, Ways: 2, BlockBytes: 64, Latency: 3, TagLatency: 1}
	l, err := NewL1s(8, cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	return l, d
}

func TestL1LookupMissThenHit(t *testing.T) {
	l, d := newL1s(t)
	if l.Lookup(0, 100, false, false) {
		t.Fatal("cold lookup hit")
	}
	d.GrantReadL1(100, 0)
	l.Fill(0, 100, false, false)
	if !l.Lookup(0, 100, false, false) {
		t.Fatal("filled line missed")
	}
	if dh, dm, _, _ := l.Totals(); dh != 1 || dm != 1 {
		t.Fatalf("hits=%d misses=%d", dh, dm)
	}
}

func TestL1WriteHitNeedsAllTokens(t *testing.T) {
	l, d := newL1s(t)
	d.GrantReadL1(100, 0)
	d.GrantReadL1(100, 1)
	l.Fill(0, 100, false, false)
	// Core 0 has 1 token: a write lookup is an upgrade miss.
	if l.Lookup(0, 100, true, false) {
		t.Fatal("write hit without all tokens")
	}
	d.GrantWriteL1(100, 0)
	if !l.Lookup(0, 100, true, false) {
		t.Fatal("write miss despite holding all tokens")
	}
}

func TestL1SplitIAndD(t *testing.T) {
	l, d := newL1s(t)
	d.GrantReadL1(100, 0)
	l.Fill(0, 100, false, true) // instruction side
	if l.Lookup(0, 100, false, false) {
		t.Fatal("data lookup hit the instruction array")
	}
	if !l.Lookup(0, 100, false, true) {
		t.Fatal("instruction lookup missed")
	}
	if _, dm, ih, _ := l.Totals(); ih != 1 || dm != 1 {
		t.Fatalf("instr hits=%d data misses=%d", ih, dm)
	}
}

func TestL1FillEvictsAndReportsDirty(t *testing.T) {
	l, d := newL1s(t)
	// Set count: 1024/64/2 = 8 sets. Lines 0, 8, 16 conflict in set 0.
	d.GrantWriteL1(0, 0)
	l.Fill(0, 0, true, false)
	d.GrantReadL1(8, 0)
	l.Fill(0, 8, false, false)
	d.GrantReadL1(16, 0)
	wb := l.Fill(0, 16, false, false)
	if !wb.Valid || wb.Line != 0 || !wb.Dirty {
		t.Fatalf("writeback = %+v, want dirty line 0", wb)
	}
}

func TestL1InvalidateSharers(t *testing.T) {
	l, d := newL1s(t)
	for c := 0; c < 3; c++ {
		d.GrantReadL1(100, c)
		l.Fill(c, 100, false, false)
	}
	mask := d.State(100).Sharers()
	l.InvalidateSharers(100, mask, 2)
	if l.Has(0, 100) || l.Has(1, 100) {
		t.Fatal("sharers not invalidated")
	}
	if !l.Has(2, 100) {
		t.Fatal("kept core lost its line")
	}
}

func TestL1FillUpgradeInPlace(t *testing.T) {
	l, d := newL1s(t)
	d.GrantReadL1(100, 0)
	l.Fill(0, 100, false, false)
	d.GrantWriteL1(100, 0)
	wb := l.Fill(0, 100, true, false)
	if wb.Valid {
		t.Fatalf("upgrade fill displaced %+v", wb)
	}
	set := l.setOf(100)
	blk := l.data[0].Peek(set, cache.LineQuery(100))
	if blk == nil || !blk.Dirty {
		t.Fatal("upgrade did not mark dirty")
	}
}

func TestL1AccessTiming(t *testing.T) {
	l, _ := newL1s(t)
	if got := l.Access(0, 0, false); got != 3 {
		t.Fatalf("L1 access completes at %d, want 3", got)
	}
	if got := l.Access(0, 1, false); got != 3 {
		t.Fatalf("other core's L1 contended: %d", got)
	}
}

func TestNewL1sValidation(t *testing.T) {
	d := newDir()
	if _, err := NewL1s(8, L1Config{Bytes: 0, Ways: 2, BlockBytes: 64}, d); err == nil {
		t.Error("zero-byte L1 accepted")
	}
	if _, err := NewL1s(8, L1Config{Bytes: 64, Ways: 2, BlockBytes: 64}, d); err == nil {
		t.Error("L1 with no sets accepted")
	}
}

func TestDefaultL1ConfigGeometry(t *testing.T) {
	cfg := DefaultL1Config()
	if cfg.Bytes != 32*1024 || cfg.Ways != 4 || cfg.Latency != 3 {
		t.Fatalf("default L1 = %+v", cfg)
	}
	d := newDir()
	l, err := NewL1s(8, cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if l.sets != 128 {
		t.Fatalf("sets = %d, want 128", l.sets)
	}
}
