package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
)

// submitTraced posts spec with an optional client trace ID and returns
// the submit response plus the response's X-Trace-Id header.
func submitTraced(t *testing.T, ts *httptest.Server, spec JobSpec, clientTrace string) (id, traceID, header string) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientTrace != "" {
		req.Header.Set(TraceHeader, clientTrace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	return out.ID, out.TraceID, resp.Header.Get(TraceHeader)
}

func fetchTrace(t *testing.T, ts *httptest.Server, id string) TraceView {
	t.Helper()
	var tv TraceView
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/trace", &tv); code != http.StatusOK {
		t.Fatalf("trace %s: HTTP %d", id, code)
	}
	return tv
}

func indexSpans(spans []obs.Span) map[string][]obs.Span {
	m := map[string][]obs.Span{}
	for _, sp := range spans {
		m[sp.Name] = append(m[sp.Name], sp)
	}
	return m
}

// TestServedTraceColdThenWarm is the tentpole acceptance test: a cold
// submission's trace walks the whole lifecycle (received -> queued ->
// cache-lookup miss -> run with a simulate sub-span -> cache-store ->
// encode), and an identical resubmission's trace short-circuits at
// cache-lookup hit=true with no run span, because the result came from
// the cache. The client-supplied X-Trace-Id survives the whole way.
func TestServedTraceColdThenWarm(t *testing.T) {
	ts, _, store := newTestServer(t, t.TempDir())
	spec := quickRunSpec(11)

	const clientTrace = "deadbeef00c0ffee"
	id1, traceID, hdr := submitTraced(t, ts, spec, clientTrace)
	if traceID != clientTrace || hdr != clientTrace {
		t.Fatalf("trace ID not propagated: body %q header %q", traceID, hdr)
	}
	v1 := waitJobTerminal(t, ts, id1)
	if v1.State != StateSucceeded {
		t.Fatalf("cold job: %s (%s)", v1.State, v1.Error)
	}
	if v1.TraceID != clientTrace {
		t.Errorf("JobView.TraceID = %q, want %q", v1.TraceID, clientTrace)
	}
	// Fetch the result so the encode span is recorded.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id1+"/result", nil); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}

	cold := fetchTrace(t, ts, id1)
	if cold.TraceID != clientTrace {
		t.Errorf("TraceView.TraceID = %q", cold.TraceID)
	}
	m := indexSpans(cold.Spans)
	for _, name := range []string{"received", "queued", "cache-lookup", "run", "simulate", "cache-store", "encode"} {
		if len(m[name]) != 1 {
			t.Errorf("cold trace has %d %q spans, want 1 (spans: %v)", len(m[name]), name, names(cold.Spans))
		}
	}
	if len(m["cache-lookup"]) == 1 && m["cache-lookup"][0].Attrs["hit"] != "false" {
		t.Errorf("cold cache-lookup attrs = %v, want hit=false", m["cache-lookup"][0].Attrs)
	}
	if len(m["run"]) == 1 && len(m["simulate"]) == 1 && m["simulate"][0].Parent != m["run"][0].ID {
		t.Errorf("simulate span not parented under run")
	}
	for _, sp := range cold.Spans {
		if sp.End.IsZero() {
			t.Errorf("cold trace span %q left open", sp.Name)
		}
	}

	// Identical resubmission: a distinct job whose trace visibly stops
	// at the cache.
	id2, traceID2, _ := submitTraced(t, ts, spec, "")
	if id2 == id1 {
		t.Fatalf("resubmission reused job ID %s", id1)
	}
	if traceID2 == "" || traceID2 == clientTrace {
		t.Fatalf("warm submission trace ID = %q", traceID2)
	}
	if v2 := waitJobTerminal(t, ts, id2); v2.State != StateSucceeded {
		t.Fatalf("warm job: %s (%s)", v2.State, v2.Error)
	}
	warm := fetchTrace(t, ts, id2)
	wm := indexSpans(warm.Spans)
	if lk := wm["cache-lookup"]; len(lk) != 1 || lk[0].Attrs["hit"] != "true" {
		t.Fatalf("warm cache-lookup spans = %+v", lk)
	}
	if len(wm["run"]) != 0 || len(wm["cache-store"]) != 0 {
		t.Errorf("warm trace did not short-circuit: %v", names(warm.Spans))
	}
	if st := store.Stats(); st.Runs != 1 {
		t.Errorf("Runs = %d, want 1 (the warm job must not have simulated)", st.Runs)
	}
}

func names(spans []obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestServedTracedRunBitIdentical is the non-perturbation guarantee end
// to end: the traced service returns byte-for-byte the same result as a
// direct, untraced experiment.Run.
func TestServedTracedRunBitIdentical(t *testing.T) {
	ts, _, _ := newTestServer(t, t.TempDir())
	spec := quickRunSpec(13)

	rc, err := spec.Run.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiment.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	id, _, _ := submitTraced(t, ts, spec, "")
	if v := waitJobTerminal(t, ts, id); v.State != StateSucceeded {
		t.Fatalf("job: %s (%s)", v.State, v.Error)
	}
	var served experiment.RunResult
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &served); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if served != direct {
		t.Errorf("served traced result differs from direct run:\n served %+v\n direct %+v", served, direct)
	}
	if tv := fetchTrace(t, ts, id); len(tv.Spans) == 0 {
		t.Error("trace recorded no spans")
	}
}

// TestServerTracingDisabled covers the off switch: no trace ID is
// issued, the trace endpoint answers 404, and jobs still run.
func TestServerTracingDisabled(t *testing.T) {
	store, err := resultcache.Open("", resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(Config{Workers: 1, Runner: &SimRunner{Cache: store, Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(sched, store, ServerOptions{DisableTracing: true}))
	defer ts.Close()

	id, traceID, hdr := submitTraced(t, ts, quickRunSpec(17), "ignored")
	if traceID != "" || hdr != "" {
		t.Errorf("untraced submission returned trace ID %q / header %q", traceID, hdr)
	}
	v := waitJobTerminal(t, ts, id)
	if v.State != StateSucceeded {
		t.Fatalf("job: %s (%s)", v.State, v.Error)
	}
	if v.TraceID != "" {
		t.Errorf("JobView.TraceID = %q, want empty", v.TraceID)
	}
	var e struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/trace", &e); code != http.StatusNotFound {
		t.Fatalf("trace of untraced job: HTTP %d", code)
	}
	if !strings.Contains(e.Error, "no trace") {
		t.Errorf("trace error = %q", e.Error)
	}
}

// TestReadyzSplit asserts the liveness/readiness split: both answer 200
// on a healthy daemon, and once draining starts /readyz flips to 503
// while /healthz keeps answering 200.
func TestReadyzSplit(t *testing.T) {
	store, err := resultcache.Open("", resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(Config{Workers: 1, Runner: &SimRunner{Cache: store, Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(sched, store))
	defer ts.Close()

	var h HealthView
	if code := getJSON(t, ts.URL+"/readyz", &h); code != http.StatusOK {
		t.Fatalf("readyz before drain: HTTP %d", code)
	}
	if !h.Ready || h.Draining || h.Workers != 1 {
		t.Errorf("health before drain = %+v", h)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz before drain: HTTP %d", code)
	}

	if err := sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/readyz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: HTTP %d, want 503", code)
	}
	if h.Ready || !h.Draining {
		t.Errorf("health while draining = %+v", h)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz while draining: HTTP %d (liveness must stay up)", code)
	}
}

// TestMetricszPromExposition asserts the content-negotiated Prometheus
// view: valid exposition lines, the per-endpoint submit histogram, the
// per-stage histograms and the manually appended cache counters.
func TestMetricszPromExposition(t *testing.T) {
	ts, _, _ := newTestServer(t, t.TempDir())
	v := submitAndWait(t, ts, quickRunSpec(19))
	if v.State != StateSucceeded {
		t.Fatalf("job: %s", v.State)
	}

	resp, err := http.Get(ts.URL + "/metricsz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, want := range []string{
		"# TYPE service_jobs_submitted counter",
		"service_jobs_submitted 1",
		"# TYPE service_http_latency_ms_post_v1_jobs histogram",
		"service_http_latency_ms_post_v1_jobs_bucket{le=\"+Inf\"} 1",
		"# TYPE service_stage_run_ms histogram",
		"service_stage_run_ms_count 1",
		"service_stage_queue_wait_ms_summary{quantile=\"0.95\"}",
		"# TYPE resultcache_runs counter",
		"resultcache_runs 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	// The Accept header negotiates the same view; default stays JSON
	// with the histogram summaries attached.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metricsz", nil)
	req.Header.Set("Accept", "text/plain")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Accept negotiation Content-Type = %q", ct)
	}
	var js struct {
		Histograms map[string]obs.HistogramSummary `json:"histograms"`
	}
	if code := getJSON(t, ts.URL+"/metricsz", &js); code != http.StatusOK {
		t.Fatalf("json metricsz: HTTP %d", code)
	}
	if s, ok := js.Histograms["service.stage.run_ms"]; !ok || s.Count != 1 {
		t.Errorf("json histograms missing run stage: %+v", js.Histograms)
	}
}
