package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"espnuca/internal/obs"
)

// TestWatchConcurrentWatchersWithCancellations stresses the coalesced
// watch streams: many watchers follow one job while half of them cancel
// mid-stream. Survivors must observe a strictly consistent stream —
// monotone progress, exactly one terminal snapshot as the final view —
// and the cancellations must neither wedge nor starve them. Run with
// -race (CI does) to catch notification races.
func TestWatchConcurrentWatchersWithCancellations(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())

	id, err := s.Submit(runSpec("apache"))
	if err != nil {
		t.Fatal(err)
	}

	const watchers = 20
	type outcome struct {
		err       error
		views     int
		lastState State
		monotone  bool
		terminals int
	}
	results := make([]outcome, watchers)
	cancels := make([]context.CancelFunc, watchers)
	var started, done sync.WaitGroup
	for i := 0; i < watchers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			defer cancel()
			first := true
			prev := -1
			out := outcome{monotone: true}
			out.err = s.Watch(ctx, id, func(v JobView) error {
				if first {
					first = false
					started.Done()
				}
				out.views++
				out.lastState = v.State
				if v.Progress.Done < prev {
					out.monotone = false
				}
				prev = v.Progress.Done
				if v.State.Terminal() {
					out.terminals++
				}
				return nil
			})
			if first {
				started.Done()
			}
			results[i] = out
		}(i)
	}
	// Every watcher has seen its first snapshot; now half of them leave
	// mid-stream while the job is still running.
	started.Wait()
	for i := 0; i < watchers; i += 2 {
		cancels[i]()
	}
	// Let the job finish and every surviving stream drain.
	close(r.release)
	done.Wait()

	for i, out := range results {
		canceled := i%2 == 0
		if canceled {
			// A canceler may still have observed the terminal state if the
			// job finished before its cancel was noticed; it must report
			// either a clean end or its own context error — never a hang
			// (done.Wait above) and never a scheduler error.
			if out.err != nil && !errors.Is(out.err, context.Canceled) {
				t.Errorf("watcher %d (canceled): err = %v", i, out.err)
			}
			continue
		}
		if out.err != nil {
			t.Errorf("watcher %d: err = %v", i, out.err)
		}
		if !out.lastState.Terminal() || out.terminals != 1 {
			t.Errorf("watcher %d: last state %s, %d terminal views (want exactly 1, last)",
				i, out.lastState, out.terminals)
		}
		if !out.monotone {
			t.Errorf("watcher %d: progress went backwards", i)
		}
		if out.views < 2 {
			t.Errorf("watcher %d: saw %d views, want >= 2 (initial + terminal)", i, out.views)
		}
	}

	// The watcher table must be empty again: no leaked channels.
	s.mu.Lock()
	j := s.jobs[id]
	left := len(j.watchers)
	s.mu.Unlock()
	if left != 0 {
		t.Errorf("%d watcher channels leaked", left)
	}
}

// BenchmarkSubmitPath measures the pure submission cost per job with
// tracing off and on. The one worker is parked on a blocked job and the
// submissions stay queued, so the timer sees only the submit path —
// validation, queue push, and (traced) the trace allocation plus the
// queued span — with no worker-pool scheduling noise. Drain happens
// outside the timer. The issue's acceptance bar: traced stays within 2%
// of untraced, and tracing disabled costs nothing.
func BenchmarkSubmitPath(b *testing.B) {
	bench := func(b *testing.B, traced bool) {
		// Submissions are timed in bounded batches against a parked
		// worker, with drain and scheduler teardown between batches left
		// out of the timer: the live job set stays small, so GC pressure
		// from the queue itself does not masquerade as tracing overhead.
		const batch = 4096
		spec := runSpec("apache")
		b.ResetTimer()
		for done := 0; done < b.N; {
			b.StopTimer()
			r := &blockingRunner{block: true, release: make(chan struct{})}
			s, err := New(Config{Workers: 1, QueueLimit: batch + 1, RetainJobs: 64, Runner: r})
			if err != nil {
				b.Fatal(err)
			}
			n := batch
			if left := b.N - done; left < n {
				n = left
			}
			b.StartTimer()
			for k := 0; k < n; k++ {
				var tr *obs.JobTrace
				if traced {
					tr = obs.NewJobTrace("")
				}
				if _, err := s.SubmitTraced(spec, tr); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(r.release)
			s.Drain(context.Background())
			b.StartTimer()
			done += n
		}
	}
	for _, c := range []struct {
		name   string
		traced bool
	}{{"untraced", false}, {"traced", true}} {
		b.Run(c.name, func(b *testing.B) { bench(b, c.traced) })
	}
}

// BenchmarkHTTPSubmitPath is the A/B the issue's bar is stated against:
// the full POST /v1/jobs round trip with tracing on vs off. The span
// work is a few hundred nanoseconds under a multi-microsecond HTTP
// request, so the two variants must land within a couple percent.
func BenchmarkHTTPSubmitPath(b *testing.B) {
	bench := func(b *testing.B, disable bool) {
		r := &blockingRunner{block: true, release: make(chan struct{})}
		s, err := New(Config{Workers: 1, QueueLimit: 1 << 31, RetainJobs: 64, Runner: r})
		if err != nil {
			b.Fatal(err)
		}
		srv := NewServer(s, nil, ServerOptions{DisableTracing: disable})
		ts := httptest.NewServer(srv)
		body, err := json.Marshal(runSpec("apache"))
		if err != nil {
			b.Fatal(err)
		}
		client := ts.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("HTTP %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		ts.Close()
		close(r.release)
		s.Drain(context.Background())
	}
	b.Run("traced", func(b *testing.B) { bench(b, false) })
	b.Run("untraced", func(b *testing.B) { bench(b, true) })
}
