package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"espnuca/internal/experiment"
	"espnuca/internal/resultcache"
)

// newTestServer boots a full service stack (cache + sim runner +
// scheduler + HTTP) against the real simulator with quick run sizes.
func newTestServer(t *testing.T, dir string) (*httptest.Server, *Scheduler, *resultcache.Store) {
	t.Helper()
	store, err := resultcache.Open(dir, resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(Config{Workers: 2, Runner: &SimRunner{Cache: store, Parallelism: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(sched, store))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sched.Drain(ctx)
		store.Close()
	})
	return ts, sched, store
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func quickRunSpec(seed uint64) JobSpec {
	return JobSpec{Run: &RunSpec{
		Arch: "esp-nuca", Workload: "apache", Seed: seed,
		Warmup: 5_000, Instructions: 2_000,
	}}
}

func submitAndWait(t *testing.T, ts *httptest.Server, spec JobSpec) JobView {
	t.Helper()
	resp, body := postJSON(t, ts.URL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var idResp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &idResp); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v JobView
		if code := getJSON(t, ts.URL+"/v1/jobs/"+idResp.ID, &v); code != http.StatusOK {
			t.Fatalf("get job: %d", code)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", idResp.ID, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServedRunBitIdenticalAndCached is the acceptance round trip: a
// served result equals a direct experiment.Run bit-for-bit, and the
// second submission of the identical job hits the cache with zero
// simulation work.
func TestServedRunBitIdenticalAndCached(t *testing.T) {
	ts, _, store := newTestServer(t, t.TempDir())

	spec := quickRunSpec(1)
	rc, err := spec.Run.Config()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := experiment.Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)

	for round := 0; round < 2; round++ {
		v := submitAndWait(t, ts, spec)
		if v.State != StateSucceeded {
			t.Fatalf("round %d: state %s (%s)", round, v.State, v.Error)
		}
		var got experiment.RunResult
		if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &got); code != http.StatusOK {
			t.Fatalf("round %d: fetch result: %d", round, code)
		}
		b, _ := json.Marshal(got)
		if !bytes.Equal(b, want) {
			t.Errorf("round %d: served result not bit-identical to direct run:\n got  %s\n want %s", round, b, want)
		}
		// The view itself also carries the result payload.
		if v.Result == nil {
			t.Errorf("round %d: terminal view missing result", round)
		}
	}

	st := store.Stats()
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want 1: the second identical submission must be served from cache", st.Runs)
	}
	var stats resultcache.Stats
	if code := getJSON(t, ts.URL+"/v1/cache/stats", &stats); code != http.StatusOK || stats.Runs != 1 {
		t.Errorf("cache stats endpoint: code=%d stats=%+v", code, stats)
	}
}

// TestServedMatrixMatchesLocal runs a small matrix job and checks it
// equals the same matrix run locally, cell for cell.
func TestServedMatrixMatchesLocal(t *testing.T) {
	ts, _, _ := newTestServer(t, t.TempDir())
	spec := JobSpec{Matrix: &MatrixSpec{
		Workloads:    []string{"apache"},
		Variants:     []VariantSpec{{Label: "shared", Arch: "shared"}, {Label: "esp-nuca", Arch: "esp-nuca"}},
		Seeds:        []uint64{1, 2},
		Warmup:       5_000,
		Instructions: 2_000,
	}}
	v := submitAndWait(t, ts, spec)
	if v.State != StateSucceeded {
		t.Fatalf("matrix job: %s (%s)", v.State, v.Error)
	}
	if v.Progress.Done != 4 || v.Progress.Total != 4 {
		t.Errorf("progress = %+v, want 4/4", v.Progress)
	}

	m, err := spec.Matrix.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	local, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(local)
	var got experiment.Results
	if code := getJSON(t, ts.URL+"/v1/jobs/"+v.ID+"/result", &got); code != http.StatusOK {
		t.Fatalf("fetch result: %d", code)
	}
	b, _ := json.Marshal(got)
	if !bytes.Equal(b, want) {
		t.Errorf("served matrix differs from local run:\n got  %s\n want %s", b, want)
	}
}

func TestEventsStreamJSONL(t *testing.T) {
	ts, _, _ := newTestServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickRunSpec(5))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var idResp struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &idResp)

	stream, err := http.Get(ts.URL + "/v1/jobs/" + idResp.ID + "/events?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(stream.Body)
	var last JobView
	lines := 0
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v (%s)", lines, err, sc.Text())
		}
	}
	if lines == 0 {
		t.Fatal("no events streamed")
	}
	if last.State != StateSucceeded {
		t.Errorf("final event state = %s (%s)", last.State, last.Error)
	}
	if last.Result == nil {
		t.Error("final event missing result payload")
	}
}

func TestEventsStreamSSE(t *testing.T) {
	ts, _, _ := newTestServer(t, t.TempDir())
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickRunSpec(6))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var idResp struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &idResp)

	stream, err := http.Get(ts.URL + "/v1/jobs/" + idResp.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(stream.Body)
	var sawEvent bool
	var last JobView
	for sc.Scan() {
		line := sc.Text()
		if line == "event: job" {
			sawEvent = true
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &last); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
		}
	}
	if !sawEvent || last.State != StateSucceeded {
		t.Errorf("SSE stream: sawEvent=%v last=%+v", sawEvent, last)
	}
}

func TestHTTPErrorsAndIntrospection(t *testing.T) {
	ts, _, _ := newTestServer(t, t.TempDir())

	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz: %d %v", code, health)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/j99999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j99999999/events", nil); code != http.StatusNotFound {
		t.Errorf("unknown job events: %d, want 404", code)
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "run", "run": map[string]any{"arch": "esp-nuca", "workload": "nosuch"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad workload: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"bogus_field": 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"kind": "run", "run": map[string]any{
		"arch": "esp-nuca", "workload": "apache", "engine_shards": 2, "barrier_parallelism": -2}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative barrier_parallelism: %d %s", resp.StatusCode, body)
	}

	// A finished job shows up in the list; metricsz reflects it.
	v := submitAndWait(t, ts, quickRunSpec(7))
	var list []JobView
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) == 0 {
		t.Fatalf("list: %d len=%d", code, len(list))
	}
	if list[0].ID != v.ID {
		t.Errorf("list not newest-first: %s", list[0].ID)
	}
	var metrics struct {
		Counters map[string]uint64  `json:"counters"`
		Cache    *resultcache.Stats `json:"cache"`
	}
	if code := getJSON(t, ts.URL+"/metricsz", &metrics); code != http.StatusOK {
		t.Fatalf("metricsz: %d", code)
	}
	if metrics.Counters["service.jobs_succeeded"] == 0 {
		t.Errorf("metricsz counters: %v", metrics.Counters)
	}
	if metrics.Cache == nil {
		t.Error("metricsz missing cache stats")
	}

	// Result of an unfinished/failed job conflicts.
	rid, err := tsSubmitRaw(ts, JobSpec{Run: &RunSpec{Arch: "nosuch-arch", Workload: "apache", Warmup: 1, Instructions: 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitJobTerminal(t, ts, rid)
	if code := getJSON(t, ts.URL+"/v1/jobs/"+rid+"/result", nil); code != http.StatusConflict {
		t.Errorf("failed job result: %d, want 409", code)
	}
}

func tsSubmitRaw(ts *httptest.Server, spec JobSpec) (string, error) {
	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var idResp struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idResp); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d", resp.StatusCode)
	}
	return idResp.ID, nil
}

func waitJobTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v JobView
		getJSON(t, ts.URL+"/v1/jobs/"+id, &v)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
