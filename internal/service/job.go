// Package service turns the experiment harness into a long-running
// simulation service: a job model (single runs and whole matrices), a
// bounded priority scheduler with per-job deadlines and cancellation,
// and an HTTP API (cmd/espserved) that submits, watches and fetches
// jobs. Execution flows through internal/resultcache, so identical
// requests — across jobs, clients and restarts — reuse one simulation.
package service

import (
	"encoding/json"
	"fmt"
	"time"

	"espnuca/internal/experiment"
	"espnuca/internal/workload"
)

// Kind discriminates job payloads.
type Kind string

// Job kinds.
const (
	KindRun    Kind = "run"    // one (arch, workload, seed) simulation
	KindMatrix Kind = "matrix" // a full workloads x variants x seeds matrix
)

// RunSpec describes a single-simulation job. Zero values take the
// harness defaults (DefaultRunConfig): 80k warmup, 40k instructions,
// seed 1, the capacity-scaled Table 2 system.
type RunSpec struct {
	Arch     string `json:"arch"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed,omitempty"`
	// Warmup and Instructions override the per-core instruction budgets
	// when non-zero.
	Warmup       uint64 `json:"warmup,omitempty"`
	Instructions uint64 `json:"instructions,omitempty"`
	// FullSize simulates the paper's full Table 2 machine instead of the
	// capacity-scaled default.
	FullSize bool `json:"full_size,omitempty"`
	// CCProbability overrides the Cooperative Caching cooperation
	// probability. When set it must be in (0, 1]; anything else is
	// rejected at submission.
	CCProbability float64 `json:"cc_probability,omitempty"`
	// SampleWindows, when positive, runs the job in sampled mode with
	// that many measurement windows (see experiment.RunConfig). The
	// result carries its confidence bounds in Sampled and is cached under
	// a distinct key from the full run.
	SampleWindows int `json:"sample_windows,omitempty"`
	// EngineShards, when positive, runs the job on the sharded parallel
	// engine with that many mesh-region shards (see
	// experiment.RunConfig.EngineShards). The result carries its window
	// accounting in Shard and is cached under a distinct key from the
	// serial run. Mutually exclusive with sample_windows.
	EngineShards int `json:"engine_shards,omitempty"`
	// BarrierParallelism, when > 1, services each sharded window
	// barrier's independent conflict groups concurrently (see
	// experiment.RunConfig.BarrierParallelism). Results are bit-identical
	// at any setting, so it does not enter the cache key. Only meaningful
	// with engine_shards.
	BarrierParallelism int `json:"barrier_parallelism,omitempty"`
}

// Config lowers the spec to a RunConfig, validating names eagerly so a
// bad submission is rejected at the API instead of failing in a worker.
func (sp RunSpec) Config() (experiment.RunConfig, error) {
	if sp.Arch == "" {
		return experiment.RunConfig{}, fmt.Errorf("service: run spec missing arch")
	}
	if _, ok := workload.ByName(sp.Workload); !ok {
		return experiment.RunConfig{}, fmt.Errorf("service: unknown workload %q", sp.Workload)
	}
	rc := experiment.DefaultRunConfig(sp.Arch, sp.Workload)
	if sp.Seed != 0 {
		rc.Seed = sp.Seed
	}
	if sp.Warmup != 0 {
		rc.Warmup = sp.Warmup
	}
	if sp.Instructions != 0 {
		rc.Instructions = sp.Instructions
	}
	if sp.FullSize {
		rc.System = fullSizeConfig()
	}
	if sp.CCProbability != 0 {
		if sp.CCProbability <= 0 || sp.CCProbability > 1 {
			return experiment.RunConfig{}, fmt.Errorf("service: cc_probability %v outside (0, 1]", sp.CCProbability)
		}
		rc.System.CCProbability = sp.CCProbability
	}
	if sp.SampleWindows < 0 {
		return experiment.RunConfig{}, fmt.Errorf("service: sample_windows %d is negative", sp.SampleWindows)
	}
	rc.SampleWindows = sp.SampleWindows
	if sp.EngineShards < 0 {
		return experiment.RunConfig{}, fmt.Errorf("service: engine_shards %d is negative", sp.EngineShards)
	}
	if sp.EngineShards > 0 && sp.SampleWindows > 0 {
		return experiment.RunConfig{}, fmt.Errorf("service: engine_shards and sample_windows are mutually exclusive")
	}
	rc.EngineShards = sp.EngineShards
	if sp.BarrierParallelism < 0 {
		return experiment.RunConfig{}, fmt.Errorf("service: barrier_parallelism %d is negative", sp.BarrierParallelism)
	}
	rc.BarrierParallelism = sp.BarrierParallelism
	return rc, nil
}

// VariantSpec names one architecture column of a matrix job. CCProb,
// when non-nil, overrides the cooperation probability (nil keeps the
// architecture's default; 0 is a meaningful override).
type VariantSpec struct {
	Label  string   `json:"label"`
	Arch   string   `json:"arch"`
	CCProb *float64 `json:"cc_prob,omitempty"`
}

// MatrixSpec describes a matrix job: the cross product of workloads,
// variants and seeds, exactly as experiment.Matrix runs it locally.
type MatrixSpec struct {
	Workloads []string      `json:"workloads"`
	Variants  []VariantSpec `json:"variants,omitempty"`
	// VariantSet selects a named variant family instead of (or in
	// addition to) explicit Variants: "counterparts" (the paper's §6
	// set), "cc" (the CC probability family), or "all" (both).
	VariantSet   string   `json:"variant_set,omitempty"`
	Seeds        []uint64 `json:"seeds,omitempty"`
	Warmup       uint64   `json:"warmup,omitempty"`
	Instructions uint64   `json:"instructions,omitempty"`
	// Parallelism bounds the worker pool this one matrix fans out over
	// (0 defers to the server's per-job default).
	Parallelism int `json:"parallelism,omitempty"`
	// SampleWindows, when positive, executes every cell in sampled mode
	// with that many measurement windows per cell.
	SampleWindows int `json:"sample_windows,omitempty"`
	// EngineShards, when positive, executes every cell on the sharded
	// parallel engine with that many mesh-region shards per cell.
	// Mutually exclusive with sample_windows.
	EngineShards int `json:"engine_shards,omitempty"`
	// BarrierParallelism, when > 1, services each sharded cell's window
	// barriers with that many conflict-group workers. Bit-identical at
	// any setting; only meaningful with engine_shards.
	BarrierParallelism int `json:"barrier_parallelism,omitempty"`
}

// Matrix lowers the spec, validating workloads and variant names.
func (sp MatrixSpec) Matrix() (experiment.Matrix, error) {
	if len(sp.Workloads) == 0 {
		return experiment.Matrix{}, fmt.Errorf("service: matrix spec has no workloads")
	}
	for _, wl := range sp.Workloads {
		if _, ok := workload.ByName(wl); !ok {
			return experiment.Matrix{}, fmt.Errorf("service: unknown workload %q", wl)
		}
	}
	var variants []experiment.Variant
	switch sp.VariantSet {
	case "":
	case "counterparts":
		variants = experiment.CounterpartVariants()
	case "cc":
		variants = experiment.CCFamily()
	case "all":
		variants = append(experiment.CounterpartVariants(), experiment.CCFamily()...)
	default:
		return experiment.Matrix{}, fmt.Errorf("service: unknown variant set %q", sp.VariantSet)
	}
	for _, v := range sp.Variants {
		ev := experiment.V(v.Label, v.Arch)
		if ev.Label == "" {
			ev.Label = v.Arch
		}
		if v.CCProb != nil {
			ev.CCProb = *v.CCProb
		}
		variants = append(variants, ev)
	}
	if len(variants) == 0 {
		return experiment.Matrix{}, fmt.Errorf("service: matrix spec has no variants")
	}
	m := experiment.NewMatrix(sp.Workloads, variants)
	if len(sp.Seeds) > 0 {
		m.Seeds = sp.Seeds
	}
	if sp.Warmup != 0 {
		m.Warmup = sp.Warmup
	}
	if sp.Instructions != 0 {
		m.Instructions = sp.Instructions
	}
	m.Parallelism = sp.Parallelism
	if sp.SampleWindows < 0 {
		return experiment.Matrix{}, fmt.Errorf("service: sample_windows %d is negative", sp.SampleWindows)
	}
	m.SampleWindows = sp.SampleWindows
	if sp.EngineShards < 0 {
		return experiment.Matrix{}, fmt.Errorf("service: engine_shards %d is negative", sp.EngineShards)
	}
	if sp.EngineShards > 0 && sp.SampleWindows > 0 {
		return experiment.Matrix{}, fmt.Errorf("service: engine_shards and sample_windows are mutually exclusive")
	}
	m.EngineShards = sp.EngineShards
	if sp.BarrierParallelism < 0 {
		return experiment.Matrix{}, fmt.Errorf("service: barrier_parallelism %d is negative", sp.BarrierParallelism)
	}
	m.BarrierParallelism = sp.BarrierParallelism
	return m, nil
}

// JobSpec is one submission. Exactly one payload must match Kind (an
// empty Kind is inferred from the populated payload).
type JobSpec struct {
	Kind   Kind        `json:"kind,omitempty"`
	Run    *RunSpec    `json:"run,omitempty"`
	Matrix *MatrixSpec `json:"matrix,omitempty"`
	// Priority orders the queue: higher runs sooner; equal priorities
	// run in submission order.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the job's total latency (queue wait + execution)
	// in milliseconds from submission; 0 means no deadline. An expired
	// job fails with ErrDeadline's message.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// normalize infers Kind and checks the payload is well-formed.
func (sp *JobSpec) normalize() error {
	switch {
	case sp.Kind == "" && sp.Run != nil && sp.Matrix == nil:
		sp.Kind = KindRun
	case sp.Kind == "" && sp.Matrix != nil && sp.Run == nil:
		sp.Kind = KindMatrix
	}
	switch sp.Kind {
	case KindRun:
		if sp.Run == nil || sp.Matrix != nil {
			return fmt.Errorf("service: run job needs exactly the run payload")
		}
		_, err := sp.Run.Config()
		return err
	case KindMatrix:
		if sp.Matrix == nil || sp.Run != nil {
			return fmt.Errorf("service: matrix job needs exactly the matrix payload")
		}
		_, err := sp.Matrix.Matrix()
		return err
	default:
		return fmt.Errorf("service: unknown job kind %q", sp.Kind)
	}
}

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are Succeeded, Failed and Canceled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Progress counts completed work units (simulation cells for a matrix,
// 0/1 for a single run).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// JobView is the externally visible snapshot of a job, JSON-shaped for
// the HTTP API. Result is attached only when the job succeeded.
type JobView struct {
	ID         string          `json:"id"`
	Kind       Kind            `json:"kind"`
	State      State           `json:"state"`
	Priority   int             `json:"priority"`
	Progress   Progress        `json:"progress"`
	Error      string          `json:"error,omitempty"`
	Submitted  time.Time       `json:"submitted"`
	Started    *time.Time      `json:"started,omitempty"`
	Finished   *time.Time      `json:"finished,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
	TraceID    string          `json:"trace_id,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}
