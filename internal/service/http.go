package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
)

// Server is the HTTP face of the simulation service.
//
//	GET  /healthz                 liveness + uptime
//	GET  /metricsz                obs registry snapshot + cache stats
//	POST /v1/jobs                 submit a JobSpec, returns {"id": ...}
//	GET  /v1/jobs                 list job snapshots, newest first
//	GET  /v1/jobs/{id}            one job snapshot (result attached when done)
//	DELETE /v1/jobs/{id}          cancel
//	GET  /v1/jobs/{id}/result     result payload of a succeeded job
//	GET  /v1/jobs/{id}/events     live snapshots until terminal: SSE by
//	                              default, JSONL with ?format=jsonl
//	GET  /v1/cache/stats          result-cache counters and tier sizes
type Server struct {
	sched *Scheduler
	cache *resultcache.Store
	reg   *obs.Registry
	start time.Time
	mux   *http.ServeMux
}

// NewServer wires the API around a scheduler and its cache (cache may
// be nil when serving without memoization).
func NewServer(sched *Scheduler, cache *resultcache.Store) *Server {
	s := &Server{
		sched: sched,
		cache: cache,
		reg:   sched.Obs(),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/cache/stats", s.handleCacheStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errCode maps service errors to HTTP statuses.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	counters, gauges, series := s.reg.Snapshot()
	out := map[string]any{
		"counters": counters,
		"gauges":   gauges,
	}
	if len(series) > 0 {
		out["series"] = series
	}
	if s.cache != nil {
		out["cache"] = s.cache.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeErr(w, http.StatusNotFound, errors.New("service: no result cache configured"))
		return
	}
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	id, err := s.sched.Submit(spec)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

// viewWithResult attaches the result payload to a terminal succeeded
// view.
func (s *Server) viewWithResult(v JobView) JobView {
	if v.State != StateSucceeded {
		return v
	}
	if res, err := s.sched.Result(v.ID); err == nil {
		if b, err := json.Marshal(res); err == nil {
			v.Result = b
		}
	}
	return v
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, s.viewWithResult(v))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	v, err := s.sched.Get(id)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.sched.Result(r.PathValue("id"))
	if err != nil {
		code := errCode(err)
		if !errors.Is(err, ErrNotFound) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleEvents streams coalesced job snapshots until the job is
// terminal. Default framing is Server-Sent Events (`event: job`,
// `data: <JobView JSON>`); `?format=jsonl` switches to one JSON object
// per line for plain line-reader clients (espctl wait).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jsonl := r.URL.Query().Get("format") == "jsonl"
	flusher, canFlush := w.(http.Flusher)
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	id := r.PathValue("id")
	err := s.sched.Watch(r.Context(), id, func(v JobView) error {
		v = s.viewWithResult(v)
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if jsonl {
			if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "event: job\ndata: %s\n\n", b); err != nil {
				return err
			}
		}
		if canFlush {
			flusher.Flush()
		}
		return nil
	})
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
	}
	// Other errors (client gone, write failure) just end the stream.
}
