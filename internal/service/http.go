package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
)

// TraceHeader carries a job's correlation ID both ways: clients may
// supply their own on POST /v1/jobs, and every response to a traced
// submission echoes the ID the daemon recorded.
const TraceHeader = "X-Trace-Id"

// ServerOptions tunes the HTTP layer.
type ServerOptions struct {
	// Logger receives one structured line per request (method, path,
	// status, duration, trace ID). Nil is silent.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose internals and should be opt-in.
	Pprof bool
	// DisableTracing stops the server from attaching span traces to
	// submissions (jobs run exactly as before; /v1/jobs/{id}/trace
	// returns 404).
	DisableTracing bool
	// ClusterStatus, when non-nil, is called per /readyz request and
	// its value attached under "cluster": the coordinator reports its
	// registered peers and lease tables, a worker its membership state.
	ClusterStatus func() any
}

// Server is the HTTP face of the simulation service.
//
//	GET  /healthz                 liveness + uptime
//	GET  /readyz                  readiness (503 while draining) + load
//	GET  /metricsz                obs registry snapshot + cache stats;
//	                              ?format=prom (or Accept: text/plain)
//	                              switches to Prometheus text exposition
//	POST /v1/jobs                 submit a JobSpec, returns {"id", "trace_id"}
//	GET  /v1/jobs                 list job snapshots, newest first
//	GET  /v1/jobs/{id}            one job snapshot (result attached when done)
//	DELETE /v1/jobs/{id}          cancel
//	GET  /v1/jobs/{id}/result     result payload of a succeeded job
//	GET  /v1/jobs/{id}/trace      the job's span tree (see TraceView)
//	GET  /v1/jobs/{id}/events     live snapshots until terminal: SSE by
//	                              default, JSONL with ?format=jsonl
//	GET  /v1/cache/stats          result-cache counters and tier sizes
//	GET  /debug/pprof/...         runtime profiles (ServerOptions.Pprof)
type Server struct {
	sched   *Scheduler
	cache   *resultcache.Store
	reg     *obs.Registry
	start   time.Time
	mux     *http.ServeMux
	logger  *slog.Logger
	tracing bool
	cluster func() any
}

// NewServer wires the API around a scheduler and its cache (cache may
// be nil when serving without memoization). Options are variadic so
// existing NewServer(sched, cache) call sites keep their behavior:
// tracing on, no request logs, no pprof.
func NewServer(sched *Scheduler, cache *resultcache.Store, opts ...ServerOptions) *Server {
	var opt ServerOptions
	if len(opts) > 0 {
		opt = opts[0]
	}
	s := &Server{
		sched:   sched,
		cache:   cache,
		reg:     sched.Obs(),
		start:   time.Now(),
		mux:     http.NewServeMux(),
		logger:  opt.Logger,
		tracing: !opt.DisableTracing,
		cluster: opt.ClusterStatus,
	}
	if s.logger == nil {
		s.logger = discardLogger()
	}
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	s.route("GET /metricsz", s.handleMetricsz)
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs", s.handleList)
	s.route("GET /v1/jobs/{id}", s.handleGet)
	s.route("DELETE /v1/jobs/{id}", s.handleCancel)
	s.route("GET /v1/jobs/{id}/result", s.handleResult)
	s.route("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.route("GET /v1/jobs/{id}/events", s.handleEvents)
	s.route("GET /v1/cache/stats", s.handleCacheStats)
	if opt.Pprof {
		// Raw handlers: profile endpoints are debug-only and their
		// latency (e.g. profile?seconds=30) would drown the histograms.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Handle registers an additional raw route on the server's mux. The
// cluster subsystem mounts its internal endpoints (join/heartbeat/
// lease/run/object) through it; they stay outside the per-endpoint
// latency histograms and request log — heartbeats every few hundred
// milliseconds would drown both.
func (s *Server) Handle(pattern string, h http.HandlerFunc) { s.mux.HandleFunc(pattern, h) }

// statusWriter records the response status for logging and metrics. It
// must keep forwarding Flush: the SSE event stream depends on it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// routeMetric lowers a ServeMux pattern into an instrument-name suffix:
// "POST /v1/jobs/{id}" -> "post_v1_jobs_id".
func routeMetric(pattern string) string {
	var b []byte
	for _, c := range []byte(strings.ToLower(pattern)) {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b = append(b, c)
		case c == '{' || c == '}':
		default:
			if len(b) > 0 && b[len(b)-1] != '_' {
				b = append(b, '_')
			}
		}
	}
	return strings.TrimSuffix(string(b), "_")
}

// route registers a handler wrapped with per-endpoint latency
// observation and one structured request log line. The histogram is
// created per pattern (not per request), so the hot path only observes.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	hist := s.reg.Histogram("service.http.latency_ms."+routeMetric(pattern), StageLatencyBounds)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		ms := durMS(time.Since(start))
		hist.Observe(ms)
		attrs := []any{"method", r.Method, "path", r.URL.Path, "status", sw.status, "dur_ms", ms}
		trace := sw.Header().Get(TraceHeader)
		if trace == "" {
			trace = r.Header.Get(TraceHeader)
		}
		if trace != "" {
			attrs = append(attrs, "trace", trace)
		}
		s.logger.Info("http request", attrs...)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// errCode maps service errors to HTTP statuses.
func errCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoTrace):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// handleReadyz is the readiness half of the health split: it answers
// 503 the moment the scheduler starts draining, so probes and load
// balancers stop routing to a terminating daemon (which still answers
// /healthz 200 — it is alive, just not accepting work).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.sched.Health()
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	if s.cluster != nil {
		writeJSON(w, code, struct {
			HealthView
			Cluster any `json:"cluster"`
		}{h, s.cluster()})
		return
	}
	writeJSON(w, code, h)
}

// wantsProm decides the /metricsz representation: explicit ?format
// wins, then an Accept header asking for text/plain (what Prometheus
// sends) or openmetrics. Default stays JSON for human curl users.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = s.reg.WritePrometheus(w)
		if s.cache != nil {
			st := s.cache.Stats()
			for _, c := range []struct {
				name  string
				value uint64
			}{
				{"resultcache_mem_hits", st.MemHits},
				{"resultcache_disk_hits", st.DiskHits},
				{"resultcache_misses", st.Misses},
				{"resultcache_stores", st.Stores},
				{"resultcache_runs", st.Runs},
				{"resultcache_shared", st.Shared},
				{"resultcache_bypassed", st.Bypassed},
			} {
				fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.value)
			}
			fmt.Fprintf(w, "# TYPE resultcache_mem_entries gauge\nresultcache_mem_entries %d\n", st.MemEntries)
			fmt.Fprintf(w, "# TYPE resultcache_disk_entries gauge\nresultcache_disk_entries %d\n", st.DiskEntries)
		}
		return
	}
	counters, gauges, series := s.reg.Snapshot()
	out := map[string]any{
		"counters": counters,
		"gauges":   gauges,
	}
	if len(series) > 0 {
		out["series"] = series
	}
	if hists := s.reg.HistogramSummaries(); len(hists) > 0 {
		out["histograms"] = hists
	}
	if s.cache != nil {
		out["cache"] = s.cache.Stats()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeErr(w, http.StatusNotFound, errors.New("service: no result cache configured"))
		return
	}
	writeJSON(w, http.StatusOK, s.cache.Stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var tr *obs.JobTrace
	if s.tracing {
		// An X-Trace-Id from the client (espctl -trace-id) becomes the
		// job's correlation ID; otherwise one is generated.
		tr = obs.NewJobTrace(r.Header.Get(TraceHeader))
	}
	received := tr.StartSpan("received", obs.SpanHandle{})
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		received.End()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode job spec: %w", err))
		return
	}
	id, err := s.sched.SubmitTraced(spec, tr)
	received.End()
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	resp := map[string]string{"id": id}
	if tr != nil {
		w.Header().Set(TraceHeader, tr.TraceID())
		resp["trace_id"] = tr.TraceID()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

// viewWithResult attaches the result payload to a terminal succeeded
// view, reusing the scheduler's memoized encoding.
func (s *Server) viewWithResult(v JobView) JobView {
	if v.State != StateSucceeded {
		return v
	}
	if b, err := s.sched.EncodedResult(v.ID); err == nil {
		v.Result = b
	}
	return v
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, s.viewWithResult(v))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.sched.Cancel(id); err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	v, err := s.sched.Get(id)
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	b, err := s.sched.EncodedResult(r.PathValue("id"))
	if err != nil {
		code := errCode(err)
		if !errors.Is(err, ErrNotFound) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// handleTrace serves the job's span tree. The tree grows with the job:
// queued jobs show the open `queued` span, finished jobs the whole
// lifecycle (the final `encode` span appears once the result has been
// fetched at least once).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tv, err := s.sched.Trace(r.PathValue("id"))
	if err != nil {
		writeErr(w, errCode(err), err)
		return
	}
	writeJSON(w, http.StatusOK, tv)
}

// handleEvents streams coalesced job snapshots until the job is
// terminal. Default framing is Server-Sent Events (`event: job`,
// `data: <JobView JSON>`); `?format=jsonl` switches to one JSON object
// per line for plain line-reader clients (espctl wait).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jsonl := r.URL.Query().Get("format") == "jsonl"
	flusher, canFlush := w.(http.Flusher)
	if jsonl {
		w.Header().Set("Content-Type", "application/jsonl")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
	}
	id := r.PathValue("id")
	err := s.sched.Watch(r.Context(), id, func(v JobView) error {
		v = s.viewWithResult(v)
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if jsonl {
			if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "event: job\ndata: %s\n\n", b); err != nil {
				return err
			}
		}
		if canFlush {
			flusher.Flush()
		}
		return nil
	})
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
	}
	// Other errors (client gone, write failure) just end the stream.
}
