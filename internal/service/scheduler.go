package service

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"espnuca/internal/experiment"
	"espnuca/internal/obs"
)

// Scheduler errors.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity (the HTTP API maps it to 429).
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining rejects submissions after Drain started.
	ErrDraining = errors.New("service: scheduler draining")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("service: no such job")
	// ErrDeadline marks a job that exceeded its deadline.
	ErrDeadline = errors.New("service: deadline exceeded")
	// ErrNoTrace reports a job that carries no span trace (the daemon was
	// started with tracing disabled, or the job was submitted without one).
	ErrNoTrace = errors.New("service: job has no trace")
)

// errClientCancel is the cancellation cause Cancel plants, so the
// worker can tell a client cancel from a drain or deadline.
var errClientCancel = errors.New("canceled by client")

// Runner executes one job. Implementations must honor ctx (return
// promptly once it is done) and may call progress from any goroutine;
// the scheduler serializes what observers see. The returned payload is
// JSON-marshaled into the job view.
type Runner interface {
	Run(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error)
}

// RunnerFunc adapts a function to Runner.
type RunnerFunc func(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error) {
	return f(ctx, spec, progress)
}

// Config tunes a Scheduler.
type Config struct {
	// Workers is the number of jobs executed concurrently (0: NumCPU).
	// Matrix jobs additionally fan their cells over their own bounded
	// pool, so the effective simulation parallelism is Workers x
	// per-job parallelism; servers running big matrices usually want
	// few workers.
	Workers int
	// QueueLimit bounds the number of queued (not yet running) jobs
	// (0: DefaultQueueLimit).
	QueueLimit int
	// RetainJobs bounds how many terminal jobs — and their result
	// payloads, which for matrix jobs can be sizable — stay queryable
	// before the oldest are evicted from the job table, so a
	// long-running daemon does not grow without bound (0:
	// DefaultRetainJobs, negative: retain everything).
	RetainJobs int
	// Runner executes the jobs. Required.
	Runner Runner
	// Obs receives service telemetry (jobs submitted/completed/failed/
	// canceled/rejected counters, queue depth and running gauges, and the
	// per-stage latency histograms). Nil creates a private registry,
	// readable via Scheduler.Obs.
	Obs *obs.Registry
	// Logger receives structured job-lifecycle logs (submissions, state
	// transitions, drain progress). Nil is silent — tests and library
	// embedders pay nothing.
	Logger *slog.Logger
}

// StageLatencyBounds is the shared millisecond bucket layout of the
// per-stage and per-endpoint latency histograms: fine-grained at the
// sub-millisecond API end, coarse at the minutes-long simulation end.
var StageLatencyBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10_000, 30_000, 60_000, 300_000}

// discardLogger builds a logger whose handler is disabled at every
// level, so call sites can log unconditionally.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// DefaultQueueLimit bounds the queue when Config.QueueLimit is 0.
const DefaultQueueLimit = 256

// DefaultRetainJobs bounds the terminal-job history when
// Config.RetainJobs is 0.
const DefaultRetainJobs = 512

// job is the scheduler-internal record. All fields are guarded by
// Scheduler.mu once the job is registered.
type job struct {
	id       string
	spec     JobSpec
	seq      uint64
	state    State
	progress Progress
	err      error
	result   any

	submitted time.Time
	started   time.Time
	finished  time.Time
	deadline  time.Time // zero = none

	cancel   context.CancelCauseFunc // non-nil while running
	watchers map[chan struct{}]struct{}

	// trace is the job's span tree (nil when tracing is off); queuedSpan
	// is open from submission until a worker dequeues the job.
	trace      *obs.JobTrace
	queuedSpan obs.SpanHandle
	// encoded memoizes the JSON encoding of a succeeded job's result, so
	// the encode cost is paid (and its span recorded) once, not per fetch.
	encoded []byte

	heapIdx int // position in the queue heap, -1 when not queued
}

// Scheduler owns the job table, the bounded priority queue and the
// worker pool.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	queue    jobHeap
	terminal []*job // finished jobs in completion order, oldest first
	seq      uint64
	draining bool

	wg sync.WaitGroup

	reg           *obs.Registry
	cSubmitted    *obs.Counter
	cCompleted    *obs.Counter
	cFailed       *obs.Counter
	cCanceled     *obs.Counter
	cRejected     *obs.Counter
	gQueueDepth   *obs.Gauge
	gRunning      *obs.Gauge
	cShardWindows *obs.Counter
	cShardReqs    *obs.Counter
	hQueueWait    *obs.Histogram
	hRun          *obs.Histogram
	hEncode       *obs.Histogram
	runningGauges int

	logger *slog.Logger
}

// New starts a scheduler with cfg.Workers workers.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Runner == nil {
		return nil, fmt.Errorf("service: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.RetainJobs == 0 {
		cfg.RetainJobs = DefaultRetainJobs
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Scheduler{
		cfg:         cfg,
		jobs:        make(map[string]*job),
		reg:         reg,
		cSubmitted:  reg.Counter("service.jobs_submitted"),
		cCompleted:  reg.Counter("service.jobs_succeeded"),
		cFailed:     reg.Counter("service.jobs_failed"),
		cCanceled:   reg.Counter("service.jobs_canceled"),
		cRejected:   reg.Counter("service.jobs_rejected"),
		gQueueDepth: reg.Gauge("service.queue_depth"),
		gRunning:    reg.Gauge("service.jobs_running"),

		cShardWindows: reg.Counter("service.shard_windows"),
		cShardReqs:    reg.Counter("service.shard_requests"),
		hQueueWait:    reg.Histogram("service.stage.queue_wait_ms", StageLatencyBounds),
		hRun:          reg.Histogram("service.stage.run_ms", StageLatencyBounds),
		hEncode:       reg.Histogram("service.stage.encode_ms", StageLatencyBounds),
		logger:        cfg.Logger,
	}
	if s.logger == nil {
		s.logger = discardLogger()
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Obs returns the scheduler's telemetry registry.
func (s *Scheduler) Obs() *obs.Registry { return s.reg }

// Submit validates and enqueues a job, returning its ID.
func (s *Scheduler) Submit(spec JobSpec) (string, error) {
	return s.SubmitTraced(spec, nil)
}

// SubmitTraced is Submit with a span trace attached to the job: the
// scheduler opens the `queued` span now, propagates tr through the
// worker's context into the runner and result cache, and serves the
// finished tree via Trace. A nil tr records nothing (plain Submit).
func (s *Scheduler) SubmitTraced(spec JobSpec, tr *obs.JobTrace) (string, error) {
	if err := spec.normalize(); err != nil {
		return "", err
	}
	now := time.Now()
	s.mu.Lock()
	if s.draining {
		s.cRejected.Inc()
		s.mu.Unlock()
		s.logger.Info("job rejected", "reason", "draining", "trace", tr.TraceID())
		return "", ErrDraining
	}
	if s.queue.Len() >= s.cfg.QueueLimit {
		s.cRejected.Inc()
		depth := s.queue.Len()
		s.mu.Unlock()
		s.logger.Info("job rejected", "reason", "queue full", "queue_depth", depth, "trace", tr.TraceID())
		return "", ErrQueueFull
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j%08d", s.seq),
		spec:      spec,
		seq:       s.seq,
		state:     StateQueued,
		submitted: now,
		watchers:  make(map[chan struct{}]struct{}),
		trace:     tr,
		heapIdx:   -1,
	}
	j.queuedSpan = tr.StartSpanAt("queued", obs.SpanHandle{}, now)
	if spec.DeadlineMS > 0 {
		j.deadline = now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond)
	}
	s.jobs[j.id] = j
	heap.Push(&s.queue, j)
	s.cSubmitted.Inc()
	depth := s.queue.Len()
	s.gQueueDepth.Set(float64(depth))
	s.cond.Signal()
	s.mu.Unlock()
	s.logger.Info("job submitted", "job", j.id, "kind", spec.Kind, "priority", spec.Priority,
		"queue_depth", depth, "trace", tr.TraceID())
	return j.id, nil
}

// Get returns the job's current snapshot. Result payloads are attached
// by the HTTP layer (see Result), not here, to keep list views light.
func (s *Scheduler) Get(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.viewLocked(), nil
}

// Result returns the payload of a succeeded job.
func (s *Scheduler) Result(id string) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch j.state {
	case StateSucceeded:
		return j.result, nil
	case StateFailed:
		return nil, fmt.Errorf("service: job %s failed: %w", id, j.err)
	case StateCanceled:
		return nil, fmt.Errorf("service: job %s canceled", id)
	default:
		return nil, fmt.Errorf("service: job %s not finished (state %s)", id, j.state)
	}
}

// EncodedResult returns the succeeded job's payload as JSON. The bytes
// are marshaled (and the job's `encode` span recorded) once, then
// memoized, so event streams and repeated fetches reuse one encoding.
// Callers must treat the returned slice as read-only.
func (s *Scheduler) EncodedResult(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state != StateSucceeded {
		s.mu.Unlock()
		// Route through Result for the per-state error shape.
		_, err := s.Result(id)
		if err == nil {
			err = fmt.Errorf("service: job %s not finished", id)
		}
		return nil, err
	}
	if j.encoded != nil {
		b := j.encoded
		s.mu.Unlock()
		return b, nil
	}
	res, tr := j.result, j.trace
	s.mu.Unlock()

	start := time.Now()
	b, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("service: encode job %s result: %w", id, err)
	}
	s.hEncode.Observe(durMS(time.Since(start)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.encoded == nil {
		j.encoded = b
		// Only the winning encoder records the span, so the tree carries
		// exactly one `encode` even under concurrent first fetches.
		sp := tr.StartSpanAt("encode", obs.SpanHandle{}, start)
		sp.SetAttr("bytes", fmt.Sprintf("%d", len(b)))
		sp.End()
	}
	return j.encoded, nil
}

// TraceView is the JSON shape of GET /v1/jobs/{id}/trace: the job's
// whole span tree plus its correlation ID.
type TraceView struct {
	JobID   string     `json:"job_id"`
	TraceID string     `json:"trace_id"`
	State   State      `json:"state"`
	Spans   []obs.Span `json:"spans"`
}

// Trace returns the job's span tree so far (terminal jobs have the
// complete tree once their result has been fetched, which records the
// final `encode` span). ErrNoTrace if the job was submitted untraced.
func (s *Scheduler) Trace(id string) (TraceView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return TraceView{}, ErrNotFound
	}
	tr, state := j.trace, j.state
	s.mu.Unlock()
	if tr == nil {
		return TraceView{}, fmt.Errorf("%w: %s", ErrNoTrace, id)
	}
	return TraceView{JobID: id, TraceID: tr.TraceID(), State: state, Spans: tr.Snapshot()}, nil
}

// HealthView is the readiness snapshot served by /readyz. Ready flips
// to false the moment Drain starts, so load balancers and probes stop
// routing to a terminating daemon while its in-flight jobs finish.
type HealthView struct {
	Ready      bool `json:"ready"`
	Draining   bool `json:"draining"`
	QueueDepth int  `json:"queue_depth"`
	QueueLimit int  `json:"queue_limit"`
	Running    int  `json:"running"`
	Workers    int  `json:"workers"`
}

// Health reports the scheduler's readiness and load.
func (s *Scheduler) Health() HealthView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return HealthView{
		Ready:      !s.draining,
		Draining:   s.draining,
		QueueDepth: s.queue.Len(),
		QueueLimit: s.cfg.QueueLimit,
		Running:    s.runningGauges,
		Workers:    s.cfg.Workers,
	}
}

// List returns a snapshot of every job, newest submission first.
func (s *Scheduler) List() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.viewLocked())
	}
	// IDs are fixed-width ("j%08d"), so string order is submission
	// order; newest first.
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Cancel stops a job: a queued job is canceled immediately, a running
// job has its context canceled and finalizes as canceled when the
// runner returns. Canceling a terminal job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		if j.heapIdx >= 0 {
			heap.Remove(&s.queue, j.heapIdx)
			j.heapIdx = -1
			s.gQueueDepth.Set(float64(s.queue.Len()))
		}
		s.finalizeLocked(j, StateCanceled, nil, errClientCancel)
	case StateRunning:
		j.cancel(errClientCancel)
	}
	return nil
}

// Watch streams job snapshots to fn: once immediately, then after every
// change, until the job reaches a terminal state (nil return), ctx ends,
// or fn errors. Updates are coalesced — observers always see the latest
// state, not necessarily every intermediate progress value.
func (s *Scheduler) Watch(ctx context.Context, id string, fn func(JobView) error) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	ch := make(chan struct{}, 1)
	j.watchers[ch] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(j.watchers, ch)
		s.mu.Unlock()
	}()
	for {
		s.mu.Lock()
		v := j.viewLocked()
		s.mu.Unlock()
		if err := fn(v); err != nil {
			return err
		}
		if v.State.Terminal() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Drain gracefully shuts the scheduler down: new submissions are
// rejected, still-queued jobs are canceled, and in-flight jobs run to
// completion — unless ctx expires first, at which point they are
// force-canceled. Drain returns once every worker has exited.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.logger.Info("drain started", "queued", s.queue.Len(), "running", s.runningGauges)
	for s.queue.Len() > 0 {
		j := heap.Pop(&s.queue).(*job)
		j.heapIdx = -1
		s.finalizeLocked(j, StateCanceled, nil, errors.New("server shutting down"))
	}
	s.gQueueDepth.Set(0)
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logger.Info("drain complete")
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancel(fmt.Errorf("drain timeout: %w", ctx.Err()))
			}
		}
		s.mu.Unlock()
		<-done
		s.logger.Info("drain complete", "forced", true)
		return ctx.Err()
	}
}

// worker pops jobs by priority until drain empties the queue.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && !s.draining {
			s.cond.Wait()
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		j.heapIdx = -1
		s.gQueueDepth.Set(float64(s.queue.Len()))
		if j.state != StateQueued {
			// Canceled while queued (defensive: Cancel finalizes without
			// popping, so a dead entry can surface here).
			s.mu.Unlock()
			continue
		}
		now := time.Now()
		j.queuedSpan.End()
		s.hQueueWait.Observe(durMS(now.Sub(j.submitted)))
		if !j.deadline.IsZero() && now.After(j.deadline) {
			s.finalizeLocked(j, StateFailed, nil, ErrDeadline)
			s.mu.Unlock()
			continue
		}
		ctx := context.Background()
		var cancelTimeout context.CancelFunc
		if !j.deadline.IsZero() {
			ctx, cancelTimeout = context.WithDeadline(ctx, j.deadline)
		}
		ctx, cancelCause := context.WithCancelCause(ctx)
		j.cancel = cancelCause
		j.state = StateRunning
		j.started = now
		s.runningGauges++
		s.gRunning.Set(float64(s.runningGauges))
		j.notifyLocked()
		spec := j.spec
		s.mu.Unlock()
		s.logger.Info("job running", "job", j.id, "kind", spec.Kind,
			"queue_wait_ms", durMS(now.Sub(j.submitted)), "trace", j.trace.TraceID())

		// The context carries the job's trace down through the runner and
		// the result cache, which record the cache-lookup/run/cache-store
		// spans per simulation cell.
		payload, err := s.cfg.Runner.Run(obs.ContextWithJobTrace(ctx, j.trace), spec, func(done, total int) {
			s.mu.Lock()
			j.progress = Progress{Done: done, Total: total}
			j.notifyLocked()
			s.mu.Unlock()
		})
		s.hRun.Observe(durMS(time.Since(now)))

		// Read the context's verdict before releasing it: cancelCause
		// below self-cancels ctx, after which every job — including one
		// whose runner simply failed — would look context-canceled.
		ctxErr := ctx.Err()
		cause := context.Cause(ctx)
		if cancelTimeout != nil {
			cancelTimeout()
		}
		cancelCause(nil)

		s.mu.Lock()
		state := StateSucceeded
		if err != nil {
			state = StateFailed
			// Distinguish why the context died: client cancel vs deadline.
			if ctxErr != nil {
				switch {
				case errors.Is(ctxErr, context.DeadlineExceeded):
					err = ErrDeadline
				case errors.Is(cause, errClientCancel):
					state, err = StateCanceled, cause
				case cause != nil:
					err = cause
				}
			}
		}
		s.runningGauges--
		s.gRunning.Set(float64(s.runningGauges))
		s.finalizeLocked(j, state, payload, err)
		s.mu.Unlock()
	}
}

// shardTotals sums the sharded-engine window accounting across a
// completed payload's runs (zero for serial and sampled work), so
// /metricsz exposes how much sharded simulation the daemon has served.
func shardTotals(payload any) (windows, requests uint64) {
	add := func(r experiment.RunResult) {
		if r.Shard != nil {
			windows += r.Shard.Windows
			requests += r.Shard.Requests
		}
	}
	switch v := payload.(type) {
	case experiment.RunResult:
		add(v)
	case experiment.Results:
		for _, wls := range v {
			for _, cell := range wls {
				for _, r := range cell.Runs {
					add(r)
				}
			}
		}
	}
	return windows, requests
}

// finalizeLocked moves j to a terminal state and wakes watchers.
// Caller holds s.mu.
func (s *Scheduler) finalizeLocked(j *job, state State, payload any, err error) {
	if j.state.Terminal() {
		return
	}
	// A job canceled while still queued (client cancel, drain, expired
	// deadline) never reached a worker; close its queue span here.
	j.queuedSpan.End()
	if state == StateSucceeded {
		if w, r := shardTotals(payload); w > 0 {
			s.cShardWindows.Add(w)
			s.cShardReqs.Add(r)
		}
	}
	j.state = state
	j.result = payload
	j.err = err
	j.finished = time.Now()
	j.cancel = nil
	switch state {
	case StateSucceeded:
		s.cCompleted.Inc()
	case StateFailed:
		s.cFailed.Inc()
	case StateCanceled:
		s.cCanceled.Inc()
	}
	j.notifyLocked()
	logAttrs := []any{"job", j.id, "state", string(state), "trace", j.trace.TraceID(),
		"total_ms", durMS(j.finished.Sub(j.submitted))}
	if err != nil {
		logAttrs = append(logAttrs, "error", err.Error())
	}
	s.logger.Info("job finished", logAttrs...)
	// Evict the oldest terminal jobs past the retention bound so the
	// table (and the result payloads it pins) stays bounded. Watchers
	// hold their own *job and have already been woken with the terminal
	// snapshot, so eviction only affects future lookups by ID.
	s.terminal = append(s.terminal, j)
	if s.cfg.RetainJobs > 0 {
		for len(s.terminal) > s.cfg.RetainJobs {
			old := s.terminal[0]
			s.terminal[0] = nil
			s.terminal = s.terminal[1:]
			delete(s.jobs, old.id)
		}
	}
}

// notifyLocked pokes every watcher, coalescing bursts.
func (j *job) notifyLocked() {
	for ch := range j.watchers {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// viewLocked snapshots the job. Caller holds the scheduler mutex.
func (j *job) viewLocked() JobView {
	v := JobView{
		ID:         j.id,
		Kind:       j.spec.Kind,
		State:      j.state,
		Priority:   j.spec.Priority,
		Progress:   j.progress,
		Submitted:  j.submitted,
		DeadlineMS: j.spec.DeadlineMS,
		TraceID:    j.trace.TraceID(),
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// jobHeap orders queued jobs by descending priority, then submission
// order. It implements container/heap.Interface.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].spec.Priority != h[b].spec.Priority {
		return h[a].spec.Priority > h[b].spec.Priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
