package service

import (
	"context"

	"espnuca/internal/arch"
	"espnuca/internal/experiment"
	"espnuca/internal/resultcache"
)

// fullSizeConfig is the paper's unscaled Table 2 machine.
func fullSizeConfig() arch.Config { return arch.DefaultConfig() }

// SimRunner executes jobs against the simulator through the result
// cache: every cell is memoized under its canonical key, concurrent
// identical requests share one in-flight simulation, and matrix jobs
// keep Matrix.Run's bounded parallelism and deterministic index-keyed
// assembly — a served result is bit-identical to a local run.
type SimRunner struct {
	// Cache memoizes runs; nil executes directly (still correct, never
	// reused).
	Cache *resultcache.Store
	// Parallelism bounds each matrix job's own worker pool when the
	// spec doesn't set one (0: all cores).
	Parallelism int
	// RunCell, when non-nil, replaces the per-cell execution path (the
	// cluster dispatcher substitutes coordinator-side dispatch here).
	// It must be result-equivalent to Cache.RunCtx; the spec lowering,
	// progress accounting and deterministic matrix assembly around it
	// are shared either way.
	RunCell func(ctx context.Context, rc experiment.RunConfig) (experiment.RunResult, error)
}

// Run implements Runner. Cancellation is honored between simulation
// cells: one cell is the atom of work.
func (r *SimRunner) Run(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error) {
	runCell := func(rc experiment.RunConfig) (experiment.RunResult, error) {
		if err := ctx.Err(); err != nil {
			return experiment.RunResult{}, err
		}
		if r.RunCell != nil {
			return r.RunCell(ctx, rc)
		}
		// ctx carries the job's trace (when tracing is on), so the cache
		// records per-cell cache-lookup/run/cache-store spans. Nil-safe:
		// a nil store is a direct experiment.Run.
		return r.Cache.RunCtx(ctx, rc)
	}
	switch spec.Kind {
	case KindRun:
		rc, err := spec.Run.Config()
		if err != nil {
			return nil, err
		}
		progress(0, 1)
		res, err := runCell(rc)
		if err != nil {
			return nil, err
		}
		progress(1, 1)
		return res, nil
	case KindMatrix:
		m, err := spec.Matrix.Matrix()
		if err != nil {
			return nil, err
		}
		if m.Parallelism == 0 {
			m.Parallelism = r.Parallelism
		}
		m.RunFunc = runCell
		res, err := m.Run(progress)
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	return nil, errUnknownKind(spec.Kind)
}

type errUnknownKind Kind

func (e errUnknownKind) Error() string { return "service: unknown job kind " + string(e) }
