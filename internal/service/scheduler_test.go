package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"espnuca/internal/experiment"
)

// blockingRunner lets tests hold jobs in the running state and observe
// execution order.
type blockingRunner struct {
	mu      sync.Mutex
	order   []string
	release chan struct{} // closed (or fed) to let runs finish
	block   bool
}

func label(spec JobSpec) string {
	if spec.Run != nil {
		return spec.Run.Workload
	}
	return "matrix"
}

func (r *blockingRunner) Run(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error) {
	r.mu.Lock()
	r.order = append(r.order, label(spec))
	r.mu.Unlock()
	progress(0, 1)
	if r.block {
		select {
		case <-r.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	progress(1, 1)
	return map[string]string{"ran": label(spec)}, nil
}

func runSpec(wl string) JobSpec {
	return JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: wl}}
}

func waitTerminal(t *testing.T, s *Scheduler, id string) JobView {
	t.Helper()
	var last JobView
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Watch(ctx, id, func(v JobView) error {
		last = v
		return nil
	})
	if err != nil {
		t.Fatalf("watch %s: %v", id, err)
	}
	return last
}

func TestSubmitRunSucceeds(t *testing.T) {
	s, err := New(Config{Workers: 1, Runner: &blockingRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	id, err := s.Submit(runSpec("apache"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, s, id)
	if v.State != StateSucceeded {
		t.Fatalf("state = %s (%s), want succeeded", v.State, v.Error)
	}
	if v.Progress.Done != 1 || v.Progress.Total != 1 {
		t.Errorf("progress = %+v, want 1/1", v.Progress)
	}
	if _, err := s.Result(id); err != nil {
		t.Errorf("result: %v", err)
	}
}

func TestSubmitValidatesEagerly(t *testing.T) {
	s, err := New(Config{Workers: 1, Runner: &blockingRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	bad := []JobSpec{
		{},                                  // no payload
		{Run: &RunSpec{Arch: "esp-nuca"}},   // missing workload
		{Run: &RunSpec{Workload: "apache"}}, // missing arch
		{Run: &RunSpec{Arch: "x", Workload: "nosuch"}},                                                 // bad workload
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", CCProbability: 1.5}},                      // cc_probability > 1
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", CCProbability: -0.2}},                     // cc_probability <= 0
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", SampleWindows: -3}},                       // negative sample_windows
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", EngineShards: -2}},                        // negative engine_shards
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", SampleWindows: 4, EngineShards: 2}},       // both execution modes
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", EngineShards: 2, BarrierParallelism: -4}}, // negative barrier_parallelism
		{Kind: KindMatrix, Matrix: &MatrixSpec{Workloads: []string{"apache"}, VariantSet: "counterparts",
			EngineShards: 2, BarrierParallelism: -1}}, // negative matrix barrier_parallelism
		{Kind: KindMatrix, Matrix: &MatrixSpec{}},                                                                 // empty matrix
		{Kind: KindMatrix, Matrix: &MatrixSpec{Workloads: []string{"apache"}}},                                    // no variants
		{Kind: KindMatrix, Matrix: &MatrixSpec{Workloads: []string{"apache"}, VariantSet: "nope"}},                // bad set
		{Kind: "weird", Run: &RunSpec{Arch: "esp-nuca", Workload: "apache"}},                                      // bad kind
		{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache"}, Matrix: &MatrixSpec{Workloads: []string{"apache"}}}, // both payloads, kind ambiguous
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %d accepted, want rejection", i)
		}
	}
}

func TestSpecLowersSampleWindows(t *testing.T) {
	rc, err := RunSpec{Arch: "esp-nuca", Workload: "apache", SampleWindows: 4}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if rc.SampleWindows != 4 {
		t.Fatalf("rc.SampleWindows = %d, want 4", rc.SampleWindows)
	}
	m, err := MatrixSpec{Workloads: []string{"apache"}, VariantSet: "counterparts", SampleWindows: 2}.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.SampleWindows != 2 {
		t.Fatalf("m.SampleWindows = %d, want 2", m.SampleWindows)
	}
}

// shardResultRunner returns a fixed sharded RunResult so counter
// accounting can be asserted without simulating.
type shardResultRunner struct{ windows, requests uint64 }

func (r *shardResultRunner) Run(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error) {
	return experiment.RunResult{Shard: &experiment.ShardStats{
		Shards: 2, Windows: r.windows, Requests: r.requests,
	}}, nil
}

// TestShardCountersTrackServedWork: completed sharded jobs must bump the
// service.shard_* counters /metricsz exposes.
func TestShardCountersTrackServedWork(t *testing.T) {
	s, err := New(Config{Workers: 1, Runner: &shardResultRunner{windows: 100, requests: 4000}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	for i := 0; i < 2; i++ {
		id, err := s.Submit(JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache", EngineShards: 2}})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, id)
	}
	counters, _, _ := s.Obs().Snapshot()
	if got := counters["service.shard_windows"]; got != 200 {
		t.Errorf("service.shard_windows = %d, want 200", got)
	}
	if got := counters["service.shard_requests"]; got != 8000 {
		t.Errorf("service.shard_requests = %d, want 8000", got)
	}
}

func TestSpecLowersEngineShards(t *testing.T) {
	rc, err := RunSpec{Arch: "esp-nuca", Workload: "apache", EngineShards: 4}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if rc.EngineShards != 4 {
		t.Fatalf("rc.EngineShards = %d, want 4", rc.EngineShards)
	}
	m, err := MatrixSpec{Workloads: []string{"apache"}, VariantSet: "counterparts", EngineShards: 2}.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m.EngineShards != 2 {
		t.Fatalf("m.EngineShards = %d, want 2", m.EngineShards)
	}
	if _, err := (MatrixSpec{Workloads: []string{"apache"}, VariantSet: "counterparts",
		EngineShards: 2, SampleWindows: 2}).Matrix(); err == nil {
		t.Fatal("matrix spec with both execution modes accepted")
	}
}

// TestFailedJobKeepsRunnerError pins the worker's post-run
// reclassification: releasing the job context must not relabel a
// genuine runner failure as "context canceled".
func TestFailedJobKeepsRunnerError(t *testing.T) {
	boom := errors.New("boom")
	r := RunnerFunc(func(ctx context.Context, spec JobSpec, progress func(done, total int)) (any, error) {
		return nil, boom
	})
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	id, err := s.Submit(runSpec("apache"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, s, id)
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed", v.State)
	}
	if v.Error != "boom" {
		t.Errorf("error = %q, want the runner's %q", v.Error, "boom")
	}
	if _, err := s.Result(id); !errors.Is(err, boom) {
		t.Errorf("Result error = %v, want wrapped boom", err)
	}
}

// TestRetainEvictsOldestTerminal pins the retention policy: only the
// newest RetainJobs terminal jobs stay queryable.
func TestRetainEvictsOldestTerminal(t *testing.T) {
	s, err := New(Config{Workers: 1, RetainJobs: 2, Runner: &blockingRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	var ids []string
	for _, wl := range []string{"apache", "jbb", "oltp", "zeus"} {
		id, err := s.Submit(runSpec(wl))
		if err != nil {
			t.Fatal(err)
		}
		// One job at a time so completion order matches submission order.
		waitTerminal(t, s, id)
		ids = append(ids, id)
	}
	for _, id := range ids[:2] {
		if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("job %s: err = %v, want ErrNotFound after eviction", id, err)
		}
	}
	for _, id := range ids[2:] {
		v, err := s.Get(id)
		if err != nil {
			t.Fatalf("job %s evicted despite retention 2: %v", id, err)
		}
		if v.State != StateSucceeded {
			t.Errorf("job %s state = %s, want succeeded", id, v.State)
		}
	}
	if got := len(s.List()); got != 2 {
		t.Errorf("List() length = %d, want 2", got)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	// First job occupies the single worker; the rest queue up.
	first, err := s.Submit(runSpec("apache"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is running so the others truly queue.
	for {
		v, _ := s.Get(first)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	lowID, _ := s.Submit(JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: "jbb"}, Priority: 1})
	highID, _ := s.Submit(JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: "oltp"}, Priority: 9})
	midID, _ := s.Submit(JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: "zeus"}, Priority: 5})
	close(r.release)
	for _, id := range []string{first, lowID, highID, midID} {
		waitTerminal(t, s, id)
	}
	r.mu.Lock()
	got := strings.Join(r.order, ",")
	r.mu.Unlock()
	if got != "apache,oltp,zeus,jbb" {
		t.Errorf("execution order %s, want apache,oltp,zeus,jbb", got)
	}
	s.Drain(context.Background())
}

func TestQueueFullRejects(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, QueueLimit: 2, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(r.release); s.Drain(context.Background()) }()
	// One running + two queued fills the queue; the worker may still be
	// picking up the first, so allow three successes before the must-fail.
	var okCount, fullCount int
	for i := 0; i < 4; i++ {
		_, err := s.Submit(runSpec("apache"))
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, ErrQueueFull):
			fullCount++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if fullCount == 0 {
		t.Errorf("no submission rejected with ErrQueueFull (ok=%d)", okCount)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	running, _ := s.Submit(runSpec("apache"))
	for {
		v, _ := s.Get(running)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	queued, _ := s.Submit(runSpec("jbb"))

	if err := s.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get(queued); v.State != StateCanceled {
		t.Errorf("queued job state = %s, want canceled", v.State)
	}
	if err := s.Cancel(running); err != nil {
		t.Fatal(err)
	}
	v := waitTerminal(t, s, running)
	if v.State != StateCanceled {
		t.Errorf("running job state = %s (%s), want canceled", v.State, v.Error)
	}
	if err := s.Cancel("j99999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: %v, want ErrNotFound", err)
	}
	close(r.release)
	s.Drain(context.Background())
}

func TestDeadlineExpiresQueuedJob(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	blocker, _ := s.Submit(runSpec("apache"))
	for {
		v, _ := s.Get(blocker)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Queued behind the blocker with a deadline that expires in queue.
	doomed, _ := s.Submit(JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: "jbb"}, DeadlineMS: 30})
	time.Sleep(60 * time.Millisecond)
	close(r.release)
	v := waitTerminal(t, s, doomed)
	if v.State != StateFailed || !strings.Contains(v.Error, "deadline") {
		t.Errorf("doomed job: state=%s err=%q, want deadline failure", v.State, v.Error)
	}
	s.Drain(context.Background())
}

func TestDeadlineCancelsRunningJob(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Submit(JobSpec{Run: &RunSpec{Arch: "esp-nuca", Workload: "apache"}, DeadlineMS: 40})
	v := waitTerminal(t, s, id)
	if v.State != StateFailed || !strings.Contains(v.Error, "deadline") {
		t.Errorf("state=%s err=%q, want deadline failure", v.State, v.Error)
	}
	close(r.release)
	s.Drain(context.Background())
}

func TestDrainFinishesInFlightCancelsQueued(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	inflight, _ := s.Submit(runSpec("apache"))
	for {
		v, _ := s.Get(inflight)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	queued, _ := s.Submit(runSpec("jbb"))

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain must reject new work immediately.
	for {
		_, err := s.Submit(runSpec("oltp"))
		if err != nil {
			if !errors.Is(err, ErrDraining) {
				t.Errorf("submit during drain: %v, want ErrDraining", err)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The queued job is canceled promptly, the in-flight one finishes.
	if v := waitTerminal(t, s, queued); v.State != StateCanceled {
		t.Errorf("queued job state = %s, want canceled", v.State)
	}
	close(r.release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v, _ := s.Get(inflight); v.State != StateSucceeded {
		t.Errorf("in-flight job state = %s, want succeeded (drain must not kill it)", v.State)
	}
}

func TestDrainTimeoutForceCancels(t *testing.T) {
	r := &blockingRunner{block: true, release: make(chan struct{})}
	s, err := New(Config{Workers: 1, Runner: r})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Submit(runSpec("apache"))
	for {
		v, _ := s.Get(id)
		if v.State == StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: %v, want deadline exceeded", err)
	}
	if v, _ := s.Get(id); !v.State.Terminal() {
		t.Errorf("stuck job not terminal after forced drain: %s", v.State)
	}
}

func TestObsCounters(t *testing.T) {
	s, err := New(Config{Workers: 1, Runner: &blockingRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Submit(runSpec("apache"))
	waitTerminal(t, s, id)
	counters, _, _ := s.Obs().Snapshot()
	if counters["service.jobs_submitted"] != 1 || counters["service.jobs_succeeded"] != 1 {
		t.Errorf("counters = %v", counters)
	}
	s.Drain(context.Background())
}
