module espnuca

go 1.22
