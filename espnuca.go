// Package espnuca is a simulator-backed reproduction of "ESP-NUCA: A
// Low-cost Adaptive Non-Uniform Cache Architecture" (Merino, Puente,
// Gregorio; HPCA 2010).
//
// It provides, behind one facade:
//
//   - a cycle-level CMP memory-system simulator (8 out-of-order cores,
//     split L1s, a 32-bank NUCA L2 on a 4x2 mesh with DOR routing, token
//     coherence, DRAM channels);
//   - thirteen L2 organizations: the paper's ESP-NUCA (protected LRU +
//     set sampling) and SP-NUCA, the evaluated counterparts (shared
//     S-NUCA, private/tiled, D-NUCA, ASR, Cooperative Caching, the
//     Figure 4 partitioning variants), and three extensions (per-priority
//     QoS, Victim Replication, Reactive-NUCA);
//   - synthetic models of the paper's 22 workloads (Table 1);
//   - an experiment harness that regenerates every figure of the
//     evaluation section.
//
// Quick start:
//
//	report, err := espnuca.Run(espnuca.Options{
//		Architecture: "esp-nuca",
//		Workload:     "apache",
//	})
//
// Figures:
//
//	table, err := espnuca.Figure(8, espnuca.FigureOptions{})
//	fmt.Print(table)
package espnuca

import (
	"fmt"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/experiment"
	"espnuca/internal/resultcache"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

// Options selects what to simulate.
type Options struct {
	// Architecture is one of Architectures() (default "esp-nuca").
	Architecture string
	// Workload is one of Workloads() (default "apache").
	Workload string
	// Seed perturbs the run for variability estimation (default 1).
	Seed uint64
	// Warmup and Instructions are per-core instruction counts for the
	// warmup and measured phases (defaults 80k / 40k).
	Warmup, Instructions uint64
	// FullSize simulates the paper's full Table 2 machine (8 MB L2,
	// 32 KB L1s) instead of the capacity-scaled default. Full-size runs
	// need proportionally longer warmup to exercise capacity effects.
	FullSize bool
	// CCProbability overrides the Cooperative Caching cooperation
	// probability (architecture "cc" only). Zero or out-of-range values
	// keep the default (0.7); for a true CC-0% configuration use the
	// experiment package's CCFamily variants.
	CCProbability float64
	// CheckTokens enables per-transaction token-conservation checking
	// (slower; for debugging and tests).
	CheckTokens bool
	// SampleWindows, when positive, runs in sampled mode: that many
	// detailed measurement windows, functionally fast-forwarded, instead
	// of one continuous simulation. The report's Sampled field carries
	// the estimates' 95% confidence bounds. Not supported by RunDetailed
	// (occupancy/energy inspection needs the single full-run system).
	SampleWindows int
	// EngineShards, when positive, runs the simulation on the sharded
	// parallel engine: the mesh is partitioned into that many contiguous
	// column-stripe shards, each executing on its own goroutine with all
	// shared-memory transactions serviced in deterministic order at
	// bounded-lag window barriers. The report's Shard field carries the
	// window accounting. Results are bit-identical at any host
	// parallelism but differ slightly from serial full runs (transaction
	// tie-breaking; see DESIGN.md section 7), so sharded runs live under
	// their own canonical key. Mutually exclusive with SampleWindows.
	EngineShards int
}

// Report is the outcome of one simulation run.
type Report = experiment.RunResult

// Table is a rendered experiment (rows x columns) matching one of the
// paper's figures or tables.
type Table = experiment.Table

// Architectures lists every buildable L2 organization.
func Architectures() []string { return arch.Names() }

// Workloads lists the 22-workload catalog of Table 1.
func Workloads() []string { return workload.Names() }

// Run executes one simulation and returns its metrics.
func Run(o Options) (Report, error) {
	rc, err := o.runConfig()
	if err != nil {
		return Report{}, err
	}
	return experiment.Run(rc)
}

func (o Options) runConfig() (experiment.RunConfig, error) {
	if o.Architecture == "" {
		o.Architecture = "esp-nuca"
	}
	if o.Workload == "" {
		o.Workload = "apache"
	}
	if _, ok := workload.ByName(o.Workload); !ok {
		return experiment.RunConfig{}, fmt.Errorf("espnuca: unknown workload %q (see Workloads())", o.Workload)
	}
	rc := experiment.DefaultRunConfig(o.Architecture, o.Workload)
	if o.Seed != 0 {
		rc.Seed = o.Seed
	}
	if o.Warmup != 0 {
		rc.Warmup = o.Warmup
	}
	if o.Instructions != 0 {
		rc.Instructions = o.Instructions
	}
	if o.FullSize {
		rc.System = arch.DefaultConfig()
	}
	if o.CCProbability > 0 && o.CCProbability <= 1 {
		rc.System.CCProbability = o.CCProbability
	}
	rc.System.CheckTokens = o.CheckTokens
	rc.Core = cpu.DefaultConfig()
	rc.SampleWindows = o.SampleWindows
	rc.EngineShards = o.EngineShards
	return rc, nil
}

// FigureOptions tune figure regeneration.
type FigureOptions struct {
	// Seeds are the perturbation seeds per data point (default 1,2,3).
	Seeds []uint64
	// Instructions is the measured per-core quantum (default 40k).
	Instructions uint64
	// Quick reduces cost to one seed and a short quantum.
	Quick bool
	// Parallelism bounds the worker pool the figure's independent
	// simulations fan out over: 0 uses every core, 1 forces serial
	// execution. Every run is a pure function of (configuration, seed),
	// so the regenerated tables are bit-for-bit identical at any
	// setting.
	Parallelism int
	// Progress, when non-nil, receives completion updates. Calls are
	// serialized and done only moves forward, even under parallelism.
	Progress func(done, total int)
	// MetricsDir, when set, captures per-run telemetry: every simulation
	// writes <variant>_<workload>_s<seed>.metrics.jsonl (interval
	// snapshots of per-bank hit rates, helping blocks, ESP-NUCA nmax/EMA
	// series, NoC and DRAM utilization) into this directory. Simulation
	// results are unaffected.
	MetricsDir string
	// TraceEvents additionally records a Perfetto-loadable Chrome
	// trace_event JSON per run (requires MetricsDir).
	TraceEvents bool
	// MetricsInterval is the sampling interval in cycles (0 uses the
	// harness default).
	MetricsInterval uint64
	// SampleWindows, when positive, regenerates the figure from sampled
	// runs with that many measurement windows each (see
	// Options.SampleWindows): far cheaper, clearly labeled estimates.
	// Incompatible with MetricsDir.
	SampleWindows int
	// EngineShards, when positive, runs every underlying simulation on
	// the sharded parallel engine with that many mesh-region shards (see
	// Options.EngineShards). Full-detail results, cached under their own
	// canonical key. Mutually exclusive with SampleWindows.
	EngineShards int
	// BarrierParallelism bounds the workers each sharded simulation's
	// window barriers spread their conflict groups over. Results stay
	// bit-identical at any setting; only meaningful with EngineShards.
	BarrierParallelism int
	// CacheDir, when set, memoizes every simulation in a
	// content-addressed result cache rooted at this directory (see
	// internal/resultcache). Re-running a figure with a warm cache
	// replays stored results instead of simulating; because cache keys
	// cover the full RunConfig and code version, the output is
	// bit-for-bit identical either way. Instrumented runs (MetricsDir
	// set) bypass the cache.
	CacheDir string
}

func (fo FigureOptions) internal() experiment.Options {
	o := experiment.DefaultOptions()
	if fo.Quick {
		o = experiment.QuickOptions()
	}
	if len(fo.Seeds) > 0 {
		o.Seeds = fo.Seeds
	}
	if fo.Instructions > 0 {
		o.Instructions = fo.Instructions
	}
	o.Parallelism = fo.Parallelism
	o.SampleWindows = fo.SampleWindows
	o.EngineShards = fo.EngineShards
	o.BarrierParallelism = fo.BarrierParallelism
	o.Progress = fo.Progress
	if fo.MetricsDir != "" {
		o.Obs = &experiment.ObsSpec{
			Dir:      fo.MetricsDir,
			Interval: sim.Cycle(fo.MetricsInterval),
			Trace:    fo.TraceEvents,
		}
	}
	return o
}

// Figure regenerates one of the paper's evaluation figures (4-10) as a
// table of the same series the paper plots.
func Figure(id int, fo FigureOptions) (Table, error) {
	o := fo.internal()
	if fo.CacheDir != "" {
		store, err := resultcache.Open(fo.CacheDir, resultcache.Options{})
		if err != nil {
			return Table{}, err
		}
		defer store.Close()
		o.RunFunc = store.Runner()
	}
	switch id {
	case 4:
		return experiment.Figure4(o)
	case 5:
		return experiment.Figure5(o)
	case 6:
		return experiment.Figure6(o)
	case 7:
		return experiment.Figure7(o)
	case 8:
		return experiment.Figure8(o)
	case 9:
		return experiment.Figure9(o)
	case 10:
		return experiment.Figure10(o)
	}
	return Table{}, fmt.Errorf("espnuca: no figure %d (the evaluation figures are 4-10)", id)
}

// WorkloadTable returns Table 1 (the workload catalog).
func WorkloadTable() Table { return experiment.Table1() }

// DetailedReport bundles the run metrics with post-run inspections: the
// L2 occupancy/class-mix snapshot (the physical outcome of the adaptive
// mechanisms) and an analytic energy estimate.
type DetailedReport struct {
	Report
	Occupancy experiment.OccupancyReport
	Energy    experiment.EnergyReport
}

// RunDetailed executes one simulation and returns the detailed report.
func RunDetailed(o Options) (DetailedReport, error) {
	rc, err := o.runConfig()
	if err != nil {
		return DetailedReport{}, err
	}
	if rc.SampleWindows > 0 {
		return DetailedReport{}, fmt.Errorf("espnuca: RunDetailed needs a full run (occupancy and energy inspect one system); unset SampleWindows")
	}
	sys, err := arch.Build(rc.Arch, rc.System)
	if err != nil {
		return DetailedReport{}, err
	}
	rep, err := experiment.RunOn(rc, sys)
	if err != nil {
		return DetailedReport{}, err
	}
	energy, err := experiment.EstimateEnergy(sys, uint64(rep.Cycles))
	if err != nil {
		return DetailedReport{}, err
	}
	return DetailedReport{
		Report:    rep,
		Occupancy: experiment.Occupancy(sys),
		Energy:    energy,
	}, nil
}
