package espnuca

// Steady-state allocation guard for the memory-system hot path. The
// simulator's access loop is designed to be allocation-free once the
// bookkeeping structures (directory table, residency map, status map)
// have reached their working-set size: tag queries are value types, mesh
// routing claims links in place, the coherence directory stores states by
// value, and the miss heap reuses its backing array. This test drives
// every L2 organization to steady state and then asserts that an access
// allocates (almost) nothing, so a regression — a closure reintroduced on
// the lookup path, a per-message slice in the NoC — fails loudly instead
// of silently costing 20% of runtime in the garbage collector.

import (
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

// allocGuardArchs are the seven L2 organizations the guard covers (every
// distinct probe chain in the factory).
var allocGuardArchs = []string{
	"shared",
	"private",
	"sp-nuca",
	"esp-nuca",
	"d-nuca",
	"victim-replication",
	"r-nuca",
}

// maxAllocsPerAccess is the steady-state budget. It is deliberately not
// exactly zero: residency-map slices are freed when a line's last L2 copy
// dies and reallocated when it returns, which costs an occasional
// allocation amortized over many accesses. One alloc per access on
// average is still an order of magnitude below what a single escaping
// closure per tag lookup costs (the pre-refactor path averaged >5).
const maxAllocsPerAccess = 1.0

func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow under -short")
	}
	for _, name := range allocGuardArchs {
		t.Run(name, func(t *testing.T) {
			sys, err := arch.Build(name, arch.ScaledConfig())
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRNG(1)
			var tm sim.Cycle
			access := func() {
				res := sys.Access(tm, rng.Intn(8), mem.Line(rng.Intn(4096)), rng.Bool(0.3))
				tm = res.Done
			}
			// Reach steady state: touch the whole 4096-line working set
			// enough times that maps, slices and the directory table have
			// grown to their final sizes.
			for i := 0; i < 50_000; i++ {
				access()
			}
			const batch = 100
			avg := testing.AllocsPerRun(200, func() {
				for i := 0; i < batch; i++ {
					access()
				}
			}) / batch
			if avg > maxAllocsPerAccess {
				t.Errorf("%s: %.2f allocs per access in steady state, budget %.2f",
					name, avg, maxAllocsPerAccess)
			}
			t.Logf("%s: %.3f allocs per access", name, avg)
		})
	}
}
