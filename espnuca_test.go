package espnuca

import (
	"strings"
	"testing"
)

func TestDefaults(t *testing.T) {
	rep, err := Run(Options{Warmup: 20_000, Instructions: 8_000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arch != "esp-nuca" || rep.Workload != "apache" {
		t.Fatalf("defaults = %s/%s", rep.Arch, rep.Workload)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %g", rep.Throughput)
	}
}

func TestAllArchitecturesRun(t *testing.T) {
	for _, a := range Architectures() {
		rep, err := Run(Options{
			Architecture: a, Workload: "gzip-4",
			Warmup: 15_000, Instructions: 5_000, CheckTokens: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if rep.MeanIPC <= 0 {
			t.Fatalf("%s: IPC %g", a, rep.MeanIPC)
		}
	}
}

func TestWorkloadCatalogExposed(t *testing.T) {
	ws := Workloads()
	if len(ws) != 22 {
		t.Fatalf("%d workloads, want 22", len(ws))
	}
	if len(Architectures()) != 13 {
		t.Fatalf("%d architectures, want 13", len(Architectures()))
	}
}

func TestUnknownInputsRejected(t *testing.T) {
	if _, err := Run(Options{Workload: "quake3"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(Options{Architecture: "l4-nuca", Warmup: 1000, Instructions: 1000}); err == nil {
		t.Error("unknown architecture accepted")
	}
	if _, err := Figure(3, FigureOptions{}); err == nil {
		t.Error("figure 3 (non-evaluation figure) accepted")
	}
}

func TestWorkloadTable(t *testing.T) {
	tab := WorkloadTable()
	if len(tab.Rows) != 22 {
		t.Fatalf("Table 1 rows = %d", len(tab.Rows))
	}
	s := tab.String()
	for _, name := range []string{"apache", "mcf-4", "BT"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 render missing %q", name)
		}
	}
}

func TestFigureQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration")
	}
	tab, err := Figure(5, FigureOptions{Quick: true, Instructions: 6_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("Figure 5 rows = %d, want 12", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 2 {
			t.Fatalf("row %s has %d values", r.Label, len(r.Values))
		}
		for _, v := range r.Values {
			if v <= 0 {
				t.Fatalf("row %s has non-positive normalized value %g", r.Label, v)
			}
		}
	}
}

func TestRunDetailed(t *testing.T) {
	rep, err := RunDetailed(Options{
		Architecture: "esp-nuca", Workload: "oltp",
		Warmup: 15_000, Instructions: 6_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Occupancy.Valid() == 0 {
		t.Fatal("empty occupancy snapshot")
	}
	if rep.Energy.TotalMJ() <= 0 {
		t.Fatal("no energy estimated")
	}
	if rep.Throughput <= 0 {
		t.Fatal("missing base metrics")
	}
}
