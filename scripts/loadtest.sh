#!/usr/bin/env bash
# loadtest.sh — fire thousands of concurrent espctl submissions at a
# 2-worker espserved fleet and check that the service holds up:
#
#   - every submission is accepted and reaches a terminal state
#   - zero jobs are dropped (submitted == succeeded), duplicated
#     (every returned job ID is unique), failed, canceled or rejected
#   - submit latency percentiles (p50/p95/p99) are reported from the
#     daemon's own Prometheus histogram, not client-side timing
#
# Usage:
#   scripts/loadtest.sh [jobs] [concurrency]
#
# Defaults: 2000 jobs, 64 concurrent submitters. Jobs reuse 16 distinct
# seeds, so the fleet's content-addressed cache turns most of the load
# into lookups — this stresses the service plane (queue, scheduler,
# HTTP, cluster dispatch), not the simulator.
set -euo pipefail

JOBS=${1:-2000}
CONC=${2:-64}
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN=$WORK/bin
mkdir -p "$BIN"
go build -o "$BIN/espserved" ./cmd/espserved
go build -o "$BIN/espctl" ./cmd/espctl

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() { # name, extra flags...
    local name=$1; shift
    "$BIN/espserved" -addr 127.0.0.1:0 "$@" >"$WORK/$name.out" 2>"$WORK/$name.err" &
    PIDS+=($!)
    for _ in $(seq 1 50); do
        grep -q '^espserved listening on ' "$WORK/$name.out" && break
        sleep 0.2
    done
    sed -n 's/^espserved listening on //p' "$WORK/$name.out"
}

COORD=$(start_daemon coord -queue 4096 -retain -1 -heartbeat-interval 500ms)
WA=$(start_daemon wa -coordinator "http://$COORD" -node-id wa)
WB=$(start_daemon wb -coordinator "http://$COORD" -node-id wb)
echo "coordinator http://$COORD  workers http://$WA http://$WB"

for _ in $(seq 1 50); do
    PEERS=$(curl -fsS "http://$COORD/readyz" | python3 -c 'import json,sys; print(json.load(sys.stdin)["cluster"]["peers"])')
    [ "$PEERS" = 2 ] && break
    sleep 0.2
done
[ "$PEERS" = 2 ] || { echo "workers failed to register" >&2; exit 1; }

echo "submitting $JOBS jobs ($CONC concurrent, 16 distinct cells)..."
START=$(date +%s)
seq 1 "$JOBS" | xargs -P "$CONC" -I{} sh -c \
    '"$0" -addr "http://$1" submit -workload apache -seed $((1 + {} % 16)) -warmup 4000 -instructions 1500' \
    "$BIN/espctl" "$COORD" >"$WORK/ids.txt"
SUBMIT_SECS=$(( $(date +%s) - START ))

# Every submission returned a job ID, and no two returned the same one.
IDS=$(wc -l <"$WORK/ids.txt")
UNIQ=$(sort -u "$WORK/ids.txt" | wc -l)
[ "$IDS" -eq "$JOBS" ] || { echo "FAIL: $IDS/$JOBS submissions returned an ID" >&2; exit 1; }
[ "$UNIQ" -eq "$JOBS" ] || { echo "FAIL: duplicated job IDs ($UNIQ unique of $IDS)" >&2; exit 1; }

echo "all $JOBS accepted in ${SUBMIT_SECS}s; waiting for the queue to drain..."
for _ in $(seq 1 600); do
    DONE=$(curl -fsS "http://$COORD/metricsz" | python3 -c '
import json, sys
c = json.load(sys.stdin)["counters"]
print(c["service.jobs_succeeded"] + c["service.jobs_failed"] + c["service.jobs_canceled"])')
    [ "$DONE" -ge "$JOBS" ] && break
    sleep 0.5
done

curl -fsS "http://$COORD/metricsz" >"$WORK/metrics.json"
curl -fsS "http://$COORD/metricsz?format=prom" >"$WORK/metrics.prom"
python3 - "$WORK/metrics.json" "$WORK/metrics.prom" "$JOBS" <<'EOF'
import json, sys

m = json.load(open(sys.argv[1]))
jobs = int(sys.argv[3])
c = m["counters"]

assert c["service.jobs_submitted"] == jobs, f"submitted {c['service.jobs_submitted']} != {jobs}"
assert c["service.jobs_succeeded"] == jobs, f"succeeded {c['service.jobs_succeeded']} != {jobs} (dropped jobs)"
assert c["service.jobs_failed"] == 0, f"{c['service.jobs_failed']} jobs failed"
assert c["service.jobs_canceled"] == 0, f"{c['service.jobs_canceled']} jobs canceled"
assert c["service.jobs_rejected"] == 0, f"{c['service.jobs_rejected']} jobs rejected (queue overflow)"

# Submit-path latency percentiles straight from the Prometheus
# histogram buckets (cumulative counts per upper bound).
buckets = []
for line in open(sys.argv[2]):
    if line.startswith("service_http_latency_ms_post_v1_jobs_bucket{le="):
        le = line.split('le="', 1)[1].split('"', 1)[0]
        n = int(line.rsplit(" ", 1)[1])
        buckets.append((float("inf") if le == "+Inf" else float(le), n))
buckets.sort()
total = buckets[-1][1]
assert total == jobs, f"histogram count {total} != {jobs}"

def pct(p):
    target = p * total
    for le, cum in buckets:
        if cum >= target:
            return "<=%gms" % le if le != float("inf") else ">%gms" % buckets[-2][0]
    return "?"

print(f"submit latency over {total} requests: "
      f"p50 {pct(0.50)}  p95 {pct(0.95)}  p99 {pct(0.99)}")
print(f"cluster: {json.dumps({k: v for k, v in c.items() if k.startswith('service.cluster.')})}")
print("OK: zero dropped, duplicated, failed, canceled or rejected jobs")
EOF
