#!/usr/bin/env bash
# bench.sh — measure the simulator's hot-path benchmark, or gate CI on the
# committed allocation baseline.
#
#   scripts/bench.sh            run BenchmarkFullRun and print the numbers
#   scripts/bench.sh check      additionally fail if allocs/op exceeds the
#                               gate.max_allocs_op field of BENCH_5.json
#
# ns/op is reported but never gated: wall-clock varies with the runner's
# hardware, while allocs/op is deterministic for a fixed workload and is
# the signal a regression on the zero-allocation hot path shows up in
# first (a single reintroduced closure per tag lookup costs ~5 allocs per
# access, i.e. tens of thousands per run).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-measure}"
BENCHTIME="${BENCHTIME:-20x}"
BASELINE="BENCH_5.json"

OUT=$(go test -run '^$' -bench 'BenchmarkFullRun$' -benchtime "$BENCHTIME" -benchmem .)
echo "$OUT"

LINE=$(echo "$OUT" | grep -E '^BenchmarkFullRun\b' | head -1)
if [ -z "$LINE" ]; then
    echo "bench.sh: BenchmarkFullRun produced no result line" >&2
    exit 1
fi
NS=$(echo "$LINE" | awk '{for (i=1; i<=NF; i++) if ($i == "ns/op") print $(i-1)}')
ALLOCS=$(echo "$LINE" | awk '{for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')

echo
echo "bench.sh: ns/op=${NS} allocs/op=${ALLOCS}"

if [ "$MODE" = "check" ]; then
    MAX=$(grep -o '"max_allocs_op"[: ]*[0-9]*' "$BASELINE" | grep -o '[0-9]*$')
    if [ -z "$MAX" ]; then
        echo "bench.sh: no gate.max_allocs_op in $BASELINE" >&2
        exit 1
    fi
    if [ "$ALLOCS" -gt "$MAX" ]; then
        echo "bench.sh: FAIL — allocs/op ${ALLOCS} exceeds the committed baseline gate ${MAX}" >&2
        echo "bench.sh: (an allocation crept back onto the access hot path; profile with" >&2
        echo "bench.sh:  go test -run '^\$' -bench 'BenchmarkFullRun\$' -memprofile mem.out .)" >&2
        exit 1
    fi
    echo "bench.sh: OK — allocs/op ${ALLOCS} within gate ${MAX} (ns/op reported, not gated)"
fi
