#!/usr/bin/env bash
# bench.sh — measure the simulator's hot-path benchmark, or gate CI on the
# committed allocation baseline.
#
#   scripts/bench.sh            run BenchmarkFullRun and print the numbers
#   scripts/bench.sh check      additionally fail if allocs/op exceeds the
#                               gate.max_allocs_op field of BENCH_5.json
#   scripts/bench.sh sample     run the sampled-mode validation harness at
#                               the committed BENCH_6.json configuration
#                               (full vs K-window sampled runs of the
#                               largest catalog workload across the paper's
#                               seven architectures) and fail if any
#                               relative error or the full/sampled speedup
#                               violates the gate.* fields of BENCH_6.json
#   scripts/bench.sh shard      run the sharded-engine validation harness at
#                               the committed BENCH_7.json configuration
#                               (serial vs K-shard full runs of the largest
#                               catalog workload across the paper's seven
#                               architectures) and fail on any relative
#                               error, a retired-count mismatch, or a
#                               wall-clock violation: sharded must beat
#                               gate.min_speedup on multi-core hosts, and
#                               stay under gate.max_serial_overhead slowdown
#                               on single-core hosts (no parallelism there
#                               to recoup the windowing overhead).
#                               The same invocation also times a third run
#                               per architecture with parallel barrier
#                               servicing (BENCH_8.json's
#                               barrier_parallelism conflict-group workers)
#                               and gates it machine-aware too: the
#                               parallel barrier must be bit-identical to
#                               the serial barrier always, beat
#                               BENCH_8 gate.min_speedup over the
#                               serial-barrier sharded run on multi-core
#                               hosts, and stay under
#                               gate.max_serial_overhead on single-core
#                               hosts (grouping overhead, no parallelism
#                               to recoup it)
#
# ns/op is reported but never gated: wall-clock varies with the runner's
# hardware, while allocs/op is deterministic for a fixed workload and is
# the signal a regression on the zero-allocation hot path shows up in
# first (a single reintroduced closure per tag lookup costs ~5 allocs per
# access, i.e. tens of thousands per run). The sample-mode speedup gate is
# a ratio of two wall clocks on the same machine, so — unlike raw ns/op —
# it measures the work reduction and is stable across runners.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-measure}"
BENCHTIME="${BENCHTIME:-20x}"
BASELINE="BENCH_5.json"
SAMPLE_BASELINE="BENCH_6.json"
SHARD_BASELINE="BENCH_7.json"
BARRIER_BASELINE="BENCH_8.json"

if [ "$MODE" = "sample" ]; then
    WL=$(jq -r .workload "$SAMPLE_BASELINE")
    WARM=$(jq -r .warmup "$SAMPLE_BASELINE")
    INSTR=$(jq -r .instructions "$SAMPLE_BASELINE")
    K=$(jq -r .sample_windows "$SAMPLE_BASELINE")
    echo "bench.sh: sampled-mode validation — workload=$WL warmup=$WARM instructions=$INSTR windows=$K"
    ROWS=$(go run ./cmd/espsweep -sample-error "$WL" -sample-windows "$K" \
        -warmup "$WARM" -instructions "$INSTR")
    printf '%-10s %10s %10s %10s %10s %9s\n' ARCH 'THR-ERR%' 'AAT-ERR%' 'OFF-ERR%' 'CI95%' SPEEDUP
    echo "$ROWS" | jq -r '.[] | [.Arch, (.Throughput*100), (.AvgAccessTime*100),
        (.OffChipAccesses*100), (.RelCI95*100), (.FullSeconds/.SampledSeconds)] | @tsv' |
        while IFS=$'\t' read -r a t x o c s; do
            printf '%-10s %10.2f %10.2f %10.2f %10.2f %8.2fx\n' "$a" "$t" "$x" "$o" "$c" "$s"
        done

    MAX_THR=$(jq -r .gate.max_rel_err_throughput "$SAMPLE_BASELINE")
    MAX_AAT=$(jq -r .gate.max_rel_err_avg_access_time "$SAMPLE_BASELINE")
    MIN_SPD=$(jq -r .gate.min_speedup "$SAMPLE_BASELINE")
    BAD=$(echo "$ROWS" | jq --argjson t "$MAX_THR" --argjson a "$MAX_AAT" --argjson s "$MIN_SPD" \
        '[.[] | select(.Throughput > $t or .AvgAccessTime > $a
                       or (.FullSeconds / .SampledSeconds) < $s) | .Arch]')
    if [ "$(echo "$BAD" | jq length)" -gt 0 ]; then
        echo "bench.sh: FAIL — $(echo "$BAD" | jq -rc .) violate the BENCH_6 gate" >&2
        echo "bench.sh: (gate: throughput err <= $MAX_THR, access-time err <= $MAX_AAT, speedup >= $MIN_SPD)" >&2
        exit 1
    fi
    echo "bench.sh: OK — all architectures within BENCH_6 gate (thr err <= $MAX_THR, aat err <= $MAX_AAT, speedup >= $MIN_SPD)"
    exit 0
fi

if [ "$MODE" = "shard" ]; then
    WL=$(jq -r .workload "$SHARD_BASELINE")
    WARM=$(jq -r .warmup "$SHARD_BASELINE")
    INSTR=$(jq -r .instructions "$SHARD_BASELINE")
    K=$(jq -r .engine_shards "$SHARD_BASELINE")
    BPAR=$(jq -r .barrier_parallelism "$BARRIER_BASELINE")
    NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
    echo "bench.sh: sharded-engine validation — workload=$WL warmup=$WARM instructions=$INSTR shards=$K barrier-parallel=$BPAR host-cores=$NCPU"
    ROWS=$(go run ./cmd/espsweep -shard-error "$WL" -shards "$K" -barrier-parallel "$BPAR" \
        -warmup "$WARM" -instructions "$INSTR")
    printf '%-10s %10s %10s %10s %8s %9s %9s %6s\n' ARCH 'THR-ERR%' 'AAT-ERR%' 'OFF-ERR%' RETIRED SPEEDUP 'BAR-SPD' IDENT
    echo "$ROWS" | jq -r '.[] | [.Arch, (.Throughput*100), (.AvgAccessTime*100),
        (.OffChipAccesses*100), (if .RetiredExact then "exact" else "DRIFT" end),
        (.FullSeconds/.ShardedSeconds), (.ShardedSeconds/.BarrierSeconds),
        (if .BarrierIdentical then "yes" else "NO" end)] | @tsv' |
        while IFS=$'\t' read -r a t x o r s b i; do
            printf '%-10s %10.2f %10.2f %10.2f %8s %8.2fx %8.2fx %6s\n' "$a" "$t" "$x" "$o" "$r" "$s" "$b" "$i"
        done

    MAX_THR=$(jq -r .gate.max_rel_err_throughput "$SHARD_BASELINE")
    MAX_AAT=$(jq -r .gate.max_rel_err_avg_access_time "$SHARD_BASELINE")
    if [ "$NCPU" -ge 2 ]; then
        MIN_SPD=$(jq -r .gate.min_speedup "$SHARD_BASELINE")
        CLOCK_DESC="speedup >= $MIN_SPD"
    else
        # Single-core host: the sharded run cannot be faster than serial;
        # gate the overhead instead (speedup >= 1/max_serial_overhead).
        MIN_SPD=$(jq -r '1 / .gate.max_serial_overhead' "$SHARD_BASELINE")
        CLOCK_DESC="serial overhead <= $(jq -r .gate.max_serial_overhead "$SHARD_BASELINE")x (1-core host)"
    fi
    BAD=$(echo "$ROWS" | jq --argjson t "$MAX_THR" --argjson a "$MAX_AAT" --argjson s "$MIN_SPD" \
        '[.[] | select(.Throughput > $t or .AvgAccessTime > $a
                       or (.RetiredExact | not)
                       or (.FullSeconds / .ShardedSeconds) < $s) | .Arch]')
    if [ "$(echo "$BAD" | jq length)" -gt 0 ]; then
        echo "bench.sh: FAIL — $(echo "$BAD" | jq -rc .) violate the BENCH_7 gate" >&2
        echo "bench.sh: (gate: throughput err <= $MAX_THR, access-time err <= $MAX_AAT, retired exact, $CLOCK_DESC)" >&2
        exit 1
    fi
    echo "bench.sh: OK — all architectures within BENCH_7 gate (thr err <= $MAX_THR, aat err <= $MAX_AAT, retired exact, $CLOCK_DESC)"

    # BENCH_8: the parallel barrier must be bit-identical to the serial
    # barrier everywhere, and its wall clock gated machine-aware against
    # the serial-barrier sharded run.
    if [ "$NCPU" -ge 2 ]; then
        MIN_BSPD=$(jq -r .gate.min_speedup "$BARRIER_BASELINE")
        BCLOCK_DESC="barrier speedup >= $MIN_BSPD"
    else
        MIN_BSPD=$(jq -r '1 / .gate.max_serial_overhead' "$BARRIER_BASELINE")
        BCLOCK_DESC="barrier overhead <= $(jq -r .gate.max_serial_overhead "$BARRIER_BASELINE")x (1-core host)"
    fi
    BAD=$(echo "$ROWS" | jq --argjson s "$MIN_BSPD" \
        '[.[] | select((.BarrierIdentical | not)
                       or (.ShardedSeconds / .BarrierSeconds) < $s) | .Arch]')
    if [ "$(echo "$BAD" | jq length)" -gt 0 ]; then
        echo "bench.sh: FAIL — $(echo "$BAD" | jq -rc .) violate the BENCH_8 gate" >&2
        echo "bench.sh: (gate: parallel barrier bit-identical, $BCLOCK_DESC)" >&2
        exit 1
    fi
    echo "bench.sh: OK — all architectures within BENCH_8 gate (bit-identical, $BCLOCK_DESC)"
    exit 0
fi

OUT=$(go test -run '^$' -bench 'BenchmarkFullRun$' -benchtime "$BENCHTIME" -benchmem .)
echo "$OUT"

LINE=$(echo "$OUT" | grep -E '^BenchmarkFullRun\b' | head -1)
if [ -z "$LINE" ]; then
    echo "bench.sh: BenchmarkFullRun produced no result line" >&2
    exit 1
fi
NS=$(echo "$LINE" | awk '{for (i=1; i<=NF; i++) if ($i == "ns/op") print $(i-1)}')
ALLOCS=$(echo "$LINE" | awk '{for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')

echo
echo "bench.sh: ns/op=${NS} allocs/op=${ALLOCS}"

if [ "$MODE" = "check" ]; then
    MAX=$(grep -o '"max_allocs_op"[: ]*[0-9]*' "$BASELINE" | grep -o '[0-9]*$')
    if [ -z "$MAX" ]; then
        echo "bench.sh: no gate.max_allocs_op in $BASELINE" >&2
        exit 1
    fi
    if [ "$ALLOCS" -gt "$MAX" ]; then
        echo "bench.sh: FAIL — allocs/op ${ALLOCS} exceeds the committed baseline gate ${MAX}" >&2
        echo "bench.sh: (an allocation crept back onto the access hot path; profile with" >&2
        echo "bench.sh:  go test -run '^\$' -bench 'BenchmarkFullRun\$' -memprofile mem.out .)" >&2
        exit 1
    fi
    echo "bench.sh: OK — allocs/op ${ALLOCS} within gate ${MAX} (ns/op reported, not gated)"
fi
