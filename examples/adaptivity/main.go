// Adaptivity: paper Figure 3's mechanism in isolation. Drives one
// ESP-NUCA bank (protected LRU + set sampling) through two program
// phases — a small working set where helping blocks are harmless, then a
// high-utility phase where they hurt — and prints how the bank's nmax
// budget and the three EMA hit-rate estimators (conventional, reference,
// explorer) respond.
package main

import (
	"fmt"

	"espnuca/internal/cache"
	"espnuca/internal/core"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
)

const (
	sets = 64
	ways = 16
)

func main() {
	bank, err := cache.NewBank(cache.Config{Sets: sets, Ways: ways})
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultSamplerConfig()
	core.AssignRoles(bank, cfg)
	sampler := core.NewSampler(cfg, ways)
	policy := core.ProtectedLRU{S: sampler}
	rng := sim.NewRNG(42)

	// access performs one first-class lookup (filling on miss) and feeds
	// the sampler; helping pressure is injected separately.
	access := func(line mem.Line) {
		set := int(uint64(line) % sets)
		blk := bank.Lookup(set, cache.ClassQuery(line, cache.Private, cache.Shared))
		if s := bank.Set(set); s.Sampled {
			sampler.Observe(s.Role, blk != nil)
		}
		if blk == nil {
			bank.Insert(set, cache.Block{Valid: true, Line: line, Class: cache.Private, Owner: 0}, policy)
		}
	}
	helping := func(line mem.Line) {
		set := int(uint64(line) % sets)
		if bank.Peek(set, cache.ClassQuery(line, cache.Replica)) != nil {
			return
		}
		bank.Insert(set, cache.Block{Valid: true, Line: line, Class: cache.Replica, Owner: 1}, policy)
	}

	report := func(phase string, step int) {
		hrc, hrr, hre := sampler.Rates()
		fmt.Printf("%-24s step %5d  nmax=%2d  HRC=%.2f HRR=%.2f HRE=%.2f (raises %d, lowers %d)\n",
			phase, step, sampler.NMax(), hrc, hrr, hre, sampler.Raises, sampler.Lowers)
	}

	// Phase 1: small working set (fits in 4 of 16 ways). Helping blocks
	// cost nothing, so the explorer sets stay healthy and nmax climbs.
	fmt.Println("phase 1: small working set + helping-block pressure")
	for step := 0; step < 30000; step++ {
		access(mem.Line(rng.Intn(4 * sets))) // ~4 ways per set
		if step%2 == 0 {
			helping(mem.Line(100000 + rng.Intn(8*sets)))
		}
		if step%6000 == 5999 {
			report("  small working set", step+1)
		}
	}

	// Phase 2: high utility — the first-class working set needs every
	// way, so conventional sets degrade against the reference sets and
	// nmax falls back toward zero.
	fmt.Println("phase 2: high-utility working set (needs all ways)")
	for step := 0; step < 60000; step++ {
		access(mem.Line(rng.Intn(15 * sets))) // ~15 ways per set
		if step%2 == 0 {
			helping(mem.Line(200000 + rng.Intn(8*sets)))
		}
		if step%12000 == 11999 {
			report("  high utility", step+1)
		}
	}

	fmt.Println("\nThe budget rises while helping blocks are free and collapses when")
	fmt.Println("first-class hit rate is at stake - paper Figure 3's two regimes.")
}
