// Quickstart: simulate ESP-NUCA and the shared baseline on one workload
// and compare them — the smallest useful use of the library.
package main

import (
	"fmt"
	"log"

	"espnuca"
)

func main() {
	workload := "apache"

	shared, err := espnuca.Run(espnuca.Options{
		Architecture: "shared",
		Workload:     workload,
	})
	if err != nil {
		log.Fatal(err)
	}

	esp, err := espnuca.Run(espnuca.Options{
		Architecture: "esp-nuca",
		Workload:     workload,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n\n", workload)
	fmt.Printf("%-10s %12s %14s %12s\n", "arch", "throughput", "avg access", "off-chip")
	for _, r := range []espnuca.Report{shared, esp} {
		fmt.Printf("%-10s %12.4f %11.2f cy %12d\n",
			r.Arch, r.Throughput, r.AvgAccessTime, r.OffChipAccesses)
	}
	fmt.Printf("\nESP-NUCA speedup over shared S-NUCA: %.1f%%\n",
		(esp.Throughput/shared.Throughput-1)*100)
}
