// Tracedriven: records a workload's instruction streams into the binary
// trace format, then replays the trace against two architectures — the
// workflow for comparing organizations on externally captured traces
// (the trace package also imports Dinero-style ASCII traces).
package main

import (
	"bytes"
	"fmt"
	"log"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/sim"
	"espnuca/internal/trace"
	"espnuca/internal/workload"
)

const instructions = 60_000

func main() {
	// 1. Record: capture the oltp streams once.
	spec, ok := workload.ByName("oltp")
	if !ok {
		log.Fatal("oltp missing from catalog")
	}
	cfg := arch.ScaledConfig()
	bound := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), 1)

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, 8)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Record(w, bound, instructions); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d instructions x 8 cores (%d bytes)\n\n",
		instructions, buf.Len())

	// 2. Replay the identical reference stream on two architectures.
	recorded := buf.Bytes()
	for _, name := range []string{"shared", "esp-nuca"} {
		rep, err := trace.NewReplayer(bytes.NewReader(recorded))
		if err != nil {
			log.Fatal(err)
		}
		sys, err := arch.Build(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		eng := sim.NewEngine()
		cores := make([]*cpu.Core, 8)
		for c := 0; c < 8; c++ {
			cores[c] = cpu.New(c, cpu.DefaultConfig(), eng, sys, rep.Source(c), instructions)
			cores[c].Start()
		}
		eng.RunUntil(0, func() bool {
			for _, c := range cores {
				if !c.Done {
					return false
				}
			}
			return true
		})
		var maxT sim.Cycle
		for _, c := range cores {
			if c.Time() > maxT {
				maxT = c.Time()
			}
		}
		sub := sys.Sub()
		fmt.Printf("%-9s  %8d cycles  %.3f instr/cycle  %6d off-chip\n",
			name, maxT, float64(8*instructions)/float64(maxT), sub.DRAM.Accesses())
	}
	fmt.Println("\nBoth runs consumed bit-identical reference streams: any")
	fmt.Println("difference is purely the L2 organization.")
}
