// Multiprogrammed: the paper's §6.3 scenario. Half-rate workloads show
// the capacity-balancing story (shared beats private on low-utility apps
// like art and mcf because idle cores' capacity is usable); hybrid
// workloads show the isolation story (shared suffers inter-thread
// interference). ESP-NUCA should track the best of both.
package main

import (
	"fmt"
	"log"

	"espnuca"
)

func main() {
	groups := []struct {
		title     string
		workloads []string
	}{
		{"half rate (4 active cores)", []string{"art-4", "gcc-4", "gzip-4", "mcf-4", "twolf-4"}},
		{"hybrid (4+4 cores)", []string{"art-gzip", "gcc-gzip", "gcc-twolf", "mcf-gzip", "mcf-twolf"}},
	}
	architectures := []string{"shared", "private", "cc", "esp-nuca"}

	for _, g := range groups {
		fmt.Println(g.title + " — shared-normalized mean IPC")
		fmt.Printf("%-10s", "")
		for _, a := range architectures {
			fmt.Printf("%10s", a)
		}
		fmt.Println()
		for _, wl := range g.workloads {
			base := 0.0
			fmt.Printf("%-10s", wl)
			for _, a := range architectures {
				rep, err := espnuca.Run(espnuca.Options{Architecture: a, Workload: wl})
				if err != nil {
					log.Fatal(err)
				}
				if a == "shared" {
					base = rep.MeanIPC
				}
				fmt.Printf("%10.3f", rep.MeanIPC/base)
			}
			fmt.Println()
		}
		fmt.Println()
	}
}
