// Transactional: the paper's §6.2 scenario. Runs the four Wisconsin
// commercial workloads (apache, jbb, oltp, zeus) across the main
// architecture comparison set and prints shared-normalized performance
// plus the average access-time decomposition — the data behind Figures 6
// and 8.
package main

import (
	"fmt"
	"log"

	"espnuca"
	"espnuca/internal/arch"
)

func main() {
	workloads := []string{"apache", "jbb", "oltp", "zeus"}
	architectures := []string{"shared", "private", "d-nuca", "asr", "cc", "esp-nuca"}

	fmt.Println("shared-normalized performance (transactional workloads)")
	fmt.Printf("%-8s", "")
	for _, a := range architectures {
		fmt.Printf("%10s", a)
	}
	fmt.Println()

	type cell struct{ rep espnuca.Report }
	results := map[string]map[string]espnuca.Report{}

	for _, wl := range workloads {
		results[wl] = map[string]espnuca.Report{}
		base := 0.0
		fmt.Printf("%-8s", wl)
		for _, a := range architectures {
			rep, err := espnuca.Run(espnuca.Options{Architecture: a, Workload: wl})
			if err != nil {
				log.Fatal(err)
			}
			results[wl][a] = rep
			if a == "shared" {
				base = rep.Throughput
			}
			fmt.Printf("%10.3f", rep.Throughput/base)
		}
		fmt.Println()
	}

	fmt.Println("\naverage access time decomposition, apache (cycles/access)")
	fmt.Printf("%-10s", "")
	for l := arch.Level(0); l < arch.NumLevels; l++ {
		fmt.Printf("%10s", l)
	}
	fmt.Printf("%10s\n", "total")
	for _, a := range architectures {
		rep := results["apache"][a]
		fmt.Printf("%-10s", a)
		for l := arch.Level(0); l < arch.NumLevels; l++ {
			fmt.Printf("%10.2f", rep.Decomposition[l])
		}
		fmt.Printf("%10.2f\n", rep.AvgAccessTime)
	}
	_ = cell{}
}
