// QoS: the extension the paper sketches in §5.2 ("the dynamically
// defined d parameter provides the opportunity to add some Quality of
// Service Policy on top of ESP-NUCA"). Runs the mcf-gzip hybrid — a bulk
// memory hog next to a latency-sensitive app — three times: plain
// ESP-NUCA, then with the gzip cores in the Latency class (their banks
// protect their blocks aggressively), then inverted.
package main

import (
	"fmt"
	"log"

	"espnuca/internal/arch"
	"espnuca/internal/core"
	"espnuca/internal/cpu"
	"espnuca/internal/experiment"
)

func run(label string, qos *core.QoS) {
	rc := experiment.DefaultRunConfig("esp-nuca", "mcf-gzip")
	rc.Core = cpu.DefaultConfig()
	var sys arch.System
	var err error
	if qos == nil {
		sys, err = arch.Build("esp-nuca", rc.System)
	} else {
		rc.System.QoS = *qos
		rc.Arch = "esp-nuca-qos"
		sys, err = arch.Build("esp-nuca-qos", rc.System)
	}
	if err != nil {
		log.Fatal(err)
	}
	res, err := experiment.RunOn(rc, sys)
	if err != nil {
		log.Fatal(err)
	}
	mcf := (res.PerCoreIPC[0] + res.PerCoreIPC[1] + res.PerCoreIPC[2] + res.PerCoreIPC[3]) / 4
	gzip := (res.PerCoreIPC[4] + res.PerCoreIPC[5] + res.PerCoreIPC[6] + res.PerCoreIPC[7]) / 4
	fmt.Printf("%-28s mcf IPC %.4f  gzip IPC %.4f  off-chip %6d\n",
		label, mcf, gzip, res.OffChipAccesses)
}

func main() {
	fmt.Println("mcf (cores 0-3) + gzip (cores 4-7) under ESP-NUCA QoS policies")

	run("standard (d=3 everywhere)", nil)

	protectGzip := core.DefaultQoS()
	for c := 4; c < 8; c++ {
		protectGzip.ClassOf[c] = core.Latency // gzip banks protected
	}
	for c := 0; c < 4; c++ {
		protectGzip.ClassOf[c] = core.Bulk // mcf banks donate
	}
	run("protect gzip / bulk mcf", &protectGzip)

	inverted := core.DefaultQoS()
	for c := 0; c < 4; c++ {
		inverted.ClassOf[c] = core.Latency
	}
	for c := 4; c < 8; c++ {
		inverted.ClassOf[c] = core.Bulk
	}
	run("protect mcf / bulk gzip", &inverted)

	fmt.Println("\nThe d knob shifts helping-block admission between the classes")
	fmt.Println("without touching the data path - the paper's S5.2 QoS sketch.")
	fmt.Println("The aggregate effect is intentionally gentle: d only moves the")
	fmt.Println("admission threshold for helping blocks, so service classes shade")
	fmt.Println("capacity allocation rather than hard-partition it (see the")
	fmt.Println("bank-level test TestQoSBulkDonatesMoreThanLatency for the")
	fmt.Println("mechanism in isolation).")
}
