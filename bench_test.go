package espnuca

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (DESIGN.md §4 maps each to its experiment). The
// figure benchmarks run the corresponding experiment matrix once per
// iteration at reduced quality (one seed, short quantum) and report the
// headline number of that figure as a custom metric, so
//
//	go test -bench=Figure -benchtime=1x
//
// reproduces the whole evaluation and prints the measured shapes.
// Component benchmarks below them measure the simulator's own hot paths.

import (
	"fmt"
	"testing"

	"espnuca/internal/arch"
	"espnuca/internal/experiment"
	"espnuca/internal/mem"
	"espnuca/internal/sim"
	"espnuca/internal/workload"
)

func benchOpts() experiment.Options {
	return experiment.QuickOptions()
}

// reportRows makes a figure's table visible in the bench log.
func reportRows(b *testing.B, tab experiment.Table) {
	b.Logf("\n%s", tab)
}

// BenchmarkTable1 regenerates the workload catalog (Table 1).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := experiment.Table1()
		if len(tab.Rows) != 22 {
			b.Fatalf("catalog rows = %d", len(tab.Rows))
		}
	}
}

// BenchmarkTable2 builds the full Table 2 machine (construction cost and
// configuration sanity).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := arch.Build("esp-nuca", arch.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if got := sys.Sub().Cfg.L2Lines() * 64; got != 8<<20 {
			b.Fatalf("L2 = %d bytes", got)
		}
	}
}

// BenchmarkFigure4 regenerates SP-NUCA's partitioning comparison
// (flat LRU and static partition vs shadow tags).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: mean flat-LRU performance relative to shadow tags.
		sum := 0.0
		for _, r := range tab.Rows {
			sum += r.Values[0]
		}
		b.ReportMetric(sum/float64(len(tab.Rows)), "flatLRU/shadow")
		reportRows(b, tab)
	}
}

// BenchmarkFigure5 regenerates the ESP-NUCA replacement-policy
// comparison (flat vs protected LRU, normalized to SP-NUCA).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		flat, prot := 0.0, 0.0
		for _, r := range tab.Rows {
			flat += r.Values[0]
			prot += r.Values[1]
		}
		n := float64(len(tab.Rows))
		b.ReportMetric(prot/n, "protected/sp")
		b.ReportMetric(flat/n, "flat/sp")
		reportRows(b, tab)
	}
}

// BenchmarkFigure6 regenerates the access-time decomposition for the
// transactional workloads.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, tab)
	}
}

// BenchmarkFigure7 regenerates the normalized off-chip access and
// on-chip latency comparison.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, tab)
	}
}

func perfFigureBench(b *testing.B, f func(experiment.Options) (experiment.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := f(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last := tab.Rows[len(tab.Rows)-1] // the geomean row
		b.ReportMetric(last.Values[len(last.Values)-1], "esp/shared-gmean")
		reportRows(b, tab)
	}
}

// BenchmarkFigure8 regenerates shared-normalized performance for the
// transactional workloads.
func BenchmarkFigure8(b *testing.B) { perfFigureBench(b, experiment.Figure8) }

// BenchmarkFigure9 regenerates shared-normalized performance for the
// multiprogrammed workloads.
func BenchmarkFigure9(b *testing.B) { perfFigureBench(b, experiment.Figure9) }

// BenchmarkFigure10 regenerates shared-normalized performance for the
// NAS suite.
func BenchmarkFigure10(b *testing.B) { perfFigureBench(b, experiment.Figure10) }

// --- Ablations (design-choice benches called out in DESIGN.md) ---

func ablationRun(b *testing.B, archName, wl string, tweak func(arch.System)) float64 {
	b.Helper()
	rc := experiment.DefaultRunConfig(archName, wl)
	rc.Warmup, rc.Instructions = 25_000, 10_000
	sys, err := arch.Build(archName, rc.System)
	if err != nil {
		b.Fatal(err)
	}
	if tweak != nil {
		tweak(sys)
	}
	res, err := experiment.RunOn(rc, sys)
	if err != nil {
		b.Fatal(err)
	}
	spec, _ := workload.ByName(wl)
	return res.Performance(spec.Kind)
}

// BenchmarkAblationESPHelpers attributes ESP-NUCA's gain over SP-NUCA to
// its two helping-block mechanisms: replicas (latency) and victims
// (capacity balance).
func BenchmarkAblationESPHelpers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		baseline := ablationRun(b, "esp-nuca", "apache", nil)
		noReps := ablationRun(b, "esp-nuca", "apache", func(s arch.System) {
			s.(*arch.ESPNUCA).ReplicasOff = true
		})
		noVics := ablationRun(b, "esp-nuca", "mcf-4", nil)
		noVicsOff := ablationRun(b, "esp-nuca", "mcf-4", func(s arch.System) {
			s.(*arch.ESPNUCA).VictimsOff = true
		})
		b.ReportMetric(baseline/noReps, "apache-replica-gain")
		b.ReportMetric(noVics/noVicsOff, "mcf4-victim-gain")
	}
}

// BenchmarkAblationDNUCA attributes D-NUCA's behaviour to migration and
// replication.
func BenchmarkAblationDNUCA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := ablationRun(b, "d-nuca", "apache", nil)
		noMig := ablationRun(b, "d-nuca", "apache", func(s arch.System) {
			s.(*arch.DNUCA).MigrationOff = true
		})
		noRep := ablationRun(b, "d-nuca", "apache", func(s arch.System) {
			s.(*arch.DNUCA).ReplicationOff = true
		})
		b.ReportMetric(full/noMig, "migration-gain")
		b.ReportMetric(full/noRep, "replication-gain")
	}
}

// BenchmarkSensitivityD sweeps the protected-LRU degradation threshold
// (paper §5.2's d parameter).
func BenchmarkSensitivityD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range []uint{2, 3, 4} {
			rc := experiment.DefaultRunConfig("esp-nuca", "apache")
			rc.Warmup, rc.Instructions = 25_000, 10_000
			rc.System.Sampler.D = d
			res, err := experiment.Run(rc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Throughput, fmt.Sprintf("throughput-d%d", d))
		}
	}
}

// --- Simulator hot-path benchmarks ---

// BenchmarkESPNUCAAccess measures the cost of one ESP-NUCA transaction.
func BenchmarkESPNUCAAccess(b *testing.B) {
	benchAccess(b, "esp-nuca")
}

// BenchmarkSharedAccess measures the cost of one S-NUCA transaction.
func BenchmarkSharedAccess(b *testing.B) {
	benchAccess(b, "shared")
}

func benchAccess(b *testing.B, name string) {
	b.Helper()
	sys, err := arch.Build(name, arch.ScaledConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	var tm sim.Cycle
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sys.Access(tm, rng.Intn(8), mem.Line(rng.Intn(4096)), rng.Bool(0.3))
		tm = res.Done
	}
}

// BenchmarkFullRun measures a complete short simulation (the unit the
// figure benches repeat).
func BenchmarkFullRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rc := experiment.DefaultRunConfig("esp-nuca", "apache")
		rc.Warmup, rc.Instructions = 10_000, 5_000
		if _, err := experiment.Run(rc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamNext measures workload generation throughput.
func BenchmarkStreamNext(b *testing.B) {
	spec, _ := workload.ByName("oltp")
	cfg := arch.ScaledConfig()
	st := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), 1).Streams[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Next()
	}
}

// BenchmarkSweepHopLatency measures ESP-NUCA's gain over shared as mesh
// wire delay scales (the NUCA premise study).
func BenchmarkSweepHopLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := experiment.QuickOptions()
		tab, err := experiment.HopLatencySweep("oltp", []sim.Cycle{2, 8}, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Rows[0].Values[2], "gain-hop2")
		b.ReportMetric(tab.Rows[1].Values[2], "gain-hop8")
	}
}

// BenchmarkSweepCapacity measures the comparison across L2 capacities
// with the workload pinned.
func BenchmarkSweepCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := experiment.QuickOptions()
		tab, err := experiment.CapacitySweep("oltp", []int{16, 64}, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Rows[0].Values[2], "gain-small")
		b.ReportMetric(tab.Rows[1].Values[2], "gain-large")
	}
}
