// Command esptrace inspects the synthetic workload streams: it prints a
// prefix of a core's instruction trace and summarizes the stream's
// memory behaviour (access mix, footprint, sharing), which is how the
// workload models were calibrated against the paper's descriptions.
//
// Usage:
//
//	esptrace -workload oltp -core 0 -n 20           # print 20 instructions
//	esptrace -workload oltp -summary -n 100000      # stream statistics
//	esptrace -workload oltp -record t.espt -n 50000 # record all 8 cores
//	esptrace -replay t.espt -arch esp-nuca          # simulate from a trace
//	esptrace -workload oltp -dinero t.din -n 20000  # export core 0 as ASCII
package main

import (
	"flag"
	"fmt"
	"os"

	"espnuca/internal/arch"
	"espnuca/internal/cpu"
	"espnuca/internal/experiment"
	"espnuca/internal/mem"
	"espnuca/internal/obs"
	"espnuca/internal/sim"
	"espnuca/internal/trace"
	"espnuca/internal/workload"
)

func main() {
	var (
		wlName   = flag.String("workload", "apache", "workload name")
		coreID   = flag.Int("core", 0, "core whose stream to inspect")
		n        = flag.Int("n", 0, "instructions to generate/replay (0: mode default)")
		seed     = flag.Uint64("seed", 1, "stream seed")
		summary  = flag.Bool("summary", false, "print statistics instead of the trace")
		record   = flag.String("record", "", "record all cores' streams to this binary trace file")
		dinero   = flag.String("dinero", "", "export the selected core's stream as a Dinero ASCII trace")
		replay   = flag.String("replay", "", "simulate from a recorded binary trace")
		archName = flag.String("arch", "esp-nuca", "architecture for -replay")
		metrics  = flag.String("metrics", "", "-replay: write interval metrics (JSONL) to this file")
		traceOut = flag.String("trace", "", "-replay: write Chrome trace_event JSON to this file")
		interval = flag.Uint64("interval", 0, "-replay: telemetry sampling interval in cycles (0 = default)")
	)
	flag.Parse()

	if *replay != "" {
		replayTrace(*replay, *archName, uint64(*n), *metrics, *traceOut, sim.Cycle(*interval))
		return
	}
	if *n == 0 {
		*n = 20
	}

	spec, ok := workload.ByName(*wlName)
	if !ok {
		fmt.Fprintf(os.Stderr, "esptrace: unknown workload %q\n", *wlName)
		os.Exit(1)
	}
	if *coreID < 0 || *coreID > 7 {
		fmt.Fprintln(os.Stderr, "esptrace: core must be 0-7")
		os.Exit(1)
	}
	cfg := arch.ScaledConfig()
	bound := spec.Bind(cfg.L2Lines(), cfg.L1ILines(), *seed)
	st := bound.Streams[*coreID]

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esptrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w, err := trace.NewWriter(f, 8)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esptrace:", err)
			os.Exit(1)
		}
		if err := trace.Record(w, bound, *n); err != nil {
			fmt.Fprintln(os.Stderr, "esptrace:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d instructions x 8 cores of %s to %s\n", *n, spec.Name, *record)
		return
	}

	if *dinero != "" {
		seq := make([]workload.Instr, *n)
		for i := range seq {
			seq[i] = st.Next()
		}
		g, _ := mem.NewGeometry(cfg.BlockBytes)
		f, err := os.Create(*dinero)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esptrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteDinero(f, seq, g); err != nil {
			fmt.Fprintln(os.Stderr, "esptrace:", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d instructions of %s core %d to %s\n", *n, spec.Name, *coreID, *dinero)
		return
	}

	if !*summary {
		fmt.Printf("# %s core %d (%s), seed %d\n", spec.Name, *coreID, st.Profile().Name, *seed)
		for i := 0; i < *n; i++ {
			in := st.Next()
			line := fmt.Sprintf("%6d", i)
			if in.HasFetch {
				line += fmt.Sprintf("  fetch %#010x", uint64(in.Fetch))
			} else {
				line += "                    "
			}
			if in.IsMem {
				op := "load "
				if in.Write {
					op = "store"
				}
				line += fmt.Sprintf("  %s %#010x", op, uint64(in.Data))
			}
			fmt.Println(line)
		}
		return
	}

	// The summary counts through the shared obs-backed path (see
	// workload.SummarizeStream), the same instruments espmon attaches
	// sinks to, so the two tools cannot drift apart.
	sum := workload.SummarizeStream(st, *n, nil)
	fmt.Printf("workload        %s (%s), core %d, %d instructions\n", spec.Name, spec.Kind, *coreID, sum.Instructions)
	fmt.Printf("profile         %s\n", st.Profile().Name)
	fmt.Printf("memory ops      %d (%.1f%% of instructions)\n", sum.MemOps, 100*float64(sum.MemOps)/float64(sum.Instructions))
	fmt.Printf("stores          %d (%.1f%% of memory ops)\n", sum.Writes, pct(sum.Writes, sum.MemOps))
	fmt.Printf("fetch events    %d (%.1f%% of instructions)\n", sum.Fetches, 100*float64(sum.Fetches)/float64(sum.Instructions))
	fmt.Printf("data footprint  %d lines (%d KB)\n", sum.DataLines, sum.DataLines*64/1024)
	fmt.Printf("code footprint  %d lines (%d KB)\n", sum.CodeLines, sum.CodeLines*64/1024)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// replayTrace simulates a recorded trace on the given architecture. Each
// core retires n instructions (default: the trace length), replaying its
// recorded sequence and wrapping if the budget exceeds it. When metrics
// or traceOut are set the run is instrumented through the same
// experiment.Instrument path the harness uses, so the replayer emits the
// same per-bank/NoC/DRAM series as espmon and espsweep.
func replayTrace(path, archName string, n uint64, metrics, traceOut string, interval sim.Cycle) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esptrace:", err)
		os.Exit(1)
	}
	defer f.Close()
	rep, err := trace.NewReplayer(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esptrace:", err)
		os.Exit(1)
	}
	cfg := arch.ScaledConfig()
	sys, err := arch.Build(archName, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esptrace:", err)
		os.Exit(1)
	}
	eng := sim.NewEngine()

	var reg *obs.Registry
	if metrics != "" || traceOut != "" {
		reg = obs.NewRegistry()
		if metrics != "" {
			mf, err := os.Create(metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, "esptrace:", err)
				os.Exit(1)
			}
			defer mf.Close()
			reg.AttachJSONL(mf)
		}
		if traceOut != "" {
			reg.EnableTrace()
		}
		experiment.Instrument(eng, sys, reg, interval)
	}

	cores := make([]*cpu.Core, rep.Cores())
	for c := range cores {
		target := n
		if target == 0 {
			target = uint64(rep.Len(c))
		}
		cores[c] = cpu.New(c, cpu.DefaultConfig(), eng, sys, rep.Source(c), target)
		cores[c].Start()
	}
	eng.RunUntil(0, func() bool {
		for _, c := range cores {
			if !c.Done {
				return false
			}
		}
		return true
	})
	var retired uint64
	var maxT sim.Cycle
	for _, c := range cores {
		retired += c.Retired()
		if c.Time() > maxT {
			maxT = c.Time()
		}
	}
	if reg != nil {
		reg.Tick(uint64(eng.Now()))
		reg.Trace().Complete("replay", "phase", 0, uint64(maxT), 0)
		if err := reg.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "esptrace:", err)
			os.Exit(1)
		}
		if traceOut != "" {
			tf, err := os.Create(traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "esptrace:", err)
				os.Exit(1)
			}
			werr := reg.Trace().WriteJSON(tf)
			if cerr := tf.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "esptrace:", werr)
				os.Exit(1)
			}
		}
	}
	sub := sys.Sub()
	fmt.Printf("replayed %s on %s: %d instructions in %d cycles (%.3f instr/cycle)\n",
		path, archName, retired, maxT, float64(retired)/float64(maxT))
	fmt.Printf("off-chip accesses %d, L2 lookups %d\n", sub.DRAM.Accesses(), l2Lookups(sub))
}

func l2Lookups(s *arch.Substrate) uint64 {
	var n uint64
	for _, b := range s.Bank {
		n += b.Stats.Lookups
	}
	return n
}
