// Command espsim runs one (architecture x workload) simulation and
// prints its metrics: performance, the Figure 6 access-time
// decomposition, and off-chip behaviour.
//
// Usage:
//
//	espsim -arch esp-nuca -workload apache [-seed 1] [-instructions 40000]
//	espsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"espnuca"
	"espnuca/internal/arch"
)

func main() {
	var (
		archName = flag.String("arch", "esp-nuca", "architecture (see -list)")
		wlName   = flag.String("workload", "apache", "workload (see -list)")
		seed     = flag.Uint64("seed", 1, "perturbation seed")
		warmup   = flag.Uint64("warmup", 80_000, "per-core warmup instructions")
		instrs   = flag.Uint64("instructions", 40_000, "per-core measured instructions")
		full     = flag.Bool("full", false, "simulate the full Table 2 machine (8 MB L2)")
		check    = flag.Bool("check", false, "verify token conservation per transaction")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON (for espstat)")
		list     = flag.Bool("list", false, "list architectures and workloads")
	)
	flag.Parse()

	if *list {
		fmt.Println("architectures:")
		for _, a := range espnuca.Architectures() {
			fmt.Printf("  %s\n", a)
		}
		fmt.Println("workloads:")
		for _, w := range espnuca.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		return
	}

	rep, err := espnuca.Run(espnuca.Options{
		Architecture: *archName,
		Workload:     *wlName,
		Seed:         *seed,
		Warmup:       *warmup,
		Instructions: *instrs,
		FullSize:     *full,
		CheckTokens:  *check,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "espsim:", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "espsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("architecture     %s\n", rep.Arch)
	fmt.Printf("workload         %s (seed %d)\n", rep.Workload, rep.Seed)
	fmt.Printf("measured cycles  %d\n", rep.Cycles)
	fmt.Printf("retired instrs   %d\n", rep.Retired)
	fmt.Printf("throughput       %.4f instr/cycle (aggregate)\n", rep.Throughput)
	fmt.Printf("mean IPC         %.4f per core\n", rep.MeanIPC)
	fmt.Printf("L1 miss rate     %.2f%%\n", rep.L1MissRate*100)
	fmt.Printf("off-chip accesses %d\n", rep.OffChipAccesses)
	fmt.Printf("on-chip L2 latency %.1f cycles\n", rep.OnChipLatency)
	fmt.Printf("avg access time  %.2f cycles, decomposed:\n", rep.AvgAccessTime)
	for l := arch.Level(0); l < arch.NumLevels; l++ {
		fmt.Printf("  %-9s %6.2f\n", l, rep.Decomposition[l])
	}
}
