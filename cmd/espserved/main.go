// Command espserved is the simulation-as-a-service daemon: it serves
// the experiment harness over HTTP, scheduling submitted jobs on a
// bounded priority queue and memoizing every simulation in a
// content-addressed result cache, so identical requests — across jobs,
// clients and restarts — cost one run.
//
// Usage:
//
//	espserved -addr :8585 -cache-dir /var/cache/espnuca
//	espserved -workers 2 -parallel 0 -queue 256
//	espserved -log-level debug -log-format json -pprof
//
// API (see internal/service):
//
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness (503 while draining)
//	GET    /metricsz                service metrics + cache stats
//	                                (?format=prom: Prometheus exposition)
//	POST   /v1/jobs                 submit {"run": {...}} or {"matrix": {...}}
//	GET    /v1/jobs                 list
//	GET    /v1/jobs/{id}            status (+result when done)
//	DELETE /v1/jobs/{id}            cancel
//	GET    /v1/jobs/{id}/result     result payload
//	GET    /v1/jobs/{id}/trace      per-job span tree (espctl trace)
//	GET    /v1/jobs/{id}/events     progress stream (SSE; ?format=jsonl)
//	GET    /v1/cache/stats          result-cache counters
//	GET    /debug/pprof/...         runtime profiles (-pprof)
//
// On SIGTERM/SIGINT the daemon stops accepting work, cancels queued
// jobs, lets in-flight jobs finish (bounded by -drain-timeout) and
// persists the cache index.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"espnuca/internal/resultcache"
	"espnuca/internal/service"
)

// newLogger builds the daemon's structured logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8585", "listen address")
		cacheDir  = flag.String("cache-dir", "", "result cache directory (empty: in-memory cache only)")
		memEnts   = flag.Int("mem-entries", 0, "in-memory cache tier capacity (0 = default)")
		workers   = flag.Int("workers", 2, "jobs executed concurrently")
		queue     = flag.Int("queue", 0, "bounded queue limit (0 = default)")
		retain    = flag.Int("retain", 0, "terminal jobs kept queryable before eviction (0 = default, negative = unlimited)")
		parallel  = flag.Int("parallel", 0, "per-matrix-job worker pool bound (0 = all cores)")
		drainT    = flag.Duration("drain-timeout", 60*time.Second, "max time to wait for in-flight jobs on shutdown")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		tracing   = flag.Bool("trace", true, "record per-job span traces (GET /v1/jobs/{id}/trace)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "espserved:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	store, err := resultcache.Open(*cacheDir, resultcache.Options{MemEntries: *memEnts})
	if err != nil {
		fatal("open result cache", err)
	}
	sched, err := service.New(service.Config{
		Workers:    *workers,
		QueueLimit: *queue,
		RetainJobs: *retain,
		Runner:     &service.SimRunner{Cache: store, Parallelism: *parallel},
		Logger:     logger,
	})
	if err != nil {
		fatal("start scheduler", err)
	}

	handler := service.NewServer(sched, store, service.ServerOptions{
		Logger:         logger,
		Pprof:          *pprofOn,
		DisableTracing: !*tracing,
	})
	srv := &http.Server{Addr: *addr, Handler: handler}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	// The bound address line is machine-readable (the CI smoke test and
	// scripts scrape it when -addr :0 picks a free port).
	fmt.Printf("espserved listening on %s\n", ln.Addr())
	logger.Info("espserved started", "addr", ln.Addr().String(), "workers", *workers,
		"pprof", *pprofOn, "trace", *tracing)
	if *cacheDir != "" {
		logger.Info("result cache opened", "dir", *cacheDir)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", drainT.String())
	case err := <-errc:
		fatal("serve", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Drain and Shutdown share the timeout but must overlap: Shutdown
	// waits for open handlers, and an event stream watching a queued job
	// only terminates once Drain cancels that job — serializing Shutdown
	// first would let one open stream consume the whole budget and turn
	// the graceful drain into a force-cancel.
	drainc := make(chan error, 1)
	go func() { drainc <- sched.Drain(ctx) }()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := <-drainc; err != nil {
		logger.Warn("drain timed out, in-flight jobs were force-canceled", "error", err)
	}
	if err := store.Close(); err != nil {
		logger.Warn("cache index close", "error", err)
	} else if *cacheDir != "" {
		logger.Info("cache index persisted")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("serve", "error", err)
	}
	logger.Info("bye")
}
