// Command espserved is the simulation-as-a-service daemon: it serves
// the experiment harness over HTTP, scheduling submitted jobs on a
// bounded priority queue and memoizing every simulation in a
// content-addressed result cache, so identical requests — across jobs,
// clients and restarts — cost one run.
//
// Usage:
//
//	espserved -addr :8585 -cache-dir /var/cache/espnuca
//	espserved -workers 2 -parallel 0 -queue 256
//	espserved -log-level debug -log-format json -pprof
//
// API (see internal/service):
//
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness (503 while draining)
//	GET    /metricsz                service metrics + cache stats
//	                                (?format=prom: Prometheus exposition)
//	POST   /v1/jobs                 submit {"run": {...}} or {"matrix": {...}}
//	GET    /v1/jobs                 list
//	GET    /v1/jobs/{id}            status (+result when done)
//	DELETE /v1/jobs/{id}            cancel
//	GET    /v1/jobs/{id}/result     result payload
//	GET    /v1/jobs/{id}/trace      per-job span tree (espctl trace)
//	GET    /v1/jobs/{id}/events     progress stream (SSE; ?format=jsonl)
//	GET    /v1/cache/stats          result-cache counters
//	GET    /debug/pprof/...         runtime profiles (-pprof)
//
// Cluster mode (see internal/cluster): by default the daemon is a
// coordinator — workers started with -coordinator=URL register with
// it, jobs submitted to the coordinator shard across the fleet by
// canonical key, and every node's result cache gains a remote tier
// (peer fetch + cluster-wide run leases). espctl pointed at the
// coordinator works unchanged.
//
//	espserved -addr :9000                                  # coordinator
//	espserved -addr :9001 -coordinator http://host:9000    # worker
//
// On SIGTERM/SIGINT the daemon stops accepting work, cancels queued
// jobs, lets in-flight jobs finish (bounded by -drain-timeout) and
// persists the cache index. A worker additionally marks itself
// draining at the coordinator first, so no new cells land on it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"espnuca/internal/cluster"
	"espnuca/internal/obs"
	"espnuca/internal/resultcache"
	"espnuca/internal/service"
)

// advertiseAddr derives the peer-reachable address workers and the
// coordinator announce: the -advertise flag verbatim, else the bound
// address with unspecified hosts (":8585", "[::]:0") rewritten to
// loopback — right for single-machine fleets, which is what the
// default serves; multi-host deployments set -advertise.
func advertiseAddr(flagVal string, bound net.Addr) string {
	if flagVal != "" {
		return flagVal
	}
	tcp, ok := bound.(*net.TCPAddr)
	if !ok {
		return bound.String()
	}
	if tcp.IP == nil || tcp.IP.IsUnspecified() {
		return fmt.Sprintf("127.0.0.1:%d", tcp.Port)
	}
	return bound.String()
}

// nodeID derives a stable worker identity: -node-id verbatim, else
// host-pid (unique per daemon on a shared machine).
func nodeID(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "node"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// newLogger builds the daemon's structured logger from the -log-level
// and -log-format flags.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text":
		h = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

func main() {
	var (
		addr      = flag.String("addr", ":8585", "listen address")
		cacheDir  = flag.String("cache-dir", "", "result cache directory (empty: in-memory cache only)")
		memEnts   = flag.Int("mem-entries", 0, "in-memory cache tier capacity (0 = default)")
		workers   = flag.Int("workers", 2, "jobs executed concurrently")
		queue     = flag.Int("queue", 0, "bounded queue limit (0 = default)")
		retain    = flag.Int("retain", 0, "terminal jobs kept queryable before eviction (0 = default, negative = unlimited)")
		parallel  = flag.Int("parallel", 0, "per-matrix-job worker pool bound (0 = all cores)")
		drainT    = flag.Duration("drain-timeout", 60*time.Second, "max time to wait for in-flight jobs on shutdown")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFormat = flag.String("log-format", "text", "log format: text or json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		tracing   = flag.Bool("trace", true, "record per-job span traces (GET /v1/jobs/{id}/trace)")
		coordURL  = flag.String("coordinator", "", "coordinator base URL; set makes this daemon a worker in that fleet")
		advertise = flag.String("advertise", "", "peer-reachable host:port announced to the fleet (default: derived from -addr)")
		nodeFlag  = flag.String("node-id", "", "stable cluster identity (default: hostname-pid)")
		hbEvery   = flag.Duration("heartbeat-interval", 0, "heartbeat cadence the coordinator grants workers (0: 2s)")
	)
	flag.Parse()

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "espserved:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	store, err := resultcache.Open(*cacheDir, resultcache.Options{MemEntries: *memEnts})
	if err != nil {
		fatal("open result cache", err)
	}

	// Bind before building the cluster pieces: the advertise address
	// needs the real port when -addr :0 picks a free one.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	selfAddr := advertiseAddr(*advertise, ln.Addr())
	reg := obs.NewRegistry()
	appCtx, appCancel := context.WithCancel(context.Background())
	defer appCancel()

	simRunner := &service.SimRunner{Cache: store, Parallelism: *parallel}
	node := cluster.NewNodeServer(cluster.NodeConfig{Store: store, Obs: reg, Logger: logger})
	var (
		clusterStatus func() any
		coord         *cluster.Coordinator
		agent         *cluster.Agent
	)
	if *coordURL != "" {
		// Worker: register with the coordinator and give the cache its
		// remote tier (peer fetch + cluster-wide run leases).
		agent = cluster.NewAgent(cluster.AgentConfig{
			Coordinator: strings.TrimRight(*coordURL, "/"),
			NodeID:      nodeID(*nodeFlag),
			Advertise:   selfAddr,
			Node:        node,
			Obs:         reg,
			Logger:      logger,
		})
		store.SetRemote(agent.Remote())
		clusterStatus = agent.Status
	} else {
		// Coordinator: own the fleet state and shard cells across it.
		coord = cluster.NewCoordinator(cluster.CoordinatorConfig{
			HeartbeatInterval: *hbEvery,
			SelfAddr:          selfAddr,
			Obs:               reg,
			Logger:            logger,
		})
		disp := cluster.NewDispatcher(cluster.DispatcherConfig{
			Coordinator: coord, Store: store, Obs: reg, Logger: logger,
		})
		simRunner.RunCell = disp.RunCell
		clusterStatus = coord.Status
	}

	sched, err := service.New(service.Config{
		Workers:    *workers,
		QueueLimit: *queue,
		RetainJobs: *retain,
		Runner:     simRunner,
		Obs:        reg,
		Logger:     logger,
	})
	if err != nil {
		fatal("start scheduler", err)
	}

	handler := service.NewServer(sched, store, service.ServerOptions{
		Logger:         logger,
		Pprof:          *pprofOn,
		DisableTracing: !*tracing,
		ClusterStatus:  clusterStatus,
	})
	// Every daemon serves the node API (the coordinator's local-fallback
	// objects are peer-fetched through it too); only the coordinator
	// serves the fleet-management API.
	node.Mount(handler)
	if coord != nil {
		coord.Mount(handler)
		coord.Start(appCtx)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	// The bound address line is machine-readable (the CI smoke test and
	// scripts scrape it when -addr :0 picks a free port).
	fmt.Printf("espserved listening on %s\n", ln.Addr())
	logger.Info("espserved started", "addr", ln.Addr().String(), "workers", *workers,
		"pprof", *pprofOn, "trace", *tracing)
	if *cacheDir != "" {
		logger.Info("result cache opened", "dir", *cacheDir)
	}
	if agent != nil {
		logger.Info("worker mode", "coordinator", *coordURL, "node", nodeID(*nodeFlag), "advertise", selfAddr)
		go agent.Run(appCtx)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", drainT.String())
	case err := <-errc:
		fatal("serve", err)
	}
	if agent != nil {
		// Tell the fleet first: draining keeps this node's cache
		// fetchable but stops new cells from landing here.
		node.SetDraining()
		agent.Leave(true)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Drain and Shutdown share the timeout but must overlap: Shutdown
	// waits for open handlers, and an event stream watching a queued job
	// only terminates once Drain cancels that job — serializing Shutdown
	// first would let one open stream consume the whole budget and turn
	// the graceful drain into a force-cancel.
	drainc := make(chan error, 1)
	go func() { drainc <- sched.Drain(ctx) }()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if err := <-drainc; err != nil {
		logger.Warn("drain timed out, in-flight jobs were force-canceled", "error", err)
	}
	appCancel() // stop heartbeats / the membership reaper
	if agent != nil {
		agent.Leave(false)
	}
	if err := store.Close(); err != nil {
		logger.Warn("cache index close", "error", err)
	} else if *cacheDir != "" {
		logger.Info("cache index persisted")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("serve", "error", err)
	}
	logger.Info("bye")
}
