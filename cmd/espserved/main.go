// Command espserved is the simulation-as-a-service daemon: it serves
// the experiment harness over HTTP, scheduling submitted jobs on a
// bounded priority queue and memoizing every simulation in a
// content-addressed result cache, so identical requests — across jobs,
// clients and restarts — cost one run.
//
// Usage:
//
//	espserved -addr :8585 -cache-dir /var/cache/espnuca
//	espserved -workers 2 -parallel 0 -queue 256
//
// API (see internal/service):
//
//	GET    /healthz                 liveness
//	GET    /metricsz                service metrics + cache stats
//	POST   /v1/jobs                 submit {"run": {...}} or {"matrix": {...}}
//	GET    /v1/jobs                 list
//	GET    /v1/jobs/{id}            status (+result when done)
//	DELETE /v1/jobs/{id}            cancel
//	GET    /v1/jobs/{id}/result     result payload
//	GET    /v1/jobs/{id}/events     progress stream (SSE; ?format=jsonl)
//	GET    /v1/cache/stats          result-cache counters
//
// On SIGTERM/SIGINT the daemon stops accepting work, cancels queued
// jobs, lets in-flight jobs finish (bounded by -drain-timeout) and
// persists the cache index.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"espnuca/internal/resultcache"
	"espnuca/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8585", "listen address")
		cacheDir = flag.String("cache-dir", "", "result cache directory (empty: in-memory cache only)")
		memEnts  = flag.Int("mem-entries", 0, "in-memory cache tier capacity (0 = default)")
		workers  = flag.Int("workers", 2, "jobs executed concurrently")
		queue    = flag.Int("queue", 0, "bounded queue limit (0 = default)")
		retain   = flag.Int("retain", 0, "terminal jobs kept queryable before eviction (0 = default, negative = unlimited)")
		parallel = flag.Int("parallel", 0, "per-matrix-job worker pool bound (0 = all cores)")
		drainT   = flag.Duration("drain-timeout", 60*time.Second, "max time to wait for in-flight jobs on shutdown")
	)
	flag.Parse()
	log.SetPrefix("espserved: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	store, err := resultcache.Open(*cacheDir, resultcache.Options{MemEntries: *memEnts})
	if err != nil {
		log.Fatal(err)
	}
	sched, err := service.New(service.Config{
		Workers:    *workers,
		QueueLimit: *queue,
		RetainJobs: *retain,
		Runner:     &service.SimRunner{Cache: store, Parallelism: *parallel},
	})
	if err != nil {
		log.Fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: service.NewServer(sched, store)}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The bound address line is machine-readable (the CI smoke test and
	// scripts scrape it when -addr :0 picks a free port).
	fmt.Printf("espserved listening on %s\n", ln.Addr())
	if *cacheDir != "" {
		log.Printf("result cache at %s", *cacheDir)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	// Drain and Shutdown share the timeout but must overlap: Shutdown
	// waits for open handlers, and an event stream watching a queued job
	// only terminates once Drain cancels that job — serializing Shutdown
	// first would let one open stream consume the whole budget and turn
	// the graceful drain into a force-cancel.
	drainc := make(chan error, 1)
	go func() { drainc <- sched.Drain(ctx) }()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-drainc; err != nil {
		log.Printf("drain: %v (in-flight jobs were force-canceled)", err)
	}
	if err := store.Close(); err != nil {
		log.Printf("cache index: %v", err)
	} else if *cacheDir != "" {
		log.Printf("cache index persisted")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}
